// Ablation benchmarks for the design choices DESIGN.md calls out: the
// 32-chunks-per-thread scheduling granularity (§5), the fused full-vector
// fast path of the pull kernel, the sparse-frontier extension, and the
// dynamic-vs-static Edge-phase scheduler.
package grazelle

import (
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/sched"
)

// BenchmarkAblationChunksPerWorker sweeps the chunks-per-thread choice
// around the paper's 32 (too few chunks → load imbalance on skewed inputs;
// too many → scheduling and merge overhead).
func BenchmarkAblationChunksPerWorker(b *testing.B) {
	g, cg := benchGraph(b, gen.UK2007)
	for _, perWorker := range []int{2, 8, 32, 128, 512} {
		b.Run(fmt.Sprintf("chunks%dn", perWorker), func(b *testing.B) {
			total := cg.VSD.NumVectors()
			chunk := sched.ChunkSize(total, perWorker*2)
			r := core.NewRunner(cg, core.Options{ChunkVectors: chunk, Mode: core.EnginePullOnly})
			defer r.Close()
			p := apps.NewPageRank(g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Run(r, p, 1)
			}
			reportEdges(b, g.NumEdges())
		})
	}
}

// BenchmarkAblationFullVectorPath compares the pull kernel with and without
// the fused full-vector fast path (per-lane predication everywhere when
// ablated).
func BenchmarkAblationFullVectorPath(b *testing.B) {
	g, cg := benchGraph(b, gen.Twitter)
	for _, ablate := range []bool{false, true} {
		name := "fast-path"
		if ablate {
			name = "ablated"
		}
		b.Run(name, func(b *testing.B) {
			r := core.NewRunner(cg, core.Options{Mode: core.EnginePullOnly, AblateFullVector: ablate})
			defer r.Close()
			p := apps.NewPageRank(g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Run(r, p, 1)
			}
			reportEdges(b, g.NumEdges())
		})
	}
}

// BenchmarkAblationSparseFrontier measures the sparse-frontier extension
// (the future work of §5) on the workload it targets: BFS over the
// high-diameter mesh, where dense engines rescan the whole edge array for
// ~150 one-vertex rounds.
func BenchmarkAblationSparseFrontier(b *testing.B) {
	for _, d := range []gen.Dataset{gen.DimacsUSA, gen.Twitter} {
		_, cg := benchGraph(b, d)
		for _, sparse := range []bool{false, true} {
			name := "dense"
			if sparse {
				name = "sparse"
			}
			b.Run(d.Abbrev()+"/"+name, func(b *testing.B) {
				r := core.NewRunner(cg, core.Options{SparseFrontier: sparse})
				defer r.Close()
				for i := 0; i < b.N; i++ {
					core.Run(r, apps.NewBFS(0), 1<<20)
				}
			})
		}
	}
}

// BenchmarkAblationSchedulerGranularityCC reruns the Fig 6 sensitivity
// question for a frontier application (Connected Components) rather than
// PageRank.
func BenchmarkAblationSchedulerGranularityCC(b *testing.B) {
	g, cg := benchGraph(b, gen.Twitter)
	for _, gran := range []int{50, 500, 5000} {
		for _, variant := range []core.PullVariant{core.PullTraditional, core.PullSchedulerAware} {
			b.Run(fmt.Sprintf("gran%d/%s", gran, variant), func(b *testing.B) {
				r := core.NewRunner(cg, core.Options{ChunkVectors: gran, Variant: variant})
				defer r.Close()
				for i := 0; i < b.N; i++ {
					core.Run(r, apps.NewConnComp(), 1<<20)
				}
				reportEdges(b, g.NumEdges())
			})
		}
	}
}

// BenchmarkAblationMergeCost isolates the merge-buffer fold (Listing 6) by
// running the scheduler-aware engine at extreme granularities: tiny chunks
// maximize merge-buffer slots, so the spread bounds the merge overhead the
// paper calls "extremely fast".
func BenchmarkAblationMergeCost(b *testing.B) {
	g, cg := benchGraph(b, gen.Friendster)
	for _, chunk := range []int{16, 16384} {
		b.Run(fmt.Sprintf("chunk%d", chunk), func(b *testing.B) {
			r := core.NewRunner(cg, core.Options{ChunkVectors: chunk, Mode: core.EnginePullOnly})
			defer r.Close()
			p := apps.NewPageRank(g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Run(r, p, 1)
			}
			reportEdges(b, g.NumEdges())
		})
	}
}

// BenchmarkAblationScheduler compares the ticket-counter dynamic scheduler
// against the work-stealing scheduler under the scheduler-aware engine —
// §3's claim that scheduler awareness does not restrict the scheduler.
func BenchmarkAblationScheduler(b *testing.B) {
	g, cg := benchGraph(b, gen.UK2007)
	for _, stealing := range []bool{false, true} {
		name := "ticket"
		if stealing {
			name = "work-stealing"
		}
		b.Run(name, func(b *testing.B) {
			r := core.NewRunner(cg, core.Options{Mode: core.EnginePullOnly, WorkStealing: stealing})
			defer r.Close()
			p := apps.NewPageRank(g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Run(r, p, 1)
			}
			reportEdges(b, g.NumEdges())
		})
	}
}

// BenchmarkAblationVectorWidth compares the 256-bit (4-lane) and 512-bit
// (8-lane) Vector-Sparse pull kernels — the generalization §4 sketches for
// AVX-512. Wider vectors amortize bookkeeping over more edges but carry the
// packing penalty Fig 9 quantifies, so the winner depends on the degree
// distribution: the skewed uk analog favors wide, the mesh does not.
func BenchmarkAblationVectorWidth(b *testing.B) {
	for _, d := range []gen.Dataset{gen.DimacsUSA, gen.UK2007} {
		g, cg := benchGraph(b, d)
		for _, wide := range []bool{false, true} {
			name := "256-bit"
			if wide {
				name = "512-bit"
			}
			b.Run(d.Abbrev()+"/"+name, func(b *testing.B) {
				r := core.NewRunner(cg, core.Options{Mode: core.EnginePullOnly, WideVectors: wide})
				defer r.Close()
				p := apps.NewPageRank(g)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					core.Run(r, p, 1)
				}
				reportEdges(b, g.NumEdges())
			})
		}
	}
}
