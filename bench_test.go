// Benchmarks, one group per table/figure of the paper's evaluation. Each
// benchmark exercises the exact kernel its figure measures, at reduced
// analog scale so `go test -bench=.` completes quickly; cmd/benchfig runs
// the same experiments at full scale and prints the paper-shaped tables.
package grazelle

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/baselines"
	"repro/internal/baselines/ligra"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numa"
	"repro/internal/vsparse"
)

const benchScale = 0.25

var (
	benchMu     sync.Mutex
	benchGraphs = map[gen.Dataset]*graph.Graph{}
	benchCores  = map[gen.Dataset]*core.Graph{}
)

func benchGraph(b *testing.B, d gen.Dataset) (*graph.Graph, *core.Graph) {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if _, ok := benchGraphs[d]; !ok {
		g := gen.Generate(d, benchScale)
		benchGraphs[d] = g
		benchCores[d] = core.BuildGraph(g)
	}
	return benchGraphs[d], benchCores[d]
}

func reportEdges(b *testing.B, edgesPerOp int) {
	b.ReportMetric(float64(edgesPerOp), "edges/op")
}

// BenchmarkTable1 measures dataset analog generation (the substitute for
// loading the paper's Table 1 inputs).
func BenchmarkTable1(b *testing.B) {
	for _, d := range gen.AllDatasets {
		b.Run(d.Abbrev(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := gen.Generate(d, 0.05)
				if g.NumEdges() == 0 {
					b.Fatal("empty analog")
				}
			}
		})
	}
}

// BenchmarkFig1 measures one PageRank round under each of Ligra's loop
// parallelization configurations on the twitter analog (the introduction's
// motivating comparison).
func BenchmarkFig1(b *testing.B) {
	g, _ := benchGraph(b, gen.Twitter)
	for _, lc := range []ligra.LoopConfig{ligra.PushS, ligra.PushP, ligra.PushPPullS, ligra.PushPPullP} {
		b.Run(lc.String(), func(b *testing.B) {
			fw := baselines.NewLigraLoops(g, 0, lc)
			defer fw.Close()
			p := apps.NewPageRank(g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fw.Run(p, 1)
			}
			reportEdges(b, g.NumEdges())
		})
	}
}

// benchPullVariant measures one pull-engine PageRank iteration under a
// given variant, kernel, and granularity.
func benchPullVariant(b *testing.B, d gen.Dataset, variant core.PullVariant, scalar bool, gran, workers int) {
	benchPullTraced(b, d, variant, scalar, gran, workers, false)
}

func benchPullTraced(b *testing.B, d gen.Dataset, variant core.PullVariant, scalar bool, gran, workers int, trace bool) {
	b.Helper()
	g, cg := benchGraph(b, d)
	r := core.NewRunner(cg, core.Options{
		Workers: workers, Variant: variant, Scalar: scalar,
		ChunkVectors: gran, Mode: core.EnginePullOnly, Trace: trace,
	})
	defer r.Close()
	p := apps.NewPageRank(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(r, p, 1)
	}
	reportEdges(b, g.NumEdges())
}

// BenchmarkFig5 compares the three scheduler interfaces at the fixed
// Fig 5 granularity of 1000 vectors/chunk on each dataset analog.
func BenchmarkFig5(b *testing.B) {
	for _, d := range gen.AllDatasets {
		for _, v := range []core.PullVariant{core.PullTraditional, core.PullTraditionalNonatomic, core.PullSchedulerAware} {
			b.Run(d.Abbrev()+"/"+v.String(), func(b *testing.B) {
				benchPullVariant(b, d, v, false, 1000, 0)
			})
		}
	}
}

// BenchmarkFig5Traced repeats the Fig 5 matrix with the phase tracer on.
// The tracer's budget (DESIGN.md §10) is 5% over the untraced runs: it
// costs two clock reads per phase boundary and one atomic add per chunk,
// never per-edge work.
func BenchmarkFig5Traced(b *testing.B) {
	for _, d := range gen.AllDatasets {
		for _, v := range []core.PullVariant{core.PullTraditional, core.PullTraditionalNonatomic, core.PullSchedulerAware} {
			b.Run(d.Abbrev()+"/"+v.String(), func(b *testing.B) {
				benchPullTraced(b, d, v, false, 1000, 0, true)
			})
		}
	}
}

// BenchmarkFig6 sweeps the scheduling granularity on the uk-2007 analog.
func BenchmarkFig6(b *testing.B) {
	for _, gran := range []int{100, 1000, 10000} {
		for _, v := range []core.PullVariant{core.PullTraditional, core.PullSchedulerAware} {
			b.Run(fmt.Sprintf("gran%d/%s", gran, v), func(b *testing.B) {
				benchPullVariant(b, gen.UK2007, v, false, gran, 0)
			})
		}
	}
}

// BenchmarkFig7 sweeps the worker count for both interfaces on the twitter
// analog.
func BenchmarkFig7(b *testing.B) {
	for _, w := range []int{1, 2} {
		for _, v := range []core.PullVariant{core.PullTraditional, core.PullSchedulerAware} {
			b.Run(fmt.Sprintf("w%d/%s", w, v), func(b *testing.B) {
				benchPullVariant(b, gen.Twitter, v, false, 5000, w)
			})
		}
	}
}

// BenchmarkFig8 measures Connected Components (standard and write-intense)
// under the three interfaces on the livejournal analog.
func BenchmarkFig8(b *testing.B) {
	g, cg := benchGraph(b, gen.LiveJournal)
	for _, wi := range []bool{true, false} {
		name := "standard"
		prog := func() *apps.ConnComp { return apps.NewConnComp() }
		if wi {
			name = "write-intense"
			prog = func() *apps.ConnComp { return apps.NewConnCompWriteIntense() }
		}
		for _, v := range []core.PullVariant{core.PullTraditional, core.PullSchedulerAware} {
			b.Run(name+"/"+v.String(), func(b *testing.B) {
				r := core.NewRunner(cg, core.Options{Variant: v})
				defer r.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					core.Run(r, prog(), 1<<20)
				}
				reportEdges(b, g.NumEdges())
			})
		}
	}
}

// BenchmarkFig9 measures Vector-Sparse encoding and the packing-efficiency
// computation for the three vector widths.
func BenchmarkFig9(b *testing.B) {
	g, cg := benchGraph(b, gen.Twitter)
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := vsparse.FromCSR(cg.CSC)
			if a.ValidEdges != g.NumEdges() {
				b.Fatal("encode lost edges")
			}
		}
		reportEdges(b, g.NumEdges())
	})
	deg := g.InDegrees()
	for _, lanes := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("efficiency%d", lanes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if vsparse.PackingEfficiencyForLanes(deg, lanes) <= 0 {
					b.Fatal("bad efficiency")
				}
			}
		})
	}
}

// BenchmarkFig10Phase measures each Grazelle phase in isolation, scalar vs
// vectorized (Fig 10a).
func BenchmarkFig10Phase(b *testing.B) {
	g, cg := benchGraph(b, gen.Twitter)
	p := apps.NewPageRank(g)
	for _, scalar := range []bool{true, false} {
		kernel := "vectorized"
		if scalar {
			kernel = "scalar"
		}
		b.Run("Edge-Pull/"+kernel, func(b *testing.B) {
			r := core.NewRunner(cg, core.Options{Scalar: scalar, Mode: core.EnginePullOnly})
			defer r.Close()
			ec := r.NewContext()
			ec.Init(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.RunEdgePull(ec, p)
			}
			reportEdges(b, g.NumEdges())
		})
		b.Run("Edge-Push/"+kernel, func(b *testing.B) {
			r := core.NewRunner(cg, core.Options{Scalar: scalar, Mode: core.EnginePushOnly})
			defer r.Close()
			ec := r.NewContext()
			ec.Init(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.RunEdgePush(ec, p)
			}
			reportEdges(b, g.NumEdges())
		})
		b.Run("Vertex/"+kernel, func(b *testing.B) {
			r := core.NewRunner(cg, core.Options{Scalar: scalar})
			defer r.Close()
			ec := r.NewContext()
			ec.Init(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.RunVertex(ec, p)
			}
		})
	}
}

// BenchmarkFig10App measures end-to-end application runs, scalar vs
// vectorized (Fig 10b).
func BenchmarkFig10App(b *testing.B) {
	g, cg := benchGraph(b, gen.Twitter)
	for _, scalar := range []bool{true, false} {
		kernel := "vectorized"
		if scalar {
			kernel = "scalar"
		}
		b.Run("PR/"+kernel, func(b *testing.B) {
			r := core.NewRunner(cg, core.Options{Scalar: scalar})
			defer r.Close()
			for i := 0; i < b.N; i++ {
				core.Run(r, apps.NewPageRank(g), 4)
			}
			reportEdges(b, 4*g.NumEdges())
		})
		b.Run("CC/"+kernel, func(b *testing.B) {
			r := core.NewRunner(cg, core.Options{Scalar: scalar})
			defer r.Close()
			for i := 0; i < b.N; i++ {
				core.Run(r, apps.NewConnComp(), 1<<20)
			}
		})
		b.Run("BFS/"+kernel, func(b *testing.B) {
			r := core.NewRunner(cg, core.Options{Scalar: scalar})
			defer r.Close()
			for i := 0; i < b.N; i++ {
				core.Run(r, apps.NewBFS(0), 1<<20)
			}
		})
	}
}

// benchFrameworks enumerates the Figs 11–13 competitors on one graph.
func benchFrameworks(b *testing.B, g *graph.Graph, cg *core.Graph) map[string]func(p apps.Program, iters int) {
	b.Helper()
	out := map[string]func(p apps.Program, iters int){}
	out["Grazelle-Pull"] = func(p apps.Program, iters int) {
		r := core.NewRunner(cg, core.Options{Mode: core.EnginePullOnly})
		defer r.Close()
		core.Run(r, p, iters)
	}
	out["Grazelle-Hybrid"] = func(p apps.Program, iters int) {
		r := core.NewRunner(cg, core.Options{})
		defer r.Close()
		core.Run(r, p, iters)
	}
	mk := func(f baselines.Framework) func(p apps.Program, iters int) {
		return func(p apps.Program, iters int) {
			defer f.Close()
			f.Run(p, iters)
		}
	}
	_ = mk
	out["Ligra"] = func(p apps.Program, iters int) {
		f := baselines.NewLigra(g, 0)
		defer f.Close()
		f.Run(p, iters)
	}
	out["Ligra-Dense"] = func(p apps.Program, iters int) {
		f := baselines.NewLigraDense(g, 0)
		defer f.Close()
		f.Run(p, iters)
	}
	out["Polymer"] = func(p apps.Program, iters int) {
		f := baselines.NewPolymer(g, numa.Topology{})
		defer f.Close()
		f.Run(p, iters)
	}
	out["GraphMat"] = func(p apps.Program, iters int) {
		f, err := baselines.NewGraphMat(g, 0)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		f.Run(p, iters)
	}
	out["X-Stream"] = func(p apps.Program, iters int) {
		f := baselines.NewXStream(g, 0)
		defer f.Close()
		f.Run(p, iters)
	}
	return out
}

var frameworkOrder = []string{"Grazelle-Pull", "Grazelle-Hybrid", "Ligra", "Ligra-Dense", "Polymer", "GraphMat", "X-Stream"}

// BenchmarkFig11 compares frameworks on PageRank (twitter analog).
func BenchmarkFig11(b *testing.B) {
	g, cg := benchGraph(b, gen.Twitter)
	fws := benchFrameworks(b, g, cg)
	for _, name := range frameworkOrder {
		run := fws[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run(apps.NewPageRank(g), 2)
			}
			reportEdges(b, 2*g.NumEdges())
		})
	}
}

// BenchmarkFig12 compares frameworks on Connected Components.
func BenchmarkFig12(b *testing.B) {
	g, cg := benchGraph(b, gen.Twitter)
	fws := benchFrameworks(b, g, cg)
	for _, name := range frameworkOrder {
		run := fws[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run(apps.NewConnComp(), 1<<20)
			}
		})
	}
}

// BenchmarkFig13 compares frameworks on BFS.
func BenchmarkFig13(b *testing.B) {
	g, cg := benchGraph(b, gen.Twitter)
	fws := benchFrameworks(b, g, cg)
	for _, name := range frameworkOrder {
		run := fws[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run(apps.NewBFS(0), 1<<20)
			}
		})
	}
}

// BenchmarkTable2 runs PageRank at the artifact's suggested iteration scale
// on the smallest analog (the remaining figures already cover the rest).
func BenchmarkTable2(b *testing.B) {
	g, cg := benchGraph(b, gen.CitPatents)
	r := core.NewRunner(cg, core.Options{})
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(r, apps.NewPageRank(g), 16)
	}
	reportEdges(b, 16*g.NumEdges())
}
