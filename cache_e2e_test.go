package grazelle

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// End-to-end tests of the serve-mode query result cache: hit/miss/bypass
// headers with byte-identical payloads, the coalesced-burst admission
// accounting the ISSUE's acceptance criteria demand (N identical concurrent
// requests = exactly 1 run and 1 admission slot, proven by metrics deltas),
// the /v1/batch endpoint, and invalidation on graph replace.

// rawQuery posts body to /v1/query and returns status, the raw response
// bytes, and the X-Cache / X-Run-Id headers.
func rawQuery(t *testing.T, client *http.Client, base, body string) (int, []byte, string, string) {
	t.Helper()
	resp, err := client.Post(base+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/query: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b, resp.Header.Get("X-Cache"), resp.Header.Get("X-Run-Id")
}

func TestServeCacheHitBitIdentical(t *testing.T) {
	base, _, cmd := startServeObs(t, "-d", "C", "-scale", "0.25")
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	client := &http.Client{Timeout: 30 * time.Second}

	const q = `{"app":"pr","iters":8,"values":true}`
	code, miss, xc, runID := rawQuery(t, client, base, q)
	if code != 200 || xc != "miss" {
		t.Fatalf("first query: status %d X-Cache %q, want 200 miss", code, xc)
	}
	if runID == "" {
		t.Fatal("miss carries no X-Run-Id")
	}

	code, hit, xc, hitRunID := rawQuery(t, client, base, q)
	if code != 200 || xc != "hit" {
		t.Fatalf("second query: status %d X-Cache %q, want 200 hit", code, xc)
	}
	if string(hit) != string(miss) {
		t.Fatalf("cache hit is not byte-identical to the original response:\n%s\nvs\n%s", hit, miss)
	}
	if hitRunID != runID {
		t.Errorf("hit X-Run-Id %q, want the producing run's %q", hitRunID, runID)
	}

	// Different canonical params are a different key...
	if code, _, xc, _ := rawQuery(t, client, base, `{"app":"pr","iters":9,"values":true}`); code != 200 || xc != "miss" {
		t.Errorf("changed iters: status %d X-Cache %q, want miss", code, xc)
	}
	// ...but an ignored param (pr discards root) canonicalizes to the same key.
	if code, b, xc, _ := rawQuery(t, client, base, `{"app":"pr","iters":8,"root":5,"values":true}`); code != 200 || xc != "hit" {
		t.Errorf("ignored root param: status %d X-Cache %q, want hit", code, xc)
	} else if string(b) != string(miss) {
		t.Error("canonicalized hit payload differs")
	}

	// no_cache opts a single request out.
	if code, _, xc, _ := rawQuery(t, client, base, `{"app":"pr","iters":8,"values":true,"no_cache":true}`); code != 200 || xc != "bypass" {
		t.Errorf("no_cache: status %d X-Cache %q, want bypass", code, xc)
	}
}

// TestServeCoalescedBurstOneSlot is the acceptance criterion: N concurrent
// identical requests consume exactly one run and one admission slot, proven
// by metrics deltas rather than timing.
func TestServeCoalescedBurstOneSlot(t *testing.T) {
	base, _, cmd := startServeObs(t, "-d", "C", "-scale", "0.25", "-max-inflight", "1", "-max-queue", "0")
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	client := &http.Client{Timeout: 60 * time.Second}

	before := fetchText(t, client, base+"/metrics")
	runsBefore, _ := metricSample(t, before, "grazelle_runs_total")
	admittedBefore, _ := metricSample(t, before, "grazelle_admission_admitted_total")
	rejectedBefore, _ := metricSample(t, before, "grazelle_admission_rejected_total")

	// Heavy enough that the burst overlaps the single run. With
	// max-inflight 1 and no queue, any second admission attempt would be
	// rejected — zero rejections proves the burst used one slot.
	const n = 8
	const q = `{"app":"pr","iters":192,"values":true}`
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	states := make([]string, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Post(base+"/v1/query", "application/json", strings.NewReader(q))
			if err != nil {
				t.Errorf("burst %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			codes[i], bodies[i], states[i] = resp.StatusCode, b, resp.Header.Get("X-Cache")
		}(i)
	}
	wg.Wait()

	var hits, misses, coalesced int
	for i := 0; i < n; i++ {
		if codes[i] != 200 {
			t.Fatalf("burst %d: status %d body %s", i, codes[i], bodies[i])
		}
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("burst %d: payload diverges", i)
		}
		switch states[i] {
		case "hit":
			hits++
		case "miss":
			misses++
		case "coalesced":
			coalesced++
		default:
			t.Fatalf("burst %d: X-Cache %q", i, states[i])
		}
	}
	if misses != 1 {
		t.Errorf("burst produced %d misses, want exactly 1 (leader)", misses)
	}
	if hits+coalesced != n-1 {
		t.Errorf("burst: %d hits + %d coalesced, want %d followers", hits, coalesced, n-1)
	}

	after := fetchText(t, client, base+"/metrics")
	runsAfter, _ := metricSample(t, after, "grazelle_runs_total")
	admittedAfter, _ := metricSample(t, after, "grazelle_admission_admitted_total")
	rejectedAfter, _ := metricSample(t, after, "grazelle_admission_rejected_total")
	if got := runsAfter - runsBefore; got != 1 {
		t.Errorf("runs_total delta = %v across an %d-query burst, want 1", got, n)
	}
	if got := admittedAfter - admittedBefore; got != 1 {
		t.Errorf("admission_admitted delta = %v, want 1 slot for the whole burst", got)
	}
	if got := rejectedAfter - rejectedBefore; got != 0 {
		t.Errorf("admission_rejected delta = %v, want 0 (no follower hit admission)", got)
	}
	if v, ok := metricSample(t, after, "grazelle_qcache_coalesced_total"); !ok || v != float64(coalesced) {
		t.Errorf("qcache_coalesced_total = %v, X-Cache headers said %d", v, coalesced)
	}

	// /v1/stats renders the same cache cells as /metrics.
	var stats struct {
		Cache struct {
			Hits      float64 `json:"hits"`
			Misses    float64 `json:"misses"`
			Coalesced float64 `json:"coalesced"`
			Bytes     float64 `json:"bytes"`
		} `json:"cache"`
	}
	if err := json.Unmarshal([]byte(fetchText(t, client, base+"/v1/stats")), &stats); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{
		"grazelle_qcache_hits_total":      stats.Cache.Hits,
		"grazelle_qcache_misses_total":    stats.Cache.Misses,
		"grazelle_qcache_coalesced_total": stats.Cache.Coalesced,
		"grazelle_qcache_bytes":           stats.Cache.Bytes,
	} {
		if got, ok := metricSample(t, after, name); !ok || got != want {
			t.Errorf("%s = %v, /v1/stats cache block says %v", name, got, want)
		}
	}
	if stats.Cache.Bytes <= 0 {
		t.Error("cache holds no bytes after a cached run")
	}
}

func TestServeBatchEndpoint(t *testing.T) {
	base, _, cmd := startServeObs(t, "-d", "C", "-scale", "0.25")
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	client := &http.Client{Timeout: 60 * time.Second}

	// Warm one entry so the batch sees a hit.
	if code, _, xc, _ := rawQuery(t, client, base, `{"app":"pr","iters":8}`); code != 200 || xc != "miss" {
		t.Fatalf("warm query: status %d X-Cache %q", code, xc)
	}

	batch := `{"queries":[
		{"app":"pr","iters":8},
		{"app":"cc"},
		{"app":"cc"},
		{"app":"bfs","root":1},
		{"app":"nope"},
		{"graph":"missing","app":"pr"}
	]}`
	resp, err := client.Post(base+"/v1/batch", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch: status %d body %s", resp.StatusCode, b)
	}
	var out struct {
		Results []struct {
			Status   string          `json:"status"`
			Code     int             `json:"code"`
			Error    string          `json:"error"`
			Response json.RawMessage `json:"response"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 6 {
		t.Fatalf("results = %d entries, want 6", len(out.Results))
	}
	wantStatus := []string{"hit", "miss", "coalesced", "miss", "error", "error"}
	for i, want := range wantStatus {
		if out.Results[i].Status != want {
			t.Errorf("entry %d status %q, want %q (%s)", i, out.Results[i].Status, want, out.Results[i].Error)
		}
	}
	// The duplicate cc entries share one payload.
	if string(out.Results[2].Response) == "" || string(out.Results[1].Response) == "" {
		t.Fatal("cc entries missing responses")
	}
	var cc1, cc2 map[string]any
	json.Unmarshal(out.Results[1].Response, &cc1)
	json.Unmarshal(out.Results[2].Response, &cc2)
	if fmt.Sprint(cc1["components"]) != fmt.Sprint(cc2["components"]) || cc1["components"] == nil {
		t.Errorf("deduped cc entries disagree: %v vs %v", cc1, cc2)
	}
	if out.Results[4].Code != 400 {
		t.Errorf("unknown app entry code %d, want 400", out.Results[4].Code)
	}
	if out.Results[5].Code != 404 {
		t.Errorf("missing graph entry code %d, want 404", out.Results[5].Code)
	}

	// The batch-computed entries are now cached for single queries too.
	if code, _, xc, _ := rawQuery(t, client, base, `{"app":"cc"}`); code != 200 || xc != "hit" {
		t.Errorf("cc after batch: status %d X-Cache %q, want hit", code, xc)
	}
}

// TestServeCacheInvalidationOnReplace: replacing a graph over the API makes
// its cached entries unreachable — the next query recomputes on the new
// version and may return different bytes.
func TestServeCacheInvalidationOnReplace(t *testing.T) {
	base, _, cmd := startServeObs(t)
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	client := &http.Client{Timeout: 30 * time.Second}
	post := func(path, body string) int {
		t.Helper()
		resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	if code := post("/v1/graphs", `{"name":"g","dataset":"C","scale":0.25}`); code != 200 {
		t.Fatalf("add graph: status %d", code)
	}
	const q = `{"graph":"g","app":"pr","iters":8,"values":true}`
	if code, _, xc, _ := rawQuery(t, client, base, q); code != 200 || xc != "miss" {
		t.Fatalf("first query: %d %q", code, xc)
	}
	if code, _, xc, _ := rawQuery(t, client, base, q); code != 200 || xc != "hit" {
		t.Fatalf("warm query: %d %q", code, xc)
	}

	// Replace with a different graph: the old version's entry must be gone.
	if code := post("/v1/graphs", `{"name":"g","dataset":"C","scale":0.3}`); code != 200 {
		t.Fatalf("replace graph: status %d", code)
	}
	code, body, xc, _ := rawQuery(t, client, base, q)
	if code != 200 || xc != "miss" {
		t.Fatalf("post-replace query: status %d X-Cache %q, want a fresh miss", code, xc)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	vals, _ := m["values"].([]any)
	if len(vals) == 0 {
		t.Fatal("post-replace query returned no values")
	}

	// Metrics observed the invalidation.
	text := fetchText(t, client, base+"/metrics")
	if v, ok := metricSample(t, text, "grazelle_qcache_invalidated_total"); !ok || v < 1 {
		t.Errorf("qcache_invalidated_total = %v, want >= 1", v)
	}
}
