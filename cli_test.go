package grazelle

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildCmd compiles one of the repository's executables into a shared temp
// dir, once per test process.
var (
	cliOnce sync.Once
	cliDir  string
	cliErr  error
)

func cliBinaries(t *testing.T) string {
	t.Helper()
	cliOnce.Do(func() {
		cliDir, cliErr = os.MkdirTemp("", "grazelle-cli")
		if cliErr != nil {
			return
		}
		for _, tool := range []string{"grazelle", "gengraph", "benchfig"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(cliDir, tool), "./cmd/"+tool)
			out, err := cmd.CombinedOutput()
			if err != nil {
				cliErr = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
	})
	if cliErr != nil {
		t.Skipf("cannot build CLI binaries: %v", cliErr)
	}
	return cliDir
}

func runCLI(t *testing.T, name string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(cliBinaries(t), name), args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCLIGrazellePageRank(t *testing.T) {
	out, err := runCLI(t, "grazelle", "-d", "C", "-scale", "0.25", "-a", "pr", "-N", "4", "-counters")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"PageRank Sum: 1.0000", "Iterations: 4 (pull 4, push 0)", "Edge counters:", "atomics=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIGrazelleListApps(t *testing.T) {
	// -a list enumerates the registry without needing a graph at all.
	out, err := runCLI(t, "grazelle", "-a", "list")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, name := range []string{"pr", "wpr", "cc", "bfs", "sssp", "tc", "kcore", "lp", "ppr"} {
		if !strings.Contains(out, name+" ") && !strings.Contains(out, name+"\n") {
			t.Errorf("-a list missing app %q:\n%s", name, out)
		}
	}
	for _, want := range []string{"params:", "(default 16)", "weighted graph required"} {
		if !strings.Contains(out, want) {
			t.Errorf("-a list missing %q:\n%s", want, out)
		}
	}
}

func TestCLIGrazelleRegistryApps(t *testing.T) {
	// The registry-era apps run end to end through the CLI with their
	// registered summary lines.
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-a", "tc"}, "Triangles: "},
		{[]string{"-a", "kcore", "-k", "2"}, "In k-core: "},
		{[]string{"-a", "lp", "-N", "4"}, "Labels: "},
		{[]string{"-a", "ppr", "-N", "8", "-r", "1"}, "PPR Sum: "},
	} {
		args := append([]string{"-d", "C", "-scale", "0.25"}, tc.args...)
		out, err := runCLI(t, "grazelle", args...)
		if err != nil {
			t.Fatalf("%v: %v\n%s", tc.args, err, out)
		}
		if !strings.Contains(out, tc.want) {
			t.Errorf("%v output missing %q:\n%s", tc.args, tc.want, out)
		}
	}
}

func TestCLIGrazelleRejectsBadFlags(t *testing.T) {
	if out, err := runCLI(t, "grazelle"); err == nil {
		t.Errorf("no input accepted:\n%s", out)
	}
	if out, err := runCLI(t, "grazelle", "-d", "C", "-a", "nope"); err == nil {
		t.Errorf("bad app accepted:\n%s", out)
	}
	if out, err := runCLI(t, "grazelle", "-d", "C", "-variant", "nope"); err == nil {
		t.Errorf("bad variant accepted:\n%s", out)
	}
	if out, err := runCLI(t, "grazelle", "-d", "C", "-a", "sssp"); err == nil {
		t.Errorf("SSSP on unweighted graph accepted:\n%s", out)
	}
}

func TestCLIGengraphAndLoad(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "mesh")
	out, err := runCLI(t, "gengraph", "-kind", "mesh", "-rows", "10", "-cols", "10", "-weighted", "-o", base)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "100 vertices") {
		t.Errorf("gengraph output: %s", out)
	}
	// The pair must load and run through the grazelle CLI, SSSP included.
	outFile := filepath.Join(dir, "dist.txt")
	out, err = runCLI(t, "grazelle", "-i", base, "-a", "sssp", "-o", outFile)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "Reached: 100 of 100") {
		t.Errorf("sssp output: %s", out)
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 100 {
		t.Errorf("output file has %d lines, want 100", lines)
	}
}

func TestCLIGengraphTextConversion(t *testing.T) {
	dir := t.TempDir()
	txt := filepath.Join(dir, "in.txt")
	if err := os.WriteFile(txt, []byte("# demo\n0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "tri")
	out, err := runCLI(t, "gengraph", "-kind", "text", "-in", txt, "-o", base)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	out, err = runCLI(t, "grazelle", "-i", base, "-a", "cc")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "Components: 1") {
		t.Errorf("cc output: %s", out)
	}
}

func TestCLIBenchfig(t *testing.T) {
	out, err := runCLI(t, "benchfig", "-list")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"fig5", "fig9", "table1"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing %q", want)
		}
	}
	out, err = runCLI(t, "benchfig", "-quick", "-datasets", "C", "fig9")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "Figure 9a") || !strings.Contains(out, "Figure 9b") {
		t.Errorf("fig9 output:\n%s", out)
	}
	if out, err = runCLI(t, "benchfig", "nope"); err == nil {
		t.Errorf("unknown experiment accepted:\n%s", out)
	}
	if out, err = runCLI(t, "benchfig"); err == nil {
		t.Errorf("no experiment accepted:\n%s", out)
	}
}

// startServe launches `grazelle serve` with extra args and returns the
// announced base URL plus the running command. Callers own shutdown.
func startServe(t *testing.T, extra ...string) (string, *exec.Cmd) {
	t.Helper()
	return startServeEnv(t, nil, extra...)
}

// startServeEnv is startServe with extra environment entries appended — the
// chaos tests arm failpoints in the child via GRAZELLE_FAILPOINTS.
func startServeEnv(t *testing.T, env []string, extra ...string) (string, *exec.Cmd) {
	t.Helper()
	bin := filepath.Join(cliBinaries(t), "grazelle")
	args := append([]string{"serve", "-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	if len(env) > 0 {
		cmd.Env = append(os.Environ(), env...)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The server prints its resolved address once the listener is up.
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "http://"); i >= 0 {
			return strings.TrimSpace(line[i:]), cmd
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatalf("server never announced its address: %v", sc.Err())
	return "", nil
}

func TestCLIGrazelleServe(t *testing.T) {
	base, cmd := startServe(t, "-d", "C", "-scale", "0.25")
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	client := &http.Client{Timeout: 30 * time.Second}
	postJSON := func(path, body string) (int, map[string]any) {
		t.Helper()
		resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("POST %s: decode: %v", path, err)
		}
		return resp.StatusCode, m
	}

	if resp, err := client.Get(base + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	// PageRank on the preloaded "default" graph.
	code, m := postJSON("/v1/query", `{"app":"pr","iters":8}`)
	if code != 200 {
		t.Fatalf("pr query: status %d body %v", code, m)
	}
	if sum, ok := m["rank_sum"].(float64); !ok || sum < 0.999 || sum > 1.001 {
		t.Errorf("rank_sum = %v", m["rank_sum"])
	}
	if it, _ := m["iterations"].(float64); it != 8 {
		t.Errorf("iterations = %v, want 8", m["iterations"])
	}

	// Load a second graph through the API and query it.
	code, m = postJSON("/v1/graphs", `{"name":"d2","dataset":"D","scale":0.1}`)
	if code != 200 {
		t.Fatalf("load graph: status %d body %v", code, m)
	}
	code, m = postJSON("/v1/query", `{"graph":"d2","app":"cc"}`)
	if code != 200 {
		t.Fatalf("cc query: status %d body %v", code, m)
	}
	if _, ok := m["components"]; !ok {
		t.Errorf("cc response missing components: %v", m)
	}

	// Unknown graph and unknown app are client errors.
	if code, _ = postJSON("/v1/query", `{"graph":"nope","app":"pr"}`); code != 404 {
		t.Errorf("unknown graph: status %d, want 404", code)
	}
	if code, _ = postJSON("/v1/query", `{"app":"nope"}`); code != 400 {
		t.Errorf("unknown app: status %d, want 400", code)
	}

	// A 1 ms budget cannot fit 1<<20 PageRank iterations: the per-request
	// timeout must cut the run short with 504.
	code, m = postJSON("/v1/query", `{"app":"pr","iters":1048576,"timeout_ms":1}`)
	if code != 504 {
		t.Errorf("timeout query: status %d body %v, want 504", code, m)
	}
}

// serveClient bundles the little JSON helpers the serve tests share.
type serveClient struct {
	t    *testing.T
	base string
	c    *http.Client
}

func newServeClient(t *testing.T, base string) *serveClient {
	return &serveClient{t: t, base: base, c: &http.Client{Timeout: 30 * time.Second}}
}

func (sc *serveClient) do(method, path, body string) (int, map[string]any) {
	sc.t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, sc.base+path, rd)
	if err != nil {
		sc.t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := sc.c.Do(req)
	if err != nil {
		sc.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		sc.t.Fatalf("%s %s: decode: %v", method, path, err)
	}
	return resp.StatusCode, m
}

// TestServePartitionedQuery starts a server with -partitions 2 and checks
// the partitioned path end to end: query responses surface the effective
// mode and partition count, the run record in GET /v1/runs/{id} carries the
// per-partition trace, and the per-vertex output is identical to a
// monolithic server's.
func TestServePartitionedQuery(t *testing.T) {
	base, cmd := startServe(t, "-d", "C", "-scale", "0.25", "-partitions", "2")
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	sc := newServeClient(t, base)

	code, m := sc.do("POST", "/v1/query", `{"app":"cc","values":true}`)
	if code != 200 {
		t.Fatalf("cc query: status %d body %v", code, m)
	}
	if p, _ := m["partitions"].(float64); p != 2 {
		t.Errorf("partitions = %v, want 2", m["partitions"])
	}
	if mode, _ := m["mode"].(string); mode != "Hybrid" {
		t.Errorf("mode = %v, want Hybrid", m["mode"])
	}
	runID, _ := m["run_id"].(string)
	if runID == "" {
		t.Fatal("query response carries no run_id")
	}

	// The run record replays the partitioned trace.
	code, rec := sc.do("GET", "/v1/runs/"+runID, "")
	if code != 200 {
		t.Fatalf("run record: status %d body %v", code, rec)
	}
	if p, _ := rec["partitions"].(float64); p != 2 {
		t.Errorf("record partitions = %v, want 2", rec["partitions"])
	}
	if mode, _ := rec["mode"].(string); mode != "Hybrid" {
		t.Errorf("record mode = %v, want Hybrid", rec["mode"])
	}
	trace, _ := rec["trace"].(map[string]any)
	if trace == nil {
		t.Fatalf("record has no trace: %v", rec)
	}
	if dirs, _ := trace["directions"].(string); dirs == "" {
		t.Error("trace has no direction string")
	}
	pstats, _ := trace["partitions"].([]any)
	if len(pstats) != 2 {
		t.Fatalf("trace has %d partition stats, want 2: %v", len(pstats), trace)
	}
	var exchanged float64
	for _, ps := range pstats {
		st, _ := ps.(map[string]any)
		b, _ := st["exchange_bytes"].(float64)
		exchanged += b
	}
	if exchanged <= 0 {
		t.Errorf("partitioned cc run exchanged %v bytes, want > 0", exchanged)
	}

	// Bit-identity across the API: a monolithic server must return the same
	// per-vertex labels.
	monoBase, monoCmd := startServe(t, "-d", "C", "-scale", "0.25")
	defer func() {
		monoCmd.Process.Kill()
		monoCmd.Wait()
	}()
	msc := newServeClient(t, monoBase)
	code, mono := msc.do("POST", "/v1/query", `{"app":"cc","values":true}`)
	if code != 200 {
		t.Fatalf("monolithic cc query: status %d body %v", code, mono)
	}
	if p, _ := mono["partitions"].(float64); p != 1 {
		t.Errorf("monolithic partitions = %v, want 1", mono["partitions"])
	}
	want, _ := mono["values"].([]any)
	got, _ := m["values"].([]any)
	if len(want) == 0 || len(got) != len(want) {
		t.Fatalf("values lengths: partitioned %d, monolithic %d", len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("values[%d] = %v, monolithic has %v (first divergence)", v, got[v], want[v])
		}
	}
}

// TestCLIGrazelleServeStore exercises the store-backed serving surface:
// snapshot persistence across a restart with bit-identical query results,
// graph deletion, the stats endpoint, admission-control rejection, and
// graceful shutdown on SIGTERM.
func TestCLIGrazelleServeStore(t *testing.T) {
	dataDir := t.TempDir()
	// -cache-bypass: the 429 loop below repeats one identical query, which
	// the result cache would otherwise serve without touching admission.
	base, cmd := startServe(t,
		"-data-dir", dataDir, "-max-inflight", "1", "-max-queue", "0", "-cache-bypass")
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()
	sc := newServeClient(t, base)

	// Load two graphs; both must be snapshotted into the data dir.
	code, m := sc.do("POST", "/v1/graphs", `{"name":"g","dataset":"C","scale":0.25}`)
	if code != 200 {
		t.Fatalf("load g: status %d body %v", code, m)
	}
	if snap, _ := m["snapshotted"].(bool); !snap {
		t.Errorf("graph info after add = %v, want snapshotted", m)
	}
	if code, m = sc.do("POST", "/v1/graphs", `{"name":"doomed","dataset":"D","scale":0.1}`); code != 200 {
		t.Fatalf("load doomed: status %d body %v", code, m)
	}

	// Reference query, carrying per-vertex values for the exactness check.
	code, ref := sc.do("POST", "/v1/query", `{"graph":"g","app":"pr","iters":8,"values":true}`)
	if code != 200 {
		t.Fatalf("pr query: status %d body %v", code, ref)
	}
	refValues, ok := ref["values"].([]any)
	if !ok || len(refValues) == 0 {
		t.Fatalf("pr query returned no values: %v", ref)
	}

	// DELETE unregisters and clears the snapshot; 404 afterwards and for
	// unknown names.
	if code, m = sc.do("DELETE", "/v1/graphs/doomed", ""); code != 200 {
		t.Fatalf("delete: status %d body %v", code, m)
	}
	if code, _ = sc.do("DELETE", "/v1/graphs/doomed", ""); code != 404 {
		t.Errorf("double delete: status %d, want 404", code)
	}
	if code, _ = sc.do("POST", "/v1/query", `{"graph":"doomed","app":"pr"}`); code != 404 {
		t.Errorf("query deleted graph: status %d, want 404", code)
	}

	// Stats reflect the registry and the admission configuration.
	code, st := sc.do("GET", "/v1/stats", "")
	if code != 200 {
		t.Fatalf("stats: status %d body %v", code, st)
	}
	if n, _ := st["graphs"].(float64); n != 1 {
		t.Errorf("stats graphs = %v, want 1", st["graphs"])
	}
	if b, _ := st["bytes_resident"].(float64); b <= 0 {
		t.Errorf("stats bytes_resident = %v, want > 0", st["bytes_resident"])
	}
	if mi, _ := st["max_in_flight"].(float64); mi != 1 {
		t.Errorf("stats max_in_flight = %v, want 1", st["max_in_flight"])
	}

	// Admission: with one slot and no queue, a long-running query forces
	// the next one to be refused with 429.
	long := make(chan int, 1)
	go func() {
		code, _ := sc.do("POST", "/v1/query", `{"graph":"g","app":"pr","iters":1048576,"timeout_ms":3000}`)
		long <- code
	}()
	got429 := false
	deadline := time.Now().Add(5 * time.Second)
	for !got429 && time.Now().Before(deadline) {
		code, body := sc.do("POST", "/v1/query", `{"graph":"g","app":"pr","iters":2}`)
		switch code {
		case 429:
			if !strings.Contains(body["error"].(string), "overloaded") {
				t.Errorf("429 body = %v, want overloaded error", body)
			}
			got429 = true
		case 200:
			time.Sleep(5 * time.Millisecond) // long query not admitted yet
		default:
			t.Fatalf("concurrent query: status %d body %v", code, body)
		}
	}
	if !got429 {
		t.Error("never observed a 429 while the slot was held")
	}
	if code := <-long; code != 200 && code != 504 {
		t.Errorf("long query: status %d, want 200 or 504", code)
	}
	code, st = sc.do("GET", "/v1/stats", "")
	if code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	if rej, _ := st["rejected"].(float64); got429 && rej < 1 {
		t.Errorf("stats rejected = %v, want >= 1", st["rejected"])
	}

	// Graceful shutdown: SIGTERM drains and exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("server exit after SIGTERM: %v", err)
	}
	killed = true

	// Restart against the same data dir: the graph rehydrates from its
	// snapshot and serves bit-identical results.
	base2, cmd2 := startServe(t, "-data-dir", dataDir)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	sc2 := newServeClient(t, base2)

	code, list := sc2.do("GET", "/v1/graphs", "")
	if code != 200 {
		t.Fatalf("list after restart: status %d body %v", code, list)
	}
	graphs, _ := list["graphs"].([]any)
	if len(graphs) != 1 {
		t.Fatalf("graphs after restart = %v, want just g", list)
	}
	info, _ := graphs[0].(map[string]any)
	if info["name"] != "g" || info["resident"] != false {
		t.Errorf("graph after restart = %v, want cold g", info)
	}

	code, got := sc2.do("POST", "/v1/query", `{"graph":"g","app":"pr","iters":8,"values":true}`)
	if code != 200 {
		t.Fatalf("pr query after restart: status %d body %v", code, got)
	}
	gotValues, _ := got["values"].([]any)
	if len(gotValues) != len(refValues) {
		t.Fatalf("values length %d, want %d", len(gotValues), len(refValues))
	}
	for i := range refValues {
		if refValues[i] != gotValues[i] {
			t.Fatalf("values[%d] = %v, want %v (rehydrated results differ)", i, gotValues[i], refValues[i])
		}
	}
}

// postJSONRaw is a goroutine-safe query helper for the chaos tests: unlike
// serveClient it reports failures as values instead of calling t.Fatal, so it
// can run from spawned goroutines.
func postJSONRaw(client *http.Client, url, body string) (int, map[string]any, error) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, m, nil
}

// TestCLIGrazelleServeChaosPanic is the acceptance chaos drill: with a
// failpoint armed to panic inside exactly one engine chunk, N concurrent
// queries must yield exactly one contained 500 while the other N-1 return
// bit-identical results, and the server must keep serving afterwards —
// liveness probe green, follow-up query healthy, no leaked admission slots.
func TestCLIGrazelleServeChaosPanic(t *testing.T) {
	// -cache-bypass: this drill needs N independent runs so exactly one hits
	// the single-shot failpoint; coalescing would share one run (and its
	// panic) across all N clients.
	base, cmd := startServeEnv(t,
		[]string{"GRAZELLE_FAILPOINTS=core/chunk=panic*1"},
		"-d", "C", "-scale", "0.25", "-cache-bypass")
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	client := &http.Client{Timeout: 30 * time.Second}

	const n = 6
	const query = `{"app":"pr","iters":8,"values":true}`
	type result struct {
		code int
		body map[string]any
		err  error
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func() {
			code, m, err := postJSONRaw(client, base+"/v1/query", query)
			results <- result{code, m, err}
		}()
	}

	var fails, oks int
	var failBody map[string]any
	var survivors [][]any
	for i := 0; i < n; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("concurrent query: %v (server died?)", r.err)
		}
		switch r.code {
		case 500:
			fails++
			failBody = r.body
		case 200:
			oks++
			vals, ok := r.body["values"].([]any)
			if !ok || len(vals) == 0 {
				t.Fatalf("surviving query returned no values: %v", r.body)
			}
			survivors = append(survivors, vals)
		default:
			t.Fatalf("concurrent query: status %d body %v, want 200 or 500", r.code, r.body)
		}
	}
	if fails != 1 || oks != n-1 {
		t.Fatalf("got %d failed / %d ok queries, want exactly 1 / %d", fails, oks, n-1)
	}
	if msg, _ := failBody["error"].(string); !strings.Contains(msg, "panic") {
		t.Errorf("500 body = %v, want a contained-panic error", failBody)
	}
	for i := 1; i < len(survivors); i++ {
		if len(survivors[i]) != len(survivors[0]) {
			t.Fatalf("survivor %d has %d values, survivor 0 has %d", i, len(survivors[i]), len(survivors[0]))
		}
		for j := range survivors[i] {
			if survivors[i][j] != survivors[0][j] {
				t.Fatalf("survivors disagree at vertex %d: %v vs %v", j, survivors[i][j], survivors[0][j])
			}
		}
	}

	// The panic was contained: the process is alive, a fresh query works (the
	// failpoint's one shot is spent) and matches the survivors bit for bit.
	resp, err := client.Get(base + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz after panic: %v %v", resp, err)
	}
	resp.Body.Close()
	code, after, err := postJSONRaw(client, base+"/v1/query", query)
	if err != nil || code != 200 {
		t.Fatalf("query after panic: status %d err %v body %v", code, err, after)
	}
	afterVals, _ := after["values"].([]any)
	if len(afterVals) != len(survivors[0]) {
		t.Fatalf("post-panic values length %d, want %d", len(afterVals), len(survivors[0]))
	}
	for j := range afterVals {
		if afterVals[j] != survivors[0][j] {
			t.Fatalf("post-panic values[%d] = %v, want %v", j, afterVals[j], survivors[0][j])
		}
	}

	// No admission slot leaked across the contained failure.
	sc := newServeClient(t, base)
	codeSt, st := sc.do("GET", "/v1/stats", "")
	if codeSt != 200 {
		t.Fatalf("stats: status %d", codeSt)
	}
	if inf, _ := st["in_flight"].(float64); inf != 0 {
		t.Errorf("stats in_flight = %v after chaos run, want 0", st["in_flight"])
	}
	if q, _ := st["queued"].(float64); q != 0 {
		t.Errorf("stats queued = %v after chaos run, want 0", st["queued"])
	}
}

// TestCLIGrazelleServeHandlerPanicReleasesSlot arms the serve/handler
// failpoint — a panic raised after admission but before the query runs — and
// verifies the recovery middleware turns it into a 500 while the deferred
// release still frees the only admission slot: with max-inflight 1 and no
// queue, the very next query would 429 forever if the slot leaked.
func TestCLIGrazelleServeHandlerPanicReleasesSlot(t *testing.T) {
	base, cmd := startServeEnv(t,
		[]string{"GRAZELLE_FAILPOINTS=serve/handler=panic*1"},
		"-d", "C", "-scale", "0.25", "-max-inflight", "1", "-max-queue", "0")
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	sc := newServeClient(t, base)

	code, body := sc.do("POST", "/v1/query", `{"app":"pr","iters":2}`)
	if code != 500 {
		t.Fatalf("panicking handler: status %d body %v, want 500", code, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "panic") {
		t.Errorf("500 body = %v, want panic message", body)
	}

	// Readiness is still green (a contained handler panic is not degradation)
	// and the slot came back: the next query is admitted and succeeds.
	if resp, err := sc.c.Get(base + "/readyz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("readyz after handler panic: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
	code, body = sc.do("POST", "/v1/query", `{"app":"pr","iters":2}`)
	if code != 200 {
		t.Fatalf("query after handler panic: status %d body %v (admission slot leaked?)", code, body)
	}
	codeSt, st := sc.do("GET", "/v1/stats", "")
	if codeSt != 200 {
		t.Fatalf("stats: status %d", codeSt)
	}
	if inf, _ := st["in_flight"].(float64); inf != 0 {
		t.Errorf("stats in_flight = %v, want 0", st["in_flight"])
	}
}

// TestCLIGrazelleServeCrashRecovery is the streaming-mutation crash drill:
// acknowledged edge batches must survive a SIGKILL (WAL replay serves a
// bit-identical view on restart), and a batch whose WAL fsync failed — the
// server said no — must be absent after the next crash, not half-applied.
func TestCLIGrazelleServeCrashRecovery(t *testing.T) {
	dataDir := t.TempDir()
	const mutate = `{"ops":[{"src":1,"dst":2,"weight":1.5},{"delete":true,"src":2,"dst":3},{"src":4,"dst":1,"weight":0.5}]}`
	const query = `{"graph":"g","app":"pr","iters":8,"values":true,"no_cache":true}`

	// Phase 1: load a graph, apply two acknowledged mutation batches, record
	// the served values, then crash without any shutdown grace.
	base, cmd := startServe(t, "-data-dir", dataDir)
	sc := newServeClient(t, base)
	if code, m := sc.do("POST", "/v1/graphs", `{"name":"g","dataset":"C","scale":0.25}`); code != 200 {
		t.Fatalf("load g: status %d body %v", code, m)
	}
	var lastVersion float64
	for i := 0; i < 2; i++ {
		code, m := sc.do("POST", "/v1/graphs/g/edges", mutate)
		if code != 200 {
			t.Fatalf("mutation %d: status %d body %v", i, code, m)
		}
		if v, _ := m["version"].(float64); v <= lastVersion {
			t.Fatalf("mutation %d version = %v, want > %v", i, m["version"], lastVersion)
		} else {
			lastVersion = v
		}
	}
	code, ref := sc.do("POST", "/v1/query", query)
	if code != 200 {
		t.Fatalf("reference query: status %d body %v", code, ref)
	}
	refValues, _ := ref["values"].([]any)
	if len(refValues) == 0 {
		t.Fatal("reference query returned no values")
	}
	cmd.Process.Kill()
	cmd.Wait()

	// Phase 2: restart with the WAL fsync failpoint armed. The two acked
	// batches replay bit-identically; the next batch is refused (its fsync
	// fails, the tail rolls back) before this instance is crashed too.
	base2, cmd2 := startServeEnv(t,
		[]string{"GRAZELLE_FAILPOINTS=store/wal-fsync=error*1"},
		"-data-dir", dataDir)
	sc2 := newServeClient(t, base2)
	code, got := sc2.do("POST", "/v1/query", query)
	if code != 200 {
		t.Fatalf("query after crash: status %d body %v", code, got)
	}
	assertSameValues(t, refValues, got["values"], "acked batches after SIGKILL")
	code, m := sc2.do("POST", "/v1/graphs/g/edges", `{"ops":[{"src":7,"dst":8,"weight":9.0}]}`)
	if code == 200 {
		t.Fatalf("mutation with failing fsync: status 200 body %v, want refusal", m)
	}
	cmd2.Process.Kill()
	cmd2.Wait()

	// Phase 3: clean restart. The refused batch must be absent — the served
	// view still matches the two acknowledged batches exactly — and writes
	// work again.
	base3, cmd3 := startServe(t, "-data-dir", dataDir)
	defer func() {
		cmd3.Process.Kill()
		cmd3.Wait()
	}()
	sc3 := newServeClient(t, base3)
	code, got = sc3.do("POST", "/v1/query", query)
	if code != 200 {
		t.Fatalf("query after second crash: status %d body %v", code, got)
	}
	assertSameValues(t, refValues, got["values"], "unacked batch rolled back")
	if code, m := sc3.do("POST", "/v1/graphs/g/edges", mutate); code != 200 {
		t.Fatalf("post-recovery mutation: status %d body %v", code, m)
	}
	if code, m := sc3.do("POST", "/v1/graphs/g/compact", ""); code != 200 {
		t.Fatalf("compact: status %d body %v", code, m)
	}
	// Compaction is bit-preserving and idempotent on an empty overlay.
	if code, m := sc3.do("POST", "/v1/graphs/g/compact", ""); code != 200 {
		t.Fatalf("second compact: status %d body %v", code, m)
	}
}

// assertSameValues compares two JSON-decoded per-vertex value arrays
// exactly. JSON float round-tripping is bit-faithful for float64, so
// interface equality here is bit-identity of the served values.
func assertSameValues(t *testing.T, want []any, gotAny any, label string) {
	t.Helper()
	got, _ := gotAny.([]any)
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: values[%d] = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// doRaw is do returning the raw response bytes and headers — for the tests
// that assert byte-identity between cached and fresh payloads.
func (sc *serveClient) doRaw(method, path, body string) (int, http.Header, []byte) {
	sc.t.Helper()
	req, err := http.NewRequest(method, sc.base+path, strings.NewReader(body))
	if err != nil {
		sc.t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := sc.c.Do(req)
	if err != nil {
		sc.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		sc.t.Fatalf("%s %s: read: %v", method, path, err)
	}
	return resp.StatusCode, resp.Header, raw
}

// metric scrapes one counter/gauge value from GET /metrics (0 if absent).
func (sc *serveClient) metric(name string) float64 {
	sc.t.Helper()
	resp, err := sc.c.Get(sc.base + "/metrics")
	if err != nil {
		sc.t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	s := bufio.NewScanner(resp.Body)
	for s.Scan() {
		fields := strings.Fields(s.Text())
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				sc.t.Fatalf("metric %s = %q: %v", name, fields[1], err)
			}
			return v
		}
	}
	return 0
}

// TestServeIncrementalQuery drives the incremental-recompute path end to
// end: a cold query retains its lanes as a seed, a small mutation batch
// moves the version, and the next identical query warm-starts from the
// predecessor — surfacing `incremental: true` plus the seed version in both
// the response and the run record, bumping grazelle_incremental_seeded_total,
// and still hitting the result cache byte-identically on repeat.
func TestServeIncrementalQuery(t *testing.T) {
	base, cmd := startServe(t, "-data-dir", t.TempDir())
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	sc := newServeClient(t, base)
	if code, m := sc.do("POST", "/v1/graphs", `{"name":"g","dataset":"C","scale":0.25}`); code != 200 {
		t.Fatalf("load g: status %d body %v", code, m)
	}
	const query = `{"graph":"g","app":"cc","values":true}`

	// Cold query: no predecessor yet, so no incremental flag; its result is
	// offered as the seed candidate.
	code, cold := sc.do("POST", "/v1/query", query)
	if code != 200 {
		t.Fatalf("cold query: status %d body %v", code, cold)
	}
	if _, ok := cold["incremental"]; ok {
		t.Fatalf("cold query claims incremental: %v", cold)
	}

	// A small insert-only batch: cc's planner accepts any such delta.
	code, mut := sc.do("POST", "/v1/graphs/g/edges",
		`{"ops":[{"src":1,"dst":2,"weight":1},{"src":3,"dst":4,"weight":1}]}`)
	if code != 200 {
		t.Fatalf("mutation: status %d body %v", code, mut)
	}

	code, hdr, raw := sc.doRaw("POST", "/v1/query", query)
	if code != 200 {
		t.Fatalf("incremental query: status %d body %s", code, raw)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if inc, _ := m["incremental"].(bool); !inc {
		t.Fatalf("query after mutation not incremental: %v", m)
	}
	sv, _ := m["seed_version"].(float64)
	if sv < 1 {
		t.Fatalf("seed_version = %v, want >= 1", m["seed_version"])
	}
	if _, ok := m["components"]; !ok {
		t.Fatalf("incremental cc response missing components: %v", m)
	}
	if got := hdr.Get("X-Cache"); got != "miss" {
		t.Errorf("incremental query X-Cache = %q, want miss (new version)", got)
	}

	// The run record carries the same incremental marker.
	runID, _ := m["run_id"].(string)
	code, rec := sc.do("GET", "/v1/runs/"+runID, "")
	if code != 200 {
		t.Fatalf("run record: status %d body %v", code, rec)
	}
	if inc, _ := rec["incremental"].(bool); !inc {
		t.Errorf("run record not incremental: %v", rec)
	}
	if rsv, _ := rec["seed_version"].(float64); rsv != sv {
		t.Errorf("record seed_version = %v, response had %v", rec["seed_version"], sv)
	}

	// Metrics: exactly one warm start, no fallback.
	if v := sc.metric("grazelle_incremental_seeded_total"); v != 1 {
		t.Errorf("grazelle_incremental_seeded_total = %v, want 1", v)
	}
	if v := sc.metric("grazelle_incremental_fallback_total"); v != 0 {
		t.Errorf("grazelle_incremental_fallback_total = %v, want 0", v)
	}

	// Repeating the query hits the result cache with the byte-identical
	// payload the incremental run produced.
	code, hdr2, raw2 := sc.doRaw("POST", "/v1/query", query)
	if code != 200 {
		t.Fatalf("repeat query: status %d", code)
	}
	if got := hdr2.Get("X-Cache"); got != "hit" {
		t.Errorf("repeat query X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(raw, raw2) {
		t.Errorf("cached payload differs from incremental payload:\n%s\n%s", raw, raw2)
	}
	if v := sc.metric("grazelle_incremental_seeded_total"); v != 1 {
		t.Errorf("cache hit bumped seeded_total to %v", v)
	}
}

// TestServeIncrementalSeedFaultFallsBack arms the core/incremental-seed
// failpoint in the child server: the seeded run's install panics, the
// engine degrades to a cold full recompute, and the query still answers
// correctly — no incremental flag, the fallback counter bumped, and no
// admission slot leaked.
func TestServeIncrementalSeedFaultFallsBack(t *testing.T) {
	base, cmd := startServeEnv(t,
		[]string{"GRAZELLE_FAILPOINTS=core/incremental-seed=panic*1"},
		"-data-dir", t.TempDir())
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	sc := newServeClient(t, base)
	if code, m := sc.do("POST", "/v1/graphs", `{"name":"g","dataset":"C","scale":0.25}`); code != 200 {
		t.Fatalf("load g: status %d body %v", code, m)
	}
	const query = `{"graph":"g","app":"cc","values":true}`
	if code, m := sc.do("POST", "/v1/query", query); code != 200 {
		t.Fatalf("cold query: status %d body %v", code, m)
	}
	if code, m := sc.do("POST", "/v1/graphs/g/edges",
		`{"ops":[{"src":1,"dst":2,"weight":1}]}`); code != 200 {
		t.Fatalf("mutation: status %d body %v", code, m)
	}

	code, m := sc.do("POST", "/v1/query", query)
	if code != 200 {
		t.Fatalf("query under seed fault: status %d body %v", code, m)
	}
	if _, ok := m["incremental"]; ok {
		t.Fatalf("faulted seed still reported incremental: %v", m)
	}
	// The degraded run is a full recompute: its values must match an
	// uncached cold run of the same query.
	code, ref := sc.do("POST", "/v1/query", `{"graph":"g","app":"cc","values":true,"no_cache":true}`)
	if code != 200 {
		t.Fatalf("reference query: status %d body %v", code, ref)
	}
	assertSameValues(t, ref["values"].([]any), m["values"], "fallback vs cold")

	if v := sc.metric("grazelle_incremental_fallback_total"); v < 1 {
		t.Errorf("grazelle_incremental_fallback_total = %v, want >= 1", v)
	}
	if v := sc.metric("grazelle_incremental_seeded_total"); v != 0 {
		t.Errorf("grazelle_incremental_seeded_total = %v, want 0", v)
	}
	code, st := sc.do("GET", "/v1/stats", "")
	if code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	if inf, _ := st["in_flight"].(float64); inf != 0 {
		t.Errorf("stats in_flight = %v after seed fault, want 0", st["in_flight"])
	}
}
