package grazelle

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildCmd compiles one of the repository's executables into a shared temp
// dir, once per test process.
var (
	cliOnce sync.Once
	cliDir  string
	cliErr  error
)

func cliBinaries(t *testing.T) string {
	t.Helper()
	cliOnce.Do(func() {
		cliDir, cliErr = os.MkdirTemp("", "grazelle-cli")
		if cliErr != nil {
			return
		}
		for _, tool := range []string{"grazelle", "gengraph", "benchfig"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(cliDir, tool), "./cmd/"+tool)
			out, err := cmd.CombinedOutput()
			if err != nil {
				cliErr = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
	})
	if cliErr != nil {
		t.Skipf("cannot build CLI binaries: %v", cliErr)
	}
	return cliDir
}

func runCLI(t *testing.T, name string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(cliBinaries(t), name), args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCLIGrazellePageRank(t *testing.T) {
	out, err := runCLI(t, "grazelle", "-d", "C", "-scale", "0.25", "-a", "pr", "-N", "4", "-counters")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"PageRank Sum: 1.0000", "Iterations: 4 (pull 4, push 0)", "Edge counters:", "atomics=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIGrazelleRejectsBadFlags(t *testing.T) {
	if out, err := runCLI(t, "grazelle"); err == nil {
		t.Errorf("no input accepted:\n%s", out)
	}
	if out, err := runCLI(t, "grazelle", "-d", "C", "-a", "nope"); err == nil {
		t.Errorf("bad app accepted:\n%s", out)
	}
	if out, err := runCLI(t, "grazelle", "-d", "C", "-variant", "nope"); err == nil {
		t.Errorf("bad variant accepted:\n%s", out)
	}
	if out, err := runCLI(t, "grazelle", "-d", "C", "-a", "sssp"); err == nil {
		t.Errorf("SSSP on unweighted graph accepted:\n%s", out)
	}
}

func TestCLIGengraphAndLoad(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "mesh")
	out, err := runCLI(t, "gengraph", "-kind", "mesh", "-rows", "10", "-cols", "10", "-weighted", "-o", base)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "100 vertices") {
		t.Errorf("gengraph output: %s", out)
	}
	// The pair must load and run through the grazelle CLI, SSSP included.
	outFile := filepath.Join(dir, "dist.txt")
	out, err = runCLI(t, "grazelle", "-i", base, "-a", "sssp", "-o", outFile)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "Reached: 100 of 100") {
		t.Errorf("sssp output: %s", out)
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 100 {
		t.Errorf("output file has %d lines, want 100", lines)
	}
}

func TestCLIGengraphTextConversion(t *testing.T) {
	dir := t.TempDir()
	txt := filepath.Join(dir, "in.txt")
	if err := os.WriteFile(txt, []byte("# demo\n0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "tri")
	out, err := runCLI(t, "gengraph", "-kind", "text", "-in", txt, "-o", base)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	out, err = runCLI(t, "grazelle", "-i", base, "-a", "cc")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "Components: 1") {
		t.Errorf("cc output: %s", out)
	}
}

func TestCLIBenchfig(t *testing.T) {
	out, err := runCLI(t, "benchfig", "-list")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"fig5", "fig9", "table1"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing %q", want)
		}
	}
	out, err = runCLI(t, "benchfig", "-quick", "-datasets", "C", "fig9")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "Figure 9a") || !strings.Contains(out, "Figure 9b") {
		t.Errorf("fig9 output:\n%s", out)
	}
	if out, err = runCLI(t, "benchfig", "nope"); err == nil {
		t.Errorf("unknown experiment accepted:\n%s", out)
	}
	if out, err = runCLI(t, "benchfig"); err == nil {
		t.Errorf("no experiment accepted:\n%s", out)
	}
}

func TestCLIGrazelleServe(t *testing.T) {
	bin := filepath.Join(cliBinaries(t), "grazelle")
	cmd := exec.Command(bin, "serve", "-addr", "127.0.0.1:0", "-d", "C", "-scale", "0.25")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The server prints its resolved address once the listener is up.
	var base string
	{
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "http://"); i >= 0 {
				base = strings.TrimSpace(line[i:])
				break
			}
		}
		if base == "" {
			t.Fatalf("server never announced its address: %v", sc.Err())
		}
	}
	client := &http.Client{Timeout: 30 * time.Second}
	postJSON := func(path, body string) (int, map[string]any) {
		t.Helper()
		resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("POST %s: decode: %v", path, err)
		}
		return resp.StatusCode, m
	}

	if resp, err := client.Get(base + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	// PageRank on the preloaded "default" graph.
	code, m := postJSON("/v1/query", `{"app":"pr","iters":8}`)
	if code != 200 {
		t.Fatalf("pr query: status %d body %v", code, m)
	}
	if sum, ok := m["rank_sum"].(float64); !ok || sum < 0.999 || sum > 1.001 {
		t.Errorf("rank_sum = %v", m["rank_sum"])
	}
	if it, _ := m["iterations"].(float64); it != 8 {
		t.Errorf("iterations = %v, want 8", m["iterations"])
	}

	// Load a second graph through the API and query it.
	code, m = postJSON("/v1/graphs", `{"name":"d2","dataset":"D","scale":0.1}`)
	if code != 200 {
		t.Fatalf("load graph: status %d body %v", code, m)
	}
	code, m = postJSON("/v1/query", `{"graph":"d2","app":"cc"}`)
	if code != 200 {
		t.Fatalf("cc query: status %d body %v", code, m)
	}
	if _, ok := m["components"]; !ok {
		t.Errorf("cc response missing components: %v", m)
	}

	// Unknown graph and unknown app are client errors.
	if code, _ = postJSON("/v1/query", `{"graph":"nope","app":"pr"}`); code != 404 {
		t.Errorf("unknown graph: status %d, want 404", code)
	}
	if code, _ = postJSON("/v1/query", `{"app":"nope"}`); code != 400 {
		t.Errorf("unknown app: status %d, want 400", code)
	}

	// A 1 ms budget cannot fit 1<<20 PageRank iterations: the per-request
	// timeout must cut the run short with 504.
	code, m = postJSON("/v1/query", `{"app":"pr","iters":1048576,"timeout_ms":1}`)
	if code != 504 {
		t.Errorf("timeout query: status %d body %v, want 504", code, m)
	}
}
