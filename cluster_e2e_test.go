package grazelle

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// End-to-end tests for the cluster tier: a `grazelle router` process
// scatter-gathering queries over `grazelle worker` processes through the
// network frontier exchange, compared byte-for-byte against a single-process
// `grazelle serve` on the same graph.

// startRole launches one grazelle process in the given serve-family role and
// returns its announced base URL. Callers own shutdown via the returned cmd.
func startRole(t *testing.T, role string, extra ...string) (string, *exec.Cmd) {
	t.Helper()
	bin := filepath.Join(cliBinaries(t), "grazelle")
	args := append([]string{role, "-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "http://"); i >= 0 {
			// Keep draining the pipe so the child never blocks on a full
			// stdout buffer while logging requests.
			go func() {
				for sc.Scan() {
				}
			}()
			return strings.TrimSpace(line[i:]), cmd
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatalf("%s never announced its address: %v", role, sc.Err())
	return "", nil
}

func stopCmd(cmd *exec.Cmd) {
	cmd.Process.Kill()
	cmd.Wait()
}

// clusterQueryNorm strips the per-process response fields (run_id, elapsed
// wall time) so payloads from different processes can be compared
// byte-for-byte.
var clusterNormRE = regexp.MustCompile(`"run_id":"[^"]*"|"elapsed_ms":[0-9]+`)

func normalizePayload(b []byte) string {
	return clusterNormRE.ReplaceAllStringFunc(string(b), func(m string) string {
		if strings.HasPrefix(m, `"run_id"`) {
			return `"run_id":"X"`
		}
		return `"elapsed_ms":0`
	})
}

func clusterQuery(t *testing.T, client *http.Client, base, body string) (int, []byte) {
	t.Helper()
	resp, err := client.Post(base+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s/v1/query: %v", base, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, payload
}

// nineApps is one query per registered application, covering rooted,
// weighted, thresholded, and frontier-blind programs. The graph is weighted
// so wpr and sssp run too.
var nineApps = []string{
	`{"app":"pr","iters":8,"values":true}`,
	`{"app":"wpr","iters":8,"values":true}`,
	`{"app":"cc","values":true}`,
	`{"app":"bfs","root":1,"values":true}`,
	`{"app":"sssp","root":1,"values":true}`,
	`{"app":"tc","values":true}`,
	`{"app":"kcore","k":2,"values":true}`,
	`{"app":"lp","iters":4,"values":true}`,
	`{"app":"ppr","root":2,"iters":6,"values":true}`,
}

// weightedPair generates a small weighted graph file pair shared by the
// router, its workers (via resync), and the single-process reference.
func weightedPair(t *testing.T) string {
	t.Helper()
	base := filepath.Join(t.TempDir(), "mesh")
	if out, err := runCLI(t, "gengraph", "-kind", "mesh", "-rows", "12", "-cols", "12", "-weighted", "-o", base); err != nil {
		t.Fatalf("gengraph: %v\n%s", err, out)
	}
	return base
}

// waitClusterReady polls GET /v1/cluster until the roster has n healthy,
// synced workers — resync must have pushed the preloaded graph by then.
func waitClusterReady(t *testing.T, client *http.Client, base string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/v1/cluster")
		if err == nil {
			var st struct {
				Workers []struct {
					Healthy bool `json:"healthy"`
					Synced  bool `json:"synced"`
				} `json:"workers"`
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err == nil {
				ready := 0
				for _, w := range st.Workers {
					if w.Healthy && w.Synced {
						ready++
					}
				}
				if ready >= n {
					return
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("cluster at %s never reached %d ready workers", base, n)
}

// TestClusterServeByteIdentity runs all nine applications through routers
// over 1-, 2-, and 4-worker rosters at 2 and 4 partitions and requires every
// response to be byte-identical (modulo run_id and wall time) to a
// single-process serve with the same partition count.
func TestClusterServeByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess cluster matrix")
	}
	base := weightedPair(t)
	client := &http.Client{Timeout: 60 * time.Second}

	// Reference payloads: one single-process serve per partition count.
	reference := map[int]map[string]string{}
	for _, parts := range []int{2, 4} {
		sURL, sCmd := startServe(t, "-i", base, "-partitions", fmt.Sprint(parts))
		reference[parts] = map[string]string{}
		for _, q := range nineApps {
			code, payload := clusterQuery(t, client, sURL, q)
			if code != 200 {
				t.Fatalf("reference p=%d %s: status %d: %s", parts, q, code, payload)
			}
			reference[parts][q] = normalizePayload(payload)
		}
		stopCmd(sCmd)
	}

	// Worker pool shared by every roster size.
	workerURLs := make([]string, 4)
	for i := range workerURLs {
		u, cmd := startRole(t, "worker")
		workerURLs[i] = u
		t.Cleanup(func() { stopCmd(cmd) })
	}

	for _, workers := range []int{1, 2, 4} {
		for _, parts := range []int{2, 4} {
			t.Run(fmt.Sprintf("w%dp%d", workers, parts), func(t *testing.T) {
				roster := strings.Join(workerURLs[:workers], ",")
				rURL, rCmd := startRole(t, "router",
					"-workers", roster, "-i", base,
					"-partitions", fmt.Sprint(parts),
					"-health-interval", "100ms")
				defer stopCmd(rCmd)
				waitClusterReady(t, client, rURL, workers)
				for _, q := range nineApps {
					code, payload := clusterQuery(t, client, rURL, q)
					if code != 200 {
						t.Fatalf("%s: status %d: %s", q, code, payload)
					}
					if got := normalizePayload(payload); got != reference[parts][q] {
						t.Errorf("%s: cluster response diverges from single-process\n got: %.300s\nwant: %.300s",
							q, got, reference[parts][q])
					}
				}
			})
		}
	}
}

// TestClusterMutationVisibility applies a streaming edge mutation through
// the router and requires the next cluster query to reflect it — the
// broadcast + catalog path keeping replicas in lockstep — and to stay
// byte-identical to a single-process serve given the same mutation.
func TestClusterMutationVisibility(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess cluster test")
	}
	client := &http.Client{Timeout: 60 * time.Second}
	w1, c1 := startRole(t, "worker")
	defer stopCmd(c1)
	w2, c2 := startRole(t, "worker")
	defer stopCmd(c2)
	rURL, rc := startRole(t, "router", "-workers", w1+","+w2, "-d", "C", "-scale", "0.25", "-health-interval", "100ms")
	defer stopCmd(rc)
	sURL, sc := startServe(t, "-d", "C", "-scale", "0.25", "-partitions", "2")
	defer stopCmd(sc)
	waitClusterReady(t, client, rURL, 2)

	mutate := func(base string) {
		t.Helper()
		resp, err := client.Post(base+"/v1/graphs/default/edges", "application/json",
			strings.NewReader(`{"ops":[{"src":0,"dst":40},{"src":40,"dst":0}]}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("mutation on %s: status %d", base, resp.StatusCode)
		}
	}
	mutate(rURL)
	mutate(sURL)

	q := `{"app":"cc","values":true}`
	code, clPayload := clusterQuery(t, client, rURL, q)
	if code != 200 {
		t.Fatalf("cluster cc after mutation: status %d: %s", code, clPayload)
	}
	code, spPayload := clusterQuery(t, client, sURL, q)
	if code != 200 {
		t.Fatalf("single cc after mutation: status %d: %s", code, spPayload)
	}
	if normalizePayload(clPayload) != normalizePayload(spPayload) {
		t.Errorf("post-mutation responses diverge:\n got: %.300s\nwant: %.300s", clPayload, spPayload)
	}
}

// TestClusterWorkerKillDrill SIGKILLs one worker and requires the router to
// degrade exactly as specified: every in-flight or subsequent query either
// fails over to the survivor (200) or returns a typed 503/502 — never a hang
// or a silent wrong answer — admission slots all drain, and service fully
// recovers on the surviving replica.
func TestClusterWorkerKillDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess cluster test")
	}
	client := &http.Client{Timeout: 60 * time.Second}
	w1, c1 := startRole(t, "worker")
	defer stopCmd(c1)
	w2, c2 := startRole(t, "worker")
	rURL, rc := startRole(t, "router", "-workers", w1+","+w2, "-d", "C", "-scale", "0.25",
		"-health-interval", "100ms", "-exchange-timeout", "5s")
	defer stopCmd(rc)
	waitClusterReady(t, client, rURL, 2)

	// Warm query over both workers.
	if code, payload := clusterQuery(t, client, rURL, `{"app":"bfs","root":1}`); code != 200 {
		t.Fatalf("warm bfs: status %d: %s", code, payload)
	}

	// Kill one worker; the very next queries race the health loop, so each
	// must either fail over (200) or surface a typed retryable error.
	c2.Process.Kill()
	c2.Wait()
	recovered := false
	for i := 0; i < 20 && !recovered; i++ {
		code, payload := clusterQuery(t, client, rURL, fmt.Sprintf(`{"app":"bfs","root":1,"iters":%d,"no_cache":true}`, i+2))
		switch code {
		case 200:
			recovered = true
		case 502, 503:
			// Typed degradation; must carry a JSON error body.
			var eb struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(payload, &eb); err != nil || eb.Error == "" {
				t.Fatalf("untyped %d response: %s", code, payload)
			}
			time.Sleep(100 * time.Millisecond)
		default:
			t.Fatalf("unexpected status %d during kill drill: %s", code, payload)
		}
	}
	if !recovered {
		t.Fatal("router never recovered onto the surviving worker")
	}

	// The survivor now serves alone; failover or health-routing must have
	// engaged, and every admission slot must be back.
	resp, err := client.Get(rURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		InFlight int `json:"in_flight"`
		Cluster  *struct {
			Workers []struct {
				Healthy bool `json:"healthy"`
			} `json:"workers"`
		} `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.InFlight != 0 {
		t.Errorf("admission slots leaked: in_flight = %d", stats.InFlight)
	}
	if stats.Cluster == nil {
		t.Fatal("/v1/stats missing cluster block")
	}
	healthy := 0
	for _, w := range stats.Cluster.Workers {
		if w.Healthy {
			healthy++
		}
	}
	if healthy != 1 {
		t.Errorf("healthy workers = %d after kill, want 1", healthy)
	}

	// Steady state on the survivor is fully functional.
	if code, payload := clusterQuery(t, client, rURL, `{"app":"pr","iters":4,"no_cache":true}`); code != 200 {
		t.Errorf("post-drill pr: status %d: %s", code, payload)
	}
}

// TestClusterStatusEndpoint sanity-checks GET /v1/cluster and the shared
// exchange-bytes metric family on a live router.
func TestClusterStatusEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess cluster test")
	}
	client := &http.Client{Timeout: 60 * time.Second}
	w1, c1 := startRole(t, "worker")
	defer stopCmd(c1)
	rURL, rc := startRole(t, "router", "-workers", w1, "-d", "C", "-scale", "0.25", "-health-interval", "100ms")
	defer stopCmd(rc)
	waitClusterReady(t, client, rURL, 1)

	if code, payload := clusterQuery(t, client, rURL, `{"app":"bfs","root":1}`); code != 200 {
		t.Fatalf("bfs: status %d: %s", code, payload)
	}

	resp, err := client.Get(rURL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Partitions int `json:"partitions"`
		Workers    []struct {
			URL      string `json:"url"`
			BytesIn  uint64 `json:"exchange_bytes_in"`
			BytesOut uint64 `json:"exchange_bytes_out"`
		} `json:"workers"`
		Placement []struct {
			Partition int    `json:"partition"`
			Worker    string `json:"worker"`
		} `json:"placement"`
		Runs uint64 `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Runs == 0 || st.Partitions < 2 || len(st.Placement) != st.Partitions {
		t.Errorf("cluster status: %+v", st)
	}
	if len(st.Workers) != 1 || st.Workers[0].BytesIn == 0 || st.Workers[0].BytesOut == 0 {
		t.Errorf("per-peer exchange bytes not accounted: %+v", st.Workers)
	}

	// The shared family carries the cluster's bytes under transport="net" on
	// the router, and the shmem cell exists too (zero here).
	mresp, err := client.Get(rURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(mb)
	if !strings.Contains(metrics, `grazelle_exchange_bytes_total{transport="net"}`) ||
		!strings.Contains(metrics, `grazelle_exchange_bytes_total{transport="shmem"}`) {
		t.Error("metrics missing grazelle_exchange_bytes_total transports")
	}
	if !strings.Contains(metrics, "grazelle_cluster_runs_total 1") {
		t.Error("metrics missing grazelle_cluster_runs_total")
	}
}
