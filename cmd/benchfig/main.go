// Command benchfig regenerates the paper's evaluation tables and figures.
// Each experiment is named after its figure or table number:
//
//	benchfig fig5            # scheduler awareness on PageRank
//	benchfig fig9 fig10      # Vector-Sparse studies
//	benchfig all             # the complete evaluation
//	benchfig -list           # enumerate experiments
//
// Results print as aligned plain-text tables; EXPERIMENTS.md records a
// committed run next to the paper's reported shapes.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		scale    = flag.Float64("scale", 0, "dataset scale factor (0 = default)")
		workers  = flag.Int("workers", 0, "maximum workers (0 = GOMAXPROCS)")
		prIters  = flag.Int("pr-iters", 0, "PageRank iterations per measurement")
		repeats  = flag.Int("repeats", 0, "timing repetitions (minimum reported)")
		quick    = flag.Bool("quick", false, "reduced sizes for a fast pass")
		datasets = flag.String("datasets", "", "comma-free dataset abbreviations, e.g. \"TDU\" (default all)")
		benchOut = flag.String("bench-json", "", "write a PR/CC/BFS timing snapshot as JSON to this file and exit")
		cacheAB  = flag.Bool("cache-ab", false, "include query-result-cache cold/warm A/B rows in the -bench-json snapshot")
		partAB   = flag.Bool("partition-ab", false, "include partitioned-vs-monolithic coordinator A/B rows in the -bench-json snapshot")
		walBench = flag.Bool("wal-bench", false, "include streaming-mutation write-throughput and recovery-replay rows in the -bench-json snapshot")
		incrAB   = flag.Bool("incremental-ab", false, "include incremental-vs-full recompute A/B rows in the -bench-json snapshot")
		clustAB  = flag.Bool("cluster-ab", false, "include router+2-worker-cluster-vs-monolithic A/B rows in the -bench-json snapshot")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-8s %s\n", e.Name, e.Description)
		}
		return nil
	}

	cfg := harness.Config{
		Scale:         *scale,
		Workers:       *workers,
		PRIters:       *prIters,
		Repeats:       *repeats,
		Quick:         *quick,
		CacheAB:       *cacheAB,
		PartitionAB:   *partAB,
		WALBench:      *walBench,
		IncrementalAB: *incrAB,
		ClusterAB:     *clustAB,
	}
	if *datasets != "" {
		for _, ch := range *datasets {
			d, err := gen.ParseDataset(string(ch))
			if err != nil {
				return err
			}
			cfg.Datasets = append(cfg.Datasets, d)
		}
	}

	if *benchOut != "" {
		f, err := os.Create(*benchOut)
		if err != nil {
			return err
		}
		if err := harness.BenchJSON(cfg, f); err != nil {
			f.Close()
			return err
		}
		fmt.Printf("benchfig: wrote %s\n", *benchOut)
		return f.Close()
	}

	names := flag.Args()
	if len(names) == 0 {
		return fmt.Errorf("no experiments named (try -list or \"all\")")
	}
	if len(names) == 1 && names[0] == "all" {
		names = harness.Names()
	}
	for _, name := range names {
		exp, err := harness.Lookup(name)
		if err != nil {
			return err
		}
		fmt.Printf("# %s: %s\n\n", exp.Name, exp.Description)
		for _, t := range exp.Run(cfg) {
			t.Render(os.Stdout)
		}
	}
	return nil
}
