// Command gengraph generates synthetic graphs — the Table 1 dataset analogs,
// raw R-MAT instances, meshes, and uniform random graphs — and writes them
// as the binary "-push"/"-pull" file pair cmd/grazelle consumes.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind     = flag.String("kind", "dataset", "generator: dataset, rmat, mesh, uniform, text")
		in       = flag.String("in", "", "input text edge list (kind=text)")
		dataset  = flag.String("d", "T", "dataset name or abbreviation (kind=dataset)")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor (kind=dataset)")
		rmatS    = flag.Int("rmat-scale", 14, "log2 vertex count (kind=rmat)")
		edges    = flag.Int("edges", 1_000_000, "edge count (kind=rmat/uniform)")
		a        = flag.Float64("a", 0.57, "R-MAT quadrant A")
		b        = flag.Float64("b", 0.19, "R-MAT quadrant B")
		c        = flag.Float64("c", 0.19, "R-MAT quadrant C")
		rows     = flag.Int("rows", 256, "mesh rows (kind=mesh)")
		cols     = flag.Int("cols", 256, "mesh cols (kind=mesh)")
		vertices = flag.Int("vertices", 1<<16, "vertex count (kind=uniform)")
		seed     = flag.Int64("seed", 1, "random seed")
		weighted = flag.Bool("weighted", false, "attach uniform random weights in [1,10)")
		out      = flag.String("o", "", "output base path (required); writes <o>-push and <o>-pull")
	)
	flag.Parse()
	if *out == "" {
		return fmt.Errorf("-o is required")
	}

	var g *graph.Graph
	switch *kind {
	case "dataset":
		d, err := gen.ParseDataset(*dataset)
		if err != nil {
			return err
		}
		g = gen.Generate(d, *scale)
	case "rmat":
		g = gen.RMAT(*rmatS, *edges, gen.RMATParams{A: *a, B: *b, C: *c, D: 1 - *a - *b - *c}, *seed)
	case "mesh":
		g = gen.Grid(*rows, *cols, *weighted, *seed)
	case "uniform":
		g = gen.ErdosRenyi(*vertices, *edges, *seed)
	case "text":
		if *in == "" {
			return fmt.Errorf("-in is required with kind=text")
		}
		var err error
		g, err = graph.ReadEdgeListFile(*in)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if *weighted && !g.Weighted {
		g = gen.AddUniformWeights(g, *seed+1)
	}
	if err := g.SavePair(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s-push and %s-pull: %d vertices, %d edges, weighted=%v\n",
		*out, *out, g.NumVertices, g.NumEdges(), g.Weighted)
	return nil
}
