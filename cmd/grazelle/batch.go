package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	grazelle "repro"
	"repro/internal/qcache"
)

// POST /v1/batch: run a list of queries in one request. Identical entries
// are deduped within the batch, cache hits are served immediately, and the
// distinct misses run sequentially over a single pinned store handle per
// graph — one acquire, one rehydration at most, instead of one per entry.
// Each entry reports how it was satisfied (hit / miss / coalesced / error),
// mirroring the X-Cache header on the single-query path.

// maxBatchQueries bounds one batch; bigger workloads should stream batches.
const maxBatchQueries = 256

// batchItem is one entry's outcome in the batch response, aligned by index
// with the request's queries.
type batchItem struct {
	// Status is hit, miss, coalesced, or error. In-batch duplicates of a
	// computed entry report coalesced, same as concurrent identical queries.
	Status string `json:"status"`
	// Code and Error carry the HTTP-equivalent status and message for
	// Status == "error" entries.
	Code  int    `json:"code,omitempty"`
	Error string `json:"error,omitempty"`
	// Response is the entry's full query response (the same bytes a
	// /v1/query call would return).
	Response json.RawMessage `json:"response,omitempty"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req struct {
		Queries   []queryRequest `json:"queries"`
		TimeoutMS int64          `json:"timeout_ms"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch: queries is required"))
		return
	}
	if len(req.Queries) > maxBatchQueries {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch of %d exceeds the %d-query limit", len(req.Queries), maxBatchQueries))
		return
	}
	timeout := s.maxTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Dedupe by canonical identity: entries that would share a cache key
	// (same graph, app, canonical params, values, bypass choice) compute
	// once; later duplicates alias the first slot.
	type slot struct {
		req     queryRequest
		indexes []int
	}
	var order []*slot
	seen := make(map[string]*slot)
	items := make([]batchItem, len(req.Queries))
	for i := range req.Queries {
		q := req.Queries[i]
		if err := q.normalize(); err != nil {
			items[i] = batchItem{Status: "error", Code: http.StatusBadRequest, Error: err.Error()}
			continue
		}
		id := fmt.Sprintf("%s|%s|%s|%t", q.Graph, q.App, canonicalQuery(q), q.NoCache)
		if sl, ok := seen[id]; ok {
			sl.indexes = append(sl.indexes, i)
			continue
		}
		sl := &slot{req: q, indexes: []int{i}}
		seen[id] = sl
		order = append(order, sl)
	}

	// One pinned handle per distinct graph for every miss in the batch.
	handles := make(map[string]*grazelle.StoreHandle)
	defer func() {
		for _, h := range handles {
			h.Close()
		}
	}()
	pin := func(graph string) (*grazelle.StoreHandle, error) {
		if h, ok := handles[graph]; ok {
			return h, nil
		}
		h, err := s.store.Acquire(graph)
		if err != nil {
			return nil, err
		}
		handles[graph] = h
		return h, nil
	}

	fill := func(sl *slot, res qcache.Result, outcome string, err error) {
		for n, i := range sl.indexes {
			switch {
			case err != nil:
				items[i] = batchItem{Status: "error", Code: queryStatus(err), Error: err.Error()}
			case n == 0 || outcome == "hit":
				items[i] = batchItem{Status: outcome, Response: res.Payload}
			default:
				// A duplicate of a computed entry rode along for free.
				items[i] = batchItem{Status: "coalesced", Response: res.Payload}
			}
		}
	}

	// Pass 1: serve what the cache already holds.
	type pending struct {
		sl  *slot
		key qcache.Key
	}
	var misses []pending
	for _, sl := range order {
		if s.cache == nil || sl.req.NoCache {
			misses = append(misses, pending{sl: sl})
			continue
		}
		key, err := s.cacheKey(sl.req)
		if err != nil {
			fill(sl, qcache.Result{}, "", err)
			continue
		}
		if res, ok := s.cache.Get(key); ok {
			fill(sl, res, "hit", nil)
			continue
		}
		misses = append(misses, pending{sl: sl, key: key})
	}

	// Pass 2: run the distinct misses sequentially over the pinned handles.
	// Going through Do keeps batch entries coalescible with concurrent
	// single queries; admission still gates each actual run inside compute.
	for _, p := range misses {
		sl := p.sl
		if ctx.Err() != nil {
			fill(sl, qcache.Result{}, "", ctx.Err())
			continue
		}
		h, err := pin(sl.req.Graph)
		if err != nil {
			fill(sl, qcache.Result{}, "", err)
			continue
		}
		compute := func(cctx context.Context) (qcache.Result, error) {
			release, err := s.store.Admit(cctx)
			if err != nil {
				return qcache.Result{}, err
			}
			defer release()
			return s.runOnHandle(cctx, h, sl.req)
		}
		if s.cache == nil || sl.req.NoCache {
			res, err := compute(ctx)
			fill(sl, res, "miss", err)
			continue
		}
		res, outcome, err := s.cache.Do(ctx, p.key, compute)
		fill(sl, res, outcome.String(), err)
	}

	writeJSON(w, http.StatusOK, map[string]any{"results": items})
}
