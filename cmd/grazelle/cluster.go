package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	grazelle "repro"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/qcache"
)

// Cluster tier command wiring. `grazelle worker` and `grazelle router` are
// both the ordinary serve mode plus a role (see runServeRole in serve.go):
//
//	grazelle worker -addr :8474
//	grazelle worker -addr :8475
//	grazelle router -addr :8473 -workers http://127.0.0.1:8474,http://127.0.0.1:8475 -d C
//
// Workers need no preload flags — the router's health loop pushes the graph
// catalog (adds and retained mutation batches) through each worker's public
// API until the replica matches, and only then routes runs to it. The
// router keeps the full public surface (/v1/query, /v1/batch, the cache,
// graph admin) unchanged; only the compute underneath a query moves to the
// roster. GET /v1/cluster (router only) reports the roster, placement, and
// per-peer exchange traffic.

func runWorker(args []string) error { return runServeRole("worker", args) }

func runRouter(args []string) error { return runServeRole("router", args) }

// handleClusterStatus is GET /v1/cluster: roster health, the current
// partition placement, and the run/failover/exchange counters. The same
// document is embedded in /v1/stats under "cluster".
func (s *server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cluster.Status())
}

// runOnCluster is the router's replacement for the local engine run in
// runOnHandle: same admission, cache, watchdog, run-record, and response
// framing — the compute in the middle is scatter-gathered over the worker
// roster through the network frontier exchange.
func (s *server) runOnCluster(ctx context.Context, h *grazelle.StoreHandle, req queryRequest) (qcache.Result, error) {
	// The per-graph read lock serializes this run against catalog writes
	// (mutations, replace, delete), which hold it for writing around local
	// apply + broadcast. The handle was acquired before the lock, so re-check
	// the version under it: past the check, every replica the run lands on
	// serves exactly the version the cache will index the result under.
	l := s.cluster.LockGraph(req.Graph)
	l.RLock()
	defer l.RUnlock()
	if v, err := s.store.Version(req.Graph); err != nil {
		return qcache.Result{}, err
	} else if v != h.Version() {
		return qcache.Result{}, fmt.Errorf("%w: graph %q moved from version %d to %d while placing the run",
			grazelle.ErrMutationConflict, req.Graph, h.Version(), v)
	}

	// Watchdog tracking: a wedged cluster run past -hard-limit is cancelled
	// through ctx, which cancels the scatter posts and aborts the exchange.
	ctx, done := s.store.TrackRun(ctx)
	defer done()

	runID := nextRunID()
	start := time.Now()
	var timeoutMS int64
	if dl, ok := ctx.Deadline(); ok {
		timeoutMS = time.Until(dl).Milliseconds()
		if timeoutMS < 1 {
			timeoutMS = 1
		}
	}
	res, err := s.cluster.Execute(ctx, runID, cluster.RunSpec{
		Graph:      req.Graph,
		App:        req.App,
		Iters:      req.Iters,
		Root:       req.Root,
		K:          req.K,
		Partitions: s.clusterParts,
		Values:     req.Values,
		Vertices:   h.Graph().NumVertices(),
		Edges:      h.Graph().NumEdges(),
		TimeoutMS:  timeoutMS,
	})

	wall := time.Since(start)
	s.metrics.observeRun(wall, nil, false)
	rec := obs.RunRecord{
		ID:       runID,
		Graph:    req.Graph,
		App:      req.App,
		Start:    start,
		Wall:     wall,
		Workers:  s.workers,
		Vertices: int64(h.Graph().NumVertices()),
		Edges:    int64(h.Graph().NumEdges()),
	}
	if res != nil {
		rec.Iters = res.Iterations
		rec.Mode = res.Mode
		rec.Partitions = res.Partitions
		// The trace ring's partition breakdown carries the hub's per-partition
		// wire accounting — the cluster analog of the shared-memory exchange
		// bytes a partitioned run records.
		var total int64
		parts := make([]obs.PartitionStat, len(res.PartBytes))
		for i, b := range res.PartBytes {
			parts[i] = obs.PartitionStat{Part: i, ExchangeBytes: b}
			total += b
		}
		rec.Trace.Partitions = parts
		s.metrics.exchangeNet.Add(uint64(total))
	}
	if err != nil {
		rec.Error = err.Error()
	}
	s.ring.Add(rec)

	if err != nil {
		if errors.Is(context.Cause(ctx), grazelle.ErrWatchdogKilled) {
			err = fmt.Errorf("%w (%v)", grazelle.ErrWatchdogKilled, err)
		}
		return qcache.Result{RunID: runID}, err
	}

	// Assemble exactly the map runOnHandle builds; the summary and values
	// arrive pre-marshaled from the primary worker, and json.Marshal embeds
	// RawMessage byte-for-byte, so router responses are byte-identical to
	// single-process ones (modulo run_id and elapsed_ms).
	resp := map[string]any{
		"run_id":          runID,
		"graph":           req.Graph,
		"app":             req.App,
		"iterations":      res.Iterations,
		"pull_iterations": res.PullIterations,
		"push_iterations": res.PushIterations,
		"mode":            res.Mode,
		"partitions":      res.Partitions,
		"elapsed_ms":      res.ElapsedMS,
	}
	for k, v := range res.Summary {
		resp[k] = v
	}
	if req.Values && len(res.Values) > 0 {
		resp["values"] = res.Values
	}
	payload, err := json.Marshal(resp)
	if err != nil {
		return qcache.Result{RunID: runID}, err
	}
	payload = append(payload, '\n')
	return qcache.Result{Payload: payload, RunID: runID, Version: h.Version()}, nil
}
