// Command grazelle runs a graph application on the Grazelle reproduction,
// mirroring the artifact's command-line interface: -i names a binary graph
// file pair ("-push"/"-pull" suffixes added automatically), -n the thread
// count, -N the PageRank iteration count, -s the scheduling granularity,
// -u the (simulated) socket count, and -o an optional per-vertex output
// file. Execution statistics, including the PageRank Sum correctness check,
// are printed to standard output.
//
// `grazelle serve` instead starts the JSON-over-HTTP service (see serve.go).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	grazelle "repro"
)

func main() {
	if len(os.Args) > 1 {
		var sub func([]string) error
		switch os.Args[1] {
		case "serve":
			sub = runServe
		case "worker":
			sub = runWorker
		case "router":
			sub = runRouter
		}
		if sub != nil {
			if err := sub(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "grazelle:", err)
				os.Exit(1)
			}
			return
		}
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "grazelle:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		input   = flag.String("i", "", "input graph file pair base path (required unless -d)")
		dataset = flag.String("d", "", "generate a dataset analog instead of loading (C,D,L,T,F,U or full name)")
		scale   = flag.Float64("scale", 1.0, "dataset analog scale factor (with -d)")
		app     = flag.String("a", "pr", "application by registry name, or \"list\" to enumerate")
		threads = flag.Int("n", 0, "total worker threads (0 = GOMAXPROCS)")
		iters   = flag.Int("N", 1, "iteration count for iteration-bounded apps")
		gran    = flag.Int("s", 0, "scheduling granularity in edge vectors per chunk (0 = 32 chunks/thread)")
		sockets = flag.Int("u", 1, "simulated NUMA socket count")
		output  = flag.String("o", "", "write per-vertex results to this file")
		root    = flag.Uint("r", 0, "root vertex for rooted apps (bfs, sssp, ppr)")
		kcore   = flag.Int("k", 2, "core threshold for kcore")
		variant = flag.String("variant", "sa", "pull variant: sa, trad, tradna, outer")
		mode    = flag.String("engine", "hybrid", "engine mode: hybrid, pull, push")
		scalar  = flag.Bool("scalar", false, "disable the vectorized kernels")
		record  = flag.Bool("counters", false, "collect and print execution counters")
		parts   = flag.Int("partitions", 0, "run through the partitioned coordinator with this many partitions (0 or 1 = monolithic; output is bit-identical)")
	)
	flag.Parse()

	if strings.ToLower(*app) == "list" {
		return listApps()
	}

	var g *grazelle.Graph
	var err error
	switch {
	case *dataset != "":
		g, err = grazelle.GenerateDataset(*dataset, *scale)
	case *input != "":
		g, err = grazelle.LoadGraphPair(*input)
	default:
		return fmt.Errorf("one of -i or -d is required (-h for help)")
	}
	if err != nil {
		return err
	}
	fmt.Printf("Graph: %d vertices, %d edges, packing efficiency %.1f%%\n",
		g.NumVertices(), g.NumEdges(), 100*g.PackingEfficiency())

	opt := grazelle.Options{
		Workers:      *threads,
		Sockets:      *sockets,
		ChunkVectors: *gran,
		Scalar:       *scalar,
		Record:       *record,
		Partitions:   *parts,
	}
	switch strings.ToLower(*variant) {
	case "sa":
		opt.Variant = grazelle.SchedulerAware
	case "trad":
		opt.Variant = grazelle.Traditional
	case "tradna":
		opt.Variant = grazelle.TraditionalNonatomic
	case "outer":
		opt.Variant = grazelle.OuterOnly
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}
	switch strings.ToLower(*mode) {
	case "hybrid":
		opt.Mode = grazelle.Hybrid
	case "pull":
		opt.Mode = grazelle.PullOnly
	case "push":
		opt.Mode = grazelle.PushOnly
	default:
		return fmt.Errorf("unknown engine mode %q", *mode)
	}

	e := grazelle.NewEngine(g, opt)
	defer e.Close()

	// Params flow through the registry entry's schema: fields the app
	// ignores are dropped, and -N keeps its historical default of 1
	// iteration (the ZeroUnused path, not Normalize, so an explicit value
	// is always honored).
	res, err := e.Run(context.Background(), strings.ToLower(*app),
		grazelle.Params{Iters: *iters, Root: uint32(*root), K: *kcore})
	if err != nil {
		return err
	}
	for _, st := range res.Summary() {
		fmt.Printf("%s: %s\n", st.Label, st.Text)
	}
	stats := res.Stats

	fmt.Printf("Iterations: %d (pull %d, push %d)\n",
		stats.Iterations, stats.PullIterations, stats.PushIterations)
	if stats.Partitions > 1 {
		fmt.Printf("Partitions: %d\n", stats.Partitions)
	}
	fmt.Printf("Running Time: %v (edge %v, vertex %v)\n",
		stats.Total, stats.EdgeTime, stats.VertexTime)
	if *record {
		c := stats.EdgeCounters
		fmt.Printf("Edge counters: edges=%d vectors=%d tlsWrites=%d sharedWrites=%d atomics=%d casRetries=%d mergeOps=%d frontierSkips=%d local=%d remote=%d\n",
			c.EdgesProcessed, c.VectorsProcessed, c.TLSWrites, c.SharedWrites,
			c.AtomicOps, c.CASRetries, c.MergeOps, c.FrontierSkips,
			c.LocalAccesses, c.RemoteAccesses)
	}

	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		for v := 0; v < g.NumVertices(); v++ {
			fmt.Fprintf(w, "%d %s\n", v, res.VertexText(v))
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

// listApps prints the registry: one line per app with its parameter schema.
func listApps() error {
	for _, info := range grazelle.Apps() {
		params := "-"
		if len(info.Params) > 0 {
			parts := make([]string, 0, len(info.Params))
			for _, p := range info.Params {
				if d, ok := info.Defaults[p]; ok {
					parts = append(parts, fmt.Sprintf("%s (default %d)", p, d))
				} else {
					parts = append(parts, p)
				}
			}
			params = strings.Join(parts, ", ")
		}
		weighted := ""
		if info.NeedsWeights {
			weighted = " [weighted graph required]"
		}
		fmt.Printf("%-6s %-22s params: %s%s\n       %s\n",
			info.Name, info.Title, params, weighted, info.Description)
	}
	return nil
}
