// Command grazelle runs a graph application on the Grazelle reproduction,
// mirroring the artifact's command-line interface: -i names a binary graph
// file pair ("-push"/"-pull" suffixes added automatically), -n the thread
// count, -N the PageRank iteration count, -s the scheduling granularity,
// -u the (simulated) socket count, and -o an optional per-vertex output
// file. Execution statistics, including the PageRank Sum correctness check,
// are printed to standard output.
//
// `grazelle serve` instead starts the JSON-over-HTTP service (see serve.go).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	grazelle "repro"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "grazelle:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "grazelle:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		input   = flag.String("i", "", "input graph file pair base path (required unless -d)")
		dataset = flag.String("d", "", "generate a dataset analog instead of loading (C,D,L,T,F,U or full name)")
		scale   = flag.Float64("scale", 1.0, "dataset analog scale factor (with -d)")
		app     = flag.String("a", "pr", "application: pr, cc, bfs, sssp, wpr")
		threads = flag.Int("n", 0, "total worker threads (0 = GOMAXPROCS)")
		iters   = flag.Int("N", 1, "PageRank iterations")
		gran    = flag.Int("s", 0, "scheduling granularity in edge vectors per chunk (0 = 32 chunks/thread)")
		sockets = flag.Int("u", 1, "simulated NUMA socket count")
		output  = flag.String("o", "", "write per-vertex results to this file")
		root    = flag.Uint("r", 0, "root vertex for bfs/sssp")
		variant = flag.String("variant", "sa", "pull variant: sa, trad, tradna, outer")
		mode    = flag.String("engine", "hybrid", "engine mode: hybrid, pull, push")
		scalar  = flag.Bool("scalar", false, "disable the vectorized kernels")
		record  = flag.Bool("counters", false, "collect and print execution counters")
	)
	flag.Parse()

	var g *grazelle.Graph
	var err error
	switch {
	case *dataset != "":
		g, err = grazelle.GenerateDataset(*dataset, *scale)
	case *input != "":
		g, err = grazelle.LoadGraphPair(*input)
	default:
		return fmt.Errorf("one of -i or -d is required (-h for help)")
	}
	if err != nil {
		return err
	}
	fmt.Printf("Graph: %d vertices, %d edges, packing efficiency %.1f%%\n",
		g.NumVertices(), g.NumEdges(), 100*g.PackingEfficiency())

	opt := grazelle.Options{
		Workers:      *threads,
		Sockets:      *sockets,
		ChunkVectors: *gran,
		Scalar:       *scalar,
		Record:       *record,
	}
	switch strings.ToLower(*variant) {
	case "sa":
		opt.Variant = grazelle.SchedulerAware
	case "trad":
		opt.Variant = grazelle.Traditional
	case "tradna":
		opt.Variant = grazelle.TraditionalNonatomic
	case "outer":
		opt.Variant = grazelle.OuterOnly
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}
	switch strings.ToLower(*mode) {
	case "hybrid":
		opt.Mode = grazelle.Hybrid
	case "pull":
		opt.Mode = grazelle.PullOnly
	case "push":
		opt.Mode = grazelle.PushOnly
	default:
		return fmt.Errorf("unknown engine mode %q", *mode)
	}

	e := grazelle.NewEngine(g, opt)
	defer e.Close()

	var stats grazelle.Stats
	var writeOut func(w *bufio.Writer)
	switch strings.ToLower(*app) {
	case "pr":
		res := e.PageRank(*iters)
		stats = res.Stats
		fmt.Printf("PageRank Sum: %.12f\n", res.Sum)
		writeOut = func(w *bufio.Writer) {
			for v, r := range res.Ranks {
				fmt.Fprintf(w, "%d %.12g\n", v, r)
			}
		}
	case "wpr":
		res, err := e.WeightedRank(*iters)
		if err != nil {
			return err
		}
		stats = res.Stats
		fmt.Printf("WeightedRank Sum: %.12f\n", res.Sum)
		writeOut = func(w *bufio.Writer) {
			for v, r := range res.Ranks {
				fmt.Fprintf(w, "%d %.12g\n", v, r)
			}
		}
	case "cc":
		res := e.ConnectedComponents()
		stats = res.Stats
		fmt.Printf("Components: %d\n", res.NumComponents())
		writeOut = func(w *bufio.Writer) {
			for v, c := range res.Components {
				fmt.Fprintf(w, "%d %d\n", v, c)
			}
		}
	case "bfs":
		res := e.BFS(uint32(*root))
		stats = res.Stats
		fmt.Printf("Reachable: %d of %d\n", res.Reachable(), g.NumVertices())
		writeOut = func(w *bufio.Writer) {
			for v, p := range res.Parents {
				fmt.Fprintf(w, "%d %d\n", v, p)
			}
		}
	case "sssp":
		res, err := e.SSSP(uint32(*root))
		if err != nil {
			return err
		}
		stats = res.Stats
		fmt.Printf("Reached: %d of %d\n", res.Finite(), g.NumVertices())
		writeOut = func(w *bufio.Writer) {
			for v, d := range res.Dist {
				fmt.Fprintf(w, "%d %g\n", v, d)
			}
		}
	default:
		return fmt.Errorf("unknown application %q", *app)
	}

	fmt.Printf("Iterations: %d (pull %d, push %d)\n",
		stats.Iterations, stats.PullIterations, stats.PushIterations)
	fmt.Printf("Running Time: %v (edge %v, vertex %v)\n",
		stats.Total, stats.EdgeTime, stats.VertexTime)
	if *record {
		c := stats.EdgeCounters
		fmt.Printf("Edge counters: edges=%d vectors=%d tlsWrites=%d sharedWrites=%d atomics=%d casRetries=%d mergeOps=%d frontierSkips=%d local=%d remote=%d\n",
			c.EdgesProcessed, c.VectorsProcessed, c.TLSWrites, c.SharedWrites,
			c.AtomicOps, c.CASRetries, c.MergeOps, c.FrontierSkips,
			c.LocalAccesses, c.RemoteAccesses)
	}

	if *output != "" && writeOut != nil {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		writeOut(w)
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
