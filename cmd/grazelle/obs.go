package main

import (
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// This file is the serve mode's observability layer: HTTP- and run-level
// metric families registered on top of the store's registry, per-handler
// instrumentation (latency histogram + status-class counter + structured
// request log), run-ID generation, and the /v1/runs trace ring endpoints.

// statusClasses pre-registers the full label space for the response counter
// so the catalog is stable from the first scrape and the hot path never
// takes a registration lock.
var statusClasses = []string{"2xx", "3xx", "4xx", "5xx"}

// serveMetrics holds the serve layer's metric handles. The families live in
// the store's registry so /metrics renders one coherent catalog.
type serveMetrics struct {
	reg *obs.Registry
	// runSeconds observes each query run's wall time; phaseSeconds splits it
	// by engine phase from the run trace; tracesDropped counts runs whose
	// trace was abandoned mid-run.
	runSeconds    *obs.Histogram
	phaseSeconds  map[string]*obs.Histogram
	tracesDropped *obs.Counter
	// incrementalSeeded counts runs warm-started from a predecessor result;
	// incrementalFallback counts attempts (capability + candidate + delta
	// under threshold) that still ran cold.
	incrementalSeeded   *obs.Counter
	incrementalFallback *obs.Counter
	// exchangeShmem and exchangeNet are the two transports of one family,
	// grazelle_exchange_bytes_total: frontier bytes moved through the
	// partitioned coordinator's shared-memory exchange vs. the cluster tier's
	// network exchange. Registered unconditionally so the catalog is identical
	// across roles and the single-process vs. cluster byte volumes are
	// directly comparable.
	exchangeShmem *obs.Counter
	exchangeNet   *obs.Counter
}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	m := &serveMetrics{
		reg:           reg,
		runSeconds:    reg.Histogram("grazelle_run_seconds", "Engine run wall time per query.", nil, obs.DefTimeBuckets),
		phaseSeconds:  make(map[string]*obs.Histogram, int(obs.NumPhases)),
		tracesDropped: reg.Counter("grazelle_run_traces_dropped_total", "Runs whose phase trace was abandoned mid-run.", nil),
		incrementalSeeded: reg.Counter("grazelle_incremental_seeded_total",
			"Query runs warm-started from a cached predecessor result.", nil),
		incrementalFallback: reg.Counter("grazelle_incremental_fallback_total",
			"Incremental attempts that fell back to a full recompute.", nil),
		exchangeShmem: reg.Counter("grazelle_exchange_bytes_total",
			"Frontier exchange bytes by transport.", obs.Labels{"transport": "shmem"}),
		exchangeNet: reg.Counter("grazelle_exchange_bytes_total",
			"Frontier exchange bytes by transport.", obs.Labels{"transport": "net"}),
	}
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		name := p.String()
		m.phaseSeconds[name] = reg.Histogram("grazelle_run_phase_seconds",
			"Engine run wall time split by phase.", obs.Labels{"phase": name}, obs.DefTimeBuckets)
	}
	return m
}

// observeRun feeds one finished query run into the run-level families and
// returns the trace carried into the run record.
func (m *serveMetrics) observeRun(wall time.Duration, phases []obs.PhaseStat, dropped bool) {
	m.runSeconds.Observe(wall.Seconds())
	for _, ph := range phases {
		if h := m.phaseSeconds[ph.Phase]; h != nil {
			h.Observe(ph.Wall.Seconds())
		}
	}
	if dropped {
		m.tracesDropped.Inc()
	}
}

// route holds the per-pattern instruments created at mux build time.
type route struct {
	dur     *obs.Histogram
	byClass map[string]*obs.Counter
}

func (m *serveMetrics) route(method, path string) *route {
	rt := &route{
		dur: m.reg.Histogram("grazelle_http_request_seconds", "HTTP request latency by route.",
			obs.Labels{"method": method, "path": path}, obs.DefTimeBuckets),
		byClass: make(map[string]*obs.Counter, len(statusClasses)),
	}
	for _, class := range statusClasses {
		rt.byClass[class] = m.reg.Counter("grazelle_http_responses_total", "HTTP responses by route and status class.",
			obs.Labels{"method": method, "path": path, "code": class})
	}
	return rt
}

// statusRecorder captures the response status for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

func statusClass(code int) string {
	switch {
	case code >= 200 && code < 300:
		return "2xx"
	case code >= 300 && code < 400:
		return "3xx"
	case code >= 400 && code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// probeRoutes are logged at Debug so scrapes and health checks do not flood
// the request log; everything else logs at Info.
var probeRoutes = map[string]bool{"/healthz": true, "/readyz": true, "/metrics": true}

// instrument wraps one handler with its route's latency histogram, response
// counter, and a structured request log line. The deferred block runs even
// when the handler panics (the recovery middleware above it writes the 500),
// so crashed requests are still counted and logged — with status 0 mapped to
// the 5xx class.
func (s *server) instrument(pattern string, next http.HandlerFunc) http.HandlerFunc {
	method, path := splitPattern(pattern)
	rt := s.metrics.route(method, path)
	return func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		defer func() {
			elapsed := time.Since(start)
			status := sr.status
			if status == 0 {
				status = http.StatusInternalServerError
			}
			rt.dur.Observe(elapsed.Seconds())
			rt.byClass[statusClass(status)].Inc()
			level := slog.LevelInfo
			if probeRoutes[path] {
				level = slog.LevelDebug
			}
			attrs := []any{
				"method", r.Method,
				"path", r.URL.Path,
				"route", path,
				"status", status,
				"elapsed_us", elapsed.Microseconds(),
			}
			if id := sr.Header().Get("X-Run-Id"); id != "" {
				attrs = append(attrs, "run_id", id)
			}
			s.log.Log(r.Context(), level, "request", attrs...)
		}()
		next(sr, r)
	}
}

// splitPattern splits a "METHOD /path" ServeMux pattern into its parts.
func splitPattern(pattern string) (method, path string) {
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == ' ' {
			return pattern[:i], pattern[i+1:]
		}
	}
	return "", pattern
}

// runSeq numbers runs within this process; IDs are "run-<n>".
var runSeq atomic.Uint64

func nextRunID() string {
	return "run-" + strconv.FormatUint(runSeq.Add(1), 10)
}

// handleRuns returns the most recent run records, newest first. ?n= bounds
// the count (default all retained).
func (s *server) handleRuns(w http.ResponseWriter, r *http.Request) {
	recent := s.ring.Recent()
	if nStr := r.URL.Query().Get("n"); nStr != "" {
		n, err := strconv.Atoi(nStr)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, errBadRunCount)
			return
		}
		if n < len(recent) {
			recent = recent[:n]
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": recent})
}

// handleRunByID returns one run's record — per-phase wall times, chunk and
// steal counts, frontier densities — or 404 once it ages out of the ring.
func (s *server) handleRunByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.ring.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, errRunNotFound)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}
