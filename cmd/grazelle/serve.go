package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	grazelle "repro"
)

// serve mode: `grazelle serve` turns the engine into a small JSON-over-HTTP
// service — the first traffic-facing surface of the reproduction. One
// process holds any number of named graphs, each with a shared Engine;
// queries against one graph run concurrently on one worker pool and honor a
// per-request timeout at scheduler-chunk granularity.
//
// Endpoints:
//
//	GET  /healthz            liveness probe
//	GET  /v1/graphs          list loaded graphs
//	POST /v1/graphs          load or generate a graph
//	                         {"name":"t","dataset":"T","scale":1.0} or
//	                         {"name":"g","path":"/data/graph"} (file pair)
//	POST /v1/query           run an application
//	                         {"graph":"t","app":"pr","iters":16,
//	                          "root":0,"timeout_ms":500,"values":false}
func runServe(args []string) error {
	fs := flag.NewFlagSet("grazelle serve", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:8473", "listen address")
		threads = fs.Int("n", 0, "total worker threads per engine (0 = GOMAXPROCS)")
		timeout = fs.Duration("timeout", 30*time.Second, "maximum per-request timeout")
		dataset = fs.String("d", "", "preload a dataset analog as graph \"default\"")
		scale   = fs.Float64("scale", 1.0, "dataset analog scale factor (with -d)")
		input   = fs.String("i", "", "preload a graph file pair as graph \"default\"")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := newServer(grazelle.Options{Workers: *threads}, *timeout)
	defer srv.close()

	switch {
	case *dataset != "":
		g, err := grazelle.GenerateDataset(*dataset, *scale)
		if err != nil {
			return err
		}
		srv.add("default", g)
	case *input != "":
		g, err := grazelle.LoadGraphPair(*input)
		if err != nil {
			return err
		}
		srv.add("default", g)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address is printed (not just logged) so callers binding
	// port 0 can discover the port.
	fmt.Printf("grazelle: serving on http://%s\n", ln.Addr())
	hs := &http.Server{Handler: srv.mux(), ReadHeaderTimeout: 10 * time.Second}
	return hs.Serve(ln)
}

// server is the shared state behind the HTTP handlers. The mutex guards the
// graph registry only; queries run outside it, concurrently, each engine
// being safe for concurrent use.
type server struct {
	opt        grazelle.Options
	maxTimeout time.Duration

	mu     sync.Mutex
	graphs map[string]*graphEntry
}

type graphEntry struct {
	g *grazelle.Graph
	e *grazelle.Engine
}

func newServer(opt grazelle.Options, maxTimeout time.Duration) *server {
	return &server{opt: opt, maxTimeout: maxTimeout, graphs: make(map[string]*graphEntry)}
}

func (s *server) add(name string, g *grazelle.Graph) {
	ent := &graphEntry{g: g, e: grazelle.NewEngine(g, s.opt)}
	s.mu.Lock()
	if old, ok := s.graphs[name]; ok {
		old.e.Close()
	}
	s.graphs[name] = ent
	s.mu.Unlock()
}

func (s *server) lookup(name string) (*graphEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ent, ok := s.graphs[name]
	return ent, ok
}

func (s *server) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ent := range s.graphs {
		ent.e.Close()
	}
	s.graphs = make(map[string]*graphEntry)
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/v1/graphs", s.handleGraphs)
	mux.HandleFunc("/v1/query", s.handleQuery)
	return mux
}

type graphInfo struct {
	Name              string  `json:"name"`
	Vertices          int     `json:"vertices"`
	Edges             int     `json:"edges"`
	Weighted          bool    `json:"weighted"`
	PackingEfficiency float64 `json:"packing_efficiency"`
}

func infoOf(name string, g *grazelle.Graph) graphInfo {
	return graphInfo{
		Name:              name,
		Vertices:          g.NumVertices(),
		Edges:             g.NumEdges(),
		Weighted:          g.Weighted(),
		PackingEfficiency: g.PackingEfficiency(),
	}
}

func (s *server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		infos := make([]graphInfo, 0, len(s.graphs))
		for name, ent := range s.graphs {
			infos = append(infos, infoOf(name, ent.g))
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"graphs": infos})
	case http.MethodPost:
		var req struct {
			Name    string  `json:"name"`
			Dataset string  `json:"dataset"`
			Scale   float64 `json:"scale"`
			Path    string  `json:"path"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if req.Name == "" {
			writeError(w, http.StatusBadRequest, errors.New("missing graph name"))
			return
		}
		var g *grazelle.Graph
		var err error
		switch {
		case req.Dataset != "":
			if req.Scale == 0 {
				req.Scale = 1.0
			}
			g, err = grazelle.GenerateDataset(req.Dataset, req.Scale)
		case req.Path != "":
			g, err = grazelle.LoadGraphPair(req.Path)
		default:
			err = errors.New("one of dataset or path is required")
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		s.add(req.Name, g)
		writeJSON(w, http.StatusOK, infoOf(req.Name, g))
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

// queryResponse is the JSON shape of a /v1/query result. Exactly one of the
// per-application summary fields is set; Values carries per-vertex output
// only when the request asked for it.
type queryResponse struct {
	Graph      string `json:"graph"`
	App        string `json:"app"`
	Iterations int    `json:"iterations"`
	PullIters  int    `json:"pull_iterations"`
	PushIters  int    `json:"push_iterations"`
	ElapsedMS  int64  `json:"elapsed_ms"`

	RankSum    *float64 `json:"rank_sum,omitempty"`
	Components *int     `json:"components,omitempty"`
	Reachable  *int     `json:"reachable,omitempty"`

	Values any `json:"values,omitempty"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Graph     string `json:"graph"`
		App       string `json:"app"`
		Iters     int    `json:"iters"`
		Root      uint32 `json:"root"`
		TimeoutMS int64  `json:"timeout_ms"`
		Values    bool   `json:"values"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Graph == "" {
		req.Graph = "default"
	}
	ent, ok := s.lookup(req.Graph)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown graph %q", req.Graph))
		return
	}
	if req.Iters <= 0 {
		req.Iters = 16
	}
	timeout := s.maxTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	resp := queryResponse{Graph: req.Graph, App: req.App}
	var stats grazelle.Stats
	var err error
	switch req.App {
	case "pr":
		var res grazelle.PageRankResult
		res, err = ent.e.PageRankCtx(ctx, req.Iters)
		resp.RankSum = &res.Sum
		stats = res.Stats
		if req.Values {
			resp.Values = res.Ranks
		}
	case "wpr":
		var res grazelle.PageRankResult
		res, err = ent.e.WeightedRankCtx(ctx, req.Iters)
		resp.RankSum = &res.Sum
		stats = res.Stats
		if req.Values {
			resp.Values = res.Ranks
		}
	case "cc":
		var res grazelle.ComponentsResult
		res, err = ent.e.ConnectedComponentsCtx(ctx)
		if res.Components != nil {
			n := res.NumComponents()
			resp.Components = &n
		}
		stats = res.Stats
		if req.Values {
			resp.Values = res.Components
		}
	case "bfs":
		var res grazelle.BFSResult
		res, err = ent.e.BFSCtx(ctx, req.Root)
		if res.Parents != nil {
			n := res.Reachable()
			resp.Reachable = &n
		}
		stats = res.Stats
		if req.Values {
			resp.Values = res.Parents
		}
	case "sssp":
		var res grazelle.SSSPResult
		res, err = ent.e.SSSPCtx(ctx, req.Root)
		if res.Dist != nil {
			n := res.Finite()
			resp.Reachable = &n
		}
		stats = res.Stats
		if req.Values {
			resp.Values = res.Dist
		}
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown app %q (want pr, wpr, cc, bfs, sssp)", req.App))
		return
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			status = http.StatusGatewayTimeout
		}
		writeError(w, status, err)
		return
	}
	resp.Iterations = stats.Iterations
	resp.PullIters = stats.PullIterations
	resp.PushIters = stats.PushIterations
	resp.ElapsedMS = stats.Total.Milliseconds()
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "grazelle: encode response:", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
