package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"syscall"
	"time"

	grazelle "repro"
	"repro/internal/fault"
	"repro/internal/obs"
)

// serve mode: `grazelle serve` turns the engine into a small JSON-over-HTTP
// service. All graph state lives in the store subsystem (grazelle.Store):
// named graphs with refcounted handles (delete/replace never disturbs
// in-flight queries), snapshot persistence under --data-dir (graphs reload
// across restarts), a resident-memory budget with LRU eviction, and
// admission control bounding concurrent queries. The HTTP layer here is a
// thin protocol adapter: decode, validate, acquire, run, encode.
//
// Endpoints:
//
//	GET    /healthz             liveness probe
//	GET    /readyz              readiness: store open, rehydration not wedged
//	GET    /v1/stats            store load: graphs, bytes, admission counters
//	GET    /v1/graphs           list graphs (resident and cold)
//	POST   /v1/graphs           load or generate a graph
//	                            {"name":"t","dataset":"T","scale":1.0} or
//	                            {"name":"g","path":"/data/graph"} (file pair)
//	DELETE /v1/graphs/{name}    unregister a graph and delete its snapshot
//	POST   /v1/graphs/{name}/snapshot   re-persist a graph to --data-dir
//	POST   /v1/query            run an application
//	                            {"graph":"t","app":"pr","iters":16,
//	                             "root":0,"timeout_ms":500,"values":false}
//	GET    /metrics             Prometheus text exposition: store, scheduler,
//	                            admission, watchdog, HTTP, and run families
//	GET    /v1/runs             recent run records, newest first (?n= bounds)
//	GET    /v1/runs/{id}        one run's phase trace (404 once aged out)
//
// Every query response carries a run_id; the same id keys the run's record
// in /v1/runs/{id} and the structured request log. With -pprof-addr set, a
// second listener serves net/http/pprof — kept off the public address so
// profiling is never exposed by default.
//
// Admission rejections return 429 (queue full) with Retry-After; queries on
// unknown graphs 404; unloadable graph payloads 422; a degraded store
// (rehydration failing, shutting down) or a watchdog-killed run 503;
// timeouts 504; a contained panic 500 — the server itself stays up (every
// handler runs under a recovery wrapper). SIGINT/SIGTERM drain in-flight
// requests before exiting.
func runServe(args []string) error {
	fs := flag.NewFlagSet("grazelle serve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8473", "listen address")
		threads  = fs.Int("n", 0, "worker threads in the shared pool (0 = GOMAXPROCS)")
		timeout  = fs.Duration("timeout", 30*time.Second, "maximum per-request timeout")
		dataset  = fs.String("d", "", "preload a dataset analog as graph \"default\"")
		scale    = fs.Float64("scale", 1.0, "dataset analog scale factor (with -d)")
		input    = fs.String("i", "", "preload a graph file pair as graph \"default\"")
		dataDir  = fs.String("data-dir", "", "snapshot directory (persist graphs across restarts)")
		memCap   = fs.Int64("mem-budget", 0, "resident graph memory budget in bytes (0 = unlimited)")
		inflight  = fs.Int("max-inflight", 0, "maximum concurrent queries (0 = unlimited)")
		maxQueue  = fs.Int("max-queue", 0, "queries allowed to wait beyond -max-inflight")
		softLimit = fs.Duration("soft-limit", 0, "watchdog soft run limit: slower queries are counted in /v1/stats (0 = off)")
		hardLimit = fs.Duration("hard-limit", 0, "watchdog hard run limit: slower queries are cancelled with 503 (0 = off)")
		pprofAddr = fs.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = off)")
		runHist   = fs.Int("run-history", 128, "run trace records retained for /v1/runs")
		logLevel  = fs.String("log-level", "info", "request log level (debug logs probe/scrape requests too)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	st, err := grazelle.OpenStore(grazelle.StoreConfig{
		DataDir:        *dataDir,
		MemBudgetBytes: *memCap,
		MaxInFlight:    *inflight,
		MaxQueue:       *maxQueue,
		Workers:        *threads,
		SoftRunLimit:   *softLimit,
		HardRunLimit:   *hardLimit,
		// Phase tracing is on for every serve-mode run: its cost is
		// phase-boundary-only and it feeds /v1/runs and the phase histograms.
		Options: grazelle.Options{Trace: true},
	})
	if err != nil {
		return err
	}
	defer st.Close()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", *logLevel, err)
	}
	workers := *threads
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	srv := &server{
		store:      st,
		maxTimeout: *timeout,
		workers:    workers,
		log:        slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level})),
		ring:       obs.NewTraceRing(*runHist),
		metrics:    newServeMetrics(st.Metrics()),
	}

	switch {
	case *dataset != "":
		g, err := grazelle.GenerateDataset(*dataset, *scale)
		if err != nil {
			return err
		}
		if err := st.Add("default", g); err != nil {
			return err
		}
	case *input != "":
		g, err := grazelle.LoadGraphPair(*input)
		if err != nil {
			return err
		}
		if err := st.Add("default", g); err != nil {
			return err
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address is printed (not just logged) so callers binding
	// port 0 can discover the port. It must be the first address announced —
	// scripts take the first "http://" line as the service base URL.
	fmt.Printf("grazelle: serving on http://%s\n", ln.Addr())
	hs := &http.Server{Handler: srv.mux(), ReadHeaderTimeout: 10 * time.Second}

	// Profiling stays on its own opt-in listener so it is never reachable
	// through the public address.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		defer pln.Close()
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("grazelle: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go http.Serve(pln, pmux)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			return err
		}
		fmt.Println("grazelle: shut down")
		return nil
	}
}

// maxBodyBytes bounds request bodies; graph-load and query requests are a
// few hundred bytes of JSON.
const maxBodyBytes = 1 << 20

// server adapts HTTP to the store. It holds no graph state of its own
// beyond observability: the run-trace ring, the metric handles, and the
// request logger.
type server struct {
	store      *grazelle.Store
	maxTimeout time.Duration
	workers    int
	log        *slog.Logger
	ring       *obs.TraceRing
	metrics    *serveMetrics
}

func (s *server) mux() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	handle("GET /readyz", s.handleReady)
	handle("GET /metrics", s.store.Metrics().Handler().ServeHTTP)
	handle("GET /v1/stats", s.handleStats)
	handle("GET /v1/runs", s.handleRuns)
	handle("GET /v1/runs/{id}", s.handleRunByID)
	handle("GET /v1/graphs", s.handleListGraphs)
	handle("POST /v1/graphs", s.handleAddGraph)
	handle("DELETE /v1/graphs/{name}", s.handleDeleteGraph)
	handle("POST /v1/graphs/{name}/snapshot", s.handleSnapshotGraph)
	handle("POST /v1/query", s.handleQuery)
	return s.recoverMiddleware(mux)
}

// recoverMiddleware contains handler panics: the failing request gets a 500
// JSON error, the process and every other connection stay up, and the
// handler's own defers (admission release, handle close) have already run
// during unwinding. Without it net/http kills the connection mid-response
// and a panic in pre-handler state could leak slots.
func (s *server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.log.Error("handler panic",
					"method", r.Method,
					"path", r.URL.Path,
					"panic", fmt.Sprint(rec),
					"stack", string(debug.Stack()))
				writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// handleReady is the readiness probe: 200 while the store is open and
// healthy, 503 once it is closed or rehydration is wedged. Liveness
// (/healthz) stays 200 either way — a degraded instance should be drained,
// not restarted.
func (s *server) handleReady(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Ready(); err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Stats())
}

func (s *server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.store.List()})
}

func (s *server) handleAddGraph(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req struct {
		Name    string  `json:"name"`
		Dataset string  `json:"dataset"`
		Scale   float64 `json:"scale"`
		Path    string  `json:"path"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing graph name"))
		return
	}
	var g *grazelle.Graph
	var err error
	switch {
	case req.Dataset != "":
		if req.Scale == 0 {
			req.Scale = 1.0
		}
		g, err = grazelle.GenerateDataset(req.Dataset, req.Scale)
	case req.Path != "":
		g, err = grazelle.LoadGraphPair(req.Path)
	default:
		writeError(w, http.StatusBadRequest, errors.New("one of dataset or path is required"))
		return
	}
	if err != nil {
		// The request was well-formed but the named payload cannot be turned
		// into a graph (unknown dataset, unreadable or corrupt file).
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if err := s.store.Add(req.Name, g); err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, grazelle.ErrStoreClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	for _, info := range s.store.List() {
		if info.Name == req.Name {
			writeJSON(w, http.StatusOK, info)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"name": req.Name})
}

func (s *server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.store.Delete(name); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, grazelle.ErrGraphNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *server) handleSnapshotGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.store.Snapshot(name); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, grazelle.ErrGraphNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"snapshotted": name})
}

// queryResponse is the JSON shape of a /v1/query result. Exactly one of the
// per-application summary fields is set; Values carries per-vertex output
// only when the request asked for it.
type queryResponse struct {
	// RunID keys this run's trace in GET /v1/runs/{id} and the request log.
	RunID      string `json:"run_id"`
	Graph      string `json:"graph"`
	App        string `json:"app"`
	Iterations int    `json:"iterations"`
	PullIters  int    `json:"pull_iterations"`
	PushIters  int    `json:"push_iterations"`
	ElapsedMS  int64  `json:"elapsed_ms"`

	RankSum    *float64 `json:"rank_sum,omitempty"`
	Components *int     `json:"components,omitempty"`
	Reachable  *int     `json:"reachable,omitempty"`

	Values any `json:"values,omitempty"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req struct {
		Graph     string `json:"graph"`
		App       string `json:"app"`
		Iters     int    `json:"iters"`
		Root      uint32 `json:"root"`
		TimeoutMS int64  `json:"timeout_ms"`
		Values    bool   `json:"values"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Graph == "" {
		req.Graph = "default"
	}
	if req.Iters <= 0 {
		req.Iters = 16
	}
	switch req.App {
	case "pr", "wpr", "cc", "bfs", "sssp":
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown app %q (want pr, wpr, cc, bfs, sssp)", req.App))
		return
	}
	timeout := s.maxTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Admission first: a rejected query must not touch graph state. 429
	// tells well-behaved clients to back off and retry.
	release, err := s.store.Admit(ctx)
	if err != nil {
		if errors.Is(err, grazelle.ErrOverloaded) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
		} else {
			// Context expired while queued.
			writeError(w, http.StatusGatewayTimeout, err)
		}
		return
	}
	defer release()

	// Fault-injection site for chaos tests: a panic here exercises the
	// recovery middleware with an admission slot held.
	if err := fault.Inject("serve/handler"); err != nil {
		panic(err)
	}

	h, err := s.store.Acquire(req.Graph)
	if err != nil {
		writeError(w, acquireStatus(err), err)
		return
	}
	defer h.Close()
	eng := h.Engine()

	// Watchdog tracking: a run past -hard-limit is cancelled through ctx.
	ctx, done := s.store.TrackRun(ctx)
	defer done()

	// The run ID goes out as a header before the body so the request log's
	// instrumentation can pick it up even on error responses.
	runID := nextRunID()
	w.Header().Set("X-Run-Id", runID)
	start := time.Now()

	resp := queryResponse{RunID: runID, Graph: req.Graph, App: req.App}
	var stats grazelle.Stats
	switch req.App {
	case "pr":
		var res grazelle.PageRankResult
		res, err = eng.PageRankCtx(ctx, req.Iters)
		resp.RankSum = &res.Sum
		stats = res.Stats
		if req.Values {
			resp.Values = res.Ranks
		}
	case "wpr":
		var res grazelle.PageRankResult
		res, err = eng.WeightedRankCtx(ctx, req.Iters)
		resp.RankSum = &res.Sum
		stats = res.Stats
		if req.Values {
			resp.Values = res.Ranks
		}
	case "cc":
		var res grazelle.ComponentsResult
		res, err = eng.ConnectedComponentsCtx(ctx)
		if res.Components != nil {
			n := res.NumComponents()
			resp.Components = &n
		}
		stats = res.Stats
		if req.Values {
			resp.Values = res.Components
		}
	case "bfs":
		var res grazelle.BFSResult
		res, err = eng.BFSCtx(ctx, req.Root)
		if res.Parents != nil {
			n := res.Reachable()
			resp.Reachable = &n
		}
		stats = res.Stats
		if req.Values {
			resp.Values = res.Parents
		}
	case "sssp":
		var res grazelle.SSSPResult
		res, err = eng.SSSPCtx(ctx, req.Root)
		if res.Dist != nil {
			n := res.Finite()
			resp.Reachable = &n
		}
		stats = res.Stats
		if req.Values {
			resp.Values = res.Dist
		}
	}
	// Record the run — success or failure — before responding: the wall
	// time feeds the run histograms and the trace lands in the ring where
	// GET /v1/runs/{id} can replay it.
	wall := time.Since(start)
	s.metrics.observeRun(wall, stats.Phases, stats.TraceDropped)
	rec := obs.RunRecord{
		ID:       runID,
		Graph:    req.Graph,
		App:      req.App,
		Start:    start,
		Wall:     wall,
		Trace:    obs.RunTrace{Phases: stats.Phases, Dropped: stats.TraceDropped},
		Workers:  s.workers,
		Iters:    stats.Iterations,
		Vertices: int64(h.Graph().NumVertices()),
		Edges:    int64(h.Graph().NumEdges()),
	}
	if err != nil {
		rec.Error = err.Error()
	}
	s.ring.Add(rec)

	if err != nil {
		writeError(w, runStatus(ctx, err), err)
		return
	}
	resp.Iterations = stats.Iterations
	resp.PullIters = stats.PullIterations
	resp.PushIters = stats.PushIterations
	resp.ElapsedMS = stats.Total.Milliseconds()
	writeJSON(w, http.StatusOK, resp)
}

// Sentinel errors for the /v1/runs endpoints.
var (
	errBadRunCount = errors.New("bad n: want a nonnegative integer")
	errRunNotFound = errors.New("run not found (aged out of the trace ring or never existed)")
)

// acquireStatus maps a Store.Acquire failure to an HTTP status: unknown
// name 404; store shutting down or snapshot data failing (quarantined
// corruption, exhausted rehydration retries) 503 so load balancers route
// away; anything else 500.
func acquireStatus(err error) int {
	switch {
	case errors.Is(err, grazelle.ErrGraphNotFound):
		return http.StatusNotFound
	case errors.Is(err, grazelle.ErrStoreClosed):
		return http.StatusServiceUnavailable
	default:
		var ce *grazelle.CorruptSnapshotError
		var re *grazelle.RehydrateError
		if errors.As(err, &ce) || errors.As(err, &re) {
			return http.StatusServiceUnavailable
		}
		return http.StatusInternalServerError
	}
}

// runStatus maps a failed engine run to an HTTP status: a watchdog kill 503
// (the server chose to stop the run — retrying elsewhere may help), a client
// deadline 504, a contained panic 500, anything else 400.
func runStatus(ctx context.Context, err error) int {
	if errors.Is(context.Cause(ctx), grazelle.ErrWatchdogKilled) {
		return http.StatusServiceUnavailable
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout
	}
	var pe *grazelle.PanicError
	if errors.As(err, &pe) {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "grazelle: encode response:", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
