package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	grazelle "repro"
	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/qcache"
)

// serve mode: `grazelle serve` turns the engine into a small JSON-over-HTTP
// service. All graph state lives in the store subsystem (grazelle.Store):
// named graphs with refcounted handles (delete/replace never disturbs
// in-flight queries), snapshot persistence under --data-dir (graphs reload
// across restarts), a resident-memory budget with LRU eviction, and
// admission control bounding concurrent queries. The HTTP layer here is a
// thin protocol adapter: decode, validate, acquire, run, encode.
//
// Endpoints:
//
//	GET    /healthz             liveness probe
//	GET    /readyz              readiness: store open, rehydration not wedged
//	GET    /v1/stats            store load: graphs, bytes, admission counters
//	GET    /v1/apps             registered applications with parameter schemas
//	GET    /v1/graphs           list graphs (resident and cold)
//	POST   /v1/graphs           load or generate a graph
//	                            {"name":"t","dataset":"T","scale":1.0} or
//	                            {"name":"g","path":"/data/graph"} (file pair)
//	DELETE /v1/graphs/{name}    unregister a graph and delete its snapshot
//	POST   /v1/graphs/{name}/snapshot   re-persist a graph to --data-dir
//	POST   /v1/graphs/{name}/edges      apply a batch of streaming edge
//	                            mutations ({"ops":[{"src":1,"dst":2,
//	                            "weight":1.0},{"delete":true,"src":3,
//	                            "dst":4}]}); the batch is WAL-durable and
//	                            visible under a new version before the
//	                            response returns
//	POST   /v1/graphs/{name}/compact    fold the mutation overlay into a
//	                            fresh base snapshot (also runs in the
//	                            background past -compact-after)
//	POST   /v1/query            run an application
//	                            {"graph":"t","app":"pr","iters":16,
//	                             "root":0,"k":2,"timeout_ms":500,
//	                             "values":false,"no_cache":false}
//	POST   /v1/batch            run a list of queries; identical entries are
//	                            deduped, cache hits served immediately, and
//	                            the distinct misses run over one pinned
//	                            store handle ({"queries":[...]})
//	GET    /metrics             Prometheus text exposition: store, scheduler,
//	                            admission, watchdog, cache, HTTP, run families
//	GET    /v1/runs             recent run records, newest first (?n= bounds)
//	GET    /v1/runs/{id}        one run's phase trace (404 once aged out)
//
// Every query response carries a run_id; the same id keys the run's record
// in /v1/runs/{id} and the structured request log. With -pprof-addr set, a
// second listener serves net/http/pprof — kept off the public address so
// profiling is never exposed by default.
//
// Apps are resolved through the registry (internal/apps): any registered
// application — pr, wpr, cc, bfs, sssp, tc, kcore, lp, ppr, or an
// out-of-tree registration — is queryable by name, with GET /v1/apps
// enumerating names and parameter schemas. Request fields an app's schema
// ignores are zeroed before cache-key derivation, so requests differing
// only in ignored fields share one cache entry.
//
// Query results are cached (internal/qcache) keyed by (graph, store
// version, app, canonical params) — sound because engines are
// bit-deterministic and store versions are never reused. Concurrent
// identical queries coalesce onto one run and one admission slot. X-Cache
// on each query response reports hit/miss/coalesced/bypass. -cache-budget
// bounds the cache (0 disables storage, coalescing stays), -cache-bypass
// disables the subsystem entirely, and "no_cache":true opts one request
// out. Replacing or deleting a graph invalidates its entries via the
// store's version-retirement hook.
//
// Admission rejections return 429 (queue full) with Retry-After; queries on
// unknown graphs 404; unloadable graph payloads 422; a degraded store
// (rehydration failing, shutting down) or a watchdog-killed run 503;
// timeouts 504; a contained panic 500 — the server itself stays up (every
// handler runs under a recovery wrapper). SIGINT/SIGTERM drain in-flight
// requests before exiting.
//
// Mutations degrade rather than fail the instance: an overlay past
// -delta-budget returns 429 with Retry-After (compaction is already
// scheduled), a wedged delta log returns 503 with Retry-After while healing
// retries in the background, and reads keep serving the last good version
// through both. /readyz reports degraded while any delta log is wedged.
func runServe(args []string) error { return runServeRole("serve", args) }

// runServeRole is the shared body of the three serving roles. "serve" is the
// ordinary single-process service; "worker" is serve plus the private
// POST /internal/run endpoint the router drives (see cluster.go); "router"
// is serve with query execution delegated to a worker roster through the
// cluster tier.
func runServeRole(role string, args []string) error {
	fs := flag.NewFlagSet("grazelle "+role, flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8473", "listen address")
		threads     = fs.Int("n", 0, "worker threads in the shared pool (0 = GOMAXPROCS)")
		timeout     = fs.Duration("timeout", 30*time.Second, "maximum per-request timeout")
		dataset     = fs.String("d", "", "preload a dataset analog as graph \"default\"")
		scale       = fs.Float64("scale", 1.0, "dataset analog scale factor (with -d)")
		input       = fs.String("i", "", "preload a graph file pair as graph \"default\"")
		dataDir     = fs.String("data-dir", "", "snapshot directory (persist graphs across restarts)")
		memCap      = fs.Int64("mem-budget", 0, "resident graph memory budget in bytes (0 = unlimited)")
		inflight    = fs.Int("max-inflight", 0, "maximum concurrent queries (0 = unlimited)")
		maxQueue    = fs.Int("max-queue", 0, "queries allowed to wait beyond -max-inflight")
		softLimit   = fs.Duration("soft-limit", 0, "watchdog soft run limit: slower queries are counted in /v1/stats (0 = off)")
		hardLimit   = fs.Duration("hard-limit", 0, "watchdog hard run limit: slower queries are cancelled with 503 (0 = off)")
		pprofAddr   = fs.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = off)")
		runHist     = fs.Int("run-history", 128, "run trace records retained for /v1/runs")
		logLevel    = fs.String("log-level", "info", "request log level (debug logs probe/scrape requests too)")
		cacheBudget = fs.Int64("cache-budget", 256<<20, "query result cache byte budget (0 = cache nothing, coalescing stays on)")
		cacheBypass = fs.Bool("cache-bypass", false, "disable the query result cache and coalescing entirely")
		partitions  = fs.Int("partitions", 0, "run queries through the partitioned coordinator with this many partitions (0 or 1 = monolithic; output is bit-identical)")
		deltaCap    = fs.Int64("delta-budget", 64<<20, "per-graph un-compacted mutation overlay budget in bytes; past it writes get 429 until compaction (0 = unlimited)")
		compactAt   = fs.Int64("compact-after", 16<<20, "overlay bytes that trigger background compaction (0 = only explicit /compact)")
		incrLimit   = fs.Int("incremental-threshold", 4096, "maximum mutation-delta edge ops for incremental recompute from a cached predecessor result (0 = always recompute in full)")
	)
	var (
		workerList  *string
		healthEvery *time.Duration
		exchTimeout *time.Duration
	)
	if role == "router" {
		workerList = fs.String("workers", "", "comma-separated worker base URLs (required)")
		healthEvery = fs.Duration("health-interval", time.Second, "worker health-check and resync interval")
		exchTimeout = fs.Duration("exchange-timeout", cluster.DefaultRoundTimeout, "exchange round timeout before a peer is declared wedged")
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	var workerURLs []string
	if role == "router" {
		for _, u := range strings.Split(*workerList, ",") {
			if u = strings.TrimSpace(u); u != "" {
				workerURLs = append(workerURLs, u)
			}
		}
		if len(workerURLs) == 0 {
			return errors.New("router requires -workers with at least one worker URL")
		}
	}

	st, err := grazelle.OpenStore(grazelle.StoreConfig{
		DataDir:           *dataDir,
		MemBudgetBytes:    *memCap,
		MaxInFlight:       *inflight,
		MaxQueue:          *maxQueue,
		Workers:           *threads,
		SoftRunLimit:      *softLimit,
		HardRunLimit:      *hardLimit,
		DeltaBudgetBytes:  *deltaCap,
		CompactAfterBytes: *compactAt,
		// Phase tracing is on for every serve-mode run: its cost is
		// phase-boundary-only and it feeds /v1/runs and the phase histograms.
		Options: grazelle.Options{Trace: true, Partitions: *partitions},
	})
	if err != nil {
		return err
	}
	defer st.Close()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", *logLevel, err)
	}
	workers := *threads
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	srv := &server{
		store:         st,
		maxTimeout:    *timeout,
		workers:       workers,
		incrThreshold: *incrLimit,
		log:           slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level})),
		ring:          obs.NewTraceRing(*runHist),
		metrics:       newServeMetrics(st.Metrics()),
	}
	if !*cacheBypass {
		srv.cache = qcache.New(qcache.Config{Budget: *cacheBudget})
		// The cache's families live in the store's registry and its entries
		// die with their store version: /metrics, /v1/stats, and the graph
		// lifecycle all stay in lockstep. Retirement is reason-aware: mutate
		// and compact are warm (payloads die, seed candidates survive to
		// warm-start recomputes on the successor); replace and delete are
		// hard (the lineage is over, seeds die too).
		srv.cache.RegisterMetrics(st.Metrics())
		st.OnRetireReason(func(name string, version uint64, reason grazelle.RetireReason) {
			warm := reason == grazelle.RetireMutate || reason == grazelle.RetireCompact
			srv.cache.RetireVersion(name, version, warm)
		})
	}

	switch role {
	case "worker":
		srv.clusterWorker = cluster.NewWorker(st, workers, srv.metrics.exchangeNet)
	case "router":
		srv.clusterParts = *partitions
		if srv.clusterParts < 2 {
			// The cluster tier exists to spread frontier ownership; default to
			// one partition per worker (floor 2 so the exchange actually runs).
			srv.clusterParts = len(workerURLs)
			if srv.clusterParts < 2 {
				srv.clusterParts = 2
			}
		}
		srv.cluster = cluster.NewRouter(cluster.RouterConfig{
			Workers:        workerURLs,
			Partitions:     srv.clusterParts,
			HealthInterval: *healthEvery,
			RoundTimeout:   *exchTimeout,
			Registry:       st.Metrics(),
			Logger:         srv.log,
		})
		defer srv.cluster.Close()
	}

	switch {
	case *dataset != "":
		g, err := grazelle.GenerateDataset(*dataset, *scale)
		if err != nil {
			return err
		}
		if err := st.Add("default", g); err != nil {
			return err
		}
		if srv.cluster != nil {
			srv.cluster.RecordGraph(cluster.GraphSpec{Name: "default", Dataset: *dataset, Scale: *scale})
		}
	case *input != "":
		g, err := grazelle.LoadGraphPair(*input)
		if err != nil {
			return err
		}
		if err := st.Add("default", g); err != nil {
			return err
		}
		if srv.cluster != nil {
			srv.cluster.RecordGraph(cluster.GraphSpec{Name: "default", Path: *input})
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address is printed (not just logged) so callers binding
	// port 0 can discover the port. It must be the first address announced —
	// scripts take the first "http://" line as the service base URL.
	fmt.Printf("grazelle: serving on http://%s\n", ln.Addr())
	hs := &http.Server{Handler: srv.mux(), ReadHeaderTimeout: 10 * time.Second}
	if srv.cluster != nil {
		// Workers post frontier segments back to this process's own public
		// address; the health/resync loop starts only once that is known.
		srv.cluster.SetExchangeURL(fmt.Sprintf("http://%s/internal/exchange", ln.Addr()))
		srv.cluster.Start()
	}

	// Profiling stays on its own opt-in listener so it is never reachable
	// through the public address.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		defer pln.Close()
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("grazelle: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go http.Serve(pln, pmux)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			return err
		}
		fmt.Println("grazelle: shut down")
		return nil
	}
}

// maxBodyBytes bounds request bodies; graph-load and query requests are a
// few hundred bytes of JSON.
const maxBodyBytes = 1 << 20

// server adapts HTTP to the store. Beyond observability state (the
// run-trace ring, metric handles, request logger) it owns the query result
// cache; nil cache means -cache-bypass.
type server struct {
	store      *grazelle.Store
	cache      *qcache.Cache
	maxTimeout time.Duration
	workers    int
	// incrThreshold caps the mutation-delta size (edge ops) incremental
	// recompute will seed across; 0 disables the path.
	incrThreshold int
	log           *slog.Logger
	ring          *obs.TraceRing
	metrics       *serveMetrics
	// cluster, when non-nil, makes this process a router: every query runs
	// through Execute on the worker roster with clusterParts partitions
	// instead of the local engine. clusterWorker, when non-nil, makes it a
	// worker: the private /internal/run endpoint is exposed. Both nil is the
	// ordinary single-process serve mode.
	cluster       *cluster.Router
	clusterParts  int
	clusterWorker *cluster.Worker
}

func (s *server) mux() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	handle("GET /readyz", s.handleReady)
	handle("GET /metrics", s.store.Metrics().Handler().ServeHTTP)
	handle("GET /v1/stats", s.handleStats)
	handle("GET /v1/apps", s.handleApps)
	handle("GET /v1/runs", s.handleRuns)
	handle("GET /v1/runs/{id}", s.handleRunByID)
	handle("GET /v1/graphs", s.handleListGraphs)
	handle("POST /v1/graphs", s.handleAddGraph)
	handle("DELETE /v1/graphs/{name}", s.handleDeleteGraph)
	handle("POST /v1/graphs/{name}/snapshot", s.handleSnapshotGraph)
	handle("POST /v1/graphs/{name}/edges", s.handleMutateEdges)
	handle("POST /v1/graphs/{name}/compact", s.handleCompactGraph)
	handle("POST /v1/query", s.handleQuery)
	handle("POST /v1/batch", s.handleBatch)
	if s.clusterWorker != nil {
		handle("POST /internal/run", s.clusterWorker.HandleRun)
	}
	if s.cluster != nil {
		handle("POST /internal/exchange", s.cluster.HandleExchange)
		handle("GET /v1/cluster", s.handleClusterStatus)
	}
	return s.recoverMiddleware(mux)
}

// recoverMiddleware contains handler panics: the failing request gets a 500
// JSON error, the process and every other connection stay up, and the
// handler's own defers (admission release, handle close) have already run
// during unwinding. Without it net/http kills the connection mid-response
// and a panic in pre-handler state could leak slots.
func (s *server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.log.Error("handler panic",
					"method", r.Method,
					"path", r.URL.Path,
					"panic", fmt.Sprint(rec),
					"stack", string(debug.Stack()))
				writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// handleReady is the readiness probe: 200 while the store is open and
// healthy, 503 once it is closed or rehydration is wedged. Liveness
// (/healthz) stays 200 either way — a degraded instance should be drained,
// not restarted.
func (s *server) handleReady(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Ready(); err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	// The cache and cluster blocks read the same counter cells /metrics
	// exposes, so the views cannot drift.
	out := struct {
		grazelle.StoreStats
		Cache   *qcache.Stats   `json:"cache,omitempty"`
		Cluster *cluster.Status `json:"cluster,omitempty"`
	}{StoreStats: s.store.Stats()}
	if s.cache != nil {
		cs := s.cache.Stats()
		out.Cache = &cs
	}
	if s.cluster != nil {
		st := s.cluster.Status()
		out.Cluster = &st
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.store.List()})
}

func (s *server) handleAddGraph(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req struct {
		Name    string  `json:"name"`
		Dataset string  `json:"dataset"`
		Scale   float64 `json:"scale"`
		Path    string  `json:"path"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing graph name"))
		return
	}
	if s.cluster != nil {
		// Catalog writes serialize against cluster execution per graph, so a
		// scatter-gathered run never straddles a version change on one replica.
		l := s.cluster.LockGraph(req.Name)
		l.Lock()
		defer l.Unlock()
	}
	var g *grazelle.Graph
	var err error
	switch {
	case req.Dataset != "":
		if req.Scale == 0 {
			req.Scale = 1.0
		}
		g, err = grazelle.GenerateDataset(req.Dataset, req.Scale)
	case req.Path != "":
		g, err = grazelle.LoadGraphPair(req.Path)
	default:
		writeError(w, http.StatusBadRequest, errors.New("one of dataset or path is required"))
		return
	}
	if err != nil {
		// The request was well-formed but the named payload cannot be turned
		// into a graph (unknown dataset, unreadable or corrupt file).
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if err := s.store.Add(req.Name, g); err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, grazelle.ErrStoreClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	if s.cluster != nil {
		s.cluster.GraphAdded(cluster.GraphSpec{
			Name: req.Name, Dataset: req.Dataset, Scale: req.Scale, Path: req.Path,
		})
	}
	for _, info := range s.store.List() {
		if info.Name == req.Name {
			writeJSON(w, http.StatusOK, info)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"name": req.Name})
}

func (s *server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.cluster != nil {
		l := s.cluster.LockGraph(name)
		l.Lock()
		defer l.Unlock()
	}
	if err := s.store.Delete(name); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, grazelle.ErrGraphNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	if s.cluster != nil {
		s.cluster.GraphDeleted(name)
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *server) handleSnapshotGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.store.Snapshot(name); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, grazelle.ErrGraphNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"snapshotted": name})
}

// handleMutateEdges applies one batch of streaming edge mutations. The
// response is written only after the batch is WAL-durable and published
// under a new version, so a 200 means the mutation survives a crash. The
// degradation ladder maps to statuses clients can act on: overlay over
// budget 429 + Retry-After (compaction already scheduled), delta log wedged
// 503 + Retry-After (healing retries in the background, reads still serve),
// raced a replace/delete 409 (retry against the new graph if still
// meaningful), malformed ops 400.
func (s *server) handleMutateEdges(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req struct {
		Ops []struct {
			Delete bool    `json:"delete"`
			Src    uint32  `json:"src"`
			Dst    uint32  `json:"dst"`
			Weight float32 `json:"weight"`
		} `json:"ops"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty ops batch"))
		return
	}
	ops := make([]grazelle.EdgeOp, len(req.Ops))
	for i, op := range req.Ops {
		ops[i] = grazelle.EdgeOp{Delete: op.Delete, Src: op.Src, Dst: op.Dst, Weight: op.Weight}
	}
	if s.cluster != nil {
		l := s.cluster.LockGraph(name)
		l.Lock()
		defer l.Unlock()
	}
	seq, version, err := s.store.ApplyEdges(name, ops)
	if err != nil {
		status, retryAfter := mutationStatus(err)
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		writeError(w, status, err)
		return
	}
	if s.cluster != nil {
		s.cluster.EdgesApplied(name, ops)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"graph":   name,
		"applied": len(ops),
		"seq":     seq,
		"version": version,
	})
}

// handleCompactGraph folds the graph's mutation overlay into a fresh base
// snapshot on demand. Compaction is bit-preserving, so this is always safe;
// it mainly serves tests and operators who want the overlay drained now
// rather than at the -compact-after threshold.
func (s *server) handleCompactGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.store.Compact(name); err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, grazelle.ErrGraphNotFound):
			status = http.StatusNotFound
		case errors.Is(err, grazelle.ErrStoreClosed):
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"compacted": name})
}

// mutationStatus maps an ApplyEdges failure to (status, Retry-After). The
// two retryable degradations carry Retry-After so well-behaved writers back
// off instead of hammering: budget pressure clears on the next compaction
// (fast), a wedged log clears on a successful heal rewrite (slower).
func mutationStatus(err error) (status int, retryAfter string) {
	var be *grazelle.DeltaBudgetError
	var we *grazelle.WALWedgedError
	switch {
	case errors.As(err, &be):
		return http.StatusTooManyRequests, "1"
	case errors.As(err, &we):
		return http.StatusServiceUnavailable, "2"
	case errors.Is(err, grazelle.ErrMutationConflict):
		return http.StatusConflict, ""
	case errors.Is(err, grazelle.ErrGraphNotFound):
		return http.StatusNotFound, ""
	case errors.Is(err, grazelle.ErrStoreClosed):
		return http.StatusServiceUnavailable, ""
	default:
		return http.StatusBadRequest, ""
	}
}

// handleApps enumerates the registered applications with their parameter
// schemas — the same registry the query path dispatches through, so the
// listing cannot drift from what is runnable.
func (s *server) handleApps(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"apps": grazelle.Apps()})
}

// queryRequest is the decoded body of /v1/query and each /v1/batch entry.
// Iters, Root, and K are the universal parameter fields; each app reads the
// subset its registered schema declares and the rest are zeroed out of the
// cache key.
type queryRequest struct {
	Graph     string `json:"graph"`
	App       string `json:"app"`
	Iters     int    `json:"iters"`
	Root      uint32 `json:"root"`
	K         int    `json:"k"`
	TimeoutMS int64  `json:"timeout_ms"`
	Values    bool   `json:"values"`
	// NoCache opts this request out of the result cache and coalescing.
	NoCache bool `json:"no_cache"`
}

// normalize validates the app against the registry and rewrites the
// parameter fields to their canonical form: fields the app's schema ignores
// are zeroed, used fields left unset get the registered defaults.
func (q *queryRequest) normalize() error {
	if q.Graph == "" {
		q.Graph = "default"
	}
	ent, err := apps.Lookup(q.App)
	if err != nil {
		return err
	}
	p := ent.Normalize(apps.Params{Iters: q.Iters, Root: q.Root, K: q.K})
	q.Iters, q.Root, q.K = p.Iters, p.Root, p.K
	return nil
}

// canonicalQuery renders a (normalized) request's canonical parameter
// string from the app's registered schema, plus the values flag — which is
// a response-shape parameter, not an app parameter, so it is appended here
// rather than registered.
func canonicalQuery(q queryRequest) string {
	ent, err := apps.Lookup(q.App)
	if err != nil {
		// normalize validated the app already; an unknown app here means the
		// caller skipped it, and a unique key degrades to cache misses.
		return fmt.Sprintf("app=%s&values=%t", q.App, q.Values)
	}
	p := ent.Canonical(apps.Params{Iters: q.Iters, Root: q.Root, K: q.K})
	return fmt.Sprintf("%s&values=%t", p, q.Values)
}

// cacheKey builds the request's cache key from the graph's current store
// version. Timeout is deliberately absent: it shapes how long the caller
// waits, not what the result is.
func (s *server) cacheKey(q queryRequest) (qcache.Key, error) {
	version, err := s.store.Version(q.Graph)
	if err != nil {
		return qcache.Key{}, err
	}
	return qcache.Key{
		Graph:   q.Graph,
		Version: version,
		App:     q.App,
		Params:  canonicalQuery(q),
	}, nil
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	timeout := s.maxTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	if s.cache == nil || req.NoCache {
		res, err := s.executeQuery(ctx, req)
		s.writeQueryResult(w, res, "bypass", err)
		return
	}
	key, err := s.cacheKey(req)
	if err != nil {
		writeError(w, acquireStatus(err), err)
		return
	}
	res, outcome, err := s.cache.Do(ctx, key, func(cctx context.Context) (qcache.Result, error) {
		return s.executeQuery(cctx, req)
	})
	s.writeQueryResult(w, res, outcome.String(), err)
}

// writeQueryResult finishes a single-query response: run-ID and cache-state
// headers, then the cached/computed payload or the mapped error.
func (s *server) writeQueryResult(w http.ResponseWriter, res qcache.Result, cacheState string, err error) {
	if res.RunID != "" {
		w.Header().Set("X-Run-Id", res.RunID)
	}
	w.Header().Set("X-Cache", cacheState)
	if err != nil {
		status := queryStatus(err)
		var ue *cluster.UnavailableError
		if status == http.StatusTooManyRequests || errors.As(err, &ue) {
			// Both clear on their own: admission pressure drains, and the
			// cluster health loop repairs or resyncs workers.
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, err)
		return
	}
	writePayload(w, http.StatusOK, res.Payload)
}

// executeQuery is the full uncached query path: admission, graph acquire,
// then the engine run. It is the compute function a cache flight's leader
// runs — coalesced identical requests therefore consume exactly one
// admission slot, and a promoted leader re-admits under its own context.
func (s *server) executeQuery(ctx context.Context, req queryRequest) (qcache.Result, error) {
	// Admission first: a rejected query must not touch graph state. 429
	// tells well-behaved clients to back off and retry.
	release, err := s.store.Admit(ctx)
	if err != nil {
		return qcache.Result{}, err
	}
	defer release()

	// Fault-injection site for chaos tests: a panic here exercises the
	// recovery middleware with an admission slot held.
	if err := fault.Inject("serve/handler"); err != nil {
		panic(err)
	}

	h, err := s.store.Acquire(req.Graph)
	if err != nil {
		return qcache.Result{}, err
	}
	defer h.Close()
	return s.runOnHandle(ctx, h, req)
}

// runOnHandle runs one query over an already-acquired handle, records the
// run (metrics + trace ring), and serializes the response payload. The
// returned Result carries the handle's version so the cache indexes it
// under the version it was actually computed on.
func (s *server) runOnHandle(ctx context.Context, h *grazelle.StoreHandle, req queryRequest) (qcache.Result, error) {
	// Router role: the local store holds the catalog and versions, but the
	// compute itself is scatter-gathered over the worker roster. Branching
	// here (not in handleQuery) keeps the cache, coalescing, and /v1/batch
	// paths identical across roles.
	if s.cluster != nil {
		return s.runOnCluster(ctx, h, req)
	}
	eng := h.Engine()

	// Watchdog tracking: a run past -hard-limit is cancelled through ctx.
	ctx, done := s.store.TrackRun(ctx)
	defer done()

	runID := nextRunID()
	start := time.Now()

	p := grazelle.Params{Iters: req.Iters, Root: req.Root, K: req.K}
	var (
		res         *grazelle.AppResult
		err         error
		ran         bool
		incremental bool
		seedVersion uint64
		seedKey     string
	)
	// Incremental recompute: when this app can warm-start, a predecessor
	// result is retained for these exact params, and the connecting mutation
	// delta is recoverable and under -incremental-threshold, seed the run
	// from the predecessor instead of cold-starting. Any failure inside
	// degrades to the full recompute below, with the fallback counted.
	ent, entErr := apps.Lookup(req.App)
	canSeed := entErr == nil && ent.IncrementalSeed != nil && s.cache != nil && !req.NoCache
	if canSeed {
		seedKey = ent.Canonical(apps.Params{Iters: req.Iters, Root: req.Root, K: req.K})
	}
	if canSeed && s.incrThreshold > 0 {
		if sv, props, ok := s.cache.SeedFor(req.Graph, req.App, seedKey); ok && sv < h.Version() {
			if d, dok := s.store.DeltaBetween(req.Graph, sv, h.Version()); dok && len(d.Ops) <= s.incrThreshold {
				var seeded bool
				res, seeded, err = eng.RunIncremental(ctx, req.App, p, grazelle.SeedSpec{
					PredProps:       props,
					Ops:             d.Ops,
					FromEdges:       d.FromEdges,
					FromCountsKnown: d.FromCountsKnown,
				})
				ran = true
				if seeded {
					incremental, seedVersion = true, sv
					s.cache.CountSeedUse()
					s.metrics.incrementalSeeded.Inc()
				} else {
					s.metrics.incrementalFallback.Inc()
				}
			}
		}
	}
	if !ran {
		res, err = eng.Run(ctx, req.App, p)
	}
	var stats grazelle.Stats
	if res != nil {
		stats = res.Stats
	}
	// Record the run — success or failure — before responding: the wall
	// time feeds the run histograms and the trace lands in the ring where
	// GET /v1/runs/{id} can replay it.
	wall := time.Since(start)
	s.metrics.observeRun(wall, stats.Phases, stats.TraceDropped)
	s.metrics.exchangeShmem.Add(uint64(stats.ExchangeBytes))
	rec := obs.RunRecord{
		ID:    runID,
		Graph: req.Graph,
		App:   req.App,
		Start: start,
		Wall:  wall,
		Trace: obs.RunTrace{
			Phases:     stats.Phases,
			Directions: stats.Directions,
			Partitions: stats.PartitionStats,
			Dropped:    stats.TraceDropped,
		},
		Workers:     s.workers,
		Iters:       stats.Iterations,
		Vertices:    int64(h.Graph().NumVertices()),
		Edges:       int64(h.Graph().NumEdges()),
		Mode:        stats.Mode,
		Partitions:  stats.Partitions,
		Incremental: incremental,
		SeedVersion: seedVersion,
	}
	if err != nil {
		rec.Error = err.Error()
	}
	s.ring.Add(rec)

	if err != nil {
		// The watchdog cancels the tracked context, not the request's; fold
		// its cause into the error so status mapping (and coalesced
		// followers, who never see this context) can recognize the kill.
		if errors.Is(context.Cause(ctx), grazelle.ErrWatchdogKilled) {
			err = fmt.Errorf("%w (%v)", grazelle.ErrWatchdogKilled, err)
		}
		return qcache.Result{RunID: runID}, err
	}
	// The response is assembled as a map so the summary keys come from the
	// registry entry instead of a hardwired struct; json.Marshal sorts map
	// keys, so cached and fresh responses stay byte-identical.
	resp := map[string]any{
		"run_id":          runID,
		"graph":           req.Graph,
		"app":             req.App,
		"iterations":      stats.Iterations,
		"pull_iterations": stats.PullIterations,
		"push_iterations": stats.PushIterations,
		"mode":            stats.Mode,
		"partitions":      stats.Partitions,
		"elapsed_ms":      stats.Total.Milliseconds(),
	}
	if incremental {
		resp["incremental"] = true
		resp["seed_version"] = seedVersion
	}
	for _, st := range res.Summary() {
		resp[st.Key] = st.Value
	}
	if req.Values {
		resp["values"] = res.Values()
	}
	payload, err := json.Marshal(resp)
	if err != nil {
		return qcache.Result{RunID: runID}, err
	}
	// Match writeJSON's json.Encoder framing so cached and fresh responses
	// are byte-identical.
	payload = append(payload, '\n')
	if canSeed {
		// Every successful run of a seed-capable app is the next mutation's
		// warm-start candidate — including incremental runs, so seeds chain
		// across a stream of small batches.
		s.cache.OfferSeed(req.Graph, req.App, seedKey, h.Version(), res.Props)
	}
	return qcache.Result{
		Payload:      payload,
		RunID:        runID,
		Version:      h.Version(),
		Phases:       stats.Phases,
		TraceDropped: stats.TraceDropped,
	}, nil
}

// Sentinel errors for the /v1/runs endpoints.
var (
	errBadRunCount = errors.New("bad n: want a nonnegative integer")
	errRunNotFound = errors.New("run not found (aged out of the trace ring or never existed)")
)

// acquireStatus maps a Store.Acquire failure to an HTTP status: unknown
// name 404; store shutting down or snapshot data failing (quarantined
// corruption, exhausted rehydration retries) 503 so load balancers route
// away; anything else 500.
func acquireStatus(err error) int {
	switch {
	case errors.Is(err, grazelle.ErrGraphNotFound):
		return http.StatusNotFound
	case errors.Is(err, grazelle.ErrStoreClosed):
		return http.StatusServiceUnavailable
	default:
		var ce *grazelle.CorruptSnapshotError
		var re *grazelle.RehydrateError
		if errors.As(err, &ce) || errors.As(err, &re) {
			return http.StatusServiceUnavailable
		}
		return http.StatusInternalServerError
	}
}

// queryStatus maps any failure on the query path — admission, version
// lookup, acquire, or the run itself — to an HTTP status: overload 429,
// unknown graph 404, a watchdog kill or degraded store 503, a client
// deadline 504, a contained panic 500, anything else 400. Coalesced
// followers share the leader's error, so the mapping depends only on the
// error value, never on whose context ran the compute.
func queryStatus(err error) int {
	switch {
	case errors.Is(err, grazelle.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, grazelle.ErrWatchdogKilled):
		return http.StatusServiceUnavailable
	case errors.Is(err, grazelle.ErrGraphNotFound), errors.Is(err, grazelle.ErrStoreClosed):
		return acquireStatus(err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, grazelle.ErrMutationConflict):
		// The cluster path re-checks the graph version under the per-graph
		// lock; losing that race is retryable, not a client error.
		return http.StatusConflict
	}
	// Cluster-tier failures: no placement possible is a degraded-service 503
	// (with Retry-After), a worker's own verdict keeps its status when it is
	// one the client can act on, and everything else a worker or the exchange
	// barrier did wrong is a 502 — the upstream, not this service, failed.
	var ue *cluster.UnavailableError
	var cpe *cluster.PeerError
	var rae *cluster.RunAbortedError
	switch {
	case errors.As(err, &ue):
		return http.StatusServiceUnavailable
	case errors.As(err, &cpe):
		switch {
		case cpe.Status == http.StatusTooManyRequests:
			return http.StatusTooManyRequests
		case cpe.Status == http.StatusGatewayTimeout || cpe.Code == "timeout":
			return http.StatusGatewayTimeout
		default:
			return http.StatusBadGateway
		}
	case errors.As(err, &rae):
		return http.StatusServiceUnavailable
	}
	var pe *grazelle.PanicError
	if errors.As(err, &pe) {
		return http.StatusInternalServerError
	}
	var ce *grazelle.CorruptSnapshotError
	var re *grazelle.RehydrateError
	if errors.As(err, &ce) || errors.As(err, &re) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// writePayload writes an already-serialized JSON body (the cache's unit of
// storage) verbatim.
func writePayload(w http.ResponseWriter, status int, payload []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(payload); err != nil {
		fmt.Fprintln(os.Stderr, "grazelle: write response:", err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "grazelle: encode response:", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
