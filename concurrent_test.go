package grazelle

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
)

// concurrencyGraph builds a weighted RMAT analog so all five applications
// are available from one Engine.
func concurrencyGraph(t *testing.T) *Graph {
	t.Helper()
	wg := gen.AddUniformWeights(gen.RMAT(11, 16000, gen.DefaultRMAT, 21), 22)
	g, err := NewGraph(wg.NumVertices, wg.Edges, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestEngineConcurrentMixedQueries is the headline concurrency guarantee:
// twelve goroutines run all five applications on ONE Engine (one graph, one
// worker pool) and every output must be bit-identical to the corresponding
// sequential solo run.
func TestEngineConcurrentMixedQueries(t *testing.T) {
	g := concurrencyGraph(t)
	e := NewEngine(g, Options{Workers: 4})
	defer e.Close()

	bits := func(f float64) uint64 { return math.Float64bits(f) }
	type query struct {
		name string
		run  func() ([]uint64, error)
	}
	queries := []query{
		{"PageRank", func() ([]uint64, error) {
			res := e.PageRank(8)
			out := make([]uint64, len(res.Ranks))
			for i, r := range res.Ranks {
				out[i] = bits(r)
			}
			return out, nil
		}},
		{"WeightedRank", func() ([]uint64, error) {
			res, err := e.WeightedRank(8)
			out := make([]uint64, len(res.Ranks))
			for i, r := range res.Ranks {
				out[i] = bits(r)
			}
			return out, err
		}},
		{"CC", func() ([]uint64, error) {
			res := e.ConnectedComponents()
			out := make([]uint64, len(res.Components))
			for i, c := range res.Components {
				out[i] = uint64(c)
			}
			return out, nil
		}},
		{"BFS", func() ([]uint64, error) {
			res := e.BFS(0)
			out := make([]uint64, len(res.Parents))
			for i, p := range res.Parents {
				out[i] = uint64(p)
			}
			return out, nil
		}},
		{"SSSP", func() ([]uint64, error) {
			res, err := e.SSSP(0)
			out := make([]uint64, len(res.Dist))
			for i, d := range res.Dist {
				out[i] = bits(d)
			}
			return out, err
		}},
	}

	// Sequential references, one solo run per application.
	want := make([][]uint64, len(queries))
	for i, q := range queries {
		ref, err := q.run()
		if err != nil {
			t.Fatalf("%s reference: %v", q.name, err)
		}
		want[i] = ref
	}

	const reps = 3 // 15 concurrent queries, three per application
	var wg sync.WaitGroup
	for rep := 0; rep < reps; rep++ {
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q query) {
				defer wg.Done()
				got, err := q.run()
				if err != nil {
					t.Errorf("%s: %v", q.name, err)
					return
				}
				for v := range want[i] {
					if got[v] != want[i][v] {
						t.Errorf("%s: output[%d] = %#x, want %#x (bit-exact vs sequential reference)",
							q.name, v, got[v], want[i][v])
						return
					}
				}
			}(i, q)
		}
	}
	wg.Wait()
}

// TestEngineCtxCancellation: a cancelled context stops a run early with a
// non-nil error from every Ctx variant.
func TestEngineCtxCancellation(t *testing.T) {
	g := concurrencyGraph(t)
	e := NewEngine(g, Options{Workers: 2})
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.PageRankCtx(ctx, 100); !errors.Is(err, context.Canceled) {
		t.Errorf("PageRankCtx err = %v, want context.Canceled", err)
	}
	if _, err := e.WeightedRankCtx(ctx, 100); !errors.Is(err, context.Canceled) {
		t.Errorf("WeightedRankCtx err = %v, want context.Canceled", err)
	}
	if _, err := e.ConnectedComponentsCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("ConnectedComponentsCtx err = %v, want context.Canceled", err)
	}
	if _, err := e.BFSCtx(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("BFSCtx err = %v, want context.Canceled", err)
	}
	if _, err := e.SSSPCtx(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("SSSPCtx err = %v, want context.Canceled", err)
	}

	// A live context cancelled mid-run still yields the partial result shape.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() { time.Sleep(time.Millisecond); cancel2() }()
	res, err := e.PageRankCtx(ctx2, 1<<20)
	if err == nil {
		t.Fatal("mid-run cancellation returned nil error")
	}
	if len(res.Ranks) != g.NumVertices() {
		t.Errorf("partial result has %d ranks, want %d", len(res.Ranks), g.NumVertices())
	}
}

// TestEngineCloseIdempotent: Engine.Close twice must not panic.
func TestEngineCloseIdempotent(t *testing.T) {
	g := concurrencyGraph(t)
	e := NewEngine(g, Options{Workers: 2})
	e.Close()
	e.Close()
}

// TestNumComponentsCounts pins the bitmap-based label count.
func TestNumComponentsCounts(t *testing.T) {
	r := ComponentsResult{Components: []uint32{0, 0, 2, 2, 4, 5}}
	if n := r.NumComponents(); n != 4 {
		t.Errorf("NumComponents = %d, want 4", n)
	}
	if n := (ComponentsResult{}).NumComponents(); n != 0 {
		t.Errorf("empty NumComponents = %d, want 0", n)
	}
}
