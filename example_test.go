package grazelle_test

import (
	"fmt"

	grazelle "repro"
)

// ExampleNewEngine runs PageRank on a tiny hand-built graph with the
// paper-default engine configuration.
func ExampleNewEngine() {
	g, err := grazelle.NewGraph(3, []grazelle.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
	}, false)
	if err != nil {
		panic(err)
	}
	e := grazelle.NewEngine(g, grazelle.Options{Workers: 1})
	defer e.Close()
	pr := e.PageRank(50)
	// A directed 3-cycle is symmetric: every vertex holds 1/3 of the mass.
	fmt.Printf("sum=%.4f rank0=%.4f\n", pr.Sum, pr.Ranks[0])
	// Output: sum=1.0000 rank0=0.3333
}

// ExampleEngine_BFS shows BFS parents and reachability.
func ExampleEngine_BFS() {
	g, _ := grazelle.NewGraph(4, []grazelle.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2},
	}, false)
	e := grazelle.NewEngine(g, grazelle.Options{Workers: 1})
	defer e.Close()
	res := e.BFS(0)
	fmt.Println(res.Parents, res.Reachable())
	// Output: [0 0 1 -1] 3
}

// ExampleEngine_ConnectedComponents labels components by their minimum
// vertex id.
func ExampleEngine_ConnectedComponents() {
	g, _ := grazelle.NewGraph(5, []grazelle.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 3},
	}, false)
	e := grazelle.NewEngine(g, grazelle.Options{Workers: 1})
	defer e.Close()
	res := e.ConnectedComponents()
	fmt.Println(res.Components, res.NumComponents())
	// Output: [0 0 2 3 3] 3
}

// ExampleEngine_SSSP computes weighted shortest paths.
func ExampleEngine_SSSP() {
	g, _ := grazelle.NewGraph(3, []grazelle.Edge{
		{Src: 0, Dst: 1, Weight: 5},
		{Src: 0, Dst: 2, Weight: 1},
		{Src: 2, Dst: 1, Weight: 1},
	}, true)
	e := grazelle.NewEngine(g, grazelle.Options{Workers: 1})
	defer e.Close()
	res, err := e.SSSP(0)
	if err != nil {
		panic(err)
	}
	// The detour through 2 beats the direct edge.
	fmt.Println(res.Dist)
	// Output: [0 2 1]
}

// ExampleGenerateDataset builds a Table 1 analog and reports its
// Vector-Sparse packing efficiency (the Fig 9 metric).
func ExampleGenerateDataset() {
	g, err := grazelle.GenerateDataset("dimacs-usa", 1.0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("mesh packing at 4 lanes: %.1f%%\n", 100*g.PackingEfficiency())
	// Output: mesh packing at 4 lanes: 98.7%
}
