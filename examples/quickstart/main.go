// Quickstart: build a small graph by hand, run PageRank, BFS, and
// Connected Components through the public API, and print the results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	grazelle "repro"
)

func main() {
	// A toy citation graph: 0 and 1 cite each other, everyone cites 4.
	edges := []grazelle.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 0, Dst: 4}, {Src: 1, Dst: 4}, {Src: 2, Dst: 4}, {Src: 3, Dst: 4},
		{Src: 2, Dst: 3},
		{Src: 4, Dst: 0},
	}
	g, err := grazelle.NewGraph(5, edges, false)
	if err != nil {
		log.Fatal(err)
	}
	e := grazelle.NewEngine(g, grazelle.Options{})
	defer e.Close()

	pr := e.PageRank(30)
	fmt.Printf("PageRank (sum %.6f):\n", pr.Sum)
	for v, r := range pr.Ranks {
		fmt.Printf("  vertex %d: %.4f\n", v, r)
	}

	bfs := e.BFS(2)
	fmt.Println("BFS parents from 2:")
	for v, p := range bfs.Parents {
		fmt.Printf("  vertex %d: parent %d\n", v, p)
	}

	cc := e.ConnectedComponents()
	fmt.Printf("Connected components: %d (labels %v)\n", cc.NumComponents(), cc.Components)
}
