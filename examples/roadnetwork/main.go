// Roadnetwork: route computation on a weighted road-network analog (the
// dimacs-usa-style mesh). Runs BFS for hop distance and SSSP for weighted
// travel cost from a corner intersection — the frontier-driven,
// high-diameter workload that exercises the hybrid engine's push side.
//
//	go run ./examples/roadnetwork [-rows 120 -cols 130]
package main

import (
	"flag"
	"fmt"
	"log"

	grazelle "repro"
	"repro/internal/gen"
)

func main() {
	rows := flag.Int("rows", 120, "mesh rows")
	cols := flag.Int("cols", 130, "mesh cols")
	flag.Parse()

	mesh := gen.Grid(*rows, *cols, true, 42)
	g, err := grazelle.NewGraph(mesh.NumVertices, mesh.Edges, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Road network: %d intersections, %d road segments\n",
		g.NumVertices(), g.NumEdges())

	e := grazelle.NewEngine(g, grazelle.Options{})
	defer e.Close()

	bfs := e.BFS(0)
	fmt.Printf("BFS from corner: reached %d intersections in %d rounds (%d pull / %d push iterations), %v\n",
		bfs.Reachable(), bfs.Stats.Iterations,
		bfs.Stats.PullIterations, bfs.Stats.PushIterations, bfs.Stats.Total)

	sssp, err := e.SSSP(0)
	if err != nil {
		log.Fatal(err)
	}
	far := uint32(g.NumVertices() - 1) // opposite corner
	fmt.Printf("SSSP from corner: cost to opposite corner %.2f, %d rounds, %v\n",
		sssp.Dist[far], sssp.Stats.Iterations, sssp.Stats.Total)

	// Reconstruct one shortest route by walking the distance field
	// backwards: from v, step to an in-neighbor u with dist[u] + w(u,v) ==
	// dist[v].
	in := make(map[uint32][]grazelle.Edge)
	for _, edge := range mesh.Edges {
		in[edge.Dst] = append(in[edge.Dst], edge)
	}
	hops := 0
	for v := far; v != 0 && hops <= g.NumVertices(); hops++ {
		next := v
		for _, edge := range in[v] {
			if sssp.Dist[edge.Src]+float64(edge.Weight) <= sssp.Dist[v]+1e-9 {
				next = edge.Src
				break
			}
		}
		if next == v {
			log.Fatalf("no predecessor found at intersection %d", v)
		}
		v = next
	}
	fmt.Printf("Route from opposite corner back to origin: %d segments\n", hops)
}
