// Schedinterface: a side-by-side demonstration of the paper's first
// contribution. Runs the same PageRank workload under the traditional
// parallel-loop interface (one synchronized shared write per edge) and the
// scheduler-aware interface (thread-local accumulation + merge buffer), and
// prints the write-traffic and synchronization counters that explain the
// paper's up-to-50× gap.
//
//	go run ./examples/schedinterface [-dataset U -scale 0.5]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	grazelle "repro"
)

func main() {
	dataset := flag.String("dataset", "uk-2007", "dataset analog (the paper's largest win is on uk-2007)")
	scale := flag.Float64("scale", 0.5, "dataset scale factor")
	iters := flag.Int("iters", 8, "PageRank iterations")
	gran := flag.Int("granularity", 1000, "edge vectors per chunk (Fig 5 uses 1000)")
	flag.Parse()

	g, err := grazelle.GenerateDataset(*dataset, *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Graph: %s analog, %d vertices, %d edges\n\n", *dataset, g.NumVertices(), g.NumEdges())

	run := func(name string, variant grazelle.PullVariant) (time.Duration, grazelle.Counters) {
		e := grazelle.NewEngine(g, grazelle.Options{
			Variant:      variant,
			ChunkVectors: *gran,
			Mode:         grazelle.PullOnly,
			Record:       true,
		})
		defer e.Close()
		res := e.PageRank(*iters)
		fmt.Printf("%-16s time %-12v rank sum %.9f\n", name, res.Stats.Total, res.Sum)
		return res.Stats.Total, res.Stats.EdgeCounters
	}

	tTrad, cTrad := run("Traditional", grazelle.Traditional)
	tSA, cSA := run("Scheduler-aware", grazelle.SchedulerAware)

	fmt.Printf("\nSpeedup: %.2fx\n\n", float64(tTrad)/float64(tSA))
	fmt.Printf("%-28s %15s %15s\n", "counter", "traditional", "scheduler-aware")
	row := func(name string, a, b uint64) { fmt.Printf("%-28s %15d %15d\n", name, a, b) }
	row("shared-memory writes", cTrad.SharedWrites, cSA.SharedWrites)
	row("thread-local writes", cTrad.TLSWrites, cSA.TLSWrites)
	row("atomic operations", cTrad.AtomicOps, cSA.AtomicOps)
	row("CAS retries (conflicts)", cTrad.CASRetries, cSA.CASRetries)
	row("merge-buffer folds", cTrad.MergeOps, cSA.MergeOps)
	fmt.Println("\nThe scheduler-aware interface needs zero atomics: chunk-local state")
	fmt.Println("covers almost every write, outer-loop transitions store directly (one")
	fmt.Println("chunk owns each vertex's last vector), and per-chunk merge-buffer slots")
	fmt.Println("absorb the rest (paper §3).")
}
