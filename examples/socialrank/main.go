// Socialrank: influence analysis on a scale-free social-network analog —
// the kind of workload the paper's introduction motivates (social
// networking, business intelligence). Generates the twitter-2010 analog,
// runs PageRank to find the most influential accounts, then Connected
// Components to measure how much of the network is one community.
//
//	go run ./examples/socialrank [-scale 1.0]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	grazelle "repro"
)

func main() {
	scale := flag.Float64("scale", 0.5, "dataset scale factor")
	top := flag.Int("top", 10, "number of top accounts to print")
	flag.Parse()

	g, err := grazelle.GenerateDataset("twitter-2010", *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Social graph: %d accounts, %d follows (Vector-Sparse packing %.1f%%)\n",
		g.NumVertices(), g.NumEdges(), 100*g.PackingEfficiency())

	e := grazelle.NewEngine(g, grazelle.Options{Record: true})
	defer e.Close()

	pr := e.PageRank(16)
	fmt.Printf("PageRank: %d iterations in %v (rank sum %.9f)\n",
		pr.Stats.Iterations, pr.Stats.Total, pr.Sum)

	type ranked struct {
		v uint32
		r float64
	}
	rs := make([]ranked, len(pr.Ranks))
	for v, r := range pr.Ranks {
		rs[v] = ranked{uint32(v), r}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].r > rs[j].r })
	fmt.Printf("Top %d accounts by influence:\n", *top)
	for i := 0; i < *top && i < len(rs); i++ {
		fmt.Printf("  #%-2d account %-8d rank %.6f\n", i+1, rs[i].v, rs[i].r)
	}

	cc := e.ConnectedComponents()
	counts := map[uint32]int{}
	for _, c := range cc.Components {
		counts[c]++
	}
	largest := 0
	for _, n := range counts {
		if n > largest {
			largest = n
		}
	}
	fmt.Printf("Communities: %d components; largest covers %.1f%% of accounts (%d iterations, %d pull / %d push)\n",
		cc.NumComponents(), 100*float64(largest)/float64(g.NumVertices()),
		cc.Stats.Iterations, cc.Stats.PullIterations, cc.Stats.PushIterations)

	c := pr.Stats.EdgeCounters
	fmt.Printf("Engine counters: %d edges processed, %d TLS writes, %d shared writes, %d atomics\n",
		c.EdgesProcessed, c.TLSWrites, c.SharedWrites, c.AtomicOps)
}
