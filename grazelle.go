// Package grazelle is the public API of this reproduction of "Making
// Pull-Based Graph Processing Performant" (Grossman, Litz & Kozyrakis,
// PPoPP 2018). It wraps the Grazelle engine (internal/core) — a hybrid
// push/pull graph processing framework built on two ideas from the paper:
//
//   - Scheduler-aware parallel loops (§3): the pull engine's inner loop is
//     parallelized with StartChunk/LoopIteration/FinishChunk hooks and a
//     per-chunk merge buffer, eliminating synchronization and nearly all
//     shared write traffic.
//   - The Vector-Sparse format (§4): a padded, predicated, 64-bit-lane
//     edge encoding that makes the inner loop vectorizable with aligned,
//     unguarded vector loads (executed here by a software vector unit; see
//     DESIGN.md for the SIMD substitution).
//
// Basic use:
//
//	g, _ := grazelle.GenerateDataset("twitter-2010", 1.0)
//	e := grazelle.NewEngine(g, grazelle.Options{})
//	defer e.Close()
//	pr := e.PageRank(16)
//	fmt.Println("rank sum:", pr.Sum) // ≈ 1.0
package grazelle

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/apps"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numa"
	"repro/internal/obs"
	"repro/internal/perfmodel"
)

// Edge is a directed edge with an optional weight.
type Edge = graph.Edge

// Graph is an immutable graph preprocessed into every engine
// representation (CSR, CSC, and the Vector-Sparse VSS/VSD pair).
type Graph struct {
	src  *graph.Graph
	core *core.Graph
}

// NewGraph builds a Graph from an edge list over numVertices vertices.
func NewGraph(numVertices int, edges []Edge, weighted bool) (*Graph, error) {
	g := &graph.Graph{NumVertices: numVertices, Edges: edges, Weighted: weighted}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return wrap(g), nil
}

func wrap(g *graph.Graph) *Graph {
	return &Graph{src: g, core: core.BuildGraph(g)}
}

// LoadGraph reads a graph from a file in the repository's binary format
// (see cmd/gengraph).
func LoadGraph(path string) (*Graph, error) {
	g, err := graph.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// LoadEdgeList reads a SNAP-style text edge list ("src dst [weight]" lines,
// '#'/'%' comments) — the distribution format of the paper's Table 1
// datasets.
func LoadEdgeList(path string) (*Graph, error) {
	g, err := graph.ReadEdgeListFile(path)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// LoadGraphPair reads the "-push"/"-pull" file pair written by SavePair or
// cmd/gengraph, mirroring the artifact's input convention.
func LoadGraphPair(base string) (*Graph, error) {
	push, _, err := graph.LoadPair(base)
	if err != nil {
		return nil, err
	}
	return wrap(push), nil
}

// GenerateDataset produces the synthetic analog of one of the paper's six
// Table 1 datasets by name or single-letter abbreviation (e.g.
// "twitter-2010" or "T") at the given scale (1.0 = default benchmark size).
func GenerateDataset(name string, scale float64) (*Graph, error) {
	d, err := gen.ParseDataset(name)
	if err != nil {
		return nil, err
	}
	return wrap(gen.Generate(d, scale)), nil
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.src.NumVertices }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int { return g.src.NumEdges() }

// Weighted reports whether edges carry weights.
func (g *Graph) Weighted() bool { return g.src.Weighted }

// PackingEfficiency returns the Vector-Sparse packing efficiency of the
// pull-direction (VSD) edge array — the Fig 9 metric.
func (g *Graph) PackingEfficiency() float64 { return g.core.VSD.PackingEfficiency() }

// Save writes the graph's "-push"/"-pull" binary file pair.
func (g *Graph) Save(base string) error { return g.src.SavePair(base) }

// PullVariant selects the Edge-Pull inner-loop parallelization strategy.
type PullVariant = core.PullVariant

// Pull-engine variants (§3 and §6.1 of the paper).
const (
	SchedulerAware       = core.PullSchedulerAware
	Traditional          = core.PullTraditional
	TraditionalNonatomic = core.PullTraditionalNonatomic
	OuterOnly            = core.PullOuterOnly
)

// EngineMode selects which Edge-phase engine runs.
type EngineMode = core.EngineMode

// Engine modes.
const (
	Hybrid   = core.EngineHybrid
	PullOnly = core.EnginePullOnly
	PushOnly = core.EnginePushOnly
)

// Counters re-exports the execution counters collected when
// Options.Record is set.
type Counters = perfmodel.Counters

// Options configures an Engine. The zero value selects the paper's
// defaults: scheduler-aware vectorized pull, hybrid engine selection,
// GOMAXPROCS workers, one NUMA node, 32·workers dynamic chunks.
type Options struct {
	// Workers is the worker-thread count (0 = GOMAXPROCS).
	Workers int
	// Sockets simulates a multi-socket NUMA machine by partitioning the
	// edge arrays and classifying accesses (0 or 1 = single node).
	Sockets int
	// ChunkVectors is the dynamic-scheduling granularity in edge vectors
	// per chunk (0 = 32 chunks per worker, the paper's default).
	ChunkVectors int
	// Variant selects the pull-engine parallelization (default
	// SchedulerAware).
	Variant PullVariant
	// Scalar disables the software-vectorized kernels (the Fig 10
	// baseline).
	Scalar bool
	// Mode forces an engine (default Hybrid).
	Mode EngineMode
	// Record enables execution counters (small per-edge overhead).
	Record bool
	// SparseFrontier enables the sparse-frontier extension (future work in
	// the paper, §5): small frontiers are processed as vertex lists,
	// skipping whole-array scans. Off by default for paper fidelity.
	SparseFrontier bool
	// MaxRunTime, when positive, bounds each run's wall-clock time: a run
	// past the limit stops within one scheduler chunk and returns its
	// partial result with an error wrapping context.DeadlineExceeded.
	MaxRunTime time.Duration
	// Trace enables the per-run phase tracer: Stats gains a Phases
	// breakdown (wall time, chunks, steals, frontier density per engine
	// phase). Overhead is phase-boundary-only — a fraction of a percent —
	// so serving layers keep it on.
	Trace bool
	// Partitions splits each run into this many partitions executed through
	// the partitioned coordinator (scatter-gather phases plus a frontier
	// exchange at the barrier) — the scale-out seam. Output is bit-identical
	// to a monolithic run for any count. 0 or 1 runs monolithically;
	// configurations the partitioned path does not cover (Scalar,
	// non-default Variant, Record, multi-socket) quietly fall back, and
	// Stats.Partitions reports the effective count.
	Partitions int
	// PullDegreeShare tunes the hybrid engine's degree-sum term (Besta et
	// al.): a low-density frontier still pulls when its out-edges cover at
	// least this share of all edges. 0 selects the default (0.15); a
	// negative value disables the term.
	PullDegreeShare float64
	// Exchange, when non-nil, replaces the partitioned coordinator's
	// shared-memory frontier exchange with a custom transport — the seam the
	// cluster tier's network exchange plugs into. Only meaningful with
	// Partitions > 1.
	Exchange FrontierExchange
}

// FrontierExchange moves per-partition frontier deltas across the
// iteration barrier (see internal/coord). The engine's default is the
// in-process shared-memory implementation; the cluster tier substitutes a
// network transport through Options.Exchange.
type FrontierExchange = coord.Exchange

// FrontierDelta is one partition's frontier-delta segment handed to a
// FrontierExchange.
type FrontierDelta = coord.FrontierDelta

// ExchangeResult is a FrontierExchange's merged outcome.
type ExchangeResult = coord.ExchangeResult

// Engine executes graph applications on one Graph. Engines hold a worker
// pool; Close them when done.
//
// An Engine is safe for concurrent use: any number of goroutines may run
// applications on one Engine at once. Each run executes in its own
// per-run context while the shared pool multiplexes their chunks over one
// worker set, so results are identical to solo runs. The Ctx variants
// (PageRankCtx, BFSCtx, ...) additionally honor cancellation and deadlines
// at scheduler-chunk granularity.
type Engine struct {
	g *Graph
	r *core.Runner
}

// coreOptions maps the facade options onto the engine's, excluding the
// worker-pool concerns (Workers, Sockets/Topology) that NewEngine and the
// Store resolve differently.
func (opt Options) coreOptions() core.Options {
	return core.Options{
		ChunkVectors:    opt.ChunkVectors,
		Variant:         opt.Variant,
		Scalar:          opt.Scalar,
		Mode:            opt.Mode,
		Record:          opt.Record,
		SparseFrontier:  opt.SparseFrontier,
		MaxRunTime:      opt.MaxRunTime,
		Trace:           opt.Trace,
		Partitions:      opt.Partitions,
		PullDegreeShare: opt.PullDegreeShare,
		Exchange:        opt.Exchange,
	}
}

// NewEngine creates an engine for g.
func NewEngine(g *Graph, opt Options) *Engine {
	workers := opt.Workers
	copt := opt.coreOptions()
	copt.Workers = workers
	if opt.Sockets > 1 {
		w := workers
		if w < 1 {
			w = runtime.GOMAXPROCS(0)
		}
		per := w / opt.Sockets
		if per < 1 {
			per = 1
		}
		copt.Workers = per * opt.Sockets
		copt.Topology = numa.Topology{Nodes: opt.Sockets, WorkersPerNode: per}
	}
	return &Engine{g: g, r: core.NewRunner(g.core, copt)}
}

// Close releases the engine's worker pool. Close is idempotent; the
// engine must not be used after the first Close.
func (e *Engine) Close() { e.r.Close() }

// Graph returns the engine's graph.
func (e *Engine) Graph() *Graph { return e.g }

// PhaseStat is one engine phase's aggregate within a run's trace: wall
// time, chunk and steal counts, iteration count, and the frontier-density
// bounds observed when the phase ran.
type PhaseStat = obs.PhaseStat

// PartitionStat is one partition's aggregate within a partitioned run's
// trace: phase wall times, exchanged frontier bytes, and span count.
type PartitionStat = obs.PartitionStat

// Stats summarizes a run.
type Stats struct {
	// Iterations counts Edge+Vertex rounds; Pull/Push split them by engine.
	Iterations, PullIterations, PushIterations int
	// Mode is the engine mode the run executed under ("Hybrid", "Pull",
	// "Push").
	Mode string
	// Partitions is the effective partition count the coordinator ran with
	// (1 = monolithic, including fallbacks from a higher request).
	Partitions int
	// EdgeTime, VertexTime, and Total are wall-clock durations.
	EdgeTime, VertexTime, Total time.Duration
	// EdgeCounters and VertexCounters hold the perfmodel counters (zero
	// unless Options.Record was set).
	EdgeCounters, VertexCounters Counters
	// Phases is the per-phase breakdown (empty unless Options.Trace was
	// set): edge-pull, edge-push, vertex, and merge, in that order, with
	// phases that never ran omitted.
	Phases []PhaseStat
	// Directions is the per-iteration direction string (empty unless
	// Options.Trace was set): '<' pull, '>' push, 's' sparse, '+' elided
	// tail on very long runs.
	Directions string
	// PartitionStats is the per-partition breakdown (empty unless
	// Options.Trace was set and the run was partitioned).
	PartitionStats []PartitionStat
	// ExchangeBytes is the total frontier-delta volume the run moved
	// through the coordinator's exchange (0 for monolithic runs).
	ExchangeBytes int64
	// TraceDropped reports that tracing failed mid-run and was abandoned
	// (the run itself succeeded); Phases may be incomplete.
	TraceDropped bool
}

func statsOf(res core.Result) Stats {
	return Stats{
		Iterations:     res.Iterations,
		PullIterations: res.PullIterations,
		PushIterations: res.PushIterations,
		Mode:           res.Mode.String(),
		Partitions:     res.Partitions,
		EdgeTime:       res.EdgeTime,
		VertexTime:     res.VertexTime,
		Total:          res.Total,
		EdgeCounters:   res.EdgeCounters,
		VertexCounters: res.VertexCounters,
		Phases:         res.Trace.Phases,
		Directions:     res.Trace.Directions,
		PartitionStats: res.Trace.Partitions,
		ExchangeBytes:  res.ExchangeBytes,
		TraceDropped:   res.Trace.Dropped,
	}
}

// Params is the universal application parameter record (see apps.Params):
// each app reads the subset of fields its registry schema declares and
// ignores the rest.
type Params = apps.Params

// AppStat is one summary statistic of a generic run.
type AppStat = apps.Stat

// AppInfo describes one registered application: name, parameter schema,
// defaults, and whether it requires edge weights.
type AppInfo = apps.Info

// Apps enumerates the registered applications, sorted by name. This is the
// source of truth the CLI's `-a list` and serve's GET /v1/apps render.
func Apps() []AppInfo {
	entries := apps.All()
	out := make([]AppInfo, len(entries))
	for i, e := range entries {
		out[i] = e.Info()
	}
	return out
}

// AppResult holds the output of a generic Run: raw property lanes plus the
// registry entry's serializers for turning them into summary statistics,
// per-vertex value vectors, and text.
type AppResult struct {
	// App is the registry name the run dispatched to.
	App string
	// Params are the normalized parameters the run used.
	Params Params
	// Props are the raw 64-bit property lanes (app-specific encoding; use
	// Summary/Values/VertexText to decode).
	Props []uint64
	// Stats summarizes the run.
	Stats Stats

	entry apps.Entry
}

// Summary returns the run's headline statistics (e.g. PageRank's rank sum).
func (r *AppResult) Summary() []AppStat { return r.entry.Summary(r.Params, r.Props) }

// Values returns the JSON-facing per-vertex value vector ([]float64 ranks,
// []uint32 labels, []int64 parents, ... — app-dependent).
func (r *AppResult) Values() any { return r.entry.Values(r.Props) }

// VertexText renders vertex v's value as text (the CLI's -o format).
func (r *AppResult) VertexText(v int) string { return r.entry.VertexText(r.Props, v) }

// Run executes a registered application by name. Params fields the app's
// schema ignores are zeroed; fields it reads are used as given (so an
// explicit Iters of 0 runs zero iterations — callers wanting schema
// defaults applied should normalize via the registry first, as the CLI and
// serve do). Like the Ctx variants, cancellation stops the run within one
// scheduler chunk; on mid-run errors the partial result is returned
// alongside the error. A nil result means the run never started (unknown
// app, invalid params, or an unweighted graph for a weighted app).
func (e *Engine) Run(ctx context.Context, app string, p Params) (*AppResult, error) {
	ent, err := apps.Lookup(app)
	if err != nil {
		return nil, err
	}
	p = ent.ZeroUnused(p)
	if ent.NeedsWeights && !e.g.Weighted() {
		return nil, fmt.Errorf("grazelle: %s requires a weighted graph", ent.Title)
	}
	prog, err := ent.New(e.g.src, p)
	if err != nil {
		return nil, err
	}
	res, err := core.RunCtx(ctx, e.r, prog, ent.MaxIters(p))
	return &AppResult{
		App:    app,
		Params: p,
		Props:  res.Props,
		Stats:  statsOf(res),
		entry:  ent,
	}, err
}

// PageRankResult holds damped PageRank output.
type PageRankResult struct {
	// Ranks is the per-vertex rank vector.
	Ranks []float64
	// Sum is the total rank mass — the artifact's correctness check,
	// always very close to 1.0.
	Sum float64
	// Stats summarizes the run.
	Stats Stats
}

func rankResult(res *AppResult, err error) (PageRankResult, error) {
	if res == nil {
		return PageRankResult{}, err
	}
	return PageRankResult{
		Ranks: apps.Ranks(res.Props),
		Sum:   apps.RankSum(res.Props),
		Stats: res.Stats,
	}, err
}

// PageRank runs iters iterations of damped (0.85) PageRank with
// dangling-mass redistribution.
func (e *Engine) PageRank(iters int) PageRankResult {
	res, _ := e.PageRankCtx(context.Background(), iters)
	return res
}

// PageRankCtx is PageRank with cancellation: when ctx is cancelled or its
// deadline passes, the run stops within one scheduler chunk boundary and
// returns the ranks of the last completed iteration alongside a non-nil
// error wrapping ctx.Err().
func (e *Engine) PageRankCtx(ctx context.Context, iters int) (PageRankResult, error) {
	return rankResult(e.Run(ctx, "pr", Params{Iters: iters}))
}

// WeightedRank runs the Collaborative-Filtering-like weighted rank kernel
// (§6: PageRank's access pattern with edge weights folded in). The graph
// must be weighted.
func (e *Engine) WeightedRank(iters int) (PageRankResult, error) {
	return e.WeightedRankCtx(context.Background(), iters)
}

// WeightedRankCtx is WeightedRank with cancellation at scheduler-chunk
// granularity (see PageRankCtx).
func (e *Engine) WeightedRankCtx(ctx context.Context, iters int) (PageRankResult, error) {
	return rankResult(e.Run(ctx, "wpr", Params{Iters: iters}))
}

// ComponentsResult holds Connected Components output.
type ComponentsResult struct {
	// Components maps each vertex to its component label (min-label
	// propagation along directed edges; true components on symmetric
	// graphs).
	Components []uint32
	// Stats summarizes the run.
	Stats Stats
}

// ConnectedComponents runs min-label propagation to a fixpoint.
func (e *Engine) ConnectedComponents() ComponentsResult {
	res, _ := e.ConnectedComponentsCtx(context.Background())
	return res
}

// ConnectedComponentsCtx is ConnectedComponents with cancellation at
// scheduler-chunk granularity (see PageRankCtx).
func (e *Engine) ConnectedComponentsCtx(ctx context.Context) (ComponentsResult, error) {
	res, err := e.Run(ctx, "cc", Params{})
	if res == nil {
		return ComponentsResult{}, err
	}
	return ComponentsResult{Components: apps.Components(res.Props), Stats: res.Stats}, err
}

// NoParent marks an unreached vertex in BFSResult.Parents.
const NoParent = int64(-1)

// BFSResult holds Breadth-First Search output.
type BFSResult struct {
	// Parents maps each vertex to its BFS parent (the root is its own
	// parent; unreached vertices hold NoParent).
	Parents []int64
	// Stats summarizes the run.
	Stats Stats
}

// BFS runs breadth-first search from root.
func (e *Engine) BFS(root uint32) BFSResult {
	res, _ := e.BFSCtx(context.Background(), root)
	return res
}

// BFSCtx is BFS with cancellation at scheduler-chunk granularity (see
// PageRankCtx).
func (e *Engine) BFSCtx(ctx context.Context, root uint32) (BFSResult, error) {
	res, err := e.Run(ctx, "bfs", Params{Root: root})
	if res == nil {
		return BFSResult{}, err
	}
	return BFSResult{Parents: apps.Parents(res.Props), Stats: res.Stats}, err
}

// SSSPResult holds Single-Source Shortest Paths output.
type SSSPResult struct {
	// Dist maps each vertex to its shortest-path distance from the root
	// (+Inf when unreachable).
	Dist []float64
	// Stats summarizes the run.
	Stats Stats
}

// SSSP runs synchronous Bellman-Ford from root over non-negative edge
// weights. The graph must be weighted.
func (e *Engine) SSSP(root uint32) (SSSPResult, error) {
	return e.SSSPCtx(context.Background(), root)
}

// SSSPCtx is SSSP with cancellation at scheduler-chunk granularity (see
// PageRankCtx).
func (e *Engine) SSSPCtx(ctx context.Context, root uint32) (SSSPResult, error) {
	res, err := e.Run(ctx, "sssp", Params{Root: root})
	if res == nil {
		return SSSPResult{}, err
	}
	return SSSPResult{Dist: apps.Distances(res.Props), Stats: res.Stats}, err
}

// Reachable reports how many vertices a BFS result visited.
func (r BFSResult) Reachable() int {
	n := 0
	for _, p := range r.Parents {
		if p != NoParent {
			n++
		}
	}
	return n
}

// NumComponents counts distinct labels in a components result. Labels are
// vertex ids (each component is labeled by its minimum member), so a dense
// bitmap over the vertex space beats a hash set by orders of magnitude on
// large graphs.
func (r ComponentsResult) NumComponents() int {
	seen := make([]bool, len(r.Components))
	n := 0
	for _, c := range r.Components {
		if !seen[c] {
			seen[c] = true
			n++
		}
	}
	return n
}

// Finite reports how many vertices an SSSP result reached.
func (r SSSPResult) Finite() int {
	n := 0
	for _, d := range r.Dist {
		if !math.IsInf(d, 1) {
			n++
		}
	}
	return n
}
