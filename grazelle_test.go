package grazelle

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/apps"
	"repro/internal/gen"
)

func twitterAnalog(t *testing.T) *Graph {
	t.Helper()
	g, err := GenerateDataset("T", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGenerateDatasetNames(t *testing.T) {
	for _, name := range []string{"cit-Patents", "dimacs-usa", "livejournal", "twitter-2010", "friendster", "uk-2007", "C", "D", "L", "T", "F", "U"} {
		g, err := GenerateDataset(name, 0.05)
		if err != nil {
			t.Fatalf("GenerateDataset(%q): %v", name, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("GenerateDataset(%q) empty", name)
		}
	}
	if _, err := GenerateDataset("bogus", 1); err == nil {
		t.Error("bogus dataset accepted")
	}
}

func TestNewGraphValidates(t *testing.T) {
	if _, err := NewGraph(2, []Edge{{Src: 0, Dst: 5}}, false); err == nil {
		t.Error("out-of-range edge accepted")
	}
	g, err := NewGraph(3, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 || g.Weighted() {
		t.Error("graph shape wrong")
	}
	if eff := g.PackingEfficiency(); eff != 0.25 {
		// Two destinations of in-degree 1: each one vector with 1/4 lanes.
		t.Errorf("PackingEfficiency = %v, want 0.25", eff)
	}
}

func TestPageRankEndToEnd(t *testing.T) {
	g := twitterAnalog(t)
	e := NewEngine(g, Options{Workers: 2})
	defer e.Close()
	res := e.PageRank(10)
	if math.Abs(res.Sum-1) > 1e-9 {
		t.Errorf("rank sum = %v", res.Sum)
	}
	if res.Stats.Iterations != 10 || res.Stats.PullIterations != 10 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if len(res.Ranks) != g.NumVertices() {
		t.Error("rank vector length wrong")
	}
}

func TestConnectedComponentsEndToEnd(t *testing.T) {
	g, err := NewGraph(6, []Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 2},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g, Options{Workers: 2})
	defer e.Close()
	res := e.ConnectedComponents()
	if res.NumComponents() != 4 { // {0,1} {2,3} {4} {5}
		t.Errorf("NumComponents = %d, want 4", res.NumComponents())
	}
	if res.Components[1] != 0 || res.Components[3] != 2 {
		t.Errorf("components = %v", res.Components)
	}
}

func TestBFSEndToEnd(t *testing.T) {
	g := twitterAnalog(t)
	e := NewEngine(g, Options{Workers: 2})
	defer e.Close()
	res := e.BFS(0)
	if res.Parents[0] != 0 {
		t.Error("root is not its own parent")
	}
	if res.Reachable() < 1 {
		t.Error("BFS reached nothing")
	}
	for v, p := range res.Parents {
		if p != NoParent && (p < 0 || int(p) >= g.NumVertices()) {
			t.Fatalf("parent[%d] = %d out of range", v, p)
		}
	}
}

func TestSSSPRequiresWeights(t *testing.T) {
	g := twitterAnalog(t)
	e := NewEngine(g, Options{Workers: 2})
	defer e.Close()
	if _, err := e.SSSP(0); err == nil {
		t.Error("SSSP accepted an unweighted graph")
	}
	if _, err := e.WeightedRank(5); err == nil {
		t.Error("WeightedRank accepted an unweighted graph")
	}
}

func TestSSSPEndToEnd(t *testing.T) {
	wg := gen.AddUniformWeights(gen.Grid(6, 6, false, 1), 2)
	g, err := NewGraph(wg.NumVertices, wg.Edges, true)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g, Options{Workers: 2})
	defer e.Close()
	res, err := e.SSSP(0)
	if err != nil {
		t.Fatal(err)
	}
	want := apps.ReferenceSSSP(wg, 0)
	for v := range want {
		if math.Abs(res.Dist[v]-want[v]) > 1e-9 {
			t.Fatalf("dist[%d] = %v, want %v", v, res.Dist[v], want[v])
		}
	}
	if res.Finite() != g.NumVertices() {
		t.Error("mesh should be fully reachable")
	}
}

func TestEngineOptionVariants(t *testing.T) {
	g := twitterAnalog(t)
	var ranks [][]float64
	for _, opt := range []Options{
		{Workers: 2},
		{Workers: 2, Variant: Traditional},
		{Workers: 2, Scalar: true},
		{Workers: 2, Mode: PushOnly},
		{Workers: 2, Sockets: 2},
		{Workers: 1, Variant: TraditionalNonatomic},
		{Workers: 2, ChunkVectors: 64, Record: true},
	} {
		e := NewEngine(g, opt)
		res := e.PageRank(5)
		e.Close()
		if math.Abs(res.Sum-1) > 1e-9 {
			t.Errorf("opts %+v: rank sum %v", opt, res.Sum)
		}
		ranks = append(ranks, res.Ranks)
	}
	// All configurations must agree.
	for i := 1; i < len(ranks); i++ {
		for v := range ranks[0] {
			if math.Abs(ranks[i][v]-ranks[0][v]) > 1e-10 {
				t.Fatalf("config %d diverges at vertex %d", i, v)
			}
		}
	}
}

func TestRecordedCounters(t *testing.T) {
	g := twitterAnalog(t)
	e := NewEngine(g, Options{Workers: 2, Record: true})
	defer e.Close()
	res := e.PageRank(2)
	if res.Stats.EdgeCounters.EdgesProcessed == 0 {
		t.Error("Record did not collect counters")
	}
	e2 := NewEngine(g, Options{Workers: 2})
	defer e2.Close()
	res2 := e2.PageRank(2)
	if res2.Stats.EdgeCounters.EdgesProcessed != 0 {
		t.Error("counters collected without Record")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := twitterAnalog(t)
	base := filepath.Join(t.TempDir(), "tw")
	if err := g.Save(base); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGraphPair(base)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumEdges() != g.NumEdges() || loaded.NumVertices() != g.NumVertices() {
		t.Fatal("pair round trip changed the graph")
	}
	// Results must match across the round trip.
	e1 := NewEngine(g, Options{Workers: 2})
	e2 := NewEngine(loaded, Options{Workers: 2})
	defer e1.Close()
	defer e2.Close()
	a, b := e1.PageRank(5), e2.PageRank(5)
	for v := range a.Ranks {
		if math.Abs(a.Ranks[v]-b.Ranks[v]) > 1e-10 {
			t.Fatalf("rank[%d] differs after reload", v)
		}
	}
	single, err := LoadGraph(base + "-pull")
	if err != nil {
		t.Fatal(err)
	}
	if single.NumEdges() != g.NumEdges() {
		t.Error("single-file load wrong")
	}
}
