package grazelle

import (
	"context"
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/store"
)

// Incremental recompute (DESIGN.md §15): when a query targets a graph
// version whose predecessor already has a computed result and the mutation
// delta connecting the two is small, RunIncremental warm-starts the run
// from the predecessor's lanes instead of cold-starting. The app's registry
// entry decides whether its semantics permit that (apps.Entry.
// IncrementalSeed); every failure mode — app without the capability, delta
// violating the app's preconditions, seed failing to install — degrades to
// a plain full recompute, so the path can only save time, never change a
// result.

// Delta is the materialized mutation delta between two published versions
// of a stored graph (see Store.DeltaBetween).
type Delta = store.Delta

// DeltaBetween returns the edge operations connecting version from to
// version to of the named graph, plus the older version's dimensions. It
// reports false whenever the delta cannot be recovered exactly — versions
// from different lineages, history evicted, or the delta log already
// compacted past the range — and callers then run cold.
func (s *Store) DeltaBetween(name string, from, to uint64) (Delta, bool) {
	return s.s.DeltaBetween(name, from, to)
}

// SeedSpec carries the warm-start inputs for RunIncremental: a predecessor
// run's final lanes and the delta connecting that predecessor to the
// engine's graph.
type SeedSpec struct {
	// PredProps are the predecessor result's property lanes, computed with
	// the same app and canonical params on the predecessor version.
	PredProps []uint64
	// Ops is the mutation delta from the predecessor version to the
	// engine's graph, in log order.
	Ops []EdgeOp
	// FromEdges is the predecessor's edge count; FromCountsKnown whether it
	// is exact (Delta.FromEdges / Delta.FromCountsKnown).
	FromEdges       int
	FromCountsKnown bool
}

// RunIncremental is Run seeded from a predecessor result. Seeded reports
// whether the warm start actually held; false means the run fell back to a
// full recompute (unsupported app, delta outside the app's seeding
// preconditions, or a seed-installation failure) — the result is valid
// either way and bit-compatible with a cold Run.
func (e *Engine) RunIncremental(ctx context.Context, app string, p Params, spec SeedSpec) (res *AppResult, seeded bool, err error) {
	ent, err := apps.Lookup(app)
	if err != nil {
		return nil, false, err
	}
	p = ent.ZeroUnused(p)
	if ent.NeedsWeights && !e.g.Weighted() {
		return nil, false, fmt.Errorf("grazelle: %s requires a weighted graph", ent.Title)
	}
	if ent.IncrementalSeed == nil {
		res, err = e.Run(ctx, app, p)
		return res, false, err
	}
	plan, perr := ent.IncrementalSeed(apps.SeedInput{
		Graph:           e.g.src,
		Params:          p,
		Pred:            spec.PredProps,
		Ops:             spec.Ops,
		FromEdges:       spec.FromEdges,
		FromCountsKnown: spec.FromCountsKnown,
	})
	if perr != nil || plan == nil {
		res, err = e.Run(ctx, app, p)
		return res, false, err
	}
	prog, err := ent.New(e.g.src, p)
	if err != nil {
		return nil, false, err
	}
	maxIters := ent.MaxIters(p)
	if plan.Direct {
		maxIters = 0
	}
	cres, err := core.RunSeededCtx(ctx, e.r, prog, maxIters, &core.Seed{
		Props:    plan.Props,
		Frontier: plan.Frontier,
	})
	if err == nil && plan.Direct && !cres.Seeded {
		// The seed failed to install and the plan carried no iteration
		// budget, so the engine returned cold-init lanes. Non-direct plans
		// self-heal — a failed seed there just runs the full budget cold —
		// but a direct plan must be re-run in full.
		res, err = e.Run(ctx, app, p)
		return res, false, err
	}
	return &AppResult{
		App:    app,
		Params: p,
		Props:  cres.Props,
		Stats:  statsOf(cres),
		entry:  ent,
	}, cres.Seeded, err
}
