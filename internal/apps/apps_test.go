package apps

import (
	"math"
	"testing"

	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
)

// testGraphs yields a spread of shapes: skewed scale-free, mesh, random,
// plus a hand-built multi-component graph.
func testGraphs() map[string]*graph.Graph {
	multi := graph.NewBuilder(10).
		AddEdge(0, 1).AddEdge(1, 0).AddEdge(1, 2).AddEdge(2, 1).
		AddEdge(4, 5).AddEdge(5, 4).
		AddEdge(7, 8).AddEdge(8, 7).AddEdge(8, 9).AddEdge(9, 8).
		MustBuild()
	return map[string]*graph.Graph{
		"rmat":  gen.RMAT(8, 1200, gen.DefaultRMAT, 1),
		"mesh":  gen.Grid(12, 13, false, 2),
		"er":    gen.ErdosRenyi(150, 900, 3),
		"multi": multi,
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	for name, g := range testGraphs() {
		p := NewPageRank(g)
		res := RunSequential(p, g, 20)
		want := ReferencePageRank(g, 0.85, 20)
		got := Ranks(res.Props)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-12 {
				t.Fatalf("%s: rank[%d] = %v, want %v", name, v, got[v], want[v])
			}
		}
		if sum := RankSum(res.Props); math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: rank sum = %v, want 1 (the artifact's check)", name, sum)
		}
		if res.Iterations != 20 {
			t.Errorf("%s: ran %d iterations, want 20", name, res.Iterations)
		}
	}
}

func TestPageRankDanglingMassConserved(t *testing.T) {
	// A pure sink: vertex 2 has no out-edges.
	g := graph.NewBuilder(3).AddEdge(0, 1).AddEdge(1, 2).AddEdge(0, 2).MustBuild()
	res := RunSequential(NewPageRank(g), g, 50)
	if sum := RankSum(res.Props); math.Abs(sum-1) > 1e-9 {
		t.Errorf("rank sum with dangling vertex = %v, want 1", sum)
	}
}

func TestConnCompMatchesReference(t *testing.T) {
	for name, g := range testGraphs() {
		for _, p := range []*ConnComp{NewConnComp(), NewConnCompWriteIntense()} {
			res := RunSequential(p, g, 1<<20)
			got := Components(res.Props)
			want := ReferenceComponents(g)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s/%s: component[%d] = %d, want %d", name, p.Name(), v, got[v], want[v])
				}
			}
		}
	}
}

func TestConnCompSemanticsOnSymmetricGraph(t *testing.T) {
	// The hand-built multi graph is symmetric with components
	// {0,1,2} {3} {4,5} {6} {7,8,9}.
	g := testGraphs()["multi"]
	got := Components(RunSequential(NewConnComp(), g, 1<<20).Props)
	want := []uint32{0, 0, 0, 3, 4, 4, 6, 7, 7, 7}
	for v := range want {
		if got[v] != want[v] {
			t.Errorf("component[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestBFSMatchesReference(t *testing.T) {
	for name, g := range testGraphs() {
		res := RunSequential(NewBFS(0), g, 1<<20)
		want := ReferenceBFS(g, 0)
		for v := range want {
			if res.Props[v] != want[v] {
				t.Fatalf("%s: parent[%d] = %d, want %d", name, v, res.Props[v], want[v])
			}
		}
	}
}

func TestBFSUnreachableStaysUnvisited(t *testing.T) {
	g := testGraphs()["multi"]
	res := RunSequential(NewBFS(0), g, 1<<20)
	for _, v := range []uint32{3, 4, 5, 6, 7, 8, 9} {
		if res.Props[v] != NoParent {
			t.Errorf("unreachable vertex %d has parent %d", v, res.Props[v])
		}
	}
	if res.Props[0] != 0 {
		t.Errorf("root parent = %d, want itself", res.Props[0])
	}
}

func TestBFSParentsFormTree(t *testing.T) {
	g := gen.RMAT(9, 4000, gen.DefaultRMAT, 9)
	res := RunSequential(NewBFS(0), g, 1<<20)
	// Every visited non-root vertex's parent must be visited and must have
	// an edge to the vertex.
	hasEdge := map[[2]uint32]bool{}
	for _, e := range g.Edges {
		hasEdge[[2]uint32{e.Src, e.Dst}] = true
	}
	for v, p := range res.Props {
		if p == NoParent || v == 0 {
			continue
		}
		if res.Props[p] == NoParent {
			t.Fatalf("vertex %d's parent %d is unvisited", v, p)
		}
		if !hasEdge[[2]uint32{uint32(p), uint32(v)}] {
			t.Fatalf("no edge %d -> %d backing the parent link", p, v)
		}
	}
}

func TestSSSPMatchesReference(t *testing.T) {
	g := gen.AddUniformWeights(gen.RMAT(8, 1500, gen.DefaultRMAT, 4), 5)
	res := RunSequential(NewSSSP(0), g, 1<<20)
	got := Distances(res.Props)
	want := ReferenceSSSP(g, 0)
	for v := range want {
		if math.IsInf(want[v], 1) != math.IsInf(got[v], 1) {
			t.Fatalf("reachability of %d differs", v)
		}
		if !math.IsInf(want[v], 1) && math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("dist[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestSSSPOnWeightedMesh(t *testing.T) {
	g := gen.Grid(8, 8, true, 7)
	res := RunSequential(NewSSSP(0), g, 1<<20)
	got := Distances(res.Props)
	want := ReferenceSSSP(g, 0)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("dist[%d] = %v, want %v", v, got[v], want[v])
		}
	}
	if got[0] != 0 {
		t.Error("root distance nonzero")
	}
}

func TestWeightedRankConservesMass(t *testing.T) {
	g := gen.AddUniformWeights(gen.RMAT(7, 600, gen.DefaultRMAT, 8), 9)
	p := NewWeightedRank(g)
	res := RunSequential(p, g, 15)
	if sum := RankSum(res.Props); math.Abs(sum-1) > 1e-9 {
		t.Errorf("weighted rank sum = %v, want 1", sum)
	}
}

func TestWeightedRankReducesToPageRankOnUnitWeights(t *testing.T) {
	base := gen.RMAT(7, 500, gen.DefaultRMAT, 2)
	unit := base.Clone()
	unit.Weighted = true
	for i := range unit.Edges {
		unit.Edges[i].Weight = 1
	}
	pr := RunSequential(NewPageRank(base), base, 10)
	wr := RunSequential(NewWeightedRank(unit), unit, 10)
	for v := range pr.Props {
		if math.Abs(Ranks(pr.Props)[v]-Ranks(wr.Props)[v]) > 1e-12 {
			t.Fatalf("unit-weight WeightedRank diverges from PageRank at %d", v)
		}
	}
}

func TestFrontierDrivenTermination(t *testing.T) {
	// On a path graph BFS takes exactly length rounds then stops on an
	// empty frontier, well before the iteration cap.
	b := graph.NewBuilder(6)
	for v := uint32(0); v < 5; v++ {
		b.AddEdge(v, v+1)
	}
	g := b.MustBuild()
	res := RunSequential(NewBFS(0), g, 1<<20)
	if res.Iterations > 6 {
		t.Errorf("BFS ran %d iterations on a 6-path", res.Iterations)
	}
	for v := uint32(1); v < 6; v++ {
		if res.Props[v] != uint64(v-1) {
			t.Errorf("parent[%d] = %d, want %d", v, res.Props[v], v-1)
		}
	}
}

func TestProgramFlagContracts(t *testing.T) {
	g := gen.ErdosRenyi(20, 50, 1)
	cases := []struct {
		p                             Program
		frontier, converged, weighted bool
	}{
		{NewPageRank(g), false, false, false},
		{NewConnComp(), true, false, false},
		{NewConnCompWriteIntense(), true, false, false},
		{NewBFS(0), true, true, false},
		{NewSSSP(0), true, false, true},
		{NewWeightedRank(gen.AddUniformWeights(g, 2)), false, false, true},
	}
	for _, c := range cases {
		if c.p.UsesFrontier() != c.frontier {
			t.Errorf("%s: UsesFrontier = %v", c.p.Name(), c.p.UsesFrontier())
		}
		if c.p.TracksConverged() != c.converged {
			t.Errorf("%s: TracksConverged = %v", c.p.Name(), c.p.TracksConverged())
		}
		if c.p.Weighted() != c.weighted {
			t.Errorf("%s: Weighted = %v", c.p.Name(), c.p.Weighted())
		}
	}
	// CC variants differ only in write intent.
	if !NewConnComp().SkipEqualWrites() || NewConnCompWriteIntense().SkipEqualWrites() {
		t.Error("CC SkipEqualWrites variants wrong")
	}
}

func TestCombineIdentityLaws(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 1)
	programs := []Program{NewPageRank(g), NewConnComp(), NewBFS(0), NewSSSP(0)}
	// All values must be valid float64 bit patterns (SSSP and PageRank lanes
	// are always real floats; NaN patterns never occur in a run).
	values := []uint64{0, 1, 42, f64(0.5), f64(123.25), f64(1e300)}
	for _, p := range programs {
		id := p.Identity()
		for _, v := range values {
			if got := p.Combine(id, v); got != v {
				t.Errorf("%s: Combine(identity, %#x) = %#x", p.Name(), v, got)
			}
			if got := p.Combine(v, id); got != v {
				t.Errorf("%s: Combine(%#x, identity) = %#x", p.Name(), v, got)
			}
		}
		// Commutativity on a sample.
		for _, a := range values {
			for _, b := range values {
				if p.Combine(a, b) != p.Combine(b, a) {
					t.Errorf("%s: Combine not commutative on %#x, %#x", p.Name(), a, b)
				}
			}
		}
	}
}

func TestInitFrontierShapes(t *testing.T) {
	g := gen.ErdosRenyi(30, 60, 1)
	f := frontier.NewDense(g.NumVertices)
	NewPageRank(g).InitFrontier(f)
	if f.Count() != g.NumVertices {
		t.Error("PageRank frontier should start full")
	}
	f.Clear()
	NewBFS(5).InitFrontier(f)
	if f.Count() != 1 || !f.Contains(5) {
		t.Error("BFS frontier should start as {root}")
	}
	c := frontier.NewDense(g.NumVertices)
	NewBFS(5).InitConverged(c)
	if !c.Contains(5) || c.Count() != 1 {
		t.Error("BFS converged set should start as {root}")
	}
}
