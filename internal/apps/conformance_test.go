package apps_test

import (
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Registry conformance suite: the bar every registered application must
// clear before it is servable. For each entry, on small analogs of the
// paper's T/U/D datasets:
//
//	(a) the engine's 1-worker output agrees with the entry's sequential
//	    reference implementation (exact for integer lanes, 1e-9 relative
//	    for float lanes — references accumulate in a different order);
//	(b) 2- and 4-worker runs are bit-identical to the 1-worker run, with
//	    ChunkVectors pinned because the default chunk layout derives from
//	    the worker count (see internal/core/determinism_test.go).
//
// The suite iterates apps.All(), so a future registration cannot land
// without passing the same bar — this test is the CI registry-conformance
// job. Run under -race in the race shard.

// conformanceGraphs returns the T/U/D analogs at test scale, plus a
// weighted copy for NeedsWeights apps.
func conformanceGraphs() map[string]*graph.Graph {
	out := map[string]*graph.Graph{}
	for _, d := range []gen.Dataset{gen.Twitter, gen.UK2007, gen.DimacsUSA} {
		out[string(d.Abbrev())] = gen.Generate(d, 0.05)
	}
	return out
}

func conformanceParams(ent apps.Entry) apps.Params {
	return ent.Normalize(apps.Params{Iters: 4, Root: 1, K: 3})
}

func runConformance(t *testing.T, cg *core.Graph, g *graph.Graph, ent apps.Entry, p apps.Params, workers int) []uint64 {
	t.Helper()
	return runConformanceParts(t, cg, g, ent, p, workers, 1)
}

func runConformanceParts(t *testing.T, cg *core.Graph, g *graph.Graph, ent apps.Entry, p apps.Params, workers, partitions int) []uint64 {
	t.Helper()
	r := core.NewRunner(cg, core.Options{Workers: workers, ChunkVectors: 16, Partitions: partitions})
	defer r.Close()
	prog, err := ent.New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	res := core.Run(r, prog, ent.MaxIters(p))
	if res.Partitions != partitions {
		t.Fatalf("effective partitions = %d, want %d", res.Partitions, partitions)
	}
	return res.Props
}

func TestRegistryConformance(t *testing.T) {
	graphs := conformanceGraphs()
	for _, ent := range apps.All() {
		t.Run(ent.Name, func(t *testing.T) {
			for name, base := range graphs {
				t.Run(name, func(t *testing.T) {
					g := base
					if ent.NeedsWeights {
						g = gen.AddUniformWeights(g, 42)
					}
					p := conformanceParams(ent)
					cg := core.BuildGraph(g)

					// (a) reference agreement at one worker.
					ref := runConformance(t, cg, g, ent, p, 1)
					want := ent.Reference(g, p)
					if len(want) != len(ref) {
						t.Fatalf("reference length %d, engine %d", len(want), len(ref))
					}
					for v := range want {
						if ent.FloatLanes {
							a, b := math.Float64frombits(ref[v]), math.Float64frombits(want[v])
							if a == b || (math.IsInf(a, 1) && math.IsInf(b, 1)) {
								continue
							}
							if math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(b)) {
								t.Fatalf("lane[%d] = %v, reference %v", v, a, b)
							}
						} else if ref[v] != want[v] {
							t.Fatalf("lane[%d] = %#x, reference %#x", v, ref[v], want[v])
						}
					}

					// (b) bit-identical across worker counts.
					for _, workers := range []int{2, 4} {
						got := runConformance(t, cg, g, ent, p, workers)
						for v := range ref {
							if got[v] != ref[v] {
								t.Fatalf("w=%d lane[%d] = %#x, w=1 has %#x (first divergence)",
									workers, v, got[v], ref[v])
							}
						}
					}
				})
			}
		})
	}
}

// TestRegistryConformancePartitioned extends the conformance bar to the
// partitioned coordinator: for every registered app, runs at partitions 2
// and 4 across worker counts 1/2/4 must be bit-identical to the monolithic
// run at the same worker count — the determinism contract of DESIGN.md §13,
// enforced registry-wide so a future app cannot land without clearing it.
func TestRegistryConformancePartitioned(t *testing.T) {
	base := gen.Generate(gen.Twitter, 0.05)
	for _, ent := range apps.All() {
		t.Run(ent.Name, func(t *testing.T) {
			g := base
			if ent.NeedsWeights {
				g = gen.AddUniformWeights(g, 42)
			}
			p := conformanceParams(ent)
			cg := core.BuildGraph(g)
			for _, workers := range []int{1, 2, 4} {
				ref := runConformanceParts(t, cg, g, ent, p, workers, 1)
				for _, parts := range []int{2, 4} {
					got := runConformanceParts(t, cg, g, ent, p, workers, parts)
					for v := range ref {
						if got[v] != ref[v] {
							t.Fatalf("w=%d p=%d lane[%d] = %#x, monolithic has %#x (first divergence)",
								workers, parts, v, got[v], ref[v])
						}
					}
				}
			}
		})
	}
}

// TestRegistrySummaryStatsSane spot-checks that each entry's serializers
// hold together on real output: Summary returns at least one stat with a
// nonempty key/label/text, Values returns a vector of NumVertices length,
// and VertexText renders without panicking.
func TestRegistrySummaryStatsSane(t *testing.T) {
	g := gen.Generate(gen.Twitter, 0.05)
	cg := core.BuildGraph(g)
	for _, ent := range apps.All() {
		t.Run(ent.Name, func(t *testing.T) {
			gg := g
			if ent.NeedsWeights {
				gg = gen.AddUniformWeights(g, 42)
			}
			p := conformanceParams(ent)
			ccg := cg
			if ent.NeedsWeights {
				ccg = core.BuildGraph(gg)
			}
			props := runConformance(t, ccg, gg, ent, p, 2)
			stats := ent.Summary(p, props)
			if len(stats) == 0 {
				t.Fatal("Summary returned no stats")
			}
			for _, st := range stats {
				if st.Key == "" || st.Label == "" || st.Text == "" {
					t.Errorf("incomplete stat %+v", st)
				}
			}
			if n := vectorLen(t, ent.Values(props)); n != gg.NumVertices {
				t.Errorf("Values length %d, want %d", n, gg.NumVertices)
			}
			for _, v := range []int{0, gg.NumVertices - 1} {
				if ent.VertexText(props, v) == "" {
					t.Errorf("empty VertexText for vertex %d", v)
				}
			}
		})
	}
}

func vectorLen(t *testing.T, v any) int {
	t.Helper()
	switch vec := v.(type) {
	case []float64:
		return len(vec)
	case []uint32:
		return len(vec)
	case []uint64:
		return len(vec)
	case []int64:
		return len(vec)
	default:
		t.Fatalf("unexpected Values type %T", v)
		return 0
	}
}

// TestRegistryWeightedAppsRejectUnweighted pins the NeedsWeights flag to
// actual program behavior: every app that does not declare NeedsWeights
// must construct and run on an unweighted graph.
func TestRegistryWeightedAppsRejectUnweighted(t *testing.T) {
	g := gen.Generate(gen.DimacsUSA, 0.05)
	cg := core.BuildGraph(g)
	for _, ent := range apps.All() {
		if ent.NeedsWeights {
			continue
		}
		t.Run(ent.Name, func(t *testing.T) {
			p := conformanceParams(ent)
			props := runConformance(t, cg, g, ent, p, 1)
			if len(props) != g.NumVertices {
				t.Fatalf("props length %d", len(props))
			}
		})
	}
}

// TestRegistryRootValidation ensures rooted apps reject out-of-range roots
// at construction instead of panicking mid-run.
func TestRegistryRootValidation(t *testing.T) {
	g := gen.Generate(gen.DimacsUSA, 0.05)
	for _, ent := range apps.All() {
		if ent.Uses&apps.ParamRoot == 0 {
			continue
		}
		t.Run(ent.Name, func(t *testing.T) {
			p := conformanceParams(ent)
			p.Root = uint32(g.NumVertices)
			if _, err := ent.New(g, p); err == nil {
				t.Error("out-of-range root accepted")
			}
		})
	}
}
