package apps

// FusedKind identifies a program's aggregation pattern so engines can run a
// fused, fully-inlined inner loop for it. This mirrors the original
// Grazelle, whose Edge-phase kernels are hand-specialized per application
// (2 KLOC of x86 assembly); Go's shape-based generics cannot monomorphize
// the per-edge Message/Combine calls, so the engines instead recognize the
// paper's aggregation operators and inline them. Semantics are identical to
// Combine(acc, Message(srcVal, src, w)) — a property the tests enforce —
// and FusedNone falls back to the generic calls.
type FusedKind int

const (
	// FusedNone: no specialization; engines call Message/Combine per edge.
	FusedNone FusedKind = iota
	// FusedRankSum: float64 acc += props[src] · Scale[src] (· w when the
	// program is weighted) — PageRank and WeightedRank.
	FusedRankSum
	// FusedMinProp: uint64 acc = min(acc, props[src]) — Connected
	// Components.
	FusedMinProp
	// FusedMinSrc: uint64 acc = min(acc, src) — BFS parent selection.
	FusedMinSrc
	// FusedMinPropPlusW: float64 acc = min(acc, props[src] + w) — SSSP.
	FusedMinPropPlusW
)

// Fused is the optional interface programs implement to advertise a fused
// kernel. FusedScale returns the per-source scale vector for FusedRankSum
// (nil otherwise).
type Fused interface {
	FusedKind() FusedKind
	FusedScale() []float64
}

// KindOf resolves a program's fused kind and scale vector, defaulting to
// FusedNone.
func KindOf(p Program) (FusedKind, []float64) {
	if f, ok := p.(Fused); ok {
		return f.FusedKind(), f.FusedScale()
	}
	return FusedNone, nil
}

// FusedKind implements Fused.
func (p *PageRank) FusedKind() FusedKind { return FusedRankSum }

// FusedScale implements Fused.
func (p *PageRank) FusedScale() []float64 { return p.invOutDeg }

// FusedKind implements Fused.
func (p *WeightedRank) FusedKind() FusedKind { return FusedRankSum }

// FusedScale implements Fused.
func (p *WeightedRank) FusedScale() []float64 { return p.invWOutDeg }

// FusedKind implements Fused.
func (c *ConnComp) FusedKind() FusedKind { return FusedMinProp }

// FusedScale implements Fused.
func (c *ConnComp) FusedScale() []float64 { return nil }

// FusedKind implements Fused.
func (b *BFS) FusedKind() FusedKind { return FusedMinSrc }

// FusedScale implements Fused.
func (b *BFS) FusedScale() []float64 { return nil }

// FusedKind implements Fused.
func (s *SSSP) FusedKind() FusedKind { return FusedMinPropPlusW }

// FusedScale implements Fused.
func (s *SSSP) FusedScale() []float64 { return nil }

// FusedKind implements Fused: personalization changes only the Vertex phase,
// so the Edge phase is PageRank's rank-sum kernel unchanged.
func (p *PersonalizedPageRank) FusedKind() FusedKind { return FusedRankSum }

// FusedScale implements Fused.
func (p *PersonalizedPageRank) FusedScale() []float64 { return p.invOutDeg }
