package apps_test

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Incremental-seed conformance: the registry-wide bar for entries that set
// IncrementalSeed (DESIGN.md §15). For every such entry, on the T/U/D
// conformance analogs, a planner-accepted mutation batch warm-started from
// the predecessor's lanes must reproduce the sequential reference on the
// mutated graph. The suite iterates apps.All() like the rest of the
// conformance file, so a future seed-capable registration cannot land
// without clearing the same bar. FuzzIncrementalSeed extends the property
// to arbitrary byte-derived deltas: the planner may refuse anything, but
// whatever it accepts must be right.

// seedBatch shapes a planner-accepted delta for ent on g, mirroring the
// per-app rules: topology-preserving re-assertions for the direct plans
// (pr/ppr/bfs), fresh inserts for cc's warm fixpoint, distance-improving
// upserts for sssp.
func seedBatch(ent apps.Entry, g *graph.Graph, pred []uint64, n int) []graph.EdgeOp {
	switch ent.Name {
	case "pr", "ppr":
		count := make(map[[2]uint32]int, len(g.Edges))
		for _, e := range g.Edges {
			count[[2]uint32{e.Src, e.Dst}]++
		}
		ops := make([]graph.EdgeOp, 0, n)
		for _, e := range g.Edges {
			if count[[2]uint32{e.Src, e.Dst}] == 1 {
				ops = append(ops, graph.EdgeOp{Src: e.Src, Dst: e.Dst, Weight: e.Weight})
				if len(ops) == n {
					break
				}
			}
		}
		return ops
	case "bfs":
		if n > len(g.Edges) {
			n = len(g.Edges)
		}
		ops := make([]graph.EdgeOp, 0, n)
		for _, e := range g.Edges[:n] {
			ops = append(ops, graph.EdgeOp{Src: e.Src, Dst: e.Dst, Weight: e.Weight})
		}
		return ops
	case "cc":
		have := make(map[[2]uint32]bool, len(g.Edges))
		for _, e := range g.Edges {
			have[[2]uint32{e.Src, e.Dst}] = true
		}
		nv := uint32(g.NumVertices)
		ops := make([]graph.EdgeOp, 0, n)
		for i := uint32(0); len(ops) < n && i < 16*nv; i++ {
			src := (i * 2654435761) % nv
			dst := (src + 1 + i%97) % nv
			if src == dst || have[[2]uint32{src, dst}] {
				continue
			}
			have[[2]uint32{src, dst}] = true
			ops = append(ops, graph.EdgeOp{Src: src, Dst: dst, Weight: 1})
		}
		return ops
	case "sssp":
		seen := make(map[[2]uint32]bool, n)
		nv := uint32(g.NumVertices)
		ops := make([]graph.EdgeOp, 0, n)
		for i := uint32(0); len(ops) < n && i < 64*nv; i++ {
			src := (i * 2654435761) % nv
			dst := (src + 1 + i%97) % nv
			if src == dst || seen[[2]uint32{src, dst}] {
				continue
			}
			du := math.Float64frombits(pred[src])
			dv := math.Float64frombits(pred[dst])
			if math.IsInf(du, 1) {
				continue
			}
			w := float32(1)
			if !math.IsInf(dv, 1) {
				if dv <= du {
					continue
				}
				w = float32(0.5 * (dv - du))
				if w <= 0 {
					continue
				}
			}
			seen[[2]uint32{src, dst}] = true
			ops = append(ops, graph.EdgeOp{Src: src, Dst: dst, Weight: w})
		}
		return ops
	}
	return nil
}

// runSeeded executes ent on g warm-started from plan and returns the lanes,
// failing the test if the seed does not install.
func runSeeded(t *testing.T, g *graph.Graph, ent apps.Entry, p apps.Params, plan *apps.SeedPlan) []uint64 {
	t.Helper()
	r := core.NewRunner(core.BuildGraph(g), core.Options{Workers: 2, ChunkVectors: 16})
	defer r.Close()
	prog, err := ent.New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	max := ent.MaxIters(p)
	if plan.Direct {
		max = 0
	}
	res, err := core.RunSeededCtx(context.Background(), r, prog, max, &core.Seed{
		Props:    plan.Props,
		Frontier: plan.Frontier,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Seeded {
		t.Fatal("accepted plan failed to install")
	}
	return res.Props
}

// assertSeedReference compares got against ent's sequential reference
// lanes with the conformance tolerance (exact for integer lanes, 1e-9 for
// float lanes).
func assertSeedReference(t *testing.T, ent apps.Entry, want, got []uint64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("lane count = %d, reference %d", len(got), len(want))
	}
	for v := range want {
		if ent.FloatLanes {
			a, b := math.Float64frombits(got[v]), math.Float64frombits(want[v])
			if a == b || (math.IsInf(a, 1) && math.IsInf(b, 1)) {
				continue
			}
			if math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(b)) {
				t.Fatalf("lane[%d] = %v, reference %v", v, a, b)
			}
		} else if got[v] != want[v] {
			t.Fatalf("lane[%d] = %#x, reference %#x", v, got[v], want[v])
		}
	}
}

func TestRegistryConformanceIncremental(t *testing.T) {
	graphs := conformanceGraphs()
	for _, ent := range apps.All() {
		if ent.IncrementalSeed == nil {
			continue
		}
		ent := ent
		t.Run(ent.Name, func(t *testing.T) {
			for name, base := range graphs {
				t.Run(name, func(t *testing.T) {
					g0 := base
					if ent.NeedsWeights {
						g0 = gen.AddUniformWeights(g0, 42)
					}
					p := conformanceParams(ent)
					pred := runConformance(t, core.BuildGraph(g0), g0, ent, p, 1)
					ops := seedBatch(ent, g0, pred, 16)
					if len(ops) == 0 {
						t.Fatal("no accepted batch constructible")
					}
					g1 := graph.ApplyEdgeOps(g0, ops)
					plan, err := ent.IncrementalSeed(apps.SeedInput{
						Graph:           g1,
						Params:          p,
						Pred:            pred,
						Ops:             ops,
						FromEdges:       g0.NumEdges(),
						FromCountsKnown: true,
					})
					if err != nil {
						t.Fatalf("planner refused a by-construction safe delta: %v", err)
					}
					got := runSeeded(t, g1, ent, p, plan)
					assertSeedReference(t, ent, ent.Reference(g1, p), got)
				})
			}
		})
	}
}

// Fuzz state: one small base graph and the predecessor lanes per
// seed-capable app, computed once — fuzz iterations only pay for the delta.
var (
	fuzzSeedOnce  sync.Once
	fuzzSeedBase  *graph.Graph
	fuzzSeedBaseW *graph.Graph
	fuzzSeedPred  map[string][]uint64
	fuzzSeedApps  []apps.Entry
)

func fuzzSeedSetup() {
	fuzzSeedBase = gen.Generate(gen.Twitter, 0.02)
	fuzzSeedBaseW = gen.AddUniformWeights(fuzzSeedBase, 42)
	fuzzSeedPred = map[string][]uint64{}
	for _, ent := range apps.All() {
		if ent.IncrementalSeed == nil {
			continue
		}
		fuzzSeedApps = append(fuzzSeedApps, ent)
		g := fuzzSeedBase
		if ent.NeedsWeights {
			g = fuzzSeedBaseW
		}
		p := conformanceParams(ent)
		r := core.NewRunner(core.BuildGraph(g), core.Options{Workers: 2, ChunkVectors: 16})
		prog, err := ent.New(g, p)
		if err != nil {
			panic(err)
		}
		fuzzSeedPred[ent.Name] = core.Run(r, prog, ent.MaxIters(p)).Props
		r.Close()
	}
}

// FuzzIncrementalSeed derives an arbitrary mutation batch from fuzz bytes
// and checks the one property every planner must uphold: refusing is
// always allowed, but an accepted plan's seeded run must reproduce the
// sequential reference on the mutated graph.
func FuzzIncrementalSeed(f *testing.F) {
	f.Add(byte(0), []byte{0, 0, 1, 0, 2, 8, 0, 0, 2, 0, 3, 4})
	f.Add(byte(1), []byte{1, 0, 1, 0, 2, 0})
	f.Add(byte(2), []byte{0, 0, 9, 0, 1, 2, 1, 0, 9, 0, 1, 0, 0, 0, 9, 0, 1, 6})
	f.Add(byte(3), []byte{0, 255, 255, 255, 254, 1})
	f.Add(byte(4), []byte{0, 0, 5, 0, 6, 31, 0, 0, 6, 0, 5, 31})
	f.Fuzz(func(t *testing.T, sel byte, data []byte) {
		fuzzSeedOnce.Do(fuzzSeedSetup)
		ent := fuzzSeedApps[int(sel)%len(fuzzSeedApps)]
		g0 := fuzzSeedBase
		if ent.NeedsWeights {
			g0 = fuzzSeedBaseW
		}
		p := conformanceParams(ent)
		nv := uint32(g0.NumVertices)
		var ops []graph.EdgeOp
		for i := 0; i+6 <= len(data) && len(ops) < 64; i += 6 {
			b := data[i : i+6]
			op := graph.EdgeOp{
				Delete: b[0]&1 == 1,
				Src:    (uint32(b[1])<<8 | uint32(b[2])) % (nv + 2),
				Dst:    (uint32(b[3])<<8 | uint32(b[4])) % (nv + 2),
				Weight: float32(b[5]%32) / 4,
			}
			if op.Src == op.Dst {
				continue
			}
			ops = append(ops, op)
		}
		if len(ops) == 0 {
			return
		}
		g1 := graph.ApplyEdgeOps(g0, ops)
		plan, err := ent.IncrementalSeed(apps.SeedInput{
			Graph:           g1,
			Params:          p,
			Pred:            fuzzSeedPred[ent.Name],
			Ops:             ops,
			FromEdges:       g0.NumEdges(),
			FromCountsKnown: true,
		})
		if err != nil {
			return // fallback to full recompute: always safe
		}
		got := runSeeded(t, g1, ent, p, plan)
		assertSeedReference(t, ent, ent.Reference(g1, p), got)
	})
}
