package apps

import (
	"repro/internal/frontier"
	"repro/internal/graph"
)

// KCoreDead is the property lane of a vertex peeled out of the k-core.
const KCoreDead = ^uint64(0)

// KCore computes the k-core of the graph by synchronous peeling, expressed
// as delta messages: each property lane holds the vertex's remaining
// in-degree, a vertex whose lane drops below K dies (lane KCoreDead), and a
// newly-dead vertex spends exactly one round in the frontier broadcasting a
// decrement of 1 along each out-edge. Aggregation is unsigned addition —
// order-free, so any schedule produces bit-identical output. Dead vertices
// are marked converged and ignore further messages; the run terminates when
// a round kills nobody (empty frontier).
//
// Degrees are directed in-degrees, mirroring ConnectedComponents' contract:
// on a symmetric graph this is the true undirected k-core. Multi-edges count
// with multiplicity; a self-loop counts toward the in-degree but is never
// decremented (its endpoint is already dead when the message would land),
// which only affects vertices that are dead either way.
type KCore struct {
	// K is the core threshold: surviving vertices keep in-degree >= K.
	K uint64

	indeg []uint64
}

// NewKCore creates a k-core program for graph g with threshold k (negative
// values clamp to 0, which keeps every vertex).
func NewKCore(g *graph.Graph, k int) *KCore {
	indeg := make([]uint64, g.NumVertices)
	for _, e := range g.Edges {
		indeg[e.Dst]++
	}
	if k < 0 {
		k = 0
	}
	return &KCore{K: uint64(k), indeg: indeg}
}

// Name implements Program.
func (p *KCore) Name() string { return "KCore" }

// Identity implements Program: zero decrements.
func (p *KCore) Identity() uint64 { return 0 }

// Combine implements Program: addition of decrement counts.
func (p *KCore) Combine(a, b uint64) uint64 { return a + b }

// Message implements Program: a frontier (just-died) source removes one
// in-edge from each out-neighbor.
func (p *KCore) Message(_ uint64, _ uint32, _ float32) uint64 { return 1 }

// Apply implements Program: subtract the round's decrements; dying vertices
// report changed so they enter the next frontier (and the converged set).
func (p *KCore) Apply(old, agg uint64, _ uint32) (uint64, bool) {
	if old == KCoreDead {
		return old, false
	}
	rem := old - agg
	if rem < p.K {
		return KCoreDead, true
	}
	return rem, false
}

// InitProps implements Program: remaining in-degree, with vertices already
// below the threshold dead from the start.
func (p *KCore) InitProps(props []uint64) {
	for v, d := range p.indeg {
		if d < p.K {
			props[v] = KCoreDead
		} else {
			props[v] = d
		}
	}
}

// PreIteration implements Program.
func (p *KCore) PreIteration([]uint64) {}

// InitFrontier implements Program: the initially-dead vertices broadcast
// their decrements in round one.
func (p *KCore) InitFrontier(f *frontier.Dense) {
	for v, d := range p.indeg {
		if d < p.K {
			f.Add(uint32(v))
		}
	}
}

// InitConverged implements Program: dead vertices ignore in-bound messages.
func (p *KCore) InitConverged(c *frontier.Dense) {
	for v, d := range p.indeg {
		if d < p.K {
			c.Add(uint32(v))
		}
	}
}

// UsesFrontier implements Program: only just-died sources message.
func (p *KCore) UsesFrontier() bool { return true }

// TracksConverged implements Program: death is permanent.
func (p *KCore) TracksConverged() bool { return true }

// SkipEqualWrites implements Program: decrement sums are not idempotent, so
// engines must not elide equal-looking writes.
func (p *KCore) SkipEqualWrites() bool { return false }

// Weighted implements Program.
func (p *KCore) Weighted() bool { return false }

// InCore counts the vertices surviving in the k-core.
func InCore(props []uint64) int {
	n := 0
	for _, v := range props {
		if v != KCoreDead {
			n++
		}
	}
	return n
}

// CoreMembership converts property lanes to a 0/1 membership vector.
func CoreMembership(props []uint64) []uint32 {
	out := make([]uint32, len(props))
	for i, v := range props {
		if v != KCoreDead {
			out[i] = 1
		}
	}
	return out
}
