package apps

import (
	"repro/internal/frontier"
)

// LabelProp is synchronous label propagation for community detection, made
// deterministic by min-hash adoption. Classic label propagation adopts "the
// most frequent / a random neighbor label", both of which are tie-breaky and
// schedule-dependent; here every message packs (hash(label, salt) << 32 |
// label) into the lane and aggregation is uint64 minimization — each vertex
// adopts the label of a pseudo-randomly distinguished in-neighbor, with the
// label's low bits breaking hash ties. Min is order-free, so the result is
// bit-identical at any worker count, and the per-iteration salt (advanced in
// PreIteration, the paper's "global variables" hook) re-randomizes the
// choice each round so propagation does not collapse to min-label CC.
//
// Property lanes hold the plain label (a vertex id) between iterations; the
// packed key exists only inside the Edge phase. The program is frontier-blind
// and runs a fixed iteration count (the iters parameter).
type LabelProp struct {
	round uint64
	salt  uint64
}

// NewLabelProp creates a label propagation program.
func NewLabelProp() *LabelProp { return &LabelProp{} }

// mix64 is the splitmix64 finalizer, the per-round salt generator.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// lpKey packs a label into a comparable lane: salted hash in the high 32
// bits, the label itself in the low 32 so minimization tie-breaks stably.
func lpKey(label uint32, salt uint64) uint64 {
	x := (uint64(label) + 1) ^ salt
	x *= 0x9E3779B97F4A7C15
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return (x << 32) | uint64(label)
}

// Name implements Program.
func (p *LabelProp) Name() string { return "LabelPropagation" }

// Identity implements Program: the maximal key.
func (p *LabelProp) Identity() uint64 { return ^uint64(0) }

// Combine implements Program: minimization over packed keys.
func (p *LabelProp) Combine(a, b uint64) uint64 {
	if b < a {
		return b
	}
	return a
}

// Message implements Program: the source's label under this round's salt.
func (p *LabelProp) Message(srcVal uint64, _ uint32, _ float32) uint64 {
	return lpKey(uint32(srcVal), p.salt)
}

// Apply implements Program: adopt the winning label; vertices with no
// in-neighbors keep their own.
func (p *LabelProp) Apply(old, agg uint64, _ uint32) (uint64, bool) {
	if agg == ^uint64(0) {
		return old, false
	}
	nl := uint64(uint32(agg))
	return nl, nl != old
}

// InitProps implements Program: every vertex starts with its own label.
func (p *LabelProp) InitProps(props []uint64) {
	for i := range props {
		props[i] = uint64(i)
	}
	p.round = 0
}

// PreIteration implements Program: advance the round salt. The engine calls
// this once per iteration before the Edge phase, so round r (1-based) hashes
// with mix64(r) — the sequential reference reproduces the same schedule.
func (p *LabelProp) PreIteration([]uint64) {
	p.round++
	p.salt = mix64(p.round)
}

// InitFrontier implements Program: frontier-blind.
func (p *LabelProp) InitFrontier(f *frontier.Dense) { f.Fill() }

// InitConverged implements Program.
func (p *LabelProp) InitConverged(*frontier.Dense) {}

// UsesFrontier implements Program: salts change every round, so skipping
// unchanged sources would change the semantics.
func (p *LabelProp) UsesFrontier() bool { return false }

// TracksConverged implements Program.
func (p *LabelProp) TracksConverged() bool { return false }

// SkipEqualWrites implements Program.
func (p *LabelProp) SkipEqualWrites() bool { return false }

// Weighted implements Program.
func (p *LabelProp) Weighted() bool { return false }

// Labels converts property lanes to per-vertex community labels.
func Labels(props []uint64) []uint32 {
	out := make([]uint32, len(props))
	for i, v := range props {
		out[i] = uint32(v)
	}
	return out
}

// DistinctLabels counts distinct labels. Labels are vertex ids, so a dense
// bitmap over the vertex space suffices.
func DistinctLabels(props []uint64) int {
	seen := make([]bool, len(props))
	n := 0
	for _, v := range props {
		if !seen[uint32(v)] {
			seen[uint32(v)] = true
			n++
		}
	}
	return n
}
