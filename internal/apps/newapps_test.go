package apps

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Unit tests for the registry-era applications (tc, kcore, lp, ppr) and the
// references added with them: each program under the sequential driver must
// reproduce its textbook reference, plus targeted semantic checks on
// hand-built graphs where the right answer is known by inspection.

func TestTriangleCountMatchesReference(t *testing.T) {
	for name, g := range testGraphs() {
		res := RunSequential(NewTriangleCount(g), g, 1)
		want := ReferenceTriangles(g)
		for v := range want {
			if res.Props[v] != want[v] {
				t.Fatalf("%s: triangles[%d] = %d, want %d", name, v, res.Props[v], want[v])
			}
		}
	}
}

func TestTriangleCountKnownGraphs(t *testing.T) {
	// K4 has 4 triangles; each vertex is in 3 of them.
	k4 := graph.NewBuilder(4).
		AddEdge(0, 1).AddEdge(0, 2).AddEdge(0, 3).
		AddEdge(1, 2).AddEdge(1, 3).AddEdge(2, 3).
		MustBuild()
	res := RunSequential(NewTriangleCount(k4), k4, 1)
	if got := Triangles(res.Props); got != 4 {
		t.Errorf("K4 triangles = %d, want 4", got)
	}
	for v, c := range res.Props {
		if c != 3 {
			t.Errorf("K4 vertex %d local count = %d, want 3", v, c)
		}
	}

	// Direction, duplicate edges, and self-loops must not change counts.
	messy := graph.NewBuilder(3).
		AddEdge(0, 1).AddEdge(1, 0). // both directions
		AddEdge(1, 2).AddEdge(2, 0).
		AddEdge(1, 2). // duplicate
		AddEdge(2, 2). // self-loop
		MustBuild()
	if got := Triangles(RunSequential(NewTriangleCount(messy), messy, 1).Props); got != 1 {
		t.Errorf("messy-closure triangles = %d, want 1", got)
	}
}

func TestIntersectCountGallops(t *testing.T) {
	big := make([]uint32, 4096)
	for i := range big {
		big[i] = uint32(2 * i)
	}
	small := []uint32{0, 3, 4096, 8190}
	// 0, 4096, 8190 are even and in range; 3 is odd.
	if got := intersectCount(small, big); got != 3 {
		t.Errorf("galloping intersect = %d, want 3", got)
	}
	if got := intersectCount(big, small); got != 3 {
		t.Errorf("swapped intersect = %d, want 3", got)
	}
	if got := intersectCount(nil, big); got != 0 {
		t.Errorf("empty intersect = %d, want 0", got)
	}
}

func TestKCoreMatchesReference(t *testing.T) {
	for name, g := range testGraphs() {
		for _, k := range []int{0, 1, 2, 3, 5} {
			res := RunSequential(NewKCore(g, k), g, 1<<20)
			want := ReferenceKCore(g, k)
			for v := range want {
				if res.Props[v] != want[v] {
					t.Fatalf("%s k=%d: core[%d] = %#x, want %#x", name, k, v, res.Props[v], want[v])
				}
			}
		}
	}
}

func TestKCoreKnownGraph(t *testing.T) {
	// A symmetric triangle (each vertex in-degree 2) plus a pendant vertex 3
	// attached to 0: the 2-core is exactly the triangle.
	g := graph.NewBuilder(4).
		AddEdge(0, 1).AddEdge(1, 0).
		AddEdge(1, 2).AddEdge(2, 1).
		AddEdge(2, 0).AddEdge(0, 2).
		AddEdge(0, 3).AddEdge(3, 0).
		MustBuild()
	props := RunSequential(NewKCore(g, 2), g, 1<<20).Props
	if got := InCore(props); got != 3 {
		t.Fatalf("2-core size = %d, want 3", got)
	}
	if props[3] != KCoreDead {
		t.Error("pendant vertex survived the 2-core")
	}
	m := CoreMembership(props)
	for v, want := range []uint32{1, 1, 1, 0} {
		if m[v] != want {
			t.Errorf("membership[%d] = %d, want %d", v, m[v], want)
		}
	}
	// k=0 keeps everyone; a huge k kills everyone.
	if got := InCore(RunSequential(NewKCore(g, 0), g, 1<<20).Props); got != 4 {
		t.Errorf("0-core size = %d, want 4", got)
	}
	if got := InCore(RunSequential(NewKCore(g, 100), g, 1<<20).Props); got != 0 {
		t.Errorf("100-core size = %d, want 0", got)
	}
}

func TestKCoreCascade(t *testing.T) {
	// A path 0-1-2-3-4 (symmetric): for k=2, the endpoints die first and the
	// peeling cascades inward until nothing remains — the multi-round case.
	b := graph.NewBuilder(5)
	for i := uint32(0); i < 4; i++ {
		b.AddEdge(i, i+1).AddEdge(i+1, i)
	}
	g := b.MustBuild()
	res := RunSequential(NewKCore(g, 2), g, 1<<20)
	if got := InCore(res.Props); got != 0 {
		t.Errorf("path 2-core size = %d, want 0 (cascade)", got)
	}
	if res.Iterations < 2 {
		t.Errorf("cascade finished in %d iterations, expected multiple rounds", res.Iterations)
	}
}

func TestLabelPropMatchesReference(t *testing.T) {
	for name, g := range testGraphs() {
		for _, iters := range []int{1, 4, 10} {
			res := RunSequential(NewLabelProp(), g, iters)
			want := ReferenceLabelProp(g, iters)
			for v := range want {
				if res.Props[v] != want[v] {
					t.Fatalf("%s iters=%d: label[%d] = %d, want %d", name, iters, v, res.Props[v], want[v])
				}
			}
		}
	}
}

func TestLabelPropRespectsComponents(t *testing.T) {
	// Labels can only travel along edges, so distinct components never share
	// labels, and labels are always vertex ids from the same component.
	g := testGraphs()["multi"]
	comp := ReferenceComponents(g)
	props := RunSequential(NewLabelProp(), g, 8).Props
	for v, l := range props {
		if comp[uint32(l)] != comp[v] {
			t.Errorf("vertex %d adopted label %d from another component", v, l)
		}
	}
}

func TestLabelPropSaltChangesPerRound(t *testing.T) {
	p := NewLabelProp()
	props := make([]uint64, 4)
	p.InitProps(props)
	p.PreIteration(props)
	s1 := p.salt
	p.PreIteration(props)
	if p.salt == s1 {
		t.Error("salt did not advance between rounds")
	}
	if s1 != mix64(1) {
		t.Errorf("first-round salt = %#x, want mix64(1) = %#x", s1, mix64(1))
	}
}

func TestPPRMatchesReference(t *testing.T) {
	for name, g := range testGraphs() {
		res := RunSequential(NewPersonalizedPageRank(g, 1), g, 20)
		want := ReferencePPR(g, 0.85, 1, 20)
		got := Ranks(res.Props)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-12 {
				t.Fatalf("%s: ppr[%d] = %v, want %v", name, v, got[v], want[v])
			}
		}
		if sum := RankSum(res.Props); math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: ppr sum = %v, want 1 (teleport + dangling return to root)", name, sum)
		}
	}
}

func TestPPRMassConcentratesAtRoot(t *testing.T) {
	// On a star with all edges pointing away from the center, the center
	// keeps the teleport mass and leaves hold only what one hop delivers.
	b := graph.NewBuilder(5)
	for i := uint32(1); i < 5; i++ {
		b.AddEdge(0, i)
	}
	g := b.MustBuild()
	ranks := Ranks(RunSequential(NewPersonalizedPageRank(g, 0), g, 30).Props)
	for i := 1; i < 5; i++ {
		if ranks[0] <= ranks[i] {
			t.Errorf("root rank %v not above leaf rank %v", ranks[0], ranks[i])
		}
	}
}

func TestWeightedRankMatchesReference(t *testing.T) {
	for name, g := range testGraphs() {
		wg := gen.AddUniformWeights(g, 7)
		res := RunSequential(NewWeightedRank(wg), wg, 12)
		want := ReferenceWeightedRank(wg, 0.85, 12)
		got := Ranks(res.Props)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-9 {
				t.Fatalf("%s: wpr[%d] = %v, want %v", name, v, got[v], want[v])
			}
		}
	}
}
