package apps

import (
	"repro/internal/frontier"
	"repro/internal/graph"
)

// PersonalizedPageRank is PageRank personalized to a root vertex: all
// teleport mass — the (1-d) restart and the dangling-vertex mass — returns
// to the root instead of spreading uniformly, so ranks measure proximity to
// the root and the rank sum stays exactly 1.0. The access pattern is
// identical to PageRank (FusedRankSum: acc += rank[src]·invOutDeg[src]), so
// the program rides the same fused vectorized kernel and the same
// chunk-ordered float merge that makes PageRank bit-deterministic at any
// worker count.
type PersonalizedPageRank struct {
	// Damping is the damping factor d (default 0.85).
	Damping float64
	// Root receives all teleport and dangling mass.
	Root uint32

	invOutDeg []float64
	dangling  float64
}

// NewPersonalizedPageRank creates a personalized PageRank program rooted at
// root with damping 0.85.
func NewPersonalizedPageRank(g *graph.Graph, root uint32) *PersonalizedPageRank {
	p := &PersonalizedPageRank{Damping: 0.85, Root: root}
	deg := g.OutDegrees()
	p.invOutDeg = make([]float64, len(deg))
	for v, d := range deg {
		if d > 0 {
			p.invOutDeg[v] = 1 / float64(d)
		}
	}
	return p
}

// Name implements Program.
func (p *PersonalizedPageRank) Name() string { return "PersonalizedPageRank" }

// Identity implements Program.
func (p *PersonalizedPageRank) Identity() uint64 { return f64(0) }

// Combine implements Program: float64 addition.
func (p *PersonalizedPageRank) Combine(a, b uint64) uint64 { return f64(asF64(a) + asF64(b)) }

// Message implements Program: rank(src) / outdeg(src).
func (p *PersonalizedPageRank) Message(srcVal uint64, src uint32, _ float32) uint64 {
	return f64(asF64(srcVal) * p.invOutDeg[src])
}

// Apply implements Program: rank = d·sum, plus the restart and dangling
// mass at the root.
func (p *PersonalizedPageRank) Apply(_, agg uint64, v uint32) (uint64, bool) {
	rank := p.Damping * asF64(agg)
	if v == p.Root {
		rank += (1 - p.Damping) + p.Damping*p.dangling
	}
	return f64(rank), true
}

// InitProps implements Program: all mass starts at the root.
func (p *PersonalizedPageRank) InitProps(props []uint64) {
	zero := f64(0)
	for i := range props {
		props[i] = zero
	}
	props[p.Root] = f64(1)
	p.dangling = 0
	p.PreIteration(props)
}

// PreIteration implements Program: sum the rank mass of dangling vertices.
func (p *PersonalizedPageRank) PreIteration(props []uint64) {
	sum := 0.0
	for v, inv := range p.invOutDeg {
		if inv == 0 {
			sum += asF64(props[v])
		}
	}
	p.dangling = sum
}

// InitFrontier implements Program.
func (p *PersonalizedPageRank) InitFrontier(f *frontier.Dense) { f.Fill() }

// InitConverged implements Program.
func (p *PersonalizedPageRank) InitConverged(*frontier.Dense) {}

// UsesFrontier implements Program.
func (p *PersonalizedPageRank) UsesFrontier() bool { return false }

// TracksConverged implements Program.
func (p *PersonalizedPageRank) TracksConverged() bool { return false }

// SkipEqualWrites implements Program.
func (p *PersonalizedPageRank) SkipEqualWrites() bool { return false }

// Weighted implements Program.
func (p *PersonalizedPageRank) Weighted() bool { return false }
