// Package apps defines the vertex programs of the paper's evaluation
// (PageRank, Connected Components in standard and write-intense forms,
// Breadth-First Search) plus the extensions §6 sketches (Single-Source
// Shortest Paths, which "behaves the same way as Connected Components" with
// weights, and a Collaborative-Filtering-like weighted PageRank kernel).
//
// Programs follow the Gather-Apply-Scatter-style contract Grazelle exposes:
// a commutative, associative Combine over 64-bit property lanes, a Message
// produced per edge, and an Apply folding the aggregate into the vertex
// property. Engines are generic over the Program type so the per-edge calls
// devirtualize.
package apps

import (
	"math"

	"repro/internal/frontier"
	"repro/internal/graph"
)

// Program is the application contract every engine executes. Property
// values are opaque 64-bit lanes (float64 bits for PageRank/SSSP, ids for
// CC/BFS), matching the 64-bit vector elements the paper's kernels operate
// on.
type Program interface {
	// Name identifies the program in reports.
	Name() string
	// Identity is the aggregation identity: Combine(Identity, x) == x.
	Identity() uint64
	// Combine merges two aggregate lanes; it must be commutative and
	// associative (§2's requirement on compute()).
	Combine(a, b uint64) uint64
	// Message produces the lane a source vertex sends along one edge.
	Message(srcVal uint64, src uint32, w float32) uint64
	// Apply folds the iteration's aggregate into the previous property and
	// reports whether the vertex changed (frontier admission).
	Apply(old, agg uint64, v uint32) (uint64, bool)
	// InitProps resets program state and writes initial property lanes.
	InitProps(props []uint64)
	// PreIteration runs between iterations, before the Edge phase — the
	// hook Grazelle's global variables serve (e.g. PageRank's dangling-mass
	// sum).
	PreIteration(props []uint64)
	// InitFrontier seeds the first iteration's frontier.
	InitFrontier(f *frontier.Dense)
	// InitConverged seeds the converged set (vertices ignoring in-bound
	// messages from the start).
	InitConverged(c *frontier.Dense)
	// UsesFrontier reports whether source vertices outside the frontier are
	// skipped. PageRank answers false (§2: PageRank cannot use the
	// frontier).
	UsesFrontier() bool
	// TracksConverged reports whether changed vertices permanently leave
	// the computation (BFS marks vertices converged upon visitation).
	TracksConverged() bool
	// SkipEqualWrites permits engines to elide a shared write when the
	// combined value equals the current one (the minimization optimization
	// the standard Connected Components enjoys; its write-intense variant
	// of Fig 8a returns false).
	SkipEqualWrites() bool
	// Weighted reports whether Message consumes edge weights.
	Weighted() bool
}

// f64 converts a float64 to its property-lane representation.
func f64(x float64) uint64 { return math.Float64bits(x) }

// asF64 converts a property lane back to float64.
func asF64(x uint64) float64 { return math.Float64frombits(x) }

// PageRank is the damped PageRank program. Property lanes hold each
// vertex's current rank as float64 bits; Message divides by the source's
// out-degree. A per-iteration global (the paper's "global variables"
// feature) redistributes the rank mass of dangling vertices so the rank sum
// stays 1.0 — the correctness check the artifact prints.
type PageRank struct {
	// Damping is the damping factor d (default 0.85).
	Damping float64
	// N is the vertex count, set by Attach.
	N int

	invOutDeg []float64 // 1/outdeg, 0 for dangling vertices
	dangling  float64   // rank mass of dangling vertices, per iteration
}

// NewPageRank creates a PageRank program for graph g with damping 0.85.
func NewPageRank(g *graph.Graph) *PageRank {
	p := &PageRank{Damping: 0.85, N: g.NumVertices}
	deg := g.OutDegrees()
	p.invOutDeg = make([]float64, len(deg))
	for v, d := range deg {
		if d > 0 {
			p.invOutDeg[v] = 1 / float64(d)
		}
	}
	return p
}

// Name implements Program.
func (p *PageRank) Name() string { return "PageRank" }

// Identity implements Program: the additive identity 0.0.
func (p *PageRank) Identity() uint64 { return f64(0) }

// Combine implements Program: float64 addition.
func (p *PageRank) Combine(a, b uint64) uint64 { return f64(asF64(a) + asF64(b)) }

// Message implements Program: rank(src) / outdeg(src).
func (p *PageRank) Message(srcVal uint64, src uint32, _ float32) uint64 {
	return f64(asF64(srcVal) * p.invOutDeg[src])
}

// Apply implements Program: rank = (1-d)/N + d·(sum + dangling/N).
func (p *PageRank) Apply(_, agg uint64, _ uint32) (uint64, bool) {
	rank := (1-p.Damping)/float64(p.N) + p.Damping*(asF64(agg)+p.dangling/float64(p.N))
	return f64(rank), true
}

// InitProps implements Program: uniform initial ranks 1/N.
func (p *PageRank) InitProps(props []uint64) {
	init := f64(1 / float64(p.N))
	for i := range props {
		props[i] = init
	}
	p.dangling = 0
	p.PreIteration(props)
}

// PreIteration implements Program: sum the rank mass of dangling vertices.
func (p *PageRank) PreIteration(props []uint64) {
	sum := 0.0
	for v, inv := range p.invOutDeg {
		if inv == 0 {
			sum += asF64(props[v])
		}
	}
	p.dangling = sum
}

// InitFrontier implements Program; PageRank processes every vertex.
func (p *PageRank) InitFrontier(f *frontier.Dense) { f.Fill() }

// InitConverged implements Program; nothing starts converged.
func (p *PageRank) InitConverged(*frontier.Dense) {}

// UsesFrontier implements Program.
func (p *PageRank) UsesFrontier() bool { return false }

// TracksConverged implements Program.
func (p *PageRank) TracksConverged() bool { return false }

// SkipEqualWrites implements Program; summation writes every iteration.
func (p *PageRank) SkipEqualWrites() bool { return false }

// Weighted implements Program.
func (p *PageRank) Weighted() bool { return false }

// RankSum returns the total rank mass in props — the artifact's "PageRank
// Sum" correctness check, which should be very close to 1.0.
func RankSum(props []uint64) float64 {
	sum := 0.0
	for _, v := range props {
		sum += asF64(v)
	}
	return sum
}

// Ranks converts property lanes to a float64 rank vector.
func Ranks(props []uint64) []float64 {
	out := make([]float64, len(props))
	for i, v := range props {
		out[i] = asF64(v)
	}
	return out
}

// ConnComp is Connected Components by min-label propagation along directed
// edges (on a symmetric graph this computes true connected components).
// WriteIntense selects the Fig 8a variant that performs a shared write per
// edge even when the label is unchanged.
type ConnComp struct {
	// WriteIntense disables the skip-equal-writes optimization.
	WriteIntense bool
}

// NewConnComp creates the standard Connected Components program.
func NewConnComp() *ConnComp { return &ConnComp{} }

// NewConnCompWriteIntense creates the write-intense variant of Fig 8a.
func NewConnCompWriteIntense() *ConnComp { return &ConnComp{WriteIntense: true} }

// Name implements Program.
func (c *ConnComp) Name() string {
	if c.WriteIntense {
		return "ConnectedComponents-WriteIntense"
	}
	return "ConnectedComponents"
}

// Identity implements Program: the maximal label.
func (c *ConnComp) Identity() uint64 { return ^uint64(0) }

// Combine implements Program: minimization.
func (c *ConnComp) Combine(a, b uint64) uint64 {
	if b < a {
		return b
	}
	return a
}

// Message implements Program: propagate the source's label.
func (c *ConnComp) Message(srcVal uint64, _ uint32, _ float32) uint64 { return srcVal }

// Apply implements Program: keep the smaller label.
func (c *ConnComp) Apply(old, agg uint64, _ uint32) (uint64, bool) {
	if agg < old {
		return agg, true
	}
	return old, false
}

// InitProps implements Program: every vertex starts in its own component.
func (c *ConnComp) InitProps(props []uint64) {
	for i := range props {
		props[i] = uint64(i)
	}
}

// PreIteration implements Program.
func (c *ConnComp) PreIteration([]uint64) {}

// InitFrontier implements Program: all vertices are initially active.
func (c *ConnComp) InitFrontier(f *frontier.Dense) { f.Fill() }

// InitConverged implements Program.
func (c *ConnComp) InitConverged(*frontier.Dense) {}

// UsesFrontier implements Program.
func (c *ConnComp) UsesFrontier() bool { return true }

// TracksConverged implements Program.
func (c *ConnComp) TracksConverged() bool { return false }

// SkipEqualWrites implements Program.
func (c *ConnComp) SkipEqualWrites() bool { return !c.WriteIntense }

// Weighted implements Program.
func (c *ConnComp) Weighted() bool { return false }

// Components converts property lanes to component ids.
func Components(props []uint64) []uint32 {
	out := make([]uint32, len(props))
	for i, v := range props {
		out[i] = uint32(v)
	}
	return out
}

// NoParent is the BFS property lane of an unvisited vertex.
const NoParent = ^uint64(0)

// BFS is Breadth-First Search producing a parent array: each visited vertex
// records the minimum-id frontier predecessor of the round that reached it
// (determinism; the paper accepts the first candidate). Vertices are marked
// converged immediately upon visitation and ignore further messages.
type BFS struct {
	// Root is the search origin.
	Root uint32
}

// NewBFS creates a BFS program from the given root.
func NewBFS(root uint32) *BFS { return &BFS{Root: root} }

// Name implements Program.
func (b *BFS) Name() string { return "BFS" }

// Identity implements Program.
func (b *BFS) Identity() uint64 { return NoParent }

// Combine implements Program: smallest candidate parent wins.
func (b *BFS) Combine(x, y uint64) uint64 {
	if y < x {
		return y
	}
	return x
}

// Message implements Program: offer the source as parent.
func (b *BFS) Message(_ uint64, src uint32, _ float32) uint64 { return uint64(src) }

// Apply implements Program: adopt a parent exactly once.
func (b *BFS) Apply(old, agg uint64, _ uint32) (uint64, bool) {
	if old == NoParent && agg != NoParent {
		return agg, true
	}
	return old, false
}

// InitProps implements Program: only the root starts visited (its own
// parent, the artifact's convention).
func (b *BFS) InitProps(props []uint64) {
	for i := range props {
		props[i] = NoParent
	}
	props[b.Root] = uint64(b.Root)
}

// PreIteration implements Program.
func (b *BFS) PreIteration([]uint64) {}

// InitFrontier implements Program: just the root.
func (b *BFS) InitFrontier(f *frontier.Dense) { f.Add(b.Root) }

// InitConverged implements Program: the root ignores in-bound messages.
func (b *BFS) InitConverged(c *frontier.Dense) { c.Add(b.Root) }

// UsesFrontier implements Program.
func (b *BFS) UsesFrontier() bool { return true }

// TracksConverged implements Program.
func (b *BFS) TracksConverged() bool { return true }

// SkipEqualWrites implements Program: one write per vertex ever, so the
// optimization is moot (§3: BFS "would not benefit at all").
func (b *BFS) SkipEqualWrites() bool { return true }

// Weighted implements Program.
func (b *BFS) Weighted() bool { return false }

// Inf is the SSSP lane for an unreached vertex.
var Inf = f64(math.Inf(1))

// SSSP is synchronous Bellman-Ford Single-Source Shortest Paths over
// non-negative float32 edge weights. §6 describes it as Connected
// Components' twin: minimization aggregation, frontier initialized to a
// single vertex.
type SSSP struct {
	// Root is the source vertex.
	Root uint32
}

// NewSSSP creates an SSSP program from the given root.
func NewSSSP(root uint32) *SSSP { return &SSSP{Root: root} }

// Name implements Program.
func (s *SSSP) Name() string { return "SSSP" }

// Identity implements Program: +Inf distance.
func (s *SSSP) Identity() uint64 { return Inf }

// Combine implements Program: minimum distance.
func (s *SSSP) Combine(a, b uint64) uint64 {
	if asF64(b) < asF64(a) {
		return b
	}
	return a
}

// Message implements Program: dist(src) + w.
func (s *SSSP) Message(srcVal uint64, _ uint32, w float32) uint64 {
	return f64(asF64(srcVal) + float64(w))
}

// Apply implements Program: relax.
func (s *SSSP) Apply(old, agg uint64, _ uint32) (uint64, bool) {
	if asF64(agg) < asF64(old) {
		return agg, true
	}
	return old, false
}

// InitProps implements Program.
func (s *SSSP) InitProps(props []uint64) {
	for i := range props {
		props[i] = Inf
	}
	props[s.Root] = f64(0)
}

// PreIteration implements Program.
func (s *SSSP) PreIteration([]uint64) {}

// InitFrontier implements Program: just the root.
func (s *SSSP) InitFrontier(f *frontier.Dense) { f.Add(s.Root) }

// InitConverged implements Program.
func (s *SSSP) InitConverged(*frontier.Dense) {}

// UsesFrontier implements Program.
func (s *SSSP) UsesFrontier() bool { return true }

// TracksConverged implements Program: distances may improve repeatedly.
func (s *SSSP) TracksConverged() bool { return false }

// SkipEqualWrites implements Program.
func (s *SSSP) SkipEqualWrites() bool { return true }

// Weighted implements Program.
func (s *SSSP) Weighted() bool { return true }

// Distances converts property lanes to float64 distances.
func Distances(props []uint64) []float64 {
	out := make([]float64, len(props))
	for i, v := range props {
		out[i] = asF64(v)
	}
	return out
}

// WeightedRank is the Collaborative-Filtering-like kernel §6 describes:
// identical access pattern to PageRank but with edge weights folded into
// each message ("the use of edge weights adds additional transfers but does
// not change the access pattern"). Messages are rank·w/weightedOutDeg.
type WeightedRank struct {
	// Damping is the damping factor (default 0.85).
	Damping float64
	// N is the vertex count.
	N int

	invWOutDeg []float64
	dangling   float64
}

// NewWeightedRank creates the weighted-rank program for weighted graph g.
func NewWeightedRank(g *graph.Graph) *WeightedRank {
	p := &WeightedRank{Damping: 0.85, N: g.NumVertices}
	wdeg := make([]float64, g.NumVertices)
	for _, e := range g.Edges {
		wdeg[e.Src] += float64(e.Weight)
	}
	p.invWOutDeg = make([]float64, g.NumVertices)
	for v, d := range wdeg {
		if d > 0 {
			p.invWOutDeg[v] = 1 / d
		}
	}
	return p
}

// Name implements Program.
func (p *WeightedRank) Name() string { return "WeightedRank" }

// Identity implements Program.
func (p *WeightedRank) Identity() uint64 { return f64(0) }

// Combine implements Program.
func (p *WeightedRank) Combine(a, b uint64) uint64 { return f64(asF64(a) + asF64(b)) }

// Message implements Program: rank(src)/weightedOutDeg(src) · w. The scale
// multiplies first so the result is bit-identical to the engines' fused
// FusedRankSum kernel.
func (p *WeightedRank) Message(srcVal uint64, src uint32, w float32) uint64 {
	return f64(asF64(srcVal) * p.invWOutDeg[src] * float64(w))
}

// Apply implements Program.
func (p *WeightedRank) Apply(_, agg uint64, _ uint32) (uint64, bool) {
	rank := (1-p.Damping)/float64(p.N) + p.Damping*(asF64(agg)+p.dangling/float64(p.N))
	return f64(rank), true
}

// InitProps implements Program.
func (p *WeightedRank) InitProps(props []uint64) {
	init := f64(1 / float64(p.N))
	for i := range props {
		props[i] = init
	}
	p.PreIteration(props)
}

// PreIteration implements Program.
func (p *WeightedRank) PreIteration(props []uint64) {
	sum := 0.0
	for v, inv := range p.invWOutDeg {
		if inv == 0 {
			sum += asF64(props[v])
		}
	}
	p.dangling = sum
}

// InitFrontier implements Program.
func (p *WeightedRank) InitFrontier(f *frontier.Dense) { f.Fill() }

// InitConverged implements Program.
func (p *WeightedRank) InitConverged(*frontier.Dense) {}

// UsesFrontier implements Program.
func (p *WeightedRank) UsesFrontier() bool { return false }

// TracksConverged implements Program.
func (p *WeightedRank) TracksConverged() bool { return false }

// SkipEqualWrites implements Program.
func (p *WeightedRank) SkipEqualWrites() bool { return false }

// Weighted implements Program.
func (p *WeightedRank) Weighted() bool { return true }
