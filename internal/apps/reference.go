package apps

import (
	"math"

	"repro/internal/graph"
)

// This file holds independent textbook implementations of each application,
// written directly against the edge list with none of the repository's
// engine machinery. They are the ground truth the sequential driver — and
// transitively every engine — is validated against.

// ReferencePageRank computes iters rounds of damped PageRank with uniform
// initialization and dangling-mass redistribution.
func ReferencePageRank(g *graph.Graph, damping float64, iters int) []float64 {
	n := g.NumVertices
	rank := make([]float64, n)
	next := make([]float64, n)
	outDeg := g.OutDegrees()
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		dangling := 0.0
		for v, d := range outDeg {
			if d == 0 {
				dangling += rank[v]
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for i := range next {
			next[i] = base
		}
		for _, e := range g.Edges {
			next[e.Dst] += damping * rank[e.Src] / float64(outDeg[e.Src])
		}
		rank, next = next, rank
	}
	return rank
}

// ReferenceComponents computes min-label propagation along directed edges
// to a fixpoint (true connected components when the graph is symmetric).
func ReferenceComponents(g *graph.Graph) []uint32 {
	labels := make([]uint32, g.NumVertices)
	for i := range labels {
		labels[i] = uint32(i)
	}
	for changed := true; changed; {
		changed = false
		for _, e := range g.Edges {
			if labels[e.Src] < labels[e.Dst] {
				labels[e.Dst] = labels[e.Src]
				changed = true
			}
		}
	}
	return labels
}

// ReferenceBFS computes the synchronous-rounds BFS parent array the engines
// produce: level by level, each newly-reached vertex adopts the minimum-id
// predecessor from the previous frontier; the root is its own parent;
// unreached vertices hold NoParent.
func ReferenceBFS(g *graph.Graph, root uint32) []uint64 {
	n := g.NumVertices
	parents := make([]uint64, n)
	for i := range parents {
		parents[i] = NoParent
	}
	parents[root] = uint64(root)
	// Out-adjacency for frontier expansion.
	adj := make([][]uint32, n)
	for _, e := range g.Edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	cur := []uint32{root}
	for len(cur) > 0 {
		best := map[uint32]uint64{}
		for _, s := range cur {
			for _, d := range adj[s] {
				if parents[d] != NoParent {
					continue
				}
				if b, ok := best[d]; !ok || uint64(s) < b {
					best[d] = uint64(s)
				}
			}
		}
		cur = cur[:0]
		for d, p := range best {
			parents[d] = p
			cur = append(cur, d)
		}
	}
	return parents
}

// ReferenceSSSP computes exact single-source shortest path distances by
// Bellman-Ford over the weighted edge list. Unreached vertices hold +Inf.
func ReferenceSSSP(g *graph.Graph, root uint32) []float64 {
	n := g.NumVertices
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[root] = 0
	for changed := true; changed; {
		changed = false
		for _, e := range g.Edges {
			if nd := dist[e.Src] + float64(e.Weight); nd < dist[e.Dst] {
				dist[e.Dst] = nd
				changed = true
			}
		}
	}
	return dist
}

// ReferenceWeightedRank computes iters rounds of weighted PageRank: messages
// carry rank·w/weightedOutDeg, dangling (zero weighted out-degree) mass is
// redistributed uniformly.
func ReferenceWeightedRank(g *graph.Graph, damping float64, iters int) []float64 {
	n := g.NumVertices
	wdeg := make([]float64, n)
	for _, e := range g.Edges {
		wdeg[e.Src] += float64(e.Weight)
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		dangling := 0.0
		for v, d := range wdeg {
			if d == 0 {
				dangling += rank[v]
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for i := range next {
			next[i] = base
		}
		for _, e := range g.Edges {
			next[e.Dst] += damping * rank[e.Src] * float64(e.Weight) / wdeg[e.Src]
		}
		rank, next = next, rank
	}
	return rank
}

// ReferenceTriangles counts, per vertex, triangles of the undirected simple
// closure (direction ignored, self-loops and parallel edges dropped) by
// brute-force adjacency-set pair testing.
func ReferenceTriangles(g *graph.Graph) []uint64 {
	n := g.NumVertices
	nbr := make([]map[uint32]bool, n)
	for i := range nbr {
		nbr[i] = map[uint32]bool{}
	}
	for _, e := range g.Edges {
		if e.Src == e.Dst {
			continue
		}
		nbr[e.Src][e.Dst] = true
		nbr[e.Dst][e.Src] = true
	}
	counts := make([]uint64, n)
	for v := 0; v < n; v++ {
		ns := make([]uint32, 0, len(nbr[v]))
		for u := range nbr[v] {
			ns = append(ns, u)
		}
		for i := 0; i < len(ns); i++ {
			for j := i + 1; j < len(ns); j++ {
				if nbr[ns[i]][ns[j]] {
					counts[v]++
				}
			}
		}
	}
	return counts
}

// ReferenceKCore computes the same synchronous peeling the KCore program
// specifies: directed in-degrees, rounds in which every vertex that died in
// the previous round decrements each live out-neighbor once, death when the
// remaining in-degree drops below k. Lanes are remaining in-degree or
// KCoreDead; the comparison with the engine is exact (integer lanes).
func ReferenceKCore(g *graph.Graph, k int) []uint64 {
	if k < 0 {
		k = 0
	}
	n := g.NumVertices
	kk := uint64(k)
	props := make([]uint64, n)
	for _, e := range g.Edges {
		props[e.Dst]++
	}
	var front []uint32
	for v := uint32(0); int(v) < n; v++ {
		if props[v] < kk {
			props[v] = KCoreDead
			front = append(front, v)
		}
	}
	dec := make([]uint64, n)
	for len(front) > 0 {
		for i := range dec {
			dec[i] = 0
		}
		inFront := make(map[uint32]bool, len(front))
		for _, v := range front {
			inFront[v] = true
		}
		for _, e := range g.Edges {
			if inFront[e.Src] && props[e.Dst] != KCoreDead {
				dec[e.Dst]++
			}
		}
		front = front[:0]
		for v := uint32(0); int(v) < n; v++ {
			if props[v] == KCoreDead || dec[v] == 0 {
				continue
			}
			rem := props[v] - dec[v]
			if rem < kk {
				props[v] = KCoreDead
				front = append(front, v)
			} else {
				props[v] = rem
			}
		}
	}
	return props
}

// ReferenceLabelProp runs iters synchronous rounds of min-hash label
// propagation with the same lpKey/mix64 salt schedule the LabelProp program
// uses (round r, 1-based, salts with mix64(r)), so the comparison with the
// engine is exact (integer lanes).
func ReferenceLabelProp(g *graph.Graph, iters int) []uint64 {
	n := g.NumVertices
	labels := make([]uint64, n)
	for i := range labels {
		labels[i] = uint64(i)
	}
	best := make([]uint64, n)
	for r := 1; r <= iters; r++ {
		salt := mix64(uint64(r))
		for i := range best {
			best[i] = ^uint64(0)
		}
		for _, e := range g.Edges {
			if key := lpKey(uint32(labels[e.Src]), salt); key < best[e.Dst] {
				best[e.Dst] = key
			}
		}
		for v := range labels {
			if best[v] != ^uint64(0) {
				labels[v] = uint64(uint32(best[v]))
			}
		}
	}
	return labels
}

// ReferencePPR computes iters rounds of PageRank personalized to root: all
// restart and dangling mass returns to the root, so the rank vector stays a
// probability distribution concentrated around it.
func ReferencePPR(g *graph.Graph, damping float64, root uint32, iters int) []float64 {
	n := g.NumVertices
	outDeg := g.OutDegrees()
	rank := make([]float64, n)
	next := make([]float64, n)
	rank[root] = 1
	for it := 0; it < iters; it++ {
		dangling := 0.0
		for v, d := range outDeg {
			if d == 0 {
				dangling += rank[v]
			}
		}
		for i := range next {
			next[i] = 0
		}
		next[root] = (1 - damping) + damping*dangling
		for _, e := range g.Edges {
			next[e.Dst] += damping * rank[e.Src] / float64(outDeg[e.Src])
		}
		rank, next = next, rank
	}
	return rank
}
