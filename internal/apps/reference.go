package apps

import (
	"math"

	"repro/internal/graph"
)

// This file holds independent textbook implementations of each application,
// written directly against the edge list with none of the repository's
// engine machinery. They are the ground truth the sequential driver — and
// transitively every engine — is validated against.

// ReferencePageRank computes iters rounds of damped PageRank with uniform
// initialization and dangling-mass redistribution.
func ReferencePageRank(g *graph.Graph, damping float64, iters int) []float64 {
	n := g.NumVertices
	rank := make([]float64, n)
	next := make([]float64, n)
	outDeg := g.OutDegrees()
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		dangling := 0.0
		for v, d := range outDeg {
			if d == 0 {
				dangling += rank[v]
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for i := range next {
			next[i] = base
		}
		for _, e := range g.Edges {
			next[e.Dst] += damping * rank[e.Src] / float64(outDeg[e.Src])
		}
		rank, next = next, rank
	}
	return rank
}

// ReferenceComponents computes min-label propagation along directed edges
// to a fixpoint (true connected components when the graph is symmetric).
func ReferenceComponents(g *graph.Graph) []uint32 {
	labels := make([]uint32, g.NumVertices)
	for i := range labels {
		labels[i] = uint32(i)
	}
	for changed := true; changed; {
		changed = false
		for _, e := range g.Edges {
			if labels[e.Src] < labels[e.Dst] {
				labels[e.Dst] = labels[e.Src]
				changed = true
			}
		}
	}
	return labels
}

// ReferenceBFS computes the synchronous-rounds BFS parent array the engines
// produce: level by level, each newly-reached vertex adopts the minimum-id
// predecessor from the previous frontier; the root is its own parent;
// unreached vertices hold NoParent.
func ReferenceBFS(g *graph.Graph, root uint32) []uint64 {
	n := g.NumVertices
	parents := make([]uint64, n)
	for i := range parents {
		parents[i] = NoParent
	}
	parents[root] = uint64(root)
	// Out-adjacency for frontier expansion.
	adj := make([][]uint32, n)
	for _, e := range g.Edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	cur := []uint32{root}
	for len(cur) > 0 {
		best := map[uint32]uint64{}
		for _, s := range cur {
			for _, d := range adj[s] {
				if parents[d] != NoParent {
					continue
				}
				if b, ok := best[d]; !ok || uint64(s) < b {
					best[d] = uint64(s)
				}
			}
		}
		cur = cur[:0]
		for d, p := range best {
			parents[d] = p
			cur = append(cur, d)
		}
	}
	return parents
}

// ReferenceSSSP computes exact single-source shortest path distances by
// Bellman-Ford over the weighted edge list. Unreached vertices hold +Inf.
func ReferenceSSSP(g *graph.Graph, root uint32) []float64 {
	n := g.NumVertices
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[root] = 0
	for changed := true; changed; {
		changed = false
		for _, e := range g.Edges {
			if nd := dist[e.Src] + float64(e.Weight); nd < dist[e.Dst] {
				dist[e.Dst] = nd
				changed = true
			}
		}
	}
	return dist
}
