package apps

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// This file is the application registry: the one place an algorithm plugs
// into the system. Each Entry bundles everything the layers above need —
// the Program constructor, the parameter schema (which request fields the
// app reads, from which cache keys are derived), result serializers, the
// engine iteration bound, and a sequential reference implementation for the
// conformance suite. The facade's generic Run, the CLI, the HTTP service,
// the query cache, and the benchmark harness all dispatch through Lookup,
// so registering an entry is the complete integration surface: a new app is
// cacheable, traced, admission-controlled, benchmarked, and HTTP-exposed
// the moment it registers (see DESIGN.md §12 for the contract).

// Params is the universal parameter record. Every app reads a subset of its
// fields, declared by Entry.Uses; the rest are ignored (and zeroed out of
// cache keys by ZeroUnused).
type Params struct {
	// Iters bounds iteration-parameterized apps (pr, wpr, lp, ppr).
	Iters int
	// Root is the source vertex for rooted apps (bfs, sssp, ppr).
	Root uint32
	// K is the core threshold for kcore.
	K int
}

// ParamField is a bitset over Params fields.
type ParamField uint8

// Params fields.
const (
	ParamIters ParamField = 1 << iota
	ParamRoot
	ParamK
)

// Stat is one summary statistic of a run: Key names it in JSON responses,
// Label/Text render it for humans ("PageRank Sum: 1.000000000000").
type Stat struct {
	Key   string
	Label string
	Value any
	Text  string
}

// Info is the serializable description of a registered app, served by
// GET /v1/apps and `grazelle -a list`.
type Info struct {
	Name         string         `json:"name"`
	Title        string         `json:"title"`
	Description  string         `json:"description"`
	Params       []string       `json:"params"`
	Defaults     map[string]int `json:"defaults,omitempty"`
	NeedsWeights bool           `json:"needs_weights"`
}

// Entry is one registered application.
type Entry struct {
	// Name is the registry key and wire name (lowercase, e.g. "pr").
	Name string
	// Title is the human name, also used in error messages ("WeightedRank
	// requires a weighted graph").
	Title string
	// Description is a one-line summary for listings.
	Description string
	// Uses declares which Params fields the app reads; everything else is
	// zeroed out of cache keys so requests differing only in ignored fields
	// coalesce.
	Uses ParamField
	// Defaults supplies values for used fields left unset (<= 0).
	Defaults Params
	// NeedsWeights requires a weighted graph.
	NeedsWeights bool
	// FloatLanes marks float64 property lanes: the conformance suite
	// compares against the reference with a relative tolerance instead of
	// exact equality (the reference accumulates in a different order).
	FloatLanes bool
	// New constructs the Program for one run. It validates params against
	// the graph (e.g. root in range).
	New func(g *graph.Graph, p Params) (Program, error)
	// MaxIters is the engine iteration bound (effectively unbounded for
	// fixpoint apps).
	MaxIters func(p Params) int
	// Reference computes the expected property lanes sequentially, with
	// none of the engine machinery — the conformance ground truth.
	Reference func(g *graph.Graph, p Params) []uint64
	// Summary extracts the run's headline statistics from property lanes.
	Summary func(p Params, props []uint64) []Stat
	// Values converts property lanes to the JSON-facing per-vertex vector.
	Values func(props []uint64) any
	// VertexText renders one vertex's value for `-o` per-vertex output.
	VertexText func(props []uint64, v int) string
	// IncrementalSeed, when non-nil, plans a warm start for this app from a
	// predecessor version's result and the mutation delta connecting it to
	// the current graph (DESIGN.md §15). A returned error means the delta
	// violates the app's seeding preconditions; callers fall back to a full
	// recompute. Optional — most apps leave it nil.
	IncrementalSeed func(in SeedInput) (*SeedPlan, error)
}

// ZeroUnused returns p with every field the app does not read zeroed —
// the canonicalization step behind cache-key derivation.
func (e Entry) ZeroUnused(p Params) Params {
	if e.Uses&ParamIters == 0 {
		p.Iters = 0
	}
	if e.Uses&ParamRoot == 0 {
		p.Root = 0
	}
	if e.Uses&ParamK == 0 {
		p.K = 0
	}
	return p
}

// Normalize zeroes unused fields and fills defaults for used fields left
// unset (<= 0).
func (e Entry) Normalize(p Params) Params {
	p = e.ZeroUnused(p)
	if e.Uses&ParamIters != 0 && p.Iters <= 0 {
		p.Iters = e.Defaults.Iters
	}
	if e.Uses&ParamK != 0 && p.K <= 0 {
		p.K = e.Defaults.K
	}
	return p
}

// Canonical renders p as the canonical cache-key parameter string: fields
// the app ignores are zeroed and defaults applied first, so every request
// that would produce the same run produces the same string.
func (e Entry) Canonical(p Params) string {
	p = e.Normalize(p)
	return fmt.Sprintf("iters=%d&k=%d&root=%d", p.Iters, p.K, p.Root)
}

// Info returns the serializable description of the entry.
func (e Entry) Info() Info {
	params := []string{}
	defaults := map[string]int{}
	if e.Uses&ParamIters != 0 {
		params = append(params, "iters")
		defaults["iters"] = e.Defaults.Iters
	}
	if e.Uses&ParamK != 0 {
		params = append(params, "k")
		defaults["k"] = e.Defaults.K
	}
	if e.Uses&ParamRoot != 0 {
		params = append(params, "root")
	}
	if len(defaults) == 0 {
		defaults = nil
	}
	return Info{
		Name:         e.Name,
		Title:        e.Title,
		Description:  e.Description,
		Params:       params,
		Defaults:     defaults,
		NeedsWeights: e.NeedsWeights,
	}
}

var registry = map[string]Entry{}

// Register adds an entry to the registry, validating completeness. Out-of-
// tree apps call this (or MustRegister) from an init function; everything
// above the registry — CLI flags, HTTP routing, caching, conformance —
// picks the app up without further wiring.
func Register(e Entry) error {
	switch {
	case e.Name == "":
		return fmt.Errorf("apps: register: empty name")
	case e.Title == "":
		return fmt.Errorf("apps: register %q: empty title", e.Name)
	case e.New == nil || e.MaxIters == nil || e.Reference == nil ||
		e.Summary == nil || e.Values == nil || e.VertexText == nil:
		return fmt.Errorf("apps: register %q: incomplete entry (New, MaxIters, Reference, Summary, Values, VertexText are all required)", e.Name)
	}
	if _, dup := registry[e.Name]; dup {
		return fmt.Errorf("apps: register %q: already registered", e.Name)
	}
	registry[e.Name] = e
	return nil
}

// MustRegister is Register, panicking on error.
func MustRegister(e Entry) {
	if err := Register(e); err != nil {
		panic(err)
	}
}

// Lookup resolves an app by registry name.
func Lookup(name string) (Entry, error) {
	e, ok := registry[name]
	if !ok {
		return Entry{}, fmt.Errorf("unknown app %q (registered: %s)", name, namesJoined())
	}
	return e, nil
}

// Names returns the registered app names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns every registered entry, sorted by name.
func All() []Entry {
	names := Names()
	out := make([]Entry, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

func namesJoined() string {
	s := ""
	for i, n := range Names() {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

// --- lane conversion helpers -----------------------------------------------

func floatLanes(xs []float64) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = f64(x)
	}
	return out
}

func labelLanes(xs []uint32) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = uint64(x)
	}
	return out
}

// Parents converts BFS property lanes to int64 parents with -1 for
// unreached vertices.
func Parents(props []uint64) []int64 {
	out := make([]int64, len(props))
	for i, p := range props {
		if p == NoParent {
			out[i] = -1
		} else {
			out[i] = int64(p)
		}
	}
	return out
}

func countReached(props []uint64) int {
	n := 0
	for _, p := range props {
		if p != NoParent {
			n++
		}
	}
	return n
}

func countFinite(props []uint64) int {
	n := 0
	for _, p := range props {
		if !math.IsInf(asF64(p), 1) {
			n++
		}
	}
	return n
}

func checkRoot(g *graph.Graph, root uint32) error {
	if int(root) >= g.NumVertices {
		return fmt.Errorf("root %d out of range (graph has %d vertices)", root, g.NumVertices)
	}
	return nil
}

func rankStat(label string, props []uint64) []Stat {
	s := RankSum(props)
	return []Stat{{Key: "rank_sum", Label: label, Value: s, Text: fmt.Sprintf("%.12f", s)}}
}

// --- built-in registrations -------------------------------------------------

func init() {
	MustRegister(Entry{
		Name:        "pr",
		Title:       "PageRank",
		Description: "damped (0.85) PageRank with dangling-mass redistribution",
		Uses:        ParamIters,
		Defaults:    Params{Iters: 16},
		FloatLanes:  true,
		New: func(g *graph.Graph, _ Params) (Program, error) {
			return NewPageRank(g), nil
		},
		MaxIters: func(p Params) int { return p.Iters },
		Reference: func(g *graph.Graph, p Params) []uint64 {
			return floatLanes(ReferencePageRank(g, 0.85, p.Iters))
		},
		Summary: func(_ Params, props []uint64) []Stat { return rankStat("PageRank Sum", props) },
		Values:  func(props []uint64) any { return Ranks(props) },
		VertexText: func(props []uint64, v int) string {
			return fmt.Sprintf("%.12g", asF64(props[v]))
		},
		IncrementalSeed: seedRankDirect,
	})

	MustRegister(Entry{
		Name:         "wpr",
		Title:        "WeightedRank",
		Description:  "weighted PageRank: rank·w/weightedOutDeg messages (§6's CF-like kernel)",
		Uses:         ParamIters,
		Defaults:     Params{Iters: 16},
		NeedsWeights: true,
		FloatLanes:   true,
		New: func(g *graph.Graph, _ Params) (Program, error) {
			return NewWeightedRank(g), nil
		},
		MaxIters: func(p Params) int { return p.Iters },
		Reference: func(g *graph.Graph, p Params) []uint64 {
			return floatLanes(ReferenceWeightedRank(g, 0.85, p.Iters))
		},
		Summary: func(_ Params, props []uint64) []Stat { return rankStat("WeightedRank Sum", props) },
		Values:  func(props []uint64) any { return Ranks(props) },
		VertexText: func(props []uint64, v int) string {
			return fmt.Sprintf("%.12g", asF64(props[v]))
		},
	})

	MustRegister(Entry{
		Name:        "cc",
		Title:       "ConnectedComponents",
		Description: "min-label propagation to a fixpoint (components on symmetric graphs)",
		New: func(_ *graph.Graph, _ Params) (Program, error) {
			return NewConnComp(), nil
		},
		MaxIters: func(Params) int { return 1 << 30 },
		Reference: func(g *graph.Graph, _ Params) []uint64 {
			return labelLanes(ReferenceComponents(g))
		},
		Summary: func(_ Params, props []uint64) []Stat {
			n := DistinctLabels(props)
			return []Stat{{Key: "components", Label: "Components", Value: n, Text: fmt.Sprintf("%d", n)}}
		},
		Values: func(props []uint64) any { return Components(props) },
		VertexText: func(props []uint64, v int) string {
			return fmt.Sprintf("%d", uint32(props[v]))
		},
		IncrementalSeed: seedCC,
	})

	MustRegister(Entry{
		Name:        "bfs",
		Title:       "BFS",
		Description: "breadth-first search from root, minimum-id parent selection",
		Uses:        ParamRoot,
		New: func(g *graph.Graph, p Params) (Program, error) {
			if err := checkRoot(g, p.Root); err != nil {
				return nil, err
			}
			return NewBFS(p.Root), nil
		},
		MaxIters: func(Params) int { return 1 << 30 },
		Reference: func(g *graph.Graph, p Params) []uint64 {
			return ReferenceBFS(g, p.Root)
		},
		Summary: func(_ Params, props []uint64) []Stat {
			n := countReached(props)
			return []Stat{{Key: "reachable", Label: "Reachable", Value: n,
				Text: fmt.Sprintf("%d of %d", n, len(props))}}
		},
		Values: func(props []uint64) any { return Parents(props) },
		VertexText: func(props []uint64, v int) string {
			if props[v] == NoParent {
				return "-1"
			}
			return fmt.Sprintf("%d", props[v])
		},
		IncrementalSeed: seedBFS,
	})

	MustRegister(Entry{
		Name:         "sssp",
		Title:        "SSSP",
		Description:  "single-source shortest paths (synchronous Bellman-Ford) from root",
		Uses:         ParamRoot,
		NeedsWeights: true,
		FloatLanes:   true,
		New: func(g *graph.Graph, p Params) (Program, error) {
			if err := checkRoot(g, p.Root); err != nil {
				return nil, err
			}
			return NewSSSP(p.Root), nil
		},
		MaxIters: func(Params) int { return 1 << 30 },
		Reference: func(g *graph.Graph, p Params) []uint64 {
			return floatLanes(ReferenceSSSP(g, p.Root))
		},
		Summary: func(_ Params, props []uint64) []Stat {
			n := countFinite(props)
			return []Stat{{Key: "reachable", Label: "Reached", Value: n,
				Text: fmt.Sprintf("%d of %d", n, len(props))}}
		},
		Values: func(props []uint64) any { return Distances(props) },
		VertexText: func(props []uint64, v int) string {
			return fmt.Sprintf("%g", asF64(props[v]))
		},
		IncrementalSeed: seedSSSP,
	})

	MustRegister(Entry{
		Name:        "tc",
		Title:       "TriangleCount",
		Description: "per-vertex triangle counting over the undirected simple closure",
		New: func(g *graph.Graph, _ Params) (Program, error) {
			return NewTriangleCount(g), nil
		},
		MaxIters: func(Params) int { return 1 },
		Reference: func(g *graph.Graph, _ Params) []uint64 {
			return ReferenceTriangles(g)
		},
		Summary: func(_ Params, props []uint64) []Stat {
			n := Triangles(props)
			return []Stat{{Key: "triangles", Label: "Triangles", Value: n, Text: fmt.Sprintf("%d", n)}}
		},
		Values: func(props []uint64) any {
			return append([]uint64(nil), props...)
		},
		VertexText: func(props []uint64, v int) string {
			return fmt.Sprintf("%d", props[v])
		},
	})

	MustRegister(Entry{
		Name:        "kcore",
		Title:       "KCore",
		Description: "k-core decomposition by synchronous peeling (directed in-degrees)",
		Uses:        ParamK,
		Defaults:    Params{K: 2},
		New: func(g *graph.Graph, p Params) (Program, error) {
			return NewKCore(g, p.K), nil
		},
		MaxIters: func(Params) int { return 1 << 30 },
		Reference: func(g *graph.Graph, p Params) []uint64 {
			return ReferenceKCore(g, p.K)
		},
		Summary: func(_ Params, props []uint64) []Stat {
			n := InCore(props)
			return []Stat{{Key: "in_kcore", Label: "In k-core", Value: n,
				Text: fmt.Sprintf("%d of %d", n, len(props))}}
		},
		Values: func(props []uint64) any { return CoreMembership(props) },
		VertexText: func(props []uint64, v int) string {
			if props[v] == KCoreDead {
				return "0"
			}
			return "1"
		},
	})

	MustRegister(Entry{
		Name:        "lp",
		Title:       "LabelPropagation",
		Description: "community detection by salted min-hash label propagation",
		Uses:        ParamIters,
		Defaults:    Params{Iters: 16},
		New: func(_ *graph.Graph, _ Params) (Program, error) {
			return NewLabelProp(), nil
		},
		MaxIters: func(p Params) int { return p.Iters },
		Reference: func(g *graph.Graph, p Params) []uint64 {
			return ReferenceLabelProp(g, p.Iters)
		},
		Summary: func(_ Params, props []uint64) []Stat {
			n := DistinctLabels(props)
			return []Stat{{Key: "labels", Label: "Labels", Value: n, Text: fmt.Sprintf("%d", n)}}
		},
		Values: func(props []uint64) any { return Labels(props) },
		VertexText: func(props []uint64, v int) string {
			return fmt.Sprintf("%d", uint32(props[v]))
		},
	})

	MustRegister(Entry{
		Name:        "ppr",
		Title:       "PersonalizedPageRank",
		Description: "PageRank with all teleport and dangling mass returned to root",
		Uses:        ParamIters | ParamRoot,
		Defaults:    Params{Iters: 16},
		FloatLanes:  true,
		New: func(g *graph.Graph, p Params) (Program, error) {
			if err := checkRoot(g, p.Root); err != nil {
				return nil, err
			}
			return NewPersonalizedPageRank(g, p.Root), nil
		},
		MaxIters: func(p Params) int { return p.Iters },
		Reference: func(g *graph.Graph, p Params) []uint64 {
			return floatLanes(ReferencePPR(g, 0.85, p.Root, p.Iters))
		},
		Summary: func(_ Params, props []uint64) []Stat { return rankStat("PPR Sum", props) },
		Values:  func(props []uint64) any { return Ranks(props) },
		VertexText: func(props []uint64, v int) string {
			return fmt.Sprintf("%.12g", asF64(props[v]))
		},
		IncrementalSeed: seedRankDirect,
	})
}
