package apps

import (
	"strings"
	"testing"
)

// The registry's canonical-parameter derivation is the cache-key soundness
// contract: two requests that differ only in fields an app ignores MUST
// render identically (they would coalesce to one run), and two requests
// that differ in a field the app reads MUST render differently (they are
// different runs). The table is driven off the registry itself, so a newly
// registered app is covered automatically.

func TestCanonicalZeroesIgnoredFields(t *testing.T) {
	base := Params{Iters: 5, Root: 1, K: 3}
	for _, ent := range All() {
		t.Run(ent.Name, func(t *testing.T) {
			want := ent.Canonical(base)
			// Varying an ignored field must not move the key.
			for field, bump := range map[ParamField]Params{
				ParamIters: {Iters: 9, Root: base.Root, K: base.K},
				ParamRoot:  {Iters: base.Iters, Root: 7, K: base.K},
				ParamK:     {Iters: base.Iters, Root: base.Root, K: 8},
			} {
				if ent.Uses&field != 0 {
					continue
				}
				if got := ent.Canonical(bump); got != want {
					t.Errorf("ignored field %b changed key: %q vs %q", field, got, want)
				}
			}
			// Varying a used field must move the key.
			for field, bump := range map[ParamField]Params{
				ParamIters: {Iters: 6, Root: base.Root, K: base.K},
				ParamRoot:  {Iters: base.Iters, Root: 2, K: base.K},
				ParamK:     {Iters: base.Iters, Root: base.Root, K: 4},
			} {
				if ent.Uses&field == 0 {
					continue
				}
				if got := ent.Canonical(bump); got == want {
					t.Errorf("used field %b did not change key %q", field, got)
				}
			}
		})
	}
}

func TestCanonicalAppliesDefaults(t *testing.T) {
	for _, ent := range All() {
		if got, want := ent.Canonical(Params{}), ent.Canonical(ent.Defaults); got != want {
			t.Errorf("%s: unset params render %q, defaults render %q", ent.Name, got, want)
		}
	}
}

func TestNormalizeZeroUnusedContract(t *testing.T) {
	p := Params{Iters: 5, Root: 1, K: 3}
	for _, ent := range All() {
		z := ent.ZeroUnused(p)
		if ent.Uses&ParamIters == 0 && z.Iters != 0 {
			t.Errorf("%s: unused Iters survived ZeroUnused", ent.Name)
		}
		if ent.Uses&ParamRoot == 0 && z.Root != 0 {
			t.Errorf("%s: unused Root survived ZeroUnused", ent.Name)
		}
		if ent.Uses&ParamK == 0 && z.K != 0 {
			t.Errorf("%s: unused K survived ZeroUnused", ent.Name)
		}
		n := ent.Normalize(Params{})
		if ent.Uses&ParamIters != 0 && n.Iters != ent.Defaults.Iters {
			t.Errorf("%s: Normalize left Iters %d, want default %d", ent.Name, n.Iters, ent.Defaults.Iters)
		}
		if ent.Uses&ParamK != 0 && n.K != ent.Defaults.K {
			t.Errorf("%s: Normalize left K %d, want default %d", ent.Name, n.K, ent.Defaults.K)
		}
	}
}

func TestLookupAndNames(t *testing.T) {
	want := []string{"bfs", "cc", "kcore", "lp", "ppr", "pr", "sssp", "tc", "wpr"}
	got := Names()
	if len(got) < len(want) {
		t.Fatalf("Names() = %v, want at least the nine built-ins %v", got, want)
	}
	for _, name := range want {
		ent, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if ent.Name != name {
			t.Errorf("Lookup(%q).Name = %q", name, ent.Name)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup of unknown app succeeded")
	} else if !strings.Contains(err.Error(), "unknown app") || !strings.Contains(err.Error(), "pr") {
		t.Errorf("unknown-app error %q should name the registered apps", err)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Names() not sorted: %v", got)
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	if err := Register(Entry{}); err == nil {
		t.Error("registering an empty entry succeeded")
	}
	if err := Register(All()[0]); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate registration: err = %v", err)
	}
	ent := All()[0]
	ent.Name = "incomplete-test-entry"
	ent.Reference = nil
	if err := Register(ent); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Errorf("incomplete registration: err = %v", err)
	}
}

func TestInfoSchemas(t *testing.T) {
	schema := func(name string) Info {
		ent, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		return ent.Info()
	}
	if got := schema("pr"); len(got.Params) != 1 || got.Params[0] != "iters" || got.Defaults["iters"] != 16 {
		t.Errorf("pr schema = %+v", got)
	}
	if got := schema("cc"); len(got.Params) != 0 || got.NeedsWeights {
		t.Errorf("cc schema = %+v", got)
	}
	if got := schema("kcore"); len(got.Params) != 1 || got.Params[0] != "k" || got.Defaults["k"] != 2 {
		t.Errorf("kcore schema = %+v", got)
	}
	if got := schema("ppr"); len(got.Params) != 2 {
		t.Errorf("ppr schema = %+v", got)
	}
	for _, name := range []string{"wpr", "sssp"} {
		if !schema(name).NeedsWeights {
			t.Errorf("%s schema should require weights", name)
		}
	}
	for _, name := range []string{"tc", "kcore", "lp", "ppr", "pr", "cc", "bfs"} {
		if schema(name).NeedsWeights {
			t.Errorf("%s schema should not require weights", name)
		}
	}
}
