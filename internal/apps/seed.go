package apps

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Incremental seed planning (DESIGN.md §15). An Entry that can warm-start
// from a predecessor version's result sets IncrementalSeed; given the new
// graph, the predecessor's final lanes, and the edge operations connecting
// the two versions, the planner either produces a SeedPlan or returns an
// error naming why a full recompute is required. Every rule here is
// conservative: the planner may only accept a delta when the seeded run is
// provably equivalent to a cold run on the new graph (exact for integer
// lanes, within float-reassociation tolerance for float lanes). Anything it
// cannot prove falls back — a fallback costs time, never correctness.
//
// Fallback taxonomy (the sentinel errors below):
//
//   - ErrSeedShape: the predecessor lanes cannot be a prefix of the new
//     vertex space (replace/delete slipped through, or corrupt input).
//   - ErrSeedDeletes: the delta removes edges and the app's values can only
//     decrease monotonically under the engine — a deletion may need values
//     to rise (a split component, a lengthened path), which seeded
//     iteration cannot express.
//   - ErrSeedRaises: an upsert may raise an existing edge's weight on a
//     load-bearing shortest path (sssp) — same monotonicity problem.
//   - ErrSeedTopology: the delta demonstrably changes topology that a
//     direct (zero-iteration) plan requires unchanged (pr/ppr), or changes
//     the BFS tree (new reachable vertex, shorter level, smaller parent).
//   - ErrSeedUnknown: the predecessor's exact counts are unknown, so a rule
//     that compares them cannot run.
var (
	ErrSeedShape    = errors.New("apps: seed: predecessor shape mismatch")
	ErrSeedDeletes  = errors.New("apps: seed: delta contains deletions")
	ErrSeedRaises   = errors.New("apps: seed: delta may raise a shortest-path distance")
	ErrSeedTopology = errors.New("apps: seed: delta changes result-bearing topology")
	ErrSeedUnknown  = errors.New("apps: seed: predecessor counts unknown")
)

// SeedInput is what a planner sees: the successor graph a query is about to
// run on, the normalized params, the predecessor version's final property
// lanes, and the delta connecting predecessor to successor. The predecessor
// graph itself is NOT available — by the time a query arrives the old
// version's materialized form may be gone — so every rule must be stated in
// terms of the ops, the predecessor lanes, and the recorded counts.
type SeedInput struct {
	// Graph is the new (successor) version's edge list.
	Graph *graph.Graph
	// Params are the normalized run parameters (identical to the
	// predecessor run's, by cache-key construction).
	Params Params
	// Pred holds the predecessor version's final property lanes.
	Pred []uint64
	// Ops are the acknowledged edge operations connecting the predecessor
	// view to the new view, in log order (last-writer-wins per pair).
	Ops []graph.EdgeOp
	// FromEdges is the predecessor's edge count; FromCountsKnown reports
	// whether it is exact (planners needing it must require this).
	FromEdges       int
	FromCountsKnown bool
}

// SeedPlan is a planner's accepted warm start.
type SeedPlan struct {
	// Props are the starting lanes for the new graph (length =
	// Graph.NumVertices).
	Props []uint64
	// Frontier lists the delta-touched vertices active in the first
	// iteration (unused for Direct plans).
	Frontier []uint32
	// Direct means Props already IS the new version's result: run zero
	// iterations. Used when the delta provably does not change the result
	// (pr/ppr over unchanged topology, bfs when no tree edge moved).
	Direct bool
}

// finalOps resolves the batch to its last-writer-wins outcome: the final
// operation per (src, dst) pair, in first-occurrence order. Planner rules
// reason about surviving operations — an edge inserted then deleted within
// the delta never existed as far as the successor graph is concerned.
func finalOps(ops []graph.EdgeOp) []graph.EdgeOp {
	type pair struct{ src, dst uint32 }
	last := make(map[pair]int, len(ops))
	for i, op := range ops {
		last[pair{op.Src, op.Dst}] = i
	}
	out := make([]graph.EdgeOp, 0, len(last))
	for i, op := range ops {
		if last[pair{op.Src, op.Dst}] == i {
			out = append(out, op)
		}
	}
	return out
}

// extendLanes returns pred extended to n lanes, filling new vertices via
// fill(v). It fails with ErrSeedShape when pred is longer than n — vertex
// counts only ever grow along a lineage, so a shrink means the input is not
// actually a predecessor.
func extendLanes(pred []uint64, n int, fill func(v int) uint64) ([]uint64, error) {
	if len(pred) > n {
		return nil, fmt.Errorf("%w: predecessor has %d lanes, new graph %d vertices", ErrSeedShape, len(pred), n)
	}
	props := make([]uint64, n)
	copy(props, pred)
	for v := len(pred); v < n; v++ {
		props[v] = fill(v)
	}
	return props, nil
}

// deltaFrontier collects the unique endpoints of ops, in first-occurrence
// order. Sources must be active so their values flow across the delta's
// edges in the first iteration; destinations are included so pull-direction
// iterations gather them immediately.
func deltaFrontier(ops []graph.EdgeOp, n int) []uint32 {
	seen := make(map[uint32]struct{}, 2*len(ops))
	out := make([]uint32, 0, 2*len(ops))
	add := func(v uint32) {
		if int(v) >= n {
			return
		}
		if _, dup := seen[v]; !dup {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	for _, op := range ops {
		add(op.Src)
		add(op.Dst)
	}
	return out
}

// seedRankDirect is the pr/ppr planner. A fixed-iteration PageRank cannot be
// warm-started within tolerance — seeding changes the trajectory, and after
// k damped iterations the results differ by O(0.85^k·|seed-x0|), far above
// 1e-9 — so the only incremental win is recognizing a no-op delta: no
// surviving deletions, no new vertices, and an unchanged edge count mean
// every surviving operation re-asserted an existing (src, dst) pair
// (weights may have changed, which rank ignores), so the topology is
// unchanged and the predecessor result IS the new result.
func seedRankDirect(in SeedInput) (*SeedPlan, error) {
	n := in.Graph.NumVertices
	if len(in.Pred) != n {
		return nil, fmt.Errorf("%w: %d lanes for %d vertices", ErrSeedShape, len(in.Pred), n)
	}
	if !in.FromCountsKnown {
		return nil, ErrSeedUnknown
	}
	if in.Graph.NumEdges() != in.FromEdges {
		return nil, fmt.Errorf("%w: edge count %d -> %d", ErrSeedTopology, in.FromEdges, in.Graph.NumEdges())
	}
	for _, op := range finalOps(in.Ops) {
		if op.Delete {
			return nil, ErrSeedDeletes
		}
	}
	// No deletions and an equal edge count: every surviving upsert collapsed
	// onto exactly one pre-existing edge (a genuinely new pair, or a pair
	// with base duplicates, would change the count). Topology identical.
	props := make([]uint64, n)
	copy(props, in.Pred)
	return &SeedPlan{Props: props, Direct: true}, nil
}

// seedCC is the connected-components planner. Labels are a min fixpoint:
// the predecessor labels are correct for the old edges, insertions can only
// lower labels, and lowering propagates from the delta's endpoints — so
// seeding the predecessor labels (own-id for new vertices) with the delta
// endpoints as the frontier converges to exactly the cold fixpoint.
// Deletions may split a component, which needs labels to rise; the engine's
// min lattice cannot, so any surviving deletion falls back.
func seedCC(in SeedInput) (*SeedPlan, error) {
	fo := finalOps(in.Ops)
	for _, op := range fo {
		if op.Delete {
			return nil, ErrSeedDeletes
		}
	}
	n := in.Graph.NumVertices
	props, err := extendLanes(in.Pred, n, func(v int) uint64 { return uint64(v) })
	if err != nil {
		return nil, err
	}
	return &SeedPlan{Props: props, Frontier: deltaFrontier(fo, n)}, nil
}

// seedSSSP is the shortest-paths planner. Distances are a min fixpoint over
// d(v) = min(d(u) + w(u,v)); the predecessor distances upper-bound the new
// fixpoint as long as no constraint weakened. A deletion weakens one
// outright. An upsert (u,v,w) may be a weight *raise* on an existing edge;
// that only matters when the old edge could have been load-bearing, which
// is excluded when d(u)+w ≤ d(v) (the new constraint alone caps v at its
// old distance) or when u was unreachable (the old edge, if any, carried
// nothing). Everything else falls back.
func seedSSSP(in SeedInput) (*SeedPlan, error) {
	fo := finalOps(in.Ops)
	pn := len(in.Pred)
	for _, op := range fo {
		if op.Delete {
			return nil, ErrSeedDeletes
		}
		if op.Weight < 0 {
			// Negative weights void the monotone-relaxation argument.
			return nil, fmt.Errorf("%w: negative weight %g", ErrSeedRaises, op.Weight)
		}
		if int(op.Src) >= pn || int(op.Dst) >= pn {
			continue // new endpoint: no pre-existing edge to have weakened
		}
		du, dv := asF64(in.Pred[op.Src]), asF64(in.Pred[op.Dst])
		if du+float64(op.Weight) > dv {
			// Could be a raise of a load-bearing edge; without the old graph
			// we cannot tell, so fall back. (du = +Inf implies the old edge
			// carried nothing, but then du+w > dv triggers only when dv is
			// finite — and an edge from an unreachable u to a reached v is
			// never load-bearing, so that case is safe.)
			if !isInf(du) {
				return nil, fmt.Errorf("%w: op (%d->%d, w=%g)", ErrSeedRaises, op.Src, op.Dst, op.Weight)
			}
		}
	}
	n := in.Graph.NumVertices
	props, err := extendLanes(in.Pred, n, func(int) uint64 { return Inf })
	if err != nil {
		return nil, err
	}
	return &SeedPlan{Props: props, Frontier: deltaFrontier(fo, n)}, nil
}

func isInf(x float64) bool { return x > 1.7976931348623157e308 }

// seedBFS is the BFS planner. BFS parents are not a simple min lattice —
// Apply adopts a parent exactly once — so genuine warm iteration is unsafe.
// Instead the planner proves the delta cannot change the result and returns
// a direct plan: it reconstructs each vertex's depth from the predecessor
// parent forest, then checks every surviving operation against the BFS
// invariants. An insertion (u,v) changes nothing unless u was reached and
// it either reaches a new vertex, shortens v's level, or supplies a
// smaller same-level parent. A deletion (u,v) changes nothing unless it
// removes v's actual tree edge. Any violated check falls back to full.
func seedBFS(in SeedInput) (*SeedPlan, error) {
	pn := len(in.Pred)
	root := in.Params.Root
	if int(root) >= pn || in.Pred[root] != uint64(root) {
		return nil, fmt.Errorf("%w: root %d not self-parented in predecessor", ErrSeedShape, root)
	}
	depth, err := bfsDepths(in.Pred, root)
	if err != nil {
		return nil, err
	}
	for _, op := range finalOps(in.Ops) {
		if op.Delete {
			// Only the tree edge parent[v] == u matters; the root's
			// self-parent is virtual and survives any edge deletion.
			if int(op.Dst) < pn && op.Dst != root && in.Pred[op.Dst] == uint64(op.Src) {
				return nil, fmt.Errorf("%w: deletes tree edge %d->%d", ErrSeedDeletes, op.Src, op.Dst)
			}
			continue
		}
		if int(op.Src) >= pn || depth[op.Src] < 0 {
			continue // edge from an unreached (or new) vertex carries nothing
		}
		du := depth[op.Src]
		if int(op.Dst) >= pn || depth[op.Dst] < 0 {
			return nil, fmt.Errorf("%w: edge %d->%d reaches new vertex", ErrSeedTopology, op.Src, op.Dst)
		}
		dv := depth[op.Dst]
		switch {
		case du+1 < dv:
			return nil, fmt.Errorf("%w: edge %d->%d shortens level %d to %d", ErrSeedTopology, op.Src, op.Dst, dv, du+1)
		case du+1 == dv && uint64(op.Src) < in.Pred[op.Dst]:
			return nil, fmt.Errorf("%w: edge %d->%d lowers parent id", ErrSeedTopology, op.Src, op.Dst)
		}
	}
	props, err := extendLanes(in.Pred, in.Graph.NumVertices, func(int) uint64 { return NoParent })
	if err != nil {
		return nil, err
	}
	return &SeedPlan{Props: props, Direct: true}, nil
}

// bfsDepths reconstructs per-vertex BFS depths from a parent forest (-1 for
// unreached). It rejects forests that are not actually forests — a cycle, a
// parent out of range, a reached vertex hanging off an unreached one — with
// ErrSeedShape, since depth arithmetic on them proves nothing.
func bfsDepths(pred []uint64, root uint32) ([]int32, error) {
	const unknown = int32(-2)
	depth := make([]int32, len(pred))
	for i := range depth {
		depth[i] = unknown
	}
	depth[root] = 0
	var path []uint32
	for v := range pred {
		if depth[v] != unknown {
			continue
		}
		u := uint32(v)
		path = path[:0]
		for depth[u] == unknown {
			p := pred[u]
			if p == NoParent {
				depth[u] = -1
				break
			}
			if p >= uint64(len(pred)) || p == uint64(u) {
				return nil, fmt.Errorf("%w: vertex %d has invalid parent %#x", ErrSeedShape, u, p)
			}
			path = append(path, u)
			u = uint32(p)
			if len(path) > len(pred) {
				return nil, fmt.Errorf("%w: parent cycle at vertex %d", ErrSeedShape, v)
			}
		}
		d := depth[u]
		for i := len(path) - 1; i >= 0; i-- {
			if d == -1 {
				// A reached-looking vertex chained to an unreached parent:
				// inconsistent forest.
				return nil, fmt.Errorf("%w: vertex %d parented to unreached %d", ErrSeedShape, path[i], u)
			}
			d++
			depth[path[i]] = d
		}
	}
	return depth, nil
}
