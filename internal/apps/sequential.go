package apps

import (
	"repro/internal/csr"
	"repro/internal/frontier"
	"repro/internal/graph"
)

// Result carries the output of a program run.
type Result struct {
	// Props holds the final per-vertex property lanes.
	Props []uint64
	// Iterations is the number of Edge+Vertex rounds executed.
	Iterations int
}

// RunSequential executes a program with the canonical single-threaded
// two-phase loop (Listing 2's pull pattern plus a Vertex phase). It is the
// semantic specification every parallel engine and baseline is tested
// against.
func RunSequential(p Program, g *graph.Graph, maxIters int) Result {
	csc := csr.FromGraph(g, true)
	return RunSequentialCSC(p, csc, maxIters)
}

// RunSequentialCSC is RunSequential over a prebuilt by-destination matrix.
func RunSequentialCSC(p Program, csc *csr.Matrix, maxIters int) Result {
	n := csc.N
	props := make([]uint64, n)
	accum := make([]uint64, n)
	p.InitProps(props)
	front := frontier.NewDense(n)
	conv := frontier.NewDense(n)
	next := frontier.NewDense(n)
	p.InitFrontier(front)
	p.InitConverged(conv)
	usesFrontier := p.UsesFrontier()
	tracksConv := p.TracksConverged()

	iters := 0
	for iters < maxIters {
		if usesFrontier && front.Empty() {
			break
		}
		p.PreIteration(props)
		// Edge phase: pull along in-edges.
		for v := uint32(0); int(v) < n; v++ {
			acc := p.Identity()
			if tracksConv && conv.Contains(v) {
				accum[v] = acc
				continue
			}
			neigh := csc.Edges(v)
			weights := csc.EdgeWeights(v)
			for i, s := range neigh {
				if usesFrontier && !front.Contains(s) {
					continue
				}
				var w float32
				if weights != nil {
					w = weights[i]
				}
				acc = p.Combine(acc, p.Message(props[s], s, w))
			}
			accum[v] = acc
		}
		// Vertex phase.
		next.Clear()
		for v := uint32(0); int(v) < n; v++ {
			nv, changed := p.Apply(props[v], accum[v], v)
			props[v] = nv
			if changed {
				next.Add(v)
				if tracksConv {
					conv.Add(v)
				}
			}
		}
		front.CopyFrom(next)
		iters++
	}
	return Result{Props: props, Iterations: iters}
}
