package apps

import (
	"sort"

	"repro/internal/frontier"
	"repro/internal/graph"
)

// TriangleCount counts, per vertex, the triangles of the graph's undirected
// simple closure (edge direction ignored, parallel edges and self-loops
// dropped). The constructor prebuilds sorted unique adjacency lists; all the
// counting work happens in the Vertex phase, where Apply intersects the
// vertex's neighbor list with each neighbor's — the node-iterator algorithm.
// Apply is a pure function of the vertex id, so the program is
// bit-deterministic at any worker count by construction. The Edge phase
// carries no information (Message is the additive identity); the program
// completes in exactly one iteration (the registry entry caps MaxIters at 1).
type TriangleCount struct {
	adj [][]uint32 // sorted unique undirected neighbors, self-loops dropped
}

// NewTriangleCount creates a triangle-counting program for graph g.
func NewTriangleCount(g *graph.Graph) *TriangleCount {
	adj := make([][]uint32, g.NumVertices)
	for _, e := range g.Edges {
		if e.Src == e.Dst {
			continue
		}
		adj[e.Src] = append(adj[e.Src], e.Dst)
		adj[e.Dst] = append(adj[e.Dst], e.Src)
	}
	for v := range adj {
		n := adj[v]
		sort.Slice(n, func(i, j int) bool { return n[i] < n[j] })
		out := n[:0]
		for i, u := range n {
			if i == 0 || u != n[i-1] {
				out = append(out, u)
			}
		}
		adj[v] = out
	}
	return &TriangleCount{adj: adj}
}

// Name implements Program.
func (t *TriangleCount) Name() string { return "TriangleCount" }

// Identity implements Program: the additive identity.
func (t *TriangleCount) Identity() uint64 { return 0 }

// Combine implements Program: addition (trivially order-free).
func (t *TriangleCount) Combine(a, b uint64) uint64 { return a + b }

// Message implements Program: the Edge phase carries nothing — counting is
// Vertex-phase work over the prebuilt adjacency.
func (t *TriangleCount) Message(_ uint64, _ uint32, _ float32) uint64 { return 0 }

// Apply implements Program: local triangle count of v. Each neighbor u
// contributes |N(v) ∩ N(u)| common neighbors; every triangle through v is
// found via both of its other corners, so the sum is twice v's count.
func (t *TriangleCount) Apply(_, _ uint64, v uint32) (uint64, bool) {
	nv := t.adj[v]
	var twice uint64
	for _, u := range nv {
		twice += intersectCount(nv, t.adj[u])
	}
	return twice / 2, false
}

// intersectCount returns |a ∩ b| for sorted unique lists. Small-vs-large
// intersections gallop with binary search so hub-adjacent vertices do not
// pay the hub's full degree; similar sizes use a linear merge.
func intersectCount(a, b []uint32) uint64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	var n uint64
	if len(b) >= 32*len(a) {
		for _, x := range a {
			i := sort.Search(len(b), func(i int) bool { return b[i] >= x })
			if i < len(b) && b[i] == x {
				n++
			}
		}
		return n
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// InitProps implements Program.
func (t *TriangleCount) InitProps(props []uint64) {
	for i := range props {
		props[i] = 0
	}
}

// PreIteration implements Program.
func (t *TriangleCount) PreIteration([]uint64) {}

// InitFrontier implements Program: every vertex counts.
func (t *TriangleCount) InitFrontier(f *frontier.Dense) { f.Fill() }

// InitConverged implements Program.
func (t *TriangleCount) InitConverged(*frontier.Dense) {}

// UsesFrontier implements Program.
func (t *TriangleCount) UsesFrontier() bool { return false }

// TracksConverged implements Program.
func (t *TriangleCount) TracksConverged() bool { return false }

// SkipEqualWrites implements Program.
func (t *TriangleCount) SkipEqualWrites() bool { return false }

// Weighted implements Program.
func (t *TriangleCount) Weighted() bool { return false }

// Triangles returns the global triangle count from per-vertex counts (each
// triangle is counted at each of its three corners).
func Triangles(props []uint64) uint64 {
	var sum uint64
	for _, c := range props {
		sum += c
	}
	return sum / 3
}
