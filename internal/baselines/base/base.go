// Package base holds the execution state shared by the reimplemented
// comparison frameworks (Ligra, Polymer, GraphMat, X-Stream). Each framework
// keeps its own engine pattern — that is the variable Figs 11–13 isolate —
// but property arrays, frontier bookkeeping, and the synchronous Vertex
// phase are common scaffolding.
package base

import (
	"sync/atomic"

	"repro/internal/apps"
	"repro/internal/frontier"
	"repro/internal/sched"
)

// State is the per-run mutable state of a baseline framework.
type State struct {
	// N is the vertex count.
	N int
	// Props and Accum are the property and aggregation lanes.
	Props, Accum []uint64
	// Front, Next, and Conv are the current frontier, the frontier under
	// construction, and the converged set.
	Front, Next, Conv *frontier.Dense
	// Pool is the worker pool shared by all phases.
	Pool *sched.Pool
}

// NewState allocates state for n vertices on the given pool.
func NewState(n int, pool *sched.Pool) *State {
	return &State{
		N:     n,
		Props: make([]uint64, n),
		Accum: make([]uint64, n),
		Front: frontier.NewDense(n),
		Next:  frontier.NewDense(n),
		Conv:  frontier.NewDense(n),
		Pool:  pool,
	}
}

// Init resets the state for a fresh run of p.
func (s *State) Init(p apps.Program) {
	p.InitProps(s.Props)
	id := p.Identity()
	for i := range s.Accum {
		s.Accum[i] = id
	}
	s.Front.Clear()
	s.Next.Clear()
	s.Conv.Clear()
	p.InitFrontier(s.Front)
	p.InitConverged(s.Conv)
}

// CASCombine merges msg into addr with a compare-and-swap loop, optionally
// skipping the write when the combined value is unchanged.
func CASCombine(p apps.Program, addr *uint64, msg uint64, skipEqual bool) {
	for {
		old := atomic.LoadUint64(addr)
		merged := p.Combine(old, msg)
		if skipEqual && merged == old {
			return
		}
		if atomic.CompareAndSwapUint64(addr, old, merged) {
			return
		}
	}
}

// ApplyAll runs the Vertex phase over every vertex in parallel, resets the
// accumulators, rebuilds the next frontier, and swaps it in. It returns the
// number of changed vertices.
func (s *State) ApplyAll(p apps.Program) int {
	identity := p.Identity()
	tracksConv := p.TracksConverged()
	s.Next.Clear()
	nextWords := s.Next.Words()
	convWords := s.Conv.Words()
	var changed atomic.Int64
	s.Pool.StaticFor(s.N, func(rg sched.Range, tid int) {
		local := int64(0)
		for v := rg.Lo; v < rg.Hi; v++ {
			nv, ch := p.Apply(s.Props[v], s.Accum[v], uint32(v))
			s.Props[v] = nv
			s.Accum[v] = identity
			if ch {
				local++
				atomic.OrUint64(&nextWords[v>>6], 1<<(uint(v)&63))
				if tracksConv {
					atomic.OrUint64(&convWords[v>>6], 1<<(uint(v)&63))
				}
			}
		}
		changed.Add(local)
	})
	s.Front, s.Next = s.Next, s.Front
	return int(changed.Load())
}

// ApplyCandidates runs the Vertex phase over a deduplicated candidate list
// only — the sparse-mode apply, where vertices that received no message
// cannot change. Candidates must be unique.
func (s *State) ApplyCandidates(p apps.Program, cands []uint32) int {
	identity := p.Identity()
	tracksConv := p.TracksConverged()
	s.Next.Clear()
	nextWords := s.Next.Words()
	convWords := s.Conv.Words()
	var changed atomic.Int64
	s.Pool.StaticFor(len(cands), func(rg sched.Range, tid int) {
		local := int64(0)
		for i := rg.Lo; i < rg.Hi; i++ {
			v := cands[i]
			nv, ch := p.Apply(s.Props[v], s.Accum[v], v)
			s.Props[v] = nv
			s.Accum[v] = identity
			if ch {
				local++
				atomic.OrUint64(&nextWords[v>>6], 1<<(v&63))
				if tracksConv {
					atomic.OrUint64(&convWords[v>>6], 1<<(v&63))
				}
			}
		}
		changed.Add(local)
	})
	s.Front, s.Next = s.Next, s.Front
	return int(changed.Load())
}

// Result packages a finished baseline run.
type Result struct {
	// Props holds final property lanes.
	Props []uint64
	// Iterations counts Edge+Vertex rounds.
	Iterations int
	// SparseIterations counts rounds served by a sparse (push) engine, for
	// frameworks that switch representations.
	SparseIterations int
}
