package base

import (
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/gen"
	"repro/internal/sched"
)

func withState(t *testing.T, n int) (*State, func()) {
	t.Helper()
	pool := sched.NewPool(2)
	return NewState(n, pool), pool.Close
}

func TestInitResetsEverything(t *testing.T) {
	st, done := withState(t, 50)
	defer done()
	p := apps.NewBFS(3)
	st.Init(p)
	if st.Props[3] != 3 || st.Props[0] != apps.NoParent {
		t.Error("props not initialized")
	}
	if !st.Front.Contains(3) || st.Front.Count() != 1 {
		t.Error("frontier not seeded")
	}
	if !st.Conv.Contains(3) {
		t.Error("converged not seeded")
	}
	for v, a := range st.Accum {
		if a != p.Identity() {
			t.Fatalf("accum[%d] = %#x", v, a)
		}
	}
	// Re-init with a different program fully resets.
	g := gen.ErdosRenyi(50, 100, 1)
	st.Init(apps.NewPageRank(g))
	if st.Front.Count() != 50 {
		t.Error("re-init frontier wrong")
	}
}

func TestCASCombineConcurrentMin(t *testing.T) {
	p := apps.NewConnComp()
	var slot uint64 = ^uint64(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				CASCombine(p, &slot, uint64(w*1000+i), true)
			}
		}(w)
	}
	wg.Wait()
	if slot != 0 {
		t.Errorf("concurrent min = %d, want 0", slot)
	}
}

func TestApplyAllBuildsFrontier(t *testing.T) {
	st, done := withState(t, 40)
	defer done()
	p := apps.NewConnComp()
	st.Init(p)
	// Feed aggregates: vertices 0..9 get label 0 (changed for 1..9), rest
	// identity.
	for v := 1; v < 10; v++ {
		st.Accum[v] = 0
	}
	changed := st.ApplyAll(p)
	if changed != 9 {
		t.Errorf("changed = %d, want 9", changed)
	}
	if st.Front.Count() != 9 || st.Front.Contains(0) || !st.Front.Contains(5) {
		t.Errorf("frontier wrong: count %d", st.Front.Count())
	}
	// Accumulators reset.
	for v, a := range st.Accum {
		if a != p.Identity() {
			t.Fatalf("accum[%d] not reset", v)
		}
	}
}

func TestApplyCandidatesOnlyTouchesCandidates(t *testing.T) {
	st, done := withState(t, 30)
	defer done()
	p := apps.NewBFS(0)
	st.Init(p)
	st.Accum[5] = 0 // message: parent candidate 0
	st.Accum[9] = 0
	changed := st.ApplyCandidates(p, []uint32{5, 9})
	if changed != 2 {
		t.Errorf("changed = %d, want 2", changed)
	}
	if st.Props[5] != 0 || st.Props[9] != 0 {
		t.Error("candidates not applied")
	}
	if !st.Conv.Contains(5) || !st.Conv.Contains(9) {
		t.Error("converged not tracked")
	}
	if !st.Front.Contains(5) || st.Front.Count() != 2 {
		t.Error("next frontier wrong")
	}
}

func TestApplyAllParallelMatchesSerial(t *testing.T) {
	g := gen.RMAT(8, 1000, gen.DefaultRMAT, 4)
	serialPool := sched.NewPool(1)
	parallelPool := sched.NewPool(4)
	defer serialPool.Close()
	defer parallelPool.Close()
	mk := func(pool *sched.Pool) []uint64 {
		st := NewState(g.NumVertices, pool)
		p := apps.NewConnComp()
		st.Init(p)
		for v := 0; v < g.NumVertices; v += 3 {
			st.Accum[v] = uint64(v % 7)
		}
		st.ApplyAll(p)
		return st.Props
	}
	a, b := mk(serialPool), mk(parallelPool)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("parallel ApplyAll diverges at %d", v)
		}
	}
}
