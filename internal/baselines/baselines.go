// Package baselines unifies the four reimplemented comparison frameworks
// behind one interface so the figure harness can sweep them. See the
// subpackages for each framework's engine pattern.
package baselines

import (
	"repro/internal/apps"
	"repro/internal/baselines/base"
	"repro/internal/baselines/graphmat"
	"repro/internal/baselines/ligra"
	"repro/internal/baselines/polymer"
	"repro/internal/baselines/xstream"
	"repro/internal/graph"
	"repro/internal/numa"
)

// Framework is a prepared graph-processing engine instance.
type Framework interface {
	// Name identifies the framework in reports.
	Name() string
	// Run executes program p for at most maxIters rounds.
	Run(p apps.Program, maxIters int) base.Result
	// Close releases worker resources.
	Close()
}

// NewLigra builds standard Ligra (sparse/dense switching, sequential pull
// inner loop).
func NewLigra(g *graph.Graph, workers int) Framework {
	return ligra.New(g, ligra.Config{Workers: workers})
}

// NewLigraDense builds the forced-dense Ligra variant of Figs 12–13.
func NewLigraDense(g *graph.Graph, workers int) Framework {
	return ligra.New(g, ligra.Config{Workers: workers, Mode: ligra.ForceDensePull})
}

// NewLigraPush builds the push-only Ligra variant of Fig 11.
func NewLigraPush(g *graph.Graph, workers int) Framework {
	return ligra.New(g, ligra.Config{Workers: workers, Mode: ligra.ForcePush})
}

// NewLigraLoops builds Ligra in one of the Fig 1 loop-parallelization
// configurations.
func NewLigraLoops(g *graph.Graph, workers int, loops ligra.LoopConfig) Framework {
	return ligra.New(g, ligra.Config{Workers: workers, Loops: loops})
}

// NewPolymer builds the NUMA-partitioned Polymer reimplementation.
func NewPolymer(g *graph.Graph, topo numa.Topology) Framework {
	return polymer.New(g, polymer.Config{Topology: topo})
}

// NewGraphMat builds the SpMV-based GraphMat reimplementation; it fails on
// graphs exceeding 32-bit edge indexing.
func NewGraphMat(g *graph.Graph, workers int) (Framework, error) {
	return graphmat.New(g, graphmat.Config{Workers: workers})
}

// NewXStream builds the edge-centric X-Stream reimplementation (worker
// count rounded down to a power of two).
func NewXStream(g *graph.Graph, workers int) Framework {
	return xstream.New(g, xstream.Config{Workers: workers})
}
