package baselines

import (
	"errors"
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/baselines/graphmat"
	"repro/internal/baselines/ligra"
	"repro/internal/baselines/xstream"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numa"
)

type graphCase struct {
	name string
	g    *graph.Graph
}

func conformanceGraphs() []graphCase {
	return []graphCase{
		{"rmat", gen.RMAT(8, 1500, gen.DefaultRMAT, 1)},
		{"mesh", gen.Grid(10, 11, false, 2)},
	}
}

// frameworksUnder builds every framework at the given worker count.
func frameworksUnder(t *testing.T, g *graph.Graph, workers int) []Framework {
	t.Helper()
	gm, err := NewGraphMat(g, workers)
	if err != nil {
		t.Fatal(err)
	}
	return []Framework{
		NewLigra(g, workers),
		NewLigraDense(g, workers),
		NewLigraPush(g, workers),
		NewPolymer(g, numa.Topology{Nodes: 1, WorkersPerNode: workers}),
		NewPolymer(g, numa.Topology{Nodes: 2, WorkersPerNode: (workers + 1) / 2}),
		gm,
		NewXStream(g, workers),
	}
}

func TestAllFrameworksPageRank(t *testing.T) {
	const iters = 10
	for _, gc := range conformanceGraphs() {
		want := apps.Ranks(apps.RunSequential(apps.NewPageRank(gc.g), gc.g, iters).Props)
		for _, fw := range frameworksUnder(t, gc.g, 4) {
			t.Run(gc.name+"/"+fw.Name(), func(t *testing.T) {
				defer fw.Close()
				res := fw.Run(apps.NewPageRank(gc.g), iters)
				if res.Iterations != iters {
					t.Fatalf("ran %d iterations, want %d", res.Iterations, iters)
				}
				got := apps.Ranks(res.Props)
				for v := range want {
					if math.Abs(got[v]-want[v]) > 1e-10*(1+want[v]) {
						t.Fatalf("rank[%d] = %v, want %v", v, got[v], want[v])
					}
				}
			})
		}
	}
}

func TestAllFrameworksConnectedComponents(t *testing.T) {
	for _, gc := range conformanceGraphs() {
		want := apps.ReferenceComponents(gc.g)
		for _, fw := range frameworksUnder(t, gc.g, 4) {
			t.Run(gc.name+"/"+fw.Name(), func(t *testing.T) {
				defer fw.Close()
				got := apps.Components(fw.Run(apps.NewConnComp(), 1<<20).Props)
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("component[%d] = %d, want %d", v, got[v], want[v])
					}
				}
			})
		}
	}
}

func TestAllFrameworksBFS(t *testing.T) {
	for _, gc := range conformanceGraphs() {
		want := apps.ReferenceBFS(gc.g, 0)
		for _, fw := range frameworksUnder(t, gc.g, 4) {
			t.Run(gc.name+"/"+fw.Name(), func(t *testing.T) {
				defer fw.Close()
				got := fw.Run(apps.NewBFS(0), 1<<20)
				for v := range want {
					if got.Props[v] != want[v] {
						t.Fatalf("parent[%d] = %d, want %d", v, got.Props[v], want[v])
					}
				}
			})
		}
	}
}

func TestAllFrameworksSSSP(t *testing.T) {
	g := gen.AddUniformWeights(gen.RMAT(8, 1500, gen.DefaultRMAT, 3), 4)
	want := apps.ReferenceSSSP(g, 0)
	for _, fw := range frameworksUnder(t, g, 2) {
		t.Run(fw.Name(), func(t *testing.T) {
			defer fw.Close()
			got := apps.Distances(fw.Run(apps.NewSSSP(0), 1<<20).Props)
			for v := range want {
				if math.IsInf(want[v], 1) != math.IsInf(got[v], 1) {
					t.Fatalf("reachability of %d differs", v)
				}
				if !math.IsInf(want[v], 1) && math.Abs(got[v]-want[v]) > 1e-9 {
					t.Fatalf("dist[%d] = %v, want %v", v, got[v], want[v])
				}
			}
		})
	}
}

// TestLigraLoopConfigs verifies every Fig 1 configuration computes correct
// results (their difference is performance, not semantics — except NoSync,
// which is exact only single-threaded).
func TestLigraLoopConfigs(t *testing.T) {
	g := gen.RMAT(8, 1200, gen.DefaultRMAT, 5)
	wantPR := apps.Ranks(apps.RunSequential(apps.NewPageRank(g), g, 8).Props)
	wantBFS := apps.ReferenceBFS(g, 0)
	configs := []ligra.LoopConfig{ligra.PushS, ligra.PushP, ligra.PushPPullS, ligra.PushPPullP}
	for _, lc := range configs {
		t.Run(lc.String(), func(t *testing.T) {
			fw := NewLigraLoops(g, 4, lc)
			defer fw.Close()
			got := apps.Ranks(fw.Run(apps.NewPageRank(g), 8).Props)
			for v := range wantPR {
				if math.Abs(got[v]-wantPR[v]) > 1e-10*(1+wantPR[v]) {
					t.Fatalf("rank[%d] = %v, want %v", v, got[v], wantPR[v])
				}
			}
			bfs := fw.Run(apps.NewBFS(0), 1<<20)
			for v := range wantBFS {
				if bfs.Props[v] != wantBFS[v] {
					t.Fatalf("parent[%d] = %d, want %d", v, bfs.Props[v], wantBFS[v])
				}
			}
		})
	}
	// NoSync with one worker must be exact.
	fw := NewLigraLoops(g, 1, ligra.PushPPullPNoSync)
	defer fw.Close()
	got := apps.Ranks(fw.Run(apps.NewPageRank(g), 8).Props)
	for v := range wantPR {
		if math.Abs(got[v]-wantPR[v]) > 1e-10*(1+wantPR[v]) {
			t.Fatalf("NoSync/1 worker: rank[%d] = %v, want %v", v, got[v], wantPR[v])
		}
	}
}

func TestLigraUsesSparseEngine(t *testing.T) {
	// A long path keeps the frontier tiny: Ligra must serve BFS from the
	// sparse (push) engine.
	b := graph.NewBuilder(512)
	for v := uint32(0); v < 511; v++ {
		b.AddEdge(v, v+1)
	}
	g := b.MustBuild()
	fw := NewLigra(g, 2).(*ligra.Engine)
	defer fw.Close()
	res := fw.Run(apps.NewBFS(0), 1<<20)
	if res.SparseIterations == 0 {
		t.Error("Ligra never used its sparse engine on a path graph")
	}
	// The dense-only variant must not.
	fwd := NewLigraDense(g, 2).(*ligra.Engine)
	defer fwd.Close()
	resD := fwd.Run(apps.NewBFS(0), 1<<20)
	if resD.SparseIterations != 0 {
		t.Error("Ligra-Dense used a sparse iteration")
	}
}

func TestGraphMatEdgeLimit(t *testing.T) {
	g := gen.ErdosRenyi(50, 300, 1)
	_, err := graphmat.New(g, graphmat.Config{Workers: 1, MaxEdges: 100})
	if !errors.Is(err, graphmat.ErrTooManyEdges) {
		t.Fatalf("expected ErrTooManyEdges, got %v", err)
	}
	// Within the limit it must load.
	fw, err := graphmat.New(g, graphmat.Config{Workers: 1, MaxEdges: 300})
	if err != nil {
		t.Fatal(err)
	}
	fw.Close()
}

func TestXStreamPowerOfTwoWorkers(t *testing.T) {
	g := gen.ErdosRenyi(100, 400, 2)
	for _, c := range []struct{ req, want int }{{1, 1}, {2, 2}, {3, 2}, {4, 4}, {7, 4}} {
		e := xstream.New(g, xstream.Config{Workers: c.req})
		if e.Workers() != c.want {
			t.Errorf("workers %d rounded to %d, want %d", c.req, e.Workers(), c.want)
		}
		e.Close()
	}
}

func TestXStreamPartitioning(t *testing.T) {
	g := gen.ErdosRenyi(10000, 20000, 3)
	e := xstream.New(g, xstream.Config{Workers: 2, PartitionVertices: 1024})
	defer e.Close()
	if e.Partitions() != 10 {
		t.Errorf("partitions = %d, want 10", e.Partitions())
	}
	// Multiple partitions must still compute correct PageRank.
	want := apps.Ranks(apps.RunSequential(apps.NewPageRank(g), g, 3).Props)
	got := apps.Ranks(e.Run(apps.NewPageRank(g), 3).Props)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-10*(1+want[v]) {
			t.Fatalf("rank[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestPolymerMultiNodeAgreesWithSingle(t *testing.T) {
	g := gen.RMAT(8, 1000, gen.DefaultRMAT, 7)
	one := NewPolymer(g, numa.Topology{Nodes: 1, WorkersPerNode: 2})
	two := NewPolymer(g, numa.Topology{Nodes: 2, WorkersPerNode: 1})
	defer one.Close()
	defer two.Close()
	a := apps.Components(one.Run(apps.NewConnComp(), 1<<20).Props)
	b := apps.Components(two.Run(apps.NewConnComp(), 1<<20).Props)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("node-count changed CC result at %d", v)
		}
	}
}
