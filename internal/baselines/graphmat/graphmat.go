// Package graphmat reimplements the engine pattern of GraphMat (Sundaram et
// al., VLDB '15): graph applications mapped onto generalized sparse
// matrix-vector multiplication. The frontier is a sparse vector mask over a
// full-length scan — SpMV iterates the whole dimension and tests activity
// per element, which is exactly the frontier-handling inefficiency §6.3
// reports ("built on an engine intended for sparse matrix-vector
// multiplication and therefore does not handle the frontier as efficiently").
// Edges are indexed with 32-bit signed integers, reproducing the overflow
// that prevents GraphMat from loading uk-2007's 3.7 B edges.
package graphmat

import (
	"fmt"
	"math"

	"repro/internal/apps"
	"repro/internal/baselines/base"
	"repro/internal/graph"
	"repro/internal/sched"
)

// Config parameterizes the engine.
type Config struct {
	// Pool supplies workers; if nil one is created with Workers workers.
	Pool    *sched.Pool
	Workers int
	// MaxEdges caps the loadable edge count. The default is MaxInt32,
	// GraphMat 1.0's hard limit; tests lower it to exercise the guard.
	MaxEdges int64
}

// ErrTooManyEdges is returned when a graph exceeds the int32 edge-index
// space — the failure the paper reports for GraphMat on uk-2007.
var ErrTooManyEdges = fmt.Errorf("graphmat: edge count exceeds 32-bit index space")

// Engine is a prepared GraphMat instance for one graph.
type Engine struct {
	pool    *sched.Pool
	ownPool bool
	// The sparse matrix in 32-bit-indexed CSR form (sources × destinations).
	index []int32
	neigh []uint32
	w     []float32
	st    *base.State
}

// New prepares an engine, failing if the graph overflows 32-bit edge
// indexing.
func New(g *graph.Graph, cfg Config) (*Engine, error) {
	maxEdges := cfg.MaxEdges
	if maxEdges == 0 {
		maxEdges = math.MaxInt32
	}
	if int64(g.NumEdges()) > maxEdges {
		return nil, fmt.Errorf("%w: %d edges > %d", ErrTooManyEdges, g.NumEdges(), maxEdges)
	}
	e := &Engine{}
	if cfg.Pool != nil {
		e.pool = cfg.Pool
	} else {
		e.pool = sched.NewPool(cfg.Workers)
		e.ownPool = true
	}
	// Build the int32-indexed CSR directly.
	n := g.NumVertices
	e.index = make([]int32, n+1)
	for _, edge := range g.Edges {
		e.index[edge.Src+1]++
	}
	for v := 0; v < n; v++ {
		e.index[v+1] += e.index[v]
	}
	e.neigh = make([]uint32, g.NumEdges())
	if g.Weighted {
		e.w = make([]float32, g.NumEdges())
	}
	cursor := make([]int32, n)
	copy(cursor, e.index[:n])
	for _, edge := range g.Edges {
		pos := cursor[edge.Src]
		cursor[edge.Src]++
		e.neigh[pos] = edge.Dst
		if g.Weighted {
			e.w[pos] = edge.Weight
		}
	}
	e.st = base.NewState(n, e.pool)
	return e, nil
}

// Close releases the engine's pool if it owns one.
func (e *Engine) Close() {
	if e.ownPool {
		e.pool.Close()
	}
}

// Name identifies the framework.
func (e *Engine) Name() string { return "GraphMat" }

// Run executes p for at most maxIters SpMV rounds.
func (e *Engine) Run(p apps.Program, maxIters int) base.Result {
	e.st.Init(p)
	var res base.Result
	usesFrontier := p.UsesFrontier()
	for res.Iterations < maxIters {
		if usesFrontier && e.st.Front.Empty() {
			break
		}
		p.PreIteration(e.st.Props)
		e.spmv(p)
		// SpMV applies over the full vector regardless of frontier size —
		// the structural inefficiency mirrored from GraphMat.
		e.st.ApplyAll(p)
		res.Iterations++
	}
	res.Props = e.st.Props
	return res
}

// spmv is the generalized masked sparse matrix-vector product: scan every
// row (source vertex), test the mask bit, and scatter the row's non-zeros
// with atomics.
func (e *Engine) spmv(p apps.Program) {
	usesFrontier := p.UsesFrontier()
	tracksConv := p.TracksConverged()
	skipEqual := p.SkipEqualWrites()
	weighted := p.Weighted() && e.w != nil
	n := e.st.N
	chunk := sched.ChunkSize(n, sched.DefaultChunks(e.pool.Workers()))
	e.pool.DynamicFor(n, chunk, func(rg sched.Range, _, _ int) {
		for v := rg.Lo; v < rg.Hi; v++ {
			src := uint32(v)
			if usesFrontier && !e.st.Front.Contains(src) {
				continue
			}
			srcVal := e.st.Props[src]
			for i := e.index[v]; i < e.index[v+1]; i++ {
				dst := e.neigh[i]
				if tracksConv && e.st.Conv.Contains(dst) {
					continue
				}
				var w float32
				if weighted {
					w = e.w[i]
				}
				base.CASCombine(p, &e.st.Accum[dst], p.Message(srcVal, src, w), skipEqual)
			}
		}
	})
}
