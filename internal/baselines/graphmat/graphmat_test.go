package graphmat

import (
	"errors"
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestInt32CSRConstruction(t *testing.T) {
	g := graph.NewBuilder(4).
		AddEdge(0, 1).AddEdge(0, 2).AddEdge(2, 3).AddEdge(3, 0).
		MustBuild()
	e, err := New(g, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if len(e.index) != 5 || e.index[4] != 4 {
		t.Fatalf("index = %v", e.index)
	}
	// Vertex 0's row holds {1,2}.
	row0 := e.neigh[e.index[0]:e.index[1]]
	if len(row0) != 2 {
		t.Fatalf("row 0 = %v", row0)
	}
	if e.Name() != "GraphMat" {
		t.Error("name wrong")
	}
}

func TestEdgeLimitBoundary(t *testing.T) {
	g := gen.ErdosRenyi(20, 100, 1)
	if _, err := New(g, Config{Workers: 1, MaxEdges: 99}); !errors.Is(err, ErrTooManyEdges) {
		t.Errorf("99-edge cap: err = %v", err)
	}
	if _, err := New(g, Config{Workers: 1, MaxEdges: 100}); err != nil {
		t.Errorf("100-edge cap rejected a 100-edge graph: %v", err)
	}
}

func TestWeightsPreserved(t *testing.T) {
	g := gen.AddUniformWeights(gen.Grid(5, 5, false, 1), 2)
	e, err := New(g, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	got := apps.Distances(e.Run(apps.NewSSSP(0), 1<<20).Props)
	want := apps.ReferenceSSSP(g, 0)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("dist[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestFullVectorApplySemantics(t *testing.T) {
	// GraphMat applies over the full vector each round; results must still
	// match the reference even for frontier-driven programs.
	g := gen.RMAT(7, 600, gen.DefaultRMAT, 5)
	e, err := New(g, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	got := e.Run(apps.NewBFS(0), 1<<20)
	want := apps.ReferenceBFS(g, 0)
	for v := range want {
		if got.Props[v] != want[v] {
			t.Fatalf("parent[%d] = %d, want %d", v, got.Props[v], want[v])
		}
	}
}
