// Package ligra reimplements the engine pattern of Ligra (Shun & Blelloch,
// PPoPP '13), the paper's primary comparison framework: edgeMap over a
// frontier that switches between a sparse (list + push) and a dense
// (bitmask + pull) representation by the |F| + outEdges(F) > E/20 heuristic,
// with a sequential pull inner loop per destination. The Fig 1
// configurations (PushS, PushP, PushP+PullS, PushP+PullP, and the NoSync
// variant) are selectable, as is the forced-dense "Ligra-Dense" variant of
// Figs 12–13.
package ligra

import (
	"sync/atomic"

	"repro/internal/apps"
	"repro/internal/baselines/base"
	"repro/internal/csr"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/sched"
)

// LoopConfig selects the Fig 1 loop-parallelization configuration.
type LoopConfig int

const (
	// PushPPullS is standard Ligra: push with both loops parallelized, pull
	// with a sequential inner loop.
	PushPPullS LoopConfig = iota
	// PushS parallelizes only the push engine's outer loop and disables the
	// pull engine.
	PushS
	// PushP parallelizes both push loops and disables the pull engine.
	PushP
	// PushPPullP additionally parallelizes the pull inner loop with atomics.
	PushPPullP
	// PushPPullPNoSync is PushPPullP with the atomics removed (incorrect
	// under parallelism; Fig 1 plots it to isolate conflict cost).
	PushPPullPNoSync
)

// String names the configuration as in Fig 1.
func (l LoopConfig) String() string {
	switch l {
	case PushS:
		return "PushS"
	case PushP:
		return "PushP"
	case PushPPullS:
		return "PushP+PullS"
	case PushPPullP:
		return "PushP+PullP"
	case PushPPullPNoSync:
		return "PushP+PullP-NoSync"
	default:
		return "LoopConfig(?)"
	}
}

// pullEnabled reports whether the configuration contains a pull engine.
func (l LoopConfig) pullEnabled() bool { return l != PushS && l != PushP }

// Mode forces an engine choice.
type Mode int

const (
	// Auto switches representations by the E/20 heuristic.
	Auto Mode = iota
	// ForceDensePull always uses the dense pull engine (Ligra-Dense).
	ForceDensePull
	// ForcePush always uses the push engine over the dense frontier
	// (Ligra-Push in Fig 11).
	ForcePush
)

// Config parameterizes the engine.
type Config struct {
	// Pool supplies workers; if nil one is created with Workers workers.
	Pool    *sched.Pool
	Workers int
	// Loops selects the Fig 1 configuration (default PushPPullS).
	Loops LoopConfig
	// Mode forces an engine (default Auto).
	Mode Mode
	// ThresholdDivisor is the denominator of the sparse→dense switch
	// (default 20: switch when |F| + outEdges(F) > E/20).
	ThresholdDivisor int
}

// Engine is a prepared Ligra instance for one graph.
type Engine struct {
	cfg     Config
	pool    *sched.Pool
	ownPool bool
	csrM    *csr.Matrix
	cscM    *csr.Matrix
	outDeg  []int
	edges   int
	st      *base.State
	touched *frontier.Dense

	cachedEdgeDst []uint32
}

// atomicOr sets bit v in a frontier word array without racing concurrent
// setters.
func atomicOr(words []uint64, v uint32) {
	atomic.OrUint64(&words[v>>6], 1<<(v&63))
}

// New prepares an engine for g.
func New(g *graph.Graph, cfg Config) *Engine {
	e := &Engine{cfg: cfg}
	if cfg.Pool != nil {
		e.pool = cfg.Pool
	} else {
		e.pool = sched.NewPool(cfg.Workers)
		e.ownPool = true
	}
	if e.cfg.ThresholdDivisor <= 0 {
		e.cfg.ThresholdDivisor = 20
	}
	e.csrM = csr.FromGraph(g, false)
	e.cscM = csr.FromGraph(g, true)
	e.outDeg = g.OutDegrees()
	e.edges = g.NumEdges()
	e.st = base.NewState(g.NumVertices, e.pool)
	e.touched = frontier.NewDense(g.NumVertices)
	return e
}

// Close releases the engine's pool if it owns one.
func (e *Engine) Close() {
	if e.ownPool {
		e.pool.Close()
	}
}

// Name identifies the framework variant.
func (e *Engine) Name() string {
	switch e.cfg.Mode {
	case ForceDensePull:
		return "Ligra-Dense"
	case ForcePush:
		return "Ligra-Push"
	}
	if e.cfg.Loops != PushPPullS {
		return "Ligra[" + e.cfg.Loops.String() + "]"
	}
	return "Ligra"
}

// Run executes p for at most maxIters rounds.
func (e *Engine) Run(p apps.Program, maxIters int) base.Result {
	e.st.Init(p)
	var res base.Result
	usesFrontier := p.UsesFrontier()
	for res.Iterations < maxIters {
		if usesFrontier && e.st.Front.Empty() {
			break
		}
		p.PreIteration(e.st.Props)
		sparse := false
		switch {
		case e.cfg.Mode == ForcePush:
			e.densePush(p)
		case e.cfg.Mode == ForceDensePull:
			e.densePull(p)
		case !usesFrontier:
			if e.cfg.Loops.pullEnabled() {
				e.densePull(p)
			} else {
				e.densePush(p)
			}
		default:
			sp := e.st.Front.ToSparse()
			frontEdges := 0
			for _, v := range sp.Vertices() {
				frontEdges += e.outDeg[v]
			}
			if !e.cfg.Loops.pullEnabled() || sp.Count()+frontEdges <= e.edges/e.cfg.ThresholdDivisor {
				sparse = true
				e.sparsePush(p, sp.Vertices())
			} else {
				e.densePull(p)
			}
		}
		if sparse {
			res.SparseIterations++
			e.st.ApplyCandidates(p, e.touched.ToSparse().Vertices())
		} else {
			e.st.ApplyAll(p)
		}
		res.Iterations++
	}
	res.Props = e.st.Props
	return res
}

// sparsePush is Ligra's sparse edgeMap: process only the frontier's
// out-edges, collecting touched destinations. With PushP-class configs the
// edges of the frontier are flattened and load-balanced across workers
// (Ligra's edge-based scheduling); with PushS each frontier vertex's edge
// list runs serially inside one task.
func (e *Engine) sparsePush(p apps.Program, front []uint32) {
	e.touched.Clear()
	touchedWords := e.touched.Words()
	tracksConv := p.TracksConverged()
	skipEqual := p.SkipEqualWrites()
	weighted := p.Weighted() && e.csrM.Weights != nil

	scatter := func(src uint32) {
		srcVal := e.st.Props[src]
		neigh := e.csrM.Edges(src)
		var ws []float32
		if weighted {
			ws = e.csrM.EdgeWeights(src)
		}
		for i, dst := range neigh {
			if tracksConv && e.st.Conv.Contains(dst) {
				continue
			}
			var w float32
			if ws != nil {
				w = ws[i]
			}
			base.CASCombine(p, &e.st.Accum[dst], p.Message(srcVal, src, w), skipEqual)
			atomicOr(touchedWords, dst)
		}
	}

	if e.cfg.Loops == PushS {
		// Outer loop only: one task per frontier vertex.
		e.pool.ParallelFor(len(front), 1, func(i, tid int) { scatter(front[i]) })
		return
	}
	// Both loops parallel: flatten the frontier's edges with a prefix sum
	// and chunk the edge space.
	offsets := make([]int, len(front)+1)
	for i, v := range front {
		offsets[i+1] = offsets[i] + e.outDeg[v]
	}
	totalEdges := offsets[len(front)]
	if totalEdges == 0 {
		return
	}
	chunk := sched.ChunkSize(totalEdges, sched.DefaultChunks(e.pool.Workers()))
	e.pool.DynamicFor(totalEdges, chunk, func(rg sched.Range, _, _ int) {
		// Locate the first frontier vertex covering rg.Lo.
		vi := searchOffsets(offsets, rg.Lo)
		for pos := rg.Lo; pos < rg.Hi; {
			for offsets[vi+1] <= pos {
				vi++
			}
			src := front[vi]
			lo := e.csrM.Index[src] + uint64(pos-offsets[vi])
			hi := e.csrM.Index[src] + uint64(min(offsets[vi+1], rg.Hi)-offsets[vi])
			srcVal := e.st.Props[src]
			for idx := lo; idx < hi; idx++ {
				dst := e.csrM.Neigh[idx]
				if p.TracksConverged() && e.st.Conv.Contains(dst) {
					continue
				}
				var w float32
				if weighted {
					w = e.csrM.Weights[idx]
				}
				base.CASCombine(p, &e.st.Accum[dst], p.Message(srcVal, src, w), skipEqual)
				atomicOr(touchedWords, dst)
			}
			pos = min(offsets[vi+1], rg.Hi)
		}
	})
}

// densePull is Ligra's dense edgeMap: outer loop over destinations. The
// inner loop runs per the LoopConfig: sequential (PullS, standard Ligra),
// parallel with atomics (PullP), or parallel without synchronization
// (PullP-NoSync).
func (e *Engine) densePull(p apps.Program) {
	usesFrontier := p.UsesFrontier()
	tracksConv := p.TracksConverged()
	weighted := p.Weighted() && e.cscM.Weights != nil
	identity := p.Identity()

	innerParallel := e.cfg.Loops == PushPPullP || e.cfg.Loops == PushPPullPNoSync
	if !innerParallel {
		chunk := sched.ChunkSize(e.st.N, sched.DefaultChunks(e.pool.Workers()))
		e.pool.DynamicFor(e.st.N, chunk, func(rg sched.Range, _, _ int) {
			for v := rg.Lo; v < rg.Hi; v++ {
				dst := uint32(v)
				if tracksConv && e.st.Conv.Contains(dst) {
					continue
				}
				acc := identity
				neigh := e.cscM.Edges(dst)
				var ws []float32
				if weighted {
					ws = e.cscM.EdgeWeights(dst)
				}
				for i, s := range neigh {
					if usesFrontier && !e.st.Front.Contains(s) {
						continue
					}
					var w float32
					if ws != nil {
						w = ws[i]
					}
					acc = p.Combine(acc, p.Message(e.st.Props[s], s, w))
				}
				if acc != identity {
					e.st.Accum[dst] = p.Combine(e.st.Accum[dst], acc)
				}
			}
		})
		return
	}
	// Inner loop parallelized with the traditional interface: a flat
	// parallel loop over all in-edges, one shared update per edge — the
	// configuration Fig 1 shows collapsing.
	skipEqual := p.SkipEqualWrites()
	noSync := e.cfg.Loops == PushPPullPNoSync
	total := e.cscM.NumEdges()
	edgeDst := e.edgeDst()
	chunk := sched.ChunkSize(total, sched.DefaultChunks(e.pool.Workers()))
	e.pool.DynamicFor(total, chunk, func(rg sched.Range, _, _ int) {
		for i := rg.Lo; i < rg.Hi; i++ {
			dst := edgeDst[i]
			if tracksConv && e.st.Conv.Contains(dst) {
				continue
			}
			s := e.cscM.Neigh[i]
			if usesFrontier && !e.st.Front.Contains(s) {
				continue
			}
			var w float32
			if weighted {
				w = e.cscM.Weights[i]
			}
			msg := p.Message(e.st.Props[s], s, w)
			if noSync {
				merged := p.Combine(e.st.Accum[dst], msg)
				if !(skipEqual && merged == e.st.Accum[dst]) {
					e.st.Accum[dst] = merged
				}
			} else {
				base.CASCombine(p, &e.st.Accum[dst], msg, skipEqual)
			}
		}
	})
}

// densePush scans every source (checking the frontier bit when the program
// uses one) and scatters its out-edges with atomics.
func (e *Engine) densePush(p apps.Program) {
	usesFrontier := p.UsesFrontier()
	tracksConv := p.TracksConverged()
	skipEqual := p.SkipEqualWrites()
	weighted := p.Weighted() && e.csrM.Weights != nil
	chunk := sched.ChunkSize(e.st.N, sched.DefaultChunks(e.pool.Workers()))
	e.pool.DynamicFor(e.st.N, chunk, func(rg sched.Range, _, _ int) {
		for v := rg.Lo; v < rg.Hi; v++ {
			src := uint32(v)
			if usesFrontier && !e.st.Front.Contains(src) {
				continue
			}
			srcVal := e.st.Props[src]
			neigh := e.csrM.Edges(src)
			var ws []float32
			if weighted {
				ws = e.csrM.EdgeWeights(src)
			}
			for i, dst := range neigh {
				if tracksConv && e.st.Conv.Contains(dst) {
					continue
				}
				var w float32
				if ws != nil {
					w = ws[i]
				}
				base.CASCombine(p, &e.st.Accum[dst], p.Message(srcVal, src, w), skipEqual)
			}
		}
	})
}

// edgeDst lazily materializes the destination of each CSC edge position.
func (e *Engine) edgeDst() []uint32 {
	if e.cachedEdgeDst == nil {
		e.cachedEdgeDst = make([]uint32, e.cscM.NumEdges())
		for v := uint32(0); int(v) < e.cscM.N; v++ {
			for i := e.cscM.Index[v]; i < e.cscM.Index[v+1]; i++ {
				e.cachedEdgeDst[i] = v
			}
		}
	}
	return e.cachedEdgeDst
}

func searchOffsets(offsets []int, pos int) int {
	lo, hi := 0, len(offsets)-2
	for lo < hi {
		mid := (lo + hi) / 2
		if offsets[mid+1] <= pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
