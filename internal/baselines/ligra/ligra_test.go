package ligra

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/apps"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestSearchOffsets(t *testing.T) {
	// offsets for degrees [3, 0, 2, 5]: [0 3 3 5 10]
	offsets := []int{0, 3, 3, 5, 10}
	cases := map[int]int{0: 0, 1: 0, 2: 0, 3: 2, 4: 2, 5: 3, 9: 3}
	for pos, want := range cases {
		if got := searchOffsets(offsets, pos); got != want {
			t.Errorf("searchOffsets(%d) = %d, want %d", pos, got, want)
		}
	}
}

func TestSearchOffsetsProperty(t *testing.T) {
	f := func(degsRaw []uint8, posRaw uint16) bool {
		if len(degsRaw) == 0 {
			return true
		}
		offsets := make([]int, len(degsRaw)+1)
		for i, d := range degsRaw {
			offsets[i+1] = offsets[i] + int(d%7)
		}
		total := offsets[len(offsets)-1]
		if total == 0 {
			return true
		}
		pos := int(posRaw) % total
		vi := searchOffsets(offsets, pos)
		return offsets[vi] <= pos && pos < offsets[vi+1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLoopConfigStrings(t *testing.T) {
	want := map[LoopConfig]string{
		PushS:            "PushS",
		PushP:            "PushP",
		PushPPullS:       "PushP+PullS",
		PushPPullP:       "PushP+PullP",
		PushPPullPNoSync: "PushP+PullP-NoSync",
	}
	for lc, s := range want {
		if lc.String() != s {
			t.Errorf("String(%d) = %q, want %q", lc, lc.String(), s)
		}
	}
	if PushS.pullEnabled() || PushP.pullEnabled() {
		t.Error("push-only configs report pull enabled")
	}
	if !PushPPullS.pullEnabled() {
		t.Error("PushP+PullS should enable pull")
	}
}

func TestNames(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 1)
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Workers: 1}, "Ligra"},
		{Config{Workers: 1, Mode: ForceDensePull}, "Ligra-Dense"},
		{Config{Workers: 1, Mode: ForcePush}, "Ligra-Push"},
		{Config{Workers: 1, Loops: PushS}, "Ligra[PushS]"},
	}
	for _, c := range cases {
		e := New(g, c.cfg)
		if e.Name() != c.want {
			t.Errorf("Name = %q, want %q", e.Name(), c.want)
		}
		e.Close()
	}
}

// TestSparsePushEdgeBalancedMatchesSerial checks the PushP flattened
// scatter against the PushS per-vertex scatter on a skewed frontier.
func TestSparsePushEdgeBalancedMatchesSerial(t *testing.T) {
	g := gen.RMAT(9, 4000, gen.RMATParams{A: 0.65, B: 0.17, C: 0.12, D: 0.06}, 3)
	run := func(lc LoopConfig) []uint64 {
		e := New(g, Config{Workers: 4, Loops: lc, ThresholdDivisor: 1})
		defer e.Close()
		// ThresholdDivisor 1 makes the sparse path trigger whenever
		// |F|+edges <= E, i.e. on later BFS rounds.
		res := e.Run(apps.NewBFS(0), 1<<20)
		return res.Props
	}
	a := run(PushS)
	b := run(PushP)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("PushS and PushP disagree at %d: %d vs %d", v, a[v], b[v])
		}
	}
}

func TestThresholdControlsEngineChoice(t *testing.T) {
	// Star graph: hub 0 points at everyone; BFS frontier after round 1 is
	// huge. A tiny divisor keeps Ligra sparse; a huge one forces dense.
	b := graph.NewBuilder(200)
	for v := uint32(1); v < 200; v++ {
		b.AddEdge(0, v)
	}
	g := b.MustBuild()
	sparse := New(g, Config{Workers: 2, ThresholdDivisor: 1})
	defer sparse.Close()
	if res := sparse.Run(apps.NewBFS(0), 1<<20); res.SparseIterations == 0 {
		t.Error("divisor 1 never went sparse")
	}
	dense := New(g, Config{Workers: 2, Mode: ForceDensePull})
	defer dense.Close()
	if res := dense.Run(apps.NewBFS(0), 1<<20); res.SparseIterations != 0 {
		t.Error("forced dense went sparse")
	}
}

func TestWeightedSSSPThroughLigra(t *testing.T) {
	g := gen.AddUniformWeights(gen.Grid(7, 7, false, 1), 2)
	e := New(g, Config{Workers: 2})
	defer e.Close()
	got := apps.Distances(e.Run(apps.NewSSSP(0), 1<<20).Props)
	want := apps.ReferenceSSSP(g, 0)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("dist[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestEdgeDstLazyCache(t *testing.T) {
	g := gen.ErdosRenyi(30, 120, 5)
	e := New(g, Config{Workers: 1})
	defer e.Close()
	a := e.edgeDst()
	b := e.edgeDst()
	if &a[0] != &b[0] {
		t.Error("edgeDst rebuilt instead of cached")
	}
	// Spot check correctness: destinations ascend with CSC position.
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatal("edgeDst not grouped ascending by destination")
		}
	}
}

func TestEmptyFrontierSparsePush(t *testing.T) {
	// BFS from an isolated vertex terminates after one apply round.
	b := graph.NewBuilder(5)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	e := New(g, Config{Workers: 2})
	defer e.Close()
	res := e.Run(apps.NewBFS(0), 1<<20)
	if res.Props[0] != 0 {
		t.Error("root lost")
	}
	for v := 1; v < 5; v++ {
		if res.Props[v] != apps.NoParent {
			t.Errorf("vertex %d should be unreachable", v)
		}
	}
}
