// Package polymer reimplements the engine pattern of Polymer (Zhang, Chen &
// Chen, PPoPP '15), Ligra's NUMA-aware derivative: vertices and their edges
// are partitioned across NUMA nodes, each node's workers process only
// node-local top-level vertices, and property arrays are distributed by the
// same map. Per the paper's observations (§6.3), its PageRank implementation
// is exclusively push-based and its Breadth-First Search exclusively
// pull-based; this reimplementation selects push for everything except
// converge-tracking programs (BFS), which run pull. Frontiers are dense
// bitmasks only.
package polymer

import (
	"sync/atomic"

	"repro/internal/apps"
	"repro/internal/baselines/base"
	"repro/internal/csr"
	"repro/internal/graph"
	"repro/internal/numa"
	"repro/internal/sched"
)

// Config parameterizes the engine.
type Config struct {
	// Pool supplies workers; if nil one is created with
	// Topology.TotalWorkers workers.
	Pool *sched.Pool
	// Topology is the simulated NUMA layout (defaults to one node with
	// GOMAXPROCS workers).
	Topology numa.Topology
}

// Engine is a prepared Polymer instance for one graph.
type Engine struct {
	pool    *sched.Pool
	ownPool bool
	topo    numa.Topology
	csrM    *csr.Matrix
	cscM    *csr.Matrix
	st      *base.State
	part    numa.Partition
}

// New prepares an engine for g.
func New(g *graph.Graph, cfg Config) *Engine {
	e := &Engine{topo: cfg.Topology}
	if e.topo.Nodes == 0 {
		e.topo = numa.SingleNode(0)
		if cfg.Pool != nil {
			e.topo.WorkersPerNode = cfg.Pool.Workers()
		}
	}
	if cfg.Pool != nil {
		e.pool = cfg.Pool
	} else {
		e.pool = sched.NewPool(e.topo.TotalWorkers())
		e.ownPool = true
	}
	if e.topo.WorkersPerNode == 0 {
		e.topo.WorkersPerNode = e.pool.Workers() / e.topo.Nodes
	}
	e.csrM = csr.FromGraph(g, false)
	e.cscM = csr.FromGraph(g, true)
	e.st = base.NewState(g.NumVertices, e.pool)
	e.part = numa.PartitionEven(g.NumVertices, e.topo.Nodes)
	return e
}

// Close releases the engine's pool if it owns one.
func (e *Engine) Close() {
	if e.ownPool {
		e.pool.Close()
	}
}

// Name identifies the framework.
func (e *Engine) Name() string { return "Polymer" }

// Run executes p for at most maxIters rounds.
func (e *Engine) Run(p apps.Program, maxIters int) base.Result {
	e.st.Init(p)
	var res base.Result
	usesFrontier := p.UsesFrontier()
	usePull := p.TracksConverged()
	for res.Iterations < maxIters {
		if usesFrontier && e.st.Front.Empty() {
			break
		}
		p.PreIteration(e.st.Props)
		if usePull {
			e.pullPhase(p)
		} else {
			e.pushPhase(p)
		}
		e.st.ApplyAll(p)
		res.Iterations++
	}
	res.Props = e.st.Props
	return res
}

// dispatchByNode hands chunks of each node's vertex range only to that
// node's workers — Polymer's node-local work assignment.
func (e *Engine) dispatchByNode(body func(rg sched.Range, node int)) {
	type counter struct {
		next int64
		_    [56]byte
	}
	counters := make([]counter, e.topo.Nodes)
	chunk := sched.ChunkSize(e.st.N/e.topo.Nodes+1, sched.DefaultChunks(e.topo.WorkersPerNode))
	e.pool.Run(func(tid int) {
		node := e.topo.NodeOf(tid)
		lo, hi := e.part.Range(node)
		n := hi - lo
		numChunks := sched.NumChunks(n, chunk)
		for {
			id := int(atomic.AddInt64(&counters[node].next, 1)) - 1
			if id >= numChunks {
				return
			}
			clo := lo + id*chunk
			chi := clo + chunk
			if chi > hi {
				chi = hi
			}
			body(sched.Range{Lo: clo, Hi: chi}, node)
		}
	})
}

// pushPhase scatters from node-owned sources with atomics (updates may
// cross node boundaries — the remote traffic Polymer's partitioning
// reduces but cannot eliminate).
func (e *Engine) pushPhase(p apps.Program) {
	usesFrontier := p.UsesFrontier()
	tracksConv := p.TracksConverged()
	skipEqual := p.SkipEqualWrites()
	weighted := p.Weighted() && e.csrM.Weights != nil
	e.dispatchByNode(func(rg sched.Range, _ int) {
		for v := rg.Lo; v < rg.Hi; v++ {
			src := uint32(v)
			if usesFrontier && !e.st.Front.Contains(src) {
				continue
			}
			srcVal := e.st.Props[src]
			neigh := e.csrM.Edges(src)
			var ws []float32
			if weighted {
				ws = e.csrM.EdgeWeights(src)
			}
			for i, dst := range neigh {
				if tracksConv && e.st.Conv.Contains(dst) {
					continue
				}
				var w float32
				if ws != nil {
					w = ws[i]
				}
				base.CASCombine(p, &e.st.Accum[dst], p.Message(srcVal, src, w), skipEqual)
			}
		}
	})
}

// pullPhase aggregates into node-owned destinations with a sequential
// inner loop (no synchronization; each destination is owned by one task).
func (e *Engine) pullPhase(p apps.Program) {
	usesFrontier := p.UsesFrontier()
	tracksConv := p.TracksConverged()
	weighted := p.Weighted() && e.cscM.Weights != nil
	identity := p.Identity()
	e.dispatchByNode(func(rg sched.Range, _ int) {
		for v := rg.Lo; v < rg.Hi; v++ {
			dst := uint32(v)
			if tracksConv && e.st.Conv.Contains(dst) {
				continue
			}
			acc := identity
			neigh := e.cscM.Edges(dst)
			var ws []float32
			if weighted {
				ws = e.cscM.EdgeWeights(dst)
			}
			for i, s := range neigh {
				if usesFrontier && !e.st.Front.Contains(s) {
					continue
				}
				var w float32
				if ws != nil {
					w = ws[i]
				}
				acc = p.Combine(acc, p.Message(e.st.Props[s], s, w))
			}
			if acc != identity {
				e.st.Accum[dst] = p.Combine(e.st.Accum[dst], acc)
			}
		}
	})
}
