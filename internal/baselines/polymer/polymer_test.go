package polymer

import (
	"math"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/gen"
	"repro/internal/numa"
	"repro/internal/sched"
)

func TestEngineSelection(t *testing.T) {
	// Per §6.3: Polymer runs PageRank push-based and BFS pull-based. The
	// reimplementation keys on TracksConverged; verify both paths compute
	// correct results (engine choice itself is internal).
	g := gen.RMAT(7, 800, gen.DefaultRMAT, 1)
	e := New(g, Config{Topology: numa.Topology{Nodes: 2, WorkersPerNode: 1}})
	defer e.Close()

	pr := e.Run(apps.NewPageRank(g), 6)
	want := apps.Ranks(apps.RunSequential(apps.NewPageRank(g), g, 6).Props)
	got := apps.Ranks(pr.Props)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-10*(1+want[v]) {
			t.Fatalf("push PR: rank[%d] = %v, want %v", v, got[v], want[v])
		}
	}

	bfs := e.Run(apps.NewBFS(0), 1<<20)
	wantB := apps.ReferenceBFS(g, 0)
	for v := range wantB {
		if bfs.Props[v] != wantB[v] {
			t.Fatalf("pull BFS: parent[%d] = %d, want %d", v, bfs.Props[v], wantB[v])
		}
	}
	if e.Name() != "Polymer" {
		t.Error("name wrong")
	}
}

func TestNodeLocalDispatchCoversAllVertices(t *testing.T) {
	g := gen.ErdosRenyi(257, 1000, 2) // odd count: uneven partitions
	e := New(g, Config{Topology: numa.Topology{Nodes: 3, WorkersPerNode: 1}})
	defer e.Close()
	var mu sync.Mutex
	seen := make([]int, g.NumVertices)
	nodeOf := make([]int, g.NumVertices)
	e.dispatchByNode(func(rg sched.Range, node int) {
		mu.Lock()
		defer mu.Unlock()
		for v := rg.Lo; v < rg.Hi; v++ {
			seen[v]++
			nodeOf[v] = node
		}
	})
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("vertex %d dispatched %d times", v, n)
		}
	}
	// Every vertex must be handled by the node owning its partition.
	for v := range nodeOf {
		if want := e.part.Owner(v); nodeOf[v] != want {
			t.Fatalf("vertex %d processed by node %d, owner %d", v, nodeOf[v], want)
		}
	}
}

func TestDefaultTopology(t *testing.T) {
	g := gen.ErdosRenyi(20, 50, 1)
	e := New(g, Config{})
	defer e.Close()
	if e.topo.Nodes != 1 || e.topo.TotalWorkers() < 1 {
		t.Errorf("default topology = %+v", e.topo)
	}
}
