// Package xstream reimplements the engine pattern of X-Stream (Roy,
// Mihailovic & Zwaenepoel, SOSP '13): edge-centric scatter-gather over
// streaming partitions. The unordered edge list is cut into partitions by
// source-vertex range; each iteration streams every partition's edges
// (scatter), routing updates through in-memory shuffle buffers to the
// partition owning each destination, which then streams its update buffer
// (gather). The update traffic through the shuffle — every live edge's
// contribution is written to and re-read from memory — is the structural
// overhead behind X-Stream's uncompetitive times in Figs 11–13, and an
// update targeting one vertex costs processing of its whole partition.
// X-Stream requires a power-of-two thread count (§6.3's footnote); New
// rounds the worker count down accordingly.
package xstream

import (
	"runtime"
	"sync"

	"repro/internal/apps"
	"repro/internal/baselines/base"
	"repro/internal/graph"
	"repro/internal/numa"
	"repro/internal/sched"
)

// Config parameterizes the engine.
type Config struct {
	// Workers is the requested thread count; it is rounded down to a power
	// of two. Zero selects GOMAXPROCS (then rounded).
	Workers int
	// PartitionVertices is the number of vertices per streaming partition
	// (the knob standing in for "cache-sized"); default 4096.
	PartitionVertices int
}

// update is one shuffled message: a destination and its combined payload.
type update struct {
	dst uint32
	val uint64
}

// Engine is a prepared X-Stream instance for one graph.
type Engine struct {
	pool      *sched.Pool
	workers   int
	numParts  int
	partition numa.Partition // vertex ranges per partition
	// edges grouped by source partition (within a partition, unordered —
	// X-Stream never sorts edges).
	partEdges [][]graph.Edge
	// shuffle buffers: one slice of updates per destination partition,
	// appended under a per-partition lock during scatter.
	updates []partUpdates
	st      *base.State
}

type partUpdates struct {
	mu  sync.Mutex
	buf []update
	_   [40]byte // separate hot locks
}

// New prepares an engine for g.
func New(g *graph.Graph, cfg Config) *Engine {
	e := &Engine{}
	w := cfg.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	e.workers = floorPow2(w)
	e.pool = sched.NewPool(e.workers)
	pv := cfg.PartitionVertices
	if pv <= 0 {
		pv = 4096
	}
	e.numParts = (g.NumVertices + pv - 1) / pv
	if e.numParts < 1 {
		e.numParts = 1
	}
	e.partition = numa.PartitionEven(g.NumVertices, e.numParts)
	e.partEdges = make([][]graph.Edge, e.numParts)
	for _, edge := range g.Edges {
		part := e.partition.Owner(int(edge.Src))
		e.partEdges[part] = append(e.partEdges[part], edge)
	}
	e.updates = make([]partUpdates, e.numParts)
	e.st = base.NewState(g.NumVertices, e.pool)
	return e
}

// Close releases the engine's pool.
func (e *Engine) Close() { e.pool.Close() }

// Name identifies the framework.
func (e *Engine) Name() string { return "X-Stream" }

// Workers returns the effective (power-of-two) worker count.
func (e *Engine) Workers() int { return e.workers }

// Partitions returns the streaming partition count.
func (e *Engine) Partitions() int { return e.numParts }

// Run executes p for at most maxIters scatter-shuffle-gather rounds.
func (e *Engine) Run(p apps.Program, maxIters int) base.Result {
	e.st.Init(p)
	var res base.Result
	usesFrontier := p.UsesFrontier()
	for res.Iterations < maxIters {
		if usesFrontier && e.st.Front.Empty() {
			break
		}
		p.PreIteration(e.st.Props)
		e.scatter(p)
		e.gather(p)
		e.st.ApplyAll(p)
		res.Iterations++
	}
	res.Props = e.st.Props
	return res
}

// scatter streams each source partition's edges, producing updates into the
// destination partitions' shuffle buffers. Each worker batches per
// destination partition locally and appends under the partition lock.
func (e *Engine) scatter(p apps.Program) {
	usesFrontier := p.UsesFrontier()
	tracksConv := p.TracksConverged()
	weighted := p.Weighted()
	e.pool.DynamicFor(e.numParts, 1, func(rg sched.Range, _, _ int) {
		local := make([][]update, e.numParts)
		for part := rg.Lo; part < rg.Hi; part++ {
			for _, edge := range e.partEdges[part] {
				if usesFrontier && !e.st.Front.Contains(edge.Src) {
					continue
				}
				if tracksConv && e.st.Conv.Contains(edge.Dst) {
					continue
				}
				var w float32
				if weighted {
					w = edge.Weight
				}
				msg := p.Message(e.st.Props[edge.Src], edge.Src, w)
				dp := e.partition.Owner(int(edge.Dst))
				local[dp] = append(local[dp], update{dst: edge.Dst, val: msg})
			}
		}
		for dp := range local {
			if len(local[dp]) == 0 {
				continue
			}
			e.updates[dp].mu.Lock()
			e.updates[dp].buf = append(e.updates[dp].buf, local[dp]...)
			e.updates[dp].mu.Unlock()
		}
	})
}

// gather streams each destination partition's update buffer into the
// accumulators. A partition is processed by exactly one task, so no
// synchronization is needed within it.
func (e *Engine) gather(p apps.Program) {
	e.pool.DynamicFor(e.numParts, 1, func(rg sched.Range, _, _ int) {
		for part := rg.Lo; part < rg.Hi; part++ {
			u := &e.updates[part]
			for _, up := range u.buf {
				e.st.Accum[up.dst] = p.Combine(e.st.Accum[up.dst], up.val)
			}
			u.buf = u.buf[:0]
		}
	})
}

// floorPow2 returns the largest power of two not exceeding n (minimum 1).
func floorPow2(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}
