package xstream

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/apps"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestFloorPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 4, 5: 4, 7: 4, 8: 8, 9: 8, 16: 16, 100: 64}
	for in, want := range cases {
		if got := floorPow2(in); got != want {
			t.Errorf("floorPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFloorPow2Property(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw)%10000 + 1
		p := floorPow2(n)
		return p <= n && p*2 > n && p&(p-1) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEdgesRoutedToSourcePartition(t *testing.T) {
	g := gen.ErdosRenyi(1000, 4000, 1)
	e := New(g, Config{Workers: 2, PartitionVertices: 100})
	defer e.Close()
	if e.Partitions() != 10 {
		t.Fatalf("partitions = %d", e.Partitions())
	}
	total := 0
	for part, edges := range e.partEdges {
		lo, hi := e.partition.Range(part)
		for _, edge := range edges {
			if int(edge.Src) < lo || int(edge.Src) >= hi {
				t.Fatalf("edge with source %d stored in partition [%d,%d)", edge.Src, lo, hi)
			}
		}
		total += len(edges)
	}
	if total != g.NumEdges() {
		t.Fatalf("partitions hold %d edges, want %d", total, g.NumEdges())
	}
}

func TestUpdateBuffersDrainedBetweenIterations(t *testing.T) {
	g := gen.ErdosRenyi(200, 1000, 2)
	e := New(g, Config{Workers: 2, PartitionVertices: 50})
	defer e.Close()
	e.Run(apps.NewPageRank(g), 3)
	for part := range e.updates {
		if len(e.updates[part].buf) != 0 {
			t.Fatalf("partition %d retained %d updates after the run", part, len(e.updates[part].buf))
		}
	}
}

func TestSinglePartitionDegenerate(t *testing.T) {
	g := gen.ErdosRenyi(50, 200, 3)
	e := New(g, Config{Workers: 1, PartitionVertices: 1 << 20})
	defer e.Close()
	if e.Partitions() != 1 {
		t.Fatalf("partitions = %d, want 1", e.Partitions())
	}
	got := apps.Ranks(e.Run(apps.NewPageRank(g), 5).Props)
	want := apps.Ranks(apps.RunSequential(apps.NewPageRank(g), g, 5).Props)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-10 {
			t.Fatalf("rank[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestBFSAcrossPartitions(t *testing.T) {
	// A path crossing every partition boundary forces shuffle traffic each
	// round.
	b := graph.NewBuilder(64)
	for v := uint32(0); v < 63; v++ {
		b.AddEdge(v, v+1)
	}
	g := b.MustBuild()
	e := New(g, Config{Workers: 2, PartitionVertices: 8})
	defer e.Close()
	res := e.Run(apps.NewBFS(0), 1<<20)
	for v := uint64(1); v < 64; v++ {
		if res.Props[v] != v-1 {
			t.Fatalf("parent[%d] = %d, want %d", v, res.Props[v], v-1)
		}
	}
	if e.Name() != "X-Stream" {
		t.Error("name wrong")
	}
}
