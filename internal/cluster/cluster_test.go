package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	grazelle "repro"
	"repro/internal/fault"
	"repro/internal/obs"
)

// testGraph is shared across the package's tests: stores are read-only here
// and graph generation dominates setup time.
var (
	graphOnce sync.Once
	testG     *grazelle.Graph
	graphErr  error
)

func sharedGraph(t *testing.T) *grazelle.Graph {
	t.Helper()
	graphOnce.Do(func() { testG, graphErr = grazelle.GenerateDataset("C", 0.25) })
	if graphErr != nil {
		t.Fatal(graphErr)
	}
	return testG
}

// testWorker is one in-process worker: a store holding the shared graph as
// "g" behind the worker's private mux.
func newTestWorker(t *testing.T) (*Worker, *httptest.Server) {
	t.Helper()
	st, err := grazelle.OpenStore(grazelle.StoreConfig{Workers: 2, Options: grazelle.Options{Trace: true}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.Add("g", sharedGraph(t)); err != nil {
		t.Fatal(err)
	}
	wk := NewWorker(st, 2, &obs.Counter{})
	ts := httptest.NewServer(wk.Mux())
	t.Cleanup(ts.Close)
	return wk, ts
}

// newTestCluster stands up n in-process workers plus a router whose exchange
// hub is served over HTTP, and blocks until the health loop has every worker
// in rotation.
func newTestCluster(t *testing.T, n, partitions int) *Router {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		_, ts := newTestWorker(t)
		urls[i] = ts.URL
	}
	rt := NewRouter(RouterConfig{
		Workers:        urls,
		Partitions:     partitions,
		HealthInterval: 25 * time.Millisecond,
		RoundTimeout:   10 * time.Second,
	})
	t.Cleanup(rt.Close)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /internal/exchange", rt.HandleExchange)
	hts := httptest.NewServer(mux)
	t.Cleanup(hts.Close)
	rt.SetExchangeURL(hts.URL + "/internal/exchange")
	rt.Start()
	waitAvailable(t, rt, n)
	return rt
}

func waitAvailable(t *testing.T, rt *Router, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(rt.available()) >= n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("cluster never reached %d available workers: %+v", n, rt.Status().Workers)
}

func clusterSpec(app string, parts int, values bool) RunSpec {
	g := testG
	return RunSpec{
		Graph:      "g",
		App:        app,
		Iters:      8,
		Root:       1,
		K:          2,
		Partitions: parts,
		Values:     values,
		Vertices:   g.NumVertices(),
		Edges:      g.NumEdges(),
	}
}

// localRun executes the same query on a plain partitioned engine — the
// bit-identity reference the cluster result must match.
func localRun(t *testing.T, app string, parts int) *grazelle.AppResult {
	t.Helper()
	eng := grazelle.NewEngine(sharedGraph(t), grazelle.Options{Workers: 2, Partitions: parts, Trace: true})
	defer eng.Close()
	res, err := eng.Run(context.Background(), app, grazelle.Params{Iters: 8, Root: 1, K: 2})
	if err != nil {
		t.Fatalf("local %s: %v", app, err)
	}
	return res
}

// TestClusterExecuteBitIdentical scatter-gathers frontier-driven and
// frontier-blind apps over 1- and 2-worker rosters at 2 and 4 partitions and
// requires every summary statistic and the full value vector to be
// byte-identical to a local partitioned run.
func TestClusterExecuteBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 2} {
		for _, parts := range []int{2, 4} {
			t.Run(fmt.Sprintf("w%dp%d", workers, parts), func(t *testing.T) {
				rt := newTestCluster(t, workers, parts)
				for _, app := range []string{"pr", "cc", "bfs"} {
					res, err := rt.Execute(context.Background(), "t-"+app, clusterSpec(app, parts, true))
					if err != nil {
						t.Fatalf("%s: %v", app, err)
					}
					want := localRun(t, app, parts)
					if res.Iterations != want.Stats.Iterations || res.Partitions != parts {
						t.Errorf("%s: iterations %d partitions %d, want %d/%d",
							app, res.Iterations, res.Partitions, want.Stats.Iterations, parts)
					}
					for _, st := range want.Summary() {
						wantRaw, _ := json.Marshal(st.Value)
						if got, ok := res.Summary[st.Key]; !ok || string(got) != string(wantRaw) {
							t.Errorf("%s summary %s = %s, want %s", app, st.Key, got, wantRaw)
						}
					}
					wantVals, _ := json.Marshal(want.Values())
					if string(res.Values) != string(wantVals) {
						t.Errorf("%s values diverge (%d vs %d bytes)", app, len(res.Values), len(wantVals))
					}
					if res.ExchangeBytes != want.Stats.ExchangeBytes {
						t.Errorf("%s exchange bytes %d, want %d", app, res.ExchangeBytes, want.Stats.ExchangeBytes)
					}
					if len(res.Workers) != workers {
						t.Errorf("%s ran on %d workers, want %d", app, len(res.Workers), workers)
					}
					if len(res.PartBytes) != parts {
						t.Errorf("%s PartBytes len %d, want %d", app, len(res.PartBytes), parts)
					}
				}
			})
		}
	}
}

// TestClusterAccounting checks the hub's per-partition byte totals agree
// with the engine's own exchange accounting for a frontier-driven app.
func TestClusterAccounting(t *testing.T) {
	rt := newTestCluster(t, 2, 2)
	res, err := rt.Execute(context.Background(), "t-acct", clusterSpec("bfs", 2, false))
	if err != nil {
		t.Fatal(err)
	}
	var hubTotal int64
	for _, b := range res.PartBytes {
		hubTotal += b
	}
	if hubTotal == 0 {
		t.Fatal("bfs moved no bytes through the hub")
	}
	if hubTotal != res.ExchangeBytes {
		t.Errorf("hub accounted %d bytes, engine charged %d", hubTotal, res.ExchangeBytes)
	}
	st := rt.Status()
	if st.Runs == 0 || st.ExchangeRounds == 0 {
		t.Errorf("status counters not advanced: %+v", st)
	}
	var peerIn uint64
	for _, w := range st.Workers {
		peerIn += w.BytesIn
	}
	if peerIn == 0 {
		t.Error("per-peer inbound exchange bytes not accounted")
	}
}

// TestClusterFailpointFailover arms the cluster/exchange failpoint for one
// shot: the first attempt dies at the barrier with a typed exchange error,
// the router fails over, and the retry succeeds bit-identically.
func TestClusterFailpointFailover(t *testing.T) {
	if !fault.Available() {
		t.Skip("failpoints compiled out")
	}
	rt := newTestCluster(t, 2, 2)
	disarm, err := fault.Enable("cluster/exchange", "error*1")
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	res, err := rt.Execute(context.Background(), "t-fp", clusterSpec("bfs", 2, false))
	if err != nil {
		t.Fatalf("failover did not recover: %v", err)
	}
	want := localRun(t, "bfs", 2)
	if res.Iterations != want.Stats.Iterations {
		t.Errorf("iterations %d after failover, want %d", res.Iterations, want.Stats.Iterations)
	}
	if st := rt.Status(); st.Failovers == 0 {
		t.Errorf("failover not counted: %+v", st)
	}
}

// TestClusterFailpointExhausted arms the failpoint permanently: both the
// run and its failover die at the barrier, and the caller gets the typed
// unavailable error, not a hang.
func TestClusterFailpointExhausted(t *testing.T) {
	if !fault.Available() {
		t.Skip("failpoints compiled out")
	}
	rt := newTestCluster(t, 2, 2)
	disarm, err := fault.Enable("cluster/exchange", "error")
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	_, err = rt.Execute(context.Background(), "t-fpx", clusterSpec("bfs", 2, false))
	var ue *UnavailableError
	if !errors.As(err, &ue) {
		t.Fatalf("want UnavailableError after exhausted failover, got %v", err)
	}
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Code != "exchange" {
		t.Errorf("cause is not an exchange-coded peer error: %v", err)
	}
}

// TestClusterFailpointDelay injects a barrier delay shorter than the round
// timeout: the run must simply ride it out and still complete correctly.
func TestClusterFailpointDelay(t *testing.T) {
	if !fault.Available() {
		t.Skip("failpoints compiled out")
	}
	rt := newTestCluster(t, 2, 2)
	disarm, err := fault.Enable("cluster/exchange", "delay:50ms*2")
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	res, err := rt.Execute(context.Background(), "t-delay", clusterSpec("bfs", 2, false))
	if err != nil {
		t.Fatal(err)
	}
	if want := localRun(t, "bfs", 2); res.Iterations != want.Stats.Iterations {
		t.Errorf("iterations %d under delay, want %d", res.Iterations, want.Stats.Iterations)
	}
}

// TestClusterNoWorkers: a roster that never becomes healthy yields the
// typed unavailable error immediately.
func TestClusterNoWorkers(t *testing.T) {
	rt := NewRouter(RouterConfig{Workers: []string{"http://127.0.0.1:1"}, Partitions: 2})
	defer rt.Close()
	_, err := rt.Execute(context.Background(), "t-none", clusterSpec("pr", 2, false))
	var ue *UnavailableError
	if !errors.As(err, &ue) {
		t.Fatalf("want UnavailableError, got %v", err)
	}
}

// TestClusterContextCancel: a cancelled caller context fails the run with a
// context error and without failover.
func TestClusterContextCancel(t *testing.T) {
	rt := newTestCluster(t, 2, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := rt.Execute(ctx, "t-cancel", clusterSpec("bfs", 2, false))
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if st := rt.Status(); st.Failovers != 0 {
		t.Errorf("cancelled run triggered failover: %+v", st)
	}
}

// TestWorkerOutOfSync: a run request whose expected graph shape disagrees
// with the replica is refused with the out_of_sync code — the router's
// signal to pull the replica for resync rather than serve a wrong answer.
func TestWorkerOutOfSync(t *testing.T) {
	_, ts := newTestWorker(t)
	spec := clusterSpec("pr", 2, false)
	body, _ := json.Marshal(RunRequest{
		RunID: "t-sync", Worker: ts.URL, Graph: spec.Graph, App: spec.App,
		Iters: spec.Iters, Partitions: 2, Owned: []int{0, 1},
		Vertices: spec.Vertices + 1, Edges: spec.Edges,
	})
	resp, err := http.Post(ts.URL+"/internal/run", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb errorBody
	json.NewDecoder(resp.Body).Decode(&eb)
	if resp.StatusCode != http.StatusConflict || eb.Code != "out_of_sync" {
		t.Fatalf("status %d code %q, want 409 out_of_sync", resp.StatusCode, eb.Code)
	}
}

// TestWorkerUnknownGraph maps to not_found, the resync-this-replica signal.
func TestWorkerUnknownGraph(t *testing.T) {
	_, ts := newTestWorker(t)
	body, _ := json.Marshal(RunRequest{RunID: "t-404", Worker: ts.URL, Graph: "nope", App: "pr", Partitions: 1, Owned: []int{0}})
	resp, err := http.Post(ts.URL+"/internal/run", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb errorBody
	json.NewDecoder(resp.Body).Decode(&eb)
	if resp.StatusCode != http.StatusNotFound || eb.Code != "not_found" {
		t.Fatalf("status %d code %q, want 404 not_found", resp.StatusCode, eb.Code)
	}
}

// --- Hub unit tests ---

func hubPost(worker string, iter int, parts map[int][]uint64, layout map[int]int) *ExchangePost {
	p := &ExchangePost{RunID: "r", Worker: worker, Iter: iter}
	for part, words := range parts {
		p.Segments = append(p.Segments, Segment{Part: part, WordLo: layout[part], Words: wordsToBytes(words)})
	}
	return p
}

// TestHubMergeAndRetry drives one two-worker round by hand: the merged
// frontier, active count, per-partition bytes, and the idempotent cached
// reply for a retried post.
func TestHubMergeAndRetry(t *testing.T) {
	h := NewHub()
	h.Register("r", map[string][]int{"a": {0}, "b": {1}}, 2, 4)
	defer h.Unregister("r")
	layout := map[int]int{0: 0, 1: 2} // PartitionEven(4,2): [0,2) and [2,4)

	var replyA *ExchangeReply
	done := make(chan error, 1)
	go func() {
		var err error
		replyA, err = h.Post(context.Background(), hubPost("a", 0, map[int][]uint64{0: {1, 2}}, layout))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	replyB, err := h.Post(context.Background(), hubPost("b", 0, map[int][]uint64{1: {4, 8}}, layout))
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if replyA.Active != 4 {
		t.Errorf("active = %d, want 4", replyA.Active)
	}
	want := []uint64{1, 2, 4, 8}
	got := bytesToWords(replyB.Frontier)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged frontier %v, want %v", got, want)
		}
	}
	if replyA.Bytes[0] != 16 || replyA.Bytes[1] != 16 {
		t.Errorf("per-partition bytes %v, want [16 16]", replyA.Bytes)
	}
	// Retry of the completed round returns the cached reply.
	again, err := h.Post(context.Background(), hubPost("a", 0, map[int][]uint64{0: {1, 2}}, layout))
	if err != nil || again.Iter != 0 || again.Active != 4 {
		t.Fatalf("retry: %v %+v", err, again)
	}
	if h.Rounds("r") != 1 {
		t.Errorf("rounds = %d, want 1", h.Rounds("r"))
	}
	if pb := h.PartBytes("r"); pb[0] != 16 || pb[1] != 16 {
		t.Errorf("cumulative PartBytes %v", pb)
	}
}

// TestHubWedgedRound: a round that never completes aborts at RoundTimeout
// with the missing worker recorded as the laggard.
func TestHubWedgedRound(t *testing.T) {
	h := NewHub()
	h.RoundTimeout = 50 * time.Millisecond
	h.Register("r", map[string][]int{"a": {0}, "b": {1}}, 2, 4)
	defer h.Unregister("r")
	layout := map[int]int{0: 0, 1: 2}
	_, err := h.Post(context.Background(), hubPost("a", 0, map[int][]uint64{0: {1, 2}}, layout))
	var rae *RunAbortedError
	if !errors.As(err, &rae) {
		t.Fatalf("want RunAbortedError from wedged round, got %v", err)
	}
	lag := h.Laggards("r")
	if len(lag) != 1 || lag[0] != "b" {
		t.Errorf("laggards = %v, want [b]", lag)
	}
}

// TestHubProtocolViolations: posts from unenlisted workers, for the wrong
// iteration, or with the wrong geometry abort the run rather than corrupt
// the frontier.
func TestHubProtocolViolations(t *testing.T) {
	layout := map[int]int{0: 0, 1: 2}
	t.Run("unenlisted", func(t *testing.T) {
		h := NewHub()
		h.Register("r", map[string][]int{"a": {0, 1}}, 2, 4)
		defer h.Unregister("r")
		_, err := h.Post(context.Background(), hubPost("z", 0, map[int][]uint64{0: {1, 2}}, layout))
		var rae *RunAbortedError
		if !errors.As(err, &rae) {
			t.Fatalf("unenlisted post accepted: %v", err)
		}
	})
	t.Run("wrong-iter", func(t *testing.T) {
		h := NewHub()
		h.Register("r", map[string][]int{"a": {0, 1}}, 2, 4)
		defer h.Unregister("r")
		_, err := h.Post(context.Background(), hubPost("a", 3, map[int][]uint64{0: {1, 2}, 1: {0, 0}}, layout))
		var rae *RunAbortedError
		if !errors.As(err, &rae) {
			t.Fatalf("future-iteration post accepted: %v", err)
		}
	})
	t.Run("bad-geometry", func(t *testing.T) {
		h := NewHub()
		h.Register("r", map[string][]int{"a": {0, 1}}, 2, 4)
		defer h.Unregister("r")
		_, err := h.Post(context.Background(), hubPost("a", 0, map[int][]uint64{0: {1}, 1: {0, 0}}, layout))
		var rae *RunAbortedError
		if !errors.As(err, &rae) {
			t.Fatalf("short segment accepted: %v", err)
		}
	})
	t.Run("unknown-run", func(t *testing.T) {
		h := NewHub()
		_, err := h.Post(context.Background(), hubPost("a", 0, map[int][]uint64{0: {1, 2}}, layout))
		if !errors.Is(err, ErrUnknownRun) {
			t.Fatalf("want ErrUnknownRun, got %v", err)
		}
	})
}

// TestNetExchangeDivergence: a merged frontier that contradicts the local
// one on a non-owned word is a replica-drift bug and must fail the run.
func TestNetExchangeDivergence(t *testing.T) {
	h := NewHub()
	h.Register("r", map[string][]int{"w": {0}, "peer": {1}}, 2, 2)
	defer h.Unregister("r")
	mux := http.NewServeMux()
	mux.HandleFunc("POST /internal/exchange", func(w http.ResponseWriter, req *http.Request) {
		var p ExchangePost
		json.NewDecoder(req.Body).Decode(&p)
		reply, err := h.Post(req.Context(), &p)
		if err != nil {
			writeClusterError(w, http.StatusConflict, "aborted", err)
			return
		}
		json.NewEncoder(w).Encode(reply)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// The peer posts a word that differs from what our worker computed
	// locally for the partition it does not own.
	go h.Post(context.Background(), &ExchangePost{RunID: "r", Worker: "peer", Iter: 0,
		Segments: []Segment{{Part: 1, WordLo: 1, Words: wordsToBytes([]uint64{0xff})}}})

	ex := &NetExchange{Client: ts.Client(), URL: ts.URL + "/internal/exchange", RunID: "r", Worker: "w", Owned: map[int]bool{0: true}}
	deltas := []grazelle.FrontierDelta{
		{Part: 0, WordLo: 0, Words: []uint64{1}},
		{Part: 1, WordLo: 1, Words: []uint64{0xaa}}, // local disagreement
	}
	_, err := ex.Exchange(context.Background(), deltas)
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("want DivergenceError, got %v", err)
	}
}

// TestRouterResync: a router over one real serve-shaped worker pushes its
// catalog (graph add + retained mutation batch) through the worker's public
// API before routing to it.
func TestRouterResync(t *testing.T) {
	// A minimal stand-in for the worker's public surface: records what the
	// router replays.
	var mu sync.Mutex
	var adds, batches []string
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok\n")) })
	mux.HandleFunc("POST /v1/graphs", func(w http.ResponseWriter, r *http.Request) {
		var spec GraphSpec
		json.NewDecoder(r.Body).Decode(&spec)
		mu.Lock()
		adds = append(adds, spec.Name)
		mu.Unlock()
		w.Write([]byte("{}"))
	})
	mux.HandleFunc("POST /v1/graphs/{name}/edges", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		batches = append(batches, r.PathValue("name"))
		mu.Unlock()
		w.Write([]byte("{}"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rt := NewRouter(RouterConfig{Workers: []string{ts.URL}, Partitions: 2, HealthInterval: 20 * time.Millisecond})
	defer rt.Close()
	rt.RecordGraph(GraphSpec{Name: "g", Dataset: "C", Scale: 0.25})
	rt.EdgesApplied("g", []grazelle.EdgeOp{{Src: 1, Dst: 2, Weight: 1}})
	rt.Start()
	waitAvailable(t, rt, 1)

	mu.Lock()
	defer mu.Unlock()
	if len(adds) != 1 || adds[0] != "g" {
		t.Errorf("replayed adds %v, want [g]", adds)
	}
	if len(batches) != 1 || batches[0] != "g" {
		t.Errorf("replayed batches %v, want [g]", batches)
	}
}

// TestRouterBroadcastDesync: a worker that refuses a broadcast drops out of
// rotation until resync repairs it.
func TestRouterBroadcastDesync(t *testing.T) {
	var refuse sync.Map
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok\n")) })
	mux.HandleFunc("POST /v1/graphs", func(w http.ResponseWriter, r *http.Request) {
		if _, bad := refuse.Load("on"); bad {
			http.Error(w, `{"error":"disk full"}`, http.StatusInternalServerError)
			return
		}
		w.Write([]byte("{}"))
	})
	mux.HandleFunc("POST /v1/graphs/{name}/edges", func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("{}")) })
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rt := NewRouter(RouterConfig{Workers: []string{ts.URL}, Partitions: 2, HealthInterval: 20 * time.Millisecond})
	defer rt.Close()
	rt.Start()
	waitAvailable(t, rt, 1)

	refuse.Store("on", struct{}{})
	rt.GraphAdded(GraphSpec{Name: "g2", Dataset: "C", Scale: 0.1})
	if avail := rt.available(); len(avail) != 0 {
		t.Fatalf("worker still in rotation after refused broadcast")
	}
	refuse.Delete("on")
	waitAvailable(t, rt, 1) // resync repairs it
}
