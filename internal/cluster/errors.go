package cluster

import (
	"errors"
	"fmt"
)

// ErrUnknownRun reports an exchange post for a run the hub is not serving —
// either never registered or already unregistered after completion.
var ErrUnknownRun = errors.New("cluster: unknown run")

// UnavailableError reports that a query could not be placed: no healthy,
// synced worker exists (or failover exhausted the roster). The serving layer
// maps it to 503 with Retry-After so clients back off while health checks
// and resync repair the tier.
type UnavailableError struct {
	Reason string
	// Cause is the last per-worker failure when failover ran out of
	// replicas; nil when the roster was empty to begin with.
	Cause error
}

func (e *UnavailableError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("cluster: unavailable: %s: %v", e.Reason, e.Cause)
	}
	return "cluster: unavailable: " + e.Reason
}

func (e *UnavailableError) Unwrap() error { return e.Cause }

// PeerError reports one worker's failure during a scatter-gathered run: a
// transport error (Status 0), a non-200 internal response, or a wedged peer
// detected by the exchange hub's round timeout (Code "wedged").
type PeerError struct {
	Worker string
	Status int
	Code   string
	Msg    string
	Err    error
}

func (e *PeerError) Error() string {
	switch {
	case e.Err != nil:
		return fmt.Sprintf("cluster: worker %s: %v", e.Worker, e.Err)
	case e.Code != "":
		return fmt.Sprintf("cluster: worker %s: %d %s: %s", e.Worker, e.Status, e.Code, e.Msg)
	default:
		return fmt.Sprintf("cluster: worker %s: status %d: %s", e.Worker, e.Status, e.Msg)
	}
}

func (e *PeerError) Unwrap() error { return e.Err }

// RunAbortedError is the error every worker still waiting at the exchange
// barrier receives when a run is torn down mid-iteration (a peer died, a
// round timed out, the router cancelled).
type RunAbortedError struct {
	RunID string
	Cause error
}

func (e *RunAbortedError) Error() string {
	return fmt.Sprintf("cluster: run %s aborted: %v", e.RunID, e.Cause)
}

func (e *RunAbortedError) Unwrap() error { return e.Cause }

// ExchangeError marks a run failure that originated at the network
// frontier barrier rather than in the worker's own compute. Workers report
// it with code "exchange" so the router knows the worker is an abort victim
// (or retry candidate), not a faulty replica.
type ExchangeError struct {
	Err error
}

func (e *ExchangeError) Error() string { return e.Err.Error() }

func (e *ExchangeError) Unwrap() error { return e.Err }

// DivergenceError reports that a worker's locally computed frontier words
// disagree with the merged authoritative words it received — by the
// bit-determinism contract that can only mean replicas are out of sync, so
// the run fails loudly instead of serving a wrong answer.
type DivergenceError struct {
	Part, Word int
	Local, Got uint64
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("cluster: frontier divergence at partition %d word %d: local %#x, merged %#x (replica out of sync)",
		e.Part, e.Word, e.Local, e.Got)
}
