package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/coord"
	"repro/internal/fault"
)

// NetExchange is the network implementation of coord.Exchange a worker
// installs for one cluster-executed run: each frontier iteration it posts
// the worker's owned partition segments to the router's exchange hub,
// blocks until every peer has posted, verifies the merged frontier against
// the locally computed one (bit-determinism makes any difference a sync
// bug), and writes the merged words back through the coordinator's aliased
// delta slices.
//
// Transient transport failures are retried with backoff (Retries, Backoff);
// HTTP-level errors are not — they are the hub telling this worker the run
// is over. The cluster/exchange failpoint sits at the top so the chaos
// suite can fail or delay the barrier exactly like coord/exchange does for
// the shared-memory tier.
type NetExchange struct {
	Client *http.Client
	URL    string
	RunID  string
	Worker string
	// Owned flags the partitions this worker ships segments for.
	Owned map[int]bool
	// Retries bounds transport-error retries per post (default 2);
	// Backoff is the initial retry delay, doubling per attempt (default 25ms).
	Retries int
	Backoff time.Duration

	iter int
	// BytesOut and BytesIn account actual wire traffic (segment payloads
	// out, merged frontier in); RetryCount counts transport retries taken.
	BytesOut, BytesIn int64
	RetryCount        int
}

func (e *NetExchange) Exchange(ctx context.Context, deltas []coord.FrontierDelta) (coord.ExchangeResult, error) {
	res, err := e.exchange(ctx, deltas)
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		// Context errors stay bare so the worker maps them to a timeout;
		// everything else is tagged as a barrier failure, which the router
		// treats as "abort victim or transient", never as a faulty replica.
		err = &ExchangeError{Err: err}
	}
	return res, err
}

func (e *NetExchange) exchange(ctx context.Context, deltas []coord.FrontierDelta) (coord.ExchangeResult, error) {
	// Failpoint first, then the context check — same ordering as the
	// shared-memory exchange: a delay spec models a slow peer, after which a
	// cancelled context must surface instead of a successful barrier.
	if err := fault.Inject("cluster/exchange"); err != nil {
		return coord.ExchangeResult{}, fmt.Errorf("cluster: frontier exchange failed: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return coord.ExchangeResult{}, fmt.Errorf("cluster: frontier exchange cancelled: %w", err)
	}

	post := ExchangePost{RunID: e.RunID, Worker: e.Worker, Iter: e.iter}
	for _, d := range deltas {
		if e.Owned[d.Part] {
			post.Segments = append(post.Segments, Segment{
				Part:   d.Part,
				WordLo: d.WordLo,
				Words:  wordsToBytes(d.Words),
			})
			e.BytesOut += d.Bytes()
		}
	}
	body, err := json.Marshal(&post)
	if err != nil {
		return coord.ExchangeResult{}, err
	}

	reply, err := e.post(ctx, body)
	if err != nil {
		return coord.ExchangeResult{}, err
	}
	if reply.Iter != e.iter {
		return coord.ExchangeResult{}, fmt.Errorf("cluster: exchange reply for iter %d during iter %d", reply.Iter, e.iter)
	}
	words := 0
	for _, d := range deltas {
		words += len(d.Words)
	}
	if len(reply.Frontier) != words*8 || len(reply.Bytes) != len(deltas) {
		return coord.ExchangeResult{}, fmt.Errorf("cluster: malformed exchange reply: %d frontier bytes for %d words, %d byte counts for %d partitions",
			len(reply.Frontier), words, len(reply.Bytes), len(deltas))
	}
	e.BytesIn += int64(len(reply.Frontier))

	merged := bytesToWords(reply.Frontier)
	for _, d := range deltas {
		seg := merged[d.WordLo : d.WordLo+len(d.Words)]
		if !e.Owned[d.Part] {
			// The authoritative words came from a peer replica; by
			// bit-determinism they must equal ours. A mismatch means replicas
			// have drifted — refuse to publish a wrong frontier.
			for i, w := range seg {
				if d.Words[i] != w {
					return coord.ExchangeResult{}, &DivergenceError{
						Part: d.Part, Word: d.WordLo + i, Local: d.Words[i], Got: w,
					}
				}
			}
		}
		copy(d.Words, seg)
	}
	e.iter++
	return coord.ExchangeResult{Active: reply.Active, Bytes: reply.Bytes}, nil
}

// post sends one exchange post, retrying transport errors with backoff.
func (e *NetExchange) post(ctx context.Context, body []byte) (*ExchangeReply, error) {
	retries := e.Retries
	if retries == 0 {
		retries = 2
	}
	backoff := e.Backoff
	if backoff <= 0 {
		backoff = 25 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			e.RetryCount++
			select {
			case <-time.After(backoff):
				backoff *= 2
			case <-ctx.Done():
				return nil, fmt.Errorf("cluster: frontier exchange cancelled: %w", ctx.Err())
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.URL, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := e.Client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("cluster: frontier exchange cancelled: %w", ctx.Err())
			}
			lastErr = fmt.Errorf("cluster: exchange post: %w", err)
			continue
		}
		payload, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("cluster: exchange reply read: %w", err)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			var eb errorBody
			_ = json.Unmarshal(payload, &eb)
			msg := eb.Error
			if msg == "" {
				msg = string(payload)
			}
			return nil, fmt.Errorf("cluster: exchange rejected (status %d): %s", resp.StatusCode, msg)
		}
		var reply ExchangeReply
		if err := json.Unmarshal(payload, &reply); err != nil {
			return nil, fmt.Errorf("cluster: exchange reply decode: %w", err)
		}
		return &reply, nil
	}
	return nil, lastErr
}
