package cluster

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"repro/internal/numa"
)

// Hub is the router-side exchange barrier: per run it collects each
// enlisted worker's owned frontier segments for the current iteration,
// merges them into the full next-frontier bitmap, and releases every waiter
// with the merged words plus the per-partition byte accounting. Rounds are
// strictly sequential; a retried post for the just-completed round gets the
// cached reply (idempotent retries), and a round that outlives RoundTimeout
// aborts the run with the laggards recorded.
type Hub struct {
	// RoundTimeout bounds how long a posted worker waits for its peers
	// before the run is declared wedged (0 = DefaultRoundTimeout).
	RoundTimeout time.Duration
	// OnRound, when non-nil, observes each completed round.
	OnRound func()
	// PeerTraffic, when non-nil, observes one worker's exchange wire bytes.
	PeerTraffic func(worker string, in, out int64)
	// PeerWait, when non-nil, observes how long one worker's post waited at
	// the barrier for its peers.
	PeerWait func(worker string, d time.Duration)

	mu   sync.Mutex
	runs map[string]*hubRun
}

// DefaultRoundTimeout is the wedged-peer bound when Hub.RoundTimeout is 0.
const DefaultRoundTimeout = 30 * time.Second

type hubRound struct {
	iter  int
	done  chan struct{}
	reply *ExchangeReply
	err   error
}

type hubRun struct {
	mu       sync.Mutex
	owners   map[string][]int // worker -> partitions it is authoritative for
	parts    int
	words    numa.Partition // word-space layout, parts pieces
	frontier []uint64
	cur      *hubRound
	prev     *hubRound
	posts    map[string]time.Time // arrival time per worker this round
	partBytes []int64             // cumulative per-partition exchange bytes
	rounds   int
	abortErr error
	laggards []string
}

// NewHub creates an empty hub.
func NewHub() *Hub { return &Hub{runs: make(map[string]*hubRun)} }

// Register enlists a run: owners maps each participating worker to the
// partitions it is authoritative for, over a parts-way layout of a
// words-word frontier bitmap. The layout is numa.PartitionEven — the same
// geometry every worker's engine plan computes independently from (N,
// parts), which is what lets segment ranges be validated without any
// negotiation.
func (h *Hub) Register(runID string, owners map[string][]int, parts, words int) {
	run := &hubRun{
		owners:    owners,
		parts:     parts,
		words:     numa.PartitionEven(words, parts),
		frontier:  make([]uint64, words),
		cur:       &hubRound{done: make(chan struct{})},
		posts:     make(map[string]time.Time),
		partBytes: make([]int64, parts),
	}
	h.mu.Lock()
	h.runs[runID] = run
	h.mu.Unlock()
}

// Unregister removes a completed run; any straggling waiter gets
// ErrUnknownRun on its next post.
func (h *Hub) Unregister(runID string) {
	h.mu.Lock()
	run := h.runs[runID]
	delete(h.runs, runID)
	h.mu.Unlock()
	if run != nil {
		run.abort(&RunAbortedError{RunID: runID, Cause: ErrUnknownRun})
	}
}

// Abort fails the run's current round (and all future posts) with cause.
func (h *Hub) Abort(runID string, cause error) {
	if run := h.lookup(runID); run != nil {
		run.abort(&RunAbortedError{RunID: runID, Cause: cause})
	}
}

// PartBytes returns the cumulative per-partition exchange bytes the run has
// moved through the hub so far.
func (h *Hub) PartBytes(runID string) []int64 {
	run := h.lookup(runID)
	if run == nil {
		return nil
	}
	run.mu.Lock()
	defer run.mu.Unlock()
	out := make([]int64, len(run.partBytes))
	copy(out, run.partBytes)
	return out
}

// Rounds returns how many exchange rounds the run has completed.
func (h *Hub) Rounds(runID string) int {
	run := h.lookup(runID)
	if run == nil {
		return 0
	}
	run.mu.Lock()
	defer run.mu.Unlock()
	return run.rounds
}

// Laggards returns the workers that had not posted when the run's round
// timed out (empty unless a timeout abort happened).
func (h *Hub) Laggards(runID string) []string {
	run := h.lookup(runID)
	if run == nil {
		return nil
	}
	run.mu.Lock()
	defer run.mu.Unlock()
	return append([]string(nil), run.laggards...)
}

func (h *Hub) lookup(runID string) *hubRun {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.runs[runID]
}

func (run *hubRun) abort(err *RunAbortedError) {
	run.mu.Lock()
	defer run.mu.Unlock()
	run.abortLocked(err)
}

// abortLocked fails the current round; idempotent.
func (run *hubRun) abortLocked(err *RunAbortedError) {
	if run.abortErr != nil {
		return
	}
	run.abortErr = err
	run.cur.err = err
	close(run.cur.done)
}

// Post delivers one worker's segments for one iteration and blocks until
// the round completes, the run aborts, ctx cancels, or the round times out.
func (h *Hub) Post(ctx context.Context, p *ExchangePost) (*ExchangeReply, error) {
	run := h.lookup(p.RunID)
	if run == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownRun, p.RunID)
	}

	run.mu.Lock()
	if run.abortErr != nil {
		err := run.abortErr
		run.mu.Unlock()
		return nil, err
	}
	// Idempotent retry: a worker that lost the previous reply in transit
	// reposts the completed iteration and gets the cached reply back.
	if run.prev != nil && p.Iter == run.prev.iter {
		reply := run.prev.reply
		run.mu.Unlock()
		h.accountTraffic(p, reply)
		return reply, nil
	}
	if p.Iter != run.cur.iter {
		err := &RunAbortedError{RunID: p.RunID, Cause: fmt.Errorf(
			"cluster: protocol violation: worker %s posted iter %d during iter %d", p.Worker, p.Iter, run.cur.iter)}
		run.abortLocked(err)
		run.mu.Unlock()
		return nil, err
	}
	owned, ok := run.owners[p.Worker]
	if !ok {
		err := &RunAbortedError{RunID: p.RunID, Cause: fmt.Errorf(
			"cluster: protocol violation: post from unenlisted worker %s", p.Worker)}
		run.abortLocked(err)
		run.mu.Unlock()
		return nil, err
	}
	if err := run.mergeLocked(p, owned); err != nil {
		aerr := &RunAbortedError{RunID: p.RunID, Cause: err}
		run.abortLocked(aerr)
		run.mu.Unlock()
		return nil, aerr
	}
	arrived := time.Now()
	if _, dup := run.posts[p.Worker]; !dup {
		run.posts[p.Worker] = arrived
	}
	round := run.cur
	var reply *ExchangeReply
	if len(run.posts) == len(run.owners) {
		reply = run.completeRoundLocked(h, arrived)
	}
	run.mu.Unlock()

	if reply != nil {
		h.accountTraffic(p, reply)
		return reply, nil
	}

	timeout := h.RoundTimeout
	if timeout <= 0 {
		timeout = DefaultRoundTimeout
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-round.done:
		if round.err != nil {
			return nil, round.err
		}
		h.accountTraffic(p, round.reply)
		return round.reply, nil
	case <-ctx.Done():
		// The waiter's own connection died; the round can still complete for
		// the others, so only this post fails.
		return nil, ctx.Err()
	case <-timer.C:
		run.mu.Lock()
		if run.cur == round && round.err == nil && round.reply == nil {
			for w := range run.owners {
				if _, posted := run.posts[w]; !posted {
					run.laggards = append(run.laggards, w)
				}
			}
			run.abortLocked(&RunAbortedError{RunID: p.RunID, Cause: fmt.Errorf(
				"cluster: exchange round %d wedged for %v waiting on %v", round.iter, timeout, run.laggards)})
		}
		run.mu.Unlock()
		// Re-read the round outcome: a completion may have raced the timer.
		<-round.done
		if round.err != nil {
			return nil, round.err
		}
		h.accountTraffic(p, round.reply)
		return round.reply, nil
	}
}

// accountTraffic charges one successful post/reply pair to the worker's wire
// counters: segment payload in, merged frontier out.
func (h *Hub) accountTraffic(p *ExchangePost, reply *ExchangeReply) {
	if h.PeerTraffic == nil || reply == nil {
		return
	}
	var in int64
	for _, seg := range p.Segments {
		in += int64(len(seg.Words))
	}
	h.PeerTraffic(p.Worker, in, int64(len(reply.Frontier)))
}

// mergeLocked validates one post's segments against the worker's ownership
// and the run's word layout, then copies them into the merged frontier.
func (run *hubRun) mergeLocked(p *ExchangePost, owned []int) error {
	ownedSet := make(map[int]bool, len(owned))
	for _, part := range owned {
		ownedSet[part] = true
	}
	if len(p.Segments) != len(owned) {
		return fmt.Errorf("cluster: worker %s posted %d segments, owns %d partitions",
			p.Worker, len(p.Segments), len(owned))
	}
	for _, seg := range p.Segments {
		if !ownedSet[seg.Part] {
			return fmt.Errorf("cluster: worker %s posted unowned partition %d", p.Worker, seg.Part)
		}
		lo, hi := run.words.Range(seg.Part)
		if seg.WordLo != lo || len(seg.Words) != (hi-lo)*8 {
			return fmt.Errorf("cluster: partition %d segment geometry [%d,+%dB) does not match layout [%d,%d)",
				seg.Part, seg.WordLo, len(seg.Words), lo, hi)
		}
		copy(run.frontier[lo:hi], bytesToWords(seg.Words))
	}
	return nil
}

// completeRoundLocked closes the current round: popcount the merged
// frontier, charge per-partition bytes, cache the reply for retries, and
// open the next round.
func (run *hubRun) completeRoundLocked(h *Hub, completed time.Time) *ExchangeReply {
	active := 0
	for _, w := range run.frontier {
		active += bits.OnesCount64(w)
	}
	byteCounts := make([]int64, run.parts)
	for part := 0; part < run.parts; part++ {
		lo, hi := run.words.Range(part)
		byteCounts[part] = int64(hi-lo) * 8
		run.partBytes[part] += byteCounts[part]
	}
	round := run.cur
	round.reply = &ExchangeReply{
		Iter:     round.iter,
		Active:   active,
		Frontier: wordsToBytes(run.frontier),
		Bytes:    byteCounts,
	}
	run.rounds++
	run.prev = round
	run.cur = &hubRound{iter: round.iter + 1, done: make(chan struct{})}
	if h.OnRound != nil {
		h.OnRound()
	}
	if h.PeerWait != nil {
		for w, at := range run.posts {
			h.PeerWait(w, completed.Sub(at))
		}
	}
	run.posts = make(map[string]time.Time)
	close(round.done)
	return round.reply
}
