package cluster

import (
	"time"

	"repro/internal/obs"
)

// fanoutBounds buckets the scatter-gather fan-out histogram (workers per
// run).
var fanoutBounds = []float64{1, 2, 4, 8, 16}

// routerMetrics holds the grazelle_cluster_* families. They live in the
// router's store registry so /metrics and /v1/cluster read the same cells.
type routerMetrics struct {
	runs      *obs.Counter
	failures  *obs.Counter
	failovers *obs.Counter
	rounds    *obs.Counter
	fanout    *obs.Histogram
	peerIn    map[string]*obs.Counter
	peerOut   map[string]*obs.Counter
	peerWait  map[string]*obs.Histogram
}

func newRouterMetrics(reg *obs.Registry, peers []string) *routerMetrics {
	m := &routerMetrics{
		runs: reg.Counter("grazelle_cluster_runs_total",
			"Queries executed through the cluster tier.", nil),
		failures: reg.Counter("grazelle_cluster_run_failures_total",
			"Cluster queries that failed after any failover.", nil),
		failovers: reg.Counter("grazelle_cluster_failovers_total",
			"Cluster runs re-placed onto surviving replicas after a worker failure.", nil),
		rounds: reg.Counter("grazelle_cluster_exchange_rounds_total",
			"Completed network frontier-exchange rounds.", nil),
		fanout: reg.Histogram("grazelle_cluster_fanout_workers",
			"Workers participating per scatter-gathered run.", nil, fanoutBounds),
		peerIn:   make(map[string]*obs.Counter, len(peers)),
		peerOut:  make(map[string]*obs.Counter, len(peers)),
		peerWait: make(map[string]*obs.Histogram, len(peers)),
	}
	for _, p := range peers {
		m.peerIn[p] = reg.Counter("grazelle_cluster_peer_exchange_bytes_total",
			"Exchange wire bytes per worker and direction.", obs.Labels{"peer": p, "dir": "in"})
		m.peerOut[p] = reg.Counter("grazelle_cluster_peer_exchange_bytes_total",
			"Exchange wire bytes per worker and direction.", obs.Labels{"peer": p, "dir": "out"})
		m.peerWait[p] = reg.Histogram("grazelle_cluster_peer_exchange_wait_seconds",
			"Time each worker's exchange post waited at the barrier for its peers.",
			obs.Labels{"peer": p}, obs.DefTimeBuckets)
	}
	return m
}

func (m *routerMetrics) peerTraffic(worker string, in, out int64) {
	if c := m.peerIn[worker]; c != nil {
		c.Add(uint64(in))
	}
	if c := m.peerOut[worker]; c != nil {
		c.Add(uint64(out))
	}
}

func (m *routerMetrics) peerWaited(worker string, d time.Duration) {
	if h := m.peerWait[worker]; h != nil {
		h.Observe(d.Seconds())
	}
}
