// Package cluster is the horizontal scale-out tier: a router process that
// owns graph placement and serves the public query API, and worker processes
// that hold graph replicas and execute runs, synchronized once per iteration
// by shipping frontier-delta bitmap words through the router's exchange hub.
//
// The design follows the coordinator seam PR 7 left (internal/coord): the
// only state that must cross a process boundary per iteration is the
// frontier delta, so a worker runs the ordinary partitioned engine with the
// shared-memory Exchange swapped for NetExchange. Each worker holds a full
// replica and executes every partition span locally (the pull kernels read
// all source properties, so properties never cross the wire); partition
// *ownership* decides whose frontier words are authoritative at the barrier.
// Because every engine is bit-deterministic at any worker count, all
// replicas produce identical words and the merged frontier equals each
// worker's local one — which is what makes router-executed results
// bit-identical to single-process runs, and what the exchange verifies
// every iteration (see NetExchange's divergence check).
//
// The wire barrier is load-bearing even though its payload is redundant: it
// is where a dead or wedged peer is detected mid-run, where the
// cluster/exchange failpoint injects chaos, and where per-peer byte and
// latency accounting comes from.
package cluster

import (
	"encoding/binary"
	"encoding/json"
)

// GraphSpec describes how to materialize one graph on a worker — the same
// fields the public POST /v1/graphs accepts, so the router replays its
// catalog through a worker's ordinary serving API when resyncing it.
type GraphSpec struct {
	Name    string  `json:"name"`
	Dataset string  `json:"dataset,omitempty"`
	Scale   float64 `json:"scale,omitempty"`
	Path    string  `json:"path,omitempty"`
}

// RunSpec is the router-side input to Execute: one normalized query plus
// the pinned graph's identity facts used for cross-replica consistency
// checks.
type RunSpec struct {
	Graph      string
	App        string
	Iters      int
	Root       uint32
	K          int
	Partitions int
	Values     bool
	// Vertices and Edges are the router replica's counts at the pinned
	// version; a worker whose replica disagrees refuses the run with
	// out_of_sync instead of computing a divergent answer.
	Vertices, Edges int
	// TimeoutMS bounds the worker-side run (0 = worker default).
	TimeoutMS int64
}

// RunRequest is the router → worker body of POST /internal/run.
type RunRequest struct {
	RunID string `json:"run_id"`
	// Worker is this worker's identity in the router's roster; it labels the
	// worker's exchange posts.
	Worker string `json:"worker"`
	// ExchangeURL is the router's exchange hub endpoint.
	ExchangeURL string `json:"exchange_url"`
	Graph       string `json:"graph"`
	App         string `json:"app"`
	Iters       int    `json:"iters"`
	Root        uint32 `json:"root"`
	K           int    `json:"k"`
	Partitions  int    `json:"partitions"`
	// Owned lists the partitions whose frontier words this worker is
	// authoritative for at the exchange barrier.
	Owned []int `json:"owned"`
	// Vertices and Edges are the router's expected graph shape.
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
	// Primary marks the one worker whose summary/values serialize into the
	// client response; secondaries return counters only.
	Primary   bool  `json:"primary"`
	Values    bool  `json:"values"`
	TimeoutMS int64 `json:"timeout_ms"`
}

// RunResponse is the worker → router body of a successful /internal/run.
// Summary values and Values are pre-marshaled on the worker and passed
// through the router verbatim, so the assembled client payload is
// byte-identical to what the single-process server would emit.
type RunResponse struct {
	Iterations     int                        `json:"iterations"`
	PullIterations int                        `json:"pull_iterations"`
	PushIterations int                        `json:"push_iterations"`
	Mode           string                     `json:"mode"`
	Partitions     int                        `json:"partitions"`
	ElapsedMS      int64                      `json:"elapsed_ms"`
	ExchangeBytes  int64                      `json:"exchange_bytes"`
	Summary        map[string]json.RawMessage `json:"summary,omitempty"`
	Values         json.RawMessage            `json:"values,omitempty"`
}

// Segment is one owned partition's frontier words for one iteration.
// Words is the little-endian byte serialization of the partition's 64-bit
// bitmap slice (base64 on the JSON wire).
type Segment struct {
	Part   int    `json:"part"`
	WordLo int    `json:"word_lo"`
	Words  []byte `json:"words"`
}

// ExchangePost is the worker → router body of POST /internal/exchange:
// one worker's owned segments for one iteration's barrier.
type ExchangePost struct {
	RunID    string    `json:"run_id"`
	Worker   string    `json:"worker"`
	Iter     int       `json:"iter"`
	Segments []Segment `json:"segments"`
}

// ExchangeReply is the hub's answer once every enlisted worker has posted:
// the full merged frontier plus the per-partition byte accounting the
// coordinator charges (identical to what the shared-memory exchange would
// have reported, keeping exchange_bytes comparable across tiers).
type ExchangeReply struct {
	Iter     int     `json:"iter"`
	Active   int     `json:"active"`
	Frontier []byte  `json:"frontier"`
	Bytes    []int64 `json:"bytes"`
}

// errorBody is the typed error JSON both internal endpoints use.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// wordsToBytes serializes bitmap words little-endian.
func wordsToBytes(words []uint64) []byte {
	out := make([]byte, len(words)*8)
	for i, w := range words {
		binary.LittleEndian.PutUint64(out[i*8:], w)
	}
	return out
}

// bytesToWords inverts wordsToBytes. Trailing partial words are rejected by
// the callers' length validation before this runs.
func bytesToWords(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}
