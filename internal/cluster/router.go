package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	grazelle "repro"
	"repro/internal/obs"
)

// maxCatalogBatches bounds the retained mutation history per graph; a graph
// past it can no longer be resynced onto a restarted worker (that worker
// stays out of rotation until the graph is re-added or the worker restarts
// with persistent state of its own).
const maxCatalogBatches = 1024

// RouterConfig configures a Router.
type RouterConfig struct {
	// Workers is the static roster of worker base URLs.
	Workers []string
	// Partitions is the coordinator partition count runs execute with
	// (display default for Status; Execute takes it per RunSpec).
	Partitions int
	// HealthInterval paces the /readyz + resync loop (default 1s).
	HealthInterval time.Duration
	// RoundTimeout bounds one exchange round before the run is declared
	// wedged (default DefaultRoundTimeout).
	RoundTimeout time.Duration
	// Registry receives the grazelle_cluster_* families (nil = private
	// registry, for tests).
	Registry *obs.Registry
	// Logger receives health and resync events (nil = discard).
	Logger *slog.Logger
}

// workerState is one roster entry's view from the router.
type workerState struct {
	url     string
	healthy bool
	synced  bool
	lastSeen time.Time
	lastErr string
	rtt     time.Duration
}

// catalogEntry is the router's authoritative lineage for one graph: how to
// materialize it plus every mutation batch applied since, in order — the
// replay script that brings a blank worker in sync.
type catalogEntry struct {
	spec     GraphSpec
	batches  [][]grazelle.EdgeOp
	overflow bool
}

// Router owns placement and cluster execution. It health-checks the worker
// roster, keeps each worker's replica in sync with the graph catalog by
// replaying it through the worker's public API, scatter-gathers runs with
// the exchange Hub as the per-iteration barrier, and fails runs over to
// surviving replicas when a worker dies mid-run.
type Router struct {
	cfg          RouterConfig
	hub          *Hub
	client       *http.Client // runs + catalog broadcast; deadline comes from ctx
	healthClient *http.Client
	log          *slog.Logger
	metrics      *routerMetrics

	mu          sync.Mutex
	workers     []*workerState
	catalog     map[string]*catalogEntry
	catalogGen  uint64
	exchangeURL string
	locks       map[string]*sync.RWMutex

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewRouter creates a router over a static worker roster. Call
// SetExchangeURL once the serving address is known, then Start.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r := &Router{
		cfg:          cfg,
		client:       &http.Client{},
		healthClient: &http.Client{Timeout: 2 * time.Second},
		log:          cfg.Logger,
		catalog:      make(map[string]*catalogEntry),
		locks:        make(map[string]*sync.RWMutex),
		stop:         make(chan struct{}),
	}
	peers := make([]string, 0, len(cfg.Workers))
	for _, u := range cfg.Workers {
		u = strings.TrimRight(u, "/")
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		peers = append(peers, u)
		r.workers = append(r.workers, &workerState{url: u})
	}
	r.metrics = newRouterMetrics(reg, peers)
	r.hub = &Hub{
		RoundTimeout: cfg.RoundTimeout,
		OnRound:      r.metrics.rounds.Inc,
		PeerTraffic:  r.metrics.peerTraffic,
		PeerWait:     r.metrics.peerWaited,
		runs:         make(map[string]*hubRun),
	}
	reg.GaugeFunc("grazelle_cluster_workers", "Worker roster by state.",
		obs.Labels{"state": "total"}, func() float64 { return float64(len(r.workers)) })
	reg.GaugeFunc("grazelle_cluster_workers", "Worker roster by state.",
		obs.Labels{"state": "healthy"}, func() float64 { h, _ := r.counts(); return float64(h) })
	reg.GaugeFunc("grazelle_cluster_workers", "Worker roster by state.",
		obs.Labels{"state": "synced"}, func() float64 { _, s := r.counts(); return float64(s) })
	return r
}

func (r *Router) counts() (healthy, synced int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.workers {
		if w.healthy {
			healthy++
		}
		if w.healthy && w.synced {
			synced++
		}
	}
	return
}

// SetExchangeURL tells the router where workers should post frontier
// segments (its own public address + the exchange route).
func (r *Router) SetExchangeURL(url string) {
	r.mu.Lock()
	r.exchangeURL = url
	r.mu.Unlock()
}

// Start launches the health/resync loop.
func (r *Router) Start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		t := time.NewTicker(r.cfg.HealthInterval)
		defer t.Stop()
		r.healthPass()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				r.healthPass()
			}
		}
	}()
}

// Close stops the health loop.
func (r *Router) Close() {
	r.closeOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// healthPass probes every worker's /readyz and resyncs healthy workers
// whose replicas trail the catalog.
func (r *Router) healthPass() {
	r.mu.Lock()
	roster := append([]*workerState(nil), r.workers...)
	r.mu.Unlock()
	for _, w := range roster {
		start := time.Now()
		resp, err := r.healthClient.Get(w.url + "/readyz")
		ok := err == nil && resp.StatusCode == http.StatusOK
		if resp != nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
		}
		r.mu.Lock()
		wasHealthy := w.healthy
		w.healthy = ok
		w.rtt = time.Since(start)
		if ok {
			w.lastSeen = time.Now()
			w.lastErr = ""
		} else {
			w.synced = false
			if err != nil {
				w.lastErr = err.Error()
			} else {
				w.lastErr = fmt.Sprintf("readyz status %d", resp.StatusCode)
			}
		}
		needSync := ok && !w.synced
		r.mu.Unlock()
		if ok != wasHealthy {
			r.log.Info("cluster worker health changed", "worker", w.url, "healthy", ok)
		}
		if needSync {
			r.resync(w)
		}
	}
}

// resync replays the catalog onto one healthy worker through its public
// API. The replay runs without holding the router lock; a catalog write
// during the replay bumps the generation and the sync flag is withheld, so
// the next health tick replays again from the new state.
func (r *Router) resync(w *workerState) {
	r.mu.Lock()
	gen := r.catalogGen
	entries := make([]catalogEntry, 0, len(r.catalog))
	for _, e := range r.catalog {
		entries = append(entries, catalogEntry{
			spec:     e.spec,
			batches:  append([][]grazelle.EdgeOp(nil), e.batches...),
			overflow: e.overflow,
		})
	}
	r.mu.Unlock()

	for _, e := range entries {
		if e.overflow {
			r.mu.Lock()
			w.lastErr = fmt.Sprintf("graph %s mutation history exceeds %d batches; cannot resync", e.spec.Name, maxCatalogBatches)
			r.mu.Unlock()
			r.log.Warn("cluster resync impossible", "worker", w.url, "graph", e.spec.Name)
			return
		}
		if err := r.postJSON(context.Background(), w.url+"/v1/graphs", e.spec); err != nil {
			r.noteSyncError(w, fmt.Errorf("resync add %s: %w", e.spec.Name, err))
			return
		}
		for _, batch := range e.batches {
			if err := r.postJSON(context.Background(), w.url+"/v1/graphs/"+e.spec.Name+"/edges", wireOps(batch)); err != nil {
				r.noteSyncError(w, fmt.Errorf("resync edges %s: %w", e.spec.Name, err))
				return
			}
		}
	}

	r.mu.Lock()
	if r.catalogGen == gen {
		w.synced = true
		w.lastErr = ""
	}
	r.mu.Unlock()
	r.log.Info("cluster worker synced", "worker", w.url, "graphs", len(entries))
}

func (r *Router) noteSyncError(w *workerState, err error) {
	r.mu.Lock()
	w.lastErr = err.Error()
	r.mu.Unlock()
	r.log.Warn("cluster resync failed", "worker", w.url, "error", err)
}

// LockGraph returns the per-graph lock serializing catalog writes against
// cluster execution: mutation/add/delete handlers hold it for writing
// around (local apply + broadcast), Execute holds it for reading — so a run
// never straddles a version change across replicas.
func (r *Router) LockGraph(name string) *sync.RWMutex {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.locks[name]
	if !ok {
		l = &sync.RWMutex{}
		r.locks[name] = l
	}
	return l
}

// RecordGraph registers a graph in the catalog without broadcasting —
// the preload path, where workers pick the graph up through resync (every
// worker starts unsynced).
func (r *Router) RecordGraph(spec GraphSpec) {
	r.mu.Lock()
	r.catalog[spec.Name] = &catalogEntry{spec: spec}
	r.catalogGen++
	r.mu.Unlock()
}

// GraphAdded records an add in the catalog and pushes it to every in-sync
// worker; a worker that refuses drops to unsynced and is repaired by the
// health loop.
func (r *Router) GraphAdded(spec GraphSpec) {
	r.mu.Lock()
	r.catalog[spec.Name] = &catalogEntry{spec: spec}
	r.catalogGen++
	targets := r.syncedLocked()
	r.mu.Unlock()
	for _, w := range targets {
		if err := r.postJSON(context.Background(), w.url+"/v1/graphs", spec); err != nil {
			r.desync(w, fmt.Errorf("broadcast add %s: %w", spec.Name, err))
		}
	}
}

// GraphDeleted records a delete and pushes it to every in-sync worker.
func (r *Router) GraphDeleted(name string) {
	r.mu.Lock()
	delete(r.catalog, name)
	r.catalogGen++
	targets := r.syncedLocked()
	r.mu.Unlock()
	for _, w := range targets {
		req, _ := http.NewRequest(http.MethodDelete, w.url+"/v1/graphs/"+name, nil)
		resp, err := r.client.Do(req)
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			// 404 is fine: the worker never had it, which is the goal state.
			if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusNotFound {
				continue
			}
			err = fmt.Errorf("status %d", resp.StatusCode)
		}
		r.desync(w, fmt.Errorf("broadcast delete %s: %w", name, err))
	}
}

// EdgesApplied appends one applied mutation batch to the graph's lineage
// and pushes it to every in-sync worker. Replicas apply the same batch to
// the same bits, so last-writer-wins overlays stay identical everywhere.
func (r *Router) EdgesApplied(name string, ops []grazelle.EdgeOp) {
	r.mu.Lock()
	if e := r.catalog[name]; e != nil {
		if len(e.batches) >= maxCatalogBatches {
			e.overflow = true
		} else {
			e.batches = append(e.batches, append([]grazelle.EdgeOp(nil), ops...))
		}
	}
	r.catalogGen++
	targets := r.syncedLocked()
	r.mu.Unlock()
	for _, w := range targets {
		if err := r.postJSON(context.Background(), w.url+"/v1/graphs/"+name+"/edges", wireOps(ops)); err != nil {
			r.desync(w, fmt.Errorf("broadcast edges %s: %w", name, err))
		}
	}
}

func (r *Router) syncedLocked() []*workerState {
	var out []*workerState
	for _, w := range r.workers {
		if w.healthy && w.synced {
			out = append(out, w)
		}
	}
	return out
}

func (r *Router) desync(w *workerState, err error) {
	r.mu.Lock()
	w.synced = false
	w.lastErr = err.Error()
	r.mu.Unlock()
	r.log.Warn("cluster worker desynced", "worker", w.url, "error", err)
}

// wireOps renders a mutation batch in the public /edges request schema.
func wireOps(ops []grazelle.EdgeOp) any {
	type wireOp struct {
		Delete bool    `json:"delete,omitempty"`
		Src    uint32  `json:"src"`
		Dst    uint32  `json:"dst"`
		Weight float32 `json:"weight,omitempty"`
	}
	out := make([]wireOp, len(ops))
	for i, op := range ops {
		out[i] = wireOp{Delete: op.Delete, Src: op.Src, Dst: op.Dst, Weight: op.Weight}
	}
	return map[string]any{"ops": out}
}

func (r *Router) postJSON(ctx context.Context, url string, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(payload)))
	}
	return nil
}

// HandleExchange is the hub's HTTP adapter (POST /internal/exchange).
func (r *Router) HandleExchange(w http.ResponseWriter, req *http.Request) {
	var p ExchangePost
	if err := json.NewDecoder(req.Body).Decode(&p); err != nil {
		writeClusterError(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	reply, err := r.hub.Post(req.Context(), &p)
	if err != nil {
		switch {
		case errors.Is(err, ErrUnknownRun):
			writeClusterError(w, http.StatusNotFound, "unknown_run", err)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			writeClusterError(w, http.StatusServiceUnavailable, "cancelled", err)
		default:
			writeClusterError(w, http.StatusConflict, "aborted", err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(reply)
}

// RunResult is a completed cluster execution, assembled from the primary
// worker's response plus the hub's per-partition accounting.
type RunResult struct {
	Iterations     int
	PullIterations int
	PushIterations int
	Mode           string
	Partitions     int
	ElapsedMS      int64
	ExchangeBytes  int64
	Summary        map[string]json.RawMessage
	Values         json.RawMessage
	PartBytes      []int64
	Workers        []string
}

// Execute runs one query across the cluster: place partitions over the
// available replicas, scatter the run, gather through the exchange barrier,
// and — when a replica fails mid-run — re-place once onto the survivors.
func (r *Router) Execute(ctx context.Context, runID string, spec RunSpec) (*RunResult, error) {
	r.metrics.runs.Inc()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		avail := r.available()
		if len(avail) == 0 {
			r.metrics.failures.Inc()
			return nil, &UnavailableError{Reason: "no healthy synced workers", Cause: lastErr}
		}
		res, err := r.runOnce(ctx, fmt.Sprintf("%s.%d", runID, attempt), spec, avail)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil || !r.noteFailure(err) {
			r.metrics.failures.Inc()
			return nil, err
		}
		r.metrics.failovers.Inc()
		r.log.Warn("cluster run failing over", "run", runID, "error", err)
	}
	r.metrics.failures.Inc()
	return nil, &UnavailableError{Reason: "failover exhausted", Cause: lastErr}
}

func (r *Router) available() []*workerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.syncedLocked()
}

// noteFailure classifies one run failure, updates roster state, and reports
// whether re-placement is worth attempting.
func (r *Router) noteFailure(err error) bool {
	var pe *PeerError
	if !errors.As(err, &pe) {
		return false
	}
	switch {
	case pe.Code == "not_found" || pe.Code == "out_of_sync":
		// The replica trails the catalog: pull it from rotation for repair
		// and run on the others.
		r.markWorker(pe.Worker, func(w *workerState) { w.synced = false; w.lastErr = pe.Error() })
		return true
	case pe.Status == 0 || pe.Code == "wedged":
		// Unreachable or wedged mid-exchange: down until /readyz says
		// otherwise.
		r.markWorker(pe.Worker, func(w *workerState) { w.healthy = false; w.synced = false; w.lastErr = pe.Error() })
		return true
	case pe.Code == "exchange":
		// An abort victim or a transient barrier failure (failpoints land
		// here): the worker itself is fine, just retry.
		return true
	default:
		// Deterministic verdicts — an engine error (Code "run") repeats on
		// identical replicas, overload and timeouts fail identically under
		// the same deadline — so a retry only wastes the budget.
		return false
	}
}

func (r *Router) markWorker(url string, mark func(*workerState)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.workers {
		if w.url == url {
			mark(w)
		}
	}
}

func (r *Router) runOnce(ctx context.Context, hubID string, spec RunSpec, avail []*workerState) (*RunResult, error) {
	parts := spec.Partitions
	if parts < 1 {
		parts = 1
	}
	owners := make(map[string][]int)
	var participants []*workerState
	for p := 0; p < parts; p++ {
		w := avail[p%len(avail)]
		if _, ok := owners[w.url]; !ok {
			participants = append(participants, w)
		}
		owners[w.url] = append(owners[w.url], p)
	}
	primaryURL := participants[0].url
	words := (spec.Vertices + 63) / 64

	r.hub.Register(hubID, owners, parts, words)
	defer r.hub.Unregister(hubID)
	r.metrics.fanout.Observe(float64(len(participants)))

	r.mu.Lock()
	exchangeURL := r.exchangeURL
	r.mu.Unlock()

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		worker string
		resp   *RunResponse
		err    *PeerError
	}
	results := make(chan outcome, len(participants))
	for _, w := range participants {
		req := RunRequest{
			RunID:       hubID,
			Worker:      w.url,
			ExchangeURL: exchangeURL,
			Graph:       spec.Graph,
			App:         spec.App,
			Iters:       spec.Iters,
			Root:        spec.Root,
			K:           spec.K,
			Partitions:  parts,
			Owned:       owners[w.url],
			Vertices:    spec.Vertices,
			Edges:       spec.Edges,
			Primary:     w.url == primaryURL,
			Values:      spec.Values,
			TimeoutMS:   spec.TimeoutMS,
		}
		go func(url string) {
			resp, err := r.postRun(cctx, url, &req)
			results <- outcome{worker: url, resp: resp, err: err}
		}(w.url)
	}

	var primary *RunResponse
	var failures []*PeerError
	for range participants {
		o := <-results
		if o.err != nil {
			failures = append(failures, o.err)
			// Tear the whole run down: peers blocked at the barrier get the
			// abort instead of waiting out the round timeout.
			r.hub.Abort(hubID, o.err)
			cancel()
			continue
		}
		if o.worker == primaryURL {
			primary = o.resp
		}
	}
	if len(failures) > 0 {
		// Wedged peers detected by the hub outrank the secondary errors their
		// stall caused in everyone else.
		if lag := r.hub.Laggards(hubID); len(lag) > 0 {
			return nil, &PeerError{Worker: lag[0], Code: "wedged",
				Err: fmt.Errorf("cluster: exchange round wedged waiting on %v", lag)}
		}
		best := failures[0]
		for _, f := range failures[1:] {
			if failureRank(f) > failureRank(best) {
				best = f
			}
		}
		return nil, best
	}
	if primary == nil {
		return nil, fmt.Errorf("cluster: run %s completed without a primary response", hubID)
	}
	return &RunResult{
		Iterations:     primary.Iterations,
		PullIterations: primary.PullIterations,
		PushIterations: primary.PushIterations,
		Mode:           primary.Mode,
		Partitions:     primary.Partitions,
		ElapsedMS:      primary.ElapsedMS,
		ExchangeBytes:  primary.ExchangeBytes,
		Summary:        primary.Summary,
		Values:         primary.Values,
		PartBytes:      r.hub.PartBytes(hubID),
		Workers:        workerURLs(participants),
	}, nil
}

// failureRank orders concurrent per-worker failures by blame: a transport
// error names the actual casualty, a worker-originated verdict names a
// faulty replica, and an exchange abort is usually collateral damage.
func failureRank(pe *PeerError) int {
	switch {
	case pe.Status == 0:
		return 3
	case pe.Code != "exchange" && pe.Code != "cancelled":
		return 2
	default:
		return 1
	}
}

func workerURLs(ws []*workerState) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.url
	}
	return out
}

// postRun sends one /internal/run request and decodes the outcome.
func (r *Router) postRun(ctx context.Context, url string, rr *RunRequest) (*RunResponse, *PeerError) {
	body, err := json.Marshal(rr)
	if err != nil {
		return nil, &PeerError{Worker: url, Err: err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/internal/run", bytes.NewReader(body))
	if err != nil {
		return nil, &PeerError{Worker: url, Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, &PeerError{Worker: url, Err: err}
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, &PeerError{Worker: url, Err: err}
	}
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		_ = json.Unmarshal(payload, &eb)
		if eb.Error == "" {
			eb.Error = strings.TrimSpace(string(payload))
		}
		return nil, &PeerError{Worker: url, Status: resp.StatusCode, Code: eb.Code, Msg: eb.Error}
	}
	var out RunResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		return nil, &PeerError{Worker: url, Err: fmt.Errorf("run response decode: %w", err)}
	}
	return &out, nil
}

// WorkerStatus is one roster entry in Status.
type WorkerStatus struct {
	URL       string    `json:"url"`
	Healthy   bool      `json:"healthy"`
	Synced    bool      `json:"synced"`
	LastSeen  time.Time `json:"last_seen,omitzero"`
	LastError string    `json:"last_error,omitempty"`
	RTTMicros int64     `json:"rtt_us"`
	BytesIn   uint64    `json:"exchange_bytes_in"`
	BytesOut  uint64    `json:"exchange_bytes_out"`
}

// PlacementEntry maps one partition to the worker currently authoritative
// for its frontier words.
type PlacementEntry struct {
	Partition int    `json:"partition"`
	Worker    string `json:"worker,omitempty"`
}

// Status is the GET /v1/cluster document, mirrored into /v1/stats. Every
// number reads the same cells /metrics exposes.
type Status struct {
	Partitions     int              `json:"partitions"`
	Workers        []WorkerStatus   `json:"workers"`
	Placement      []PlacementEntry `json:"placement"`
	Runs           uint64           `json:"runs"`
	Failures       uint64           `json:"run_failures"`
	Failovers      uint64           `json:"failovers"`
	ExchangeRounds uint64           `json:"exchange_rounds"`
}

// Status reports the roster, the current placement table, and the run
// counters.
func (r *Router) Status() Status {
	r.mu.Lock()
	st := Status{
		Partitions:     r.cfg.Partitions,
		Runs:           r.metrics.runs.Value(),
		Failures:       r.metrics.failures.Value(),
		Failovers:      r.metrics.failovers.Value(),
		ExchangeRounds: r.metrics.rounds.Value(),
	}
	var avail []*workerState
	for _, w := range r.workers {
		ws := WorkerStatus{
			URL:       w.url,
			Healthy:   w.healthy,
			Synced:    w.synced,
			LastSeen:  w.lastSeen,
			LastError: w.lastErr,
			RTTMicros: w.rtt.Microseconds(),
		}
		if c := r.metrics.peerIn[w.url]; c != nil {
			ws.BytesIn = c.Value()
		}
		if c := r.metrics.peerOut[w.url]; c != nil {
			ws.BytesOut = c.Value()
		}
		st.Workers = append(st.Workers, ws)
		if w.healthy && w.synced {
			avail = append(avail, w)
		}
	}
	r.mu.Unlock()
	for p := 0; p < st.Partitions; p++ {
		pe := PlacementEntry{Partition: p}
		if len(avail) > 0 {
			pe.Worker = avail[p%len(avail)].url
		}
		st.Placement = append(st.Placement, pe)
	}
	return st
}
