package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	grazelle "repro"
	"repro/internal/obs"
)

// Worker executes cluster runs against a local graph replica. It layers on
// a full serve-mode store (the worker process keeps the ordinary public API
// for graph admin, which is also how the router resyncs it); HandleRun is
// the one private endpoint the router drives.
type Worker struct {
	store   *grazelle.Store
	threads int
	client  *http.Client
	// netBytes is the shared grazelle_exchange_bytes_total{transport="net"}
	// counter, injected so the worker and the serving layer account into one
	// family without double registration.
	netBytes *obs.Counter

	runs     *obs.Counter
	failures *obs.Counter
}

// NewWorker creates a worker over st. netBytes receives each run's logical
// exchange-byte volume; pass a detached &obs.Counter{} when no registry
// family exists (tests).
func NewWorker(st *grazelle.Store, threads int, netBytes *obs.Counter) *Worker {
	w := &Worker{
		store:    st,
		threads:  threads,
		client:   &http.Client{},
		netBytes: netBytes,
		runs:     &obs.Counter{},
		failures: &obs.Counter{},
	}
	reg := st.Metrics()
	reg.RegisterCounter("grazelle_cluster_worker_runs_total",
		"Cluster runs executed by this worker.", nil, w.runs)
	reg.RegisterCounter("grazelle_cluster_worker_run_failures_total",
		"Cluster runs that failed on this worker.", nil, w.failures)
	return w
}

// Mux returns a minimal handler set for in-process tests and harnesses:
// the run endpoint plus a readiness probe. The real worker process serves
// these routes from the full serve mux instead.
func (wk *Worker) Mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /internal/run", wk.HandleRun)
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if err := wk.store.Ready(); err != nil {
			writeClusterError(w, http.StatusServiceUnavailable, "unready", err)
			return
		}
		w.Write([]byte("ok\n"))
	})
	return mux
}

// HandleRun executes one cluster run: admit, pin the graph, verify the
// replica matches the router's expectation, then drive the ordinary engine
// with NetExchange installed. The response carries pre-marshaled summary
// and values (primary only) so the router can assemble a byte-identical
// client payload.
func (wk *Worker) HandleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeClusterError(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	release, err := wk.store.Admit(ctx)
	if err != nil {
		status, code := http.StatusTooManyRequests, "overloaded"
		if errors.Is(err, grazelle.ErrStoreClosed) {
			status, code = http.StatusServiceUnavailable, "closed"
		}
		writeClusterError(w, status, code, err)
		return
	}
	defer release()

	h, err := wk.store.Acquire(req.Graph)
	if err != nil {
		status, code := http.StatusInternalServerError, "acquire"
		if errors.Is(err, grazelle.ErrGraphNotFound) {
			status, code = http.StatusNotFound, "not_found"
		}
		writeClusterError(w, status, code, err)
		return
	}
	defer h.Close()
	if h.Graph().NumVertices() != req.Vertices || h.Graph().NumEdges() != req.Edges {
		writeClusterError(w, http.StatusConflict, "out_of_sync", fmt.Errorf(
			"cluster: replica has %d vertices / %d edges, router expects %d / %d",
			h.Graph().NumVertices(), h.Graph().NumEdges(), req.Vertices, req.Edges))
		return
	}

	ctx, done := wk.store.TrackRun(ctx)
	defer done()

	owned := make(map[int]bool, len(req.Owned))
	for _, p := range req.Owned {
		owned[p] = true
	}
	ex := &NetExchange{
		Client: wk.client,
		URL:    req.ExchangeURL,
		RunID:  req.RunID,
		Worker: req.Worker,
		Owned:  owned,
	}
	// A per-run engine: the store's shared engines carry store-level options,
	// and the exchange is bound to this one run's identity.
	eng := grazelle.NewEngine(h.Graph(), grazelle.Options{
		Workers:    wk.threads,
		Partitions: req.Partitions,
		Trace:      true,
		Exchange:   ex,
	})
	defer eng.Close()

	start := time.Now()
	res, err := eng.Run(ctx, req.App, grazelle.Params{Iters: req.Iters, Root: req.Root, K: req.K})
	wk.runs.Inc()
	if err != nil {
		wk.failures.Inc()
		var ee *ExchangeError
		switch {
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled),
			errors.Is(context.Cause(ctx), grazelle.ErrWatchdogKilled):
			writeClusterError(w, http.StatusGatewayTimeout, "timeout", err)
		case errors.As(err, &ee):
			writeClusterError(w, http.StatusBadGateway, "exchange", err)
		default:
			writeClusterError(w, http.StatusInternalServerError, "run", err)
		}
		return
	}
	wk.netBytes.Add(uint64(res.Stats.ExchangeBytes))

	out := RunResponse{
		Iterations:     res.Stats.Iterations,
		PullIterations: res.Stats.PullIterations,
		PushIterations: res.Stats.PushIterations,
		Mode:           res.Stats.Mode,
		Partitions:     res.Stats.Partitions,
		ElapsedMS:      time.Since(start).Milliseconds(),
		ExchangeBytes:  res.Stats.ExchangeBytes,
	}
	if req.Primary {
		out.Summary = make(map[string]json.RawMessage)
		for _, st := range res.Summary() {
			raw, err := json.Marshal(st.Value)
			if err != nil {
				writeClusterError(w, http.StatusInternalServerError, "serialize", err)
				return
			}
			out.Summary[st.Key] = raw
		}
		if req.Values {
			raw, err := json.Marshal(res.Values())
			if err != nil {
				writeClusterError(w, http.StatusInternalServerError, "serialize", err)
				return
			}
			out.Values = raw
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&out)
}

func writeClusterError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error(), Code: code})
}
