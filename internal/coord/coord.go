// Package coord owns the per-iteration schedule of a graph run: the order
// of the Edge phase, the ordered merge, the Vertex phase, the frontier
// exchange, and the convergence vote. It is the transport-agnostic seam the
// ROADMAP's scale-out item asks for — the engine (internal/core) binds its
// generic kernels into an Iteration closure bundle, and a Coordinator
// decides which spans of the work grid run where and when partitions talk.
//
// Two coordinators exist today. LocalCoordinator replays the monolithic
// schedule bit-for-bit. PartitionedCoordinator splits the run into P
// partitions via the promoted internal/numa Plan and scatter-gathers each
// phase across per-partition spans (GPOP-style blocking), exchanging
// frontier state at the barrier through an Exchange — whose only in-process
// implementation is shared-memory handoff, the hook where a network
// transport plugs in without touching the engine.
//
// Determinism contract: a coordinator may choose *where* work runs but
// never *how it folds*. Spans partition the global chunk-id grid, chunk
// ranges and merge-buffer slots are identical to a monolithic run, and the
// ordered merge runs once at the gather barrier — so partitioned output is
// bit-identical to monolithic output for any P (see DESIGN.md §13).
package coord

import (
	"context"
	"time"
)

// Direction is the per-iteration Edge-phase direction — a property of the
// schedule, owned by the coordinator (Besta et al., "To Push or To Pull").
type Direction int

const (
	// DirPull runs Edge-Pull: every destination aggregates over in-edges.
	DirPull Direction = iota
	// DirPush runs Edge-Push: active sources scatter over out-edges.
	DirPush
	// DirSparse runs the fused sparse-frontier round (push over the
	// frontier's vertex list only).
	DirSparse
)

// Mark returns the direction's single-character trace encoding: '<' pull,
// '>' push, 's' sparse.
func (d Direction) Mark() byte {
	switch d {
	case DirPull:
		return '<'
	case DirPush:
		return '>'
	default:
		return 's'
	}
}

// Span is one partition's slice of a phase's work grid: chunk ids for the
// edge and vertex phases, bitmap word indices for the frontier exchange.
// Lo == Hi is an empty span and does no work.
type Span struct {
	Part   int
	Lo, Hi int
}

// Status is the engine's report at the top of an iteration — the inputs to
// the convergence vote and the direction decision.
type Status struct {
	// Stop ends the run: the program converged, the frontier emptied, the
	// context was cancelled, or a chunk panicked.
	Stop bool
	// UsesFrontier reports whether the program is frontier-driven; blind
	// programs always pull and never exchange.
	UsesFrontier bool
	// Density is the frontier density in [0,1] (1 for frontier-blind
	// programs).
	Density float64
	// DegreeShare lazily computes the frontier's out-degree sum as a share
	// of total edges — the Besta et al. degree-sum term. It is only invoked
	// when the density test alone would choose push, so the O(frontier)
	// walk is paid exactly when the decision is in doubt. Nil when unknown.
	DegreeShare func() float64
	// SparseOK reports that the sparse-frontier path is enabled and this
	// iteration's frontier fits its budget.
	SparseOK bool
}

// Policy decides the per-iteration direction from the iteration status.
type Policy struct {
	// PullOnly / PushOnly force a direction (core's EngineMode pins);
	// neither set means hybrid.
	PullOnly, PushOnly bool
	// PullThreshold is the classic density term: pull when frontier
	// density ≥ this.
	PullThreshold float64
	// DegreeShareThreshold is the degree-sum term: pull when the
	// frontier's out-edges are at least this share of all edges, even at
	// low vertex density — a few hubs can put most of the edge set in
	// play, and pull's sequential gather beats push's scattered CAS there.
	// ≤ 0 disables the term.
	DegreeShareThreshold float64
}

// Choose picks this iteration's direction. The sparse path, when available,
// wins outright (its budget already proved the frontier tiny); the engine
// pins come next; then density, then degree share.
func (p Policy) Choose(st Status) Direction {
	if st.SparseOK {
		return DirSparse
	}
	if p.PullOnly {
		return DirPull
	}
	if p.PushOnly {
		return DirPush
	}
	if !st.UsesFrontier {
		return DirPull
	}
	if st.Density >= p.PullThreshold {
		return DirPull
	}
	if p.DegreeShareThreshold > 0 && st.DegreeShare != nil &&
		st.DegreeShare() >= p.DegreeShareThreshold {
		return DirPull
	}
	return DirPush
}

// Iteration binds one run's engine callbacks. The coordinator never sees
// program types or accumulator layouts — only these closures, which the
// engine constructs per run with its generic kernels devirtualized inside.
// The monolithic closures (Begin through End) are always bound; the engine
// binds the partitioned set (EdgeBegin through Publish) only when the run
// is partitioned.
type Iteration struct {
	// Begin starts an iteration: program PreIteration plus the frontier
	// census feeding the convergence vote and the direction policy.
	Begin func() Status
	// Sparse runs one fused sparse-frontier round (edge scatter over the
	// frontier list + vertex apply over the touched list, including the
	// frontier publish). Only called when Status.SparseOK.
	Sparse func()

	// EdgeFull and VertexFull are the monolithic executors: the full-grid
	// edge phase including its ordered merge, and the full vertex phase
	// including the frontier publish. LocalCoordinator's whole schedule.
	EdgeFull   func(dir Direction)
	VertexFull func()

	// The partitioned executors. EdgeBegin/EdgeDone bracket the edge
	// scatter-gather on the driver goroutine (pre-growing shared buffers,
	// then folding the ordered merge); EdgeSpan runs one partition's chunk
	// span and is safe to call concurrently for disjoint spans. Vertex*
	// mirror the structure for the vertex phase, without the publish.
	EdgeBegin   func(dir Direction)
	EdgeSpan    func(dir Direction, s Span)
	EdgeDone    func(dir Direction)
	VertexBegin func()
	VertexSpan  func(s Span)
	VertexDone  func()

	// Delta extracts one partition's outbound frontier segment — the words
	// of the next-frontier bitmap covering its destination range. Publish
	// installs the exchanged frontier as the next iteration's input.
	Delta   func(s Span) FrontierDelta
	Publish func()

	// End closes the iteration's bookkeeping (counters, direction trace)
	// with the direction that ran.
	End func(dir Direction)
}

// PartitionStat aggregates one partition's execution over a run.
type PartitionStat struct {
	Part          int
	EdgeWall      time.Duration
	VertexWall    time.Duration
	ExchangeBytes int64
	Spans         int
}

// Coordinator drives a run's iteration schedule.
type Coordinator interface {
	// Run iterates until the engine's Status stops it or maxIters is
	// reached. A non-nil error aborts the run (today: a failed exchange);
	// engine-internal failures surface through Status.Stop and the
	// engine's own error channel instead.
	Run(ctx context.Context, it Iteration, maxIters int) error
	// Partitions returns the partition count of the schedule (1 for the
	// monolithic path).
	Partitions() int
	// PartitionStats returns per-partition aggregates for the last Run;
	// nil for the monolithic path.
	PartitionStats() []PartitionStat
}
