package coord

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fault"
)

func TestDirectionMarks(t *testing.T) {
	if DirPull.Mark() != '<' || DirPush.Mark() != '>' || DirSparse.Mark() != 's' {
		t.Errorf("marks = %c %c %c, want < > s", DirPull.Mark(), DirPush.Mark(), DirSparse.Mark())
	}
}

func TestPolicyChoose(t *testing.T) {
	hybrid := Policy{PullThreshold: 0.05, DegreeShareThreshold: 0.05}
	share := func(v float64) func() float64 { return func() float64 { return v } }
	cases := []struct {
		name string
		p    Policy
		st   Status
		want Direction
	}{
		{"sparse-wins", hybrid, Status{SparseOK: true, UsesFrontier: true, Density: 0.9}, DirSparse},
		{"sparse-beats-pin", Policy{PushOnly: true}, Status{SparseOK: true, UsesFrontier: true}, DirSparse},
		{"pull-pin", Policy{PullOnly: true}, Status{UsesFrontier: true, Density: 0.001}, DirPull},
		{"push-pin", Policy{PushOnly: true}, Status{UsesFrontier: true, Density: 0.9}, DirPush},
		{"blind-pulls", hybrid, Status{UsesFrontier: false}, DirPull},
		{"dense-pulls", hybrid, Status{UsesFrontier: true, Density: 0.5}, DirPull},
		{"sparse-frontier-pushes", hybrid,
			Status{UsesFrontier: true, Density: 0.001, DegreeShare: share(0.01)}, DirPush},
		// The degree-sum term (Besta et al.): a low-density frontier whose
		// hubs cover a big edge share still pulls.
		{"hub-frontier-pulls", hybrid,
			Status{UsesFrontier: true, Density: 0.001, DegreeShare: share(0.30)}, DirPull},
		{"degree-term-disabled", Policy{PullThreshold: 0.05},
			Status{UsesFrontier: true, Density: 0.001, DegreeShare: share(0.30)}, DirPush},
		{"nil-share-pushes", hybrid, Status{UsesFrontier: true, Density: 0.001}, DirPush},
	}
	for _, tc := range cases {
		if got := tc.p.Choose(tc.st); got != tc.want {
			t.Errorf("%s: Choose = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestPolicyDegreeShareLazy pins the laziness contract: the O(frontier) walk
// must not run when density alone decides.
func TestPolicyDegreeShareLazy(t *testing.T) {
	p := Policy{PullThreshold: 0.05, DegreeShareThreshold: 0.05}
	called := false
	st := Status{UsesFrontier: true, Density: 0.5,
		DegreeShare: func() float64 { called = true; return 1 }}
	if p.Choose(st) != DirPull {
		t.Fatal("dense frontier did not pull")
	}
	if called {
		t.Error("DegreeShare was invoked although density decided")
	}
}

func TestSharedMemExchange(t *testing.T) {
	deltas := []FrontierDelta{
		{Part: 0, WordLo: 0, Words: []uint64{0xF, 0}},
		{Part: 1, WordLo: 2, Words: []uint64{1 << 63}},
		{Part: 2, WordLo: 3, Words: nil},
	}
	res, err := SharedMemExchange{}.Exchange(context.Background(), deltas)
	if err != nil {
		t.Fatal(err)
	}
	if res.Active != 5 {
		t.Errorf("active = %d, want 5", res.Active)
	}
	wantBytes := []int64{16, 8, 0}
	for i, b := range res.Bytes {
		if b != wantBytes[i] {
			t.Errorf("bytes[%d] = %d, want %d", i, b, wantBytes[i])
		}
	}
}

func TestSharedMemExchangeCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SharedMemExchange{}.Exchange(ctx, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

func TestSharedMemExchangeFaultInjection(t *testing.T) {
	disarm, err := fault.Enable("coord/exchange", "error*1")
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	_, err = SharedMemExchange{}.Exchange(context.Background(), nil)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error %v does not wrap fault.ErrInjected", err)
	}
	if _, err = (SharedMemExchange{}).Exchange(context.Background(), nil); err != nil {
		t.Fatalf("exchange after budget drained: %v", err)
	}
}
