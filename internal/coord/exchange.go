package coord

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/fault"
)

// FrontierDelta is one partition's outbound frontier state for an
// iteration: the slice of the next-frontier bitmap covering the partition's
// destination range. Word-granular ranges keep segments disjoint, so the
// per-partition byte counts are exact and a transport can ship each segment
// without masking.
type FrontierDelta struct {
	// Part is the producing partition.
	Part int
	// WordLo is the index of Words[0] within the run's global bitmap.
	WordLo int
	// Words is the segment's activation bits. In-process this aliases the
	// engine's bitmap (zero-copy handoff); a network transport serializes
	// it instead.
	Words []uint64
}

// Bytes returns the segment's wire size.
func (d FrontierDelta) Bytes() int64 { return int64(len(d.Words)) * 8 }

// ExchangeResult reports a completed frontier exchange.
type ExchangeResult struct {
	// Active is the total number of active vertices across all segments —
	// the input to the convergence vote.
	Active int
	// Bytes is each partition's outbound byte count this iteration,
	// indexed like the deltas.
	Bytes []int64
}

// Exchange moves per-partition frontier deltas between partitions at the
// iteration barrier. It is the transport seam: the coordinator calls it
// once per frontier-driven iteration with every partition's outbound
// segment and blocks until each partition can see the full next frontier.
// Implementations must honor ctx — a wedged exchange is how a partitioned
// run hangs, and cancellation (including the serving layer's watchdog) must
// fail the run cleanly.
type Exchange interface {
	Exchange(ctx context.Context, deltas []FrontierDelta) (ExchangeResult, error)
}

// SharedMemExchange is the in-process Exchange: every partition already
// wrote its activation bits into the shared bitmap, so the handoff is
// zero-copy and "exchanging" reduces to accounting — popcounting each
// segment for the convergence vote and recording the bytes a real transport
// would have moved. The coord/exchange failpoint sits here so the chaos
// suite can wedge or fail the barrier.
type SharedMemExchange struct{}

func (SharedMemExchange) Exchange(ctx context.Context, deltas []FrontierDelta) (ExchangeResult, error) {
	// Failpoint first, then the context check: a delay spec models a slow
	// peer, after which a watchdog-cancelled context must surface instead
	// of a successful exchange.
	if err := fault.Inject("coord/exchange"); err != nil {
		return ExchangeResult{}, fmt.Errorf("coord: frontier exchange failed: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return ExchangeResult{}, fmt.Errorf("coord: frontier exchange cancelled: %w", err)
	}
	res := ExchangeResult{Bytes: make([]int64, len(deltas))}
	for i, d := range deltas {
		for _, w := range d.Words {
			res.Active += bits.OnesCount64(w)
		}
		res.Bytes[i] = d.Bytes()
	}
	return res, nil
}
