package coord

import "context"

// LocalCoordinator replays the monolithic schedule: one full-grid edge
// phase, the ordered merge, one full vertex phase with its frontier
// publish, no exchange. It exists so the engine has exactly one iteration
// driver — this path is bit-identical (and trace-identical) to the
// pre-coordinator runner loop.
type LocalCoordinator struct {
	Policy Policy
}

func (c *LocalCoordinator) Run(ctx context.Context, it Iteration, maxIters int) error {
	for i := 0; i < maxIters; i++ {
		st := it.Begin()
		if st.Stop {
			break
		}
		dir := c.Policy.Choose(st)
		if dir == DirSparse {
			it.Sparse()
		} else {
			it.EdgeFull(dir)
			it.VertexFull()
		}
		it.End(dir)
	}
	return nil
}

func (c *LocalCoordinator) Partitions() int                 { return 1 }
func (c *LocalCoordinator) PartitionStats() []PartitionStat { return nil }
