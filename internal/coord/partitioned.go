package coord

import (
	"context"
	"sync"
	"time"

	"repro/internal/numa"
)

// PartitionedCoordinator runs real partitioned execution: each iteration's
// edge and vertex phases scatter across P per-partition spans of the global
// work grid, gather at a barrier, and — for frontier-driven programs —
// exchange per-partition frontier deltas through the configured Exchange
// before the next convergence vote.
//
// The schedule per iteration is
//
//	Begin → Edge scatter-gather → ordered merge → Vertex scatter-gather
//	      → frontier exchange → publish → vote (next Begin)
//
// Sparse iterations (tiny frontiers) run through the fused monolithic
// closure instead: the frontier is below E/20 edges, so span scatter and
// exchange overhead would dominate the work being split. No exchange bytes
// are charged for them.
//
// Each span executes on the shared pool as one job of a sched.Group bound
// by the engine, so a partitioned query still consumes exactly one
// admission slot. Span goroutines only call the engine's *Span closures,
// which write disjoint global-grid state — determinism is preserved by
// construction (package comment, DESIGN.md §13).
type PartitionedCoordinator struct {
	Policy   Policy
	Plan     numa.Plan
	Exchange Exchange

	stats []PartitionStat
}

func (c *PartitionedCoordinator) Partitions() int { return c.Plan.Parts }

func (c *PartitionedCoordinator) PartitionStats() []PartitionStat { return c.stats }

func (c *PartitionedCoordinator) Run(ctx context.Context, it Iteration, maxIters int) error {
	parts := c.Plan.Parts
	c.stats = make([]PartitionStat, parts)
	for i := range c.stats {
		c.stats[i].Part = i
	}
	ex := c.Exchange
	if ex == nil {
		ex = SharedMemExchange{}
	}
	deltas := make([]FrontierDelta, parts)

	for i := 0; i < maxIters; i++ {
		st := it.Begin()
		if st.Stop {
			break
		}
		dir := c.Policy.Choose(st)
		if dir == DirSparse {
			it.Sparse()
			it.End(dir)
			continue
		}

		grid := c.Plan.PullChunks
		if dir == DirPush {
			grid = c.Plan.VertexChunks
		}
		it.EdgeBegin(dir)
		c.scatter(grid, func(s Span, stat *PartitionStat) {
			t0 := time.Now()
			it.EdgeSpan(dir, s)
			stat.EdgeWall += time.Since(t0)
			stat.Spans++
		})
		it.EdgeDone(dir)

		it.VertexBegin()
		c.scatter(c.Plan.VertexChunks, func(s Span, stat *PartitionStat) {
			t0 := time.Now()
			it.VertexSpan(s)
			stat.VertexWall += time.Since(t0)
			stat.Spans++
		})
		it.VertexDone()

		if st.UsesFrontier {
			for p := 0; p < parts; p++ {
				lo, hi := c.Plan.Words.Range(p)
				deltas[p] = it.Delta(Span{Part: p, Lo: lo, Hi: hi})
			}
			res, err := ex.Exchange(ctx, deltas)
			if err != nil {
				// Count the iteration before failing: partial results
				// reflect the last *published* frontier, and the engine
				// reports how far the run got.
				it.End(dir)
				return err
			}
			for p := 0; p < parts && p < len(res.Bytes); p++ {
				c.stats[p].ExchangeBytes += res.Bytes[p]
			}
		}
		it.Publish()
		it.End(dir)
	}
	return nil
}

// scatter fans one phase out across the plan's spans and waits for all of
// them. Empty spans are skipped. The driver goroutine runs partition 0's
// span itself so a single-partition plan degenerates to an inline call.
func (c *PartitionedCoordinator) scatter(grid numa.Partition, run func(s Span, stat *PartitionStat)) {
	var wg sync.WaitGroup
	first := -1
	for p := 0; p < c.Plan.Parts; p++ {
		lo, hi := grid.Range(p)
		if lo == hi {
			continue
		}
		if first < 0 {
			first = p
			continue
		}
		wg.Add(1)
		go func(p, lo, hi int) {
			defer wg.Done()
			run(Span{Part: p, Lo: lo, Hi: hi}, &c.stats[p])
		}(p, lo, hi)
	}
	if first >= 0 {
		lo, hi := grid.Range(first)
		run(Span{Part: first, Lo: lo, Hi: hi}, &c.stats[first])
	}
	wg.Wait()
}
