package coord

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/numa"
)

// scriptedIteration records the coordinator's calls and stops after a fixed
// number of iterations. Span closures run concurrently, so the log is
// mutex-guarded.
type scriptedIteration struct {
	mu           sync.Mutex
	log          []string
	iters, limit int
	usesFrontier bool
	sparseAt     map[int]bool
	density      float64
}

func (s *scriptedIteration) bundle() Iteration {
	rec := func(ev string) {
		s.mu.Lock()
		s.log = append(s.log, ev)
		s.mu.Unlock()
	}
	return Iteration{
		Begin: func() Status {
			if s.iters >= s.limit {
				return Status{Stop: true}
			}
			s.iters++
			rec("begin")
			return Status{
				UsesFrontier: s.usesFrontier,
				Density:      s.density,
				SparseOK:     s.sparseAt[s.iters],
			}
		},
		Sparse:      func() { rec("sparse") },
		EdgeFull:    func(d Direction) { rec("edgefull" + string(d.Mark())) },
		VertexFull:  func() { rec("vertexfull") },
		EdgeBegin:   func(d Direction) { rec("ebegin" + string(d.Mark())) },
		EdgeSpan:    func(d Direction, sp Span) { rec(fmt.Sprintf("espan%d", sp.Part)) },
		EdgeDone:    func(d Direction) { rec("edone") },
		VertexBegin: func() { rec("vbegin") },
		VertexSpan:  func(sp Span) { rec(fmt.Sprintf("vspan%d", sp.Part)) },
		VertexDone:  func() { rec("vdone") },
		Delta: func(sp Span) FrontierDelta {
			rec(fmt.Sprintf("delta%d", sp.Part))
			return FrontierDelta{Part: sp.Part, WordLo: sp.Lo, Words: []uint64{3}}
		},
		Publish: func() { rec("publish") },
		End:     func(d Direction) { rec("end" + string(d.Mark())) },
	}
}

func TestLocalCoordinatorSchedule(t *testing.T) {
	s := &scriptedIteration{limit: 2, usesFrontier: true, density: 0.5,
		sparseAt: map[int]bool{2: true}}
	c := &LocalCoordinator{Policy: Policy{PullThreshold: 0.05}}
	if err := c.Run(context.Background(), s.bundle(), 10); err != nil {
		t.Fatal(err)
	}
	want := "begin,edgefull<,vertexfull,end<,begin,sparse,ends"
	if got := join(s.log); got != want {
		t.Errorf("schedule = %s, want %s", got, want)
	}
	if c.Partitions() != 1 || c.PartitionStats() != nil {
		t.Error("local coordinator reported partitioned state")
	}
}

func TestLocalCoordinatorMaxIters(t *testing.T) {
	s := &scriptedIteration{limit: 100, density: 1}
	c := &LocalCoordinator{}
	if err := c.Run(context.Background(), s.bundle(), 3); err != nil {
		t.Fatal(err)
	}
	if s.iters != 3 {
		t.Errorf("ran %d iterations, want 3", s.iters)
	}
}

func TestPartitionedCoordinatorSchedule(t *testing.T) {
	s := &scriptedIteration{limit: 1, usesFrontier: true, density: 0.5}
	c := &PartitionedCoordinator{
		Policy: Policy{PullThreshold: 0.05},
		Plan:   numa.NewPlan(2, 4, 4, 2),
	}
	if err := c.Run(context.Background(), s.bundle(), 10); err != nil {
		t.Fatal(err)
	}
	// Span order within a scatter is nondeterministic; check structure via
	// the bracketing events and per-partition stats instead.
	got := join(s.log)
	want := []string{"begin", "ebegin<", "espan0", "espan1", "edone",
		"vbegin", "vspan0", "vspan1", "vdone", "delta0", "delta1", "publish", "end<"}
	for _, ev := range want {
		if !contains(s.log, ev) {
			t.Errorf("schedule %s missing %s", got, ev)
		}
	}
	if s.log[len(s.log)-1] != "end<" || s.log[len(s.log)-2] != "publish" {
		t.Errorf("schedule %s must finish with publish,end<", got)
	}
	if c.Partitions() != 2 {
		t.Errorf("partitions = %d, want 2", c.Partitions())
	}
	stats := c.PartitionStats()
	if len(stats) != 2 {
		t.Fatalf("stats = %d entries, want 2", len(stats))
	}
	for i, st := range stats {
		if st.Part != i || st.Spans != 2 || st.ExchangeBytes != 8 {
			t.Errorf("stats[%d] = %+v, want Part=%d Spans=2 ExchangeBytes=8", i, st, i)
		}
	}
}

// TestPartitionedCoordinatorExchangeError checks an exchange failure still
// closes the iteration (End) but skips the publish, and surfaces the error.
func TestPartitionedCoordinatorExchangeError(t *testing.T) {
	boom := errors.New("boom")
	s := &scriptedIteration{limit: 5, usesFrontier: true, density: 0.5}
	c := &PartitionedCoordinator{
		Plan:     numa.NewPlan(2, 4, 4, 2),
		Exchange: failingExchange{err: boom},
	}
	err := c.Run(context.Background(), s.bundle(), 10)
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want %v", err, boom)
	}
	if contains(s.log, "publish") {
		t.Error("failed exchange still published the frontier")
	}
	if s.log[len(s.log)-1] != "end<" {
		t.Errorf("schedule %s must close the iteration after a failed exchange", join(s.log))
	}
	if s.iters != 1 {
		t.Errorf("ran %d iterations past a failed exchange", s.iters)
	}
}

// TestPartitionedCoordinatorSparseIteration checks sparse rounds bypass the
// scatter and exchange entirely.
func TestPartitionedCoordinatorSparseIteration(t *testing.T) {
	s := &scriptedIteration{limit: 1, usesFrontier: true, density: 0.001,
		sparseAt: map[int]bool{1: true}}
	c := &PartitionedCoordinator{Plan: numa.NewPlan(2, 4, 4, 2)}
	if err := c.Run(context.Background(), s.bundle(), 10); err != nil {
		t.Fatal(err)
	}
	if got, want := join(s.log), "begin,sparse,ends"; got != want {
		t.Errorf("schedule = %s, want %s", got, want)
	}
	for _, st := range c.PartitionStats() {
		if st.ExchangeBytes != 0 || st.Spans != 0 {
			t.Errorf("sparse round charged partition %d: %+v", st.Part, st)
		}
	}
}

type failingExchange struct{ err error }

func (f failingExchange) Exchange(context.Context, []FrontierDelta) (ExchangeResult, error) {
	return ExchangeResult{}, f.err
}

func join(log []string) string {
	out := ""
	for i, ev := range log {
		if i > 0 {
			out += ","
		}
		out += ev
	}
	return out
}

func contains(log []string, ev string) bool {
	for _, e := range log {
		if e == ev {
			return true
		}
	}
	return false
}
