package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/gen"
)

// TestConcurrentRunsShareRunner launches many mixed-application runs on one
// Runner (one pool, one graph) and demands every result be bit-identical to
// a solo run: per-run ExecContexts plus the multiplexing pool must not leak
// state across queries.
func TestConcurrentRunsShareRunner(t *testing.T) {
	g := gen.RMAT(11, 16000, gen.DefaultRMAT, 5)
	cg := BuildGraph(g)
	r := NewRunner(cg, Options{Workers: 4})
	defer r.Close()

	type query struct {
		name string
		run  func() []uint64
	}
	queries := []query{
		{"PageRank", func() []uint64 { return Run(r, apps.NewPageRank(g), 8).Props }},
		{"CC", func() []uint64 { return Run(r, apps.NewConnComp(), 1<<20).Props }},
		{"BFS", func() []uint64 { return Run(r, apps.NewBFS(0), 1<<20).Props }},
	}
	want := make([][]uint64, len(queries))
	for i, q := range queries {
		want[i] = q.run()
	}

	const perApp = 4 // 12 concurrent runs total
	var wg sync.WaitGroup
	for rep := 0; rep < perApp; rep++ {
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q query) {
				defer wg.Done()
				got := q.run()
				for v := range want[i] {
					if got[v] != want[i][v] {
						t.Errorf("%s: prop[%d] = %#x, want %#x (solo run)", q.name, v, got[v], want[i][v])
						return
					}
				}
			}(i, q)
		}
	}
	wg.Wait()
}

// TestRunCtxCancellation cancels a long PageRank mid-run: the run must stop
// early, return an error wrapping context.Canceled, and leave no extra
// goroutines behind once the runner closes.
func TestRunCtxCancellation(t *testing.T) {
	g := gen.RMAT(12, 60000, gen.DefaultRMAT, 3)
	cg := BuildGraph(g)
	before := runtime.NumGoroutine()
	r := NewRunner(cg, Options{Workers: 4})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	const maxIters = 1 << 20
	res, err := RunCtx(ctx, r, apps.NewPageRank(g), maxIters)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Iterations >= maxIters {
		t.Errorf("run completed all %d iterations despite cancellation", res.Iterations)
	}
	if len(res.Props) != g.NumVertices {
		t.Errorf("partial result has %d props, want %d", len(res.Props), g.NumVertices)
	}

	r.Close()
	// Workers park and exit on Close; allow the scheduler a moment before
	// comparing goroutine counts.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+1 {
		t.Errorf("goroutines: %d before, %d after Close", before, after)
	}
}

// TestRunCtxPreCancelled: a context cancelled before the call returns
// immediately with zero iterations.
func TestRunCtxPreCancelled(t *testing.T) {
	g := gen.ErdosRenyi(200, 1000, 1)
	r := NewRunner(BuildGraph(g), Options{Workers: 2})
	defer r.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunCtx(ctx, r, apps.NewPageRank(g), 10)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Iterations != 0 {
		t.Errorf("pre-cancelled run executed %d iterations", res.Iterations)
	}
}

// TestRunCtxDeadline: an expiring deadline behaves like cancellation and
// reports context.DeadlineExceeded.
func TestRunCtxDeadline(t *testing.T) {
	g := gen.RMAT(12, 60000, gen.DefaultRMAT, 9)
	r := NewRunner(BuildGraph(g), Options{Workers: 2})
	defer r.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := RunCtx(ctx, r, apps.NewPageRank(g), 1<<20)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunnerCloseIdempotent: double Close must not panic, with either an
// owned or a caller-supplied pool.
func TestRunnerCloseIdempotent(t *testing.T) {
	g := gen.ErdosRenyi(100, 400, 2)
	cg := BuildGraph(g)
	r := NewRunner(cg, Options{Workers: 2})
	r.Close()
	r.Close()
}

// TestConcurrentCancellationIsolated: cancelling one run must not disturb a
// concurrent run on the same Runner.
func TestConcurrentCancellationIsolated(t *testing.T) {
	g := gen.RMAT(10, 8000, gen.DefaultRMAT, 7)
	cg := BuildGraph(g)
	r := NewRunner(cg, Options{Workers: 4})
	defer r.Close()

	want := Run(r, apps.NewPageRank(g), 6).Props

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithCancel(context.Background())
		go func() { time.Sleep(time.Millisecond); cancel() }()
		if _, err := RunCtx(ctx, r, apps.NewPageRank(g), 1<<20); err == nil {
			t.Error("cancelled run returned nil error")
		}
	}()
	go func() {
		defer wg.Done()
		got := Run(r, apps.NewPageRank(g), 6).Props
		for v := range want {
			if got[v] != want[v] {
				t.Errorf("survivor run diverged at prop[%d]", v)
				return
			}
		}
	}()
	wg.Wait()
}
