package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numa"
)

type namedGraph struct {
	name string
	g    *graph.Graph
}

func testGraphs() []namedGraph {
	return []namedGraph{
		{"rmat", gen.RMAT(8, 1500, gen.DefaultRMAT, 1)},
		{"skewed", gen.RMAT(9, 3000, gen.RMATParams{A: 0.68, B: 0.16, C: 0.11, D: 0.05}, 2)},
		{"mesh", gen.Grid(11, 12, false, 3)},
	}
}

// engineConfigs spans the variant × kernel × mode space. The nonatomic
// variant appears only with one worker (its multi-worker output is
// intentionally unreliable; see TestNonatomicCompletes).
func engineConfigs() []Options {
	var out []Options
	for _, workers := range []int{1, 2, 4} {
		for _, scalar := range []bool{false, true} {
			for _, variant := range []PullVariant{PullSchedulerAware, PullTraditional, PullOuterOnly} {
				out = append(out, Options{Workers: workers, Scalar: scalar, Variant: variant})
			}
		}
		out = append(out, Options{Workers: workers, Variant: PullSchedulerAware, Mode: EnginePushOnly})
		out = append(out, Options{Workers: workers, Variant: PullSchedulerAware, Mode: EnginePullOnly})
	}
	// Nonatomic, single worker: deterministic, must be exact.
	out = append(out, Options{Workers: 1, Variant: PullTraditionalNonatomic})
	out = append(out, Options{Workers: 1, Variant: PullTraditionalNonatomic, Scalar: true})
	// Tight granularity stresses chunk-boundary vertex splitting.
	out = append(out, Options{Workers: 4, Variant: PullSchedulerAware, ChunkVectors: 2})
	out = append(out, Options{Workers: 4, Variant: PullSchedulerAware, ChunkVectors: 2, Scalar: true})
	// Simulated NUMA topologies.
	out = append(out, Options{Workers: 4, Variant: PullSchedulerAware,
		Topology: numa.Topology{Nodes: 2, WorkersPerNode: 2}})
	out = append(out, Options{Workers: 4, Variant: PullSchedulerAware, Scalar: true,
		Topology: numa.Topology{Nodes: 4, WorkersPerNode: 1}})
	return out
}

func optName(o Options) string {
	return fmt.Sprintf("w%d-%s-scalar%v-%s-chunk%d-nodes%d",
		o.Workers, o.Variant, o.Scalar, o.Mode, o.ChunkVectors, o.Topology.Nodes)
}

func TestPageRankAllEngines(t *testing.T) {
	const iters = 12
	for _, tg := range testGraphs() {
		cg := BuildGraph(tg.g)
		want := apps.RunSequential(apps.NewPageRank(tg.g), tg.g, iters)
		for _, opt := range engineConfigs() {
			t.Run(tg.name+"/"+optName(opt), func(t *testing.T) {
				r := NewRunner(cg, opt)
				defer r.Close()
				got := Run(r, apps.NewPageRank(tg.g), iters)
				if got.Iterations != iters {
					t.Fatalf("ran %d iterations, want %d", got.Iterations, iters)
				}
				compareRanks(t, got.Props, want.Props)
				if sum := apps.RankSum(got.Props); math.Abs(sum-1) > 1e-9 {
					t.Errorf("rank sum = %v, want 1", sum)
				}
			})
		}
	}
}

func compareRanks(t *testing.T, got, want []uint64) {
	t.Helper()
	for v := range want {
		g, w := math.Float64frombits(got[v]), math.Float64frombits(want[v])
		if math.Abs(g-w) > 1e-10*(1+math.Abs(w)) {
			t.Fatalf("rank[%d] = %v, want %v", v, g, w)
		}
	}
}

func TestConnectedComponentsAllEngines(t *testing.T) {
	for _, tg := range testGraphs() {
		cg := BuildGraph(tg.g)
		want := apps.ReferenceComponents(tg.g)
		for _, opt := range engineConfigs() {
			t.Run(tg.name+"/"+optName(opt), func(t *testing.T) {
				r := NewRunner(cg, opt)
				defer r.Close()
				for _, p := range []*apps.ConnComp{apps.NewConnComp(), apps.NewConnCompWriteIntense()} {
					got := apps.Components(Run(r, p, 1<<20).Props)
					for v := range want {
						if got[v] != want[v] {
							t.Fatalf("%s: component[%d] = %d, want %d", p.Name(), v, got[v], want[v])
						}
					}
				}
			})
		}
	}
}

func TestBFSAllEngines(t *testing.T) {
	for _, tg := range testGraphs() {
		cg := BuildGraph(tg.g)
		want := apps.ReferenceBFS(tg.g, 0)
		for _, opt := range engineConfigs() {
			t.Run(tg.name+"/"+optName(opt), func(t *testing.T) {
				r := NewRunner(cg, opt)
				defer r.Close()
				got := Run(r, apps.NewBFS(0), 1<<20)
				for v := range want {
					if got.Props[v] != want[v] {
						t.Fatalf("parent[%d] = %d, want %d", v, got.Props[v], want[v])
					}
				}
			})
		}
	}
}

func TestSSSPAllEngines(t *testing.T) {
	g := gen.AddUniformWeights(gen.RMAT(8, 1800, gen.DefaultRMAT, 7), 8)
	cg := BuildGraph(g)
	want := apps.ReferenceSSSP(g, 0)
	for _, opt := range engineConfigs() {
		t.Run(optName(opt), func(t *testing.T) {
			r := NewRunner(cg, opt)
			defer r.Close()
			got := apps.Distances(Run(r, apps.NewSSSP(0), 1<<20).Props)
			for v := range want {
				if math.IsInf(want[v], 1) != math.IsInf(got[v], 1) {
					t.Fatalf("reachability of %d differs", v)
				}
				if !math.IsInf(want[v], 1) && math.Abs(got[v]-want[v]) > 1e-9 {
					t.Fatalf("dist[%d] = %v, want %v", v, got[v], want[v])
				}
			}
		})
	}
}

func TestWeightedRankEngine(t *testing.T) {
	g := gen.AddUniformWeights(gen.RMAT(7, 900, gen.DefaultRMAT, 4), 5)
	cg := BuildGraph(g)
	want := apps.RunSequential(apps.NewWeightedRank(g), g, 10)
	r := NewRunner(cg, Options{Workers: 4})
	defer r.Close()
	got := Run(r, apps.NewWeightedRank(g), 10)
	compareRanks(t, got.Props, want.Props)
}

func TestHybridSelectsPullForPageRank(t *testing.T) {
	g := gen.RMAT(7, 800, gen.DefaultRMAT, 1)
	r := NewRunner(BuildGraph(g), Options{Workers: 2})
	defer r.Close()
	res := Run(r, apps.NewPageRank(g), 5)
	// §6.2: "Grazelle exclusively selects Edge-Pull for [PageRank's]
	// execution".
	if res.PullIterations != 5 || res.PushIterations != 0 {
		t.Errorf("PR iterations: pull=%d push=%d, want 5/0", res.PullIterations, res.PushIterations)
	}
}

func TestHybridSwitchesForBFS(t *testing.T) {
	// A long path keeps the frontier at one vertex: hybrid must pick push
	// every iteration.
	b := graph.NewBuilder(256)
	for v := uint32(0); v < 255; v++ {
		b.AddEdge(v, v+1)
	}
	g := b.MustBuild()
	r := NewRunner(BuildGraph(g), Options{Workers: 2})
	defer r.Close()
	res := Run(r, apps.NewBFS(0), 1<<20)
	if res.PushIterations == 0 {
		t.Error("hybrid never chose push on a sparse frontier")
	}
	if res.PullIterations != 0 {
		t.Errorf("hybrid chose pull %d times on a always-sparse frontier", res.PullIterations)
	}
	// CC starts with a full frontier: the first iteration must be pull.
	res = Run(r, apps.NewConnComp(), 1<<20)
	if res.PullIterations == 0 {
		t.Error("hybrid never chose pull for CC's dense initial frontier")
	}
}

func TestForcedModes(t *testing.T) {
	g := gen.RMAT(7, 700, gen.DefaultRMAT, 2)
	cg := BuildGraph(g)
	for _, mode := range []EngineMode{EnginePullOnly, EnginePushOnly} {
		r := NewRunner(cg, Options{Workers: 2, Mode: mode})
		res := Run(r, apps.NewConnComp(), 1<<20)
		if mode == EnginePullOnly && res.PushIterations != 0 {
			t.Error("EnginePullOnly ran push")
		}
		if mode == EnginePushOnly && res.PullIterations != 0 {
			t.Error("EnginePushOnly ran pull")
		}
		r.Close()
	}
}

// TestNonatomicCompletes runs the intentionally-racy configuration with
// multiple workers, asserting only that it terminates and produces a
// plausible rank mass — mirroring the paper, which reports its performance
// "even though it leads to incorrect output".
func TestNonatomicCompletes(t *testing.T) {
	if raceEnabled {
		t.Skip("nonatomic variant is intentionally racy; skipped under -race")
	}
	g := gen.RMAT(8, 1500, gen.DefaultRMAT, 3)
	r := NewRunner(BuildGraph(g), Options{Workers: 4, Variant: PullTraditionalNonatomic})
	defer r.Close()
	res := Run(r, apps.NewPageRank(g), 5)
	if res.Iterations != 5 {
		t.Errorf("ran %d iterations", res.Iterations)
	}
	if sum := apps.RankSum(res.Props); math.IsNaN(sum) || sum <= 0 || sum > 2 {
		t.Errorf("implausible rank sum %v", sum)
	}
}

func TestCountersSchedulerAwareVsTraditional(t *testing.T) {
	g := gen.RMAT(9, 5000, gen.RMATParams{A: 0.65, B: 0.17, C: 0.12, D: 0.06}, 5)
	cg := BuildGraph(g)
	run := func(variant PullVariant) Result {
		r := NewRunner(cg, Options{Workers: 2, Variant: variant, Record: true, ChunkVectors: 16})
		defer r.Close()
		return Run(r, apps.NewPageRank(g), 3)
	}
	sa := run(PullSchedulerAware)
	trad := run(PullTraditional)

	if sa.EdgeCounters.AtomicOps != 0 {
		t.Errorf("scheduler-aware issued %d atomics, want 0 (the §3 claim)", sa.EdgeCounters.AtomicOps)
	}
	if trad.EdgeCounters.AtomicOps == 0 {
		t.Error("traditional issued no atomics")
	}
	if sa.EdgeCounters.SharedWrites >= trad.EdgeCounters.SharedWrites {
		t.Errorf("scheduler-aware shared writes (%d) not below traditional (%d)",
			sa.EdgeCounters.SharedWrites, trad.EdgeCounters.SharedWrites)
	}
	if sa.EdgeCounters.TLSWrites == 0 {
		t.Error("scheduler-aware recorded no TLS writes")
	}
	if sa.EdgeCounters.MergeOps == 0 {
		t.Error("scheduler-aware recorded no merge operations")
	}
	if sa.EdgeCounters.EdgesProcessed != trad.EdgeCounters.EdgesProcessed {
		t.Errorf("edge counts differ: %d vs %d",
			sa.EdgeCounters.EdgesProcessed, trad.EdgeCounters.EdgesProcessed)
	}
	// PageRank processes every edge every iteration.
	if want := uint64(g.NumEdges() * 3); sa.EdgeCounters.EdgesProcessed != want {
		t.Errorf("EdgesProcessed = %d, want %d", sa.EdgeCounters.EdgesProcessed, want)
	}
}

func TestNUMACountersClassifyAccesses(t *testing.T) {
	g := gen.RMAT(8, 2000, gen.DefaultRMAT, 6)
	cg := BuildGraph(g)
	single := NewRunner(cg, Options{Workers: 2, Record: true,
		Topology: numa.Topology{Nodes: 1, WorkersPerNode: 2}})
	defer single.Close()
	resSingle := Run(single, apps.NewPageRank(g), 2)
	if resSingle.EdgeCounters.RemoteAccesses != 0 {
		t.Errorf("single node recorded %d remote accesses", resSingle.EdgeCounters.RemoteAccesses)
	}
	dual := NewRunner(cg, Options{Workers: 2, Record: true,
		Topology: numa.Topology{Nodes: 2, WorkersPerNode: 1}})
	defer dual.Close()
	resDual := Run(dual, apps.NewPageRank(g), 2)
	if resDual.EdgeCounters.RemoteAccesses == 0 {
		t.Error("two nodes recorded no remote accesses on a scale-free graph")
	}
	total := resDual.EdgeCounters.RemoteAccesses + resDual.EdgeCounters.LocalAccesses
	if total != resDual.EdgeCounters.EdgesProcessed {
		t.Errorf("local+remote (%d) != edges processed (%d)", total, resDual.EdgeCounters.EdgesProcessed)
	}
}

func TestVectorCountersMatchFormat(t *testing.T) {
	g := gen.RMAT(8, 1200, gen.DefaultRMAT, 9)
	cg := BuildGraph(g)
	r := NewRunner(cg, Options{Workers: 2, Record: true})
	defer r.Close()
	res := Run(r, apps.NewPageRank(g), 1)
	if got, want := res.EdgeCounters.VectorsProcessed, uint64(cg.VSD.NumVectors()); got != want {
		t.Errorf("VectorsProcessed = %d, want %d", got, want)
	}
	wantInvalid := uint64(cg.VSD.NumVectors()*4 - cg.VSD.ValidEdges)
	if got := res.EdgeCounters.InvalidLanes; got != wantInvalid {
		t.Errorf("InvalidLanes = %d, want %d", got, wantInvalid)
	}
}

func TestRunnerReuseAcrossPrograms(t *testing.T) {
	g := gen.Grid(10, 10, false, 1)
	r := NewRunner(BuildGraph(g), Options{Workers: 2})
	defer r.Close()
	pr := Run(r, apps.NewPageRank(g), 5)
	if math.Abs(apps.RankSum(pr.Props)-1) > 1e-9 {
		t.Error("first run wrong")
	}
	bfs := Run(r, apps.NewBFS(0), 1<<20)
	want := apps.ReferenceBFS(g, 0)
	for v := range want {
		if bfs.Props[v] != want[v] {
			t.Fatalf("second run: parent[%d] = %d, want %d", v, bfs.Props[v], want[v])
		}
	}
	// And PageRank again: state must fully reset.
	pr2 := Run(r, apps.NewPageRank(g), 5)
	compareRanks(t, pr2.Props, pr.Props)
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(10).MustBuild()
	r := NewRunner(BuildGraph(g), Options{Workers: 2})
	defer r.Close()
	res := Run(r, apps.NewPageRank(g), 3)
	if res.Iterations != 3 {
		t.Errorf("empty graph ran %d iterations", res.Iterations)
	}
	if math.Abs(apps.RankSum(res.Props)-1) > 1e-9 {
		t.Error("empty-graph rank sum wrong (dangling mass must recirculate)")
	}
	bfs := Run(r, apps.NewBFS(3), 1<<20)
	if bfs.Props[3] != 3 {
		t.Error("BFS root lost on empty graph")
	}
}

func TestTopologyMismatchPanics(t *testing.T) {
	g := gen.ErdosRenyi(20, 40, 1)
	defer func() {
		if recover() == nil {
			t.Error("mismatched topology did not panic")
		}
	}()
	NewRunner(BuildGraph(g), Options{Workers: 2, Topology: numa.Topology{Nodes: 3, WorkersPerNode: 2}})
}
