package core

import (
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Determinism regression suite: the engine's contract is that a run's
// output is a pure function of the graph and the chunk structure — never of
// worker count or timing (the merge buffer is folded in chunk order on one
// thread after the barrier). Each app's 1-worker run is the reference; 2-
// and 4-worker runs, traced and untraced, must be bit-identical to it.
//
// Two framing choices keep the suite honest:
//   - ChunkVectors is pinned, because the DEFAULT chunk size derives from
//     the worker count — identical output across worker counts is only
//     promised for an identical chunk layout (order-sensitive float
//     addition folds per chunk).
//   - The reference is a same-process run, not a stored hash, so the suite
//     stays valid on hardware with different float rounding (FMA
//     contraction differs across builds).

// detApps returns fresh program instances — programs carry per-run state,
// so each run needs its own.
var detApps = []struct {
	name string
	make func(g *graph.Graph) apps.Program
}{
	{"pagerank", func(g *graph.Graph) apps.Program { return apps.NewPageRank(g) }},
	{"components", func(g *graph.Graph) apps.Program { return apps.NewConnComp() }},
	{"bfs", func(g *graph.Graph) apps.Program { return apps.NewBFS(3) }},
}

func TestDeterminismAcrossWorkers(t *testing.T) {
	g := gen.RMAT(11, 20000, gen.DefaultRMAT, 97)
	cg := BuildGraph(g)

	for _, app := range detApps {
		t.Run(app.name, func(t *testing.T) {
			ref := runDet(t, cg, g, app.make, Options{Workers: 1})
			for _, workers := range []int{1, 2, 4} {
				for _, trace := range []bool{false, true} {
					name := fmt.Sprintf("w%d_trace=%v", workers, trace)
					t.Run(name, func(t *testing.T) {
						got := runDet(t, cg, g, app.make, Options{Workers: workers, Trace: trace})
						diffProps(t, ref, got)
					})
				}
			}
		})
	}
}

// TestDeterminismSparseAndStealing extends the suite to the optional
// engines: the sparse-frontier path and the work-stealing scheduler must
// also reproduce the 1-worker ticket-scheduler output exactly.
func TestDeterminismSparseAndStealing(t *testing.T) {
	g := gen.RMAT(11, 20000, gen.DefaultRMAT, 98)
	cg := BuildGraph(g)

	for _, app := range detApps {
		t.Run(app.name, func(t *testing.T) {
			ref := runDet(t, cg, g, app.make, Options{Workers: 1})
			for _, opt := range []struct {
				name string
				o    Options
			}{
				{"sparse_w4", Options{Workers: 4, SparseFrontier: true, Trace: true}},
				{"stealing_w4", Options{Workers: 4, WorkStealing: true, Trace: true}},
			} {
				t.Run(opt.name, func(t *testing.T) {
					got := runDet(t, cg, g, app.make, opt.o)
					diffProps(t, ref, got)
				})
			}
		})
	}
}

func runDet(t *testing.T, cg *Graph, g *graph.Graph, mk func(*graph.Graph) apps.Program, opt Options) []uint64 {
	t.Helper()
	opt.ChunkVectors = 8
	r := NewRunner(cg, opt)
	defer r.Close()
	res := Run(r, mk(g), 20)
	return res.Props
}

func diffProps(t *testing.T, want, got []uint64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("prop length %d, want %d", len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("prop[%d] = %#x, want %#x (first divergence)", v, got[v], want[v])
		}
	}
}
