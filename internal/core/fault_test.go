package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/sched"
)

// TestRunCtxPanicContained injects a panic into one Edge-phase chunk via the
// core/chunk failpoint: RunCtx must return a typed *sched.PanicError wrapped
// in the run error, not crash, and the Runner must serve a correct run
// immediately afterwards.
func TestRunCtxPanicContained(t *testing.T) {
	if !fault.Available() {
		t.Skip("failpoints compiled out")
	}
	g := gen.RMAT(10, 8000, gen.DefaultRMAT, 21)
	r := NewRunner(BuildGraph(g), Options{Workers: 4})
	defer r.Close()

	want := Run(r, apps.NewPageRank(g), 6).Props

	disarm, err := fault.Enable("core/chunk", "panic*1")
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	_, err = RunCtx(context.Background(), r, apps.NewPageRank(g), 6)
	var pe *sched.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("RunCtx = %v, want wrapped *sched.PanicError", err)
	}

	// The failpoint budget is spent; the Runner must now produce the exact
	// solo-run result again.
	got := Run(r, apps.NewPageRank(g), 6).Props
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("post-panic run diverged at prop[%d]: %#x != %#x", v, got[v], want[v])
		}
	}
}

// TestRunCtxPanicOneOfN is the acceptance-criteria chaos shape at engine
// level: N concurrent queries, a failpoint panics exactly one chunk, and the
// N-1 survivors return bit-identical results.
func TestRunCtxPanicOneOfN(t *testing.T) {
	if !fault.Available() {
		t.Skip("failpoints compiled out")
	}
	g := gen.RMAT(10, 8000, gen.DefaultRMAT, 22)
	r := NewRunner(BuildGraph(g), Options{Workers: 4})
	defer r.Close()

	want := Run(r, apps.NewPageRank(g), 8).Props

	disarm, err := fault.Enable("core/chunk", "panic*1")
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	const n = 8
	errs := make([]error, n)
	results := make([][]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := RunCtx(context.Background(), r, apps.NewPageRank(g), 8)
			errs[i], results[i] = err, res.Props
		}(i)
	}
	wg.Wait()

	failed := 0
	for i := 0; i < n; i++ {
		var pe *sched.PanicError
		if errors.As(errs[i], &pe) {
			failed++
			continue
		}
		if errs[i] != nil {
			t.Fatalf("query %d: unexpected error %v", i, errs[i])
		}
		for v := range want {
			if results[i][v] != want[v] {
				t.Fatalf("surviving query %d diverged at prop[%d]", i, v)
			}
		}
	}
	if failed != 1 {
		t.Errorf("%d queries failed, want exactly 1 (panic*1 budget)", failed)
	}
	// The core-level guard contains the panic before it reaches the pool, so
	// the pool's own panic counter stays untouched — the pool never saw it.
	if n := r.Pool().Panics(); n != 0 {
		t.Errorf("pool panic counter = %d, want 0 (contained at core layer)", n)
	}
}

// TestRunCtxPanicInApplyPhase panics inside the Vertex phase's Apply via a
// poisoned program callback; the guard on the static loop must contain it.
func TestRunCtxPanicInApplyPhase(t *testing.T) {
	g := gen.ErdosRenyi(500, 3000, 3)
	r := NewRunner(BuildGraph(g), Options{Workers: 2})
	defer r.Close()
	_, err := RunCtx(context.Background(), r, poisonedApply{apps.NewPageRank(g)}, 4)
	var pe *sched.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("RunCtx = %v, want wrapped *sched.PanicError", err)
	}
	if _, err := RunCtx(context.Background(), r, apps.NewPageRank(g), 4); err != nil {
		t.Fatalf("follow-up run = %v", err)
	}
}

// poisonedApply panics on the first Apply of vertex 0.
type poisonedApply struct {
	*apps.PageRank
}

func (p poisonedApply) Apply(old, agg uint64, v uint32) (uint64, bool) {
	if v == 0 {
		panic("poisoned apply")
	}
	return p.PageRank.Apply(old, agg, v)
}

// TestMaxRunTimeDeadline: Options.MaxRunTime bounds the run like a caller
// deadline, reporting context.DeadlineExceeded.
func TestMaxRunTimeDeadline(t *testing.T) {
	g := gen.RMAT(12, 60000, gen.DefaultRMAT, 23)
	r := NewRunner(BuildGraph(g), Options{Workers: 2, MaxRunTime: time.Millisecond})
	defer r.Close()
	const maxIters = 1 << 20
	res, err := RunCtx(context.Background(), r, apps.NewPageRank(g), maxIters)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res.Iterations >= maxIters {
		t.Error("run ignored MaxRunTime")
	}
}

// TestAbortedRunDoesNotPoisonRecycledContext: an aborted ordered-push run
// leaves scatter contributions behind; the recycled ExecContext must not
// fold them into the next run. (Init drains the scatter buffer.)
func TestAbortedRunDoesNotPoisonRecycledContext(t *testing.T) {
	if !fault.Available() {
		t.Skip("failpoints compiled out")
	}
	g := gen.RMAT(10, 8000, gen.DefaultRMAT, 24)
	// Push-only keeps the scatter/CAS paths hot; one worker serializes runs
	// onto one recycled ExecContext.
	r := NewRunner(BuildGraph(g), Options{Workers: 1, Mode: EnginePushOnly})
	defer r.Close()

	want := Run(r, apps.NewPageRank(g), 5).Props

	disarm, err := fault.Enable("core/chunk", "panic*1")
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	if _, err := RunCtx(context.Background(), r, apps.NewPageRank(g), 5); err == nil {
		t.Fatal("injected run returned nil error")
	}

	got := Run(r, apps.NewPageRank(g), 5).Props
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("recycled-context run diverged at prop[%d]", v)
		}
	}
}
