package core

import (
	"math"

	"repro/internal/apps"
)

// fuse is the per-phase resolved kernel specialization (see
// apps.FusedKind): the engines run the paper's aggregation operators as
// inlined code instead of per-edge indirect calls, mirroring Grazelle's
// hand-specialized per-application assembly kernels.
type fuse struct {
	kind     apps.FusedKind
	scale    []float64
	weighted bool
	// ordered marks combine operators whose result depends on evaluation
	// order — floating-point addition (FusedRankSum) and, conservatively,
	// any program the engine cannot classify (FusedNone). Kernels that
	// scatter writes across destinations route ordered contributions
	// through a fixed-order buffer so results are bit-identical at any
	// worker count; min-style operators are order- and grouping-independent
	// and keep the direct CAS path.
	ordered bool
}

func fuseFor(p apps.Program, weighted bool) fuse {
	k, s := apps.KindOf(p)
	return fuse{
		kind:     k,
		scale:    s,
		weighted: weighted,
		ordered:  k == apps.FusedNone || k == apps.FusedRankSum,
	}
}

// step computes Combine(acc, Message(props[n], n, w)) through the fused
// operator. The generic fallback preserves exact Program semantics for
// kinds the engine does not recognize.
func step[P apps.Program](p P, fz *fuse, props []uint64, acc, n uint64, w float32) uint64 {
	switch fz.kind {
	case apps.FusedRankSum:
		m := math.Float64frombits(props[n]) * fz.scale[n]
		if fz.weighted {
			m *= float64(w)
		}
		return math.Float64bits(math.Float64frombits(acc) + m)
	case apps.FusedMinProp:
		if v := props[n]; v < acc {
			return v
		}
		return acc
	case apps.FusedMinSrc:
		if n < acc {
			return n
		}
		return acc
	case apps.FusedMinPropPlusW:
		if d := math.Float64frombits(props[n]) + float64(w); d < math.Float64frombits(acc) {
			return math.Float64bits(d)
		}
		return acc
	default:
		return p.Combine(acc, p.Message(props[n], uint32(n), w))
	}
}

// step4 folds a full 4-lane vector (all lanes valid) into acc — the fused
// body of the full-vector fast path, with the kind switch hoisted off the
// per-lane work.
func step4[P apps.Program](p P, fz *fuse, props []uint64, acc, n0, n1, n2, n3 uint64, wbase int, weights []float32) uint64 {
	switch fz.kind {
	case apps.FusedRankSum:
		s := math.Float64frombits(acc)
		if fz.weighted {
			s += math.Float64frombits(props[n0]) * fz.scale[n0] * float64(weights[wbase])
			s += math.Float64frombits(props[n1]) * fz.scale[n1] * float64(weights[wbase+1])
			s += math.Float64frombits(props[n2]) * fz.scale[n2] * float64(weights[wbase+2])
			s += math.Float64frombits(props[n3]) * fz.scale[n3] * float64(weights[wbase+3])
		} else {
			s += math.Float64frombits(props[n0]) * fz.scale[n0]
			s += math.Float64frombits(props[n1]) * fz.scale[n1]
			s += math.Float64frombits(props[n2]) * fz.scale[n2]
			s += math.Float64frombits(props[n3]) * fz.scale[n3]
		}
		return math.Float64bits(s)
	case apps.FusedMinProp:
		if v := props[n0]; v < acc {
			acc = v
		}
		if v := props[n1]; v < acc {
			acc = v
		}
		if v := props[n2]; v < acc {
			acc = v
		}
		if v := props[n3]; v < acc {
			acc = v
		}
		return acc
	case apps.FusedMinSrc:
		if n0 < acc {
			acc = n0
		}
		if n1 < acc {
			acc = n1
		}
		if n2 < acc {
			acc = n2
		}
		if n3 < acc {
			acc = n3
		}
		return acc
	case apps.FusedMinPropPlusW:
		a := math.Float64frombits(acc)
		if d := math.Float64frombits(props[n0]) + float64(weights[wbase]); d < a {
			a = d
		}
		if d := math.Float64frombits(props[n1]) + float64(weights[wbase+1]); d < a {
			a = d
		}
		if d := math.Float64frombits(props[n2]) + float64(weights[wbase+2]); d < a {
			a = d
		}
		if d := math.Float64frombits(props[n3]) + float64(weights[wbase+3]); d < a {
			a = d
		}
		return math.Float64bits(a)
	default:
		var w0, w1, w2, w3 float32
		if weights != nil {
			w0, w1, w2, w3 = weights[wbase], weights[wbase+1], weights[wbase+2], weights[wbase+3]
		}
		acc = p.Combine(acc, p.Message(props[n0], uint32(n0), w0))
		acc = p.Combine(acc, p.Message(props[n1], uint32(n1), w1))
		acc = p.Combine(acc, p.Message(props[n2], uint32(n2), w2))
		acc = p.Combine(acc, p.Message(props[n3], uint32(n3), w3))
		return acc
	}
}

// stepMsg computes Message(props[n], n, w) alone, for the push and
// traditional kernels whose combine happens at the destination.
func stepMsg[P apps.Program](p P, fz *fuse, props []uint64, n uint64, w float32) uint64 {
	switch fz.kind {
	case apps.FusedRankSum:
		m := math.Float64frombits(props[n]) * fz.scale[n]
		if fz.weighted {
			m *= float64(w)
		}
		return math.Float64bits(m)
	case apps.FusedMinProp:
		return props[n]
	case apps.FusedMinSrc:
		return n
	case apps.FusedMinPropPlusW:
		return math.Float64bits(math.Float64frombits(props[n]) + float64(w))
	default:
		return p.Message(props[n], uint32(n), w)
	}
}
