package core

import (
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/gen"
)

// unfused wraps a program while hiding its Fused implementation, forcing
// the engines down the generic Message/Combine path.
type unfused struct{ apps.Program }

func TestKindOfResolution(t *testing.T) {
	g := gen.ErdosRenyi(10, 30, 1)
	cases := []struct {
		p    apps.Program
		want apps.FusedKind
	}{
		{apps.NewPageRank(g), apps.FusedRankSum},
		{apps.NewWeightedRank(gen.AddUniformWeights(g, 2)), apps.FusedRankSum},
		{apps.NewConnComp(), apps.FusedMinProp},
		{apps.NewConnCompWriteIntense(), apps.FusedMinProp},
		{apps.NewBFS(0), apps.FusedMinSrc},
		{apps.NewSSSP(0), apps.FusedMinPropPlusW},
		{unfused{apps.NewPageRank(g)}, apps.FusedNone},
	}
	for _, c := range cases {
		if k, _ := apps.KindOf(c.p); k != c.want {
			t.Errorf("%s: KindOf = %v, want %v", c.p.Name(), k, c.want)
		}
	}
	if _, scale := apps.KindOf(apps.NewPageRank(g)); len(scale) != g.NumVertices {
		t.Error("PageRank fused scale has wrong length")
	}
}

// TestFusedMatchesGenericExactly runs every application through both the
// fused kernels and the generic fallback (via the unfused wrapper) on every
// engine variant, demanding bit-identical results — the contract that the
// fused operators are pure specializations of Combine∘Message.
func TestFusedMatchesGenericExactly(t *testing.T) {
	g := gen.RMAT(8, 2000, gen.DefaultRMAT, 11)
	wg := gen.AddUniformWeights(g, 12)
	cg := BuildGraph(g)
	wcg := BuildGraph(wg)

	type cse struct {
		name    string
		cg      *Graph
		mk      func() apps.Program
		maxIter int
	}
	cases := []cse{
		{"PageRank", cg, func() apps.Program { return apps.NewPageRank(g) }, 6},
		{"WeightedRank", wcg, func() apps.Program { return apps.NewWeightedRank(wg) }, 6},
		{"CC", cg, func() apps.Program { return apps.NewConnComp() }, 1 << 20},
		{"CC-WI", cg, func() apps.Program { return apps.NewConnCompWriteIntense() }, 1 << 20},
		{"BFS", cg, func() apps.Program { return apps.NewBFS(0) }, 1 << 20},
		{"SSSP", wcg, func() apps.Program { return apps.NewSSSP(0) }, 1 << 20},
	}
	// Every variant is deterministic at any worker count: scheduler-aware
	// pull merges in chunk-id order; traditional pull peels chunk-boundary
	// destination runs into fixed-order merge slots (interior runs have a
	// single writer in the destination-sorted layout); push routes
	// order-sensitive programs through the ordered scatter buffer. So the
	// fused-vs-generic comparison runs multi-worker everywhere — no 1-worker
	// pins.
	opts := []Options{
		{Workers: 2},
		{Workers: 2, Scalar: true},
		{Workers: 2, Variant: PullTraditional},
		{Workers: 2, Variant: PullTraditional, Scalar: true},
		{Workers: 2, Mode: EnginePushOnly},
		{Workers: 2, Mode: EnginePushOnly, Scalar: true},
		{Workers: 2, Variant: PullOuterOnly},
	}
	for _, c := range cases {
		for _, opt := range opts {
			t.Run(c.name+"/"+optName(opt), func(t *testing.T) {
				r := NewRunner(c.cg, opt)
				defer r.Close()
				fused := Run(r, c.mk(), c.maxIter)
				generic := Run(r, unfused{c.mk()}, c.maxIter)
				if fused.Iterations != generic.Iterations {
					t.Fatalf("iteration counts differ: %d vs %d", fused.Iterations, generic.Iterations)
				}
				for v := range fused.Props {
					if fused.Props[v] != generic.Props[v] {
						t.Fatalf("prop[%d]: fused %#x != generic %#x", v, fused.Props[v], generic.Props[v])
					}
				}
			})
		}
	}
}

// TestStepHelpersMatchDefinition cross-checks the fused step helpers against
// Combine∘Message directly, per kind.
func TestStepHelpersMatchDefinition(t *testing.T) {
	g := gen.AddUniformWeights(gen.ErdosRenyi(40, 200, 3), 4)
	programs := []apps.Program{
		apps.NewPageRank(g), apps.NewWeightedRank(g),
		apps.NewConnComp(), apps.NewBFS(0), apps.NewSSSP(0),
	}
	props := make([]uint64, g.NumVertices)
	for _, p := range programs {
		p.InitProps(props)
		fz := fuseFor(p, p.Weighted())
		acc := p.Identity()
		for n := uint64(0); n < 20; n++ {
			w := float32(n%7) + 0.5
			wantMsg := p.Message(props[n], uint32(n), w)
			if got := stepMsg(p, &fz, props, n, w); got != wantMsg {
				t.Errorf("%s: stepMsg(%d) = %#x, want %#x", p.Name(), n, got, wantMsg)
			}
			want := p.Combine(acc, wantMsg)
			if got := step(p, &fz, props, acc, n, w); got != want {
				t.Errorf("%s: step(%d) = %#x, want %#x", p.Name(), n, got, want)
			}
			acc = want
		}
		// step4 over a full vector equals four chained steps.
		weights := []float32{1.5, 2.5, 0.5, 3.25}
		accA := p.Identity()
		for i, n := range []uint64{3, 9, 9, 14} {
			accA = p.Combine(accA, p.Message(props[n], uint32(n), weights[i]))
		}
		accB := step4(p, &fz, props, p.Identity(), 3, 9, 9, 14, 0, weights)
		if fz.kind == apps.FusedRankSum {
			// Summation order differs between the chained and fused forms
			// only by float association; demand near-equality.
			if math.Abs(math.Float64frombits(accA)-math.Float64frombits(accB)) > 1e-12 {
				t.Errorf("%s: step4 = %v, want %v", p.Name(), math.Float64frombits(accB), math.Float64frombits(accA))
			}
		} else if accA != accB {
			t.Errorf("%s: step4 = %#x, want %#x", p.Name(), accB, accA)
		}
	}
}
