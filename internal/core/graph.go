// Package core implements Grazelle (§5 of the paper): the hybrid graph
// processing framework embodying the scheduler-aware parallel-loop interface
// (§3) and the Vector-Sparse edge format (§4). It provides the Edge-Pull
// engine in its four evaluated variants (traditional-atomic,
// traditional-nonatomic, scheduler-aware scalar, scheduler-aware
// vectorized), the Edge-Push engine, the Vertex phase, hybrid engine
// selection by frontier density, and simulated NUMA partitioning.
package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/csr"
	"repro/internal/graph"
	"repro/internal/vsparse"
)

// Graph holds every preprocessed representation the engines consume. As in
// the paper (§5), two edge lists are kept: one grouped by source (VSS, used
// by Edge-Push) and one grouped by destination (VSD, used by Edge-Pull),
// with Compressed-Sparse views retained for the scalar kernels.
type Graph struct {
	// N is the vertex count.
	N int
	// CSR groups edges by source; CSC groups by destination (Fig 2).
	CSR, CSC *csr.Matrix
	// VSS and VSD are the Vector-Sparse encodings of CSR and CSC (Fig 4).
	VSS, VSD *vsparse.Array
	// EdgeDst maps each CSC edge-array position to its destination (the
	// top-level vertex owning that position). The scalar pull kernels chunk
	// over edges and need the destination without walking the vertex index,
	// mirroring what the embedded top-level id provides in Vector-Sparse.
	EdgeDst []uint32
	// Weighted reports whether edge weights are present.
	Weighted bool
	// Edges is the directed edge count.
	Edges int

	// vsd8 is the 512-bit (8-lane) pull encoding, built lazily on first use
	// (Options.WideVectors); most runs never need it. It is an atomic
	// pointer so MemoryBytes can observe it without racing the build.
	vsd8     atomic.Pointer[vsparse.WideArray]
	vsd8Once sync.Once
}

// MemoryBytes returns the heap footprint of every preprocessed
// representation the engines hold resident — the store's unit of memory
// accounting. The lazily-built wide encoding is counted only once built.
func (g *Graph) MemoryBytes() int64 {
	total := g.CSR.MemoryBytes() + g.CSC.MemoryBytes() +
		g.VSS.MemoryBytes() + g.VSD.MemoryBytes() +
		int64(len(g.EdgeDst))*4
	if w := g.vsd8.Load(); w != nil {
		total += int64(len(w.Words))*8 + int64(len(w.Weights))*4 +
			int64(len(w.Index))*8
	}
	return total
}

// VSD8 returns the 8-lane Vector-Sparse pull encoding, building it on first
// call.
func (g *Graph) VSD8() *vsparse.WideArray {
	g.vsd8Once.Do(func() { g.vsd8.Store(vsparse.FromCSRWide(g.CSC)) })
	return g.vsd8.Load()
}

// BuildGraph preprocesses an edge-list graph into every engine
// representation.
func BuildGraph(g *graph.Graph) *Graph {
	csrM := csr.FromGraph(g, false)
	cscM := csr.FromGraph(g, true)
	edgeDst := make([]uint32, cscM.NumEdges())
	for v := uint32(0); int(v) < cscM.N; v++ {
		lo, hi := cscM.Index[v], cscM.Index[v+1]
		for i := lo; i < hi; i++ {
			edgeDst[i] = v
		}
	}
	return &Graph{
		N:        g.NumVertices,
		CSR:      csrM,
		CSC:      cscM,
		VSS:      vsparse.FromCSR(csrM),
		VSD:      vsparse.FromCSR(cscM),
		EdgeDst:  edgeDst,
		Weighted: g.Weighted,
		Edges:    g.NumEdges(),
	}
}
