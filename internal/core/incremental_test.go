package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Metamorphic equivalence suite for incremental recompute (DESIGN.md §15):
// for every seed-capable app, applying a mutation batch and warm-starting
// from the predecessor's lanes must produce the same result as a cold run
// on the mutated graph — exact for integer lanes, within float
// reassociation tolerance for float lanes — at every worker and partition
// count. Batches are shaped per app to land on the intended accepted path
// (see the builders below); the deletion test covers the refused path, and
// the fault tests cover a seed that breaks mid-install.

// incrementalApps are the registry entries with an IncrementalSeed planner.
var incrementalApps = []string{"pr", "ppr", "cc", "bfs", "sssp"}

// incrementalBatches are the delta sizes the acceptance matrix sweeps.
var incrementalBatches = []int{1, 16, 256}

// uniquePairReasserts builds up to n upserts that each re-assert an
// existing edge whose (src, dst) pair is unique in g. Under last-writer-
// wins apply the batch is a topology no-op, which is exactly what the
// pr/ppr direct plan detects (equal edge count, no surviving deletes).
// Duplicated base pairs would collapse under apply and change the count,
// sending the planner — correctly — to fallback, so they are excluded.
func uniquePairReasserts(g *graph.Graph, n int) []graph.EdgeOp {
	count := make(map[[2]uint32]int, len(g.Edges))
	for _, e := range g.Edges {
		count[[2]uint32{e.Src, e.Dst}]++
	}
	ops := make([]graph.EdgeOp, 0, n)
	for _, e := range g.Edges {
		if count[[2]uint32{e.Src, e.Dst}] == 1 {
			ops = append(ops, graph.EdgeOp{Src: e.Src, Dst: e.Dst, Weight: e.Weight})
			if len(ops) == n {
				break
			}
		}
	}
	return ops
}

// anyReasserts re-asserts the first n edges of g verbatim, duplicated base
// pairs included. Safe for bfs: a min-parent BFS result has
// depth[v] <= depth[u]+1 for every existing edge (u, v) with u reached,
// and pred[v] <= u when the levels are equal, so no re-assertion can move
// a tree edge.
func anyReasserts(g *graph.Graph, n int) []graph.EdgeOp {
	if n > len(g.Edges) {
		n = len(g.Edges)
	}
	ops := make([]graph.EdgeOp, 0, n)
	for _, e := range g.Edges[:n] {
		ops = append(ops, graph.EdgeOp{Src: e.Src, Dst: e.Dst, Weight: e.Weight})
	}
	return ops
}

// freshInserts builds up to n inserts of edges absent from g — the
// genuinely-new-edge batch cc's warm frontier-seeded plan propagates from.
// When the batch is large enough it also grows the vertex space by one
// (exercising lane extension) and ends with a within-batch duplicate pair
// (exercising last-writer-wins resolution in the planner).
func freshInserts(g *graph.Graph, n int) []graph.EdgeOp {
	have := make(map[[2]uint32]bool, len(g.Edges))
	for _, e := range g.Edges {
		have[[2]uint32{e.Src, e.Dst}] = true
	}
	nv := uint32(g.NumVertices)
	ops := make([]graph.EdgeOp, 0, n)
	for i := uint32(0); len(ops) < n && i < 16*nv; i++ {
		src := (i * 2654435761) % nv
		dst := (src + 1 + i%97) % nv
		if src == dst || have[[2]uint32{src, dst}] {
			continue
		}
		have[[2]uint32{src, dst}] = true
		ops = append(ops, graph.EdgeOp{Src: src, Dst: dst, Weight: 1})
	}
	if len(ops) >= 4 {
		ops[1] = graph.EdgeOp{Src: ops[0].Src, Dst: nv, Weight: 1} // new vertex
		ops[len(ops)-1] = ops[2]                                   // LWW duplicate
	}
	return ops
}

// improvingInserts builds up to n sssp-safe upserts: each new weight w on
// (u, v) satisfies dist[u] + w < dist[v] (u reached), so the batch can
// only lower distances and the planner's no-raise rule accepts it. For a
// finite dist[v] the midpoint weight w = (dist[v]-dist[u])/2 improves the
// path; for an unreached v any finite weight does.
func improvingInserts(g *graph.Graph, pred []uint64, n int) []graph.EdgeOp {
	seen := make(map[[2]uint32]bool, n)
	nv := uint32(g.NumVertices)
	ops := make([]graph.EdgeOp, 0, n)
	for i := uint32(0); len(ops) < n && i < 64*nv; i++ {
		src := (i * 2654435761) % nv
		dst := (src + 1 + i%97) % nv
		if src == dst || seen[[2]uint32{src, dst}] {
			continue
		}
		du := math.Float64frombits(pred[src])
		dv := math.Float64frombits(pred[dst])
		if math.IsInf(du, 1) {
			continue
		}
		w := float32(1)
		if !math.IsInf(dv, 1) {
			if dv <= du {
				continue
			}
			w = float32(0.5 * (dv - du))
			if w <= 0 {
				continue
			}
		}
		seen[[2]uint32{src, dst}] = true
		ops = append(ops, graph.EdgeOp{Src: src, Dst: dst, Weight: w})
	}
	return ops
}

// incrementalBatch shapes a planner-accepted delta for the named app.
func incrementalBatch(name string, g *graph.Graph, pred []uint64, n int) []graph.EdgeOp {
	switch name {
	case "pr", "ppr":
		return uniquePairReasserts(g, n)
	case "bfs":
		return anyReasserts(g, n)
	case "cc":
		return freshInserts(g, n)
	case "sssp":
		return improvingInserts(g, pred, n)
	}
	return nil
}

// runIncrCold runs ent cold on g at the given config with ChunkVectors
// pinned (the determinism contract makes the result identical across
// configs, so one cold run is ground truth for the whole matrix).
func runIncrCold(t *testing.T, cg *Graph, g *graph.Graph, ent apps.Entry, p apps.Params, workers, parts int) []uint64 {
	t.Helper()
	r := NewRunner(cg, Options{Workers: workers, Partitions: parts, ChunkVectors: 16})
	defer r.Close()
	prog, err := ent.New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return Run(r, prog, ent.MaxIters(p)).Props
}

// runIncrSeeded runs ent on g warm-started from plan.
func runIncrSeeded(t *testing.T, cg *Graph, g *graph.Graph, ent apps.Entry, p apps.Params, plan *apps.SeedPlan, workers, parts int) Result {
	t.Helper()
	r := NewRunner(cg, Options{Workers: workers, Partitions: parts, ChunkVectors: 16})
	defer r.Close()
	prog, err := ent.New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	max := ent.MaxIters(p)
	if plan.Direct {
		max = 0
	}
	res, err := RunSeededCtx(context.Background(), r, prog, max, &Seed{
		Props:    plan.Props,
		Frontier: plan.Frontier,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertIncrLanesEqual compares got against want: bit-exact for integer
// lanes, 1e-9 relative for float lanes (a seeded run may accumulate edge
// contributions in a different order than a cold run).
func assertIncrLanesEqual(t *testing.T, ent apps.Entry, want, got []uint64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("lane count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] == got[i] {
			continue
		}
		if !ent.FloatLanes {
			t.Fatalf("lane %d = %#x, want %#x", i, got[i], want[i])
		}
		a := math.Float64frombits(want[i])
		b := math.Float64frombits(got[i])
		if a == b {
			continue
		}
		denom := math.Max(math.Abs(a), math.Abs(b))
		if math.Abs(a-b) > 1e-9*denom {
			t.Fatalf("lane %d = %g, want %g (rel err %g)", i, b, a, math.Abs(a-b)/denom)
		}
	}
}

// incrementalConfigs returns the (workers, partitions) sweep: the full
// 3x3 matrix on the primary dataset, a reduced diagonal elsewhere.
func incrementalConfigs(full bool) [][2]int {
	if full {
		var out [][2]int
		for _, w := range []int{1, 2, 4} {
			for _, parts := range []int{1, 2, 4} {
				out = append(out, [2]int{w, parts})
			}
		}
		return out
	}
	return [][2]int{{1, 1}, {4, 2}, {2, 4}}
}

func TestIncrementalMetamorphicEquivalence(t *testing.T) {
	datasets := []gen.Dataset{gen.Twitter, gen.UK2007, gen.DimacsUSA}
	for di, d := range datasets {
		base := gen.Generate(d, 0.05)
		abbrev := string(d.Abbrev())
		t.Run(abbrev, func(t *testing.T) {
			for _, name := range incrementalApps {
				name := name
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					ent, err := apps.Lookup(name)
					if err != nil {
						t.Fatal(err)
					}
					if ent.IncrementalSeed == nil {
						t.Fatalf("%s has no IncrementalSeed planner", name)
					}
					g0 := base
					if ent.NeedsWeights {
						g0 = gen.AddUniformWeights(base, 42)
					}
					p := ent.Normalize(apps.Params{Iters: 4, Root: 1, K: 3})
					pred := runIncrCold(t, BuildGraph(g0), g0, ent, p, 1, 1)
					for _, n := range incrementalBatches {
						ops := incrementalBatch(name, g0, pred, n)
						if len(ops) == 0 {
							t.Fatalf("no batch of size %d constructible", n)
						}
						g1 := graph.ApplyEdgeOps(g0, ops)
						plan, err := ent.IncrementalSeed(apps.SeedInput{
							Graph:           g1,
							Params:          p,
							Pred:            pred,
							Ops:             ops,
							FromEdges:       g0.NumEdges(),
							FromCountsKnown: true,
						})
						if err != nil {
							t.Fatalf("batch %d: planner refused a by-construction safe delta: %v", n, err)
						}
						cg1 := BuildGraph(g1)
						cold := runIncrCold(t, cg1, g1, ent, p, 1, 1)
						for _, c := range incrementalConfigs(di == 0) {
							res := runIncrSeeded(t, cg1, g1, ent, p, plan, c[0], c[1])
							if !res.Seeded {
								t.Fatalf("batch %d workers %d parts %d: seed did not apply", n, c[0], c[1])
							}
							assertIncrLanesEqual(t, ent, cold, res.Props)
						}
					}
				})
			}
		})
	}
}

// TestIncrementalDeletionFallback: deltas that remove result-bearing edges
// must be refused by every planner, and the fallback — a cold run on the
// mutated graph — must agree with the sequential reference, so refusing is
// always safe.
func TestIncrementalDeletionFallback(t *testing.T) {
	base := gen.Generate(gen.Twitter, 0.05)
	for _, name := range incrementalApps {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ent, err := apps.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			g0 := base
			if ent.NeedsWeights {
				g0 = gen.AddUniformWeights(base, 42)
			}
			p := ent.Normalize(apps.Params{Iters: 4, Root: 1, K: 3})
			pred := runIncrCold(t, BuildGraph(g0), g0, ent, p, 1, 1)

			var ops []graph.EdgeOp
			if name == "bfs" {
				// Deleting a tree edge (pred[v] = u) is the case bfs cannot
				// absorb: v may need a deeper parent, and depths only shrink
				// under seeded iteration.
				for v, pv := range pred {
					if uint32(v) != p.Root && pv != apps.NoParent {
						ops = []graph.EdgeOp{{Delete: true, Src: uint32(pv), Dst: uint32(v)}}
						break
					}
				}
			} else {
				e := g0.Edges[0]
				ops = []graph.EdgeOp{{Delete: true, Src: e.Src, Dst: e.Dst}}
			}
			if len(ops) == 0 {
				t.Fatal("no deletable edge found")
			}
			g1 := graph.ApplyEdgeOps(g0, ops)
			if _, err := ent.IncrementalSeed(apps.SeedInput{
				Graph:           g1,
				Params:          p,
				Pred:            pred,
				Ops:             ops,
				FromEdges:       g0.NumEdges(),
				FromCountsKnown: true,
			}); err == nil {
				t.Fatal("planner accepted a deletion delta")
			}
			cold := runIncrCold(t, BuildGraph(g1), g1, ent, p, 1, 1)
			assertIncrLanesEqual(t, ent, ent.Reference(g1, p), cold)
		})
	}
}

// TestIncrementalSeedFaultDegradesToCold: a panic or error injected while
// the seed installs (the core/incremental-seed failpoint) must degrade the
// run to a bit-exact cold start — Seeded false, no error surfaced, lanes
// identical to an unseeded run.
func TestIncrementalSeedFaultDegradesToCold(t *testing.T) {
	if !fault.Available() {
		t.Skip("failpoints compiled out")
	}
	base := gen.Generate(gen.Twitter, 0.05)
	ent, err := apps.Lookup("cc")
	if err != nil {
		t.Fatal(err)
	}
	p := ent.Normalize(apps.Params{})
	pred := runIncrCold(t, BuildGraph(base), base, ent, p, 4, 1)
	ops := freshInserts(base, 16)
	g1 := graph.ApplyEdgeOps(base, ops)
	plan, err := ent.IncrementalSeed(apps.SeedInput{
		Graph: g1, Params: p, Pred: pred, Ops: ops,
		FromEdges: base.NumEdges(), FromCountsKnown: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cg1 := BuildGraph(g1)
	cold := runIncrCold(t, cg1, g1, ent, p, 4, 1)
	for _, mode := range []string{"panic*1", "error*1"} {
		t.Run(mode, func(t *testing.T) {
			disarm, err := fault.Enable("core/incremental-seed", mode)
			if err != nil {
				t.Fatal(err)
			}
			defer disarm()
			res := runIncrSeeded(t, cg1, g1, ent, p, plan, 4, 1)
			if res.Seeded {
				t.Fatalf("Seeded = true under %s", mode)
			}
			assertIncrLanesEqual(t, ent, cold, res.Props)
		})
	}
}

// TestIncrementalSeedFaultDirectPlan: when a direct (zero-iteration) plan's
// seed fails to install, Result.Seeded must be false so the caller knows
// the lanes are cold-init state, not the result, and re-runs in full — the
// contract Engine.RunIncremental relies on.
func TestIncrementalSeedFaultDirectPlan(t *testing.T) {
	if !fault.Available() {
		t.Skip("failpoints compiled out")
	}
	base := gen.Generate(gen.Twitter, 0.05)
	ent, err := apps.Lookup("pr")
	if err != nil {
		t.Fatal(err)
	}
	p := ent.Normalize(apps.Params{Iters: 4})
	pred := runIncrCold(t, BuildGraph(base), base, ent, p, 2, 1)
	ops := uniquePairReasserts(base, 8)
	g1 := graph.ApplyEdgeOps(base, ops)
	plan, err := ent.IncrementalSeed(apps.SeedInput{
		Graph: g1, Params: p, Pred: pred, Ops: ops,
		FromEdges: base.NumEdges(), FromCountsKnown: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Direct {
		t.Fatal("re-assertion batch did not produce a direct plan")
	}
	disarm, err := fault.Enable("core/incremental-seed", "panic*1")
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	res := runIncrSeeded(t, BuildGraph(g1), g1, ent, p, plan, 2, 1)
	if res.Seeded {
		t.Fatal("Seeded = true under an injected seed panic")
	}
}
