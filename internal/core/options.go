package core

import (
	"fmt"
	"time"

	"repro/internal/coord"
	"repro/internal/numa"
	"repro/internal/sched"
)

// PullVariant selects the Edge-Pull inner-loop parallelization strategy —
// the axis of the paper's Figs 5–8.
type PullVariant int

const (
	// PullSchedulerAware is the paper's contribution: chunk-local
	// accumulation, direct stores on outer-loop transitions, per-chunk merge
	// buffer, no synchronization (§3).
	PullSchedulerAware PullVariant = iota
	// PullTraditional parallelizes the inner loop with the traditional
	// interface: one synchronized (CAS) shared update per edge.
	PullTraditional
	// PullTraditionalNonatomic is PullTraditional with the atomics removed —
	// the paper's "Traditional, Nonatomic" reference point, which quantifies
	// conflict cost but produces potentially incorrect output under
	// multiple workers.
	PullTraditionalNonatomic
	// PullOuterOnly parallelizes only the outer (destination) loop; the
	// inner loop runs serially per destination (the PushP+PullS
	// configuration of Fig 1).
	PullOuterOnly
)

// String returns the variant name used in reports.
func (v PullVariant) String() string {
	switch v {
	case PullSchedulerAware:
		return "Scheduler-Aware"
	case PullTraditional:
		return "Traditional"
	case PullTraditionalNonatomic:
		return "Traditional-Nonatomic"
	case PullOuterOnly:
		return "Outer-Only"
	default:
		return fmt.Sprintf("PullVariant(%d)", int(v))
	}
}

// EngineMode selects which Edge-phase engine runs each iteration.
type EngineMode int

const (
	// EngineHybrid picks pull or push per iteration from frontier density
	// (§2: a hybrid selects pull whenever a sufficiently large part of the
	// graph is in the frontier).
	EngineHybrid EngineMode = iota
	// EnginePullOnly always runs Edge-Pull.
	EnginePullOnly
	// EnginePushOnly always runs Edge-Push.
	EnginePushOnly
)

// engineModeNames indexes the canonical mode names; String's bounds check
// against this table is what keeps an out-of-range value formatting as
// "EngineMode(n)" instead of borrowing a neighbor's name.
var engineModeNames = [...]string{
	EngineHybrid:   "Hybrid",
	EnginePullOnly: "Pull",
	EnginePushOnly: "Push",
}

// String returns the mode name. The table + explicit range check replaces
// the earlier switch formatting so unknown values — negative or past the
// last mode — always render as EngineMode(n).
func (m EngineMode) String() string {
	if m >= 0 && int(m) < len(engineModeNames) {
		return engineModeNames[m]
	}
	return fmt.Sprintf("EngineMode(%d)", int(m))
}

// Options configures a Runner. The zero value selects the paper's defaults:
// scheduler-aware vectorized pull, hybrid engine choice, GOMAXPROCS workers
// on a single NUMA node, and 32·n dynamic chunks.
type Options struct {
	// Pool supplies the worker pool; when nil the Runner creates one with
	// Workers workers (Workers < 1 selects GOMAXPROCS).
	Pool    *sched.Pool
	Workers int
	// Topology is the simulated NUMA layout; the zero value means one node
	// holding every worker. Topology.TotalWorkers must equal the pool's
	// worker count.
	Topology numa.Topology
	// ChunkVectors is the scheduling granularity in edge vectors per chunk
	// (the artifact's -s flag). Zero selects the default of 32 chunks per
	// thread (§5).
	ChunkVectors int
	// Variant picks the Edge-Pull parallelization strategy.
	Variant PullVariant
	// Scalar disables the software-vectorized kernels, running the
	// edge-at-a-time Compressed-Sparse implementations instead (the
	// baselines of Fig 10).
	Scalar bool
	// Mode forces an engine or leaves the hybrid heuristic in charge.
	Mode EngineMode
	// PullThreshold is the frontier density at or above which the hybrid
	// selects Edge-Pull (default 0.05, i.e. 1/20 of vertices active).
	PullThreshold float64
	// PullDegreeShare is the hybrid heuristic's degree-sum term (Besta et
	// al., "To Push or To Pull"): below PullThreshold density, pull is
	// still selected when the frontier's out-degree sum is at least this
	// share of all edges — a few active hubs can put most of the edge set
	// in play, where pull's sequential gather beats push's scattered
	// synchronized writes. The share is computed lazily, only when the
	// density test alone would choose push. Zero selects the default
	// (0.15); negative disables the term (density-only, the prior
	// behavior). The default sits well above Ligra's |E|/20 because this
	// pull kernel has no per-destination early exit: a sweep over the
	// T/U/D analogs shows 0.05 flips single-hub BFS frontiers into full
	// pull scans (+45% on the U analog), while 0.15 leaves every measured
	// schedule unchanged and still guards truly hub-dominated frontiers.
	PullDegreeShare float64
	// Partitions splits execution into this many coordinator partitions
	// (internal/coord): per-iteration scatter-gather of the edge and
	// vertex phases across spans of the global chunk grid, with frontier
	// deltas exchanged at the barrier. Output is bit-identical to the
	// monolithic path for any value. 0 or 1 selects the monolithic
	// LocalCoordinator. Partitioned execution drives the default
	// scheduler-aware vectorized kernels on single-node topologies;
	// Scalar, WideVectors, WorkStealing, Record, non-SA variants, and
	// multi-node topologies fall back to the monolithic path
	// (Result.Partitions reports the effective count).
	Partitions int
	// Exchange, when non-nil, replaces the partitioned coordinator's
	// shared-memory frontier exchange with a custom transport (the cluster
	// tier's NetExchange). It only takes effect when Partitions > 1 selects
	// the partitioned coordinator; the monolithic path never exchanges.
	Exchange coord.Exchange
	// Record enables the perfmodel counters and time profiles. Metering
	// adds per-edge accounting cost, so benchmarks leave it off.
	Record bool
	// Trace enables the per-run phase tracer: each run's Result carries a
	// RunTrace of wall time, chunk count, steal count, and frontier density
	// per engine phase. Unlike Record, tracing observes only phase
	// boundaries (one timestamp pair and two counter swaps per phase), so
	// its overhead is a fraction of a percent and serving layers leave it
	// on.
	Trace bool
	// SparseFrontier enables the sparse-frontier extension the paper defers
	// to future work (§5): when the frontier is small, the Edge phase
	// visits only the frontier’s out-vectors and the Vertex phase only the
	// touched destinations. Off by default for paper fidelity.
	SparseFrontier bool
	// AblateFullVector disables the fused full-vector fast path in the
	// pull kernels — an ablation knob for the design-choice benchmarks;
	// not part of the public facade.
	AblateFullVector bool
	// WideVectors runs the scheduler-aware pull engine on the 512-bit
	// (8-lane) Vector-Sparse encoding instead of the 256-bit one — the
	// AVX-512 generalization §4 sketches. Wider vectors amortize more
	// bookkeeping per edge but waste more padding (Fig 9); the ablation
	// benchmarks measure the trade-off. Applies to the scheduler-aware
	// vectorized pull kernel only.
	WideVectors bool
	// MaxRunTime, when positive, bounds each Run/RunCtx call's wall-clock
	// time: RunCtx derives a deadline context so a runaway run stops within
	// one scheduler chunk of the limit and returns its partial result with an
	// error wrapping context.DeadlineExceeded.
	MaxRunTime time.Duration
	// OnRelease, when non-nil, is invoked each time a run's ExecContext is
	// returned to the Runner's recycling pool — i.e. once per completed (or
	// cancelled) Run/RunCtx call, after the result has been detached. Layers
	// above the engine (the graph store's refcounted handles) use it to
	// observe run completion without wrapping every entry point.
	OnRelease func()
	// WorkStealing replaces the ticket-counter chunk scheduler with the
	// work-stealing scheduler (sched.StealingFor). §3 requires only a
	// static contiguous iteration→chunk mapping of the scheduler — the
	// property Cilk Plus's work-stealing runtime also satisfies — so the
	// scheduler-aware engine must run unchanged on either; this option
	// exists to demonstrate and benchmark that claim. Single-node
	// topologies only.
	WorkStealing bool
}

// withDefaults normalizes an Options value.
func (o Options) withDefaults(g *Graph) Options {
	if o.Workers < 1 {
		if o.Pool != nil {
			o.Workers = o.Pool.Workers()
		} else {
			o.Workers = 0 // NewPool resolves GOMAXPROCS
		}
	}
	if o.PullThreshold <= 0 {
		o.PullThreshold = 0.05
	}
	if o.PullDegreeShare == 0 {
		o.PullDegreeShare = 0.15
	}
	if o.Partitions < 1 {
		o.Partitions = 1
	}
	return o
}

// chunkSizeFor resolves the chunk size in vectors for a given total.
func (o Options) chunkSizeFor(total, workers int) int {
	if o.ChunkVectors > 0 {
		return o.ChunkVectors
	}
	return sched.ChunkSize(total, sched.DefaultChunks(workers))
}
