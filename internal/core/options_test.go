package core

import "testing"

// TestEngineModeString pins the canonical names and the out-of-range
// formatting on both sides — the table lookup must never borrow a neighbor's
// name for an unknown value.
func TestEngineModeString(t *testing.T) {
	cases := []struct {
		m    EngineMode
		want string
	}{
		{EngineHybrid, "Hybrid"},
		{EnginePullOnly, "Pull"},
		{EnginePushOnly, "Push"},
		{EngineMode(-1), "EngineMode(-1)"},
		{EngineMode(3), "EngineMode(3)"},
		{EngineMode(7), "EngineMode(7)"},
	}
	for _, tc := range cases {
		if got := tc.m.String(); got != tc.want {
			t.Errorf("EngineMode(%d).String() = %q, want %q", int(tc.m), got, tc.want)
		}
	}
}

// TestOptionsDefaults pins the withDefaults normalization added for the
// coordinator: the degree-share default, its negative opt-out, and the
// partition floor.
func TestOptionsDefaults(t *testing.T) {
	g := &Graph{}
	o := Options{}.withDefaults(g)
	if o.PullDegreeShare != 0.15 {
		t.Errorf("default PullDegreeShare = %v, want 0.15", o.PullDegreeShare)
	}
	if o.Partitions != 1 {
		t.Errorf("default Partitions = %d, want 1", o.Partitions)
	}
	o = Options{PullDegreeShare: -1, Partitions: 8}.withDefaults(g)
	if o.PullDegreeShare != -1 {
		t.Errorf("negative PullDegreeShare rewritten to %v", o.PullDegreeShare)
	}
	if o.Partitions != 8 {
		t.Errorf("Partitions = %d, want 8", o.Partitions)
	}
}
