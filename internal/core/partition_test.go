package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numa"
	"repro/internal/sched"
)

// assertPartitionIdentity runs mk's program monolithically and at several
// partition counts, asserting the output property words are bit-identical —
// the coordinator's core determinism contract (DESIGN.md §13).
func assertPartitionIdentity[P apps.Program](t *testing.T, cg *Graph, mk func() P, iters int, base Options) {
	t.Helper()
	for _, workers := range []int{1, 2, 4} {
		o := base
		o.Workers = workers
		r := NewRunner(cg, o)
		refRes := Run(r, mk(), iters)
		r.Close()
		if refRes.Partitions != 1 {
			t.Fatalf("monolithic run reported %d partitions", refRes.Partitions)
		}
		want := refRes.Props
		for _, parts := range []int{2, 3, 4, 7} {
			o := base
			o.Workers = workers
			o.Partitions = parts
			r := NewRunner(cg, o)
			res := Run(r, mk(), iters)
			r.Close()
			if res.Partitions != parts {
				t.Fatalf("workers=%d parts=%d: effective partitions = %d", workers, parts, res.Partitions)
			}
			if res.Iterations != refRes.Iterations {
				t.Fatalf("workers=%d parts=%d: %d iterations, monolithic ran %d",
					workers, parts, res.Iterations, refRes.Iterations)
			}
			for v := range want {
				if res.Props[v] != want[v] {
					t.Fatalf("workers=%d parts=%d: props[%d] = %#x, want %#x",
						workers, parts, v, res.Props[v], want[v])
				}
			}
		}
	}
}

func partitionTestGraph() (*Graph, *graph.Graph) {
	g := gen.AddUniformWeights(gen.RMAT(9, 4200, gen.DefaultRMAT, 17), 8)
	return BuildGraph(g), g
}

func TestPartitionedBitIdentity(t *testing.T) {
	cg, g := partitionTestGraph()
	for _, sparse := range []bool{false, true} {
		base := Options{SparseFrontier: sparse}
		name := "dense"
		if sparse {
			name = "sparse"
		}
		t.Run(name+"/pagerank", func(t *testing.T) {
			assertPartitionIdentity(t, cg, func() *apps.PageRank { return apps.NewPageRank(g) }, 15, base)
		})
		t.Run(name+"/bfs", func(t *testing.T) {
			assertPartitionIdentity(t, cg, func() *apps.BFS { return apps.NewBFS(0) }, 1<<20, base)
		})
		t.Run(name+"/cc", func(t *testing.T) {
			assertPartitionIdentity(t, cg, func() *apps.ConnComp { return apps.NewConnComp() }, 1<<20, base)
		})
		t.Run(name+"/sssp", func(t *testing.T) {
			assertPartitionIdentity(t, cg, func() *apps.SSSP { return apps.NewSSSP(0) }, 1<<20, base)
		})
	}
	// Forced push exercises the partitioned push spans: ordered float
	// scatter (PageRank) and CAS min-scatter (CC).
	t.Run("push-only/pagerank", func(t *testing.T) {
		assertPartitionIdentity(t, cg, func() *apps.PageRank { return apps.NewPageRank(g) }, 10,
			Options{Mode: EnginePushOnly})
	})
	t.Run("push-only/cc", func(t *testing.T) {
		assertPartitionIdentity(t, cg, func() *apps.ConnComp { return apps.NewConnComp() }, 1<<20,
			Options{Mode: EnginePushOnly})
	})
}

// TestPartitionedFallback pins the configurations that must quietly fall
// back to the monolithic coordinator.
func TestPartitionedFallback(t *testing.T) {
	cg, _ := partitionTestGraph()
	cases := map[string]Options{
		"scalar":       {Partitions: 4, Scalar: true},
		"wide":         {Partitions: 4, WideVectors: true},
		"stealing":     {Partitions: 4, WorkStealing: true},
		"record":       {Partitions: 4, Record: true},
		"traditional":  {Partitions: 4, Variant: PullTraditional},
		"multi-node":   {Partitions: 4, Workers: 4, Topology: numa.Topology{Nodes: 2, WorkersPerNode: 2}},
		"zero":         {Partitions: 0},
		"one":          {Partitions: 1},
		"negative-ish": {},
	}
	for name, opt := range cases {
		t.Run(name, func(t *testing.T) {
			if opt.Workers == 0 {
				opt.Workers = 2
			}
			r := NewRunner(cg, opt)
			defer r.Close()
			res := Run(r, apps.NewConnComp(), 1<<20)
			if res.Partitions != 1 {
				t.Errorf("effective partitions = %d, want 1", res.Partitions)
			}
		})
	}
	t.Run("partitioned-reports-count", func(t *testing.T) {
		r := NewRunner(cg, Options{Workers: 2, Partitions: 3})
		defer r.Close()
		if res := Run(r, apps.NewConnComp(), 1<<20); res.Partitions != 3 {
			t.Errorf("effective partitions = %d, want 3", res.Partitions)
		}
	})
}

// TestPartitionedExchangeAccounting checks the per-partition trace: every
// frontier-driven full iteration exchanges each bitmap word exactly once, so
// the summed exchange bytes must equal iterations × words × 8, and the
// direction string must record one mark per iteration.
func TestPartitionedExchangeAccounting(t *testing.T) {
	cg, pg := partitionTestGraph()
	const parts = 4
	r := NewRunner(cg, Options{Workers: 2, Partitions: parts, Trace: true})
	defer r.Close()
	res := Run(r, apps.NewConnComp(), 1<<20)
	if len(res.Trace.Partitions) != parts {
		t.Fatalf("trace has %d partition stats, want %d", len(res.Trace.Partitions), parts)
	}
	var sum int64
	spans := 0
	for i, ps := range res.Trace.Partitions {
		if ps.Part != i {
			t.Errorf("partition stat %d has Part=%d", i, ps.Part)
		}
		sum += ps.ExchangeBytes
		spans += ps.Spans
	}
	words := (cg.N + 63) / 64
	want := int64(res.Iterations) * int64(words) * 8
	if sum != want {
		t.Errorf("exchange bytes = %d, want %d (%d iterations × %d words × 8)",
			sum, want, res.Iterations, words)
	}
	if spans == 0 {
		t.Error("no spans recorded")
	}
	if len(res.Trace.Directions) != res.Iterations {
		t.Errorf("directions %q has %d marks, want %d", res.Trace.Directions,
			len(res.Trace.Directions), res.Iterations)
	}
	for i := 0; i < len(res.Trace.Directions); i++ {
		if c := res.Trace.Directions[i]; c != '<' && c != '>' && c != 's' {
			t.Fatalf("unexpected direction mark %q", c)
		}
	}
	// A frontier-blind partitioned run must exchange nothing.
	res = Run(r, apps.NewPageRank(pg), 5)
	var blind int64
	for _, ps := range res.Trace.Partitions {
		blind += ps.ExchangeBytes
	}
	if blind != 0 {
		t.Errorf("frontier-blind run exchanged %d bytes, want 0", blind)
	}
}

// TestPartitionedExchangeFaultChaos arms the coord/exchange failpoint and
// checks a partitioned run fails cleanly — typed error, no hang — and that
// the runner serves the next run normally.
func TestPartitionedExchangeFaultChaos(t *testing.T) {
	cg, _ := partitionTestGraph()
	r := NewRunner(cg, Options{Workers: 2, Partitions: 2})
	defer r.Close()
	want := Run(r, apps.NewConnComp(), 1<<20).Props

	disarm, err := fault.Enable("coord/exchange", "error*1")
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	_, err = RunCtx(context.Background(), r, apps.NewConnComp(), 1<<20)
	if err == nil {
		t.Fatal("run with failing exchange returned nil error")
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error %v does not wrap fault.ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "frontier exchange failed") {
		t.Fatalf("error %v does not name the exchange", err)
	}

	// The budget was one shot; the runner must be healthy again.
	res, err := RunCtx(context.Background(), r, apps.NewConnComp(), 1<<20)
	if err != nil {
		t.Fatalf("run after failpoint drained: %v", err)
	}
	for v := range want {
		if res.Props[v] != want[v] {
			t.Fatalf("post-fault props[%d] = %#x, want %#x", v, res.Props[v], want[v])
		}
	}
}

// TestPartitionedExchangeWatchdogChaos wedges the exchange with a delay spec
// long past the run's watchdog deadline: the run must stop promptly with the
// deadline error, release its admission slot (the pool cap), and leave the
// runner usable.
func TestPartitionedExchangeWatchdogChaos(t *testing.T) {
	cg, _ := partitionTestGraph()
	pool := sched.NewPool(2)
	defer pool.Close()
	pool.SetMaxActiveJobs(1)
	r := NewRunner(cg, Options{Pool: pool, Partitions: 2, MaxRunTime: 50 * time.Millisecond})
	defer r.Close()

	disarm, err := fault.Enable("coord/exchange", "delay:300ms*1")
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	t0 := time.Now()
	_, err = RunCtx(context.Background(), r, apps.NewConnComp(), 1<<20)
	if err == nil {
		t.Fatal("wedged run returned nil error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if wall := time.Since(t0); wall > 5*time.Second {
		t.Fatalf("wedged run took %v to fail", wall)
	}

	// No admission-slot leak: the cap unit went back, so a fresh run on the
	// same cap-1 pool completes.
	if pool.ActiveJobs() != 0 {
		t.Fatalf("pool still has %d active jobs", pool.ActiveJobs())
	}
	if _, err := RunCtx(context.Background(), r, apps.NewConnComp(), 1<<20); err != nil {
		t.Fatalf("run after wedge: %v", err)
	}
}
