package core

import (
	"sync/atomic"
	"time"

	"repro/internal/apps"
	"repro/internal/numa"
	"repro/internal/perfmodel"
	"repro/internal/sched"
	"repro/internal/vec"
	"repro/internal/vsparse"
)

// RunEdgePull executes one Edge-Pull phase with the configured variant and
// kernel (vectorized Vector-Sparse or scalar Compressed-Sparse). Aggregates
// land in the Runner's accumulator array; RunVertex consumes them.
func RunEdgePull[P apps.Program](r *ExecContext, p P) {
	t0 := time.Now()
	switch {
	case r.opt.Variant == PullOuterOnly:
		edgePullOuterOnly(r, p)
	case r.opt.Scalar:
		switch r.opt.Variant {
		case PullSchedulerAware:
			edgePullSAScalar(r, p)
		default:
			edgePullTraditionalScalar(r, p, r.opt.Variant == PullTraditional)
		}
	default:
		switch {
		case r.opt.Variant == PullSchedulerAware && r.opt.WideVectors:
			edgePullSAWide(r, p)
		case r.opt.Variant == PullSchedulerAware:
			edgePullSA(r, p)
		default:
			edgePullTraditional(r, p, r.opt.Variant == PullTraditional)
		}
	}
	if r.edgeRec != nil {
		r.edgeRec.Wall += time.Since(t0)
	}
}

// edgePullSA is the flagship kernel: the scheduler-aware (§3), vectorized
// (§4) Edge-Pull inner loop — Listing 7 parallelized with the Listing 3-6
// hooks. It performs no synchronization: writes go to the chunk-local
// accumulator, to shared memory only on outer-loop transitions (at most one
// chunk contains each vertex's last vector), or to the chunk's private merge
// buffer slot.
func edgePullSA[P apps.Program](r *ExecContext, p P) {
	total := r.g.VSD.NumVectors()
	if total == 0 {
		return
	}
	chunkSize := r.opt.chunkSizeFor(total, r.pool.Workers())
	r.dispatch(r.pullPart, chunkSize, r.edgeRec, pullSABody(r, p))
	mergeAccum(r, p, p.Identity())
}

// pullSABody builds the scheduler-aware chunk body with every loop invariant
// hoisted into the closure. The partitioned coordinator rebuilds it each
// iteration (it snapshots the frontier words, which swap on publish) and
// runs it concurrently over disjoint spans of the same global chunk grid —
// chunk-local state, single-writer transition stores, and merge slots keyed
// by global chunk id make that exactly as safe as concurrent chunks of one
// dispatch.
func pullSABody[P apps.Program](r *ExecContext, p P) func(rg sched.Range, chunkID, tid, node int) {
	a := r.g.VSD
	identity := p.Identity()
	usesFrontier := p.UsesFrontier()
	tracksConv := p.TracksConverged()
	weighted := p.Weighted() && a.Weights != nil
	frontWords := r.front.Words()
	props, accum := r.props, r.accum
	rec := r.edgeRec
	fz := fuseFor(p, weighted)

	words := a.Words
	return func(rg sched.Range, chunkID, tid, node int) {
		var c perfmodel.Counters
		// StartChunk (Listing 3): TLS holds the previous destination and its
		// partially-aggregated value.
		prev := firstTop(a, rg.Lo)
		acc := identity
		for vi := rg.Lo; vi < rg.Hi; vi++ {
			base := vi * vec.Lanes
			v0, v1, v2, v3 := words[base], words[base+1], words[base+2], words[base+3]
			dst := decodeTop4(v0, v1, v2, v3)
			if dst != prev {
				// Outer-loop transition (Listing 4): at most one chunk holds
				// the final inner iterations of prev, so this unsynchronized
				// shared store is safe.
				if acc != identity {
					accum[prev] = p.Combine(accum[prev], acc)
					c.SharedWrites++
				}
				prev, acc = dst, identity
			}
			c.VectorsProcessed++
			if tracksConv && r.conv.Contains(dst) {
				mask := signMask4(v0, v1, v2, v3)
				c.FrontierSkips += uint64(mask.Count())
				c.InvalidLanes += uint64(vec.Lanes - mask.Count())
				continue
			}
			// Full-vector fast path (the common case the format is padded
			// for: >90% of vectors on skewed graphs have all lanes valid):
			// no per-lane predicate tests, one fused gather+combine per
			// lane, as an AVX kernel would issue a single vgatherqpd.
			if !usesFrontier && !r.opt.AblateFullVector && (v0&v1&v2&v3)>>63 != 0 {
				n0 := v0 & vsparse.VertexMask
				n1 := v1 & vsparse.VertexMask
				n2 := v2 & vsparse.VertexMask
				n3 := v3 & vsparse.VertexMask
				acc = step4(p, &fz, props, acc, n0, n1, n2, n3, base, a.Weights)
				c.EdgesProcessed += vec.Lanes
				c.TLSWrites += vec.Lanes
				if rec != nil {
					countLocality(r, node, &c, n0, n1, n2, n3)
				}
				continue
			}
			// Predicated path: partially-filled vectors and frontier-gated
			// lanes.
			mask := signMask4(v0, v1, v2, v3)
			valid := mask.Count()
			c.InvalidLanes += uint64(vec.Lanes - valid)
			neigh := vec.U64x4{v0 & vsparse.VertexMask, v1 & vsparse.VertexMask,
				v2 & vsparse.VertexMask, v3 & vsparse.VertexMask}
			if usesFrontier {
				live := vec.TestBits(frontWords, neigh, mask)
				c.FrontierSkips += uint64(valid - live.Count())
				mask = live
			}
			if mask == 0 {
				continue
			}
			if mask == vec.MaskAll && !r.opt.AblateFullVector {
				// Every lane survived predication: take the fused
				// full-vector path.
				acc = step4(p, &fz, props, acc, neigh[0], neigh[1], neigh[2], neigh[3], base, a.Weights)
				c.EdgesProcessed += vec.Lanes
				c.TLSWrites += vec.Lanes
				if rec != nil {
					countLocality(r, node, &c, neigh[0], neigh[1], neigh[2], neigh[3])
				}
				continue
			}
			for lane := 0; lane < vec.Lanes; lane++ {
				if !mask.Bit(lane) {
					continue
				}
				n := neigh[lane]
				var w float32
				if weighted {
					w = a.Weights[base+lane]
				}
				acc = step(p, &fz, props, acc, n, w)
				c.EdgesProcessed++
				c.TLSWrites++
				if rec != nil {
					if r.propOwner.Owner(uint32(n)) == node {
						c.LocalAccesses++
					} else {
						c.RemoteAccesses++
					}
				}
			}
		}
		// FinishChunk (Listing 5): the trailing partial aggregate goes to
		// this chunk's private merge-buffer slot.
		r.mergeBuf.Save(chunkID, prev, acc)
		rec.Record(tid, c)
	}
}

// mergeAccum folds the merge buffer into the shared accumulators
// (Listing 6). It runs on one thread after the barrier — the paper found
// this "extremely fast for the real-world graphs we studied".
func mergeAccum[P apps.Program](r *ExecContext, p P, identity uint64) {
	t0 := time.Now()
	n := r.mergeBuf.Merge(func(dst uint32, v uint64) {
		if v != identity {
			r.accum[dst] = p.Combine(r.accum[dst], v)
		}
	})
	r.noteMerge(time.Since(t0))
	if r.edgeRec != nil {
		r.edgeRec.MergeTime += time.Since(t0)
		r.edgeRec.Record(0, perfmodel.Counters{MergeOps: uint64(n)})
	}
}

// edgePullTraditional parallelizes the same vectorized inner loop with the
// traditional interface: the loop body sees one iteration at a time and must
// write each edge's contribution straight to shared memory — with a CAS
// (useAtomics) or, for the "Traditional, Nonatomic" reference point of
// Figs 5 and 8, a racy plain read-modify-write.
//
// The Vector-Sparse array is destination-sorted, so only a chunk's first and
// last destination runs can span a chunk boundary; every interior run has
// this chunk as its sole writer, making its per-edge shared combine
// iteration-ordered even without the scheduler-aware interface. The two
// boundary runs are accumulated thread-locally and routed through
// merge-buffer slots 2*chunkID and 2*chunkID+1, folded in slot order after
// the barrier. The result is bit-identical at any worker count — including
// order-sensitive operators like floating-point addition — while the
// interior runs keep the per-edge shared write that defines the traditional
// interface's cost (the Fig 5 AtomicOps/SharedWrites measurement).
func edgePullTraditional[P apps.Program](r *ExecContext, p P, useAtomics bool) {
	a := r.g.VSD
	total := a.NumVectors()
	if total == 0 {
		return
	}
	chunkSize := r.opt.chunkSizeFor(total, r.pool.Workers())
	identity := p.Identity()
	usesFrontier := p.UsesFrontier()
	tracksConv := p.TracksConverged()
	skipEqual := p.SkipEqualWrites()
	weighted := p.Weighted() && a.Weights != nil
	frontWords := r.front.Words()
	props, accum := r.props, r.accum
	rec := r.edgeRec
	fz := fuseFor(p, weighted)

	words := a.Words
	top := func(vi int) uint32 {
		base := vi * vec.Lanes
		return decodeTop4(words[base], words[base+1], words[base+2], words[base+3])
	}
	// Two merge slots per chunk (prefix and suffix runs); dispatch itself
	// only guarantees one.
	r.mergeBuf.Grow(2 * (sched.NumChunks(total, chunkSize) + r.topo.Nodes))
	r.dispatch(r.pullPart, chunkSize, rec, func(rg sched.Range, chunkID, tid, node int) {
		var c perfmodel.Counters
		// [rg.Lo, prefixEnd) is the chunk's share of its first destination
		// run, [suffixStart, rg.Hi) its share of the last; when the whole
		// chunk is a single run the suffix takes all of it.
		lastDst := top(rg.Hi - 1)
		suffixStart := rg.Hi - 1
		for suffixStart > rg.Lo && top(suffixStart-1) == lastDst {
			suffixStart--
		}
		firstDst := top(rg.Lo)
		prefixEnd := rg.Lo
		for prefixEnd < suffixStart && top(prefixEnd) == firstDst {
			prefixEnd++
		}
		// gather accumulates one boundary run thread-locally.
		gather := func(lo, hi int, dst uint32) uint64 {
			acc := identity
			conv := tracksConv && r.conv.Contains(dst)
			for vi := lo; vi < hi; vi++ {
				base := vi * vec.Lanes
				v0, v1, v2, v3 := words[base], words[base+1], words[base+2], words[base+3]
				c.VectorsProcessed++
				mask := signMask4(v0, v1, v2, v3)
				valid := mask.Count()
				c.InvalidLanes += uint64(vec.Lanes - valid)
				if conv {
					c.FrontierSkips += uint64(valid)
					continue
				}
				neigh := vec.U64x4{v0 & vsparse.VertexMask, v1 & vsparse.VertexMask,
					v2 & vsparse.VertexMask, v3 & vsparse.VertexMask}
				if usesFrontier {
					live := vec.TestBits(frontWords, neigh, mask)
					c.FrontierSkips += uint64(valid - live.Count())
					mask = live
				}
				if mask == 0 {
					continue
				}
				for lane := 0; lane < vec.Lanes; lane++ {
					if !mask.Bit(lane) {
						continue
					}
					n := neigh[lane]
					var w float32
					if weighted {
						w = a.Weights[base+lane]
					}
					acc = step(p, &fz, props, acc, n, w)
					c.EdgesProcessed++
					c.TLSWrites++
					if rec != nil {
						if r.propOwner.Owner(uint32(n)) == node {
							c.LocalAccesses++
						} else {
							c.RemoteAccesses++
						}
					}
				}
			}
			return acc
		}
		r.mergeBuf.Save(2*chunkID, firstDst, gather(rg.Lo, prefixEnd, firstDst))
		r.mergeBuf.Save(2*chunkID+1, lastDst, gather(suffixStart, rg.Hi, lastDst))
		for vi := prefixEnd; vi < suffixStart; vi++ {
			base := vi * vec.Lanes
			v0, v1, v2, v3 := words[base], words[base+1], words[base+2], words[base+3]
			dst := decodeTop4(v0, v1, v2, v3)
			c.VectorsProcessed++
			mask := signMask4(v0, v1, v2, v3)
			valid := mask.Count()
			c.InvalidLanes += uint64(vec.Lanes - valid)
			if tracksConv && r.conv.Contains(dst) {
				c.FrontierSkips += uint64(valid)
				continue
			}
			neigh := vec.U64x4{v0 & vsparse.VertexMask, v1 & vsparse.VertexMask,
				v2 & vsparse.VertexMask, v3 & vsparse.VertexMask}
			if usesFrontier {
				live := vec.TestBits(frontWords, neigh, mask)
				c.FrontierSkips += uint64(valid - live.Count())
				mask = live
			}
			if mask == 0 {
				continue
			}
			for lane := 0; lane < vec.Lanes; lane++ {
				if !mask.Bit(lane) {
					continue
				}
				n := neigh[lane]
				var w float32
				if weighted {
					w = a.Weights[base+lane]
				}
				msg := stepMsg(p, &fz, props, n, w)
				c.EdgesProcessed++
				if useAtomics {
					casCombine(p, &accum[dst], msg, skipEqual, &c)
				} else {
					plainCombine(p, &accum[dst], msg, skipEqual, &c)
				}
				if rec != nil {
					if r.propOwner.Owner(uint32(n)) == node {
						c.LocalAccesses++
					} else {
						c.RemoteAccesses++
					}
				}
			}
		}
		rec.Record(tid, c)
	})
	mergeAccum(r, p, identity)
}

// casCombine performs one synchronized shared update: load, combine, CAS,
// retrying on conflict. Retries are the direct measurement of the write
// conflicts that motivate §3.
func casCombine[P apps.Program](p P, addr *uint64, msg uint64, skipEqual bool, c *perfmodel.Counters) {
	for {
		old := atomic.LoadUint64(addr)
		merged := p.Combine(old, msg)
		if skipEqual && merged == old {
			c.SkippedWrites++
			return
		}
		c.AtomicOps++
		if atomic.CompareAndSwapUint64(addr, old, merged) {
			c.SharedWrites++
			return
		}
		c.CASRetries++
	}
}

// plainCombine performs the same update without synchronization. Under
// multiple workers this is intentionally racy (the paper runs it only to
// isolate conflict cost from synchronization cost; its output may be
// incorrect).
func plainCombine[P apps.Program](p P, addr *uint64, msg uint64, skipEqual bool, c *perfmodel.Counters) {
	old := *addr
	merged := p.Combine(old, msg)
	if skipEqual && merged == old {
		c.SkippedWrites++
		return
	}
	*addr = merged
	c.SharedWrites++
}

// edgePullOuterOnly parallelizes only the outer (destination) loop; each
// destination's in-edges run serially on one thread (the PushP+PullS
// configuration of Fig 1). No synchronization is needed, but skewed
// graphs suffer the load imbalance that motivates inner-loop
// parallelization.
func edgePullOuterOnly[P apps.Program](r *ExecContext, p P) {
	m := r.g.CSC
	identity := p.Identity()
	usesFrontier := p.UsesFrontier()
	tracksConv := p.TracksConverged()
	weighted := p.Weighted() && m.Weights != nil
	props, accum := r.props, r.accum
	rec := r.edgeRec
	fz := fuseFor(p, weighted)
	chunkSize := sched.ChunkSize(r.g.N, sched.DefaultChunks(r.pool.Workers()))
	vertPart := r.vertexPartition()

	r.dispatch(vertPart, chunkSize, rec, func(rg sched.Range, chunkID, tid, node int) {
		var c perfmodel.Counters
		for v := rg.Lo; v < rg.Hi; v++ {
			dst := uint32(v)
			if tracksConv && r.conv.Contains(dst) {
				continue
			}
			acc := identity
			neigh := m.Edges(dst)
			var ws []float32
			if weighted {
				ws = m.EdgeWeights(dst)
			}
			for i, s := range neigh {
				if usesFrontier && !r.front.Contains(s) {
					c.FrontierSkips++
					continue
				}
				var w float32
				if ws != nil {
					w = ws[i]
				}
				acc = step(p, &fz, props, acc, uint64(s), w)
				c.EdgesProcessed++
				c.TLSWrites++
			}
			if acc != identity {
				accum[dst] = p.Combine(accum[dst], acc)
				c.SharedWrites++
			}
		}
		rec.Record(tid, c)
	})
}

// edgePullSAScalar is the scheduler-aware kernel on Compressed-Sparse,
// one edge at a time — the non-vectorized baseline of Fig 10a's Edge-Pull
// bar. It chunks the edge array directly; per-edge it pays the transition
// check, frontier probe, and per-element access that the Vector-Sparse
// kernel amortizes over four lanes.
func edgePullSAScalar[P apps.Program](r *ExecContext, p P) {
	m := r.g.CSC
	total := m.NumEdges()
	if total == 0 {
		return
	}
	// Granularity is configured in vectors; one vector covers vec.Lanes
	// edges, keeping chunk work comparable across kernels.
	chunkSize := r.opt.chunkSizeFor((total+vec.Lanes-1)/vec.Lanes, r.pool.Workers()) * vec.Lanes
	identity := p.Identity()
	usesFrontier := p.UsesFrontier()
	tracksConv := p.TracksConverged()
	weighted := p.Weighted() && m.Weights != nil
	props, accum := r.props, r.accum
	edgeDst := r.g.EdgeDst
	rec := r.edgeRec
	fz := fuseFor(p, weighted)
	edgePart := r.edgePartition()

	r.dispatch(edgePart, chunkSize, rec, func(rg sched.Range, chunkID, tid, node int) {
		var c perfmodel.Counters
		prev := edgeDst[rg.Lo]
		acc := identity
		for i := rg.Lo; i < rg.Hi; i++ {
			dst := edgeDst[i]
			if dst != prev {
				if acc != identity {
					accum[prev] = p.Combine(accum[prev], acc)
					c.SharedWrites++
				}
				prev, acc = dst, identity
			}
			if tracksConv && r.conv.Contains(dst) {
				c.FrontierSkips++
				continue
			}
			s := m.Neigh[i]
			if usesFrontier && !r.front.Contains(s) {
				c.FrontierSkips++
				continue
			}
			var w float32
			if weighted {
				w = m.Weights[i]
			}
			acc = step(p, &fz, props, acc, uint64(s), w)
			c.EdgesProcessed++
			c.TLSWrites++
			if rec != nil {
				if r.propOwner.Owner(s) == node {
					c.LocalAccesses++
				} else {
					c.RemoteAccesses++
				}
			}
		}
		r.mergeBuf.Save(chunkID, prev, acc)
		rec.Record(tid, c)
	})
	mergeAccum(r, p, identity)
}

// edgePullTraditionalScalar is the traditional interface on
// Compressed-Sparse: a parallel loop over edges whose body writes each
// contribution to shared memory (Listing 2 with the inner for changed to
// parallel_for), with or without atomics. Like edgePullTraditional it peels
// the chunk's first and last destination runs — the only ones that can span
// a chunk boundary in the destination-sorted edge array — into private
// merge-buffer slots folded in fixed order, so results are bit-identical at
// any worker count while interior runs keep the per-edge shared combine.
func edgePullTraditionalScalar[P apps.Program](r *ExecContext, p P, useAtomics bool) {
	m := r.g.CSC
	total := m.NumEdges()
	if total == 0 {
		return
	}
	chunkSize := r.opt.chunkSizeFor((total+vec.Lanes-1)/vec.Lanes, r.pool.Workers()) * vec.Lanes
	identity := p.Identity()
	usesFrontier := p.UsesFrontier()
	tracksConv := p.TracksConverged()
	skipEqual := p.SkipEqualWrites()
	weighted := p.Weighted() && m.Weights != nil
	props, accum := r.props, r.accum
	edgeDst := r.g.EdgeDst
	rec := r.edgeRec
	fz := fuseFor(p, weighted)
	edgePart := r.edgePartition()

	r.mergeBuf.Grow(2 * (sched.NumChunks(total, chunkSize) + r.topo.Nodes))
	r.dispatch(edgePart, chunkSize, rec, func(rg sched.Range, chunkID, tid, node int) {
		var c perfmodel.Counters
		lastDst := edgeDst[rg.Hi-1]
		suffixStart := rg.Hi - 1
		for suffixStart > rg.Lo && edgeDst[suffixStart-1] == lastDst {
			suffixStart--
		}
		firstDst := edgeDst[rg.Lo]
		prefixEnd := rg.Lo
		for prefixEnd < suffixStart && edgeDst[prefixEnd] == firstDst {
			prefixEnd++
		}
		gather := func(lo, hi int, dst uint32) uint64 {
			acc := identity
			if tracksConv && r.conv.Contains(dst) {
				c.FrontierSkips += uint64(hi - lo)
				return acc
			}
			for i := lo; i < hi; i++ {
				s := m.Neigh[i]
				if usesFrontier && !r.front.Contains(s) {
					c.FrontierSkips++
					continue
				}
				var w float32
				if weighted {
					w = m.Weights[i]
				}
				acc = step(p, &fz, props, acc, uint64(s), w)
				c.EdgesProcessed++
				c.TLSWrites++
			}
			return acc
		}
		r.mergeBuf.Save(2*chunkID, firstDst, gather(rg.Lo, prefixEnd, firstDst))
		r.mergeBuf.Save(2*chunkID+1, lastDst, gather(suffixStart, rg.Hi, lastDst))
		for i := prefixEnd; i < suffixStart; i++ {
			dst := edgeDst[i]
			if tracksConv && r.conv.Contains(dst) {
				c.FrontierSkips++
				continue
			}
			s := m.Neigh[i]
			if usesFrontier && !r.front.Contains(s) {
				c.FrontierSkips++
				continue
			}
			var w float32
			if weighted {
				w = m.Weights[i]
			}
			msg := stepMsg(p, &fz, props, uint64(s), w)
			c.EdgesProcessed++
			if useAtomics {
				casCombine(p, &accum[dst], msg, skipEqual, &c)
			} else {
				plainCombine(p, &accum[dst], msg, skipEqual, &c)
			}
		}
		rec.Record(tid, c)
	})
	mergeAccum(r, p, identity)
}

// decodeTop4 reassembles the embedded 48-bit top-level vertex id from four
// raw lane words (the open-coded form of vsparse.DecodeTop, kept branch-free
// on the kernels' hot path).
func decodeTop4(v0, v1, v2, v3 uint64) uint32 {
	const pieceShift = 48
	return uint32(((v0>>pieceShift)&0x7)<<45 |
		((v1>>pieceShift)&0x7FFF)<<30 |
		((v2>>pieceShift)&0x7FFF)<<15 |
		(v3>>pieceShift)&0x7FFF)
}

// signMask4 extracts the per-lane valid mask from four raw lane words (the
// open-coded vec.SignMask).
func signMask4(v0, v1, v2, v3 uint64) vec.Mask {
	return vec.Mask(v0>>63 | (v1>>63)<<1 | (v2>>63)<<2 | (v3>>63)<<3)
}

// countLocality classifies four gathered source reads against the worker's
// simulated NUMA node.
func countLocality(r *ExecContext, node int, c *perfmodel.Counters, ns ...uint64) {
	for _, n := range ns {
		if r.propOwner.Owner(uint32(n)) == node {
			c.LocalAccesses++
		} else {
			c.RemoteAccesses++
		}
	}
}

// vertexPartition and edgePartition give the NUMA partitions of the vertex
// and CSC-edge index spaces (cheap to recompute per phase).
func (r *ExecContext) vertexPartition() numa.Partition {
	return numa.PartitionEven(r.g.N, r.topo.Nodes)
}

func (r *ExecContext) edgePartition() numa.Partition {
	return numa.PartitionEven(r.g.CSC.NumEdges(), r.topo.Nodes)
}
