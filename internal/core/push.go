package core

import (
	"time"

	"repro/internal/apps"
	"repro/internal/perfmodel"
	"repro/internal/sched"
	"repro/internal/vec"
	"repro/internal/vsparse"
)

// RunEdgePush executes one Edge-Push phase (Listing 1): the outer loop runs
// over source vertices — letting the engine skip inactive sources cheaply,
// push's advantage — and every destination update is a synchronized shared
// write. Push uses the traditional parallelization in Grazelle (§5: "its
// push engine uses the traditional approach"); scheduler awareness cannot
// help because writes scatter across destinations.
func RunEdgePush[P apps.Program](r *ExecContext, p P) {
	t0 := time.Now()
	if r.opt.Scalar {
		edgePushScalar(r, p)
	} else {
		edgePushVectorized(r, p)
	}
	if r.edgeRec != nil {
		r.edgeRec.Wall += time.Since(t0)
	}
}

// edgePushVectorized iterates VSS vectors: one frontier check and one
// property load per source vector, messages computed per lane, but the
// scatter is a per-lane CAS — there is no atomic-update-scatter instruction
// (§6.2's explanation for push's flat vectorization response).
//
// For order-sensitive combine operators (fuse.ordered) the per-lane CAS
// would make the floating-point sum depend on thread interleaving, so those
// programs instead append (destination, message) pairs to the chunk's
// private scatter-buffer slot, folded in chunk-id order after the barrier —
// deterministic at any worker count. Min-style operators keep the CAS:
// their result is interleaving-independent.
func edgePushVectorized[P apps.Program](r *ExecContext, p P) {
	if r.g.VSS.NumVectors() == 0 {
		return
	}
	ordered := fuseFor(p, p.Weighted() && r.g.VSS.Weights != nil).ordered
	// Chunk over source vertices: the per-source frontier bit skips whole
	// adjacency lists (push's advantage, §2), and the vertex index — which
	// §4 keeps around precisely for frontier checks — locates each active
	// source's vectors.
	vertChunk := sched.ChunkSize(r.g.N, sched.DefaultChunks(r.pool.Workers()))
	if ordered {
		r.scatterBuf.Grow(sched.NumChunks(r.g.N, vertChunk) + r.topo.Nodes)
	}
	r.dispatch(r.vertexPartition(), vertChunk, r.edgeRec, pushVectorizedBody(r, p))
	if ordered {
		mergeScatter(r, p)
	}
}

// pushVectorizedBody builds the vectorized push chunk body with the loop
// invariants hoisted into the closure. Like pullSABody, the partitioned
// coordinator rebuilds it each iteration and runs it concurrently over
// disjoint source-vertex spans: the scatter is a CAS (or an append to the
// chunk's private scatter-buffer slot, keyed by global chunk id), so span
// concurrency is exactly as safe as chunk concurrency.
func pushVectorizedBody[P apps.Program](r *ExecContext, p P) func(rg sched.Range, chunkID, tid, node int) {
	a := r.g.VSS
	usesFrontier := p.UsesFrontier()
	tracksConv := p.TracksConverged()
	skipEqual := p.SkipEqualWrites()
	weighted := p.Weighted() && a.Weights != nil
	props, accum := r.props, r.accum
	rec := r.edgeRec
	fz := fuseFor(p, weighted)

	words := a.Words
	index := a.Index
	return func(rg sched.Range, chunkID, tid, node int) {
		var c perfmodel.Counters
		var out []sched.Contribution
		if fz.ordered {
			out = r.scatterBuf.Take(chunkID)
		}
		for sv := rg.Lo; sv < rg.Hi; sv++ {
			src := uint32(sv)
			if usesFrontier && !r.front.Contains(src) {
				continue
			}
			for vi := index[sv]; vi < index[sv+1]; vi++ {
				base := vi * vec.Lanes
				v0, v1, v2, v3 := words[base], words[base+1], words[base+2], words[base+3]
				c.VectorsProcessed++
				mask := signMask4(v0, v1, v2, v3)
				valid := mask.Count()
				c.InvalidLanes += uint64(vec.Lanes - valid)
				neigh := vec.U64x4{v0 & vsparse.VertexMask, v1 & vsparse.VertexMask,
					v2 & vsparse.VertexMask, v3 & vsparse.VertexMask}
				for lane := 0; lane < vec.Lanes; lane++ {
					if !mask.Bit(lane) {
						continue
					}
					dst := uint32(neigh[lane])
					if tracksConv && r.conv.Contains(dst) {
						c.FrontierSkips++
						continue
					}
					var w float32
					if weighted {
						w = a.Weights[base+lane]
					}
					msg := stepMsg(p, &fz, props, uint64(src), w)
					c.EdgesProcessed++
					if fz.ordered {
						out = append(out, sched.Contribution{Dst: dst, Val: msg})
						c.TLSWrites++
					} else {
						casCombine(p, &accum[dst], msg, skipEqual, &c)
					}
					if rec != nil {
						if r.propOwner.Owner(dst) == node {
							c.LocalAccesses++
						} else {
							c.RemoteAccesses++
						}
					}
				}
			}
		}
		if fz.ordered {
			r.scatterBuf.Save(chunkID, out)
		}
		rec.Record(tid, c)
	}
}

// mergeScatter folds the scatter buffer into the shared accumulators in
// chunk-id order — the push-side analog of mergeAccum, running on one
// thread after the barrier.
func mergeScatter[P apps.Program](r *ExecContext, p P) {
	t0 := time.Now()
	accum := r.accum
	n := r.scatterBuf.Merge(func(dst uint32, v uint64) {
		accum[dst] = p.Combine(accum[dst], v)
	})
	r.noteMerge(time.Since(t0))
	if r.edgeRec != nil {
		r.edgeRec.MergeTime += time.Since(t0)
		r.edgeRec.Record(0, perfmodel.Counters{MergeOps: uint64(n), SharedWrites: uint64(n)})
	}
}

// edgePushScalar is the Compressed-Sparse push kernel: chunked over source
// vertices, inner loop serial, one CAS per live edge — or, for
// order-sensitive programs, one scatter-buffer append (see
// edgePushVectorized).
func edgePushScalar[P apps.Program](r *ExecContext, p P) {
	m := r.g.CSR
	usesFrontier := p.UsesFrontier()
	tracksConv := p.TracksConverged()
	skipEqual := p.SkipEqualWrites()
	weighted := p.Weighted() && m.Weights != nil
	props, accum := r.props, r.accum
	rec := r.edgeRec
	fz := fuseFor(p, weighted)
	chunkSize := sched.ChunkSize(r.g.N, sched.DefaultChunks(r.pool.Workers()))

	if fz.ordered {
		r.scatterBuf.Grow(sched.NumChunks(r.g.N, chunkSize) + r.topo.Nodes)
	}
	r.dispatch(r.vertexPartition(), chunkSize, rec, func(rg sched.Range, chunkID, tid, node int) {
		var c perfmodel.Counters
		var out []sched.Contribution
		if fz.ordered {
			out = r.scatterBuf.Take(chunkID)
		}
		for v := rg.Lo; v < rg.Hi; v++ {
			src := uint32(v)
			if usesFrontier && !r.front.Contains(src) {
				continue
			}
			neigh := m.Edges(src)
			var ws []float32
			if weighted {
				ws = m.EdgeWeights(src)
			}
			for i, dst := range neigh {
				if tracksConv && r.conv.Contains(dst) {
					c.FrontierSkips++
					continue
				}
				var w float32
				if ws != nil {
					w = ws[i]
				}
				msg := stepMsg(p, &fz, props, uint64(src), w)
				c.EdgesProcessed++
				if fz.ordered {
					out = append(out, sched.Contribution{Dst: dst, Val: msg})
					c.TLSWrites++
				} else {
					casCombine(p, &accum[dst], msg, skipEqual, &c)
				}
			}
		}
		if fz.ordered {
			r.scatterBuf.Save(chunkID, out)
		}
		rec.Record(tid, c)
	})
	if fz.ordered {
		mergeScatter(r, p)
	}
}
