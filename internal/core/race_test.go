//go:build race

package core

// raceEnabled reports that the race detector is active; the intentionally
// racy nonatomic configuration is skipped under it.
const raceEnabled = true
