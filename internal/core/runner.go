package core

import (
	"sync/atomic"
	"time"

	"repro/internal/apps"
	"repro/internal/frontier"
	"repro/internal/numa"
	"repro/internal/perfmodel"
	"repro/internal/sched"
	"repro/internal/vec"
	"repro/internal/vsparse"
)

// Runner owns the execution state of one graph: worker pool, property and
// accumulator arrays, frontier structures, merge buffer, and counters. A
// Runner is reused across runs; it is not safe for concurrent use.
type Runner struct {
	g       *Graph
	opt     Options
	pool    *sched.Pool
	ownPool bool
	topo    numa.Topology

	props, accum []uint64
	front, next  *frontier.Dense
	conv         *frontier.Dense
	touched      *frontier.Dense
	mergeBuf     *sched.MergeBuffer

	// partitions of the two vector arrays across simulated NUMA nodes.
	pullPart, pushPart numa.Partition
	propOwner          numa.PropertyMap

	// edgeRec and vertexRec collect counters when Options.Record is set;
	// nil otherwise.
	edgeRec, vertexRec *perfmodel.Recorder
}

// NewRunner creates a Runner for graph g.
func NewRunner(g *Graph, opt Options) *Runner {
	opt = opt.withDefaults(g)
	r := &Runner{g: g, opt: opt}
	if opt.Pool != nil {
		r.pool = opt.Pool
	} else {
		r.pool = sched.NewPool(opt.Workers)
		r.ownPool = true
	}
	r.opt.Workers = r.pool.Workers()
	r.topo = opt.Topology
	if r.topo.Nodes == 0 {
		r.topo = numa.SingleNode(r.pool.Workers())
	}
	if r.topo.TotalWorkers() != r.pool.Workers() {
		panic("core: topology workers != pool workers")
	}
	r.props = make([]uint64, g.N)
	r.accum = make([]uint64, g.N)
	r.front = frontier.NewDense(g.N)
	r.next = frontier.NewDense(g.N)
	r.conv = frontier.NewDense(g.N)
	r.touched = frontier.NewDense(g.N)
	r.pullPart = numa.PartitionEven(g.VSD.NumVectors(), r.topo.Nodes)
	r.pushPart = numa.PartitionEven(g.VSS.NumVectors(), r.topo.Nodes)
	r.propOwner = numa.NewPropertyMap(g.N, r.topo)
	// Merge buffer sized for the worst-case chunk count across phases.
	maxVectors := g.VSD.NumVectors()
	if g.CSC.NumEdges() > maxVectors {
		maxVectors = g.CSC.NumEdges() // scalar kernels chunk over edges
	}
	chunkSize := r.opt.chunkSizeFor(maxVectors, r.pool.Workers())
	r.mergeBuf = sched.NewMergeBuffer(sched.NumChunks(maxVectors, chunkSize) + r.topo.Nodes)
	if opt.Record {
		r.edgeRec = perfmodel.NewRecorder(r.pool.Workers())
		r.vertexRec = perfmodel.NewRecorder(r.pool.Workers())
	}
	return r
}

// Close releases the Runner's pool if it owns one.
func (r *Runner) Close() {
	if r.ownPool {
		r.pool.Close()
	}
}

// Graph returns the preprocessed graph.
func (r *Runner) Graph() *Graph { return r.g }

// Pool returns the worker pool.
func (r *Runner) Pool() *sched.Pool { return r.pool }

// Props exposes the property lanes (valid after Init or Run).
func (r *Runner) Props() []uint64 { return r.props }

// Frontier exposes the current frontier.
func (r *Runner) Frontier() *frontier.Dense { return r.front }

// EdgeRecorder returns the Edge-phase recorder (nil unless Options.Record).
func (r *Runner) EdgeRecorder() *perfmodel.Recorder { return r.edgeRec }

// VertexRecorder returns the Vertex-phase recorder (nil unless
// Options.Record).
func (r *Runner) VertexRecorder() *perfmodel.Recorder { return r.vertexRec }

// Init resets all state for a fresh run of program p.
func (r *Runner) Init(p apps.Program) {
	p.InitProps(r.props)
	id := p.Identity()
	for i := range r.accum {
		r.accum[i] = id
	}
	r.front.Clear()
	r.next.Clear()
	r.conv.Clear()
	p.InitFrontier(r.front)
	p.InitConverged(r.conv)
	r.mergeBuf.Reset()
	r.edgeRec.Reset()
	r.vertexRec.Reset()
}

// dispatch hands contiguous chunks of [0, total) to workers, restricted to
// each worker's simulated NUMA node partition (part must partition the same
// space). Chunk ids are globally unique and stable for a given (total,
// chunkSize, topology), so the merge buffer can be preallocated. body
// receives the chunk range, its global id, the worker id, and the node.
func (r *Runner) dispatch(part numa.Partition, chunkSize int, rec *perfmodel.Recorder, body func(rg sched.Range, chunkID, tid, node int)) {
	if r.opt.WorkStealing && r.topo.Nodes == 1 {
		_, total := part.Range(0)
		r.mergeBuf.Grow(sched.NumChunks(total, chunkSize))
		r.pool.StealingFor(total, chunkSize, func(rg sched.Range, chunkID, tid int) {
			if rec != nil {
				start := time.Now()
				body(rg, chunkID, tid, 0)
				rec.AddBusy(tid, time.Since(start))
			} else {
				body(rg, chunkID, tid, 0)
			}
		})
		return
	}
	nodes := part.Nodes()
	type nodeState struct {
		lo, numChunks, chunkBase int
		next                     atomic.Int64
		_                        [64]byte // keep counters off shared lines
	}
	states := make([]nodeState, nodes)
	base := 0
	for n := 0; n < nodes; n++ {
		lo, hi := part.Range(n)
		states[n].lo = lo
		states[n].numChunks = sched.NumChunks(hi-lo, chunkSize)
		states[n].chunkBase = base
		base += states[n].numChunks
	}
	if base == 0 {
		return
	}
	r.mergeBuf.Grow(base)
	r.pool.Run(func(tid int) {
		node := r.topo.NodeOf(tid)
		st := &states[node]
		_, hi := part.Range(node)
		for {
			local := int(st.next.Add(1)) - 1
			if local >= st.numChunks {
				return
			}
			lo := st.lo + local*chunkSize
			end := lo + chunkSize
			if end > hi {
				end = hi
			}
			if rec != nil {
				start := time.Now()
				body(sched.Range{Lo: lo, Hi: end}, st.chunkBase+local, tid, node)
				rec.AddBusy(tid, time.Since(start))
			} else {
				body(sched.Range{Lo: lo, Hi: end}, st.chunkBase+local, tid, node)
			}
		}
	})
}

// Result reports a completed run.
type Result struct {
	// Props holds the final property lanes.
	Props []uint64
	// Iterations counts Edge+Vertex rounds; PullIterations and
	// PushIterations split them by selected engine, and SparseIterations
	// counts rounds served by the sparse-frontier extension (a subset of
	// PushIterations).
	Iterations, PullIterations, PushIterations, SparseIterations int
	// EdgeTime and VertexTime are cumulative phase wall times.
	EdgeTime, VertexTime time.Duration
	// Total is the end-to-end wall time, excluding graph preprocessing.
	Total time.Duration
	// EdgeCounters and VertexCounters aggregate the perfmodel counters
	// (zero unless Options.Record).
	EdgeCounters, VertexCounters perfmodel.Counters
	// EdgeProfile is the Fig 5b Work/Merge/Write/Idle breakdown.
	EdgeProfile perfmodel.Breakdown
}

// Run executes program p for at most maxIters iterations (frontier-driven
// programs stop early when the frontier empties) and returns the result.
// The generic parameter devirtualizes the per-edge program calls.
func Run[P apps.Program](r *Runner, p P, maxIters int) Result {
	start := time.Now()
	r.Init(p)
	var res Result
	usesFrontier := p.UsesFrontier()
	for res.Iterations < maxIters {
		if usesFrontier && r.front.Empty() {
			break
		}
		p.PreIteration(r.props)
		if front, ok := r.selectSparse(p); ok {
			t0 := time.Now()
			touched := runEdgePushSparse(r, p, front)
			t1 := time.Now()
			res.EdgeTime += t1.Sub(t0)
			runVertexSparse(r, p, touched)
			res.VertexTime += time.Since(t1)
			res.PushIterations++
			res.SparseIterations++
			res.Iterations++
			continue
		}
		usePull := r.selectPull(p)
		t0 := time.Now()
		if usePull {
			RunEdgePull(r, p)
			res.PullIterations++
		} else {
			RunEdgePush(r, p)
			res.PushIterations++
		}
		t1 := time.Now()
		res.EdgeTime += t1.Sub(t0)
		RunVertex(r, p)
		res.VertexTime += time.Since(t1)
		res.Iterations++
	}
	res.Props = r.props
	res.Total = time.Since(start)
	res.EdgeCounters = r.edgeRec.Total()
	res.VertexCounters = r.vertexRec.Total()
	res.EdgeProfile = r.edgeRec.Profile()
	return res
}

// selectPull implements the hybrid engine choice: pull for frontier-blind
// programs and for dense frontiers, push for sparse ones (§2).
func (r *Runner) selectPull(p apps.Program) bool {
	switch r.opt.Mode {
	case EnginePullOnly:
		return true
	case EnginePushOnly:
		return false
	}
	if !p.UsesFrontier() {
		return true
	}
	return r.front.Density() >= r.opt.PullThreshold
}

// RunVertex executes the Vertex phase: apply aggregates, reset accumulators,
// build the next frontier, and swap it in. Statically scheduled (§5: the
// work is regular enough that load balancing is not a problem).
func RunVertex[P apps.Program](r *Runner, p P) {
	t0 := time.Now()
	identity := p.Identity()
	tracksConv := p.TracksConverged()
	nextWords := r.next.Words()
	convWords := r.conv.Words()
	r.next.Clear()
	r.pool.StaticFor(r.g.N, func(rg sched.Range, tid int) {
		var c perfmodel.Counters
		start := time.Now()
		apply := func(v int) {
			nv, changed := p.Apply(r.props[v], r.accum[v], uint32(v))
			r.props[v] = nv
			r.accum[v] = identity
			c.SharedWrites += 2
			if changed {
				atomic.OrUint64(&nextWords[v>>6], 1<<(uint(v)&63))
				if tracksConv {
					atomic.OrUint64(&convWords[v>>6], 1<<(uint(v)&63))
				}
			}
		}
		if r.opt.Scalar {
			for v := rg.Lo; v < rg.Hi; v++ {
				apply(v)
			}
		} else {
			// Vectorized Vertex phase: four lanes per step with one bounds
			// check per vector and frontier bits coalesced into a single
			// atomic OR per group. §6.2 found this phase memory-bandwidth-
			// bound and therefore largely unresponsive to vectorization; the
			// structure exists for the Fig 10a comparison.
			v := rg.Lo
			for ; v+vec.Lanes <= rg.Hi; v += vec.Lanes {
				old := vec.Load(r.props, v)
				agg := vec.Load(r.accum, v)
				var changedMask uint64
				for lane := 0; lane < vec.Lanes; lane++ {
					nv, changed := p.Apply(old[lane], agg[lane], uint32(v+lane))
					old[lane] = nv
					if changed {
						changedMask |= 1 << lane
					}
				}
				vec.Store(r.props, v, old)
				vec.Store(r.accum, v, vec.Broadcast(identity))
				c.SharedWrites += 2 * vec.Lanes
				if changedMask != 0 {
					// Lanes are consecutive vertices: shift the lane mask
					// into bit position, splitting across two frontier words
					// when the group straddles a boundary.
					off := uint(v) & 63
					lo := changedMask << off
					if lo != 0 {
						atomic.OrUint64(&nextWords[v>>6], lo)
						if tracksConv {
							atomic.OrUint64(&convWords[v>>6], lo)
						}
					}
					if off > 64-vec.Lanes {
						if hi := changedMask >> (64 - off); hi != 0 {
							atomic.OrUint64(&nextWords[v>>6+1], hi)
							if tracksConv {
								atomic.OrUint64(&convWords[v>>6+1], hi)
							}
						}
					}
				}
			}
			for ; v < rg.Hi; v++ {
				apply(v)
			}
		}
		if r.vertexRec != nil {
			r.vertexRec.Record(tid, c)
			r.vertexRec.AddBusy(tid, time.Since(start))
		}
	})
	r.front, r.next = r.next, r.front
	if r.vertexRec != nil {
		r.vertexRec.Wall += time.Since(t0)
	}
}

// firstTop returns the top-level vertex of vector vi in array a — the
// scheduler-aware StartChunk initialization.
func firstTop(a *vsparse.Array, vi int) uint32 {
	return uint32(vsparse.DecodeTop(a.Vector(vi)))
}
