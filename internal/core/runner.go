package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apps"
	"repro/internal/coord"
	"repro/internal/fault"
	"repro/internal/frontier"
	"repro/internal/numa"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/sched"
	"repro/internal/vec"
	"repro/internal/vsparse"
)

// Runner is the shared, immutable half of the execution stack: the
// preprocessed graph, the worker pool, the simulated NUMA topology, and the
// precomputed partitions. A Runner is safe for concurrent use — any number
// of goroutines may call Run/RunCtx on one Runner at once; each run executes
// in its own ExecContext while the pool multiplexes their chunks over one
// worker set.
type Runner struct {
	g       *Graph
	opt     Options
	pool    *sched.Pool
	ownPool bool
	topo    numa.Topology

	// partitions of the two vector arrays across simulated NUMA nodes.
	pullPart, pushPart numa.Partition
	propOwner          numa.PropertyMap

	// mergeSlots sizes each ExecContext's merge buffer for the worst-case
	// chunk count across phases.
	mergeSlots int

	// Coordinator state: the effective partition count (1 = monolithic), the
	// partition plan over the global chunk grids, and the chunk sizes those
	// grids were built from. Fixed at construction so every run of this
	// Runner schedules identically.
	parts                        int
	plan                         numa.Plan
	pullChunkSize, vertChunkSize int

	closeOnce sync.Once
	ctxPool   sync.Pool
}

// ExecContext is the per-run half: property and accumulator arrays, frontier
// structures, merge buffer, counters, and the run's cancellation state. An
// ExecContext is single-tenant (one run at a time), but distinct contexts
// of one Runner execute concurrently. The embedded Runner provides the
// shared graph, pool, and topology.
type ExecContext struct {
	*Runner

	props, accum []uint64
	front, next  *frontier.Dense
	conv         *frontier.Dense
	touched      *frontier.Dense
	mergeBuf     *sched.MergeBuffer
	// scatterBuf holds the push kernels' ordered (dst, value) contribution
	// lists for order-sensitive combine operators; grown lazily by the
	// kernels that use it.
	scatterBuf *sched.ScatterBuffer

	// edgeRec and vertexRec collect counters when Options.Record is set;
	// nil otherwise.
	edgeRec, vertexRec *perfmodel.Recorder

	// tracer accumulates the per-phase breakdown when Options.Trace is set;
	// nil otherwise. Only the driver goroutine writes it — workers feed the
	// two counters below, which the driver swaps out at phase boundaries.
	tracer       *obs.TraceBuilder
	traceDropped bool
	// phaseChunks counts chunks executed since the last phase boundary
	// (written by workers, hence atomic); phaseSteals and the pendingMerge
	// pair are driver-goroutine-only.
	phaseChunks      atomic.Int64
	phaseSteals      int64
	pendingMergeWall time.Duration
	pendingMergeN    int

	// ctx and done carry the run's cancellation signal; chunk-claim loops
	// poll done so cancellation takes effect within one chunk boundary.
	ctx  context.Context
	done <-chan struct{}

	// runErr holds the first panic captured inside this run's chunks. A
	// non-nil value aborts the run at the next chunk boundary (aborted), and
	// runLoop surfaces it as a typed error; the pool, the Runner, and every
	// concurrent sibling run are unaffected.
	runErr atomic.Pointer[sched.PanicError]
}

// NewRunner creates a Runner for graph g.
func NewRunner(g *Graph, opt Options) *Runner {
	opt = opt.withDefaults(g)
	r := &Runner{g: g, opt: opt}
	if opt.Pool != nil {
		r.pool = opt.Pool
	} else {
		r.pool = sched.NewPool(opt.Workers)
		r.ownPool = true
	}
	r.opt.Workers = r.pool.Workers()
	r.topo = opt.Topology
	if r.topo.Nodes == 0 {
		r.topo = numa.SingleNode(r.pool.Workers())
	}
	if r.topo.TotalWorkers() != r.pool.Workers() {
		panic("core: topology workers != pool workers")
	}
	r.pullPart = numa.PartitionEven(g.VSD.NumVectors(), r.topo.Nodes)
	r.pushPart = numa.PartitionEven(g.VSS.NumVectors(), r.topo.Nodes)
	r.propOwner = numa.NewPropertyMap(g.N, r.topo)
	maxVectors := g.VSD.NumVectors()
	if g.CSC.NumEdges() > maxVectors {
		maxVectors = g.CSC.NumEdges() // scalar kernels chunk over edges
	}
	chunkSize := r.opt.chunkSizeFor(maxVectors, r.pool.Workers())
	// Two slots per chunk: the scheduler-aware kernels use one (the trailing
	// partial aggregate), the traditional kernels use a pair (prefix and
	// suffix boundary runs).
	r.mergeSlots = 2 * (sched.NumChunks(maxVectors, chunkSize) + r.topo.Nodes)
	// Partitioned execution drives the scheduler-aware vectorized kernels on
	// single-node topologies; every other configuration falls back to the
	// monolithic path (Result.Partitions reports the effective count).
	// Record is excluded because per-tid counter slots are private to one
	// pool job and a scatter phase runs several concurrently.
	r.parts = r.opt.Partitions
	if r.parts > 1 && (r.opt.Scalar || r.opt.WideVectors || r.opt.WorkStealing ||
		r.opt.Record || r.opt.Variant != PullSchedulerAware || r.topo.Nodes > 1) {
		r.parts = 1
	}
	if r.parts > 1 {
		workers := r.pool.Workers()
		r.pullChunkSize = r.opt.chunkSizeFor(g.VSD.NumVectors(), workers)
		r.vertChunkSize = sched.ChunkSize(g.N, sched.DefaultChunks(workers))
		r.plan = numa.NewPlan(r.parts,
			sched.NumChunks(g.VSD.NumVectors(), r.pullChunkSize),
			sched.NumChunks(g.N, r.vertChunkSize),
			(g.N+63)/64)
	}
	return r
}

// Close releases the Runner's pool if it owns one. Close is idempotent.
func (r *Runner) Close() {
	r.closeOnce.Do(func() {
		if r.ownPool {
			r.pool.Close()
		}
	})
}

// Graph returns the preprocessed graph.
func (r *Runner) Graph() *Graph { return r.g }

// Pool returns the worker pool.
func (r *Runner) Pool() *sched.Pool { return r.pool }

// NewContext allocates a fresh ExecContext for this Runner. Callers that
// drive phases manually (benchmark harnesses) create one explicitly;
// Run/RunCtx recycle contexts internally.
func (r *Runner) NewContext() *ExecContext {
	n := r.g.N
	ec := &ExecContext{
		Runner:     r,
		props:      make([]uint64, n),
		accum:      make([]uint64, n),
		front:      frontier.NewDense(n),
		next:       frontier.NewDense(n),
		conv:       frontier.NewDense(n),
		touched:    frontier.NewDense(n),
		mergeBuf:   sched.NewMergeBuffer(r.mergeSlots),
		scatterBuf: sched.NewScatterBuffer(0),
		ctx:        context.Background(),
	}
	if r.opt.Record {
		ec.edgeRec = perfmodel.NewRecorder(r.pool.Workers())
		ec.vertexRec = perfmodel.NewRecorder(r.pool.Workers())
	}
	if r.opt.Trace {
		ec.tracer = &obs.TraceBuilder{}
	}
	return ec
}

// acquire recycles an ExecContext from the Runner's pool. The props array
// may have been detached by a previous release (run results hand it to the
// caller), so it is reallocated on demand.
func (r *Runner) acquire() *ExecContext {
	if ec, ok := r.ctxPool.Get().(*ExecContext); ok {
		if ec.props == nil {
			ec.props = make([]uint64, r.g.N)
		}
		return ec
	}
	return r.NewContext()
}

// release returns an ExecContext to the recycling pool. The caller must
// have detached any state it handed out (Result.Props).
func (r *Runner) release(ec *ExecContext) {
	ec.ctx, ec.done = context.Background(), nil
	ec.runErr.Store(nil)
	r.ctxPool.Put(ec)
	if r.opt.OnRelease != nil {
		r.opt.OnRelease()
	}
}

// Props exposes the property lanes (valid after Init or a phase run).
func (ec *ExecContext) Props() []uint64 { return ec.props }

// Frontier exposes the current frontier.
func (ec *ExecContext) Frontier() *frontier.Dense { return ec.front }

// EdgeRecorder returns the Edge-phase recorder (nil unless Options.Record).
func (ec *ExecContext) EdgeRecorder() *perfmodel.Recorder { return ec.edgeRec }

// VertexRecorder returns the Vertex-phase recorder (nil unless
// Options.Record).
func (ec *ExecContext) VertexRecorder() *perfmodel.Recorder { return ec.vertexRec }

// Init resets all state for a fresh run of program p.
func (ec *ExecContext) Init(p apps.Program) {
	p.InitProps(ec.props)
	id := p.Identity()
	for i := range ec.accum {
		ec.accum[i] = id
	}
	ec.front.Clear()
	ec.next.Clear()
	ec.conv.Clear()
	p.InitFrontier(ec.front)
	p.InitConverged(ec.conv)
	ec.mergeBuf.Reset()
	// Drain any scatter contributions a previous aborted run left behind so
	// they cannot fold into this run's accumulators. (After a completed run
	// the slots are already empty, so this is free.)
	ec.scatterBuf.Merge(func(uint32, uint64) {})
	ec.edgeRec.Reset()
	ec.vertexRec.Reset()
	if ec.tracer != nil {
		ec.tracer.Reset()
	}
	ec.traceDropped = false
	ec.phaseChunks.Store(0)
	ec.phaseSteals = 0
	ec.pendingMergeWall = 0
	ec.pendingMergeN = 0
}

// cancelled reports whether the run's context is done. The check is a
// non-blocking channel poll, cheap enough to sit on the chunk-claim path.
func (ec *ExecContext) cancelled() bool {
	if ec.done == nil {
		return false
	}
	select {
	case <-ec.done:
		return true
	default:
		return false
	}
}

// aborted reports whether the run should stop claiming chunks — either its
// context ended or a chunk panicked.
func (ec *ExecContext) aborted() bool {
	return ec.runErr.Load() != nil || ec.cancelled()
}

// guard is the deferred recover for phase chunk bodies: the first panic is
// recorded (with stack) and the run aborts at the next chunk boundary, while
// the worker, the pool, and sibling runs continue.
func (ec *ExecContext) guard() {
	if r := recover(); r != nil {
		ec.runErr.CompareAndSwap(nil, sched.NewPanicError(r))
	}
}

// runChunk executes one phase chunk under guard. The core/chunk failpoint
// sits here so fault-injection tests can make exactly one chunk of one run
// blow up.
func (ec *ExecContext) runChunk(body func(rg sched.Range, chunkID, tid, node int), rg sched.Range, chunkID, tid, node int) {
	defer ec.guard()
	if err := fault.Inject("core/chunk"); err != nil {
		panic(err)
	}
	ec.countChunk()
	body(rg, chunkID, tid, node)
}

// countChunk feeds the phase tracer's chunk counter; called by every chunk
// execution path (dispatch, the sparse edge loop, the static vertex loops).
func (ec *ExecContext) countChunk() {
	if ec.tracer != nil {
		ec.phaseChunks.Add(1)
	}
}

// tracePhase records one phase execution into the run's trace builder. The
// obs/trace failpoint and the recover barrier implement the containment
// contract: a panic anywhere in the trace path drops the trace (marked
// Dropped) but never fails the run.
func (ec *ExecContext) tracePhase(ph obs.Phase, wall time.Duration, chunks, steals int64, density float64) {
	if ec.tracer == nil || ec.traceDropped {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			ec.traceDropped = true
			ec.tracer.MarkDropped()
		}
	}()
	if err := fault.Inject("obs/trace"); err != nil {
		panic(err)
	}
	ec.tracer.AddPhase(ph, wall, chunks, steals, density)
}

// takePhaseCounters drains the chunk and steal counters accumulated since
// the previous phase boundary. Driver goroutine only.
func (ec *ExecContext) takePhaseCounters() (chunks, steals int64) {
	chunks = ec.phaseChunks.Swap(0)
	steals = ec.phaseSteals
	ec.phaseSteals = 0
	return chunks, steals
}

// takeMerge drains the merge wall time the edge-phase kernels accumulated
// via noteMerge. Driver goroutine only.
func (ec *ExecContext) takeMerge() (wall time.Duration, n int) {
	wall, n = ec.pendingMergeWall, ec.pendingMergeN
	ec.pendingMergeWall, ec.pendingMergeN = 0, 0
	return wall, n
}

// noteMerge records one merge fold's wall time. The merge runs on the
// driver goroutine inside the edge-phase window; runLoop subtracts this from
// the edge wall so the merge phase is not double-counted.
func (ec *ExecContext) noteMerge(wall time.Duration) {
	if ec.tracer == nil {
		return
	}
	ec.pendingMergeWall += wall
	ec.pendingMergeN++
}

// dispatch hands contiguous chunks of [0, total) to workers, restricted to
// each worker's simulated NUMA node partition (part must partition the same
// space). Chunk ids are globally unique and stable for a given (total,
// chunkSize, topology), so the merge buffer can be preallocated. body
// receives the chunk range, its global id, the worker id, and the node.
// When the run's context is cancelled, no further chunks are claimed;
// in-flight chunks complete.
func (ec *ExecContext) dispatch(part numa.Partition, chunkSize int, rec *perfmodel.Recorder, body func(rg sched.Range, chunkID, tid, node int)) {
	if ec.opt.WorkStealing && ec.topo.Nodes == 1 {
		_, total := part.Range(0)
		ec.mergeBuf.Grow(sched.NumChunks(total, chunkSize))
		steals := ec.pool.StealingFor(total, chunkSize, func(rg sched.Range, chunkID, tid int) {
			if ec.aborted() {
				return
			}
			if rec != nil {
				start := time.Now()
				ec.runChunk(body, rg, chunkID, tid, 0)
				rec.AddBusy(tid, time.Since(start))
			} else {
				ec.runChunk(body, rg, chunkID, tid, 0)
			}
		})
		if ec.tracer != nil {
			ec.phaseSteals += steals
		}
		return
	}
	nodes := part.Nodes()
	type nodeState struct {
		lo, numChunks, chunkBase int
		next                     atomic.Int64
		_                        [64]byte // keep counters off shared lines
	}
	states := make([]nodeState, nodes)
	base := 0
	for n := 0; n < nodes; n++ {
		lo, hi := part.Range(n)
		states[n].lo = lo
		states[n].numChunks = sched.NumChunks(hi-lo, chunkSize)
		states[n].chunkBase = base
		base += states[n].numChunks
	}
	if base == 0 {
		return
	}
	ec.mergeBuf.Grow(base)
	ec.pool.Run(func(tid int) {
		node := ec.topo.NodeOf(tid)
		st := &states[node]
		_, hi := part.Range(node)
		for {
			if ec.aborted() {
				return
			}
			local := int(st.next.Add(1)) - 1
			if local >= st.numChunks {
				return
			}
			lo := st.lo + local*chunkSize
			end := lo + chunkSize
			if end > hi {
				end = hi
			}
			if rec != nil {
				start := time.Now()
				ec.runChunk(body, sched.Range{Lo: lo, Hi: end}, st.chunkBase+local, tid, node)
				rec.AddBusy(tid, time.Since(start))
			} else {
				ec.runChunk(body, sched.Range{Lo: lo, Hi: end}, st.chunkBase+local, tid, node)
			}
		}
	})
}

// Result reports a completed run.
type Result struct {
	// Props holds the final property lanes. The slice is owned by the
	// caller; it is never aliased by a later run.
	Props []uint64
	// Iterations counts Edge+Vertex rounds; PullIterations and
	// PushIterations split them by selected engine, and SparseIterations
	// counts rounds served by the sparse-frontier extension (a subset of
	// PushIterations).
	Iterations, PullIterations, PushIterations, SparseIterations int
	// EdgeTime and VertexTime are cumulative phase wall times.
	EdgeTime, VertexTime time.Duration
	// Total is the end-to-end wall time, excluding graph preprocessing.
	Total time.Duration
	// EdgeCounters and VertexCounters aggregate the perfmodel counters
	// (zero unless Options.Record).
	EdgeCounters, VertexCounters perfmodel.Counters
	// EdgeProfile is the Fig 5b Work/Merge/Write/Idle breakdown.
	EdgeProfile perfmodel.Breakdown
	// Trace is the per-phase breakdown (empty unless Options.Trace).
	Trace obs.RunTrace
	// Mode is the engine mode the run was configured with.
	Mode EngineMode
	// Partitions is the effective coordinator partition count the run
	// executed with (1 = monolithic; see Options.Partitions for the
	// configurations that fall back).
	Partitions int
	// ExchangeBytes is the total frontier-delta volume moved through the
	// partitioned coordinator's Exchange across all partitions and
	// iterations (0 on the monolithic path).
	ExchangeBytes int64
	// Seeded reports that the run started from a warm seed (RunSeededCtx)
	// rather than the program's cold init. False for a seeded call means the
	// seed failed to apply and the run degraded to a cold start.
	Seeded bool
}

// Run executes program p for at most maxIters iterations (frontier-driven
// programs stop early when the frontier empties) and returns the result.
// The generic parameter devirtualizes the per-edge program calls. Run is
// safe to call concurrently on one Runner.
func Run[P apps.Program](r *Runner, p P, maxIters int) Result {
	res, _ := RunCtx(context.Background(), r, p, maxIters)
	return res
}

// RunCtx is Run with cancellation and fault containment: the run stops
// within one scheduler chunk boundary of ctx being cancelled (including an
// Options.MaxRunTime deadline) and returns the partial result alongside a
// non-nil error wrapping ctx.Err(). A panic anywhere in the run — a chunk
// body, a program callback, the iteration driver — is captured as a
// *sched.PanicError wrapped in the returned error; the Runner, its pool, and
// concurrent sibling runs stay healthy. Props then reflect the last fully
// applied iteration.
func RunCtx[P apps.Program](ctx context.Context, r *Runner, p P, maxIters int) (res Result, err error) {
	if r.opt.MaxRunTime > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.opt.MaxRunTime)
		defer cancel()
	}
	ec := r.acquire()
	ec.ctx = ctx
	ec.done = ctx.Done()
	func() {
		// Last-resort containment for panics outside guarded chunks (program
		// callbacks on the driver goroutine, frontier bookkeeping, or a
		// *PanicError rethrown by a void pool wrapper).
		defer func() {
			if rec := recover(); rec != nil {
				pe := sched.NewPanicError(rec)
				err = fmt.Errorf("core: run panicked after %d iterations: %w", res.Iterations, pe)
			}
		}()
		res, err = runLoop(ec, p, maxIters, nil)
	}()
	res.Props = ec.props
	ec.props = nil // ownership passes to the caller
	r.release(ec)
	return res, err
}

// runLoop executes one run by binding the program's kernels into a
// coord.Iteration closure bundle and handing the schedule to a Coordinator:
// LocalCoordinator replays the monolithic loop, PartitionedCoordinator
// scatter-gathers each phase across plan spans (see DESIGN.md §13).
func runLoop[P apps.Program](ec *ExecContext, p P, maxIters int, seed *Seed) (Result, error) {
	start := time.Now()
	ec.Init(p)
	var res Result
	res.Mode = ec.opt.Mode
	res.Partitions = ec.parts
	if seed != nil {
		res.Seeded = applySeed(ec, p, seed)
	}
	usesFrontier := p.UsesFrontier()

	// density and sparseList carry per-iteration state from Begin into the
	// phase closures. The coordinator invokes Begin/Sparse/Edge*/Vertex*/End
	// strictly in sequence on this goroutine; only the *Span closures run
	// concurrently, on disjoint chunk spans.
	var (
		density    float64
		sparseList []uint32
	)
	it := coord.Iteration{
		Begin: func() coord.Status {
			var st coord.Status
			if ec.aborted() || (usesFrontier && ec.front.Empty()) {
				st.Stop = true
				return st
			}
			p.PreIteration(ec.props)
			// The iteration's frontier density drives both the direction
			// choice and the trace; computing it once keeps the two
			// consistent.
			density = 1.0
			if usesFrontier {
				density = ec.front.Density()
			}
			st.UsesFrontier = usesFrontier
			st.Density = density
			if usesFrontier {
				st.DegreeShare = ec.frontierDegreeShare
			}
			if front, ok := ec.selectSparse(p); ok {
				sparseList = front
				st.SparseOK = true
			}
			return st
		},
		Sparse: func() {
			t0 := time.Now()
			touched := runEdgePushSparse(ec, p, sparseList)
			t1 := time.Now()
			edgeWall := t1.Sub(t0)
			res.EdgeTime += edgeWall
			ec.traceEdge(obs.PhaseEdgePush, edgeWall, density)
			runVertexSparse(ec, p, touched)
			vertexWall := time.Since(t1)
			res.VertexTime += vertexWall
			ec.traceVertex(vertexWall, density)
		},
		EdgeFull: func(dir coord.Direction) {
			t0 := time.Now()
			ph := obs.PhaseEdgePush
			if dir == coord.DirPull {
				RunEdgePull(ec, p)
				ph = obs.PhaseEdgePull
			} else {
				RunEdgePush(ec, p)
			}
			edgeWall := time.Since(t0)
			res.EdgeTime += edgeWall
			ec.traceEdge(ph, edgeWall, density)
		},
		VertexFull: func() {
			t0 := time.Now()
			RunVertex(ec, p)
			vertexWall := time.Since(t0)
			res.VertexTime += vertexWall
			ec.traceVertex(vertexWall, density)
		},
		End: func(dir coord.Direction) {
			switch dir {
			case coord.DirPull:
				res.PullIterations++
			case coord.DirSparse:
				res.PushIterations++
				res.SparseIterations++
			default:
				res.PushIterations++
			}
			res.Iterations++
			ec.noteDirection(dir.Mark())
		},
	}

	policy := coord.Policy{
		PullOnly:             ec.opt.Mode == EnginePullOnly,
		PushOnly:             ec.opt.Mode == EnginePushOnly,
		PullThreshold:        ec.opt.PullThreshold,
		DegreeShareThreshold: ec.opt.PullDegreeShare,
	}
	var driver coord.Coordinator
	if ec.parts > 1 {
		bindPartitioned(ec, p, &it, &res, &density)
		driver = &coord.PartitionedCoordinator{Policy: policy, Plan: ec.plan, Exchange: ec.opt.Exchange}
	} else {
		driver = &coord.LocalCoordinator{Policy: policy}
	}
	coordErr := driver.Run(ec.ctx, it, maxIters)

	res.Total = time.Since(start)
	res.EdgeCounters = ec.edgeRec.Total()
	res.VertexCounters = ec.vertexRec.Total()
	res.EdgeProfile = ec.edgeRec.Profile()
	if ps := driver.PartitionStats(); len(ps) > 0 {
		for _, s := range ps {
			res.ExchangeBytes += s.ExchangeBytes
		}
		if ec.tracer != nil {
			ops := make([]obs.PartitionStat, len(ps))
			for i, s := range ps {
				ops[i] = obs.PartitionStat{
					Part:          s.Part,
					EdgeWall:      s.EdgeWall,
					VertexWall:    s.VertexWall,
					ExchangeBytes: s.ExchangeBytes,
					Spans:         s.Spans,
				}
			}
			ec.tracer.SetPartitions(ops)
		}
	}
	if ec.tracer != nil {
		res.Trace = ec.tracer.Trace()
	}
	if pe := ec.runErr.Load(); pe != nil {
		return res, fmt.Errorf("core: run aborted after %d iterations: %w", res.Iterations, pe)
	}
	if err := ec.ctx.Err(); err != nil {
		return res, fmt.Errorf("core: run cancelled after %d iterations: %w", res.Iterations, err)
	}
	if coordErr != nil {
		return res, fmt.Errorf("core: run failed after %d iterations: %w", res.Iterations, coordErr)
	}
	return res, nil
}

// bindPartitioned installs the scatter-gather closures the partitioned
// coordinator drives. Edge and vertex bodies are rebuilt each iteration —
// they snapshot the frontier words, which swap on publish — and every span
// executes chunks of the same global grid a monolithic dispatch would, so
// merge slots, fold order, and output bits are independent of the partition
// count.
func bindPartitioned[P apps.Program](ec *ExecContext, p P, it *coord.Iteration, res *Result, density *float64) {
	identity := p.Identity()
	pushOrdered := fuseFor(p, p.Weighted() && ec.g.VSS.Weights != nil).ordered
	pullTotal := ec.g.VSD.NumVectors()
	grp := ec.pool.NewGroup()
	var (
		edgeBody func(rg sched.Range, chunkID, tid, node int)
		vbody    func(rg sched.Range, tid int)
		phaseT0  time.Time
	)
	it.EdgeBegin = func(dir coord.Direction) {
		phaseT0 = time.Now()
		if dir == coord.DirPull {
			edgeBody = pullSABody(ec, p)
			// Pre-grow on the driver: concurrent spans must never resize the
			// shared merge buffer.
			ec.mergeBuf.Grow(sched.NumChunks(pullTotal, ec.pullChunkSize))
		} else {
			edgeBody = pushVectorizedBody(ec, p)
			if pushOrdered {
				ec.scatterBuf.Grow(sched.NumChunks(ec.g.N, ec.vertChunkSize) + ec.topo.Nodes)
			}
		}
	}
	it.EdgeSpan = func(dir coord.Direction, s coord.Span) {
		total, chunkSize := pullTotal, ec.pullChunkSize
		if dir == coord.DirPush {
			total, chunkSize = ec.g.N, ec.vertChunkSize
		}
		ec.dispatchSpan(grp, s, total, chunkSize, edgeBody)
	}
	it.EdgeDone = func(dir coord.Direction) {
		ph := obs.PhaseEdgePull
		if dir == coord.DirPull {
			mergeAccum(ec, p, identity)
		} else {
			ph = obs.PhaseEdgePush
			if pushOrdered {
				mergeScatter(ec, p)
			}
		}
		edgeWall := time.Since(phaseT0)
		if ec.edgeRec != nil {
			ec.edgeRec.Wall += edgeWall
		}
		res.EdgeTime += edgeWall
		ec.traceEdge(ph, edgeWall, *density)
	}
	it.VertexBegin = func() {
		phaseT0 = time.Now()
		vbody = vertexBody(ec, p)
		ec.next.Clear()
	}
	it.VertexSpan = func(s coord.Span) {
		ec.dispatchSpan(grp, s, ec.g.N, ec.vertChunkSize, func(rg sched.Range, chunkID, tid, node int) {
			vbody(rg, tid)
		})
	}
	it.VertexDone = func() {
		vertexWall := time.Since(phaseT0)
		res.VertexTime += vertexWall
		if ec.vertexRec != nil {
			ec.vertexRec.Wall += vertexWall
		}
		ec.traceVertex(vertexWall, *density)
	}
	it.Delta = func(s coord.Span) coord.FrontierDelta {
		return coord.FrontierDelta{Part: s.Part, WordLo: s.Lo, Words: ec.next.Words()[s.Lo:s.Hi]}
	}
	it.Publish = ec.publishFrontier
}

// dispatchSpan executes global chunk ids [s.Lo, s.Hi) of one phase grid as a
// single grouped pool job: chunk ranges, ids, and therefore merge-buffer
// slots are exactly those a monolithic dispatch would produce, so the fold —
// and the output bits — cannot depend on the partition count. Partitioned
// execution is gated to single-node topologies, so chunks carry node 0.
func (ec *ExecContext) dispatchSpan(grp *sched.Group, s coord.Span, total, chunkSize int, body func(rg sched.Range, chunkID, tid, node int)) {
	if s.Lo >= s.Hi {
		return
	}
	var next atomic.Int64
	next.Store(int64(s.Lo))
	// runChunk contains every body panic, so the job itself cannot fail.
	_ = ec.pool.RunGrouped(grp, func(tid int) {
		for {
			if ec.aborted() {
				return
			}
			c := int(next.Add(1)) - 1
			if c >= s.Hi {
				return
			}
			lo := c * chunkSize
			hi := lo + chunkSize
			if hi > total {
				hi = total
			}
			ec.runChunk(body, sched.Range{Lo: lo, Hi: hi}, c, tid, 0)
		}
	})
}

// publishFrontier installs the just-built next frontier as the current one.
func (ec *ExecContext) publishFrontier() {
	ec.front, ec.next = ec.next, ec.front
}

// frontierDegreeShare returns the current frontier's out-degree sum as a
// share of all edges — the lazy degree-sum term of the hybrid heuristic
// (Policy.DegreeShareThreshold). Only invoked when the density test alone
// would choose push, so the O(frontier) walk is paid exactly when the
// decision is in doubt.
func (ec *ExecContext) frontierDegreeShare() float64 {
	if ec.g.Edges == 0 {
		return 0
	}
	var sum uint64
	ec.front.ForEach(func(v uint32) {
		sum += uint64(ec.g.CSR.Degree(v))
	})
	return float64(sum) / float64(ec.g.Edges)
}

// noteDirection appends one iteration's direction mark to the run trace.
func (ec *ExecContext) noteDirection(mark byte) {
	if ec.tracer == nil || ec.traceDropped {
		return
	}
	ec.tracer.AddDirection(mark)
}

// traceEdge records a completed edge phase: the merge fold ran inside the
// edge window on the driver goroutine, so its wall time is subtracted here
// and reported as its own phase — the sum of per-phase walls then tiles the
// iteration instead of double-counting the merge.
func (ec *ExecContext) traceEdge(ph obs.Phase, edgeWall time.Duration, density float64) {
	if ec.tracer == nil {
		return
	}
	chunks, steals := ec.takePhaseCounters()
	mergeWall, mergeN := ec.takeMerge()
	if mergeWall > edgeWall {
		mergeWall = edgeWall // clock skew guard; keeps both walls nonnegative
	}
	ec.tracePhase(ph, edgeWall-mergeWall, chunks, steals, density)
	if mergeN > 0 {
		ec.tracePhase(obs.PhaseMerge, mergeWall, 0, 0, density)
	}
}

// traceVertex records a completed vertex phase.
func (ec *ExecContext) traceVertex(wall time.Duration, density float64) {
	if ec.tracer == nil {
		return
	}
	chunks, steals := ec.takePhaseCounters()
	ec.tracePhase(obs.PhaseVertex, wall, chunks, steals, density)
}

// RunVertex executes the Vertex phase: apply aggregates, reset accumulators,
// build the next frontier, and swap it in. Statically scheduled (§5: the
// work is regular enough that load balancing is not a problem).
func RunVertex[P apps.Program](r *ExecContext, p P) {
	t0 := time.Now()
	body := vertexBody(r, p)
	r.next.Clear()
	r.pool.StaticFor(r.g.N, func(rg sched.Range, tid int) {
		if r.aborted() {
			return
		}
		defer r.guard()
		r.countChunk()
		body(rg, tid)
	})
	r.publishFrontier()
	if r.vertexRec != nil {
		r.vertexRec.Wall += time.Since(t0)
	}
}

// vertexBody builds the Vertex-phase range body with the loop invariants
// hoisted into the closure. The partitioned coordinator rebuilds it each
// iteration (it snapshots the next-frontier words, which swap on publish)
// and runs it concurrently over disjoint vertex spans — every write is
// either per-vertex state owned by the span or an atomic OR into the shared
// bitmaps, so span concurrency is exactly as safe as chunk concurrency.
func vertexBody[P apps.Program](r *ExecContext, p P) func(rg sched.Range, tid int) {
	identity := p.Identity()
	tracksConv := p.TracksConverged()
	nextWords := r.next.Words()
	convWords := r.conv.Words()
	return func(rg sched.Range, tid int) {
		var c perfmodel.Counters
		start := time.Now()
		apply := func(v int) {
			nv, changed := p.Apply(r.props[v], r.accum[v], uint32(v))
			r.props[v] = nv
			r.accum[v] = identity
			c.SharedWrites += 2
			if changed {
				atomic.OrUint64(&nextWords[v>>6], 1<<(uint(v)&63))
				if tracksConv {
					atomic.OrUint64(&convWords[v>>6], 1<<(uint(v)&63))
				}
			}
		}
		if r.opt.Scalar {
			for v := rg.Lo; v < rg.Hi; v++ {
				apply(v)
			}
		} else {
			// Vectorized Vertex phase: four lanes per step with one bounds
			// check per vector and frontier bits coalesced into a single
			// atomic OR per group. §6.2 found this phase memory-bandwidth-
			// bound and therefore largely unresponsive to vectorization; the
			// structure exists for the Fig 10a comparison.
			v := rg.Lo
			for ; v+vec.Lanes <= rg.Hi; v += vec.Lanes {
				old := vec.Load(r.props, v)
				agg := vec.Load(r.accum, v)
				var changedMask uint64
				for lane := 0; lane < vec.Lanes; lane++ {
					nv, changed := p.Apply(old[lane], agg[lane], uint32(v+lane))
					old[lane] = nv
					if changed {
						changedMask |= 1 << lane
					}
				}
				vec.Store(r.props, v, old)
				vec.Store(r.accum, v, vec.Broadcast(identity))
				c.SharedWrites += 2 * vec.Lanes
				if changedMask != 0 {
					// Lanes are consecutive vertices: shift the lane mask
					// into bit position, splitting across two frontier words
					// when the group straddles a boundary.
					off := uint(v) & 63
					lo := changedMask << off
					if lo != 0 {
						atomic.OrUint64(&nextWords[v>>6], lo)
						if tracksConv {
							atomic.OrUint64(&convWords[v>>6], lo)
						}
					}
					if off > 64-vec.Lanes {
						if hi := changedMask >> (64 - off); hi != 0 {
							atomic.OrUint64(&nextWords[v>>6+1], hi)
							if tracksConv {
								atomic.OrUint64(&convWords[v>>6+1], hi)
							}
						}
					}
				}
			}
			for ; v < rg.Hi; v++ {
				apply(v)
			}
		}
		if r.vertexRec != nil {
			r.vertexRec.Record(tid, c)
			r.vertexRec.AddBusy(tid, time.Since(start))
		}
	}
}

// firstTop returns the top-level vertex of vector vi in array a — the
// scheduler-aware StartChunk initialization.
func firstTop(a *vsparse.Array, vi int) uint32 {
	return uint32(vsparse.DecodeTop(a.Vector(vi)))
}
