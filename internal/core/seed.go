package core

import (
	"context"
	"fmt"

	"repro/internal/apps"
	"repro/internal/fault"
	"repro/internal/sched"
)

// Warm-start execution (DESIGN.md §15): a run may begin from a predecessor
// result's property lanes and a frontier of delta-touched vertices instead
// of the program's cold init. The engine stays oblivious to where the seed
// came from — apps.Entry.IncrementalSeed computes it, serving layers decide
// when to use it, and this file only installs it. Safety is structural: any
// failure while installing the seed (shape mismatch, panic, the
// core/incremental-seed failpoint) restores the cold Init state and the run
// proceeds as a full recompute, so a broken seed can cost time but never
// correctness.

// Seed is a warm start for RunSeededCtx.
type Seed struct {
	// Props are the starting property lanes; length must equal the graph's
	// vertex count.
	Props []uint64
	// Frontier lists the vertices active in the first iteration. For
	// frontier-driven programs an empty frontier means the seed is already a
	// fixpoint: the run stops at zero iterations with Props as the result.
	Frontier []uint32
}

// RunSeededCtx is RunCtx starting from seed. Result.Seeded reports whether
// the seed actually applied; when it did not (nil seed, wrong shape, or an
// injected fault) the run executed from the program's cold init instead —
// callers running a truncated iteration budget on the assumption the seed
// held (direct plans with maxIters 0) must check Seeded before trusting the
// result.
func RunSeededCtx[P apps.Program](ctx context.Context, r *Runner, p P, maxIters int, seed *Seed) (res Result, err error) {
	if r.opt.MaxRunTime > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.opt.MaxRunTime)
		defer cancel()
	}
	ec := r.acquire()
	ec.ctx = ctx
	ec.done = ctx.Done()
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				pe := sched.NewPanicError(rec)
				err = fmt.Errorf("core: run panicked after %d iterations: %w", res.Iterations, pe)
			}
		}()
		res, err = runLoop(ec, p, maxIters, seed)
	}()
	res.Props = ec.props
	ec.props = nil // ownership passes to the caller
	r.release(ec)
	return res, err
}

// applySeed installs seed over the just-Init'd context and reports whether
// it took. On any failure the context is re-Init'd so the caller's run is a
// bit-exact cold start — never a half-applied seed.
func applySeed[P apps.Program](ec *ExecContext, p P, seed *Seed) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ec.Init(p)
			ok = false
		}
	}()
	if err := fault.Inject("core/incremental-seed"); err != nil {
		panic(err)
	}
	if seed == nil || len(seed.Props) != len(ec.props) {
		return false
	}
	copy(ec.props, seed.Props)
	ec.front.Clear()
	n := uint32(ec.g.N)
	for _, v := range seed.Frontier {
		if v >= n {
			ec.Init(p)
			return false
		}
		ec.front.Add(v)
	}
	return true
}
