package core

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/apps"
	"repro/internal/perfmodel"
	"repro/internal/sched"
	"repro/internal/vec"
	"repro/internal/vsparse"
)

// This file implements the sparse-frontier extension the paper explicitly
// defers (§5: "Unlike Grazelle, other engines support dynamically switching
// between sparse and dense representations for frontiers ... we quantify
// the impact of this implementation issue in §6.3 but otherwise leave it to
// future work"). When Options.SparseFrontier is set and the frontier is
// small, the Edge phase iterates only the frontier's out-vectors (via the
// VSS vertex index) and the Vertex phase applies only the touched
// destinations — eliminating the whole-array scans that cost Grazelle the
// BFS comparison of Fig 13.

// sparseThresholdDivisor mirrors Ligra's heuristic: go sparse when
// |F| + outEdges(F) <= E / 20.
const sparseThresholdDivisor = 20

// selectSparse decides whether this iteration should run the sparse path;
// it returns the frontier's vertex list when so.
func (r *ExecContext) selectSparse(p apps.Program) ([]uint32, bool) {
	if !r.opt.SparseFrontier || !p.UsesFrontier() || r.opt.Mode == EnginePullOnly {
		return nil, false
	}
	// Cheap word-count screen before materializing the list: a frontier
	// with more members than the edge budget can never qualify.
	budget := r.g.Edges / sparseThresholdDivisor
	if r.front.Count() > budget {
		return nil, false
	}
	sp := r.front.ToSparse()
	frontEdges := 0
	for _, v := range sp.Vertices() {
		frontEdges += r.g.CSR.Degree(v)
	}
	if sp.Count()+frontEdges > budget {
		return nil, false
	}
	return sp.Vertices(), true
}

// runEdgePushSparse scatters only the frontier's out-edges (vectorized over
// VSS), collecting the set of touched destinations. It returns the touched
// list for the sparse Vertex phase.
func runEdgePushSparse[P apps.Program](r *ExecContext, p P, front []uint32) []uint32 {
	t0 := time.Now()
	a := r.g.VSS
	words := a.Words
	index := a.Index
	tracksConv := p.TracksConverged()
	skipEqual := p.SkipEqualWrites()
	weighted := p.Weighted() && a.Weights != nil
	props, accum := r.props, r.accum
	rec := r.edgeRec
	fz := fuseFor(p, weighted)

	r.touched.Clear()
	touchedWords := r.touched.Words()

	chunk := sched.ChunkSize(len(front), sched.DefaultChunks(r.pool.Workers()))
	// Order-sensitive programs route contributions through the scatter
	// buffer for a deterministic fold (see edgePushVectorized); the frontier
	// list is sorted, so chunk ranges are stable across runs.
	if fz.ordered {
		r.scatterBuf.Grow(sched.NumChunks(len(front), chunk))
	}
	err := r.pool.DynamicForCtx(r.ctx, len(front), chunk, func(rg sched.Range, chunkID, tid int) {
		r.countChunk()
		var c perfmodel.Counters
		var out []sched.Contribution
		if fz.ordered {
			out = r.scatterBuf.Take(chunkID)
		}
		start := time.Now()
		for i := rg.Lo; i < rg.Hi; i++ {
			src := front[i]
			for vi := index[src]; vi < index[src+1]; vi++ {
				base := vi * vec.Lanes
				v0, v1, v2, v3 := words[base], words[base+1], words[base+2], words[base+3]
				c.VectorsProcessed++
				mask := signMask4(v0, v1, v2, v3)
				neigh := vec.U64x4{v0 & vsparse.VertexMask, v1 & vsparse.VertexMask,
					v2 & vsparse.VertexMask, v3 & vsparse.VertexMask}
				for lane := 0; lane < vec.Lanes; lane++ {
					if !mask.Bit(lane) {
						continue
					}
					dst := uint32(neigh[lane])
					if tracksConv && r.conv.Contains(dst) {
						c.FrontierSkips++
						continue
					}
					var w float32
					if weighted {
						w = a.Weights[base+lane]
					}
					msg := stepMsg(p, &fz, props, uint64(src), w)
					c.EdgesProcessed++
					if fz.ordered {
						out = append(out, sched.Contribution{Dst: dst, Val: msg})
						c.TLSWrites++
					} else {
						casCombine(p, &accum[dst], msg, skipEqual, &c)
					}
					atomic.OrUint64(&touchedWords[dst>>6], 1<<(dst&63))
				}
			}
		}
		if fz.ordered {
			r.scatterBuf.Save(chunkID, out)
		}
		if rec != nil {
			rec.Record(tid, c)
			rec.AddBusy(tid, time.Since(start))
		}
	})
	// A chunk panic surfaces here as a *sched.PanicError (the pool contains
	// it); record it so the run aborts. Context errors are already observed
	// by the iteration driver through aborted().
	var pe *sched.PanicError
	if errors.As(err, &pe) {
		r.runErr.CompareAndSwap(nil, pe)
	}
	if fz.ordered {
		mergeScatter(r, p)
	}
	if rec != nil {
		rec.Wall += time.Since(t0)
	}
	return r.touched.ToSparse().Vertices()
}

// runVertexSparse applies only the touched destinations and rebuilds the
// next frontier from them. Untouched vertices hold identity aggregates and
// cannot change, so skipping them is exact.
func runVertexSparse[P apps.Program](r *ExecContext, p P, touched []uint32) {
	t0 := time.Now()
	identity := p.Identity()
	tracksConv := p.TracksConverged()
	r.next.Clear()
	nextWords := r.next.Words()
	convWords := r.conv.Words()
	r.pool.StaticFor(len(touched), func(rg sched.Range, tid int) {
		if r.aborted() {
			return
		}
		defer r.guard()
		r.countChunk()
		var c perfmodel.Counters
		start := time.Now()
		for i := rg.Lo; i < rg.Hi; i++ {
			v := touched[i]
			nv, changed := p.Apply(r.props[v], r.accum[v], v)
			r.props[v] = nv
			r.accum[v] = identity
			c.SharedWrites += 2
			if changed {
				atomic.OrUint64(&nextWords[v>>6], 1<<(v&63))
				if tracksConv {
					atomic.OrUint64(&convWords[v>>6], 1<<(v&63))
				}
			}
		}
		if r.vertexRec != nil {
			r.vertexRec.Record(tid, c)
			r.vertexRec.AddBusy(tid, time.Since(start))
		}
	})
	r.front, r.next = r.next, r.front
	if r.vertexRec != nil {
		r.vertexRec.Wall += time.Since(t0)
	}
}
