package core

import (
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestSparseFrontierMatchesReferences(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat": gen.RMAT(8, 1500, gen.DefaultRMAT, 21),
		"mesh": gen.Grid(12, 12, false, 22),
	}
	for name, g := range graphs {
		cg := BuildGraph(g)
		for _, workers := range []int{1, 4} {
			r := NewRunner(cg, Options{Workers: workers, SparseFrontier: true})
			// BFS.
			res := Run(r, apps.NewBFS(0), 1<<20)
			want := apps.ReferenceBFS(g, 0)
			for v := range want {
				if res.Props[v] != want[v] {
					t.Fatalf("%s/w%d: BFS parent[%d] = %d, want %d", name, workers, v, res.Props[v], want[v])
				}
			}
			// CC.
			cc := apps.Components(Run(r, apps.NewConnComp(), 1<<20).Props)
			wantCC := apps.ReferenceComponents(g)
			for v := range wantCC {
				if cc[v] != wantCC[v] {
					t.Fatalf("%s/w%d: CC[%d] = %d, want %d", name, workers, v, cc[v], wantCC[v])
				}
			}
			r.Close()
		}
	}
}

func TestSparseFrontierSSSP(t *testing.T) {
	g := gen.AddUniformWeights(gen.Grid(9, 9, false, 5), 6)
	r := NewRunner(BuildGraph(g), Options{Workers: 2, SparseFrontier: true})
	defer r.Close()
	res := Run(r, apps.NewSSSP(0), 1<<20)
	want := apps.ReferenceSSSP(g, 0)
	got := apps.Distances(res.Props)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("dist[%d] = %v, want %v", v, got[v], want[v])
		}
	}
	if res.SparseIterations == 0 {
		t.Error("SSSP from one root never used the sparse path")
	}
}

func TestSparseFrontierEngagesOnSparseWork(t *testing.T) {
	// A long path: the frontier is always one vertex, so every iteration
	// should run sparse.
	b := graph.NewBuilder(512)
	for v := uint32(0); v < 511; v++ {
		b.AddEdge(v, v+1)
	}
	g := b.MustBuild()
	r := NewRunner(BuildGraph(g), Options{Workers: 2, SparseFrontier: true})
	defer r.Close()
	res := Run(r, apps.NewBFS(0), 1<<20)
	if res.SparseIterations != res.Iterations {
		t.Errorf("sparse iterations = %d of %d", res.SparseIterations, res.Iterations)
	}
	// Without the option, zero sparse iterations.
	r2 := NewRunner(BuildGraph(g), Options{Workers: 2})
	defer r2.Close()
	if res2 := Run(r2, apps.NewBFS(0), 1<<20); res2.SparseIterations != 0 {
		t.Error("sparse path ran without SparseFrontier")
	}
}

func TestSparseFrontierIgnoredForPageRank(t *testing.T) {
	g := gen.RMAT(7, 600, gen.DefaultRMAT, 7)
	r := NewRunner(BuildGraph(g), Options{Workers: 2, SparseFrontier: true})
	defer r.Close()
	res := Run(r, apps.NewPageRank(g), 4)
	if res.SparseIterations != 0 {
		t.Error("frontier-blind PageRank used the sparse path")
	}
	if math.Abs(apps.RankSum(res.Props)-1) > 1e-9 {
		t.Error("rank sum wrong with SparseFrontier set")
	}
}

func TestSparseFrontierDenseStartStillPull(t *testing.T) {
	// CC starts with a full frontier: the first iterations must be dense
	// pull even with SparseFrontier enabled, switching to sparse only for
	// the convergence tail.
	g := gen.RMAT(9, 4000, gen.DefaultRMAT, 8)
	r := NewRunner(BuildGraph(g), Options{Workers: 2, SparseFrontier: true})
	defer r.Close()
	res := Run(r, apps.NewConnComp(), 1<<20)
	if res.PullIterations == 0 {
		t.Error("CC never ran a dense pull iteration")
	}
	if res.SparseIterations == 0 {
		t.Error("CC never reached the sparse tail")
	}
}

func TestAblateFullVectorStillCorrect(t *testing.T) {
	g := gen.RMAT(8, 1200, gen.DefaultRMAT, 9)
	cg := BuildGraph(g)
	base := NewRunner(cg, Options{Workers: 2})
	ablated := NewRunner(cg, Options{Workers: 2, AblateFullVector: true})
	defer base.Close()
	defer ablated.Close()
	a := Run(base, apps.NewPageRank(g), 5)
	b := Run(ablated, apps.NewPageRank(g), 5)
	for v := range a.Props {
		ra, rb := math.Float64frombits(a.Props[v]), math.Float64frombits(b.Props[v])
		if math.Abs(ra-rb) > 1e-10*(1+math.Abs(ra)) {
			t.Fatalf("ablated kernel diverges at %d: %v vs %v", v, ra, rb)
		}
	}
}

func TestWorkStealingSchedulerMatchesTicket(t *testing.T) {
	g := gen.RMAT(8, 2000, gen.RMATParams{A: 0.65, B: 0.17, C: 0.12, D: 0.06}, 31)
	cg := BuildGraph(g)
	ticket := NewRunner(cg, Options{Workers: 4})
	stealing := NewRunner(cg, Options{Workers: 4, WorkStealing: true})
	defer ticket.Close()
	defer stealing.Close()
	// PageRank: float sums must agree closely (chunk mapping is identical,
	// so the association order within each destination is identical and the
	// results should be bit-equal).
	a := Run(ticket, apps.NewPageRank(g), 6)
	b := Run(stealing, apps.NewPageRank(g), 6)
	for v := range a.Props {
		if a.Props[v] != b.Props[v] {
			t.Fatalf("work stealing changed PageRank at %d", v)
		}
	}
	// And the exact-valued applications.
	ccA := apps.Components(Run(ticket, apps.NewConnComp(), 1<<20).Props)
	ccB := apps.Components(Run(stealing, apps.NewConnComp(), 1<<20).Props)
	for v := range ccA {
		if ccA[v] != ccB[v] {
			t.Fatalf("work stealing changed CC at %d", v)
		}
	}
	bfsA := Run(ticket, apps.NewBFS(0), 1<<20)
	bfsB := Run(stealing, apps.NewBFS(0), 1<<20)
	for v := range bfsA.Props {
		if bfsA.Props[v] != bfsB.Props[v] {
			t.Fatalf("work stealing changed BFS at %d", v)
		}
	}
}

func TestWideVectorsMatchReferences(t *testing.T) {
	g := gen.RMAT(8, 2000, gen.DefaultRMAT, 41)
	cg := BuildGraph(g)
	r := NewRunner(cg, Options{Workers: 4, WideVectors: true, Mode: EnginePullOnly})
	defer r.Close()
	// PageRank within float tolerance of the sequential spec.
	want := apps.RunSequential(apps.NewPageRank(g), g, 8)
	got := Run(r, apps.NewPageRank(g), 8)
	for v := range want.Props {
		a := math.Float64frombits(got.Props[v])
		b := math.Float64frombits(want.Props[v])
		if math.Abs(a-b) > 1e-10*(1+math.Abs(b)) {
			t.Fatalf("wide PR rank[%d] = %v, want %v", v, a, b)
		}
	}
	// CC and BFS exactly.
	cc := apps.Components(Run(r, apps.NewConnComp(), 1<<20).Props)
	wantCC := apps.ReferenceComponents(g)
	for v := range wantCC {
		if cc[v] != wantCC[v] {
			t.Fatalf("wide CC[%d] = %d, want %d", v, cc[v], wantCC[v])
		}
	}
	bfs := Run(r, apps.NewBFS(0), 1<<20)
	wantB := apps.ReferenceBFS(g, 0)
	for v := range wantB {
		if bfs.Props[v] != wantB[v] {
			t.Fatalf("wide BFS parent[%d] = %d, want %d", v, bfs.Props[v], wantB[v])
		}
	}
}

func TestWideVectorsWeighted(t *testing.T) {
	g := gen.AddUniformWeights(gen.Grid(8, 8, false, 3), 4)
	r := NewRunner(BuildGraph(g), Options{Workers: 2, WideVectors: true, Mode: EnginePullOnly})
	defer r.Close()
	got := apps.Distances(Run(r, apps.NewSSSP(0), 1<<20).Props)
	want := apps.ReferenceSSSP(g, 0)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("wide SSSP dist[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestVSD8LazyAndCached(t *testing.T) {
	g := gen.ErdosRenyi(50, 200, 9)
	cg := BuildGraph(g)
	a := cg.VSD8()
	b := cg.VSD8()
	if a != b {
		t.Error("VSD8 rebuilt instead of cached")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.ValidEdges != g.NumEdges() {
		t.Errorf("VSD8 holds %d edges, want %d", a.ValidEdges, g.NumEdges())
	}
}
