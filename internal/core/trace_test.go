package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/obs"
)

func phaseByName(tr obs.RunTrace, name string) (obs.PhaseStat, bool) {
	for _, ph := range tr.Phases {
		if ph.Phase == name {
			return ph, true
		}
	}
	return obs.PhaseStat{}, false
}

func traceWallSum(tr obs.RunTrace) time.Duration {
	var sum time.Duration
	for _, ph := range tr.Phases {
		sum += ph.Wall
	}
	return sum
}

// TestTracePageRank pins the trace shape of a frontier-blind pull program:
// edge-pull, merge, and vertex phases with one entry per iteration, density
// pinned to 1, chunk counts matching the scheduler's layout, and the
// sum-of-phases ≤ total-wall invariant.
func TestTracePageRank(t *testing.T) {
	g := gen.RMAT(10, 8000, gen.DefaultRMAT, 31)
	r := NewRunner(BuildGraph(g), Options{Workers: 4, Trace: true})
	defer r.Close()
	const iters = 5
	res := Run(r, apps.NewPageRank(g), iters)
	if res.Iterations != iters {
		t.Fatalf("iterations = %d, want %d", res.Iterations, iters)
	}
	if res.Trace.Dropped {
		t.Fatal("trace unexpectedly dropped")
	}
	for _, name := range []string{"edge-pull", "merge", "vertex"} {
		ph, ok := phaseByName(res.Trace, name)
		if !ok {
			t.Fatalf("phase %q missing from trace %+v", name, res.Trace)
		}
		if ph.Iters != iters {
			t.Errorf("phase %q iters = %d, want %d", name, ph.Iters, iters)
		}
		if ph.MinDensity != 1 || ph.MaxDensity != 1 {
			t.Errorf("phase %q density = [%v, %v], want [1, 1] for frontier-blind", name, ph.MinDensity, ph.MaxDensity)
		}
	}
	if _, ok := phaseByName(res.Trace, "edge-push"); ok {
		t.Error("edge-push phase present in a pull-only run")
	}
	edge, _ := phaseByName(res.Trace, "edge-pull")
	vertex, _ := phaseByName(res.Trace, "vertex")
	if edge.Chunks == 0 || vertex.Chunks == 0 {
		t.Errorf("zero chunk counts: edge %d, vertex %d", edge.Chunks, vertex.Chunks)
	}
	if sum := traceWallSum(res.Trace); sum > res.Total {
		t.Errorf("sum of phase walls %v exceeds total %v", sum, res.Total)
	}
	// Phase walls also tile the coarse Result decomposition: edge-pull +
	// merge lands inside EdgeTime, vertex inside VertexTime.
	merge, _ := phaseByName(res.Trace, "merge")
	if edge.Wall+merge.Wall > res.EdgeTime {
		t.Errorf("edge-pull %v + merge %v exceeds EdgeTime %v", edge.Wall, merge.Wall, res.EdgeTime)
	}
	if vertex.Wall > res.VertexTime {
		t.Errorf("vertex wall %v exceeds VertexTime %v", vertex.Wall, res.VertexTime)
	}
}

// TestTraceHybridBFS checks the frontier-driven shape: the hybrid engine
// runs push on sparse frontiers, so the trace splits the edge iterations
// between the two engines and records sub-unit densities.
func TestTraceHybridBFS(t *testing.T) {
	g := gen.RMAT(12, 40000, gen.DefaultRMAT, 32)
	r := NewRunner(BuildGraph(g), Options{Workers: 4, Trace: true})
	defer r.Close()
	res := Run(r, apps.NewBFS(0), 50)
	if res.PushIterations == 0 {
		t.Skip("graph produced no push iterations; nothing to assert")
	}
	push, ok := phaseByName(res.Trace, "edge-push")
	if !ok {
		t.Fatalf("edge-push missing: %+v", res.Trace)
	}
	if int(push.Iters) != res.PushIterations {
		t.Errorf("edge-push iters = %d, want %d", push.Iters, res.PushIterations)
	}
	if pull, ok := phaseByName(res.Trace, "edge-pull"); ok {
		if int(pull.Iters) != res.PullIterations {
			t.Errorf("edge-pull iters = %d, want %d", pull.Iters, res.PullIterations)
		}
	}
	if push.MinDensity < 0 || push.MaxDensity > 1 || push.MinDensity > push.MaxDensity {
		t.Errorf("push density bounds [%v, %v] not sane", push.MinDensity, push.MaxDensity)
	}
	// Push runs only below the pull threshold (default 0.05).
	if push.MaxDensity >= 0.05 {
		t.Errorf("push ran at density %v, at or above the pull threshold", push.MaxDensity)
	}
	vertex, ok := phaseByName(res.Trace, "vertex")
	if !ok || int(vertex.Iters) != res.Iterations {
		t.Errorf("vertex iters = %+v, want one per iteration (%d)", vertex, res.Iterations)
	}
}

// TestTraceDisabled: without Options.Trace the result carries no trace and
// the run pays no tracing cost paths.
func TestTraceDisabled(t *testing.T) {
	g := gen.RMAT(8, 2000, gen.DefaultRMAT, 33)
	r := NewRunner(BuildGraph(g), Options{Workers: 2})
	defer r.Close()
	res := Run(r, apps.NewPageRank(g), 3)
	if len(res.Trace.Phases) != 0 || res.Trace.Dropped {
		t.Fatalf("trace populated without Options.Trace: %+v", res.Trace)
	}
}

// TestTraceWorkStealing: the stealing scheduler reports steal counts into
// the trace; results stay identical to the ticket scheduler.
func TestTraceWorkStealing(t *testing.T) {
	g := gen.RMAT(10, 8000, gen.DefaultRMAT, 34)
	r := NewRunner(BuildGraph(g), Options{Workers: 4, Trace: true, WorkStealing: true})
	defer r.Close()
	res := Run(r, apps.NewPageRank(g), 4)
	edge, ok := phaseByName(res.Trace, "edge-pull")
	if !ok {
		t.Fatalf("edge-pull missing: %+v", res.Trace)
	}
	if edge.Steals < 0 || edge.Steals > edge.Chunks {
		t.Errorf("steals %d out of range [0, %d]", edge.Steals, edge.Chunks)
	}
}

// TestTraceSparsePath: sparse-frontier iterations are traced as edge-push
// with the sparse vertex phase counted under vertex.
func TestTraceSparsePath(t *testing.T) {
	g := gen.RMAT(12, 40000, gen.DefaultRMAT, 35)
	r := NewRunner(BuildGraph(g), Options{Workers: 2, Trace: true, SparseFrontier: true})
	defer r.Close()
	res := Run(r, apps.NewBFS(0), 50)
	if res.SparseIterations == 0 {
		t.Skip("no sparse iterations selected")
	}
	if _, ok := phaseByName(res.Trace, "edge-push"); !ok {
		t.Fatalf("edge-push missing with sparse iterations: %+v", res.Trace)
	}
	vertex, ok := phaseByName(res.Trace, "vertex")
	if !ok || int(vertex.Iters) != res.Iterations {
		t.Errorf("vertex iters = %+v, want %d", vertex, res.Iterations)
	}
}

// TestTraceRecycledContextReset: a traced run on a recycled ExecContext must
// not inherit the previous run's phase stats.
func TestTraceRecycledContextReset(t *testing.T) {
	g := gen.RMAT(9, 4000, gen.DefaultRMAT, 36)
	r := NewRunner(BuildGraph(g), Options{Workers: 2, Trace: true})
	defer r.Close()
	first := Run(r, apps.NewPageRank(g), 4)
	second := Run(r, apps.NewPageRank(g), 4)
	fe, _ := phaseByName(first.Trace, "edge-pull")
	se, _ := phaseByName(second.Trace, "edge-pull")
	if fe.Iters != se.Iters || fe.Chunks != se.Chunks {
		t.Errorf("recycled context trace differs: first %+v, second %+v", fe, se)
	}
}

// TestTracePanicDoesNotFailRun is the obs/trace chaos case: a panic inside
// the phase-trace path must not fail the run — the trace is dropped, the
// run succeeds, and the results are bit-identical to an untraced run.
func TestTracePanicDoesNotFailRun(t *testing.T) {
	if !fault.Available() {
		t.Skip("failpoints compiled out")
	}
	g := gen.RMAT(10, 8000, gen.DefaultRMAT, 37)
	r := NewRunner(BuildGraph(g), Options{Workers: 4, Trace: true})
	defer r.Close()

	want := Run(r, apps.NewPageRank(g), 5).Props

	disarm, err := fault.Enable("obs/trace", "panic*1")
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	res, err := RunCtx(context.Background(), r, apps.NewPageRank(g), 5)
	if err != nil {
		t.Fatalf("traced run failed on trace panic: %v", err)
	}
	if !res.Trace.Dropped {
		t.Fatal("trace not marked dropped after trace-path panic")
	}
	if res.Iterations != 5 {
		t.Fatalf("iterations = %d, want 5", res.Iterations)
	}
	for v := range want {
		if res.Props[v] != want[v] {
			t.Fatalf("props diverged at %d after trace panic", v)
		}
	}

	// The failpoint budget is spent: the next run traces normally again.
	res2 := Run(r, apps.NewPageRank(g), 5)
	if res2.Trace.Dropped || len(res2.Trace.Phases) == 0 {
		t.Fatalf("tracing did not recover after one-shot panic: %+v", res2.Trace)
	}
}

// TestTraceErrorInjection: an error-mode failpoint at obs/trace is promoted
// to a contained panic — same drop semantics.
func TestTraceErrorInjection(t *testing.T) {
	if !fault.Available() {
		t.Skip("failpoints compiled out")
	}
	g := gen.RMAT(9, 4000, gen.DefaultRMAT, 38)
	r := NewRunner(BuildGraph(g), Options{Workers: 2, Trace: true})
	defer r.Close()
	disarm, err := fault.Enable("obs/trace", "error*1")
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	res, err := RunCtx(context.Background(), r, apps.NewPageRank(g), 3)
	if err != nil {
		t.Fatalf("run failed on injected trace error: %v", err)
	}
	if !res.Trace.Dropped {
		t.Fatal("trace not dropped on injected error")
	}
}
