package core

import (
	"math"

	"repro/internal/apps"
	"repro/internal/numa"
	"repro/internal/perfmodel"
	"repro/internal/sched"
	"repro/internal/vsparse"
)

// edgePullSAWide is the scheduler-aware pull kernel on the 512-bit (8-lane)
// Vector-Sparse encoding — the AVX-512 generalization of §4. Structure
// matches edgePullSA: chunk-local accumulation, direct stores on top-level
// transitions, per-chunk merge-buffer slots, no synchronization. Bookkeeping
// (transition check, destination decode, validity test) amortizes over 8
// edges instead of 4, at the cost of the extra padding Fig 9 quantifies.
func edgePullSAWide[P apps.Program](r *ExecContext, p P) {
	a := r.g.VSD8()
	total := a.NumVectors()
	if total == 0 {
		return
	}
	// Granularity is configured in 4-lane vectors; one wide vector covers
	// two of them, keeping chunk work comparable across widths.
	chunkSize := (r.opt.chunkSizeFor(r.g.VSD.NumVectors(), r.pool.Workers()) + 1) / 2
	identity := p.Identity()
	usesFrontier := p.UsesFrontier()
	tracksConv := p.TracksConverged()
	weighted := p.Weighted() && a.Weights != nil
	frontWords := r.front.Words()
	props, accum := r.props, r.accum
	rec := r.edgeRec
	fz := fuseFor(p, weighted)
	words := a.Words
	part := numa.PartitionEven(total, r.topo.Nodes)

	r.dispatch(part, chunkSize, rec, func(rg sched.Range, chunkID, tid, node int) {
		var c perfmodel.Counters
		base0 := rg.Lo * vsparse.WideLanes
		prev := uint32(vsparse.DecodeTopWide(words[base0 : base0+vsparse.WideLanes]))
		acc := identity
		for vi := rg.Lo; vi < rg.Hi; vi++ {
			base := vi * vsparse.WideLanes
			lanes := words[base : base+vsparse.WideLanes]
			dst := uint32(vsparse.DecodeTopWide(lanes))
			if dst != prev {
				if acc != identity {
					accum[prev] = p.Combine(accum[prev], acc)
					c.SharedWrites++
				}
				prev, acc = dst, identity
			}
			c.VectorsProcessed++
			if tracksConv && r.conv.Contains(dst) {
				for _, w := range lanes {
					if w&vsparse.ValidBit != 0 {
						c.FrontierSkips++
					} else {
						c.InvalidLanes++
					}
				}
				continue
			}
			// Full-vector fast path: all eight valid bits set.
			all := lanes[0]
			for _, w := range lanes[1:] {
				all &= w
			}
			if !usesFrontier && !r.opt.AblateFullVector && all>>63 != 0 {
				// Hoist the fused-operator switch off the lane loop, as
				// step4 does for the 4-lane kernel.
				switch fz.kind {
				case apps.FusedRankSum:
					s := math.Float64frombits(acc)
					if weighted {
						for lane, w := range lanes {
							n := w & vsparse.VertexMask
							s += math.Float64frombits(props[n]) * fz.scale[n] * float64(a.Weights[base+lane])
						}
					} else {
						for _, w := range lanes {
							n := w & vsparse.VertexMask
							s += math.Float64frombits(props[n]) * fz.scale[n]
						}
					}
					acc = math.Float64bits(s)
				case apps.FusedMinProp:
					for _, w := range lanes {
						if v := props[w&vsparse.VertexMask]; v < acc {
							acc = v
						}
					}
				case apps.FusedMinSrc:
					for _, w := range lanes {
						if n := w & vsparse.VertexMask; n < acc {
							acc = n
						}
					}
				default:
					for lane, w := range lanes {
						n := w & vsparse.VertexMask
						var wt float32
						if weighted {
							wt = a.Weights[base+lane]
						}
						acc = step(p, &fz, props, acc, n, wt)
					}
				}
				c.EdgesProcessed += vsparse.WideLanes
				c.TLSWrites += vsparse.WideLanes
				continue
			}
			for lane, w := range lanes {
				if w&vsparse.ValidBit == 0 {
					c.InvalidLanes++
					continue
				}
				n := w & vsparse.VertexMask
				if usesFrontier && frontWords[n>>6]&(1<<(n&63)) == 0 {
					c.FrontierSkips++
					continue
				}
				var wt float32
				if weighted {
					wt = a.Weights[base+lane]
				}
				acc = step(p, &fz, props, acc, n, wt)
				c.EdgesProcessed++
				c.TLSWrites++
			}
		}
		r.mergeBuf.Save(chunkID, prev, acc)
		rec.Record(tid, c)
	})
	mergeAccum(r, p, identity)
}
