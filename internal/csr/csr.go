// Package csr implements the two-level Compressed-Sparse format of the
// paper's Fig 2: a vertex index holding each top-level vertex's starting
// position in a flat edge array. Grouping by source gives CSR (the push
// engine's layout); grouping by destination gives CSC (the pull engine's
// layout). The scalar engines and all baselines run on this format; the
// Vector-Sparse format (package vsparse) is derived from it.
package csr

import (
	"fmt"

	"repro/internal/graph"
)

// Matrix is a Compressed-Sparse edge structure. For a CSR instance the
// top-level vertices are sources and Neigh holds destinations; for CSC it is
// the reverse.
type Matrix struct {
	// N is the number of top-level vertices; Index has length N+1.
	N int
	// Index maps a top-level vertex to its first edge in Neigh; the edges of
	// vertex v occupy Neigh[Index[v]:Index[v+1]].
	Index []uint64
	// Neigh holds the non-top-level endpoint of every edge.
	Neigh []uint32
	// Weights holds per-edge weights parallel to Neigh, or nil when the
	// source graph was unweighted.
	Weights []float32
	// ByDest records whether this is a CSC (true) or CSR (false) instance.
	ByDest bool
}

// NumEdges returns the number of edges stored.
func (m *Matrix) NumEdges() int { return len(m.Neigh) }

// MemoryBytes returns the heap footprint of the matrix's backing arrays.
func (m *Matrix) MemoryBytes() int64 {
	return int64(len(m.Index))*8 + int64(len(m.Neigh))*4 + int64(len(m.Weights))*4
}

// Degree returns the number of edges grouped under top-level vertex v.
func (m *Matrix) Degree(v uint32) int {
	return int(m.Index[v+1] - m.Index[v])
}

// Edges returns the neighbor slice of top-level vertex v.
func (m *Matrix) Edges(v uint32) []uint32 {
	return m.Neigh[m.Index[v]:m.Index[v+1]]
}

// EdgeWeights returns the weight slice of top-level vertex v; nil when the
// matrix is unweighted.
func (m *Matrix) EdgeWeights(v uint32) []float32 {
	if m.Weights == nil {
		return nil
	}
	return m.Weights[m.Index[v]:m.Index[v+1]]
}

// FromGraph builds a Compressed-Sparse matrix grouped by source (CSR,
// byDest=false) or destination (CSC, byDest=true). Within each group,
// neighbors appear in ascending order. The input graph is not modified.
func FromGraph(g *graph.Graph, byDest bool) *Matrix {
	n := g.NumVertices
	m := &Matrix{N: n, ByDest: byDest}
	m.Index = make([]uint64, n+1)

	key := func(e graph.Edge) uint32 {
		if byDest {
			return e.Dst
		}
		return e.Src
	}
	val := func(e graph.Edge) uint32 {
		if byDest {
			return e.Src
		}
		return e.Dst
	}

	// Counting sort by top-level vertex: stable, linear, and independent of
	// the input edge order.
	for _, e := range g.Edges {
		m.Index[key(e)+1]++
	}
	for v := 0; v < n; v++ {
		m.Index[v+1] += m.Index[v]
	}
	m.Neigh = make([]uint32, len(g.Edges))
	if g.Weighted {
		m.Weights = make([]float32, len(g.Edges))
	}
	cursor := make([]uint64, n)
	copy(cursor, m.Index[:n])
	for _, e := range g.Edges {
		k := key(e)
		pos := cursor[k]
		cursor[k]++
		m.Neigh[pos] = val(e)
		if g.Weighted {
			m.Weights[pos] = e.Weight
		}
	}
	// Ascending neighbor order within each group (insertion sort per group;
	// groups are typically short, and heavy groups are already nearly sorted
	// when the input came from a sorted edge list).
	for v := 0; v < n; v++ {
		lo, hi := m.Index[v], m.Index[v+1]
		sortGroup(m.Neigh[lo:hi], weightsOrNil(m.Weights, lo, hi))
	}
	return m
}

func weightsOrNil(w []float32, lo, hi uint64) []float32 {
	if w == nil {
		return nil
	}
	return w[lo:hi]
}

func sortGroup(neigh []uint32, w []float32) {
	for i := 1; i < len(neigh); i++ {
		nv := neigh[i]
		var wv float32
		if w != nil {
			wv = w[i]
		}
		j := i - 1
		for j >= 0 && neigh[j] > nv {
			neigh[j+1] = neigh[j]
			if w != nil {
				w[j+1] = w[j]
			}
			j--
		}
		neigh[j+1] = nv
		if w != nil {
			w[j+1] = wv
		}
	}
}

// ToGraph reconstructs the edge list the matrix encodes, always in
// (src, dst) orientation regardless of grouping.
func (m *Matrix) ToGraph() *graph.Graph {
	g := &graph.Graph{NumVertices: m.N, Weighted: m.Weights != nil}
	g.Edges = make([]graph.Edge, 0, len(m.Neigh))
	for v := uint32(0); int(v) < m.N; v++ {
		lo, hi := m.Index[v], m.Index[v+1]
		for i := lo; i < hi; i++ {
			e := graph.Edge{Src: v, Dst: m.Neigh[i]}
			if m.ByDest {
				e.Src, e.Dst = e.Dst, e.Src
			}
			if m.Weights != nil {
				e.Weight = m.Weights[i]
			}
			g.Edges = append(g.Edges, e)
		}
	}
	return g
}

// Transpose converts CSR to CSC or vice versa, preserving the edge set.
func (m *Matrix) Transpose() *Matrix {
	return FromGraph(m.ToGraph(), !m.ByDest)
}

// Validate checks structural invariants: a monotone index covering Neigh
// exactly, and in-range neighbor ids.
func (m *Matrix) Validate() error {
	if len(m.Index) != m.N+1 {
		return fmt.Errorf("csr: index length %d, want %d", len(m.Index), m.N+1)
	}
	if m.Index[0] != 0 {
		return fmt.Errorf("csr: index[0] = %d, want 0", m.Index[0])
	}
	for v := 0; v < m.N; v++ {
		if m.Index[v+1] < m.Index[v] {
			return fmt.Errorf("csr: index not monotone at %d", v)
		}
	}
	if m.Index[m.N] != uint64(len(m.Neigh)) {
		return fmt.Errorf("csr: index[N] = %d, want %d", m.Index[m.N], len(m.Neigh))
	}
	for i, nb := range m.Neigh {
		if int(nb) >= m.N {
			return fmt.Errorf("csr: neighbor %d at %d out of range", nb, i)
		}
	}
	if m.Weights != nil && len(m.Weights) != len(m.Neigh) {
		return fmt.Errorf("csr: %d weights for %d edges", len(m.Weights), len(m.Neigh))
	}
	return nil
}
