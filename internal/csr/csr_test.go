package csr

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

// fig2Graph reproduces the paper's Fig 2 example: the vertex index is
// [0 3 5 8 ...] and the edge array begins 10 23 50 | 54 62 | 10 0 14.
func fig2Graph() *graph.Graph {
	return graph.NewBuilder(64).
		AddEdge(0, 10).AddEdge(0, 23).AddEdge(0, 50).
		AddEdge(1, 54).AddEdge(1, 62).
		AddEdge(2, 10).AddEdge(2, 0).AddEdge(2, 14).
		MustBuild()
}

func TestFromGraphMatchesFig2(t *testing.T) {
	m := FromGraph(fig2Graph(), false)
	if got := m.Index[:4]; !reflect.DeepEqual(got, []uint64{0, 3, 5, 8}) {
		t.Errorf("index prefix = %v, want [0 3 5 8]", got)
	}
	if got := m.Neigh[:8]; !reflect.DeepEqual(got, []uint32{10, 23, 50, 54, 62, 0, 10, 14}) {
		// Within-group ascending order, so vertex 2's group is 0 10 14.
		t.Errorf("edge array = %v", got)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeAndEdges(t *testing.T) {
	m := FromGraph(fig2Graph(), false)
	if m.Degree(0) != 3 || m.Degree(1) != 2 || m.Degree(2) != 3 || m.Degree(3) != 0 {
		t.Errorf("degrees = %d %d %d %d", m.Degree(0), m.Degree(1), m.Degree(2), m.Degree(3))
	}
	if got := m.Edges(1); !reflect.DeepEqual(got, []uint32{54, 62}) {
		t.Errorf("Edges(1) = %v", got)
	}
	if m.EdgeWeights(1) != nil {
		t.Error("unweighted matrix returned weights")
	}
}

func TestCSCGroupsByDest(t *testing.T) {
	m := FromGraph(fig2Graph(), true)
	if !m.ByDest {
		t.Fatal("ByDest not set")
	}
	// Vertex 10 has in-edges from 0 and 2.
	if got := m.Edges(10); !reflect.DeepEqual(got, []uint32{0, 2}) {
		t.Errorf("in-neighbors of 10 = %v, want [0 2]", got)
	}
	if m.Degree(0) != 1 { // in-edge from 2
		t.Errorf("in-degree of 0 = %d, want 1", m.Degree(0))
	}
}

func canonical(g *graph.Graph) []graph.Edge {
	es := append([]graph.Edge(nil), g.Edges...)
	sort.Slice(es, func(i, j int) bool {
		if es[i].Src != es[j].Src {
			return es[i].Src < es[j].Src
		}
		return es[i].Dst < es[j].Dst
	})
	return es
}

func TestToGraphRoundTrip(t *testing.T) {
	g := fig2Graph()
	for _, byDest := range []bool{false, true} {
		m := FromGraph(g, byDest)
		back := m.ToGraph()
		if !reflect.DeepEqual(canonical(g), canonical(back)) {
			t.Errorf("byDest=%v: round trip lost edges", byDest)
		}
	}
}

func TestTransposeDuality(t *testing.T) {
	g := gen.RMAT(8, 600, gen.DefaultRMAT, 5)
	csrM := FromGraph(g, false)
	cscM := FromGraph(g, true)
	tr := csrM.Transpose()
	if !tr.ByDest {
		t.Fatal("transpose of CSR should be CSC")
	}
	if !reflect.DeepEqual(tr.Index, cscM.Index) || !reflect.DeepEqual(tr.Neigh, cscM.Neigh) {
		t.Error("Transpose(CSR) != direct CSC construction")
	}
}

func TestWeightsFollowEdges(t *testing.T) {
	g := graph.NewBuilder(4).
		AddWeightedEdge(0, 2, 5).
		AddWeightedEdge(0, 1, 3).
		AddWeightedEdge(2, 0, 7).
		MustBuild()
	m := FromGraph(g, false)
	// Vertex 0's neighbors sorted ascending: 1 (w=3), 2 (w=5).
	if got := m.Edges(0); !reflect.DeepEqual(got, []uint32{1, 2}) {
		t.Fatalf("neighbors = %v", got)
	}
	if w := m.EdgeWeights(0); w[0] != 3 || w[1] != 5 {
		t.Errorf("weights = %v, want [3 5]", w)
	}
	// And through a CSC + round trip the pairing must survive.
	back := FromGraph(g, true).ToGraph()
	want := map[[2]uint32]float32{{0, 2}: 5, {0, 1}: 3, {2, 0}: 7}
	for _, e := range back.Edges {
		if want[[2]uint32{e.Src, e.Dst}] != e.Weight {
			t.Errorf("edge %v carries weight %v", e, e.Weight)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := FromGraph(fig2Graph(), false)
	m.Index[1] = 99999
	if m.Validate() == nil {
		t.Error("Validate accepted a non-covering index")
	}
	m = FromGraph(fig2Graph(), false)
	m.Neigh[0] = 1 << 30
	if m.Validate() == nil {
		t.Error("Validate accepted an out-of-range neighbor")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(5).MustBuild()
	m := FromGraph(g, false)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumEdges() != 0 || m.Degree(4) != 0 {
		t.Error("empty graph produced edges")
	}
}

// TestRoundTripProperty: FromGraph/ToGraph preserves the multiset of edges
// for arbitrary random graphs, in both orientations.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, byDest bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 1
		b := graph.NewBuilder(n)
		for i := rng.Intn(300); i > 0; i-- {
			b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		}
		g := b.MustBuild()
		m := FromGraph(g, byDest)
		if m.Validate() != nil {
			return false
		}
		return reflect.DeepEqual(canonical(g), canonical(m.ToGraph()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestIndexCountsProperty: the index gaps equal the per-vertex degrees
// computed independently from the edge list.
func TestIndexCountsProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(30, 200, seed)
		m := FromGraph(g, true)
		in := g.InDegrees()
		for v := 0; v < g.NumVertices; v++ {
			if m.Degree(uint32(v)) != in[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
