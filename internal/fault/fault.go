//go:build !grazelle_nofault

// Package fault is a stdlib-only failpoint framework for chaos testing the
// serving stack. Production code marks fault injection sites with
// Inject("layer/site"); tests (or an operator, via the GRAZELLE_FAILPOINTS
// environment variable) arm those sites with a mode — return an error, panic,
// or delay — and an optional shot budget. Disarmed, a site costs a single
// atomic load, and the grazelle_nofault build tag compiles every site to a
// true no-op.
//
// Spec mini-language (used by Enable and the environment variable):
//
//	error                inject ErrInjected
//	error:<msg>          inject an error with the given message
//	panic                panic with an injected-panic message
//	delay:<duration>     sleep for the given time.ParseDuration duration
//	off                  disarm the site
//
// Any spec may carry a shot budget suffix "*N": the site fires on its first
// N evaluations and is a no-op afterwards ("panic*1" panics exactly once).
// GRAZELLE_FAILPOINTS holds a semicolon- or comma-separated list of
// name=spec entries, e.g.
//
//	GRAZELLE_FAILPOINTS='core/chunk=panic*1;store/rehydrate=error*2'
//
// Sites are free-form strings; by convention they name the layer and the
// operation ("store/snapshot-write"). The registered sites in this
// repository are listed in DESIGN.md's fault-model section.
package fault

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel wrapped by every error a failpoint injects, so
// recovery paths under test can recognize synthetic failures with errors.Is.
var ErrInjected = errors.New("fault: injected error")

// EnvVar is the environment variable consulted at process start.
const EnvVar = "GRAZELLE_FAILPOINTS"

// Mode is what an armed failpoint does when evaluated.
type Mode uint8

const (
	// ModeOff leaves the site disarmed.
	ModeOff Mode = iota
	// ModeError makes Inject return an error.
	ModeError
	// ModePanic makes Inject panic.
	ModePanic
	// ModeDelay makes Inject sleep, then return nil — for exercising
	// timeout and watchdog paths without real slow I/O.
	ModeDelay
)

// point is one armed failpoint.
type point struct {
	name  string
	mode  Mode
	err   error
	delay time.Duration
	// remaining is the shot budget (-1 = unlimited); hits counts fires.
	remaining atomic.Int64
	hits      atomic.Uint64
}

var (
	// armed short-circuits Inject when no site is active. table is a
	// copy-on-write map so Inject never takes a lock; mu serializes writers.
	armed atomic.Bool
	table atomic.Pointer[map[string]*point]
	mu    sync.Mutex
)

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := EnableFromSpec(spec); err != nil {
			fmt.Fprintf(os.Stderr, "fault: ignoring invalid %s: %v\n", EnvVar, err)
		}
	}
}

// Available reports whether failpoints are compiled into this build. Chaos
// tests skip themselves when it is false (grazelle_nofault builds).
func Available() bool { return true }

// Inject evaluates the named failpoint. Disarmed (the overwhelmingly common
// case) it returns nil after one atomic load. Armed, it consumes one shot
// from the budget and acts per the site's mode: ModeError returns the
// injected error, ModePanic panics with a recognizable message, ModeDelay
// sleeps and returns nil.
func Inject(name string) error {
	if !armed.Load() {
		return nil
	}
	tp := table.Load()
	if tp == nil {
		return nil
	}
	p := (*tp)[name]
	if p == nil || p.mode == ModeOff {
		return nil
	}
	// Consume a shot. A negative budget means unlimited.
	for {
		rem := p.remaining.Load()
		if rem == 0 {
			return nil
		}
		if rem < 0 || p.remaining.CompareAndSwap(rem, rem-1) {
			break
		}
	}
	p.hits.Add(1)
	switch p.mode {
	case ModeError:
		return p.err
	case ModePanic:
		panic(fmt.Sprintf("fault: injected panic at %q", name))
	case ModeDelay:
		time.Sleep(p.delay)
	}
	return nil
}

// Enable arms the named failpoint with a spec (see the package comment for
// the mini-language). It returns a disarm function for use with defer in
// tests. Re-enabling a site replaces its previous arming and resets its hit
// count.
func Enable(name, spec string) (disarm func(), err error) {
	p, err := parseSpec(name, spec)
	if err != nil {
		return nil, err
	}
	set(name, p)
	return func() { Disable(name) }, nil
}

// EnableFromSpec arms every site in a semicolon- or comma-separated list of
// name=spec entries — the GRAZELLE_FAILPOINTS format.
func EnableFromSpec(list string) error {
	for _, ent := range strings.FieldsFunc(list, func(r rune) bool { return r == ';' || r == ',' }) {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		name, spec, ok := strings.Cut(ent, "=")
		if !ok {
			return fmt.Errorf("fault: malformed entry %q (want name=spec)", ent)
		}
		if _, err := Enable(strings.TrimSpace(name), strings.TrimSpace(spec)); err != nil {
			return err
		}
	}
	return nil
}

// Disable disarms the named failpoint.
func Disable(name string) { set(name, nil) }

// Reset disarms every failpoint.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	table.Store(nil)
	armed.Store(false)
}

// Hits reports how many times the named failpoint has fired since it was
// last enabled.
func Hits(name string) uint64 {
	if tp := table.Load(); tp != nil {
		if p := (*tp)[name]; p != nil {
			return p.hits.Load()
		}
	}
	return 0
}

// set installs (or, with nil, removes) a point under the copy-on-write
// discipline.
func set(name string, p *point) {
	mu.Lock()
	defer mu.Unlock()
	old := table.Load()
	nw := make(map[string]*point)
	if old != nil {
		for k, v := range *old {
			nw[k] = v
		}
	}
	if p == nil {
		delete(nw, name)
	} else {
		nw[name] = p
	}
	if len(nw) == 0 {
		table.Store(nil)
		armed.Store(false)
		return
	}
	table.Store(&nw)
	armed.Store(true)
}

// parseSpec builds a point from the spec mini-language.
func parseSpec(name, spec string) (*point, error) {
	shots := int64(-1)
	if base, n, ok := strings.Cut(spec, "*"); ok {
		v, err := strconv.ParseInt(n, 10, 64)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("fault: bad shot budget in %q", spec)
		}
		shots = v
		spec = base
	}
	mode, arg, _ := strings.Cut(spec, ":")
	p := &point{name: name}
	p.remaining.Store(shots)
	switch mode {
	case "off":
		return nil, nil
	case "error":
		p.mode = ModeError
		if arg != "" {
			p.err = fmt.Errorf("fault: %s at %q: %w", arg, name, ErrInjected)
		} else {
			p.err = fmt.Errorf("fault: injected error at %q: %w", name, ErrInjected)
		}
	case "panic":
		p.mode = ModePanic
	case "delay":
		d, err := time.ParseDuration(arg)
		if err != nil {
			return nil, fmt.Errorf("fault: bad delay in %q: %v", spec, err)
		}
		p.mode = ModeDelay
		p.delay = d
	default:
		return nil, fmt.Errorf("fault: unknown mode %q (want error, panic, delay, off)", mode)
	}
	return p, nil
}
