//go:build grazelle_nofault

// Build with -tags grazelle_nofault to compile every failpoint site to a
// true no-op: Inject is an empty inlinable function, so not even the
// disarmed atomic load remains in production binaries.
package fault

import "errors"

// ErrInjected is the sentinel wrapped by injected errors in fault-enabled
// builds; nothing produces it here.
var ErrInjected = errors.New("fault: injected error")

// EnvVar is the environment variable consulted in fault-enabled builds;
// ignored here.
const EnvVar = "GRAZELLE_FAILPOINTS"

// Mode is what an armed failpoint does when evaluated.
type Mode uint8

// Modes (inert in this build).
const (
	ModeOff Mode = iota
	ModeError
	ModePanic
	ModeDelay
)

// Available reports whether failpoints are compiled into this build.
func Available() bool { return false }

// Inject is a no-op in this build.
func Inject(name string) error { return nil }

// Enable reports that failpoints are compiled out.
func Enable(name, spec string) (disarm func(), err error) {
	return nil, errors.New("fault: failpoints compiled out (grazelle_nofault)")
}

// EnableFromSpec reports that failpoints are compiled out.
func EnableFromSpec(list string) error {
	return errors.New("fault: failpoints compiled out (grazelle_nofault)")
}

// Disable is a no-op in this build.
func Disable(name string) {}

// Reset is a no-op in this build.
func Reset() {}

// Hits always reports zero in this build.
func Hits(name string) uint64 { return 0 }
