//go:build !grazelle_nofault

package fault

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestInjectDisarmedIsNil(t *testing.T) {
	Reset()
	if err := Inject("nobody/armed"); err != nil {
		t.Fatalf("disarmed Inject = %v, want nil", err)
	}
}

func TestErrorMode(t *testing.T) {
	Reset()
	disarm, err := Enable("a/b", "error")
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	got := Inject("a/b")
	if !errors.Is(got, ErrInjected) {
		t.Fatalf("Inject = %v, want ErrInjected", got)
	}
	if !strings.Contains(got.Error(), "a/b") {
		t.Errorf("error %q does not name the site", got)
	}
	if Inject("a/other") != nil {
		t.Error("unrelated site fired")
	}
	if Hits("a/b") != 1 {
		t.Errorf("Hits = %d, want 1", Hits("a/b"))
	}
}

func TestErrorModeCustomMessage(t *testing.T) {
	Reset()
	defer Reset()
	if _, err := Enable("x", "error:disk on fire"); err != nil {
		t.Fatal(err)
	}
	got := Inject("x")
	if !errors.Is(got, ErrInjected) || !strings.Contains(got.Error(), "disk on fire") {
		t.Fatalf("Inject = %v", got)
	}
}

func TestPanicMode(t *testing.T) {
	Reset()
	defer Reset()
	if _, err := Enable("p", "panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Inject did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, `"p"`) {
			t.Errorf("panic value %v does not name the site", r)
		}
	}()
	Inject("p")
}

func TestDelayMode(t *testing.T) {
	Reset()
	defer Reset()
	if _, err := Enable("d", "delay:30ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject("d"); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Errorf("delay injection returned after %v, want >= 30ms", el)
	}
}

func TestShotBudget(t *testing.T) {
	Reset()
	defer Reset()
	if _, err := Enable("s", "error*2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if Inject("s") == nil {
			t.Fatalf("shot %d did not fire", i)
		}
	}
	if err := Inject("s"); err != nil {
		t.Fatalf("exhausted budget still fired: %v", err)
	}
	if Hits("s") != 2 {
		t.Errorf("Hits = %d, want 2", Hits("s"))
	}
}

func TestShotBudgetConcurrent(t *testing.T) {
	Reset()
	defer Reset()
	if _, err := Enable("c", "error*5"); err != nil {
		t.Fatal(err)
	}
	var fired sync.WaitGroup
	var n int64
	var mu sync.Mutex
	for i := 0; i < 64; i++ {
		fired.Add(1)
		go func() {
			defer fired.Done()
			if Inject("c") != nil {
				mu.Lock()
				n++
				mu.Unlock()
			}
		}()
	}
	fired.Wait()
	if n != 5 {
		t.Errorf("fired %d times under contention, want exactly 5", n)
	}
}

func TestEnableFromSpec(t *testing.T) {
	Reset()
	defer Reset()
	if err := EnableFromSpec("one=error*1; two=delay:1ms, three=panic"); err != nil {
		t.Fatal(err)
	}
	if Inject("one") == nil {
		t.Error("one not armed")
	}
	if Inject("two") != nil {
		t.Error("two (delay) returned an error")
	}
	func() {
		defer func() { recover() }()
		Inject("three")
		t.Error("three did not panic")
	}()
	if err := EnableFromSpec("oops"); err == nil {
		t.Error("malformed entry accepted")
	}
	if err := EnableFromSpec("a=wat"); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := EnableFromSpec("a=error*0"); err == nil {
		t.Error("zero shot budget accepted")
	}
}

func TestOffAndDisable(t *testing.T) {
	Reset()
	defer Reset()
	disarm, err := Enable("o", "error")
	if err != nil {
		t.Fatal(err)
	}
	disarm()
	if Inject("o") != nil {
		t.Error("disarmed site fired")
	}
	if _, err := Enable("o", "off"); err != nil {
		t.Fatal(err)
	}
	if Inject("o") != nil {
		t.Error("off site fired")
	}
}
