// Package frontier provides the active-vertex set representations used by
// the engines. Grazelle itself uses only the dense bitmask (§5 of the
// paper: one bit per vertex, searched a word at a time with the tzcnt
// idiom); the Ligra baseline additionally uses a sparse list and switches
// between the two by density.
package frontier

import "math/bits"

// Dense is a bitmask frontier: bit v set means vertex v is active. The
// paper chose this representation for compactness (1 billion vertices in
// 125 MB) and constant-time membership.
type Dense struct {
	words []uint64
	n     int
}

// NewDense creates an empty dense frontier over n vertices.
func NewDense(n int) *Dense {
	return &Dense{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of vertices the frontier ranges over.
func (d *Dense) Len() int { return d.n }

// Words exposes the raw bitmask for vectorized membership tests
// (vec.TestBits) and word-level iteration.
func (d *Dense) Words() []uint64 { return d.words }

// Add marks vertex v active.
func (d *Dense) Add(v uint32) { d.words[v>>6] |= 1 << (v & 63) }

// Remove marks vertex v inactive.
func (d *Dense) Remove(v uint32) { d.words[v>>6] &^= 1 << (v & 63) }

// Contains reports whether vertex v is active.
func (d *Dense) Contains(v uint32) bool {
	return d.words[v>>6]&(1<<(v&63)) != 0
}

// Clear deactivates every vertex.
func (d *Dense) Clear() {
	for i := range d.words {
		d.words[i] = 0
	}
}

// Fill activates every vertex.
func (d *Dense) Fill() {
	for i := range d.words {
		d.words[i] = ^uint64(0)
	}
	d.trimTail()
}

// trimTail clears bits beyond n in the last word.
func (d *Dense) trimTail() {
	if rem := d.n & 63; rem != 0 && len(d.words) > 0 {
		d.words[len(d.words)-1] &= (1 << rem) - 1
	}
}

// Count returns the number of active vertices.
func (d *Dense) Count() int {
	c := 0
	for _, w := range d.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no vertex is active.
func (d *Dense) Empty() bool {
	for _, w := range d.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Density is the active fraction, the quantity hybrid engines switch on.
func (d *Dense) Density() float64 {
	if d.n == 0 {
		return 0
	}
	return float64(d.Count()) / float64(d.n)
}

// ForEach visits every active vertex in ascending order using word-at-a-time
// scanning with trailing-zero counts — the tzcnt technique the paper cites
// for searching 64 vertices per instruction.
func (d *Dense) ForEach(fn func(v uint32)) {
	for wi, w := range d.words {
		base := uint32(wi) << 6
		for w != 0 {
			fn(base + uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// CopyFrom overwrites this frontier with the contents of src (same length).
func (d *Dense) CopyFrom(src *Dense) {
	copy(d.words, src.words)
}

// Clone returns an independent copy.
func (d *Dense) Clone() *Dense {
	out := NewDense(d.n)
	copy(out.words, d.words)
	return out
}

// ToSparse extracts the active vertices as a sorted list.
func (d *Dense) ToSparse() *Sparse {
	s := &Sparse{n: d.n, verts: make([]uint32, 0, d.Count())}
	d.ForEach(func(v uint32) { s.verts = append(s.verts, v) })
	return s
}

// Sparse is a list-of-vertices frontier, efficient when few vertices are
// active (Ligra's sparse representation). Vertices are kept sorted and
// unique.
type Sparse struct {
	verts []uint32
	n     int
}

// NewSparse creates an empty sparse frontier over n vertices.
func NewSparse(n int) *Sparse { return &Sparse{n: n} }

// Len returns the number of vertices the frontier ranges over.
func (s *Sparse) Len() int { return s.n }

// Vertices returns the sorted active list; callers must not modify it.
func (s *Sparse) Vertices() []uint32 { return s.verts }

// Count returns the number of active vertices.
func (s *Sparse) Count() int { return len(s.verts) }

// Empty reports whether no vertex is active.
func (s *Sparse) Empty() bool { return len(s.verts) == 0 }

// Density is the active fraction.
func (s *Sparse) Density() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(len(s.verts)) / float64(s.n)
}

// AddUnsorted appends a vertex without maintaining order; call Normalize
// before reading.
func (s *Sparse) AddUnsorted(v uint32) { s.verts = append(s.verts, v) }

// Normalize sorts and deduplicates the list.
func (s *Sparse) Normalize() {
	if len(s.verts) < 2 {
		return
	}
	sortU32(s.verts)
	out := s.verts[:1]
	for _, v := range s.verts[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	s.verts = out
}

// ToDense converts to the bitmask representation.
func (s *Sparse) ToDense() *Dense {
	d := NewDense(s.n)
	for _, v := range s.verts {
		d.Add(v)
	}
	return d
}

func sortU32(a []uint32) {
	// Insertion sort for short lists, else a simple bottom-up radix pass
	// (frontiers can be large; avoid O(n^2)).
	if len(a) <= 32 {
		for i := 1; i < len(a); i++ {
			v := a[i]
			j := i - 1
			for j >= 0 && a[j] > v {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = v
		}
		return
	}
	buf := make([]uint32, len(a))
	var counts [256]int
	for shift := 0; shift < 32; shift += 8 {
		for i := range counts {
			counts[i] = 0
		}
		for _, v := range a {
			counts[(v>>shift)&0xFF]++
		}
		sum := 0
		for i := range counts {
			counts[i], sum = sum, sum+counts[i]
		}
		for _, v := range a {
			b := (v >> shift) & 0xFF
			buf[counts[b]] = v
			counts[b]++
		}
		a, buf = buf, a
	}
	// 4 passes: result already back in the original slice.
}
