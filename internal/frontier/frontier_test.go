package frontier

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	d := NewDense(130)
	if d.Len() != 130 || !d.Empty() || d.Count() != 0 {
		t.Fatal("new frontier not empty")
	}
	d.Add(0)
	d.Add(63)
	d.Add(64)
	d.Add(129)
	if d.Count() != 4 {
		t.Errorf("Count = %d, want 4", d.Count())
	}
	for _, v := range []uint32{0, 63, 64, 129} {
		if !d.Contains(v) {
			t.Errorf("Contains(%d) = false", v)
		}
	}
	if d.Contains(1) || d.Contains(128) {
		t.Error("Contains reports inactive vertex")
	}
	d.Remove(63)
	if d.Contains(63) || d.Count() != 3 {
		t.Error("Remove failed")
	}
}

func TestDenseFillRespectsLength(t *testing.T) {
	d := NewDense(70)
	d.Fill()
	if d.Count() != 70 {
		t.Errorf("after Fill, Count = %d, want 70", d.Count())
	}
	if d.Density() != 1 {
		t.Errorf("Density = %v, want 1", d.Density())
	}
	d.Clear()
	if !d.Empty() {
		t.Error("Clear left bits set")
	}
}

func TestDenseForEachAscending(t *testing.T) {
	d := NewDense(200)
	want := []uint32{3, 64, 65, 127, 128, 199}
	for _, v := range want {
		d.Add(v)
	}
	var got []uint32
	d.ForEach(func(v uint32) { got = append(got, v) })
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ForEach order = %v, want %v", got, want)
	}
}

func TestDenseCloneAndCopy(t *testing.T) {
	d := NewDense(100)
	d.Add(42)
	c := d.Clone()
	c.Add(7)
	if d.Contains(7) {
		t.Error("Clone aliases original")
	}
	e := NewDense(100)
	e.CopyFrom(c)
	if !e.Contains(7) || !e.Contains(42) {
		t.Error("CopyFrom lost bits")
	}
}

func TestSparseNormalize(t *testing.T) {
	s := NewSparse(100)
	for _, v := range []uint32{9, 3, 9, 1, 3, 99} {
		s.AddUnsorted(v)
	}
	s.Normalize()
	if !reflect.DeepEqual(s.Vertices(), []uint32{1, 3, 9, 99}) {
		t.Errorf("Normalize = %v", s.Vertices())
	}
	if s.Count() != 4 || s.Empty() {
		t.Error("Count/Empty wrong after Normalize")
	}
}

func TestSparseNormalizeLarge(t *testing.T) {
	// Exercise the radix-sort path (> 32 elements).
	rng := rand.New(rand.NewSource(5))
	s := NewSparse(1 << 20)
	want := map[uint32]bool{}
	for i := 0; i < 500; i++ {
		v := uint32(rng.Intn(1 << 20))
		s.AddUnsorted(v)
		want[v] = true
	}
	s.Normalize()
	got := s.Vertices()
	if len(got) != len(want) {
		t.Fatalf("Normalize kept %d, want %d", len(got), len(want))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("Normalize output not sorted")
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("Normalize invented vertex %d", v)
		}
	}
}

func TestConversionRoundTrip(t *testing.T) {
	d := NewDense(300)
	for _, v := range []uint32{0, 5, 64, 255, 299} {
		d.Add(v)
	}
	back := d.ToSparse().ToDense()
	if !reflect.DeepEqual(d.Words(), back.Words()) {
		t.Error("dense -> sparse -> dense changed contents")
	}
}

func TestDensity(t *testing.T) {
	d := NewDense(100)
	for v := uint32(0); v < 25; v++ {
		d.Add(v)
	}
	if d.Density() != 0.25 {
		t.Errorf("Density = %v, want 0.25", d.Density())
	}
	s := d.ToSparse()
	if s.Density() != 0.25 {
		t.Errorf("sparse Density = %v, want 0.25", s.Density())
	}
	var empty Dense
	if empty.Density() != 0 {
		t.Error("zero-length Density should be 0")
	}
}

// Property: membership after a random add/remove sequence matches a map.
func TestDenseSetSemanticsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500) + 1
		d := NewDense(n)
		ref := map[uint32]bool{}
		for i := 0; i < 200; i++ {
			v := uint32(rng.Intn(n))
			if rng.Intn(3) == 0 {
				d.Remove(v)
				delete(ref, v)
			} else {
				d.Add(v)
				ref[v] = true
			}
		}
		if d.Count() != len(ref) {
			return false
		}
		ok := true
		d.ForEach(func(v uint32) {
			if !ref[v] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: ToSparse produces exactly the vertices ForEach visits.
func TestSparseDenseAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 1
		d := NewDense(n)
		for i := 0; i < 100; i++ {
			d.Add(uint32(rng.Intn(n)))
		}
		var fromEach []uint32
		d.ForEach(func(v uint32) { fromEach = append(fromEach, v) })
		return reflect.DeepEqual(fromEach, append([]uint32(nil), d.ToSparse().Vertices()...))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
