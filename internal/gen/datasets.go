package gen

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Dataset identifies one of the six Table 1 inputs by the paper's
// single-letter abbreviation.
type Dataset byte

// The six evaluation datasets of the paper's Table 1.
const (
	CitPatents  Dataset = 'C' // cit-Patents: 3.7M vertices, 16.5M edges, mild skew
	DimacsUSA   Dataset = 'D' // dimacs-usa: 23.9M/58.3M, road mesh, degree ~2.4
	LiveJournal Dataset = 'L' // livejournal: 4.8M/69.0M, social, moderate skew
	Twitter     Dataset = 'T' // twitter-2010: 41.7M/1.47B, heavy-tailed
	Friendster  Dataset = 'F' // friendster: 65.6M/1.81B, heavy-tailed
	UK2007      Dataset = 'U' // uk-2007: 105.9M/3.74B, the most skewed in-degrees
)

// AllDatasets lists the datasets in the order the paper's plots use.
var AllDatasets = []Dataset{CitPatents, DimacsUSA, LiveJournal, Twitter, Friendster, UK2007}

// String returns the full dataset name.
func (d Dataset) String() string {
	switch d {
	case CitPatents:
		return "cit-Patents"
	case DimacsUSA:
		return "dimacs-usa"
	case LiveJournal:
		return "livejournal"
	case Twitter:
		return "twitter-2010"
	case Friendster:
		return "friendster"
	case UK2007:
		return "uk-2007"
	default:
		return fmt.Sprintf("Dataset(%q)", byte(d))
	}
}

// Abbrev returns the single-letter abbreviation used in the paper's plots.
func (d Dataset) Abbrev() string { return string(byte(d)) }

// ParseDataset resolves a name or single-letter abbreviation.
func ParseDataset(s string) (Dataset, error) {
	for _, d := range AllDatasets {
		if s == d.String() || s == d.Abbrev() {
			return d, nil
		}
	}
	return 0, fmt.Errorf("gen: unknown dataset %q (want one of C,D,L,T,F,U)", s)
}

// Recipe describes how the synthetic analog of one dataset is produced.
// Vertex and edge counts at Scale 1.0 approximate each original divided by
// 2^12 (≈ 4096×), which keeps the most expensive benchmark (the uk-2007
// analog) under a million edges; Scale linearly multiplies edge counts and
// shifts the R-MAT vertex scale to keep average degree fixed.
type Recipe struct {
	Dataset   Dataset
	RMATScale int        // log2 vertices at Scale 1.0 (0 for the mesh)
	EdgesK    int        // thousand edges at Scale 1.0
	Params    RMATParams // quadrant skew (ignored for the mesh)
	MeshRows  int        // mesh dimensions at Scale 1.0 (DimacsUSA only)
	MeshCols  int
}

// recipes maps each dataset to its analog. Skew ordering follows §6 of the
// paper: dimacs-usa is near-constant degree; cit-Patents mild; livejournal
// moderate; twitter and friendster heavy-tailed; uk-2007 the most skewed
// (over 10× more vertices of in-degree ≥ 100k than twitter).
var recipes = map[Dataset]Recipe{
	CitPatents:  {Dataset: CitPatents, RMATScale: 10, EdgesK: 4, Params: RMATParams{A: 0.45, B: 0.22, C: 0.22, D: 0.11}},
	DimacsUSA:   {Dataset: DimacsUSA, MeshRows: 72, MeshCols: 81, EdgesK: 23},
	LiveJournal: {Dataset: LiveJournal, RMATScale: 10, EdgesK: 17, Params: RMATParams{A: 0.52, B: 0.20, C: 0.20, D: 0.08}},
	Twitter:     {Dataset: Twitter, RMATScale: 13, EdgesK: 360, Params: RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05}},
	Friendster:  {Dataset: Friendster, RMATScale: 14, EdgesK: 440, Params: RMATParams{A: 0.55, B: 0.19, C: 0.19, D: 0.07}},
	UK2007:      {Dataset: UK2007, RMATScale: 14, EdgesK: 910, Params: RMATParams{A: 0.68, B: 0.16, C: 0.11, D: 0.05}},
}

// RecipeFor returns the generation recipe of a dataset.
func RecipeFor(d Dataset) Recipe { return recipes[d] }

// OriginalSize returns the vertex and edge counts of the real dataset
// (Table 1 of the paper). The edge counts drive the fidelity checks that
// depend on original scale — e.g. GraphMat's 32-bit edge indexing cannot
// load uk-2007's 3.74 B edges.
func OriginalSize(d Dataset) (vertices, edges int64) {
	switch d {
	case CitPatents:
		return 3_700_000, 16_500_000
	case DimacsUSA:
		return 23_900_000, 58_300_000
	case LiveJournal:
		return 4_800_000, 69_000_000
	case Twitter:
		return 41_700_000, 1_470_000_000
	case Friendster:
		return 65_600_000, 1_810_000_000
	case UK2007:
		return 105_900_000, 3_740_000_000
	default:
		return 0, 0
	}
}

// Generate builds the analog of dataset d at the given scale (1.0 is the
// default benchmark size). The result is deterministic per (d, scale).
func Generate(d Dataset, scale float64) *graph.Graph {
	r := recipes[d]
	seed := int64(d) * 7919
	edges := int(float64(r.EdgesK) * 1000 * scale)
	if d == DimacsUSA {
		f := meshFactor(scale)
		return Grid(int(float64(r.MeshRows)*f), int(float64(r.MeshCols)*f), false, seed)
	}
	rs := r.RMATScale
	for s := scale; s >= 4; s /= 4 {
		rs += 2 // keep average degree roughly constant as edges scale up
	}
	return RMAT(rs, edges, r.Params, seed)
}

// meshFactor converts an edge-scale factor into a side-length factor for the
// 2-D mesh (edges grow quadratically in side length).
func meshFactor(scale float64) float64 {
	f := 1.0
	for ; scale >= 4; scale /= 4 {
		f *= 2
	}
	if scale > 1 {
		f *= 1 + (scale-1)/3 // sub-4x remainder, approximately linearized
	}
	return f
}

// Stats summarizes a generated graph for the Table 1 report.
type Stats struct {
	Dataset     Dataset
	Vertices    int
	Edges       int
	AvgDegree   float64
	MaxInDegree int
	// P99InDegree is the 99th-percentile in-degree, a skew indicator.
	P99InDegree int
}

// Measure computes summary statistics of a generated analog.
func Measure(d Dataset, g *graph.Graph) Stats {
	in := g.InDegrees()
	sorted := append([]int(nil), in...)
	sort.Ints(sorted)
	p99 := 0
	if len(sorted) > 0 {
		p99 = sorted[len(sorted)*99/100]
	}
	return Stats{
		Dataset:     d,
		Vertices:    g.NumVertices,
		Edges:       g.NumEdges(),
		AvgDegree:   g.AvgDegree(),
		MaxInDegree: graph.MaxDegree(in),
		P99InDegree: p99,
	}
}
