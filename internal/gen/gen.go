// Package gen produces the synthetic input graphs used throughout the
// evaluation. Real-world datasets from the paper's Table 1 (cit-Patents,
// dimacs-usa, livejournal, twitter-2010, friendster, uk-2007) are not
// redistributable at multi-billion-edge scale, so each one is substituted by
// a deterministic generator whose degree-distribution character matches the
// original: a 2-D mesh for the road network and R-MAT instances with
// per-graph skew for the scale-free graphs (see DESIGN.md §2).
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// RMATParams are the four R-MAT quadrant probabilities (Chakrabarti et al.,
// SDM '04) — the generator X-Stream ships and the paper's Fig 9b uses.
// They must sum to 1.
type RMATParams struct {
	A, B, C, D float64
}

// Validate checks the probabilities form a distribution.
func (p RMATParams) Validate() error {
	sum := p.A + p.B + p.C + p.D
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("gen: R-MAT parameters sum to %v, want 1", sum)
	}
	if p.A < 0 || p.B < 0 || p.C < 0 || p.D < 0 {
		return fmt.Errorf("gen: negative R-MAT parameter in %+v", p)
	}
	return nil
}

// DefaultRMAT is the standard Graph500-style parameterization.
var DefaultRMAT = RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05}

// RMAT generates a directed R-MAT graph with 2^scale vertices and numEdges
// edges, deterministically from seed. Self-loops are removed and duplicate
// edges are kept (as in the reference generator); the result is sorted by
// source.
func RMAT(scale int, numEdges int, p RMATParams, seed int64) *graph.Graph {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	n := 1 << scale
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, numEdges)
	for len(edges) < numEdges {
		src, dst := rmatPick(scale, p, rng)
		if src == dst {
			continue
		}
		edges = append(edges, graph.Edge{Src: src, Dst: dst})
	}
	g := &graph.Graph{NumVertices: n, Edges: edges}
	g.SortBySource()
	return g
}

func rmatPick(scale int, p RMATParams, rng *rand.Rand) (src, dst uint32) {
	for bit := 0; bit < scale; bit++ {
		r := rng.Float64()
		switch {
		case r < p.A:
			// top-left: neither bit set
		case r < p.A+p.B:
			dst |= 1 << bit
		case r < p.A+p.B+p.C:
			src |= 1 << bit
		default:
			src |= 1 << bit
			dst |= 1 << bit
		}
	}
	return src, dst
}

// Grid generates a 2-D mesh of rows × cols vertices with bidirectional edges
// between 4-neighbors — the analog of a road network such as dimacs-usa
// (low, near-constant degree, huge diameter). Weighted variants get uniform
// random weights in [1, 10).
func Grid(rows, cols int, weighted bool, seed int64) *graph.Graph {
	n := rows * cols
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	if weighted {
		b.SetWeighted()
	}
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	addBoth := func(u, v uint32) {
		if weighted {
			w := 1 + rng.Float32()*9
			b.AddWeightedEdge(u, v, w)
			b.AddWeightedEdge(v, u, w)
		} else {
			b.AddEdge(u, v)
			b.AddEdge(v, u)
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				addBoth(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				addBoth(id(r, c), id(r+1, c))
			}
		}
	}
	g := b.MustBuild()
	g.SortBySource()
	return g
}

// ErdosRenyi generates a uniform random directed graph with n vertices and
// numEdges edges (self-loops excluded, duplicates possible).
func ErdosRenyi(n, numEdges int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, numEdges)
	for len(edges) < numEdges {
		src := uint32(rng.Intn(n))
		dst := uint32(rng.Intn(n))
		if src == dst {
			continue
		}
		edges = append(edges, graph.Edge{Src: src, Dst: dst})
	}
	g := &graph.Graph{NumVertices: n, Edges: edges}
	g.SortBySource()
	return g
}

// AddUniformWeights returns a copy of g with uniform random weights in
// [1, 10), for the weighted applications (SSSP, Collaborative-Filtering-like
// kernels).
func AddUniformWeights(g *graph.Graph, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	out := g.Clone()
	out.Weighted = true
	for i := range out.Edges {
		out.Edges[i].Weight = 1 + rng.Float32()*9
	}
	return out
}
