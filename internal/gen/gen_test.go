package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(8, 1000, DefaultRMAT, 42)
	b := RMAT(8, 1000, DefaultRMAT, 42)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a.Edges[i], b.Edges[i])
		}
	}
	c := RMAT(8, 1000, DefaultRMAT, 43)
	same := true
	for i := range a.Edges {
		if a.Edges[i] != c.Edges[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestRMATShape(t *testing.T) {
	g := RMAT(10, 5000, DefaultRMAT, 1)
	if g.NumVertices != 1024 {
		t.Errorf("NumVertices = %d, want 1024", g.NumVertices)
	}
	if g.NumEdges() != 5000 {
		t.Errorf("NumEdges = %d, want 5000", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges {
		if e.Src == e.Dst {
			t.Fatal("R-MAT emitted a self loop")
		}
	}
}

func TestRMATSkewIncreasesWithA(t *testing.T) {
	mild := RMAT(12, 40000, RMATParams{A: 0.30, B: 0.25, C: 0.25, D: 0.20}, 7)
	skewed := RMAT(12, 40000, RMATParams{A: 0.70, B: 0.15, C: 0.10, D: 0.05}, 7)
	if graph.MaxDegree(skewed.InDegrees()) <= graph.MaxDegree(mild.InDegrees()) {
		t.Errorf("higher A should yield higher max in-degree: mild=%d skewed=%d",
			graph.MaxDegree(mild.InDegrees()), graph.MaxDegree(skewed.InDegrees()))
	}
}

func TestRMATValidatesParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RMAT accepted parameters that do not sum to 1")
		}
	}()
	RMAT(4, 10, RMATParams{A: 0.9, B: 0.9, C: 0, D: 0}, 1)
}

func TestGridStructure(t *testing.T) {
	g := Grid(3, 4, false, 1)
	if g.NumVertices != 12 {
		t.Errorf("NumVertices = %d, want 12", g.NumVertices)
	}
	// Undirected mesh edges: rows*(cols-1) + (rows-1)*cols horizontal+vertical
	// pairs, each stored as two directed edges.
	want := 2 * (3*3 + 2*4)
	if g.NumEdges() != want {
		t.Errorf("NumEdges = %d, want %d", g.NumEdges(), want)
	}
	// Mesh degree is bounded by 4.
	for v, d := range g.OutDegrees() {
		if d > 4 || d < 2 {
			t.Fatalf("vertex %d has out-degree %d, want 2..4", v, d)
		}
	}
	// Symmetry: in-degree equals out-degree everywhere.
	in := g.InDegrees()
	for v, d := range g.OutDegrees() {
		if in[v] != d {
			t.Fatalf("vertex %d: in %d != out %d", v, in[v], d)
		}
	}
}

func TestGridWeightedSymmetric(t *testing.T) {
	g := Grid(4, 4, true, 9)
	if !g.Weighted {
		t.Fatal("weighted grid not marked weighted")
	}
	// Each undirected pair must carry equal weights in both directions.
	type key struct{ a, b uint32 }
	w := map[key]float32{}
	for _, e := range g.Edges {
		w[key{e.Src, e.Dst}] = e.Weight
	}
	for k, v := range w {
		if rv, ok := w[key{k.b, k.a}]; !ok || rv != v {
			t.Fatalf("asymmetric weight on %v: %v vs %v", k, v, rv)
		}
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 500, 3)
	if g.NumVertices != 100 || g.NumEdges() != 500 {
		t.Fatalf("wrong shape: %d vertices, %d edges", g.NumVertices, g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddUniformWeights(t *testing.T) {
	g := ErdosRenyi(50, 200, 3)
	w := AddUniformWeights(g, 11)
	if !w.Weighted {
		t.Fatal("not marked weighted")
	}
	if g.Weighted {
		t.Fatal("AddUniformWeights mutated its input")
	}
	for _, e := range w.Edges {
		if e.Weight < 1 || e.Weight >= 10 {
			t.Fatalf("weight %v out of [1,10)", e.Weight)
		}
	}
}

func TestGenerateAllDatasets(t *testing.T) {
	for _, d := range AllDatasets {
		g := Generate(d, 0.25)
		if g.NumEdges() == 0 || g.NumVertices == 0 {
			t.Fatalf("%s: empty analog", d)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", d, err)
		}
	}
}

func TestGenerateSkewOrdering(t *testing.T) {
	// The uk-2007 analog must be the most skewed scale-free analog, and the
	// dimacs analog must have near-constant degree, mirroring Table 1.
	uk := Measure(UK2007, Generate(UK2007, 0.25))
	tw := Measure(Twitter, Generate(Twitter, 0.25))
	dm := Measure(DimacsUSA, Generate(DimacsUSA, 0.25))
	if uk.MaxInDegree <= tw.MaxInDegree {
		t.Errorf("uk analog (max in-deg %d) should be more skewed than twitter analog (%d)",
			uk.MaxInDegree, tw.MaxInDegree)
	}
	if dm.MaxInDegree > 4 {
		t.Errorf("dimacs analog max in-degree = %d, want <= 4", dm.MaxInDegree)
	}
}

func TestGenerateScaleGrowsEdges(t *testing.T) {
	small := Generate(Twitter, 0.25)
	big := Generate(Twitter, 1.0)
	if big.NumEdges() <= small.NumEdges() {
		t.Errorf("scale 1.0 (%d edges) should exceed scale 0.25 (%d)",
			big.NumEdges(), small.NumEdges())
	}
}

func TestParseDataset(t *testing.T) {
	for _, d := range AllDatasets {
		got, err := ParseDataset(d.Abbrev())
		if err != nil || got != d {
			t.Errorf("ParseDataset(%q) = %v, %v", d.Abbrev(), got, err)
		}
		got, err = ParseDataset(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDataset(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseDataset("bogus"); err == nil {
		t.Error("ParseDataset accepted a bogus name")
	}
}

func TestRMATPickInRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := RMAT(6, 100, DefaultRMAT, seed)
		return g.Validate() == nil && g.NumVertices == 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
