package graph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// This file is the edge delta codec: the wire format of the per-graph
// write-ahead log (WAL) the store keeps under its data directory, and the
// canonical merge that folds a sequence of edge operations into a graph. The
// codec lives next to the snapshot format (io.go) because the two together
// define everything the store persists; the log lifecycle (group commit,
// rotation, recovery policy) lives in internal/store.
//
// Delta log format ("GRZW"), little-endian:
//
//	header (24 bytes):
//	    [4]byte  magic "GRZW"
//	    uint32   version (1)
//	    uint64   lineage  — identity of the base snapshot lineage this log
//	             applies to; a log whose lineage does not match the
//	             manifest's is stale (left over from before a whole-graph
//	             replace) and must be discarded, never replayed
//	    uint64   baseSeq  — sequence number of the last batch already folded
//	             into the base snapshot; records must carry baseSeq+1,
//	             baseSeq+2, ... with no gaps or duplicates
//	record (one per acknowledged mutation batch):
//	    uint32   crc      — IEEE CRC32 of the remaining record bytes
//	    uint64   seq
//	    uint32   nops     (1 ≤ nops ≤ MaxDeltaOps)
//	    nops ×   { uint8 op (0=insert, 1=delete), uint32 src, uint32 dst,
//	               uint32 weightBits }
//
// A record is the unit of atomicity: DecodeDeltaLog returns only batches
// whose frame is complete and whose CRC matches, so a batch is either fully
// applied or not at all — never partially. A frame that runs past the end of
// the buffer is a torn tail (the normal residue of a crash mid-append):
// matching ErrTornTail, with GoodLen marking the truncation point. A frame
// that is structurally implausible, fails its CRC while fully present, or
// breaks the sequence discipline is corruption: matching ErrCorrupt, and the
// store quarantines the segment rather than truncating it.
var (
	// ErrTornTail reports an incomplete final frame — the benign residue of a
	// crash mid-append. The decoded prefix is valid; truncate at GoodLen.
	ErrTornTail = errors.New("graph: torn delta log tail")
)

const (
	deltaMagic   = "GRZW"
	deltaVersion = 1

	// DeltaHeaderLen is the byte length of the delta log header.
	DeltaHeaderLen = 24
	// deltaFrameLen is the fixed prefix of every record: crc, seq, nops.
	deltaFrameLen = 4 + 8 + 4
	// deltaOpLen is the encoded size of one edge operation.
	deltaOpLen = 1 + 4 + 4 + 4
	// MaxDeltaOps bounds the operations in one batch; a frame declaring more
	// is structurally corrupt, so a bit-flipped count cannot force a huge
	// allocation or swallow the rest of the log as one giant frame.
	MaxDeltaOps = 1 << 20
)

// EdgeOp is one edge mutation: an upsert or a delete of the directed edge
// (Src, Dst). Operations address edges by endpoint pair, not by position:
// an insert replaces every existing (Src, Dst) edge with a single edge of
// the given weight, and a delete removes every (Src, Dst) edge. The final
// state of a pair therefore depends only on the last operation touching it,
// which is what makes replaying a delta log idempotent — the property the
// store's crash windows (snapshot renamed, log not yet rotated) rely on.
type EdgeOp struct {
	// Delete selects removal; false is an insert/upsert.
	Delete bool
	// Src and Dst are the edge endpoints. Inserts may name vertices beyond
	// the base graph's vertex count: the merged graph grows to fit.
	Src, Dst uint32
	// Weight is the edge weight for inserts into weighted graphs; ignored
	// (forced to zero) on unweighted graphs and on deletes.
	Weight float32
}

// DeltaBatch is one acknowledged mutation batch: the unit of WAL atomicity
// and of crash-consistency guarantees.
type DeltaBatch struct {
	Seq uint64
	Ops []EdgeOp
}

// MemoryBytes returns the heap footprint of the batch's operations.
func (b DeltaBatch) MemoryBytes() int64 {
	return int64(len(b.Ops)) * 16
}

// EncodedDeltaLen returns the encoded size of a record carrying n ops.
func EncodedDeltaLen(n int) int { return deltaFrameLen + n*deltaOpLen }

// EncodeDeltaHeader renders the 24-byte delta log header.
func EncodeDeltaHeader(lineage, baseSeq uint64) []byte {
	h := make([]byte, DeltaHeaderLen)
	copy(h, deltaMagic)
	binary.LittleEndian.PutUint32(h[4:], deltaVersion)
	binary.LittleEndian.PutUint64(h[8:], lineage)
	binary.LittleEndian.PutUint64(h[16:], baseSeq)
	return h
}

// DecodeDeltaHeader parses a delta log header. Any failure is ErrCorrupt:
// a log whose header cannot be trusted has no safely decodable suffix.
func DecodeDeltaHeader(b []byte) (lineage, baseSeq uint64, err error) {
	if len(b) < DeltaHeaderLen {
		return 0, 0, fmt.Errorf("%w: delta header truncated (%d bytes)", ErrCorrupt, len(b))
	}
	if string(b[:4]) != deltaMagic {
		return 0, 0, fmt.Errorf("%w: bad delta magic %q", ErrCorrupt, b[:4])
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != deltaVersion {
		return 0, 0, fmt.Errorf("%w: unsupported delta version %d", ErrCorrupt, v)
	}
	return binary.LittleEndian.Uint64(b[8:]), binary.LittleEndian.Uint64(b[16:]), nil
}

// AppendDeltaRecord appends one CRC32-framed record for (seq, ops) to dst
// and returns the extended slice.
func AppendDeltaRecord(dst []byte, seq uint64, ops []EdgeOp) []byte {
	start := len(dst)
	dst = append(dst, make([]byte, EncodedDeltaLen(len(ops)))...)
	rec := dst[start:]
	binary.LittleEndian.PutUint64(rec[4:], seq)
	binary.LittleEndian.PutUint32(rec[12:], uint32(len(ops)))
	off := deltaFrameLen
	for _, op := range ops {
		if op.Delete {
			rec[off] = 1
		} else {
			rec[off] = 0
		}
		binary.LittleEndian.PutUint32(rec[off+1:], op.Src)
		binary.LittleEndian.PutUint32(rec[off+5:], op.Dst)
		binary.LittleEndian.PutUint32(rec[off+9:], floatBits(op.Weight))
		off += deltaOpLen
	}
	binary.LittleEndian.PutUint32(rec, crc32.ChecksumIEEE(rec[4:]))
	return dst
}

// DeltaLog is the result of decoding a delta log buffer: the header fields,
// every fully-valid batch in order, and the byte length of that valid prefix
// (header included). GoodLen is where the store truncates after a torn tail.
type DeltaLog struct {
	Lineage uint64
	BaseSeq uint64
	Batches []DeltaBatch
	GoodLen int
}

// DecodeDeltaLog parses an entire delta log buffer. The returned error is
// nil for a clean log, matches ErrTornTail when the final frame is
// incomplete (Batches still holds the valid prefix — truncate at GoodLen and
// carry on), or matches ErrCorrupt when the log is damaged in a way
// truncation cannot explain: bad header, implausible frame, CRC mismatch on
// a fully-present record, or a sequence number that is not the predecessor's
// successor (duplicates and gaps both violate append-only discipline). On
// corruption Batches holds the valid prefix so the store can keep serving
// what was legible while it quarantines the segment.
func DecodeDeltaLog(data []byte) (DeltaLog, error) {
	var log DeltaLog
	lineage, baseSeq, err := DecodeDeltaHeader(data)
	if err != nil {
		if len(data) < DeltaHeaderLen && canBeHeaderPrefix(data) {
			// Shorter than one header and consistent with a crash during the
			// very first write: nothing was ever acknowledged from this log.
			return log, fmt.Errorf("%w: log shorter than its header", ErrTornTail)
		}
		return log, err
	}
	log.Lineage, log.BaseSeq = lineage, baseSeq
	log.GoodLen = DeltaHeaderLen
	want := baseSeq + 1
	off := DeltaHeaderLen
	for off < len(data) {
		rest := data[off:]
		if len(rest) < deltaFrameLen {
			return log, fmt.Errorf("%w: partial frame header at offset %d", ErrTornTail, off)
		}
		nops := binary.LittleEndian.Uint32(rest[12:])
		if nops == 0 || nops > MaxDeltaOps {
			return log, fmt.Errorf("%w: implausible op count %d at offset %d", ErrCorrupt, nops, off)
		}
		recLen := EncodedDeltaLen(int(nops))
		if len(rest) < recLen {
			return log, fmt.Errorf("%w: partial record at offset %d (%d of %d bytes)", ErrTornTail, off, len(rest), recLen)
		}
		rec := rest[:recLen]
		if crc32.ChecksumIEEE(rec[4:]) != binary.LittleEndian.Uint32(rec) {
			return log, fmt.Errorf("%w: CRC mismatch at offset %d", ErrCorrupt, off)
		}
		seq := binary.LittleEndian.Uint64(rec[4:])
		if seq != want {
			return log, fmt.Errorf("%w: sequence %d at offset %d, want %d", ErrCorrupt, seq, off, want)
		}
		ops := make([]EdgeOp, nops)
		p := deltaFrameLen
		for i := range ops {
			kind := rec[p]
			if kind > 1 {
				return log, fmt.Errorf("%w: unknown op kind %d in batch %d", ErrCorrupt, kind, seq)
			}
			ops[i] = EdgeOp{
				Delete: kind == 1,
				Src:    binary.LittleEndian.Uint32(rec[p+1:]),
				Dst:    binary.LittleEndian.Uint32(rec[p+5:]),
				Weight: bitsFloat(binary.LittleEndian.Uint32(rec[p+9:])),
			}
			p += deltaOpLen
		}
		log.Batches = append(log.Batches, DeltaBatch{Seq: seq, Ops: ops})
		off += recLen
		log.GoodLen = off
		want = seq + 1
	}
	return log, nil
}

// canBeHeaderPrefix reports whether data is a prefix of a valid header —
// distinguishing "crash before the header hit disk" (torn, recoverable by
// starting over) from "this was never a delta log" (corrupt).
func canBeHeaderPrefix(data []byte) bool {
	if len(data) > len(deltaMagic) {
		data = data[:len(deltaMagic)]
	}
	return string(data) == deltaMagic[:len(data)]
}

// ApplyEdgeOps is the canonical merge: it returns a new graph equal to g
// with ops applied in order. Per (src, dst) pair the last operation wins —
// an insert leaves exactly one such edge with its weight, a delete leaves
// none. Untouched base edges keep their base-order positions; surviving
// inserted edges are appended in (src, dst) order. The function is pure and
// single-threaded, so the merged edge list — and therefore every
// bit-deterministic engine result computed from it — depends only on (g,
// ops), never on worker or partition count. The store uses it both to
// materialize the overlay view queries run on and to fold the overlay into a
// compacted snapshot, which is what makes the two bit-identical.
//
// Inserts may name vertices beyond g.NumVertices; the merged graph's vertex
// count grows to cover them. On unweighted graphs insert weights are forced
// to zero so a weight bit can never leak into the cache key or the output.
func ApplyEdgeOps(g *Graph, ops []EdgeOp) *Graph {
	type pair struct{ src, dst uint32 }
	final := make(map[pair]EdgeOp, len(ops))
	for _, op := range ops {
		if !g.Weighted {
			op.Weight = 0
		}
		final[pair{op.Src, op.Dst}] = op
	}
	out := &Graph{NumVertices: g.NumVertices, Weighted: g.Weighted}
	out.Edges = make([]Edge, 0, len(g.Edges)+len(final))
	for _, e := range g.Edges {
		if _, touched := final[pair{e.Src, e.Dst}]; touched {
			continue
		}
		out.Edges = append(out.Edges, e)
	}
	inserts := make([]Edge, 0, len(final))
	for _, op := range final {
		if op.Delete {
			continue
		}
		inserts = append(inserts, Edge{Src: op.Src, Dst: op.Dst, Weight: op.Weight})
		if int(op.Src) >= out.NumVertices {
			out.NumVertices = int(op.Src) + 1
		}
		if int(op.Dst) >= out.NumVertices {
			out.NumVertices = int(op.Dst) + 1
		}
	}
	sort.Slice(inserts, func(i, j int) bool {
		if inserts[i].Src != inserts[j].Src {
			return inserts[i].Src < inserts[j].Src
		}
		return inserts[i].Dst < inserts[j].Dst
	})
	out.Edges = append(out.Edges, inserts...)
	return out
}

// ValidateEdgeOps checks a mutation batch before it is logged: it must be
// non-empty, within the per-batch cap, and free of ops that could never
// decode back (there are none today — every field value round-trips — but
// the bound keeps a single request from monopolizing the log).
func ValidateEdgeOps(ops []EdgeOp) error {
	if len(ops) == 0 {
		return errors.New("graph: empty mutation batch")
	}
	if len(ops) > MaxDeltaOps {
		return fmt.Errorf("graph: mutation batch of %d ops exceeds the %d cap", len(ops), MaxDeltaOps)
	}
	return nil
}
