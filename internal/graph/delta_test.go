package graph

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// sampleLog encodes a header plus the given batches.
func sampleLog(lineage, baseSeq uint64, batches ...DeltaBatch) []byte {
	buf := EncodeDeltaHeader(lineage, baseSeq)
	for _, b := range batches {
		buf = AppendDeltaRecord(buf, b.Seq, b.Ops)
	}
	return buf
}

func TestDeltaLogRoundTrip(t *testing.T) {
	batches := []DeltaBatch{
		{Seq: 4, Ops: []EdgeOp{{Src: 1, Dst: 2, Weight: 0.5}, {Delete: true, Src: 3, Dst: 4}}},
		{Seq: 5, Ops: []EdgeOp{{Src: 9, Dst: 0, Weight: float32(math.Inf(1))}}},
	}
	buf := sampleLog(77, 3, batches...)
	log, err := DecodeDeltaLog(buf)
	if err != nil {
		t.Fatalf("DecodeDeltaLog: %v", err)
	}
	if log.Lineage != 77 || log.BaseSeq != 3 {
		t.Fatalf("header = (%d, %d), want (77, 3)", log.Lineage, log.BaseSeq)
	}
	if log.GoodLen != len(buf) {
		t.Fatalf("GoodLen = %d, want %d", log.GoodLen, len(buf))
	}
	if len(log.Batches) != 2 {
		t.Fatalf("decoded %d batches, want 2", len(log.Batches))
	}
	for i, b := range batches {
		got := log.Batches[i]
		if got.Seq != b.Seq || len(got.Ops) != len(b.Ops) {
			t.Fatalf("batch %d = %+v, want %+v", i, got, b)
		}
		for j, op := range b.Ops {
			g := got.Ops[j]
			if g.Delete != op.Delete || g.Src != op.Src || g.Dst != op.Dst ||
				math.Float32bits(g.Weight) != math.Float32bits(op.Weight) {
				t.Fatalf("batch %d op %d = %+v, want %+v", i, j, g, op)
			}
		}
	}
}

func TestDeltaLogTornTail(t *testing.T) {
	full := sampleLog(1, 0,
		DeltaBatch{Seq: 1, Ops: []EdgeOp{{Src: 1, Dst: 2}}},
		DeltaBatch{Seq: 2, Ops: []EdgeOp{{Src: 3, Dst: 4}, {Delete: true, Src: 1, Dst: 2}}},
	)
	goodOne := DeltaHeaderLen + EncodedDeltaLen(1)
	for cut := goodOne + 1; cut < len(full); cut++ {
		log, err := DecodeDeltaLog(full[:cut])
		if !errors.Is(err, ErrTornTail) {
			t.Fatalf("cut %d: err = %v, want ErrTornTail", cut, err)
		}
		if errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d: torn tail also matches ErrCorrupt", cut)
		}
		if len(log.Batches) != 1 || log.Batches[0].Seq != 1 {
			t.Fatalf("cut %d: prefix batches %+v, want just seq 1", cut, log.Batches)
		}
		if log.GoodLen != goodOne {
			t.Fatalf("cut %d: GoodLen = %d, want %d", cut, log.GoodLen, goodOne)
		}
	}
	// A header-only log, and a torn header, are both valid empty states.
	if log, err := DecodeDeltaLog(full[:DeltaHeaderLen]); err != nil || len(log.Batches) != 0 {
		t.Fatalf("header-only: %v %+v", err, log.Batches)
	}
	if _, err := DecodeDeltaLog(full[:3]); !errors.Is(err, ErrTornTail) {
		t.Fatalf("torn header: err = %v, want ErrTornTail", err)
	}
}

func TestDeltaLogCorruption(t *testing.T) {
	base := sampleLog(1, 0,
		DeltaBatch{Seq: 1, Ops: []EdgeOp{{Src: 1, Dst: 2}}},
		DeltaBatch{Seq: 2, Ops: []EdgeOp{{Src: 3, Dst: 4}}},
	)
	flip := func(i int) []byte {
		b := append([]byte(nil), base...)
		b[i] ^= 0xFF
		return b
	}
	rec1 := DeltaHeaderLen

	t.Run("bit flip in a fully-present record", func(t *testing.T) {
		log, err := DecodeDeltaLog(flip(rec1 + deltaFrameLen + 1)) // src byte of batch 1
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
		if len(log.Batches) != 0 {
			t.Fatalf("batches after mid-log corruption = %+v, want none before the damage", log.Batches)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		if _, err := DecodeDeltaLog(flip(0)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("duplicate sequence number", func(t *testing.T) {
		dup := sampleLog(1, 0,
			DeltaBatch{Seq: 1, Ops: []EdgeOp{{Src: 1, Dst: 2}}},
			DeltaBatch{Seq: 1, Ops: []EdgeOp{{Src: 3, Dst: 4}}},
		)
		log, err := DecodeDeltaLog(dup)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
		if len(log.Batches) != 1 {
			t.Fatalf("valid prefix = %d batches, want 1", len(log.Batches))
		}
	})
	t.Run("sequence gap", func(t *testing.T) {
		gap := sampleLog(1, 5, DeltaBatch{Seq: 9, Ops: []EdgeOp{{Src: 1, Dst: 2}}})
		if _, err := DecodeDeltaLog(gap); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("implausible op count", func(t *testing.T) {
		b := append([]byte(nil), base...)
		binary.LittleEndian.PutUint32(b[rec1+12:], MaxDeltaOps+1)
		if _, err := DecodeDeltaLog(b); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
}

func TestApplyEdgeOpsLastWriterWins(t *testing.T) {
	g := NewBuilder(4).AddEdge(0, 1).AddEdge(1, 2).AddEdge(1, 2).AddEdge(2, 3).MustBuild()
	out := ApplyEdgeOps(g, []EdgeOp{
		{Src: 1, Dst: 2, Weight: 9},        // upsert collapses the duplicate pair
		{Delete: true, Src: 0, Dst: 1},     // delete a base edge
		{Src: 3, Dst: 0},                   // fresh insert
		{Delete: true, Src: 3, Dst: 0},     // ... then delete it: last op wins
		{Src: 0, Dst: 2}, {Src: 0, Dst: 2}, // idempotent double insert
		{Delete: true, Src: 9, Dst: 9}, // delete of an absent edge: no-op
	})
	want := []Edge{{Src: 2, Dst: 3}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}}
	if len(out.Edges) != len(want) {
		t.Fatalf("edges = %+v, want %+v", out.Edges, want)
	}
	for i, e := range want {
		if out.Edges[i] != e {
			t.Fatalf("edge %d = %+v, want %+v", i, out.Edges[i], e)
		}
	}
	if out.NumVertices != 4 {
		t.Fatalf("NumVertices = %d, want 4", out.NumVertices)
	}
	// Weights are zeroed on unweighted graphs.
	for _, e := range out.Edges {
		if e.Weight != 0 {
			t.Fatalf("unweighted merge leaked weight on %+v", e)
		}
	}
	if g.NumEdges() != 4 {
		t.Fatal("ApplyEdgeOps mutated its input")
	}
}

func TestApplyEdgeOpsGrowsAndReplaysIdempotently(t *testing.T) {
	g := NewBuilder(2).SetWeighted().AddWeightedEdge(0, 1, 1.5).MustBuild()
	ops := []EdgeOp{
		{Src: 5, Dst: 0, Weight: 2.5}, // grows the vertex set to 6
		{Src: 0, Dst: 1, Weight: 7},   // re-weights the base edge
	}
	once := ApplyEdgeOps(g, ops)
	if once.NumVertices != 6 {
		t.Fatalf("NumVertices = %d, want 6", once.NumVertices)
	}
	if err := once.Validate(); err != nil {
		t.Fatal(err)
	}
	// apply(ops, apply(ops, g)) == apply(ops, g): the replay-idempotence the
	// store's compaction crash windows depend on.
	twice := ApplyEdgeOps(once, ops)
	if len(once.Edges) != len(twice.Edges) {
		t.Fatalf("replay changed edge count: %d vs %d", len(once.Edges), len(twice.Edges))
	}
	for i := range once.Edges {
		if once.Edges[i] != twice.Edges[i] {
			t.Fatalf("replay changed edge %d: %+v vs %+v", i, once.Edges[i], twice.Edges[i])
		}
	}
}

// FuzzWALReplay hammers the delta log decoder with arbitrary bytes: it must
// never panic, never return a partially-decoded batch, and classify every
// input as clean, torn, or corrupt. The valid prefix must re-decode to the
// same batches — the invariant the store's truncate-and-reopen path relies
// on.
func FuzzWALReplay(f *testing.F) {
	valid := sampleLog(3, 0,
		DeltaBatch{Seq: 1, Ops: []EdgeOp{{Src: 1, Dst: 2, Weight: 0.25}}},
		DeltaBatch{Seq: 2, Ops: []EdgeOp{{Delete: true, Src: 1, Dst: 2}, {Src: 4, Dst: 5}}},
	)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add(valid[:DeltaHeaderLen])
	f.Add([]byte{})
	f.Add([]byte("GRZW"))
	dup := sampleLog(3, 0,
		DeltaBatch{Seq: 1, Ops: []EdgeOp{{Src: 1, Dst: 2}}},
		DeltaBatch{Seq: 1, Ops: []EdgeOp{{Src: 1, Dst: 2}}},
	)
	f.Add(dup)
	mutated := append([]byte(nil), valid...)
	mutated[DeltaHeaderLen+6] ^= 0x40
	f.Add(mutated)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		log, err := DecodeDeltaLog(data)
		if err != nil && !errors.Is(err, ErrTornTail) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("unclassified error: %v", err)
		}
		if log.GoodLen > len(data) {
			t.Fatalf("GoodLen %d beyond input %d", log.GoodLen, len(data))
		}
		want := log.BaseSeq
		for _, b := range log.Batches {
			want++
			if b.Seq != want {
				t.Fatalf("non-contiguous decoded seq %d, want %d", b.Seq, want)
			}
			if len(b.Ops) == 0 || len(b.Ops) > MaxDeltaOps {
				t.Fatalf("batch %d decoded with %d ops", b.Seq, len(b.Ops))
			}
		}
		if err == nil && log.GoodLen != len(data) {
			t.Fatalf("clean decode consumed %d of %d bytes", log.GoodLen, len(data))
		}
		// The valid prefix must re-decode identically: truncating at GoodLen
		// and reopening yields exactly the batches we just applied.
		if log.GoodLen >= DeltaHeaderLen {
			again, err2 := DecodeDeltaLog(data[:log.GoodLen])
			if err2 != nil {
				t.Fatalf("valid prefix failed to re-decode: %v", err2)
			}
			if len(again.Batches) != len(log.Batches) {
				t.Fatalf("prefix re-decode: %d batches, want %d", len(again.Batches), len(log.Batches))
			}
		}
	})
}
