package graph

import (
	"bytes"
	"testing"
)

// FuzzReadBinary hammers the binary decoder with arbitrary bytes: it must
// either return an error or a graph that passes validation — never panic
// and never produce out-of-range edges.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid file and some truncations/mutations of it.
	g := NewBuilder(8).AddEdge(0, 1).AddEdge(7, 3).MustBuild()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("GRZG"))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	mutated[9] ^= 0xFF
	f.Add(mutated)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Cap the declared edge count implicitly: ReadBinary allocates
		// based on the header, so reject absurd inputs by size before
		// decoding (mirrors what a production loader would do).
		if len(data) > 1<<16 {
			return
		}
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("decoder returned invalid graph: %v", err)
		}
	})
}

// FuzzReadEdgeList does the same for the text parser.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n% other\n\n3 4 2.5\n")
	f.Add("garbage line\n")
	f.Add("0 1 nope\n")
	f.Add("4294967295 0\n")
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 1<<14 {
			return
		}
		g, err := ReadEdgeList(bytes.NewReader([]byte(s)))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parser returned invalid graph: %v", err)
		}
	})
}
