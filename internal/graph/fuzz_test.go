package graph

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadBinary hammers the binary decoder with arbitrary bytes: it must
// either return an error or a graph that passes validation — never panic
// and never produce out-of-range edges.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid file and some truncations/mutations of it.
	g := NewBuilder(8).AddEdge(0, 1).AddEdge(7, 3).MustBuild()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("GRZG"))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	mutated[9] ^= 0xFF
	f.Add(mutated)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Cap the declared edge count implicitly: ReadBinary allocates
		// based on the header, so reject absurd inputs by size before
		// decoding (mirrors what a production loader would do).
		if len(data) > 1<<16 {
			return
		}
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("decoder returned invalid graph: %v", err)
		}
	})
}

// FuzzRoundTripFile drives the file-level snapshot path the graph store
// depends on: a fuzzed edge list goes through WriteFile → ReadFile and must
// come back exactly — same vertex count, same edges in the same order, same
// weights bit for bit.
func FuzzRoundTripFile(f *testing.F) {
	f.Add(uint16(8), []byte{0, 0, 1, 0, 7, 7, 0, 3, 9, 1, 1, 2}, true)
	f.Add(uint16(1), []byte{}, false)
	f.Add(uint16(300), []byte{1, 44, 0, 9, 200}, false)
	f.Fuzz(func(t *testing.T, numV uint16, data []byte, weighted bool) {
		if numV == 0 {
			numV = 1
		}
		if len(data) > 1<<12 {
			data = data[:1<<12]
		}
		// Decode the byte string as (src, dst, weight) triples modulo the
		// vertex count, so every fuzz input yields a valid graph.
		g := &Graph{NumVertices: int(numV), Weighted: weighted}
		for i := 0; i+2 < len(data); i += 3 {
			e := Edge{
				Src: uint32(data[i]) % uint32(numV),
				Dst: uint32(data[i+1]) % uint32(numV),
			}
			if weighted {
				e.Weight = float32(data[i+2])/4 + 0.25
			}
			g.Edges = append(g.Edges, e)
		}
		path := filepath.Join(t.TempDir(), "g.grzg")
		if err := g.WriteFile(path); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		if got.NumVertices != g.NumVertices || got.Weighted != g.Weighted || got.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip: got %d/%d/%v, want %d/%d/%v",
				got.NumVertices, got.NumEdges(), got.Weighted,
				g.NumVertices, g.NumEdges(), g.Weighted)
		}
		for i := range g.Edges {
			if got.Edges[i] != g.Edges[i] {
				t.Fatalf("edge %d: got %+v, want %+v", i, got.Edges[i], g.Edges[i])
			}
		}
	})
}

// TestReadFileCorruption damages a valid snapshot file in the ways a crashed
// or misconfigured deployment would — truncation, a foreign magic number, an
// unsupported version — and demands a clean error (never a panic) from every
// one.
func TestReadFileCorruption(t *testing.T) {
	dir := t.TempDir()
	g := NewBuilder(16).AddEdge(0, 1).AddEdge(3, 9).AddEdge(15, 2).MustBuild()
	path := filepath.Join(dir, "ok.grzg")
	if err := g.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err != nil {
		t.Fatalf("valid file must read back: %v", err)
	}

	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	cases := map[string][]byte{
		"empty":            {},
		"header-truncated": valid[:10],
		"body-truncated":   valid[:len(valid)-5],
	}
	badMagic := append([]byte(nil), valid...)
	copy(badMagic, "NOPE")
	cases["bad-magic"] = badMagic
	badVersion := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(badVersion[4:], 999)
	cases["bad-version"] = badVersion
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(huge[20:], 1<<50) // implausible edge count
	cases["absurd-header"] = huge

	for name, data := range cases {
		if _, err := ReadFile(write(name+".grzg", data)); err == nil {
			t.Errorf("%s: ReadFile accepted corrupt input", name)
		}
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.grzg")); err == nil {
		t.Error("missing file: ReadFile returned no error")
	}
}

// FuzzReadEdgeList does the same for the text parser.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n% other\n\n3 4 2.5\n")
	f.Add("garbage line\n")
	f.Add("0 1 nope\n")
	f.Add("4294967295 0\n")
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 1<<14 {
			return
		}
		g, err := ReadEdgeList(bytes.NewReader([]byte(s)))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parser returned invalid graph: %v", err)
		}
	})
}
