// Package graph provides the in-memory edge-list representation shared by
// every format, engine, and baseline in this repository. It deliberately
// stays close to the inputs the Grazelle artifact consumes: a vertex count,
// a flat list of directed edges, and optional per-edge weights.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Edge is a single directed edge. Weight is meaningful only when the owning
// Graph is weighted; unweighted graphs carry zero weights.
type Edge struct {
	Src, Dst uint32
	Weight   float32
}

// Graph is a directed graph stored as an edge list. The zero value is an
// empty graph with no vertices. Graphs are immutable once built; use Builder
// to construct one incrementally.
type Graph struct {
	// NumVertices is the number of vertices; valid ids are [0, NumVertices).
	NumVertices int
	// Edges holds every directed edge. Order is unspecified unless the graph
	// was produced by SortBySource or SortByDest.
	Edges []Edge
	// Weighted reports whether edge weights are meaningful.
	Weighted bool
}

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// MemoryBytes returns the heap footprint of the edge list (12 bytes per
// edge: two vertex ids and a weight).
func (g *Graph) MemoryBytes() int64 { return int64(len(g.Edges)) * 12 }

// Validate checks that every endpoint is within range. The comparison is
// performed in 64 bits: NumVertices may legitimately be 2^32 when vertex
// ids span the full uint32 range, which a uint32 cast would truncate to 0.
func (g *Graph) Validate() error {
	if g.NumVertices < 0 {
		return fmt.Errorf("graph: negative vertex count %d", g.NumVertices)
	}
	n := uint64(g.NumVertices)
	for i, e := range g.Edges {
		if uint64(e.Src) >= n || uint64(e.Dst) >= n {
			return fmt.Errorf("graph: edge %d (%d -> %d) out of range for %d vertices", i, e.Src, e.Dst, g.NumVertices)
		}
	}
	return nil
}

// OutDegrees returns the out-degree of every vertex.
func (g *Graph) OutDegrees() []int {
	deg := make([]int, g.NumVertices)
	for _, e := range g.Edges {
		deg[e.Src]++
	}
	return deg
}

// InDegrees returns the in-degree of every vertex.
func (g *Graph) InDegrees() []int {
	deg := make([]int, g.NumVertices)
	for _, e := range g.Edges {
		deg[e.Dst]++
	}
	return deg
}

// MaxDegree returns the maximum of the supplied degree slice, or zero when
// it is empty.
func MaxDegree(deg []int) int {
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average out-degree (edges per vertex).
func (g *Graph) AvgDegree() float64 {
	if g.NumVertices == 0 {
		return 0
	}
	return float64(len(g.Edges)) / float64(g.NumVertices)
}

// SortBySource orders edges by (src, dst). This is the grouping a push
// engine (and CSR construction) wants.
func (g *Graph) SortBySource() {
	sort.Slice(g.Edges, func(i, j int) bool {
		a, b := g.Edges[i], g.Edges[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
}

// SortByDest orders edges by (dst, src). This is the grouping a pull engine
// (and CSC construction) wants.
func (g *Graph) SortByDest() {
	sort.Slice(g.Edges, func(i, j int) bool {
		a, b := g.Edges[i], g.Edges[j]
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Src < b.Src
	})
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := &Graph{NumVertices: g.NumVertices, Weighted: g.Weighted}
	out.Edges = make([]Edge, len(g.Edges))
	copy(out.Edges, g.Edges)
	return out
}

// Reverse returns a new graph with every edge direction flipped.
func (g *Graph) Reverse() *Graph {
	out := &Graph{NumVertices: g.NumVertices, Weighted: g.Weighted}
	out.Edges = make([]Edge, len(g.Edges))
	for i, e := range g.Edges {
		out.Edges[i] = Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight}
	}
	return out
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	numVertices int
	edges       []Edge
	weighted    bool
}

// NewBuilder creates a builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{numVertices: n}
}

// SetWeighted marks the graph under construction as weighted.
func (b *Builder) SetWeighted() *Builder {
	b.weighted = true
	return b
}

// AddEdge appends a directed edge with zero weight.
func (b *Builder) AddEdge(src, dst uint32) *Builder {
	b.edges = append(b.edges, Edge{Src: src, Dst: dst})
	return b
}

// AddWeightedEdge appends a directed edge with the given weight and marks
// the graph weighted.
func (b *Builder) AddWeightedEdge(src, dst uint32, w float32) *Builder {
	b.weighted = true
	b.edges = append(b.edges, Edge{Src: src, Dst: dst, Weight: w})
	return b
}

// ErrVertexOutOfRange is returned by Build when an edge endpoint exceeds the
// declared vertex count.
var ErrVertexOutOfRange = errors.New("graph: vertex id out of range")

// Build validates the accumulated edges and returns the graph. The builder
// must not be reused afterwards.
func (b *Builder) Build() (*Graph, error) {
	g := &Graph{NumVertices: b.numVertices, Edges: b.edges, Weighted: b.weighted}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrVertexOutOfRange, err)
	}
	return g, nil
}

// MustBuild is Build for statically-known-good inputs; it panics on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Dedup removes duplicate (src, dst) pairs, keeping the first occurrence.
// It sorts the edge list by source as a side effect.
func (g *Graph) Dedup() {
	g.SortBySource()
	out := g.Edges[:0]
	var last Edge
	have := false
	for _, e := range g.Edges {
		if have && e.Src == last.Src && e.Dst == last.Dst {
			continue
		}
		out = append(out, e)
		last, have = e, true
	}
	g.Edges = out
}

// RemoveSelfLoops drops edges whose endpoints are equal.
func (g *Graph) RemoveSelfLoops() {
	out := g.Edges[:0]
	for _, e := range g.Edges {
		if e.Src != e.Dst {
			out = append(out, e)
		}
	}
	g.Edges = out
}

// DegreeHistogram returns counts of vertices bucketed by floor(log2(degree)),
// with bucket 0 holding degree-0 and degree-1 vertices. It is used by the
// dataset reports to characterize skew.
func DegreeHistogram(deg []int) []int {
	var hist []int
	for _, d := range deg {
		b := 0
		for v := d; v > 1; v >>= 1 {
			b++
		}
		for len(hist) <= b {
			hist = append(hist, 0)
		}
		hist[b]++
	}
	return hist
}
