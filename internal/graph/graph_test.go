package graph

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

func tinyGraph(t *testing.T) *Graph {
	t.Helper()
	// The Compressed-Sparse example of the paper's Fig 2: vertex 0 has
	// neighbors {10,23,50}, vertex 1 has {54,62}, vertex 2 has {10,0,14}.
	b := NewBuilder(64)
	b.AddEdge(0, 10).AddEdge(0, 23).AddEdge(0, 50)
	b.AddEdge(1, 54).AddEdge(1, 62)
	b.AddEdge(2, 10).AddEdge(2, 0).AddEdge(2, 14)
	return b.MustBuild()
}

func TestBuilderCounts(t *testing.T) {
	g := tinyGraph(t)
	if g.NumVertices != 64 {
		t.Errorf("NumVertices = %d, want 64", g.NumVertices)
	}
	if g.NumEdges() != 8 {
		t.Errorf("NumEdges = %d, want 8", g.NumEdges())
	}
	if g.Weighted {
		t.Error("graph should be unweighted")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	_, err := NewBuilder(4).AddEdge(0, 4).Build()
	if err == nil {
		t.Fatal("Build accepted an out-of-range destination")
	}
	_, err = NewBuilder(4).AddEdge(4, 0).Build()
	if err == nil {
		t.Fatal("Build accepted an out-of-range source")
	}
}

func TestDegrees(t *testing.T) {
	g := tinyGraph(t)
	out := g.OutDegrees()
	if out[0] != 3 || out[1] != 2 || out[2] != 3 {
		t.Errorf("out-degrees = %v %v %v, want 3 2 3", out[0], out[1], out[2])
	}
	in := g.InDegrees()
	if in[10] != 2 {
		t.Errorf("in-degree of 10 = %d, want 2", in[10])
	}
	if in[0] != 1 {
		t.Errorf("in-degree of 0 = %d, want 1", in[0])
	}
	if MaxDegree(out) != 3 {
		t.Errorf("MaxDegree = %d, want 3", MaxDegree(out))
	}
}

func TestAvgDegree(t *testing.T) {
	g := tinyGraph(t)
	want := 8.0 / 64.0
	if got := g.AvgDegree(); got != want {
		t.Errorf("AvgDegree = %v, want %v", got, want)
	}
	var empty Graph
	if got := empty.AvgDegree(); got != 0 {
		t.Errorf("empty AvgDegree = %v, want 0", got)
	}
}

func TestSortBySource(t *testing.T) {
	g := tinyGraph(t)
	rand.New(rand.NewSource(1)).Shuffle(len(g.Edges), func(i, j int) {
		g.Edges[i], g.Edges[j] = g.Edges[j], g.Edges[i]
	})
	g.SortBySource()
	for i := 1; i < len(g.Edges); i++ {
		a, b := g.Edges[i-1], g.Edges[i]
		if a.Src > b.Src || (a.Src == b.Src && a.Dst > b.Dst) {
			t.Fatalf("edges not sorted by source at %d: %v then %v", i, a, b)
		}
	}
}

func TestSortByDest(t *testing.T) {
	g := tinyGraph(t)
	g.SortByDest()
	for i := 1; i < len(g.Edges); i++ {
		a, b := g.Edges[i-1], g.Edges[i]
		if a.Dst > b.Dst || (a.Dst == b.Dst && a.Src > b.Src) {
			t.Fatalf("edges not sorted by dest at %d: %v then %v", i, a, b)
		}
	}
}

func TestReverse(t *testing.T) {
	g := tinyGraph(t)
	r := g.Reverse()
	if r.NumEdges() != g.NumEdges() {
		t.Fatalf("reverse changed edge count")
	}
	rr := r.Reverse()
	rr.SortBySource()
	g.SortBySource()
	if !reflect.DeepEqual(g.Edges, rr.Edges) {
		t.Error("double reverse is not identity")
	}
	if reflect.DeepEqual(g.OutDegrees(), r.OutDegrees()) && g.NumEdges() > 0 {
		// Possible for symmetric graphs, but tinyGraph is asymmetric.
		t.Error("reverse did not flip degree structure")
	}
}

func TestDedup(t *testing.T) {
	g := NewBuilder(4).
		AddEdge(0, 1).AddEdge(0, 1).AddEdge(1, 2).AddEdge(0, 1).AddEdge(1, 2).
		MustBuild()
	g.Dedup()
	if g.NumEdges() != 2 {
		t.Fatalf("after dedup, %d edges, want 2", g.NumEdges())
	}
}

func TestRemoveSelfLoops(t *testing.T) {
	g := NewBuilder(4).AddEdge(0, 0).AddEdge(0, 1).AddEdge(3, 3).MustBuild()
	g.RemoveSelfLoops()
	if g.NumEdges() != 1 || g.Edges[0] != (Edge{Src: 0, Dst: 1}) {
		t.Fatalf("self loops not removed: %v", g.Edges)
	}
}

func TestDegreeHistogram(t *testing.T) {
	hist := DegreeHistogram([]int{0, 1, 1, 2, 3, 4, 7, 8})
	// bucket 0: deg 0,1,1 -> 3; bucket 1: deg 2,3 -> 2; bucket 2: 4,7 -> 2;
	// bucket 3: 8 -> 1.
	want := []int{3, 2, 2, 1}
	if !reflect.DeepEqual(hist, want) {
		t.Errorf("DegreeHistogram = %v, want %v", hist, want)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := tinyGraph(t)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, g)
	}
}

func TestBinaryRoundTripWeighted(t *testing.T) {
	g := NewBuilder(3).
		AddWeightedEdge(0, 1, 2.5).AddWeightedEdge(1, 2, -1).
		MustBuild()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Weighted || got.Edges[0].Weight != 2.5 || got.Edges[1].Weight != -1 {
		t.Errorf("weighted round trip mismatch: %+v", got)
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a graph file at all......"))); err == nil {
		t.Fatal("ReadBinary accepted garbage")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("ReadBinary accepted empty input")
	}
}

func TestSaveLoadPair(t *testing.T) {
	g := tinyGraph(t)
	base := filepath.Join(t.TempDir(), "tiny")
	if err := g.SavePair(base); err != nil {
		t.Fatal(err)
	}
	push, pull, err := LoadPair(base)
	if err != nil {
		t.Fatal(err)
	}
	if push.NumEdges() != g.NumEdges() || pull.NumEdges() != g.NumEdges() {
		t.Fatalf("pair edge counts differ from original")
	}
	// push file must be grouped by source, pull file by destination.
	for i := 1; i < push.NumEdges(); i++ {
		if push.Edges[i-1].Src > push.Edges[i].Src {
			t.Fatal("push file not sorted by source")
		}
	}
	for i := 1; i < pull.NumEdges(); i++ {
		if pull.Edges[i-1].Dst > pull.Edges[i].Dst {
			t.Fatal("pull file not sorted by destination")
		}
	}
}

func TestLoadPairMissing(t *testing.T) {
	if _, _, err := LoadPair(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("LoadPair succeeded on missing files")
	}
}

// TestBinaryRoundTripProperty round-trips randomized graphs through the
// binary codec.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, eRaw uint16) bool {
		n := int(nRaw)%100 + 1
		e := int(eRaw) % 500
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(n)
		for i := 0; i < e; i++ {
			b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		}
		g := b.MustBuild()
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(g, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBinaryRoundTripZeroEdges(t *testing.T) {
	// Regression: a zero-edge graph must round-trip to a nil edge slice,
	// exactly as Builder produces (found by the round-trip property test).
	g := NewBuilder(7).MustBuild()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, got) {
		t.Errorf("zero-edge round trip: got %#v, want %#v", got, g)
	}
	if got.Edges != nil {
		t.Error("decoder produced a non-nil empty edge slice")
	}
}
