package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
)

// ErrCorrupt is the sentinel wrapped by every deserialization failure that
// indicates damaged data rather than a transient I/O problem: bad magic,
// unsupported version, an implausible header, truncation mid-stream, or a
// structurally invalid graph. Retrying a read that failed this way cannot
// succeed; callers (the store's rehydration path) quarantine instead.
var ErrCorrupt = errors.New("graph: corrupt data")

// Binary format ("GRZG"), little-endian:
//
//	[4]byte  magic "GRZG"
//	uint32   version (1)
//	uint32   flags (bit 0: weighted, bit 1: sorted by source, bit 2: by dest)
//	uint64   numVertices
//	uint64   numEdges
//	numEdges × { uint32 src, uint32 dst [, float32 weight] }
//
// The Grazelle artifact ships each dataset as a "-push" / "-pull" file pair
// (edges grouped by source and by destination respectively); SavePair and
// LoadPair reproduce that convention on top of this format.

const (
	magic   = "GRZG"
	version = 1

	flagWeighted     = 1 << 0
	flagSortedBySrc  = 1 << 1
	flagSortedByDest = 1 << 2
)

// WriteBinary serializes the graph to w.
func (g *Graph) WriteBinary(w io.Writer) error {
	return g.writeBinary(w, 0)
}

func (g *Graph) writeBinary(w io.Writer, sortFlags uint32) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	flags := sortFlags
	if g.Weighted {
		flags |= flagWeighted
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], version)
	binary.LittleEndian.PutUint32(hdr[4:], flags)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.NumVertices))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(g.Edges)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [12]byte
	recLen := 8
	if g.Weighted {
		recLen = 12
	}
	for _, e := range g.Edges {
		binary.LittleEndian.PutUint32(rec[0:], e.Src)
		binary.LittleEndian.PutUint32(rec[4:], e.Dst)
		if g.Weighted {
			binary.LittleEndian.PutUint32(rec[8:], floatBits(e.Weight))
		}
		if _, err := bw.Write(rec[:recLen]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var head [28]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: truncated header: %v", ErrCorrupt, err)
		}
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if string(head[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, head[:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	flags := binary.LittleEndian.Uint32(head[8:])
	numV := binary.LittleEndian.Uint64(head[12:])
	numE := binary.LittleEndian.Uint64(head[20:])
	if numV > 1<<40 || numE > 1<<48 {
		return nil, fmt.Errorf("%w: implausible header (%d vertices, %d edges)", ErrCorrupt, numV, numE)
	}
	g := &Graph{
		NumVertices: int(numV),
		Weighted:    flags&flagWeighted != 0,
	}
	// Allocate incrementally with a capped initial capacity so a corrupt
	// header cannot force a huge up-front allocation. An edgeless graph
	// keeps a nil slice, matching what Builder produces.
	if numE > 0 {
		initialCap := numE
		if initialCap > 1<<20 {
			initialCap = 1 << 20
		}
		g.Edges = make([]Edge, 0, initialCap)
	}
	recLen := 8
	if g.Weighted {
		recLen = 12
	}
	var rec [12]byte
	for i := uint64(0); i < numE; i++ {
		if _, err := io.ReadFull(br, rec[:recLen]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, fmt.Errorf("%w: truncated at edge %d of %d", ErrCorrupt, i, numE)
			}
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		e := Edge{
			Src: binary.LittleEndian.Uint32(rec[0:]),
			Dst: binary.LittleEndian.Uint32(rec[4:]),
		}
		if g.Weighted {
			e.Weight = bitsFloat(binary.LittleEndian.Uint32(rec[8:]))
		}
		g.Edges = append(g.Edges, e)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return g, nil
}

// SavePair writes "<base>-push" (sorted by source) and "<base>-pull" (sorted
// by destination), matching the artifact's file-pair convention. base may
// include a directory path.
func (g *Graph) SavePair(base string) error {
	push := g.Clone()
	push.SortBySource()
	if err := writeFile(base+"-push", push, flagSortedBySrc); err != nil {
		return err
	}
	pull := g.Clone()
	pull.SortByDest()
	return writeFile(base+"-pull", pull, flagSortedByDest)
}

// LoadPair reads the pair written by SavePair and returns the push-ordered
// and pull-ordered graphs.
func LoadPair(base string) (push, pull *Graph, err error) {
	push, err = ReadFile(base + "-push")
	if err != nil {
		return nil, nil, err
	}
	pull, err = ReadFile(base + "-pull")
	if err != nil {
		return nil, nil, err
	}
	if push.NumVertices != pull.NumVertices || len(push.Edges) != len(pull.Edges) {
		return nil, nil, fmt.Errorf("graph: mismatched pair %q: %d/%d vertices, %d/%d edges",
			base, push.NumVertices, pull.NumVertices, len(push.Edges), len(pull.Edges))
	}
	return push, pull, nil
}

// WriteFile serializes the graph to the named file.
func (g *Graph) WriteFile(path string) error {
	return writeFile(path, g, 0)
}

func writeFile(path string, g *Graph, sortFlags uint32) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.writeBinary(f, sortFlags); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile deserializes a graph from the named file.
func ReadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

func floatBits(f float32) uint32 { return math.Float32bits(f) }

func bitsFloat(u uint32) float32 { return math.Float32frombits(u) }
