package graph

import "sort"

// RelabelByDegree returns a copy of g whose vertex ids are reassigned in
// descending in-degree order (ties by original id). Degree-ordered layouts
// concentrate the hot, high-degree vertices' property lanes at the front of
// the arrays — the cache-locality family of optimizations §3's related work
// surveys (Ding & Kennedy's locality grouping and its successors). It also
// improves Vector-Sparse packing locality: the high-degree vertices whose
// groups span many vectors become contiguous.
//
// The returned permutation maps old ids to new ids, so callers can
// translate results back (newProps[perm[v]] is vertex v's value).
func RelabelByDegree(g *Graph) (*Graph, []uint32) {
	n := g.NumVertices
	in := g.InDegrees()
	order := make([]uint32, n)
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		if in[order[a]] != in[order[b]] {
			return in[order[a]] > in[order[b]]
		}
		return order[a] < order[b]
	})
	perm := make([]uint32, n)
	for newID, oldID := range order {
		perm[oldID] = uint32(newID)
	}
	out := &Graph{NumVertices: n, Weighted: g.Weighted}
	out.Edges = make([]Edge, len(g.Edges))
	for i, e := range g.Edges {
		out.Edges[i] = Edge{Src: perm[e.Src], Dst: perm[e.Dst], Weight: e.Weight}
	}
	out.SortBySource()
	return out, perm
}

// InversePermutation returns the inverse of a relabeling permutation:
// inv[newID] = oldID.
func InversePermutation(perm []uint32) []uint32 {
	inv := make([]uint32, len(perm))
	for oldID, newID := range perm {
		inv[newID] = uint32(oldID)
	}
	return inv
}
