package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRelabelByDegreeOrdering(t *testing.T) {
	// Vertex 3 has the highest in-degree, then 1, then the rest.
	g := NewBuilder(5).
		AddEdge(0, 3).AddEdge(1, 3).AddEdge(2, 3).
		AddEdge(0, 1).AddEdge(2, 1).
		AddEdge(4, 0).
		MustBuild()
	out, perm := RelabelByDegree(g)
	if perm[3] != 0 {
		t.Errorf("highest in-degree vertex got new id %d, want 0", perm[3])
	}
	if perm[1] != 1 {
		t.Errorf("second-highest got new id %d, want 1", perm[1])
	}
	in := out.InDegrees()
	for i := 1; i < len(in); i++ {
		if in[i] > in[i-1] {
			t.Fatalf("relabeled in-degrees not descending at %d: %v", i, in)
		}
	}
	if out.NumEdges() != g.NumEdges() {
		t.Error("edge count changed")
	}
}

func TestInversePermutation(t *testing.T) {
	perm := []uint32{2, 0, 1}
	inv := InversePermutation(perm)
	for old, newID := range perm {
		if inv[newID] != uint32(old) {
			t.Fatalf("inverse wrong at %d", old)
		}
	}
}

// Property: relabeling is an isomorphism — edges map through the
// permutation exactly, and the permutation is a bijection.
func TestRelabelIsomorphismProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 1
		b := NewBuilder(n)
		for i := rng.Intn(300); i > 0; i-- {
			b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		}
		g := b.MustBuild()
		out, perm := RelabelByDegree(g)
		// Bijection.
		seen := make([]bool, n)
		for _, p := range perm {
			if int(p) >= n || seen[p] {
				return false
			}
			seen[p] = true
		}
		// Edge multiset maps through perm.
		count := map[[2]uint32]int{}
		for _, e := range g.Edges {
			count[[2]uint32{perm[e.Src], perm[e.Dst]}]++
		}
		for _, e := range out.Edges {
			count[[2]uint32{e.Src, e.Dst}]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
