package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated text edge list — the format
// SNAP and the WebGraph-derived datasets of Table 1 are distributed in.
// Lines starting with '#' or '%' are comments; each data line is
// "src dst [weight]". Vertex ids may be sparse; the vertex count is
// 1 + the maximum id seen. A weight column on any line makes the whole
// graph weighted (absent weights default to 1).
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	g := &Graph{}
	maxID := int64(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want \"src dst [weight]\", got %q", lineNo, line)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q", lineNo, fields[0])
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad destination %q", lineNo, fields[1])
		}
		e := Edge{Src: uint32(src), Dst: uint32(dst), Weight: 1}
		if len(fields) >= 3 {
			w, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q", lineNo, fields[2])
			}
			e.Weight = float32(w)
			g.Weighted = true
		}
		if int64(e.Src) > maxID {
			maxID = int64(e.Src)
		}
		if int64(e.Dst) > maxID {
			maxID = int64(e.Dst)
		}
		g.Edges = append(g.Edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g.NumVertices = int(maxID + 1)
	if !g.Weighted {
		for i := range g.Edges {
			g.Edges[i].Weight = 0
		}
	}
	return g, nil
}

// ReadEdgeListFile reads a text edge list from the named file.
func ReadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// WriteEdgeList writes the graph as a text edge list, with a weight column
// when the graph is weighted.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# %d vertices, %d edges\n", g.NumVertices, len(g.Edges))
	for _, e := range g.Edges {
		var err error
		if g.Weighted {
			_, err = fmt.Fprintf(bw, "%d %d %g\n", e.Src, e.Dst, e.Weight)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d\n", e.Src, e.Dst)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
