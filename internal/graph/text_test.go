package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# a SNAP-style comment
% another comment style

0 1
1 2
5 0
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 6 {
		t.Errorf("NumVertices = %d, want 6 (1+max id)", g.NumVertices)
	}
	if g.NumEdges() != 3 || g.Weighted {
		t.Errorf("edges = %d weighted = %v", g.NumEdges(), g.Weighted)
	}
	if g.Edges[2] != (Edge{Src: 5, Dst: 0}) {
		t.Errorf("edge 2 = %+v", g.Edges[2])
	}
}

func TestReadEdgeListWeighted(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1 2.5\n1 0 0.25\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted || g.Edges[0].Weight != 2.5 || g.Edges[1].Weight != 0.25 {
		t.Errorf("weights wrong: %+v", g.Edges)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"0\n", "a b\n", "0 b\n", "0 1 x\n"} {
		if _, err := ReadEdgeList(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestReadEdgeListEmpty(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# nothing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 0 || g.NumEdges() != 0 {
		t.Errorf("empty input produced %d/%d", g.NumVertices, g.NumEdges())
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	orig := NewBuilder(10).
		AddEdge(0, 9).AddEdge(3, 4).AddEdge(9, 0).
		MustBuild()
	var buf bytes.Buffer
	if err := orig.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig.Edges, back.Edges) {
		t.Errorf("round trip changed edges:\n%v\n%v", orig.Edges, back.Edges)
	}
}

func TestEdgeListRoundTripWeightedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 2
		b := NewBuilder(n)
		for i := rng.Intn(100); i > 0; i-- {
			b.AddWeightedEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)), float32(rng.Intn(100))/4)
		}
		g := b.MustBuild()
		if g.NumEdges() == 0 {
			return true
		}
		var buf bytes.Buffer
		if g.WriteEdgeList(&buf) != nil {
			return false
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		if len(back.Edges) != len(g.Edges) {
			return false
		}
		for i := range g.Edges {
			if back.Edges[i] != g.Edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
