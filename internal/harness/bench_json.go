package harness

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
)

// BenchResult is one (dataset, application) timing row of a machine-readable
// benchmark snapshot (see BenchJSON).
type BenchResult struct {
	Dataset        string  `json:"dataset"`
	App            string  `json:"app"`
	Vertices       int     `json:"vertices"`
	Edges          int     `json:"edges"`
	Iterations     int     `json:"iterations"`
	TotalNS        int64   `json:"total_ns"`
	PerIterationNS float64 `json:"per_iteration_ns"`
	EdgeNS         int64   `json:"edge_ns"`
	VertexNS       int64   `json:"vertex_ns"`
}

// TraceOverheadResult is one dataset's Fig 5 pull kernel timed with the
// phase tracer off and on. DESIGN.md §10 budgets tracing at 5% of untraced
// wall time; Ratio > 1.05 is a regression.
type TraceOverheadResult struct {
	Dataset  string  `json:"dataset"`
	BaseNS   int64   `json:"base_ns"`
	TracedNS int64   `json:"traced_ns"`
	Ratio    float64 `json:"ratio"`
}

// RegistryABResult is one (dataset, app) A/B row comparing the direct typed
// constructor path with registry dispatch (Lookup + Entry.New + the generic
// run). The indirection is one map lookup and an interface-typed
// constructor per run, so Ratio should sit at 1.0 within noise.
type RegistryABResult struct {
	Dataset    string  `json:"dataset"`
	App        string  `json:"app"`
	DirectNS   int64   `json:"direct_ns"`
	RegistryNS int64   `json:"registry_ns"`
	Ratio      float64 `json:"ratio"`
}

// BenchSnapshot is the top-level JSON document emitted by BenchJSON — the
// perf-trajectory baseline checked in as BENCH_<pr>.json.
type BenchSnapshot struct {
	GeneratedUnix int64                 `json:"generated_unix"`
	Workers       int                   `json:"workers"`
	Scale         float64               `json:"scale"`
	Results       []BenchResult         `json:"results"`
	TraceOverhead []TraceOverheadResult `json:"trace_overhead,omitempty"`
	RegistryAB    []RegistryABResult    `json:"registry_ab,omitempty"`
	CacheAB       []CacheABResult       `json:"cache_ab,omitempty"`
	PartitionAB   []PartitionABResult   `json:"partition_ab,omitempty"`
	WALBench      []WALBenchResult      `json:"wal_bench,omitempty"`
	IncrementalAB []IncrementalABResult `json:"incremental_ab,omitempty"`
	ClusterAB     []ClusterABResult     `json:"cluster_ab,omitempty"`
}

// registryBenchApps are the registry-dispatched apps benchmarked on the
// paper's T/U/D analogs alongside the direct PR/CC/BFS rows.
var registryBenchApps = []string{"tc", "kcore", "lp", "ppr"}

// registryABApps are the hot-path apps the registry indirection A/B covers.
var registryABApps = []string{"pr", "cc", "bfs"}

// tudDataset reports whether d is one of the Table 1 T/U/D analogs the new
// per-app rows cover.
func tudDataset(abbrev string) bool {
	return abbrev == "T" || abbrev == "U" || abbrev == "D"
}

// BenchJSON measures PageRank, Connected Components, and BFS on the config's
// datasets with the paper-default engine — plus, on the T/U/D analogs, the
// registry-dispatched tc/kcore/lp/ppr apps and a direct-vs-registry A/B of
// the PR/CC/BFS hot path — and writes one JSON document to w. Timing
// follows the harness convention: best of Config.Repeats, and per-iteration
// time is total/iterations (the Fig 11 metric).
func BenchJSON(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	snap := BenchSnapshot{
		GeneratedUnix: time.Now().Unix(),
		Workers:       cfg.Workers,
		Scale:         cfg.Scale,
	}
	for _, d := range cfg.Datasets {
		g := cfg.DatasetGraph(d)
		cg := cfg.DatasetCoreGraph(d)
		r := core.NewRunner(cg, core.Options{Workers: cfg.Workers})
		type appCase struct {
			name string
			run  func() core.Result
		}
		cases := []appCase{
			{"pr", func() core.Result { return core.Run(r, apps.NewPageRank(g), cfg.PRIters) }},
			{"cc", func() core.Result { return core.Run(r, apps.NewConnComp(), 1<<20) }},
			{"bfs", func() core.Result { return core.Run(r, apps.NewBFS(0), 1<<20) }},
		}
		// The four registry-era apps ride the same Fig 5 harness on the
		// T/U/D analogs, dispatched exactly the way serve does: Lookup,
		// Normalize, Entry.New. Programs with heavyweight constructors
		// (tc's adjacency build) are constructed outside the timed region —
		// the rows measure the engine, not preprocessing.
		if tudDataset(string(d.Abbrev())) {
			for _, name := range registryBenchApps {
				ent, err := apps.Lookup(name)
				if err != nil {
					return err
				}
				p := ent.Normalize(apps.Params{Iters: cfg.PRIters})
				prog, err := ent.New(g, p)
				if err != nil {
					return err
				}
				max := ent.MaxIters(p)
				cases = append(cases, appCase{name, func() core.Result {
					return core.Run(r, prog, max)
				}})
			}
		}
		for _, c := range cases {
			var res core.Result
			best := cfg.timeBest(func() { res = c.run() })
			iters := res.Iterations
			if iters < 1 {
				iters = 1
			}
			snap.Results = append(snap.Results, BenchResult{
				Dataset:        string(d.Abbrev()),
				App:            c.name,
				Vertices:       g.NumVertices,
				Edges:          g.NumEdges(),
				Iterations:     res.Iterations,
				TotalNS:        best.Nanoseconds(),
				PerIterationNS: float64(best.Nanoseconds()) / float64(iters),
				EdgeNS:         res.EdgeTime.Nanoseconds(),
				VertexNS:       res.VertexTime.Nanoseconds(),
			})
		}

		// Registry-indirection A/B on the hot path: the direct typed
		// constructors against Lookup + Entry.New for the same runs.
		if tudDataset(string(d.Abbrev())) {
			direct := map[string]func() core.Result{
				"pr":  func() core.Result { return core.Run(r, apps.NewPageRank(g), cfg.PRIters) },
				"cc":  func() core.Result { return core.Run(r, apps.NewConnComp(), 1<<20) },
				"bfs": func() core.Result { return core.Run(r, apps.NewBFS(0), 1<<20) },
			}
			for _, name := range registryABApps {
				ent, err := apps.Lookup(name)
				if err != nil {
					return err
				}
				p := ent.Normalize(apps.Params{Iters: cfg.PRIters})
				run := direct[name]
				directNS := cfg.timeBest(func() { run() }).Nanoseconds()
				viaNS := cfg.timeBest(func() {
					prog, err := ent.New(g, p)
					if err != nil {
						return
					}
					core.Run(r, prog, ent.MaxIters(p))
				}).Nanoseconds()
				snap.RegistryAB = append(snap.RegistryAB, RegistryABResult{
					Dataset:    string(d.Abbrev()),
					App:        name,
					DirectNS:   directNS,
					RegistryNS: viaNS,
					Ratio:      float64(viaNS) / float64(directNS),
				})
			}
		}
		r.Close()

		// Trace-overhead row: the Fig 5 pull kernel (PageRank, pull-only,
		// 1000 vectors/chunk) with the phase tracer off, then on.
		var walls [2]time.Duration
		for i, trace := range []bool{false, true} {
			rt := core.NewRunner(cg, core.Options{
				Workers: cfg.Workers, Mode: core.EnginePullOnly,
				ChunkVectors: 1000, Trace: trace,
			})
			walls[i] = cfg.timeBest(func() { core.Run(rt, apps.NewPageRank(g), cfg.PRIters) })
			rt.Close()
		}
		snap.TraceOverhead = append(snap.TraceOverhead, TraceOverheadResult{
			Dataset:  string(d.Abbrev()),
			BaseNS:   walls[0].Nanoseconds(),
			TracedNS: walls[1].Nanoseconds(),
			Ratio:    float64(walls[1].Nanoseconds()) / float64(walls[0].Nanoseconds()),
		})
	}
	if cfg.CacheAB {
		rows, err := CacheAB(cfg)
		if err != nil {
			return err
		}
		snap.CacheAB = rows
	}
	if cfg.PartitionAB {
		rows, err := PartitionAB(cfg)
		if err != nil {
			return err
		}
		snap.PartitionAB = rows
	}
	if cfg.WALBench {
		rows, err := WALBench(cfg)
		if err != nil {
			return err
		}
		snap.WALBench = rows
	}
	if cfg.IncrementalAB {
		rows, err := IncrementalAB(cfg)
		if err != nil {
			return err
		}
		snap.IncrementalAB = rows
	}
	if cfg.ClusterAB {
		rows, err := ClusterAB(cfg)
		if err != nil {
			return err
		}
		snap.ClusterAB = rows
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}
