package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/qcache"
	"repro/internal/store"
)

// CacheABResult is one (dataset, app) row of the serve-mode cache A/B
// measurement: a cold miss (full engine run + insert) against a warm hit
// (payload served from cache), plus a coalesced burst of identical
// concurrent requests showing how many engine runs they cost.
type CacheABResult struct {
	Dataset string `json:"dataset"`
	App     string `json:"app"`
	// ColdNS is one miss through qcache.Do: acquire, run, marshal, insert.
	ColdNS int64 `json:"cold_ns"`
	// WarmNS is the mean per-request time of a hit on the same key.
	WarmNS  int64   `json:"warm_ns"`
	Speedup float64 `json:"speedup"`
	// BurstRequests identical concurrent requests on a fresh key performed
	// BurstRuns engine runs (single-flight makes this 1) in BurstNS wall.
	BurstRequests int   `json:"burst_requests"`
	BurstRuns     int   `json:"burst_runs"`
	BurstNS       int64 `json:"burst_ns"`
}

// warmSamples is the number of hits averaged for WarmNS: single hits are
// sub-microsecond, below the timer's useful resolution.
const warmSamples = 256

// burstWidth is the number of identical concurrent requests in the
// coalesced-burst measurement.
const burstWidth = 16

// CacheAB measures the query result cache cold/warm asymmetry and the
// coalesced-burst run count over the config's datasets, PR/CC/BFS each,
// using the same store + qcache composition serve mode wires up.
func CacheAB(cfg Config) ([]CacheABResult, error) {
	cfg = cfg.withDefaults()
	st, err := store.Open(store.Config{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	cache := qcache.New(qcache.Config{Budget: 256 << 20})
	st.OnRetire(cache.InvalidateVersion)

	var rows []CacheABResult
	for _, d := range cfg.Datasets {
		name := string(d.Abbrev())
		if err := st.Add(name, cfg.DatasetGraph(d)); err != nil {
			return nil, err
		}
		version, err := st.Version(name)
		if err != nil {
			return nil, err
		}
		for _, app := range []string{"pr", "cc", "bfs"} {
			row, err := cacheABRow(cfg, st, cache, name, version, d, app)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func cacheABRow(cfg Config, st *store.Store, cache *qcache.Cache, name string, version uint64, d gen.Dataset, app string) (CacheABResult, error) {
	ent, err := apps.Lookup(app)
	if err != nil {
		return CacheABResult{}, err
	}
	params := ent.Normalize(apps.Params{Iters: cfg.PRIters})
	var runs atomic.Int64
	compute := func(ctx context.Context) (qcache.Result, error) {
		runs.Add(1)
		h, err := st.Acquire(name)
		if err != nil {
			return qcache.Result{}, err
		}
		defer h.Close()
		prog, err := ent.New(h.Source(), params)
		if err != nil {
			return qcache.Result{}, err
		}
		res, err := core.RunCtx(ctx, h.Runner(), prog, ent.MaxIters(params))
		if err != nil {
			return qcache.Result{}, err
		}
		payload, err := json.Marshal(res.Props)
		if err != nil {
			return qcache.Result{}, err
		}
		return qcache.Result{Payload: payload, Version: h.Version()}, nil
	}

	ctx := context.Background()
	// Cold: one miss end to end — engine run, marshal, insert.
	key := qcache.Key{Graph: name, Version: version, App: app,
		Params: ent.Canonical(params) + "&values=false"}
	start := time.Now()
	if _, outcome, err := cache.Do(ctx, key, compute); err != nil || outcome != qcache.OutcomeMiss {
		return CacheABResult{}, fmt.Errorf("%s/%s cold: outcome %v err %v", name, app, outcome, err)
	}
	cold := time.Since(start)

	// Warm: hits on the same key, averaged over enough samples to resolve.
	start = time.Now()
	for i := 0; i < warmSamples; i++ {
		if _, outcome, err := cache.Do(ctx, key, compute); err != nil || outcome != qcache.OutcomeHit {
			return CacheABResult{}, fmt.Errorf("%s/%s warm: outcome %v err %v", name, app, outcome, err)
		}
	}
	warm := time.Since(start) / warmSamples

	// Burst: identical concurrent requests on a fresh key (the values flag
	// flips so the canonical params differ for every app). Single-flight
	// should serve all of them with one engine run.
	burstKey := qcache.Key{Graph: name, Version: version, App: app,
		Params: ent.Canonical(params) + "&values=true"}
	runs.Store(0)
	var wg sync.WaitGroup
	var failures atomic.Int64
	start = time.Now()
	for i := 0; i < burstWidth; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := cache.Do(ctx, burstKey, compute); err != nil {
				failures.Add(1)
			}
		}()
	}
	wg.Wait()
	burst := time.Since(start)
	if n := failures.Load(); n > 0 {
		return CacheABResult{}, fmt.Errorf("%s/%s burst: %d requests failed", name, app, n)
	}

	return CacheABResult{
		Dataset:       name,
		App:           app,
		ColdNS:        cold.Nanoseconds(),
		WarmNS:        warm.Nanoseconds(),
		Speedup:       ratio(cold, warm),
		BurstRequests: burstWidth,
		BurstRuns:     int(runs.Load()),
		BurstNS:       burst.Nanoseconds(),
	}, nil
}
