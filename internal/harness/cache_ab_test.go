package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/gen"
)

func TestCacheABRows(t *testing.T) {
	cfg := Config{Quick: true, Datasets: []gen.Dataset{gen.AllDatasets[0]}}
	rows, err := CacheAB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (pr, cc, bfs)", len(rows))
	}
	for _, r := range rows {
		if r.ColdNS <= 0 || r.WarmNS <= 0 {
			t.Errorf("%s/%s: non-positive timings %+v", r.Dataset, r.App, r)
		}
		if r.BurstRequests != burstWidth {
			t.Errorf("%s/%s: burst width %d", r.Dataset, r.App, r.BurstRequests)
		}
		// Single-flight: the whole burst costs one engine run.
		if r.BurstRuns != 1 {
			t.Errorf("%s/%s: burst of %d performed %d runs, want 1",
				r.Dataset, r.App, r.BurstRequests, r.BurstRuns)
		}
	}
}

func TestBenchJSONIncludesCacheAB(t *testing.T) {
	cfg := Config{Quick: true, CacheAB: true, Datasets: []gen.Dataset{gen.AllDatasets[0]}}
	var buf bytes.Buffer
	if err := BenchJSON(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	var snap BenchSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.CacheAB) != 3 {
		t.Fatalf("snapshot cache_ab rows = %d, want 3", len(snap.CacheAB))
	}
}
