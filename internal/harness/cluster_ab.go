package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	grazelle "repro"
	"repro/internal/cluster"
	"repro/internal/obs"
)

// ClusterABResult is one (dataset, app, partitions) row comparing a
// monolithic in-process run against the same query scatter-gathered by a
// router over a two-worker roster with the network frontier exchange in the
// loop. Both tiers are bit-identical by contract; every row re-verifies the
// summary statistics (and the full value vector) byte-for-byte before it is
// recorded. The ratio prices the cluster tier on one box: HTTP fan-out, the
// per-iteration exchange barrier over loopback, and redundant replica
// compute.
type ClusterABResult struct {
	Dataset      string `json:"dataset"`
	App          string `json:"app"`
	Workers      int    `json:"workers"`
	Partitions   int    `json:"partitions"`
	MonolithicNS int64  `json:"monolithic_ns"`
	ClusterNS    int64  `json:"cluster_ns"`
	// Ratio is cluster/monolithic wall time: >1 is cluster-tier overhead.
	Ratio float64 `json:"ratio"`
	// PartitionBytes is the exchange hub's per-partition wire accounting for
	// one run (all zero for frontier-blind apps like pr), matching the
	// shared-memory exchange_bytes a partitioned run reports.
	PartitionBytes []int64 `json:"partition_bytes"`
	// PeerBytes is the per-worker wire traffic through the exchange barrier
	// for the same run: segments posted in, merged frontiers replied out.
	PeerBytes []ClusterPeerBytes `json:"peer_bytes"`
}

// ClusterPeerBytes is one worker's exchange traffic within a ClusterABResult.
type ClusterPeerBytes struct {
	Worker string `json:"worker"`
	In     int64  `json:"in"`
	Out    int64  `json:"out"`
}

// clusterABWorkers is the roster size each A/B row runs against — the
// smallest cluster where partition ownership actually splits across peers.
const clusterABWorkers = 2

// clusterABCounts are the partition counts each A/B row sweep covers,
// matching the shared-memory partition A/B.
var clusterABCounts = []int{2, 4}

// benchCluster is one in-process router + roster: worker stores behind
// httptest servers, the exchange hub served over real HTTP.
type benchCluster struct {
	router  *cluster.Router
	cleanup []func()
}

func (bc *benchCluster) close() {
	for i := len(bc.cleanup) - 1; i >= 0; i-- {
		bc.cleanup[i]()
	}
}

// newBenchCluster stands up clusterABWorkers in-process workers each holding
// g as "g", plus a router with its exchange hub on HTTP, and blocks until
// the health loop has the full roster in rotation.
func newBenchCluster(cfg Config, g *grazelle.Graph) (*benchCluster, error) {
	bc := &benchCluster{}
	urls := make([]string, clusterABWorkers)
	for i := range urls {
		st, err := grazelle.OpenStore(grazelle.StoreConfig{
			Workers: cfg.Workers, Options: grazelle.Options{Trace: true},
		})
		if err != nil {
			bc.close()
			return nil, err
		}
		bc.cleanup = append(bc.cleanup, func() { st.Close() })
		if err := st.Add("g", g); err != nil {
			bc.close()
			return nil, err
		}
		wk := cluster.NewWorker(st, cfg.Workers, &obs.Counter{})
		ts := httptest.NewServer(wk.Mux())
		bc.cleanup = append(bc.cleanup, ts.Close)
		urls[i] = ts.URL
	}
	rt := cluster.NewRouter(cluster.RouterConfig{
		Workers:        urls,
		Partitions:     clusterABCounts[0],
		HealthInterval: 25 * time.Millisecond,
		RoundTimeout:   time.Minute,
	})
	bc.cleanup = append(bc.cleanup, rt.Close)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /internal/exchange", rt.HandleExchange)
	hts := httptest.NewServer(mux)
	bc.cleanup = append(bc.cleanup, hts.Close)
	rt.SetExchangeURL(hts.URL + "/internal/exchange")
	rt.Start()

	deadline := time.Now().Add(30 * time.Second)
	for {
		ready := 0
		for _, w := range rt.Status().Workers {
			if w.Healthy && w.Synced {
				ready++
			}
		}
		if ready == clusterABWorkers {
			break
		}
		if time.Now().After(deadline) {
			bc.close()
			return nil, fmt.Errorf("cluster_ab: roster never reached %d ready workers", clusterABWorkers)
		}
		time.Sleep(5 * time.Millisecond)
	}
	bc.router = rt
	return bc, nil
}

// verifyClusterIdentity checks a cluster result byte-for-byte against the
// local monolithic reference: every summary statistic and, when present, the
// full value vector.
func verifyClusterIdentity(where string, res *cluster.RunResult, want *grazelle.AppResult) error {
	stats := want.Summary()
	if len(res.Summary) != len(stats) {
		return fmt.Errorf("%s: cluster summary has %d keys, local has %d", where, len(res.Summary), len(stats))
	}
	for _, st := range stats {
		raw, err := json.Marshal(st.Value)
		if err != nil {
			return err
		}
		if !bytes.Equal(raw, res.Summary[st.Key]) {
			return fmt.Errorf("%s: summary %q = %s, local %s", where, st.Key, res.Summary[st.Key], raw)
		}
	}
	if len(res.Values) > 0 {
		raw, err := json.Marshal(want.Values())
		if err != nil {
			return err
		}
		if !bytes.Equal(raw, json.RawMessage(res.Values)) {
			return fmt.Errorf("%s: cluster values diverged from the local run", where)
		}
	}
	return nil
}

// ClusterAB measures the router + two-worker cluster tier against a
// monolithic in-process engine on PR/CC/BFS over the config's T/U/D analogs,
// asserting byte-identical output as it goes. One cluster is stood up per
// dataset; the timed region covers exactly what a client of /v1/query would
// wait for — scatter, every exchange round, gather.
func ClusterAB(cfg Config) ([]ClusterABResult, error) {
	cfg = cfg.withDefaults()
	ctx := context.Background()
	var rows []ClusterABResult
	runSeq := 0
	for _, d := range cfg.Datasets {
		ab := string(d.Abbrev())
		if !tudDataset(ab) {
			continue
		}
		g, err := grazelle.GenerateDataset(ab, cfg.Scale)
		if err != nil {
			return nil, err
		}
		bc, err := newBenchCluster(cfg, g)
		if err != nil {
			return nil, err
		}
		rt := bc.router

		params := grazelle.Params{Iters: cfg.PRIters}
		for _, app := range []string{"pr", "cc", "bfs"} {
			eng := grazelle.NewEngine(g, grazelle.Options{Workers: cfg.Workers, Trace: true})
			var monoRes *grazelle.AppResult
			var monoErr error
			monoNS := cfg.timeBest(func() {
				monoRes, monoErr = eng.Run(ctx, app, params)
			}).Nanoseconds()
			eng.Close()
			if monoErr != nil {
				bc.close()
				return nil, fmt.Errorf("%s/%s monolithic: %w", ab, app, monoErr)
			}

			for _, parts := range clusterABCounts {
				spec := cluster.RunSpec{
					Graph:      "g",
					App:        app,
					Iters:      params.Iters,
					Partitions: parts,
					Vertices:   g.NumVertices(),
					Edges:      g.NumEdges(),
				}
				var res *cluster.RunResult
				var runErr error
				best := cfg.timeBest(func() {
					runSeq++
					res, runErr = rt.Execute(ctx, fmt.Sprintf("ab-%d", runSeq), spec)
				})
				if runErr != nil {
					bc.close()
					return nil, fmt.Errorf("%s/%s p=%d cluster: %w", ab, app, parts, runErr)
				}
				if res.Partitions != parts {
					bc.close()
					return nil, fmt.Errorf("%s/%s: effective partitions %d, want %d", ab, app, res.Partitions, parts)
				}

				// One more untimed run with values on: the byte-identity check,
				// and the per-peer wire accounting for exactly one run.
				before := rt.Status()
				spec.Values = true
				runSeq++
				full, err := rt.Execute(ctx, fmt.Sprintf("ab-%d", runSeq), spec)
				if err != nil {
					bc.close()
					return nil, fmt.Errorf("%s/%s p=%d identity run: %w", ab, app, parts, err)
				}
				after := rt.Status()
				where := fmt.Sprintf("%s/%s p=%d", ab, app, parts)
				if err := verifyClusterIdentity(where, full, monoRes); err != nil {
					bc.close()
					return nil, err
				}

				var peers []ClusterPeerBytes
				for i, w := range after.Workers {
					peers = append(peers, ClusterPeerBytes{
						Worker: w.URL,
						In:     int64(w.BytesIn - before.Workers[i].BytesIn),
						Out:    int64(w.BytesOut - before.Workers[i].BytesOut),
					})
				}
				rows = append(rows, ClusterABResult{
					Dataset:        ab,
					App:            app,
					Workers:        len(full.Workers),
					Partitions:     parts,
					MonolithicNS:   monoNS,
					ClusterNS:      best.Nanoseconds(),
					Ratio:          float64(best.Nanoseconds()) / float64(monoNS),
					PartitionBytes: full.PartBytes,
					PeerBytes:      peers,
				})
			}
		}
		bc.close()
	}
	return rows, nil
}
