package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/gen"
)

func TestClusterABRows(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster A/B stands up an in-process roster")
	}
	cfg := Config{Quick: true, Datasets: []gen.Dataset{gen.Twitter}}
	rows, err := ClusterAB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * len(clusterABCounts); len(rows) != want {
		t.Fatalf("rows = %d, want %d (pr, cc, bfs × partition counts)", len(rows), want)
	}
	for _, r := range rows {
		if r.MonolithicNS <= 0 || r.ClusterNS <= 0 || r.Ratio <= 0 {
			t.Errorf("%s/%s p=%d: non-positive timings %+v", r.Dataset, r.App, r.Partitions, r)
		}
		if r.Workers < 1 || r.Workers > clusterABWorkers {
			t.Errorf("%s/%s p=%d: %d participating workers", r.Dataset, r.App, r.Partitions, r.Workers)
		}
		if len(r.PartitionBytes) != r.Partitions {
			t.Errorf("%s/%s p=%d: %d partition-byte entries", r.Dataset, r.App, r.Partitions, len(r.PartitionBytes))
		}
		if len(r.PeerBytes) != clusterABWorkers {
			t.Errorf("%s/%s p=%d: %d peer-byte entries", r.Dataset, r.App, r.Partitions, len(r.PeerBytes))
		}
		var partSum, peerIn int64
		for _, b := range r.PartitionBytes {
			partSum += b
		}
		for _, p := range r.PeerBytes {
			peerIn += p.In
		}
		// Frontier-driven apps must move frontier state over the wire; pr is
		// frontier-blind and must move none.
		if r.App == "pr" && (partSum != 0 || peerIn != 0) {
			t.Errorf("pr exchanged %d partition / %d peer bytes, want 0", partSum, peerIn)
		}
		if r.App != "pr" && (partSum == 0 || peerIn == 0) {
			t.Errorf("%s/%s p=%d exchanged no bytes (partition %d, peer %d)",
				r.Dataset, r.App, r.Partitions, partSum, peerIn)
		}
	}
}

func TestBenchJSONIncludesClusterAB(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster A/B stands up an in-process roster")
	}
	cfg := Config{Quick: true, ClusterAB: true, Datasets: []gen.Dataset{gen.Twitter}}
	var buf bytes.Buffer
	if err := BenchJSON(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	var snap BenchSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.ClusterAB) == 0 {
		t.Fatal("snapshot has no cluster_ab rows")
	}
}
