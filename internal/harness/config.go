package harness

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Config controls experiment sizing. The zero value is normalized by
// withDefaults to the full benchfig settings; Quick selects the reduced
// sizes used by unit tests and testing.B benchmarks.
type Config struct {
	// Scale multiplies the Table 1 analog dataset sizes (1.0 = default
	// benchmark size; see internal/gen).
	Scale float64
	// Workers is the maximum worker count (default GOMAXPROCS).
	Workers int
	// PRIters is the PageRank iteration count per measurement (the paper's
	// Fig 11 reports per-iteration time; Table 2 suggests per-graph counts —
	// at analog scale a fixed small count converges the measurement).
	PRIters int
	// Repeats is the number of timed repetitions; the minimum is reported.
	Repeats int
	// Quick shrinks datasets (quarter scale) for fast runs.
	Quick bool
	// CacheAB adds the query-result-cache cold/warm A/B rows to BenchJSON
	// snapshots (see CacheAB).
	CacheAB bool
	// PartitionAB adds the partitioned-vs-monolithic coordinator A/B rows
	// to BenchJSON snapshots (see PartitionAB).
	PartitionAB bool
	// WALBench adds streaming-mutation write-throughput and recovery-replay
	// rows to BenchJSON snapshots (see WALBench).
	WALBench bool
	// IncrementalAB adds the incremental-vs-full recompute A/B rows to
	// BenchJSON snapshots (see IncrementalAB).
	IncrementalAB bool
	// ClusterAB adds the router-plus-workers-vs-monolithic cluster tier A/B
	// rows to BenchJSON snapshots (see ClusterAB).
	ClusterAB bool
	// Datasets restricts the sweep; nil means all six.
	Datasets []gen.Dataset
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
		if c.Quick {
			c.Scale = 0.12
		}
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.PRIters < 1 {
		c.PRIters = 8
		if c.Quick {
			c.PRIters = 3
		}
	}
	if c.Repeats < 1 {
		c.Repeats = 3
		if c.Quick {
			c.Repeats = 1
		}
	}
	if len(c.Datasets) == 0 {
		c.Datasets = gen.AllDatasets
	}
	return c
}

// graphCache memoizes generated analogs and their preprocessed forms within
// one process (experiments share datasets). cacheMu guards both maps —
// harness entry points run from concurrent test packages and goroutines. It
// is held only around map access, not generation, so two first-callers may
// both generate; the duplicated work is benign, a torn map write is not.
var (
	cacheMu    sync.Mutex
	graphCache = map[string]*graph.Graph{}
	coreCache  = map[string]*core.Graph{}
)

func cacheKey(d gen.Dataset, scale float64) string {
	return string(d.Abbrev()) + ":" + fmtFloat(scale)
}

func fmtFloat(f float64) string {
	// Stable short key.
	return time.Duration(f * float64(time.Second)).String()
}

// DatasetGraph returns the (cached) analog of d at the config's scale.
func (c Config) DatasetGraph(d gen.Dataset) *graph.Graph {
	key := cacheKey(d, c.Scale)
	cacheMu.Lock()
	g, ok := graphCache[key]
	cacheMu.Unlock()
	if ok {
		return g
	}
	g = gen.Generate(d, c.Scale)
	cacheMu.Lock()
	if prior, ok := graphCache[key]; ok {
		g = prior // a racing generator won; keep one canonical instance
	} else {
		graphCache[key] = g
	}
	cacheMu.Unlock()
	return g
}

// DatasetCoreGraph returns the (cached) preprocessed Grazelle forms.
func (c Config) DatasetCoreGraph(d gen.Dataset) *core.Graph {
	key := cacheKey(d, c.Scale)
	cacheMu.Lock()
	g, ok := coreCache[key]
	cacheMu.Unlock()
	if ok {
		return g
	}
	g = core.BuildGraph(c.DatasetGraph(d))
	cacheMu.Lock()
	if prior, ok := coreCache[key]; ok {
		g = prior
	} else {
		coreCache[key] = g
	}
	cacheMu.Unlock()
	return g
}

// timeBest runs fn Repeats times and returns the fastest wall time — the
// convention of artifact-style measurements, insensitive to warm-up noise.
func (c Config) timeBest(fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < c.Repeats; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// ratio formats a speedup factor.
func ratio(base, v time.Duration) float64 {
	if v == 0 {
		return 0
	}
	return float64(base) / float64(v)
}
