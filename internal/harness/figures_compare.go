package harness

import (
	"fmt"
	"math"
	"time"

	"repro/internal/apps"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numa"
)

// Table1 reports the six dataset analogs next to the originals they stand
// in for (the substitution record of DESIGN.md §2).
func Table1(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Table 1: dataset analogs (scaled synthetic substitutes; see DESIGN.md)",
		Columns: []string{"Abbr", "Name", "Orig V", "Orig E", "Analog V", "Analog E", "Avg deg", "Max in-deg", "P99 in-deg"},
	}
	for _, d := range cfg.Datasets {
		g := cfg.DatasetGraph(d)
		st := gen.Measure(d, g)
		ov, oe := gen.OriginalSize(d)
		t.AddRow(d.Abbrev(), d.String(), fmtCount(ov), fmtCount(oe),
			st.Vertices, st.Edges, st.AvgDegree, st.MaxInDegree, st.P99InDegree)
	}
	return []*Table{t}
}

func fmtCount(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.2fB", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	default:
		return fmt.Sprint(n)
	}
}

// Table2 reports the artifact's suggested PageRank iteration counts.
func Table2(Config) []*Table {
	t := &Table{
		Title:   "Table 2: suggested PageRank iteration counts (artifact appendix)",
		Columns: []string{"Graph", "fig10a-vertex-*", "All others"},
	}
	rows := [][3]any{
		{"cit-Patents", 1024, 1024},
		{"dimacs-usa", 256, 256},
		{"livejournal", 1024, 256},
		{"twitter-2010", 64, 16},
		{"friendster", 64, 16},
		{"uk-2007", 32, 16},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1], r[2])
	}
	return []*Table{t}
}

// socketTopology maps a simulated socket count onto a NUMA topology with the
// configured worker budget (at least one worker per socket; workers are
// oversubscribed onto the reproduction machine's cores when sockets exceed
// them — partitioning structure, not wall-clock NUMA scaling, is what
// transfers; see DESIGN.md §2).
func socketTopology(cfg Config, sockets int) numa.Topology {
	per := cfg.Workers / sockets
	if per < 1 {
		per = 1
	}
	return numa.Topology{Nodes: sockets, WorkersPerNode: per}
}

// runGrazelleApp executes one application end-to-end on a Grazelle runner.
func runGrazelleApp(r *core.Runner, g *graph.Graph, app string, prIters int) {
	switch app {
	case "PR":
		core.Run(r, apps.NewPageRank(g), prIters)
	case "CC":
		core.Run(r, apps.NewConnComp(), 1<<20)
	default:
		core.Run(r, apps.NewBFS(0), 1<<20)
	}
}

// runBaselineApp executes one application end-to-end on a baseline
// framework.
func runBaselineApp(fw baselines.Framework, g *graph.Graph, app string, prIters int) {
	switch app {
	case "PR":
		fw.Run(apps.NewPageRank(g), prIters)
	case "CC":
		fw.Run(apps.NewConnComp(), 1<<20)
	default:
		fw.Run(apps.NewBFS(0), 1<<20)
	}
}

// compareFrameworks builds the Figs 11–13 comparison for one application
// across simulated socket counts and all datasets.
func compareFrameworks(cfg Config, title, app string) []*Table {
	cfg = cfg.withDefaults()
	sockets := []int{1, 2, 4}
	if cfg.Quick {
		sockets = []int{1, 2}
	}
	t := &Table{
		Title: title,
		Note: "wall-clock times; n/a marks framework/dataset pairs that fail at original scale " +
			"(§6: GraphMat's 32-bit indexing and Polymer's crash on uk-2007)",
		Columns: []string{"Sockets", "Graph", "Grazelle-Pull", "Grazelle-Push", "Ligra", "Ligra-Dense", "Polymer", "GraphMat", "X-Stream"},
	}
	for _, s := range sockets {
		topo := socketTopology(cfg, s)
		workers := topo.TotalWorkers()
		for _, d := range cfg.Datasets {
			g := cfg.DatasetGraph(d)
			cg := cfg.DatasetCoreGraph(d)
			_, origEdges := gen.OriginalSize(d)

			grazelle := func(mode core.EngineMode) time.Duration {
				r := core.NewRunner(cg, core.Options{Workers: workers, Topology: topo, Mode: mode})
				defer r.Close()
				return cfg.timeBest(func() { runGrazelleApp(r, g, app, cfg.PRIters) })
			}
			baseline := func(fw baselines.Framework) time.Duration {
				defer fw.Close()
				return cfg.timeBest(func() { runBaselineApp(fw, g, app, cfg.PRIters) })
			}

			pull := grazelle(core.EnginePullOnly)
			var pushCell string
			if app == "PR" {
				pushCell = fmtDuration(grazelle(core.EnginePushOnly))
			} else {
				// For frontier applications the paper reports hybrid
				// Grazelle; the push column shows the hybrid run.
				pushCell = fmtDuration(grazelle(core.EngineHybrid)) + " (hybrid)"
			}
			lig := baseline(baselines.NewLigra(g, workers))
			ligD := baseline(baselines.NewLigraDense(g, workers))

			polymerCell := "n/a (crash >3B edges)"
			if origEdges <= 3_000_000_000 {
				polymerCell = fmtDuration(baseline(baselines.NewPolymer(g, topo)))
			}
			graphmatCell := "n/a (int32 overflow)"
			if origEdges <= math.MaxInt32 {
				if fw, err := baselines.NewGraphMat(g, workers); err == nil {
					graphmatCell = fmtDuration(baseline(fw))
				}
			}
			xs := baseline(baselines.NewXStream(g, workers))

			t.AddRow(s, d.Abbrev(), pull, pushCell, lig, ligD, polymerCell, graphmatCell, xs)
		}
	}
	return []*Table{t}
}

// Fig11 compares per-framework PageRank times (the paper's per-iteration
// comparison; here a fixed iteration count per run).
func Fig11(cfg Config) []*Table {
	return compareFrameworks(cfg, "Figure 11: PageRank execution time across frameworks", "PR")
}

// Fig12 compares Connected Components across frameworks.
func Fig12(cfg Config) []*Table {
	return compareFrameworks(cfg, "Figure 12: Connected Components execution time across frameworks", "CC")
}

// Fig13 compares Breadth-First Search across frameworks.
func Fig13(cfg Config) []*Table {
	return compareFrameworks(cfg, "Figure 13: Breadth-First Search execution time across frameworks", "BFS")
}
