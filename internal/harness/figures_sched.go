package harness

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/baselines"
	"repro/internal/baselines/ligra"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/race"
)

// Fig1 reproduces the introduction's motivating experiment: Ligra's loop
// parallelization configurations (PushS, PushP, PushP+PullS, PushP+PullP,
// PushP+PullP-NoSync) on the twitter-2010 analog for PageRank, Connected
// Components, and BFS. Values are speedups over PushS; the paper's shape is
// PushP > PushS, PushP+PullS ≫ PushP, and PushP+PullP *below* PushP+PullS.
func Fig1(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	g := cfg.DatasetGraph(gen.Twitter)
	configs := []ligra.LoopConfig{
		ligra.PushS, ligra.PushP, ligra.PushPPullS, ligra.PushPPullP,
	}
	if !race.Enabled {
		// The NoSync configuration is racy by design (the paper plots it to
		// isolate conflict cost); it cannot run under the race detector.
		configs = append(configs, ligra.PushPPullPNoSync)
	}
	apps3 := []string{"PageRank", "ConnectedComponents", "BFS"}
	times := map[string]map[ligra.LoopConfig]time.Duration{}
	for _, a := range apps3 {
		times[a] = map[ligra.LoopConfig]time.Duration{}
	}
	for _, lc := range configs {
		fw := baselines.NewLigraLoops(g, cfg.Workers, lc)
		times["PageRank"][lc] = cfg.timeBest(func() { fw.Run(apps.NewPageRank(g), cfg.PRIters) })
		times["ConnectedComponents"][lc] = cfg.timeBest(func() { fw.Run(apps.NewConnComp(), 1<<20) })
		times["BFS"][lc] = cfg.timeBest(func() { fw.Run(apps.NewBFS(0), 1<<20) })
		fw.Close()
	}
	t := &Table{
		Title: "Figure 1: Ligra inner-loop parallelization on the twitter-2010 analog",
		Note: fmt.Sprintf("speedup over PushS; %d workers, graph %d vertices / %d edges",
			cfg.Workers, g.NumVertices, g.NumEdges()),
		Columns: []string{"Application", "PushS", "PushP", "PushP+PullS", "PushP+PullP", "PushP+PullP-NoSync"},
	}
	for _, a := range apps3 {
		base := times[a][ligra.PushS]
		noSync := any("n/a (race detector)")
		if !race.Enabled {
			noSync = ratio(base, times[a][ligra.PushPPullPNoSync])
		}
		t.AddRow(a,
			ratio(base, times[a][ligra.PushS]),
			ratio(base, times[a][ligra.PushP]),
			ratio(base, times[a][ligra.PushPPullS]),
			ratio(base, times[a][ligra.PushPPullP]),
			noSync)
	}
	return []*Table{t}
}

// schedVariants returns the interfaces compared throughout §6.1. The
// nonatomic reference point is racy by design and excluded under -race.
func schedVariants() []core.PullVariant {
	if race.Enabled {
		return []core.PullVariant{core.PullTraditional, core.PullSchedulerAware}
	}
	return []core.PullVariant{
		core.PullTraditional, core.PullTraditionalNonatomic, core.PullSchedulerAware,
	}
}

// runPR times cfg.PRIters PageRank iterations under the given pull variant
// and granularity, returning the wall time and, when record is set, the
// final run's result for counter inspection.
func runPR(cfg Config, d gen.Dataset, variant core.PullVariant, chunkVectors int, record bool) (time.Duration, core.Result) {
	g := cfg.DatasetGraph(d)
	cg := cfg.DatasetCoreGraph(d)
	r := core.NewRunner(cg, core.Options{
		Workers:      cfg.Workers,
		Variant:      variant,
		ChunkVectors: chunkVectors,
		Mode:         core.EnginePullOnly,
		Record:       record,
	})
	defer r.Close()
	p := apps.NewPageRank(g)
	var res core.Result
	dur := cfg.timeBest(func() { res = core.Run(r, p, cfg.PRIters) })
	return dur, res
}

// Fig5 reproduces §6.1's headline comparison: PageRank under the
// traditional, traditional-nonatomic, and scheduler-aware interfaces at a
// fixed granularity of 1,000 edge vectors per chunk, across all six
// datasets. Fig 5a reports execution time relative to the traditional
// interface (lower is better); Fig 5b reports the execution-time profile
// and the conflict counters that explain it.
func Fig5(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	const granularity = 1000
	ta := &Table{
		Title:   "Figure 5a: PageRank execution time relative to the traditional interface (granularity 1000 vectors/chunk)",
		Columns: []string{"Graph", "Traditional", "Traditional-Nonatomic", "Scheduler-Aware", "SA speedup"},
	}
	tb := &Table{
		Title:   "Figure 5b: execution profile and conflict counters",
		Note:    "Work/Merge/Idle are fractions of edge-phase worker time; counters are per full run",
		Columns: []string{"Graph", "Variant", "Work%", "Merge%", "Idle%", "SharedWrites", "TLSWrites", "AtomicOps", "CASRetries"},
	}
	for _, d := range cfg.Datasets {
		times := map[core.PullVariant]time.Duration{}
		for _, v := range schedVariants() {
			dur, res := runPR(cfg, d, v, granularity, true)
			times[v] = dur
			prof := res.EdgeProfile
			tot := prof.Total()
			pct := func(x time.Duration) string {
				if tot == 0 {
					return "0"
				}
				return fmt.Sprintf("%.1f", 100*float64(x)/float64(tot))
			}
			tb.AddRow(d.Abbrev(), v.String(), pct(prof.Work), pct(prof.Merge), pct(prof.Idle),
				res.EdgeCounters.SharedWrites, res.EdgeCounters.TLSWrites,
				res.EdgeCounters.AtomicOps, res.EdgeCounters.CASRetries)
		}
		base := times[core.PullTraditional]
		nonatomic := any("n/a (race detector)")
		if _, ok := times[core.PullTraditionalNonatomic]; ok {
			nonatomic = relTime(base, times[core.PullTraditionalNonatomic])
		}
		ta.AddRow(d.Abbrev(),
			relTime(base, times[core.PullTraditional]),
			nonatomic,
			relTime(base, times[core.PullSchedulerAware]),
			ratio(base, times[core.PullSchedulerAware]))
	}
	return []*Table{ta, tb}
}

func relTime(base, v time.Duration) float64 {
	if base == 0 {
		return 0
	}
	return float64(v) / float64(base)
}

// Fig6 reproduces the chunk-size sensitivity study on the dimacs-usa,
// twitter-2010, and uk-2007 analogs: the traditional interface's time
// varies strongly with granularity while the scheduler-aware interface is
// nearly flat.
func Fig6(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	grans := []int{100, 250, 500, 1000, 2500, 5000, 10000}
	if cfg.Quick {
		grans = []int{100, 1000, 10000}
	}
	var tables []*Table
	for _, d := range []gen.Dataset{gen.DimacsUSA, gen.Twitter, gen.UK2007} {
		t := &Table{
			Title:   fmt.Sprintf("Figure 6: PageRank chunk-size sensitivity on %s analog", d),
			Note:    "times relative to Traditional at the smallest granularity; lower is better",
			Columns: []string{"Vectors/chunk", "Traditional", "Scheduler-Aware"},
		}
		var base time.Duration
		for i, g := range grans {
			tTrad, _ := runPR(cfg, d, core.PullTraditional, g, false)
			tSA, _ := runPR(cfg, d, core.PullSchedulerAware, g, false)
			if i == 0 {
				base = tTrad
			}
			t.AddRow(g, relTime(base, tTrad), relTime(base, tSA))
		}
		tables = append(tables, t)
	}
	return tables
}

// Fig7 reproduces the multi-core scaling study: PageRank performance of the
// two interfaces as worker count grows, normalized to the traditional
// interface at one worker. The reproduction machine has few cores, so the
// CAS-retry counter — the direct mechanism behind the paper's scaling gap —
// is reported alongside.
func Fig7(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	var tables []*Table
	cases := []struct {
		d    gen.Dataset
		gran int
	}{{gen.DimacsUSA, 5000}, {gen.Twitter, 5000}, {gen.UK2007, 50000}}
	for _, cse := range cases {
		t := &Table{
			Title:   fmt.Sprintf("Figure 7: PageRank multi-core scaling on %s analog (granularity %d)", cse.d, cse.gran),
			Note:    "performance relative to Traditional at 1 worker; higher is better",
			Columns: []string{"Workers", "Traditional", "Scheduler-Aware", "Trad CASRetries", "SA AtomicOps"},
		}
		var base time.Duration
		for w := 1; w <= cfg.Workers; w++ {
			sub := cfg
			sub.Workers = w
			tTrad, resT := runPR(sub, cse.d, core.PullTraditional, cse.gran, true)
			tSA, resS := runPR(sub, cse.d, core.PullSchedulerAware, cse.gran, true)
			if w == 1 {
				base = tTrad
			}
			t.AddRow(w, ratio(base, tTrad), ratio(base, tSA),
				resT.EdgeCounters.CASRetries, resS.EdgeCounters.AtomicOps)
		}
		tables = append(tables, t)
	}
	return tables
}

// Fig8 reproduces the Connected Components scheduler-awareness study at
// Grazelle's default granularity: the write-intense variant (8a) and the
// standard version (8b), as execution time relative to the traditional
// interface.
func Fig8(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	mk := func(writeIntense bool, title string) *Table {
		t := &Table{
			Title:   title,
			Columns: []string{"Graph", "Traditional", "Traditional-Nonatomic", "Scheduler-Aware"},
		}
		for _, d := range cfg.Datasets {
			cg := cfg.DatasetCoreGraph(d)
			times := map[core.PullVariant]time.Duration{}
			for _, v := range schedVariants() {
				r := core.NewRunner(cg, core.Options{Workers: cfg.Workers, Variant: v})
				prog := apps.NewConnComp()
				if writeIntense {
					prog = apps.NewConnCompWriteIntense()
				}
				times[v] = cfg.timeBest(func() { core.Run(r, prog, 1<<20) })
				r.Close()
			}
			base := times[core.PullTraditional]
			nonatomic := any("n/a (race detector)")
			if _, ok := times[core.PullTraditionalNonatomic]; ok {
				nonatomic = relTime(base, times[core.PullTraditionalNonatomic])
			}
			t.AddRow(d.Abbrev(),
				relTime(base, times[core.PullTraditional]),
				nonatomic,
				relTime(base, times[core.PullSchedulerAware]))
		}
		return t
	}
	return []*Table{
		mk(true, "Figure 8a: Connected Components (write-intense) relative execution time"),
		mk(false, "Figure 8b: Connected Components (standard) relative execution time"),
	}
}
