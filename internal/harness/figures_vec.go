package harness

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/vsparse"
)

// Fig9 reproduces the packing-efficiency study. 9a: average edge-vector
// packing efficiency of the six dataset analogs for 4-, 8-, and 16-element
// vectors (256/512/1024-bit). 9b: the same metric over a synthetic R-MAT
// suite swept by average degree. Both are exact analytic properties of the
// degree distributions, so this figure reproduces quantitatively, not just
// in shape.
func Fig9(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	lanes := []int{4, 8, 16}
	ta := &Table{
		Title:   "Figure 9a: Vector-Sparse packing efficiency, real-graph analogs",
		Columns: []string{"Graph", "4-element", "8-element", "16-element"},
	}
	for _, d := range cfg.Datasets {
		g := cfg.DatasetGraph(d)
		deg := g.InDegrees()
		row := []any{d.Abbrev()}
		for _, l := range lanes {
			row = append(row, fmt.Sprintf("%.1f%%", 100*vsparse.PackingEfficiencyForLanes(deg, l)))
		}
		ta.AddRow(row...)
	}
	tb := &Table{
		Title:   "Figure 9b: packing efficiency vs average degree (R-MAT suite)",
		Columns: []string{"log2(avg degree)", "4-element", "8-element", "16-element"},
	}
	scale := 10
	maxLog := 12
	if cfg.Quick {
		scale, maxLog = 8, 8
	}
	n := 1 << scale
	for lg := 0; lg <= maxLog; lg++ {
		edges := n * (1 << lg)
		g := gen.RMAT(scale, edges, gen.DefaultRMAT, int64(100+lg))
		deg := g.InDegrees()
		row := []any{lg}
		for _, l := range lanes {
			row = append(row, fmt.Sprintf("%.1f%%", 100*vsparse.PackingEfficiencyForLanes(deg, l)))
		}
		tb.AddRow(row...)
	}
	return []*Table{ta, tb}
}

// phaseTimes measures one Grazelle phase in isolation: the runner is
// initialized once and the phase re-executed repeats times.
func phaseTime(cfg Config, cg *core.Graph, p apps.Program, scalar bool, phase string) time.Duration {
	mode := core.EnginePullOnly
	if phase == "push" {
		mode = core.EnginePushOnly
	}
	r := core.NewRunner(cg, core.Options{Workers: cfg.Workers, Scalar: scalar, Mode: mode})
	defer r.Close()
	ec := r.NewContext()
	ec.Init(p)
	reps := cfg.PRIters
	switch phase {
	case "pull":
		return cfg.timeBest(func() {
			for i := 0; i < reps; i++ {
				core.RunEdgePull(ec, p)
			}
		})
	case "push":
		return cfg.timeBest(func() {
			for i := 0; i < reps; i++ {
				core.RunEdgePush(ec, p)
			}
		})
	default: // vertex
		return cfg.timeBest(func() {
			for i := 0; i < reps; i++ {
				core.RunVertex(ec, p)
			}
		})
	}
}

// Fig10 reproduces the vectorization study: 10a compares the vectorized and
// scalar implementations of each Grazelle phase under PageRank (Edge-Pull
// responds ~2×, Edge-Push and Vertex stay flat); 10b reports end-to-end
// application speedups (PageRank > Connected Components > BFS, ordered by
// Edge-Pull usage).
func Fig10(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	ta := &Table{
		Title:   "Figure 10a: vectorization speedup by PageRank phase (scalar time / vectorized time)",
		Columns: []string{"Graph", "Edge-Pull", "Edge-Push", "Vertex"},
	}
	for _, d := range cfg.Datasets {
		g := cfg.DatasetGraph(d)
		cg := cfg.DatasetCoreGraph(d)
		p := apps.NewPageRank(g)
		row := []any{d.Abbrev()}
		for _, phase := range []string{"pull", "push", "vertex"} {
			scalar := phaseTime(cfg, cg, p, true, phase)
			vectored := phaseTime(cfg, cg, p, false, phase)
			row = append(row, ratio(scalar, vectored))
		}
		ta.AddRow(row...)
	}
	tb := &Table{
		Title:   "Figure 10b: end-to-end vectorization speedup by application",
		Columns: []string{"Graph", "PR", "CC", "BFS"},
	}
	for _, d := range cfg.Datasets {
		g := cfg.DatasetGraph(d)
		cg := cfg.DatasetCoreGraph(d)
		row := []any{d.Abbrev()}
		for _, app := range []string{"PR", "CC", "BFS"} {
			runOnce := func(scalar bool) time.Duration {
				r := core.NewRunner(cg, core.Options{Workers: cfg.Workers, Scalar: scalar})
				defer r.Close()
				switch app {
				case "PR":
					return cfg.timeBest(func() { core.Run(r, apps.NewPageRank(g), cfg.PRIters) })
				case "CC":
					return cfg.timeBest(func() { core.Run(r, apps.NewConnComp(), 1<<20) })
				default:
					return cfg.timeBest(func() { core.Run(r, apps.NewBFS(0), 1<<20) })
				}
			}
			row = append(row, ratio(runOnce(true), runOnce(false)))
		}
		tb.AddRow(row...)
	}
	return []*Table{ta, tb}
}
