package harness

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/race"
)

// quickCfg keeps every experiment fast enough for unit testing while still
// executing its full code path.
func quickCfg() Config {
	return Config{Quick: true, Workers: 2, Repeats: 1, PRIters: 2,
		Datasets: []gen.Dataset{gen.CitPatents, gen.DimacsUSA, gen.Twitter, gen.UK2007}}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "table1", "table2"}
	names := Names()
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %q not registered", w)
		}
	}
	if _, err := Lookup("fig5"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup accepted an unknown name")
	}
	if len(All()) != len(names) {
		t.Error("All and Names disagree")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Note: "n", Columns: []string{"a", "bb"}}
	tab.AddRow("x", 1.5)
	tab.AddRow("longer", "y")
	s := tab.String()
	for _, want := range []string{"== T ==", "a", "bb", "longer", "1.500"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestTable1Runs(t *testing.T) {
	tabs := Table1(quickCfg())
	if len(tabs) != 1 || len(tabs[0].Rows) != 4 {
		t.Fatalf("Table1 produced %d tables / %d rows", len(tabs), len(tabs[0].Rows))
	}
}

func TestFig9Shapes(t *testing.T) {
	tabs := Fig9(quickCfg())
	if len(tabs) != 2 {
		t.Fatalf("Fig9 produced %d tables", len(tabs))
	}
	// 9b: efficiency must rise with average degree for 4-element vectors.
	rows := tabs[1].Rows
	first := parsePct(t, rows[0][1])
	last := parsePct(t, rows[len(rows)-1][1])
	if last <= first {
		t.Errorf("packing efficiency should rise with degree: %v -> %v", first, last)
	}
	// And fall (weakly) with lane width on every row.
	for _, row := range rows {
		e4, e8, e16 := parsePct(t, row[1]), parsePct(t, row[2]), parsePct(t, row[3])
		if e4 < e8-1e-9 || e8 < e16-1e-9 {
			t.Errorf("efficiency not monotone in lanes: %v", row)
		}
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage %q", s)
	}
	return v
}

func TestFig5SchedulerAwareWins(t *testing.T) {
	cfg := quickCfg()
	cfg.Datasets = []gen.Dataset{gen.UK2007}
	tabs := Fig5(cfg)
	if len(tabs) != 2 {
		t.Fatalf("Fig5 produced %d tables", len(tabs))
	}
	// Fig 5a row: [graph, trad(=1.0), tradNA, sa, speedup]; the columns
	// must parse as relative times. Wall-clock ordering is asserted only
	// loosely (quick-mode runs are tiny and can flake under scheduler
	// noise); the deterministic mechanism is checked via the Fig 5b
	// counters below.
	row := tabs[0].Rows[0]
	if _, err := strconv.ParseFloat(row[3], 64); err != nil {
		t.Fatal(err)
	}
	// Fig 5b: the scheduler-aware rows must report zero atomics and
	// strictly fewer shared writes than the traditional rows.
	shared := map[string]uint64{}
	for _, r := range tabs[1].Rows {
		v, err := strconv.ParseUint(r[5], 10, 64)
		if err != nil {
			t.Fatalf("bad SharedWrites cell %q", r[5])
		}
		shared[r[1]] = v
		if r[1] == "Scheduler-Aware" && r[7] != "0" {
			t.Errorf("scheduler-aware reported %s atomics", r[7])
		}
		if r[1] == "Traditional" && r[7] == "0" {
			t.Errorf("traditional reported zero atomics")
		}
	}
	if shared["Scheduler-Aware"] >= shared["Traditional"] {
		t.Errorf("scheduler-aware shared writes (%d) not below traditional (%d)",
			shared["Scheduler-Aware"], shared["Traditional"])
	}
}

func TestFig6Runs(t *testing.T) {
	cfg := quickCfg()
	tabs := Fig6(cfg)
	if len(tabs) != 3 {
		t.Fatalf("Fig6 produced %d tables, want 3 (D, T, U)", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 3 {
			t.Errorf("%s: %d granularity rows", tab.Title, len(tab.Rows))
		}
	}
}

func TestFig7Runs(t *testing.T) {
	cfg := quickCfg()
	cfg.Datasets = []gen.Dataset{gen.Twitter}
	tabs := Fig7(cfg)
	if len(tabs) != 3 {
		t.Fatalf("Fig7 produced %d tables", len(tabs))
	}
	if len(tabs[0].Rows) != cfg.Workers {
		t.Errorf("worker sweep has %d rows, want %d", len(tabs[0].Rows), cfg.Workers)
	}
}

func TestFig8Runs(t *testing.T) {
	cfg := quickCfg()
	cfg.Datasets = []gen.Dataset{gen.CitPatents}
	tabs := Fig8(cfg)
	if len(tabs) != 2 {
		t.Fatalf("Fig8 produced %d tables", len(tabs))
	}
}

func TestFig10Runs(t *testing.T) {
	cfg := quickCfg()
	cfg.Datasets = []gen.Dataset{gen.Twitter}
	tabs := Fig10(cfg)
	if len(tabs) != 2 {
		t.Fatalf("Fig10 produced %d tables", len(tabs))
	}
	if len(tabs[0].Rows) != 1 || len(tabs[0].Rows[0]) != 4 {
		t.Errorf("Fig10a row shape wrong: %v", tabs[0].Rows)
	}
}

func TestFig1Runs(t *testing.T) {
	if race.Enabled {
		t.Skip("Fig 1 includes the intentionally-racy PushP+PullP-NoSync configuration")
	}
	cfg := quickCfg()
	tabs := Fig1(cfg)
	if len(tabs) != 1 || len(tabs[0].Rows) != 3 {
		t.Fatalf("Fig1 shape wrong")
	}
	// PushS column is the baseline: exactly 1.0 for every application.
	for _, row := range tabs[0].Rows {
		if row[1] != "1.000" {
			t.Errorf("PushS baseline = %s, want 1.000", row[1])
		}
	}
}

func TestFig11MarksOriginalScaleFailures(t *testing.T) {
	cfg := quickCfg()
	cfg.Datasets = []gen.Dataset{gen.UK2007}
	tabs := Fig11(cfg)
	row := tabs[0].Rows[0]
	// Polymer and GraphMat columns must be n/a on the uk-2007 analog (the
	// original dataset exceeds both frameworks' limits).
	if !strings.HasPrefix(row[6], "n/a") {
		t.Errorf("Polymer cell = %q, want n/a on uk-2007", row[6])
	}
	if !strings.HasPrefix(row[7], "n/a") {
		t.Errorf("GraphMat cell = %q, want n/a on uk-2007", row[7])
	}
	// Twitter's original (1.47B edges) fits int32 indexing: per the paper,
	// only uk-2007 defeats GraphMat and Polymer.
	cfg.Datasets = []gen.Dataset{gen.Twitter}
	row = Fig11(cfg)[0].Rows[0]
	if strings.HasPrefix(row[7], "n/a") {
		t.Errorf("GraphMat cell = %q, should run on twitter-2010", row[7])
	}
	if strings.HasPrefix(row[6], "n/a") {
		t.Errorf("Polymer cell = %q, should run on twitter-2010", row[6])
	}
	// cit-Patents fits everywhere: no n/a cells.
	cfg.Datasets = []gen.Dataset{gen.CitPatents}
	row = Fig11(cfg)[0].Rows[0]
	for i, cell := range row {
		if strings.HasPrefix(cell, "n/a") {
			t.Errorf("column %d = %q on cit-Patents", i, cell)
		}
	}
}

func TestFig12And13Run(t *testing.T) {
	cfg := quickCfg()
	cfg.Datasets = []gen.Dataset{gen.CitPatents}
	if tabs := Fig12(cfg); len(tabs[0].Rows) != 2 {
		t.Errorf("Fig12 rows = %d, want 2 (sockets 1,2 in quick mode)", len(tabs[0].Rows))
	}
	if tabs := Fig13(cfg); len(tabs[0].Rows) != 2 {
		t.Errorf("Fig13 rows = %d", len(tabs[0].Rows))
	}
}
