package harness

import (
	"context"
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/graph"
)

// IncrementalAB measures incremental recompute (DESIGN.md §15) against full
// recompute: for each seed-capable hot-path app on the T/U/D analogs, a
// small mutation batch is applied and the new version's result is computed
// both ways — cold, and seeded from the predecessor's lanes via the app's
// IncrementalSeed planner. The incremental timing includes planning, so a
// row is the end-to-end cost a serving layer would pay. Batches are shaped
// per app to exercise the intended fast path: pr and bfs get re-assertions
// of existing edges (topology-preserving, the direct plan), cc gets
// genuinely new edges (warm frontier-seeded fixpoint).

// IncrementalABResult is one (dataset, app, batch size) A/B row.
type IncrementalABResult struct {
	Dataset       string  `json:"dataset"`
	App           string  `json:"app"`
	BatchOps      int     `json:"batch_ops"`
	FullNS        int64   `json:"full_ns"`
	IncrementalNS int64   `json:"incremental_ns"`
	Speedup       float64 `json:"speedup"`
	// Seeded reports whether the incremental run actually warm-started;
	// false means the planner (correctly) refused and the row compares full
	// against fallback-to-full.
	Seeded bool `json:"seeded"`
}

var (
	incrementalABApps    = []string{"pr", "cc", "bfs"}
	incrementalABBatches = []int{1, 16, 256}
)

// reassertOps builds n upserts that each re-assert an existing edge whose
// (src, dst) pair is unique in g — the batch is a topology no-op under
// last-writer-wins apply, which is what the pr/bfs direct plans detect.
func reassertOps(g *graph.Graph, n int) []graph.EdgeOp {
	count := make(map[[2]uint32]int, len(g.Edges))
	for _, e := range g.Edges {
		count[[2]uint32{e.Src, e.Dst}]++
	}
	ops := make([]graph.EdgeOp, 0, n)
	for _, e := range g.Edges {
		if count[[2]uint32{e.Src, e.Dst}] == 1 {
			ops = append(ops, graph.EdgeOp{Src: e.Src, Dst: e.Dst, Weight: e.Weight})
			if len(ops) == n {
				break
			}
		}
	}
	return ops
}

// freshEdgeOps builds n inserts of edges not present in g (and not self
// loops) — the genuinely-new-edge batch cc's warm plan propagates from.
func freshEdgeOps(g *graph.Graph, n int) []graph.EdgeOp {
	have := make(map[[2]uint32]bool, len(g.Edges))
	for _, e := range g.Edges {
		have[[2]uint32{e.Src, e.Dst}] = true
	}
	nv := uint32(g.NumVertices)
	ops := make([]graph.EdgeOp, 0, n)
	// Deterministic sweep with a large stride so the touched endpoints
	// scatter across the vertex space instead of clustering.
	for i := uint32(0); len(ops) < n && i < 4*nv; i++ {
		src := (i * 2654435761) % nv
		dst := (src + 1 + i%97) % nv
		if src == dst || have[[2]uint32{src, dst}] {
			continue
		}
		have[[2]uint32{src, dst}] = true
		ops = append(ops, graph.EdgeOp{Src: src, Dst: dst, Weight: 1})
	}
	return ops
}

// IncrementalAB produces the incremental-vs-full rows for BenchJSON.
func IncrementalAB(cfg Config) ([]IncrementalABResult, error) {
	cfg = cfg.withDefaults()
	var rows []IncrementalABResult
	for _, d := range cfg.Datasets {
		ab := string(d.Abbrev())
		if !tudDataset(ab) {
			continue
		}
		g0 := cfg.DatasetGraph(d)
		r0 := core.NewRunner(cfg.DatasetCoreGraph(d), core.Options{Workers: cfg.Workers})
		for _, name := range incrementalABApps {
			ent, err := apps.Lookup(name)
			if err != nil {
				r0.Close()
				return nil, err
			}
			if ent.IncrementalSeed == nil {
				r0.Close()
				return nil, fmt.Errorf("harness: %s has no incremental capability", name)
			}
			p := ent.Normalize(apps.Params{Iters: cfg.PRIters})
			prog0, err := ent.New(g0, p)
			if err != nil {
				r0.Close()
				return nil, err
			}
			pred := core.Run(r0, prog0, ent.MaxIters(p)).Props
			for _, batch := range incrementalABBatches {
				var ops []graph.EdgeOp
				if name == "cc" {
					ops = freshEdgeOps(g0, batch)
				} else {
					ops = reassertOps(g0, batch)
				}
				if len(ops) == 0 {
					continue
				}
				g1 := graph.ApplyEdgeOps(g0, ops)
				r1 := core.NewRunner(core.BuildGraph(g1), core.Options{Workers: cfg.Workers})
				fullNS := cfg.timeBest(func() {
					prog, err := ent.New(g1, p)
					if err != nil {
						return
					}
					core.Run(r1, prog, ent.MaxIters(p))
				}).Nanoseconds()
				var seeded bool
				incrNS := cfg.timeBest(func() {
					plan, perr := ent.IncrementalSeed(apps.SeedInput{
						Graph:           g1,
						Params:          p,
						Pred:            pred,
						Ops:             ops,
						FromEdges:       g0.NumEdges(),
						FromCountsKnown: true,
					})
					if perr != nil || plan == nil {
						seeded = false
						prog, err := ent.New(g1, p)
						if err != nil {
							return
						}
						core.Run(r1, prog, ent.MaxIters(p))
						return
					}
					max := ent.MaxIters(p)
					if plan.Direct {
						max = 0
					}
					prog, err := ent.New(g1, p)
					if err != nil {
						return
					}
					res, _ := core.RunSeededCtx(context.Background(), r1, prog, max, &core.Seed{
						Props:    plan.Props,
						Frontier: plan.Frontier,
					})
					seeded = res.Seeded
				}).Nanoseconds()
				r1.Close()
				rows = append(rows, IncrementalABResult{
					Dataset:       ab,
					App:           name,
					BatchOps:      len(ops),
					FullNS:        fullNS,
					IncrementalNS: incrNS,
					Speedup:       float64(fullNS) / float64(incrNS),
					Seeded:        seeded,
				})
			}
		}
		r0.Close()
	}
	return rows, nil
}
