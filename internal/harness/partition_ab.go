package harness

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
)

// PartitionABResult is one (dataset, app, partitions) row comparing the
// monolithic coordinator against the partitioned one — the Fig 5 workload
// re-run through the scale-out seam. Both sides run with tracing on (the
// serve-mode configuration), so the ratio isolates the coordinator: the
// scatter-gather span dispatch and the shared-memory frontier exchange.
// Output is bit-identical by contract; the rows verify it on every run.
type PartitionABResult struct {
	Dataset       string `json:"dataset"`
	App           string `json:"app"`
	Partitions    int    `json:"partitions"`
	MonolithicNS  int64  `json:"monolithic_ns"`
	PartitionedNS int64  `json:"partitioned_ns"`
	// Ratio is partitioned/monolithic wall time: >1 is coordinator overhead.
	Ratio float64 `json:"ratio"`
	// ExchangeBytes is each partition's frontier bytes through the exchange
	// over the measured run (all zero for frontier-blind apps like pr).
	ExchangeBytes []int64 `json:"exchange_bytes"`
}

// partitionABCounts are the partition counts each A/B row sweep covers.
var partitionABCounts = []int{2, 4}

// PartitionAB measures the partitioned coordinator against the monolithic
// path on PR/CC/BFS over the config's datasets, asserting bit-identical
// output as it goes.
func PartitionAB(cfg Config) ([]PartitionABResult, error) {
	cfg = cfg.withDefaults()
	var rows []PartitionABResult
	for _, d := range cfg.Datasets {
		g := cfg.DatasetGraph(d)
		cg := cfg.DatasetCoreGraph(d)
		type appCase struct {
			name string
			run  func(r *core.Runner) core.Result
		}
		cases := []appCase{
			{"pr", func(r *core.Runner) core.Result { return core.Run(r, apps.NewPageRank(g), cfg.PRIters) }},
			{"cc", func(r *core.Runner) core.Result { return core.Run(r, apps.NewConnComp(), 1<<20) }},
			{"bfs", func(r *core.Runner) core.Result { return core.Run(r, apps.NewBFS(0), 1<<20) }},
		}
		for _, c := range cases {
			mono := core.NewRunner(cg, core.Options{Workers: cfg.Workers, Trace: true})
			var monoRes core.Result
			monoNS := cfg.timeBest(func() { monoRes = c.run(mono) }).Nanoseconds()
			mono.Close()
			for _, parts := range partitionABCounts {
				r := core.NewRunner(cg, core.Options{
					Workers: cfg.Workers, Trace: true, Partitions: parts,
				})
				var res core.Result
				best := cfg.timeBest(func() { res = c.run(r) })
				r.Close()
				if res.Partitions != parts {
					return nil, fmt.Errorf("%s/%s: effective partitions %d, want %d",
						d.Abbrev(), c.name, res.Partitions, parts)
				}
				for v := range monoRes.Props {
					if res.Props[v] != monoRes.Props[v] {
						return nil, fmt.Errorf("%s/%s p=%d: props[%d] diverged from monolithic",
							d.Abbrev(), c.name, parts, v)
					}
				}
				bytes := make([]int64, 0, parts)
				for _, ps := range res.Trace.Partitions {
					bytes = append(bytes, ps.ExchangeBytes)
				}
				rows = append(rows, PartitionABResult{
					Dataset:       string(d.Abbrev()),
					App:           c.name,
					Partitions:    parts,
					MonolithicNS:  monoNS,
					PartitionedNS: best.Nanoseconds(),
					Ratio:         float64(best.Nanoseconds()) / float64(monoNS),
					ExchangeBytes: bytes,
				})
			}
		}
	}
	return rows, nil
}
