package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/gen"
)

func TestPartitionABRows(t *testing.T) {
	cfg := Config{Quick: true, Datasets: []gen.Dataset{gen.AllDatasets[0]}}
	rows, err := PartitionAB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * len(partitionABCounts); len(rows) != want {
		t.Fatalf("rows = %d, want %d (pr, cc, bfs × partition counts)", len(rows), want)
	}
	for _, r := range rows {
		if r.MonolithicNS <= 0 || r.PartitionedNS <= 0 || r.Ratio <= 0 {
			t.Errorf("%s/%s p=%d: non-positive timings %+v", r.Dataset, r.App, r.Partitions, r)
		}
		if len(r.ExchangeBytes) != r.Partitions {
			t.Errorf("%s/%s p=%d: %d exchange-byte entries", r.Dataset, r.App, r.Partitions, len(r.ExchangeBytes))
		}
		var sum int64
		for _, b := range r.ExchangeBytes {
			sum += b
		}
		// Frontier-driven apps must move frontier state; pr is blind.
		if r.App == "pr" && sum != 0 {
			t.Errorf("pr exchanged %d bytes, want 0", sum)
		}
		if r.App != "pr" && sum == 0 {
			t.Errorf("%s/%s p=%d exchanged no bytes", r.Dataset, r.App, r.Partitions)
		}
	}
}

func TestBenchJSONIncludesPartitionAB(t *testing.T) {
	cfg := Config{Quick: true, PartitionAB: true, Datasets: []gen.Dataset{gen.AllDatasets[0]}}
	var buf bytes.Buffer
	if err := BenchJSON(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	var snap BenchSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.PartitionAB) == 0 {
		t.Fatal("snapshot has no partition_ab rows")
	}
}
