package harness

import (
	"fmt"
	"sort"
)

// Experiment is one registered paper experiment.
type Experiment struct {
	// Name is the CLI identifier (e.g. "fig5").
	Name string
	// Description summarizes what the experiment reproduces.
	Description string
	// Run produces the experiment's tables.
	Run func(Config) []*Table
}

// experiments is the registry, keyed by name.
var experiments = map[string]Experiment{}

func register(name, desc string, run func(Config) []*Table) {
	experiments[name] = Experiment{Name: name, Description: desc, Run: run}
}

func init() {
	register("table1", "dataset analogs vs the paper's Table 1 inputs", Table1)
	register("table2", "suggested PageRank iteration counts (artifact Table 2)", Table2)
	register("fig1", "Ligra loop-parallelization configurations (Fig 1)", Fig1)
	register("fig5", "scheduler awareness on PageRank: time + profile (Fig 5)", Fig5)
	register("fig6", "chunk-size sensitivity (Fig 6)", Fig6)
	register("fig7", "multi-core scaling of the two interfaces (Fig 7)", Fig7)
	register("fig8", "scheduler awareness on Connected Components (Fig 8)", Fig8)
	register("fig9", "Vector-Sparse packing efficiency (Fig 9)", Fig9)
	register("fig10", "vectorization speedups by phase and application (Fig 10)", Fig10)
	register("fig11", "framework comparison: PageRank (Fig 11)", Fig11)
	register("fig12", "framework comparison: Connected Components (Fig 12)", Fig12)
	register("fig13", "framework comparison: BFS (Fig 13)", Fig13)
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, error) {
	e, ok := experiments[name]
	if !ok {
		return Experiment{}, fmt.Errorf("harness: unknown experiment %q (try one of %v)", name, Names())
	}
	return e, nil
}

// Names lists registered experiment names in order.
func Names() []string {
	out := make([]string, 0, len(experiments))
	for n := range experiments {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every experiment in name order.
func All() []Experiment {
	var out []Experiment
	for _, n := range Names() {
		out = append(out, experiments[n])
	}
	return out
}
