// Package harness regenerates every table and figure of the paper's
// evaluation (§6) as printable tables: one exported function per
// experiment, a registry for the benchfig CLI, and shared measurement
// utilities. Scales and iteration counts are configurable so the same specs
// serve both the full benchfig runs and the quick testing.B benchmarks.
package harness

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is one rendered experiment result: a title, a header, and rows of
// preformatted cells.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = fmtDuration(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
