package harness

import (
	"fmt"
	"os"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/store"
)

// WALBenchResult is one dataset's streaming-mutation throughput row: how
// fast ApplyEdges acknowledges durable batches against a disk-backed store,
// and how long reopening the store takes to replay that WAL tail back into
// a servable view (store.Open plus the first materializing Acquire).
type WALBenchResult struct {
	Dataset     string `json:"dataset"`
	Batches     int    `json:"batches"`
	OpsPerBatch int    `json:"ops_per_batch"`
	// AppendNS is the total wall time of the append loop; AppendsPerSec is
	// Batches normalized by it — each append is WAL-framed, group-commit
	// fsynced, and published under a new version before it counts.
	AppendNS      int64   `json:"append_ns"`
	AppendsPerSec float64 `json:"appends_per_sec"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	// RecoveryNS is the crash-recovery path: reopen the store over the WAL
	// tail and materialize the merged view.
	RecoveryNS        int64   `json:"recovery_ns"`
	RecoveryPerBatch  float64 `json:"recovery_per_batch_ns"`
	RecoveredVertices int     `json:"recovered_vertices"`
}

// walBenchOps builds one deterministic mutation batch: half re-weights of
// existing edges, half fresh inserts, the shape a streaming feed produces.
func walBenchOps(g *graph.Graph, round, n int) []graph.EdgeOp {
	ops := make([]graph.EdgeOp, 0, n)
	v := uint32(g.NumVertices)
	for i := 0; len(ops) < n; i++ {
		if i%2 == 0 {
			e := g.Edges[(i*131+round*17)%len(g.Edges)]
			ops = append(ops, graph.EdgeOp{Src: e.Src, Dst: e.Dst, Weight: float32(round + 1)})
		} else {
			ops = append(ops, graph.EdgeOp{
				Src: uint32(i*37+round*101) % v,
				Dst: uint32(i*89+round*53+1) % v,
			})
		}
	}
	return ops
}

// WALBench measures streaming-mutation write throughput and recovery-replay
// time over the config's datasets, using the same store composition serve
// mode wires up (WAL-durable ApplyEdges against a data directory).
func WALBench(cfg Config) ([]WALBenchResult, error) {
	cfg = cfg.withDefaults()
	batches, opsPer := 256, 64
	if cfg.Quick {
		batches = 32
	}

	var rows []WALBenchResult
	for _, d := range cfg.Datasets {
		row, err := walBenchRow(cfg, d, batches, opsPer)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func walBenchRow(cfg Config, d gen.Dataset, batches, opsPer int) (WALBenchResult, error) {
	dir, err := os.MkdirTemp("", "grazelle-walbench")
	if err != nil {
		return WALBenchResult{}, err
	}
	defer os.RemoveAll(dir)

	name := string(d.Abbrev())
	g := cfg.DatasetGraph(d)
	st, err := store.Open(store.Config{DataDir: dir, Workers: cfg.Workers})
	if err != nil {
		return WALBenchResult{}, err
	}
	if err := st.Add(name, g); err != nil {
		st.Close()
		return WALBenchResult{}, err
	}

	start := time.Now()
	for round := 0; round < batches; round++ {
		if _, _, err := st.ApplyEdges(name, walBenchOps(g, round, opsPer)); err != nil {
			st.Close()
			return WALBenchResult{}, fmt.Errorf("wal bench %s batch %d: %w", name, round, err)
		}
	}
	appendWall := time.Since(start)
	if err := st.Close(); err != nil {
		return WALBenchResult{}, err
	}

	// Recovery: reopen over the WAL tail and materialize the merged view —
	// the wall time a crashed instance pays before serving again.
	start = time.Now()
	st2, err := store.Open(store.Config{DataDir: dir, Workers: cfg.Workers})
	if err != nil {
		return WALBenchResult{}, err
	}
	h, err := st2.Acquire(name)
	if err != nil {
		st2.Close()
		return WALBenchResult{}, err
	}
	recoveryWall := time.Since(start)
	vertices := h.Source().NumVertices
	h.Close()
	if err := st2.Close(); err != nil {
		return WALBenchResult{}, err
	}

	sec := appendWall.Seconds()
	return WALBenchResult{
		Dataset:           name,
		Batches:           batches,
		OpsPerBatch:       opsPer,
		AppendNS:          appendWall.Nanoseconds(),
		AppendsPerSec:     float64(batches) / sec,
		OpsPerSec:         float64(batches*opsPer) / sec,
		RecoveryNS:        recoveryWall.Nanoseconds(),
		RecoveryPerBatch:  float64(recoveryWall.Nanoseconds()) / float64(batches),
		RecoveredVertices: vertices,
	}, nil
}
