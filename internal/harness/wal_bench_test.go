package harness

import (
	"testing"

	"repro/internal/gen"
)

func TestWALBenchRows(t *testing.T) {
	cfg := Config{Quick: true, Datasets: []gen.Dataset{gen.AllDatasets[0]}}
	rows, err := WALBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	r := rows[0]
	if r.Batches != 32 || r.OpsPerBatch != 64 {
		t.Errorf("quick sizing = %d batches × %d ops, want 32 × 64", r.Batches, r.OpsPerBatch)
	}
	if r.AppendNS <= 0 || r.AppendsPerSec <= 0 || r.OpsPerSec <= 0 {
		t.Errorf("non-positive append timings: %+v", r)
	}
	if r.RecoveryNS <= 0 || r.RecoveryPerBatch <= 0 {
		t.Errorf("non-positive recovery timings: %+v", r)
	}
	if r.RecoveredVertices <= 0 {
		t.Errorf("recovered view has %d vertices", r.RecoveredVertices)
	}
}
