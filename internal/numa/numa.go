// Package numa simulates the multi-socket topology of the paper's
// evaluation machine (four Xeon E7-4850 v3 sockets). Real NUMA placement is
// unavailable here (see DESIGN.md §2), so the package reproduces the
// *structure* of Grazelle's light-weight graph partitioning — contiguous
// equal pieces of the edge-vector array per node, a per-node vertex index
// range, and vertex-property ownership — and lets the engines classify every
// property access as node-local or remote. The 1/2/4-socket sweeps of
// Figs 11–13 vary Topology.Nodes.
package numa

import "fmt"

// Topology describes a simulated machine.
type Topology struct {
	// Nodes is the number of NUMA nodes (sockets).
	Nodes int
	// WorkersPerNode is the number of worker threads pinned to each node.
	WorkersPerNode int
}

// SingleNode is the degenerate topology every non-NUMA experiment uses.
func SingleNode(workers int) Topology { return Topology{Nodes: 1, WorkersPerNode: workers} }

// Validate checks the topology is usable.
func (t Topology) Validate() error {
	if t.Nodes < 1 || t.WorkersPerNode < 1 {
		return fmt.Errorf("numa: invalid topology %+v", t)
	}
	return nil
}

// TotalWorkers returns the machine-wide worker count.
func (t Topology) TotalWorkers() int { return t.Nodes * t.WorkersPerNode }

// NodeOf maps a global worker id to its node. Workers are numbered
// node-major: node = tid / WorkersPerNode, mirroring Grazelle's grouping of
// threads by NUMA node with local and global ids.
func (t Topology) NodeOf(tid int) int { return tid / t.WorkersPerNode }

// LocalID maps a global worker id to its id within its node.
func (t Topology) LocalID(tid int) int { return tid % t.WorkersPerNode }

// Partition is a division of a contiguous index space into per-node pieces.
// Piece i covers [Bounds[i], Bounds[i+1]).
type Partition struct {
	Bounds []int
}

// PartitionEven divides [0, total) into nodes near-equal contiguous pieces
// — Grazelle's edge-vector partitioning ("divide the edge vector array into
// equally-sized pieces").
func PartitionEven(total, nodes int) Partition {
	b := make([]int, nodes+1)
	for i := 0; i <= nodes; i++ {
		b[i] = total * i / nodes
	}
	return Partition{Bounds: b}
}

// Nodes returns the number of pieces.
func (p Partition) Nodes() int { return len(p.Bounds) - 1 }

// Range returns the half-open interval owned by node.
func (p Partition) Range(node int) (lo, hi int) {
	return p.Bounds[node], p.Bounds[node+1]
}

// Owner returns the node owning index i (binary search over the bounds).
func (p Partition) Owner(i int) int {
	lo, hi := 0, p.Nodes()-1
	for lo < hi {
		mid := (lo + hi) / 2
		if i >= p.Bounds[mid+1] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// PropertyMap assigns vertex-property ownership to nodes. Grazelle
// distributes the property arrays so that each node predominantly updates
// locally-allocated vertices; an even split over vertex ids models the
// virtual-address-contiguous, physically-distributed layout it borrows from
// Polymer.
type PropertyMap struct {
	n     int
	nodes int
}

// NewPropertyMap creates an ownership map for n vertices over the topology.
func NewPropertyMap(n int, t Topology) PropertyMap {
	return PropertyMap{n: n, nodes: t.Nodes}
}

// Owner returns the node owning vertex v's property.
func (m PropertyMap) Owner(v uint32) int {
	if m.n == 0 {
		return 0
	}
	node := int(uint64(v) * uint64(m.nodes) / uint64(m.n))
	if node >= m.nodes {
		node = m.nodes - 1
	}
	return node
}

// VertexRange returns the contiguous vertex ids owned by node.
func (m PropertyMap) VertexRange(node int) (lo, hi uint32) {
	return uint32(uint64(m.n) * uint64(node) / uint64(m.nodes)),
		uint32(uint64(m.n) * uint64(node+1) / uint64(m.nodes))
}

// Plan is a partition layout promoted from placement *simulation* to an
// execution artifact: the coordinator's P partitions each own one span of
// the pull-phase chunk grid, one span of the vertex-space chunk grid (push
// and vertex phases), and one word-aligned slice of the frontier bitmap —
// the destination-range slice whose activation bits cross the exchange at
// the iteration barrier.
//
// Chunk spans partition the *global* chunk-id grid, never re-chunk within a
// partition: every chunk keeps the id, range, and merge-buffer slot it has
// in a monolithic run, so the ordered merge folds partial aggregates in the
// exact monolithic order and partitioned execution is bit-identical by
// construction (see DESIGN.md §13). Empty spans are legal — P may exceed
// the chunk, vertex, or word count — and simply contribute no work.
type Plan struct {
	// Parts is the partition count (≥ 1).
	Parts int
	// PullChunks spans the Edge-Pull chunk grid (global chunk ids over the
	// destination-sorted vector array).
	PullChunks Partition
	// VertexChunks spans the vertex-space chunk grid shared by Edge-Push
	// (source vertices) and the Vertex phase.
	VertexChunks Partition
	// Words spans the frontier bitmap's word space: partition i's outbound
	// frontier delta is Words range [lo, hi) of the 64-bit word array, so
	// exchange segments are disjoint and byte counts are exact.
	Words Partition
}

// NewPlan lays out parts partitions over a pull grid of pullChunks chunks, a
// vertex grid of vertexChunks chunks, and a frontier bitmap of words words.
// parts < 1 is treated as 1 (the unpartitioned layout).
func NewPlan(parts, pullChunks, vertexChunks, words int) Plan {
	if parts < 1 {
		parts = 1
	}
	return Plan{
		Parts:        parts,
		PullChunks:   PartitionEven(pullChunks, parts),
		VertexChunks: PartitionEven(vertexChunks, parts),
		Words:        PartitionEven(words, parts),
	}
}
