package numa

import (
	"testing"
	"testing/quick"
)

func TestTopologyWorkers(t *testing.T) {
	top := Topology{Nodes: 4, WorkersPerNode: 28}
	if top.TotalWorkers() != 112 {
		t.Errorf("TotalWorkers = %d, want 112 (the paper's machine)", top.TotalWorkers())
	}
	if top.NodeOf(0) != 0 || top.NodeOf(27) != 0 || top.NodeOf(28) != 1 || top.NodeOf(111) != 3 {
		t.Error("NodeOf mapping wrong")
	}
	if top.LocalID(29) != 1 || top.LocalID(28) != 0 {
		t.Error("LocalID mapping wrong")
	}
	if err := top.Validate(); err != nil {
		t.Error(err)
	}
	if (Topology{}).Validate() == nil {
		t.Error("zero topology validated")
	}
	if SingleNode(8).Nodes != 1 {
		t.Error("SingleNode wrong")
	}
}

func TestPartitionEven(t *testing.T) {
	p := PartitionEven(10, 4)
	if p.Nodes() != 4 {
		t.Fatalf("Nodes = %d", p.Nodes())
	}
	covered := 0
	for node := 0; node < 4; node++ {
		lo, hi := p.Range(node)
		if hi < lo {
			t.Fatalf("node %d has inverted range", node)
		}
		covered += hi - lo
		if hi-lo < 2 || hi-lo > 3 {
			t.Errorf("node %d piece size %d not near-even", node, hi-lo)
		}
	}
	if covered != 10 {
		t.Errorf("pieces cover %d of 10", covered)
	}
}

func TestPartitionOwner(t *testing.T) {
	p := PartitionEven(100, 3)
	for i := 0; i < 100; i++ {
		node := p.Owner(i)
		lo, hi := p.Range(node)
		if i < lo || i >= hi {
			t.Fatalf("Owner(%d) = %d but range is [%d,%d)", i, node, lo, hi)
		}
	}
}

func TestPropertyMapCoversAllVertices(t *testing.T) {
	m := NewPropertyMap(1000, Topology{Nodes: 4, WorkersPerNode: 1})
	counts := make([]int, 4)
	for v := uint32(0); v < 1000; v++ {
		counts[m.Owner(v)]++
	}
	for node, c := range counts {
		if c != 250 {
			t.Errorf("node %d owns %d vertices, want 250", node, c)
		}
	}
	// Owner must agree with VertexRange.
	for node := 0; node < 4; node++ {
		lo, hi := m.VertexRange(node)
		if m.Owner(lo) != node || (hi > lo && m.Owner(hi-1) != node) {
			t.Errorf("VertexRange(%d) = [%d,%d) disagrees with Owner", node, lo, hi)
		}
	}
}

// Property: partition pieces tile the space exactly, and Owner is the
// inverse of Range, for arbitrary sizes.
func TestPartitionProperty(t *testing.T) {
	f := func(totalRaw uint16, nodesRaw uint8) bool {
		total := int(totalRaw) % 5000
		nodes := int(nodesRaw)%8 + 1
		p := PartitionEven(total, nodes)
		prev := 0
		for node := 0; node < nodes; node++ {
			lo, hi := p.Range(node)
			if lo != prev || hi < lo {
				return false
			}
			prev = hi
		}
		if prev != total {
			return false
		}
		for i := 0; i < total; i += 7 {
			node := p.Owner(i)
			lo, hi := p.Range(node)
			if i < lo || i >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: PropertyMap ownership is monotone non-decreasing over vertex id
// and ranges tile the vertex space.
func TestPropertyMapProperty(t *testing.T) {
	f := func(nRaw uint16, nodesRaw uint8) bool {
		n := int(nRaw)%3000 + 1
		nodes := int(nodesRaw)%6 + 1
		m := NewPropertyMap(n, Topology{Nodes: nodes, WorkersPerNode: 2})
		prevOwner := 0
		for v := uint32(0); int(v) < n; v++ {
			o := m.Owner(v)
			if o < prevOwner || o >= nodes {
				return false
			}
			prevOwner = o
		}
		var covered uint32
		for node := 0; node < nodes; node++ {
			lo, hi := m.VertexRange(node)
			if lo != covered {
				return false
			}
			covered = hi
		}
		return int(covered) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
