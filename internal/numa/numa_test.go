package numa

import (
	"testing"
	"testing/quick"
)

func TestTopologyWorkers(t *testing.T) {
	top := Topology{Nodes: 4, WorkersPerNode: 28}
	if top.TotalWorkers() != 112 {
		t.Errorf("TotalWorkers = %d, want 112 (the paper's machine)", top.TotalWorkers())
	}
	if top.NodeOf(0) != 0 || top.NodeOf(27) != 0 || top.NodeOf(28) != 1 || top.NodeOf(111) != 3 {
		t.Error("NodeOf mapping wrong")
	}
	if top.LocalID(29) != 1 || top.LocalID(28) != 0 {
		t.Error("LocalID mapping wrong")
	}
	if err := top.Validate(); err != nil {
		t.Error(err)
	}
	if (Topology{}).Validate() == nil {
		t.Error("zero topology validated")
	}
	if SingleNode(8).Nodes != 1 {
		t.Error("SingleNode wrong")
	}
}

func TestPartitionEven(t *testing.T) {
	p := PartitionEven(10, 4)
	if p.Nodes() != 4 {
		t.Fatalf("Nodes = %d", p.Nodes())
	}
	covered := 0
	for node := 0; node < 4; node++ {
		lo, hi := p.Range(node)
		if hi < lo {
			t.Fatalf("node %d has inverted range", node)
		}
		covered += hi - lo
		if hi-lo < 2 || hi-lo > 3 {
			t.Errorf("node %d piece size %d not near-even", node, hi-lo)
		}
	}
	if covered != 10 {
		t.Errorf("pieces cover %d of 10", covered)
	}
}

func TestPartitionOwner(t *testing.T) {
	p := PartitionEven(100, 3)
	for i := 0; i < 100; i++ {
		node := p.Owner(i)
		lo, hi := p.Range(node)
		if i < lo || i >= hi {
			t.Fatalf("Owner(%d) = %d but range is [%d,%d)", i, node, lo, hi)
		}
	}
}

func TestPropertyMapCoversAllVertices(t *testing.T) {
	m := NewPropertyMap(1000, Topology{Nodes: 4, WorkersPerNode: 1})
	counts := make([]int, 4)
	for v := uint32(0); v < 1000; v++ {
		counts[m.Owner(v)]++
	}
	for node, c := range counts {
		if c != 250 {
			t.Errorf("node %d owns %d vertices, want 250", node, c)
		}
	}
	// Owner must agree with VertexRange.
	for node := 0; node < 4; node++ {
		lo, hi := m.VertexRange(node)
		if m.Owner(lo) != node || (hi > lo && m.Owner(hi-1) != node) {
			t.Errorf("VertexRange(%d) = [%d,%d) disagrees with Owner", node, lo, hi)
		}
	}
}

// Property: partition pieces tile the space exactly, and Owner is the
// inverse of Range, for arbitrary sizes.
func TestPartitionProperty(t *testing.T) {
	f := func(totalRaw uint16, nodesRaw uint8) bool {
		total := int(totalRaw) % 5000
		nodes := int(nodesRaw)%8 + 1
		p := PartitionEven(total, nodes)
		prev := 0
		for node := 0; node < nodes; node++ {
			lo, hi := p.Range(node)
			if lo != prev || hi < lo {
				return false
			}
			prev = hi
		}
		if prev != total {
			return false
		}
		for i := 0; i < total; i += 7 {
			node := p.Owner(i)
			lo, hi := p.Range(node)
			if i < lo || i >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: PropertyMap ownership is monotone non-decreasing over vertex id
// and ranges tile the vertex space.
func TestPropertyMapProperty(t *testing.T) {
	f := func(nRaw uint16, nodesRaw uint8) bool {
		n := int(nRaw)%3000 + 1
		nodes := int(nodesRaw)%6 + 1
		m := NewPropertyMap(n, Topology{Nodes: nodes, WorkersPerNode: 2})
		prevOwner := 0
		for v := uint32(0); int(v) < n; v++ {
			o := m.Owner(v)
			if o < prevOwner || o >= nodes {
				return false
			}
			prevOwner = o
		}
		var covered uint32
		for node := 0; node < nodes; node++ {
			lo, hi := m.VertexRange(node)
			if lo != covered {
				return false
			}
			covered = hi
		}
		return int(covered) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Plan edge cases: the coordinator's partition planner must tolerate layouts
// where partitions outnumber chunks, vertices, or words — trailing pieces
// come out empty, never inverted — and P=1 must reproduce the unpartitioned
// layout exactly.

func requireTiling(t *testing.T, p Partition, total int) {
	t.Helper()
	prev := 0
	for node := 0; node < p.Nodes(); node++ {
		lo, hi := p.Range(node)
		if lo != prev || hi < lo {
			t.Fatalf("piece %d = [%d,%d), previous end %d", node, lo, hi, prev)
		}
		prev = hi
	}
	if prev != total {
		t.Fatalf("pieces cover %d of %d", prev, total)
	}
}

func TestPlanEmptyPartitions(t *testing.T) {
	// 3 chunks over 8 partitions: at least five pieces must be empty, all
	// pieces must still tile [0,3) in order.
	pl := NewPlan(8, 3, 3, 1)
	requireTiling(t, pl.PullChunks, 3)
	requireTiling(t, pl.VertexChunks, 3)
	requireTiling(t, pl.Words, 1)
	empty := 0
	for i := 0; i < 8; i++ {
		if lo, hi := pl.PullChunks.Range(i); lo == hi {
			empty++
		}
	}
	if empty != 5 {
		t.Errorf("8 partitions over 3 chunks: %d empty pieces, want 5", empty)
	}
}

func TestPlanRaggedRanges(t *testing.T) {
	// 10 chunks over 3 partitions does not divide evenly; pieces must tile
	// and differ by at most one chunk.
	pl := NewPlan(3, 10, 7, 5)
	requireTiling(t, pl.PullChunks, 10)
	requireTiling(t, pl.VertexChunks, 7)
	requireTiling(t, pl.Words, 5)
	for i := 0; i < 3; i++ {
		lo, hi := pl.PullChunks.Range(i)
		if n := hi - lo; n < 3 || n > 4 {
			t.Errorf("pull piece %d has %d chunks, want 3 or 4", i, n)
		}
	}
}

func TestPlanMorePartitionsThanVertices(t *testing.T) {
	// P far beyond every grid size: all spans empty or singleton, tiling
	// preserved, zero-size spaces legal.
	pl := NewPlan(64, 2, 1, 0)
	requireTiling(t, pl.PullChunks, 2)
	requireTiling(t, pl.VertexChunks, 1)
	requireTiling(t, pl.Words, 0)
	for i := 0; i < 64; i++ {
		if lo, hi := pl.Words.Range(i); lo != 0 || hi != 0 {
			t.Fatalf("word piece %d = [%d,%d) of an empty space", i, lo, hi)
		}
	}
}

func TestPlanSinglePartitionMatchesUnpartitioned(t *testing.T) {
	// P=1 (and the P<1 normalization) must be the whole-space layout — the
	// LocalCoordinator equivalence the conformance suite builds on.
	for _, parts := range []int{1, 0, -3} {
		pl := NewPlan(parts, 40, 23, 17)
		if pl.Parts != 1 {
			t.Fatalf("parts=%d normalized to %d, want 1", parts, pl.Parts)
		}
		for name, pair := range map[string][2]Partition{
			"pull":   {pl.PullChunks, PartitionEven(40, 1)},
			"vertex": {pl.VertexChunks, PartitionEven(23, 1)},
			"words":  {pl.Words, PartitionEven(17, 1)},
		} {
			got, want := pair[0], pair[1]
			if got.Nodes() != 1 {
				t.Fatalf("%s: %d pieces", name, got.Nodes())
			}
			glo, ghi := got.Range(0)
			wlo, whi := want.Range(0)
			if glo != wlo || ghi != whi {
				t.Fatalf("%s: [%d,%d) != unpartitioned [%d,%d)", name, glo, ghi, wlo, whi)
			}
		}
	}
}
