// Package obs is the observability layer: a stdlib-only metrics registry
// (atomic counters, gauges, and fixed-bucket histograms with Prometheus text
// exposition) plus the per-run phase-trace types the engine records and the
// serving layer exposes. It sits below every other internal package — obs
// imports nothing from this repository — so sched, core, store, and the
// serve command can all feed the same registry without cycles.
//
// The paper argues performance phase by phase (Figs 5-7 decompose runtime
// into Edge and Vertex phases); this package makes that decomposition a
// production signal rather than a benchmark-only one: every run carries a
// RunTrace of per-phase wall time, chunk counts, steal counts, and frontier
// density, and every subsystem (scheduler, store, admission) exports its
// load as metric families scrapable at /metrics.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64, safe for concurrent use.
// The zero value is ready to use, so structs can embed counters directly.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer value that can go up and down, safe for concurrent
// use. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram in the Prometheus style:
// each bucket counts observations at or below its upper bound, with an
// implicit +Inf bucket catching the rest. Observe is lock-free (one atomic
// add per observation plus a CAS loop for the float sum), so it can sit on
// scheduler and run-completion paths.
type Histogram struct {
	// bounds are the finite upper bounds, ascending; counts has one extra
	// slot for +Inf.
	bounds []float64
	counts []atomic.Uint64
	// sumBits holds the running sum as float64 bits, updated by CAS.
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// NewHistogram creates a histogram with the given ascending finite upper
// bounds. An unsorted or empty bounds slice panics: bucket layout is a
// static property of the metric, so a bad layout is a programming error.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be ascending")
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; linear would also do for the
	// typical 10-14 buckets, but this keeps Observe O(log n) regardless.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the finite upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Cumulative returns the cumulative count at or below each finite bound,
// followed by the +Inf total — the Prometheus bucket series. The snapshot is
// not atomic across buckets; concurrent observations may make it ragged by a
// few counts, which scrapes tolerate.
func (h *Histogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// ExpBuckets returns n upper bounds starting at start and growing by factor —
// the usual latency-histogram layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefTimeBuckets is the default latency layout in seconds: 50µs to ~13s in
// ×4 steps. Graph phases are microseconds and whole queries can run seconds,
// so one layout covers both job-level and run-level histograms.
var DefTimeBuckets = ExpBuckets(50e-6, 4, 10)
