package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const goroutines, per = 16, 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-10)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// Bounds are inclusive upper limits: an observation exactly on a bound
	// lands in that bound's bucket, per the Prometheus le semantics.
	cases := []struct {
		v    float64
		want []uint64 // cumulative counts after observing v alone
	}{
		{0.5, []uint64{1, 1, 1, 1}},
		{1, []uint64{1, 1, 1, 1}},     // exactly on first bound → first bucket
		{1.0001, []uint64{0, 1, 1, 1}},
		{10, []uint64{0, 1, 1, 1}},
		{99.9, []uint64{0, 0, 1, 1}},
		{100, []uint64{0, 0, 1, 1}},
		{101, []uint64{0, 0, 0, 1}}, // beyond last bound → +Inf only
	}
	for _, tc := range cases {
		h := NewHistogram([]float64{1, 10, 100})
		h.Observe(tc.v)
		got := h.Cumulative()
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("Observe(%v): cumulative = %v, want %v", tc.v, got, tc.want)
				break
			}
		}
		if h.Count() != 1 {
			t.Errorf("Observe(%v): count = %d, want 1", tc.v, h.Count())
		}
		if h.Sum() != tc.v {
			t.Errorf("Observe(%v): sum = %v", tc.v, h.Sum())
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 8))
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Observe(float64(seed%4 + 1))
			}
		}(i)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
	cum := h.Cumulative()
	if last := cum[len(cum)-1]; last != goroutines*per {
		t.Fatalf("+Inf cumulative = %d, want %d", last, goroutines*per)
	}
	// Sum is exact here: all observed values are small integers, so the
	// CAS-float accumulation has no rounding.
	want := 0.0
	for i := 0; i < goroutines; i++ {
		want += float64(i%4+1) * per
	}
	if got := h.Sum(); got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	if len(DefTimeBuckets) == 0 {
		t.Fatal("DefTimeBuckets empty")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate series did not panic")
		}
	}()
	r.Counter("dup_total", "", nil)
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", Labels{"a": "1"})
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "", Labels{"a": "2"})
}

func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("grazelle_test_runs_total", "Completed runs.", nil)
	c.Add(42)
	r.Counter("grazelle_test_labeled_total", "Labeled counter.", Labels{"app": "pagerank", "graph": "web"}).Add(7)
	g := r.Gauge("grazelle_test_inflight", "In-flight runs.", nil)
	g.Set(3)
	r.GaugeFunc("grazelle_test_bytes", "Resident bytes.", nil, func() float64 { return 1048576 })
	r.CounterFunc("grazelle_test_evictions_total", "Evictions.", nil, func() uint64 { return 5 })
	h := r.Histogram("grazelle_test_duration_seconds", "Run wall time.", nil, []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.002, 0.05, 0.05, 2} {
		h.Observe(v)
	}
	var shared Counter
	shared.Add(9)
	r.RegisterCounter("grazelle_test_shared_total", "Shared counter.", nil, &shared)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{1, "1"},
		{1048576, "1048576"},
		{0.05, "0.05"},
		{1.5, "1.5"},
		{math.Inf(1), "+Inf"},
	}
	for _, tc := range cases {
		if got := formatFloat(tc.v); got != tc.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestTraceBuilder(t *testing.T) {
	var b TraceBuilder
	b.AddPhase(PhaseEdgePull, 10*time.Millisecond, 8, 2, 1.0)
	b.AddPhase(PhaseVertex, 5*time.Millisecond, 4, 0, 1.0)
	b.AddPhase(PhaseEdgePush, 2*time.Millisecond, 3, 0, 0.01)
	b.AddPhase(PhaseEdgePush, 3*time.Millisecond, 5, 1, 0.4)
	tr := b.Trace()
	if len(tr.Phases) != 3 {
		t.Fatalf("phases = %d, want 3", len(tr.Phases))
	}
	// Enum order: edge-pull, edge-push, vertex.
	if tr.Phases[0].Phase != "edge-pull" || tr.Phases[1].Phase != "edge-push" || tr.Phases[2].Phase != "vertex" {
		t.Fatalf("phase order wrong: %+v", tr.Phases)
	}
	push := tr.Phases[1]
	if push.Wall != 5*time.Millisecond || push.Chunks != 8 || push.Steals != 1 || push.Iters != 2 {
		t.Fatalf("push aggregate wrong: %+v", push)
	}
	if push.MinDensity != 0.01 || push.MaxDensity != 0.4 {
		t.Fatalf("push density bounds wrong: %+v", push)
	}
	if tr.Dropped {
		t.Fatal("unexpected Dropped")
	}

	b.MarkDropped()
	if !b.Trace().Dropped {
		t.Fatal("MarkDropped not reflected")
	}
	b.Reset()
	if tr2 := b.Trace(); len(tr2.Phases) != 0 || tr2.Dropped {
		t.Fatalf("Reset left state: %+v", tr2)
	}
}

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{
		PhaseEdgePull: "edge-pull",
		PhaseEdgePush: "edge-push",
		PhaseVertex:   "vertex",
		PhaseMerge:    "merge",
		NumPhases:     "unknown",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Phase(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	if r.Len() != 0 {
		t.Fatal("new ring not empty")
	}
	for i, id := range []string{"a", "b", "c", "d"} {
		r.Add(RunRecord{ID: id, Iters: i})
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	if _, ok := r.Get("a"); ok {
		t.Fatal("oldest record should have been evicted")
	}
	rec, ok := r.Get("c")
	if !ok || rec.Iters != 2 {
		t.Fatalf("Get(c) = %+v, %v", rec, ok)
	}
	recent := r.Recent()
	if len(recent) != 3 || recent[0].ID != "d" || recent[1].ID != "c" || recent[2].ID != "b" {
		t.Fatalf("Recent order wrong: %+v", recent)
	}
}

func TestTraceRingClamp(t *testing.T) {
	r := NewTraceRing(0)
	r.Add(RunRecord{ID: "x"})
	r.Add(RunRecord{ID: "y"})
	if r.Len() != 1 {
		t.Fatalf("clamped ring len = %d, want 1", r.Len())
	}
	if _, ok := r.Get("y"); !ok {
		t.Fatal("latest record missing from clamped ring")
	}
}
