package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels is a flat label set attached to one series within a family.
// Rendered sorted by key so exposition output is deterministic.
type Labels map[string]string

func (l Labels) render(extra ...string) string {
	if len(l) == 0 && len(extra) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	for _, k := range keys {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l[k]))
		sb.WriteByte('"')
	}
	// extra holds pre-formed k="v" pairs (the histogram le label), appended
	// after the sorted user labels.
	for _, kv := range extra {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString(kv)
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\n\"") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

// kind of a metric family, controlling the # TYPE line and rendering.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance within a family. Exactly one of the value
// sources is set.
type series struct {
	labels      Labels
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	counterFunc func() uint64
	gaugeFunc   func() float64
}

type family struct {
	name   string
	help   string
	kind   kind
	series []*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration happens at subsystem start-up; reads
// (scrapes) are concurrent-safe with registration.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string // registration order, for stable output
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, k kind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, k, f.kind))
	}
	return f
}

func (r *Registry) add(name, help string, k kind, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, k)
	key := s.labels.render()
	for _, old := range f.series {
		if old.labels.render() == key {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, key))
		}
	}
	f.series = append(f.series, s)
}

// Counter creates and registers a counter series. labels may be nil.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.add(name, help, kindCounter, &series{labels: labels, counter: c})
	return c
}

// RegisterCounter registers an existing Counter (one owned by another
// subsystem, e.g. the watchdog's slow-run count) so the registry and the
// owner can never disagree about its value.
func (r *Registry) RegisterCounter(name, help string, labels Labels, c *Counter) {
	r.add(name, help, kindCounter, &series{labels: labels, counter: c})
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for monotonic values already maintained under another lock.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	r.add(name, help, kindCounter, &series{labels: labels, counterFunc: fn})
}

// Gauge creates and registers a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.add(name, help, kindGauge, &series{labels: labels, gauge: g})
	return g
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.add(name, help, kindGauge, &series{labels: labels, gaugeFunc: fn})
}

// Histogram creates and registers a histogram series with the given bounds.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.add(name, help, kindHistogram, &series{labels: labels, hist: h})
	return h
}

// RegisterHistogram registers an existing Histogram under name.
func (r *Registry) RegisterHistogram(name, help string, labels Labels, h *Histogram) {
	r.add(name, help, kindHistogram, &series{labels: labels, hist: h})
}

// WritePrometheus renders every family in registration order in the
// Prometheus text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.order {
		f := r.families[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case kindCounter:
		v := uint64(0)
		if s.counter != nil {
			v = s.counter.Value()
		} else if s.counterFunc != nil {
			v = s.counterFunc()
		}
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels.render(), v)
		return err
	case kindGauge:
		if s.gaugeFunc != nil {
			_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels.render(), formatFloat(s.gaugeFunc()))
			return err
		}
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels.render(), s.gauge.Value())
		return err
	default:
		h := s.hist
		cum := h.Cumulative()
		bounds := h.Bounds()
		for i, b := range bounds {
			le := `le="` + formatFloat(b) + `"`
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, s.labels.render(le), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, s.labels.render(`le="+Inf"`), cum[len(cum)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels.render(), formatFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels.render(), h.Count())
		return err
	}
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips, integers without an exponent.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry as Prometheus text.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
