package obs

import (
	"sync"
	"time"
)

// RunRecord is one completed run retained in the trace ring: identity,
// outcome, and the phase breakdown.
type RunRecord struct {
	ID       string        `json:"id"`
	Graph    string        `json:"graph,omitempty"`
	App      string        `json:"app,omitempty"`
	Start    time.Time     `json:"start"`
	Wall     time.Duration `json:"wall_ns"`
	Error    string        `json:"error,omitempty"`
	Trace    RunTrace      `json:"trace"`
	Workers  int           `json:"workers,omitempty"`
	Iters    int           `json:"iterations,omitempty"`
	Vertices int64         `json:"vertices,omitempty"`
	Edges    int64         `json:"edges,omitempty"`
	// Mode and Partitions record the engine mode and effective partition
	// count the run executed under (Partitions 1 = monolithic).
	Mode       string `json:"mode,omitempty"`
	Partitions int    `json:"partitions,omitempty"`
	// Incremental reports that the run was warm-started from the result
	// cached at SeedVersion instead of cold-starting.
	Incremental bool   `json:"incremental,omitempty"`
	SeedVersion uint64 `json:"seed_version,omitempty"`
}

// TraceRing retains the last N completed run records for GET /v1/runs.
// Safe for concurrent use.
type TraceRing struct {
	mu   sync.Mutex
	buf  []RunRecord
	next int
	full bool
}

// NewTraceRing creates a ring holding up to n records (n < 1 is clamped to 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]RunRecord, n)}
}

// Add appends a completed run record, evicting the oldest if full.
func (r *TraceRing) Add(rec RunRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Get returns the record with the given id, if retained.
func (r *TraceRing) Get(id string) (RunRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	for i := 0; i < n; i++ {
		if r.buf[i].ID == id {
			return r.buf[i], true
		}
	}
	return RunRecord{}, false
}

// Recent returns retained records newest-first.
func (r *TraceRing) Recent() []RunRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]RunRecord, 0, n)
	// Walk backwards from the most recently written slot.
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.buf)
		}
		out = append(out, r.buf[idx])
	}
	return out
}

// Len reports how many records are retained.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}
