package obs

import "time"

// Phase identifies one engine phase within an iteration. The set mirrors the
// paper's runtime decomposition: the Edge phase (pull or push flavor), the
// Vertex phase, and the merge step that folds per-thread partial state
// (merge buffers in pull mode, ordered scatter buffers in push mode).
type Phase uint8

const (
	PhaseEdgePull Phase = iota
	PhaseEdgePush
	PhaseVertex
	PhaseMerge
	// NumPhases is the number of distinct phases; usable as an array size.
	NumPhases
)

// String returns the stable wire name used in JSON traces and metric labels.
func (p Phase) String() string {
	switch p {
	case PhaseEdgePull:
		return "edge-pull"
	case PhaseEdgePush:
		return "edge-push"
	case PhaseVertex:
		return "vertex"
	case PhaseMerge:
		return "merge"
	default:
		return "unknown"
	}
}

// PhaseStat aggregates one phase across every iteration of a run.
type PhaseStat struct {
	// Phase is the stable phase name (see Phase.String).
	Phase string `json:"phase"`
	// Wall is total wall time spent in the phase across all iterations.
	Wall time.Duration `json:"wall_ns"`
	// Chunks is the number of scheduler chunks executed in the phase.
	Chunks int64 `json:"chunks"`
	// Steals is the number of chunks obtained by work-stealing (only the
	// single-node stealing scheduler reports these; 0 elsewhere).
	Steals int64 `json:"steals"`
	// Iters is how many iterations ran the phase (edge-pull and edge-push
	// partition the iteration count between them by frontier density).
	Iters int64 `json:"iters"`
	// MinDensity and MaxDensity bound the frontier density (fraction of
	// vertices active) observed when the phase was chosen. Frontier-blind
	// programs always run dense, so both are 1.
	MinDensity float64 `json:"min_density"`
	MaxDensity float64 `json:"max_density"`
}

// PartitionStat is one coordinator partition's aggregate over a partitioned
// run: wall time its spans spent in each phase, the frontier bytes it would
// have shipped over a real transport, and how many spans it executed.
type PartitionStat struct {
	Part          int           `json:"part"`
	EdgeWall      time.Duration `json:"edge_wall_ns"`
	VertexWall    time.Duration `json:"vertex_wall_ns"`
	ExchangeBytes int64         `json:"exchange_bytes"`
	Spans         int           `json:"spans"`
}

// RunTrace is the per-run phase breakdown carried on the execution context
// and surfaced through grazelle.Stats and GET /v1/runs/{id}.
type RunTrace struct {
	Phases []PhaseStat `json:"phases"`
	// Directions is the per-iteration Edge-phase direction string: '<' pull,
	// '>' push, 's' sparse. Runs longer than the builder's cap end in '+'.
	Directions string `json:"directions,omitempty"`
	// Partitions is the per-partition breakdown of a partitioned run; empty
	// for monolithic runs.
	Partitions []PartitionStat `json:"partitions,omitempty"`
	// Dropped reports that tracing failed mid-run (a panic inside the trace
	// path was contained); the phases above may be incomplete.
	Dropped bool `json:"dropped,omitempty"`
}

// TraceBuilder accumulates phase observations for one run. It is written
// only by the run's driver goroutine (phase boundaries are sequential even
// when chunk execution is parallel), so it needs no synchronization.
// The zero value is ready to use.
type TraceBuilder struct {
	stats   [NumPhases]PhaseStat
	seen    [NumPhases]bool
	dirs    []byte
	parts   []PartitionStat
	dropped bool
}

// maxDirections caps the per-iteration direction string so a million-round
// run cannot bloat every RunRecord; the final mark is replaced with '+' once
// the cap is passed.
const maxDirections = 512

// AddDirection appends one iteration's direction mark ('<' pull, '>' push,
// 's' sparse).
func (b *TraceBuilder) AddDirection(mark byte) {
	if len(b.dirs) < maxDirections {
		b.dirs = append(b.dirs, mark)
	} else {
		b.dirs[maxDirections-1] = '+'
	}
}

// SetPartitions installs the per-partition aggregates of a partitioned run.
// The builder takes ownership of the slice.
func (b *TraceBuilder) SetPartitions(ps []PartitionStat) { b.parts = ps }

// AddPhase folds one phase execution into the builder.
func (b *TraceBuilder) AddPhase(p Phase, wall time.Duration, chunks, steals int64, density float64) {
	if p >= NumPhases {
		return
	}
	s := &b.stats[p]
	s.Wall += wall
	s.Chunks += chunks
	s.Steals += steals
	s.Iters++
	if !b.seen[p] {
		s.MinDensity, s.MaxDensity = density, density
		b.seen[p] = true
		return
	}
	if density < s.MinDensity {
		s.MinDensity = density
	}
	if density > s.MaxDensity {
		s.MaxDensity = density
	}
}

// MarkDropped records that tracing was aborted mid-run.
func (b *TraceBuilder) MarkDropped() { b.dropped = true }

// Reset clears the builder for reuse (execution contexts are recycled).
func (b *TraceBuilder) Reset() {
	b.stats = [NumPhases]PhaseStat{}
	b.seen = [NumPhases]bool{}
	b.dirs = b.dirs[:0]
	b.parts = nil
	b.dropped = false
}

// Trace snapshots the accumulated observations into a RunTrace. Phases that
// never ran are omitted; phases appear in enum order.
func (b *TraceBuilder) Trace() RunTrace {
	t := RunTrace{Dropped: b.dropped, Directions: string(b.dirs), Partitions: b.parts}
	for p := Phase(0); p < NumPhases; p++ {
		if !b.seen[p] {
			continue
		}
		s := b.stats[p]
		s.Phase = p.String()
		t.Phases = append(t.Phases, s)
	}
	return t
}
