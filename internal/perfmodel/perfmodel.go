// Package perfmodel collects execution counters from the engines. The
// paper's scaling arguments rest on quantities (conflicting shared writes,
// atomic operations, merge overhead) that a 2-core reproduction machine
// cannot surface as wall-clock separation at 112-thread magnitudes, so every
// engine reports them explicitly; the figure harness prints counters next to
// times (see DESIGN.md §2).
package perfmodel

import "time"

// Counters aggregates the events of one engine phase. All counts are exact,
// not sampled.
type Counters struct {
	// EdgesProcessed counts real edges examined (excluding padding lanes).
	EdgesProcessed uint64
	// VectorsProcessed counts Vector-Sparse vectors examined.
	VectorsProcessed uint64
	// TLSWrites counts writes captured in thread-local state (the
	// scheduler-aware fast path).
	TLSWrites uint64
	// SharedWrites counts stores to shared vertex property memory.
	SharedWrites uint64
	// AtomicOps counts atomic read-modify-write operations issued.
	AtomicOps uint64
	// CASRetries counts compare-and-swap failures (direct evidence of write
	// conflicts between threads).
	CASRetries uint64
	// MergeOps counts merge-buffer slots folded after the parallel section.
	MergeOps uint64
	// FrontierSkips counts edges skipped by frontier/converged checks.
	FrontierSkips uint64
	// InvalidLanes counts padding lanes encountered in vectors.
	InvalidLanes uint64
	// LocalAccesses / RemoteAccesses classify property reads by the
	// simulated NUMA node that owns the address versus the node running the
	// worker.
	LocalAccesses  uint64
	RemoteAccesses uint64
	// SkippedWrites counts stores elided because the value was unchanged
	// (the Connected Components minimization optimization of Fig 8).
	SkippedWrites uint64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.EdgesProcessed += o.EdgesProcessed
	c.VectorsProcessed += o.VectorsProcessed
	c.TLSWrites += o.TLSWrites
	c.SharedWrites += o.SharedWrites
	c.AtomicOps += o.AtomicOps
	c.CASRetries += o.CASRetries
	c.MergeOps += o.MergeOps
	c.FrontierSkips += o.FrontierSkips
	c.InvalidLanes += o.InvalidLanes
	c.LocalAccesses += o.LocalAccesses
	c.RemoteAccesses += o.RemoteAccesses
	c.SkippedWrites += o.SkippedWrites
}

// Breakdown is the per-phase time profile of the paper's Fig 5b.
type Breakdown struct {
	// Work is time spent executing chunk iterations, summed over workers.
	Work time.Duration
	// Merge is time spent folding the merge buffer (scheduler-aware only).
	Merge time.Duration
	// Write is time spent in the final shared property write-back.
	Write time.Duration
	// Idle is worker time spent waiting at the phase barrier.
	Idle time.Duration
}

// Total returns the summed profile time.
func (b Breakdown) Total() time.Duration { return b.Work + b.Merge + b.Write + b.Idle }

// paddedCounters keeps each worker's counters on separate cache lines so
// that recording does not itself create the write conflicts it measures.
type paddedCounters struct {
	c Counters
	_ [128 - unsafeSizeMod]byte
}

// Counters is 12×8 = 96 bytes; pad the struct to 2 cache lines.
const unsafeSizeMod = 96 % 128

// Recorder collects per-worker counters and busy time. A nil *Recorder is
// valid and records nothing, so engines can run unmetered at full speed.
type Recorder struct {
	lanes []paddedCounters
	busy  []time.Duration
	// Wall is the wall-clock duration of the measured phase; set by the
	// engine that owns the Recorder.
	Wall time.Duration
	// MergeTime and WriteTime profile the post-parallel sections.
	MergeTime, WriteTime time.Duration
}

// NewRecorder creates a recorder for the given worker count.
func NewRecorder(workers int) *Recorder {
	return &Recorder{lanes: make([]paddedCounters, workers), busy: make([]time.Duration, workers)}
}

// Record adds a batch of counters to worker tid's lane. Safe for concurrent
// use by distinct tids; no-op on a nil recorder.
func (r *Recorder) Record(tid int, c Counters) {
	if r == nil {
		return
	}
	r.lanes[tid].c.Add(c)
}

// AddBusy accounts busy (chunk-execution) time to worker tid.
func (r *Recorder) AddBusy(tid int, d time.Duration) {
	if r == nil {
		return
	}
	r.busy[tid] += d
}

// Total sums all workers' counters.
func (r *Recorder) Total() Counters {
	var out Counters
	if r == nil {
		return out
	}
	for i := range r.lanes {
		out.Add(r.lanes[i].c)
	}
	return out
}

// Profile derives the Fig 5b breakdown: Work is summed busy time, Idle is
// the barrier wait (workers × wall − busy − merge − write, clamped at zero).
func (r *Recorder) Profile() Breakdown {
	if r == nil {
		return Breakdown{}
	}
	var b Breakdown
	b.Merge = r.MergeTime
	b.Write = r.WriteTime
	for _, d := range r.busy {
		b.Work += d
	}
	span := r.Wall * time.Duration(len(r.busy))
	if idle := span - b.Work - b.Merge - b.Write; idle > 0 {
		b.Idle = idle
	}
	return b
}

// Reset clears all counters and times for reuse.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.lanes {
		r.lanes[i].c = Counters{}
	}
	for i := range r.busy {
		r.busy[i] = 0
	}
	r.Wall, r.MergeTime, r.WriteTime = 0, 0, 0
}
