package perfmodel

import (
	"testing"
	"time"
)

func TestCountersAdd(t *testing.T) {
	a := Counters{EdgesProcessed: 1, SharedWrites: 2, CASRetries: 3}
	a.Add(Counters{EdgesProcessed: 10, TLSWrites: 5, CASRetries: 1})
	if a.EdgesProcessed != 11 || a.TLSWrites != 5 || a.SharedWrites != 2 || a.CASRetries != 4 {
		t.Errorf("Add result = %+v", a)
	}
}

func TestRecorderAggregation(t *testing.T) {
	r := NewRecorder(3)
	r.Record(0, Counters{EdgesProcessed: 5})
	r.Record(1, Counters{EdgesProcessed: 7, AtomicOps: 2})
	r.Record(2, Counters{MergeOps: 1})
	r.Record(1, Counters{EdgesProcessed: 1})
	tot := r.Total()
	if tot.EdgesProcessed != 13 || tot.AtomicOps != 2 || tot.MergeOps != 1 {
		t.Errorf("Total = %+v", tot)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, Counters{EdgesProcessed: 1})
	r.AddBusy(0, time.Second)
	if r.Total() != (Counters{}) {
		t.Error("nil recorder returned non-zero totals")
	}
	if r.Profile() != (Breakdown{}) {
		t.Error("nil recorder returned non-zero profile")
	}
	r.Reset()
}

func TestProfileBreakdown(t *testing.T) {
	r := NewRecorder(2)
	r.AddBusy(0, 30*time.Millisecond)
	r.AddBusy(1, 50*time.Millisecond)
	r.Wall = 60 * time.Millisecond
	r.MergeTime = 5 * time.Millisecond
	r.WriteTime = 5 * time.Millisecond
	b := r.Profile()
	if b.Work != 80*time.Millisecond {
		t.Errorf("Work = %v", b.Work)
	}
	// span = 120ms; idle = 120 - 80 - 5 - 5 = 30ms.
	if b.Idle != 30*time.Millisecond {
		t.Errorf("Idle = %v, want 30ms", b.Idle)
	}
	if b.Total() != 120*time.Millisecond {
		t.Errorf("Total = %v", b.Total())
	}
}

func TestProfileClampsNegativeIdle(t *testing.T) {
	r := NewRecorder(1)
	r.AddBusy(0, 100*time.Millisecond)
	r.Wall = 10 * time.Millisecond // inconsistent timing must not go negative
	if idle := r.Profile().Idle; idle != 0 {
		t.Errorf("Idle = %v, want 0", idle)
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder(2)
	r.Record(1, Counters{SharedWrites: 9})
	r.AddBusy(1, time.Second)
	r.Wall = time.Second
	r.Reset()
	if r.Total() != (Counters{}) || r.Profile().Work != 0 || r.Wall != 0 {
		t.Error("Reset left state behind")
	}
}
