package qcache

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sched"
)

// Chaos coverage for the cache path: the qcache/insert failpoint proves a
// fault while caching degrades to a plain miss (result still correct, cache
// never poisoned), and the leader-cancellation test proves promotion keeps
// the admission slot accounting exact.

// TestInsertFaultDegradesToMiss: with qcache/insert armed, Do still returns
// the computed result but nothing is cached — the next identical call is a
// fresh miss, and the drop is counted.
func TestInsertFaultDegradesToMiss(t *testing.T) {
	if !fault.Available() {
		t.Skip("failpoints compiled out")
	}
	for _, spec := range []string{"error", "panic"} {
		t.Run(spec, func(t *testing.T) {
			disarm, err := fault.Enable("qcache/insert", spec+"*1")
			if err != nil {
				t.Fatal(err)
			}
			defer disarm()

			c := New(Config{Budget: 1 << 20})
			k := Key{Graph: "g", Version: 1, App: "pr", Params: "x"}
			calls := 0
			compute := func(context.Context) (Result, error) {
				calls++
				return payload(10, "r"), nil
			}

			r, o, err := c.Do(context.Background(), k, compute)
			if err != nil || o != OutcomeMiss || !bytes.Equal(r.Payload, bytes.Repeat([]byte("r"), 10)) {
				t.Fatalf("faulted Do: res %q outcome %v err %v", r.Payload, o, err)
			}
			st := c.Stats()
			if st.Entries != 0 || st.InsertsDropped != 1 {
				t.Fatalf("after faulted insert: %+v", st)
			}
			if fault.Hits("qcache/insert") != 1 {
				t.Fatalf("failpoint hits = %d", fault.Hits("qcache/insert"))
			}

			// The shot budget is spent: the retry computes again and caches.
			if _, o, err := c.Do(context.Background(), k, compute); err != nil || o != OutcomeMiss {
				t.Fatalf("retry: outcome %v err %v", o, err)
			}
			if calls != 2 {
				t.Fatalf("compute calls = %d, want 2", calls)
			}
			if _, o, err := c.Do(context.Background(), k, compute); err != nil || o != OutcomeHit {
				t.Fatalf("post-retry: outcome %v err %v, want hit", o, err)
			}
		})
	}
}

// TestLeaderCancelChaosPromotion: a leader holding an admission slot is
// cancelled mid-run; the promoted follower re-admits under its own ctx and
// serves the result. Slot accounting stays exact: two admissions total, zero
// in flight afterwards, no rejections.
func TestLeaderCancelChaosPromotion(t *testing.T) {
	adm := sched.NewAdmission(1, 4)
	c := New(Config{Budget: 1 << 20})
	k := Key{Graph: "g", Version: 1, App: "pr", Params: "x"}

	var mu sync.Mutex
	runs := 0
	started := make(chan struct{}, 2)
	compute := func(ctx context.Context) (Result, error) {
		release, err := adm.Acquire(ctx)
		if err != nil {
			return Result{}, err
		}
		defer release()
		mu.Lock()
		runs++
		n := runs
		mu.Unlock()
		started <- struct{}{}
		if n == 1 {
			<-ctx.Done()
			return Result{}, ctx.Err()
		}
		return payload(10, "r"), nil
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.Do(leaderCtx, k, compute)
		leaderErr <- err
	}()
	<-started

	follower := make(chan error, 1)
	var out Outcome
	go func() {
		_, o, err := c.Do(context.Background(), k, compute)
		out = o
		follower <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		w := 0
		if f := c.flights[k]; f != nil {
			w = f.waiters
		}
		c.mu.Unlock()
		if w == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never attached")
		}
		time.Sleep(time.Millisecond)
	}

	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v", err)
	}
	if err := <-follower; err != nil {
		t.Fatalf("promoted follower err = %v", err)
	}
	if out != OutcomeMiss {
		t.Errorf("promoted follower outcome %v, want miss", out)
	}

	if got := adm.InFlight(); got != 0 {
		t.Errorf("InFlight = %d after both runs finished, want 0", got)
	}
	if got := adm.Admitted(); got != 2 {
		t.Errorf("Admitted = %d, want 2 (leader + promoted leader)", got)
	}
	if got := adm.Rejected(); got != 0 {
		t.Errorf("Rejected = %d, want 0", got)
	}
	if st := c.Stats(); st.Promotions != 1 {
		t.Errorf("Promotions = %d, want 1", st.Promotions)
	}
}

// TestComputePanicSharedWithFollowers: a compute panic reaches the leader's
// recovery layer as a panic (so serve's middleware writes its 500) while
// followers receive it as a *sched.PanicError — nobody hangs.
func TestComputePanicSharedWithFollowers(t *testing.T) {
	c := New(Config{Budget: 1 << 20})
	k := Key{Graph: "g", Version: 1, App: "pr", Params: "x"}

	armed := make(chan struct{})
	compute := func(context.Context) (Result, error) {
		<-armed
		panic("kaboom")
	}

	leaderPanicked := make(chan any, 1)
	go func() {
		defer func() { leaderPanicked <- recover() }()
		c.Do(context.Background(), k, compute)
	}()
	// Make sure the first goroutine holds leadership before the second joins.
	flightUp := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		_, up := c.flights[k]
		c.mu.Unlock()
		if up {
			break
		}
		if time.Now().After(flightUp) {
			t.Fatal("leader never opened the flight")
		}
		time.Sleep(time.Millisecond)
	}
	followerErr := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), k, compute)
		followerErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		w := 0
		if f := c.flights[k]; f != nil {
			w = f.waiters
		}
		c.mu.Unlock()
		if w == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never attached")
		}
		time.Sleep(time.Millisecond)
	}
	close(armed)

	if rec := <-leaderPanicked; rec == nil || !strings.Contains(rec.(string), "kaboom") {
		t.Fatalf("leader panic = %v, want kaboom to propagate", rec)
	}
	err := <-followerErr
	var pe *sched.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("follower err = %v, want *sched.PanicError", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("panic outcome cached: %+v", st)
	}
	// The flight is gone; the next call starts fresh.
	if _, o, err := c.Do(context.Background(), k, func(context.Context) (Result, error) {
		return payload(3, "n"), nil
	}); err != nil || o != OutcomeMiss {
		t.Errorf("post-panic Do: outcome %v err %v", o, err)
	}
}
