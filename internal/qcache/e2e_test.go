package qcache_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	grazelle "repro"
	"repro/internal/qcache"
)

// Facade-level cache correctness: a cache hit serves a payload byte-identical
// to a fresh recompute across PR, CC, and BFS (engines are bit-deterministic,
// so marshaled per-vertex values must match exactly), and an Add-replace of
// the graph makes the old version's entries unreachable. Run under -race in
// the CI race shard.

// runApp executes app on a fresh handle through the generic registry path
// and returns the full per-vertex result serialized to JSON — only
// deterministic fields, so byte comparison is meaningful.
func runApp(t *testing.T, st *grazelle.Store, graph, app string) qcache.Result {
	t.Helper()
	h, err := st.Acquire(graph)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	res, err := h.Engine().Run(context.Background(), app, grazelle.Params{Iters: 12})
	if err != nil {
		t.Fatal(err)
	}
	body := map[string]any{"values": res.Values()}
	for _, st := range res.Summary() {
		body[st.Key] = st.Value
	}
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return qcache.Result{Payload: payload, Version: h.Version()}
}

func TestCacheHitBitIdenticalAcrossApps(t *testing.T) {
	st, err := grazelle.OpenStore(grazelle.StoreConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cache := qcache.New(qcache.Config{Budget: 64 << 20})
	st.OnRetire(cache.InvalidateVersion)

	g, err := grazelle.GenerateDataset("C", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add("g", g); err != nil {
		t.Fatal(err)
	}
	v1, err := st.Version("g")
	if err != nil {
		t.Fatal(err)
	}

	keys := map[string]qcache.Key{}
	for _, app := range []string{"pr", "cc", "bfs"} {
		k := qcache.Key{Graph: "g", Version: v1, App: app,
			Params: "iters=12&k=0&root=0&values=true"}
		keys[app] = k

		first, outcome, err := cache.Do(context.Background(), k,
			func(context.Context) (qcache.Result, error) { return runApp(t, st, "g", app), nil })
		if err != nil || outcome != qcache.OutcomeMiss {
			t.Fatalf("%s: first Do outcome %v err %v", app, outcome, err)
		}

		// The hit must serve the stored payload...
		hit, outcome, err := cache.Do(context.Background(), k,
			func(context.Context) (qcache.Result, error) {
				t.Errorf("%s: compute ran on a warm key", app)
				return qcache.Result{}, nil
			})
		if err != nil || outcome != qcache.OutcomeHit {
			t.Fatalf("%s: second Do outcome %v err %v", app, outcome, err)
		}
		if !bytes.Equal(hit.Payload, first.Payload) {
			t.Fatalf("%s: hit payload diverges from original", app)
		}
		// ...and that payload must be byte-identical to a fresh recompute:
		// the whole point of version-addressed caching over deterministic
		// engines.
		fresh := runApp(t, st, "g", app)
		if !bytes.Equal(hit.Payload, fresh.Payload) {
			t.Fatalf("%s: cached payload is not bit-identical to a fresh recompute (%d vs %d bytes)",
				app, len(hit.Payload), len(fresh.Payload))
		}
	}

	// Replacing the graph retires v1: every old entry becomes unreachable
	// and the new version computes fresh results.
	g2, err := grazelle.GenerateDataset("C", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add("g", g2); err != nil {
		t.Fatal(err)
	}
	v2, err := st.Version("g")
	if err != nil {
		t.Fatal(err)
	}
	if v2 <= v1 {
		t.Fatalf("replace version %d not past %d", v2, v1)
	}
	for app, k := range keys {
		if _, ok := cache.Get(k); ok {
			t.Errorf("%s: stale entry for retired version %d still reachable", app, v1)
		}
	}
	st2 := cache.Stats()
	if st2.Invalidated == 0 {
		t.Error("no entries recorded as invalidated after Add-replace")
	}

	// A query against the new version is a miss and computes on v2's graph.
	k := qcache.Key{Graph: "g", Version: v2, App: "pr",
		Params: "iters=12&k=0&root=0&values=true"}
	res, outcome, err := cache.Do(context.Background(), k,
		func(context.Context) (qcache.Result, error) { return runApp(t, st, "g", "pr"), nil })
	if err != nil || outcome != qcache.OutcomeMiss || len(res.Payload) == 0 {
		t.Fatalf("post-replace Do: outcome %v err %v", outcome, err)
	}
}
