package qcache

import (
	"context"

	"repro/internal/sched"
)

// This file is the single-flight half of the cache: concurrent Do calls for
// the same key share one compute. The first caller becomes the leader and
// runs compute under its own context; later callers attach as followers and
// wait. Coalesced requests therefore consume one admission slot, not N —
// admission happens inside compute, which only the leader runs.
//
// Leadership is a token, not a lifetime: a leader whose own context dies
// while followers wait posts the token into the flight, and one waiting
// follower picks it up and re-runs compute under its own context. One
// impatient client can't starve the rest. The token lives in a 1-buffered
// channel; `leading` and `waiters` (guarded by Cache.mu) track whether
// someone is computing and how many are waiting, which is what lets the last
// departing follower detect an orphaned flight and clean it up.

// Outcome classifies how Do satisfied a request.
type Outcome int

const (
	// OutcomeHit: served from the cache without running compute.
	OutcomeHit Outcome = iota
	// OutcomeMiss: this call ran compute (as initial or promoted leader).
	OutcomeMiss
	// OutcomeCoalesced: attached to another call's in-flight compute.
	OutcomeCoalesced
)

func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeMiss:
		return "miss"
	default:
		return "coalesced"
	}
}

// flight is one in-flight compute and the callers attached to it.
type flight struct {
	// done is closed exactly once, after res/err are set, when a result (or
	// terminal error) is published to the attached followers.
	done chan struct{}
	res  Result
	err  error
	// lead carries the leadership token when a cancelled leader abdicates.
	lead chan struct{}
	// waiters and leading are guarded by Cache.mu. waiters counts attached
	// followers (including one that took the token but hasn't re-entered the
	// lock yet — it decrements itself only when it flips leading back on, so
	// the orphan check below can't misfire mid-promotion).
	waiters int
	leading bool
}

// Do returns the result for k, serving from cache, attaching to an in-flight
// compute, or running compute itself. compute receives the caller's ctx and
// is only invoked by the call that holds leadership; its error (or panic,
// republished to followers as a *sched.PanicError before re-panicking) is
// shared by every attached caller. A leader whose own ctx ends mid-run hands
// leadership to a waiting follower and returns its ctx error alone.
func (c *Cache) Do(ctx context.Context, k Key, compute func(context.Context) (Result, error)) (Result, Outcome, error) {
	c.mu.Lock()
	if r, ok := c.getLocked(k); ok {
		c.hits++
		c.mu.Unlock()
		return r, OutcomeHit, nil
	}
	f, ok := c.flights[k]
	if !ok {
		f = &flight{done: make(chan struct{}), lead: make(chan struct{}, 1), leading: true}
		c.flights[k] = f
		c.misses++
		c.mu.Unlock()
		return c.leadFlight(ctx, k, f, compute)
	}
	f.waiters++
	c.coalesced++
	c.mu.Unlock()
	return c.follow(ctx, k, f, compute)
}

// leadFlight runs compute as the flight's leader and settles the flight.
func (c *Cache) leadFlight(ctx context.Context, k Key, f *flight, compute func(context.Context) (Result, error)) (Result, Outcome, error) {
	res, err := c.runCompute(ctx, k, f, compute)
	if err != nil && ctx.Err() != nil {
		// The leader's own context died. Followers are healthy — hand one of
		// them the leadership token instead of failing them all.
		c.abdicate(k, f, err)
		return Result{}, OutcomeMiss, err
	}
	if err == nil {
		c.insert(k, res)
	}
	c.publish(k, f, res, err)
	return res, OutcomeMiss, err
}

// runCompute invokes compute, converting a panic into a *sched.PanicError
// for the followers before letting it continue up to the caller's recovery
// layer — one crashing run must not strand N-1 coalesced clients.
func (c *Cache) runCompute(ctx context.Context, k Key, f *flight, compute func(context.Context) (Result, error)) (res Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			c.publish(k, f, Result{}, sched.NewPanicError(rec))
			panic(rec)
		}
	}()
	return compute(ctx)
}

// publish settles the flight: removes it from the index so new callers start
// fresh, stores the outcome, and wakes every follower.
func (c *Cache) publish(k Key, f *flight, res Result, err error) {
	c.mu.Lock()
	if c.flights[k] == f {
		delete(c.flights, k)
	}
	f.res, f.err = res, err
	close(f.done)
	c.mu.Unlock()
}

// abdicate hands leadership off after the leader's ctx died: with waiters
// present the token is posted for one of them to claim; with none the flight
// is settled with the leader's error.
func (c *Cache) abdicate(k Key, f *flight, err error) {
	c.mu.Lock()
	if f.waiters == 0 {
		if c.flights[k] == f {
			delete(c.flights, k)
		}
		f.err = err
		close(f.done)
		c.mu.Unlock()
		return
	}
	f.leading = false
	f.lead <- struct{}{} // cap 1; only ever posted by the abdicating leader
	c.mu.Unlock()
}

// follow waits on a flight as a follower: for the published result, for the
// leadership token (promotion), or for the caller's own deadline.
func (c *Cache) follow(ctx context.Context, k Key, f *flight, compute func(context.Context) (Result, error)) (Result, Outcome, error) {
	select {
	case <-f.done:
		c.mu.Lock()
		f.waiters--
		c.mu.Unlock()
		return f.res, OutcomeCoalesced, f.err
	case <-f.lead:
		c.mu.Lock()
		f.waiters--
		f.leading = true
		c.promotions++
		c.mu.Unlock()
		return c.leadFlight(ctx, k, f, compute)
	case <-ctx.Done():
		c.abandonFollower(k, f, ctx.Err())
		return Result{}, OutcomeCoalesced, ctx.Err()
	}
}

// abandonFollower detaches a follower whose own ctx died. If it was the last
// waiter and the leadership token is sitting unclaimed (the leader already
// abdicated), the flight is orphaned: settle and drop it so later callers
// start a fresh run.
func (c *Cache) abandonFollower(k Key, f *flight, err error) {
	c.mu.Lock()
	f.waiters--
	if f.waiters == 0 && !f.leading {
		select {
		case <-f.lead:
			if c.flights[k] == f {
				delete(c.flights, k)
			}
			f.err = err
			close(f.done)
		default:
		}
	}
	c.mu.Unlock()
}
