package qcache

import "repro/internal/obs"

// RegisterMetrics registers the cache's metric families on reg — typically
// the store's registry, so /metrics and /v1/stats render the same cells.
// The functions read the same counters Stats snapshots; call once per
// registry (duplicate families panic by registry contract).
func (c *Cache) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("grazelle_qcache_hits_total",
		"Queries served from the result cache.", nil,
		func() uint64 { return c.Stats().Hits })
	reg.CounterFunc("grazelle_qcache_misses_total",
		"Queries that started a fresh compute.", nil,
		func() uint64 { return c.Stats().Misses })
	reg.CounterFunc("grazelle_qcache_coalesced_total",
		"Queries that attached to an in-flight identical compute.", nil,
		func() uint64 { return c.Stats().Coalesced })
	reg.CounterFunc("grazelle_qcache_promotions_total",
		"Followers promoted to leader after a leader's context died.", nil,
		func() uint64 { return c.Stats().Promotions })
	reg.CounterFunc("grazelle_qcache_evictions_total",
		"Entries evicted by the LRU byte budget.", nil,
		func() uint64 { return c.Stats().Evictions })
	reg.CounterFunc("grazelle_qcache_invalidated_total",
		"Entries dropped because their store version retired.", nil,
		func() uint64 { return c.Stats().Invalidated })
	reg.CounterFunc("grazelle_qcache_inserts_dropped_total",
		"Cache inserts abandoned (fault injection, retired version, oversize).", nil,
		func() uint64 { return c.Stats().InsertsDropped })
	reg.GaugeFunc("grazelle_qcache_entries",
		"Resident cache entries.", nil,
		func() float64 { return float64(c.Stats().Entries) })
	reg.GaugeFunc("grazelle_qcache_bytes",
		"Bytes held by resident cache entries.", nil,
		func() float64 { return float64(c.Stats().Bytes) })
	reg.GaugeFunc("grazelle_qcache_seed_entries",
		"Resident incremental-seed candidates.", nil,
		func() float64 { return float64(c.Stats().SeedEntries) })
	reg.GaugeFunc("grazelle_qcache_seed_bytes",
		"Bytes held by incremental-seed candidates.", nil,
		func() float64 { return float64(c.Stats().SeedBytes) })
	reg.CounterFunc("grazelle_qcache_seeds_used_total",
		"Seed candidates that warm-started a run.", nil,
		func() uint64 { return c.Stats().SeedsUsed })
	reg.CounterFunc("grazelle_qcache_seeds_dropped_total",
		"Seed candidates dropped by hard retirement or late offer.", nil,
		func() uint64 { return c.Stats().SeedsDropped })
}
