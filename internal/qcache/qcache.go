// Package qcache is a query result cache with single-flight coalescing for
// the serving layer. Entries are keyed by (graph name, store version, app,
// canonical params): PR 2 made every engine bit-deterministic at any worker
// count and the store mints monotonic, never-reused versions, so a key fully
// addresses a result and a cached payload is bit-identical to a fresh run.
//
// The cache is byte-accounted (the repo's MemoryBytes convention) against an
// LRU budget. Retiring a store version (Add-replace / Delete) invalidates its
// entries via Store.OnRetire, and a per-graph tombstone of the highest
// retired version closes the race where a run finishes after its version
// retired: the late insert is dropped instead of caching a permanently stale
// result. Everything is stdlib plus the repo's own internal packages.
package qcache

import (
	"container/list"
	"sync"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Key addresses one cacheable result.
type Key struct {
	// Graph is the store name; Version the store version the result was (or
	// will be) computed on.
	Graph   string
	Version uint64
	// App is the engine program ("pr", "cc", ...); Params an opaque
	// canonical parameter rendering. The cache imposes no structure on it:
	// callers derive it from the app's registered parameter schema
	// (apps.Entry.Canonical), which zeroes the fields the app ignores so
	// equivalent requests share one cache key.
	App    string
	Params string
}

// Result is one cached query outcome: the serialized response payload plus
// the producing run's trace summary.
type Result struct {
	// Payload is the serialized response body, stored and served verbatim.
	Payload []byte
	// RunID identifies the run that produced the payload.
	RunID string
	// Version is the store version the result was actually computed on. When
	// nonzero it overrides the flight key's version at insert time — the
	// admitted handle may pin a newer version than the one the key was built
	// from.
	Version uint64
	// Phases and TraceDropped summarize the producing run's RunTrace.
	Phases       []obs.PhaseStat
	TraceDropped bool
}

// entryOverhead approximates the fixed per-entry cost: LRU node, map slot,
// key header, and Result header.
const entryOverhead = 128

// MemoryBytes reports the bytes this result accounts against the cache
// budget, following the repo-wide MemoryBytes convention.
func (r Result) MemoryBytes() int64 {
	const phaseStatBytes = 88 // unsafe.Sizeof(obs.PhaseStat{}) incl. name header
	return int64(len(r.Payload)) + int64(len(r.RunID)) +
		int64(len(r.Phases))*phaseStatBytes + entryOverhead
}

// Config configures a Cache.
type Config struct {
	// Budget bounds cached payload bytes; the least recently used entries are
	// evicted past it. Budget <= 0 stores nothing — coalescing stays active.
	Budget int64
}

// Stats is a consistent snapshot of cache activity. The counter fields are
// the same cells RegisterMetrics exposes, so /metrics and /v1/stats agree.
type Stats struct {
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Coalesced      uint64 `json:"coalesced"`
	Promotions     uint64 `json:"promotions"`
	Evictions      uint64 `json:"evictions"`
	Invalidated    uint64 `json:"invalidated"`
	InsertsDropped uint64 `json:"inserts_dropped"`
	Entries        int    `json:"entries"`
	Bytes          int64  `json:"bytes"`
	BudgetBytes    int64  `json:"budget_bytes"`
	SeedEntries    int    `json:"seed_entries"`
	SeedBytes      int64  `json:"seed_bytes"`
	SeedsUsed      uint64 `json:"seeds_used"`
	SeedsDropped   uint64 `json:"seeds_dropped"`
}

// Cache is the query result cache. All methods are safe for concurrent use.
type Cache struct {
	budget int64

	mu      sync.Mutex
	lru     *list.List // *cacheEntry, front = most recent
	entries map[Key]*list.Element
	bytes   int64
	// retiredMax records, per graph, the highest store version retired so
	// far. Versions are minted monotonically and never reused, so an insert
	// at or below the tombstone is a late write for a dead version.
	retiredMax map[string]uint64
	// hardRetired is the analogous tombstone for the seed table: only hard
	// retirements (replace, delete) advance it, so seeds survive the warm
	// mutate/compact churn they exist to serve (see seed.go).
	hardRetired map[string]uint64
	seeds       map[seedKey]*seedEntry
	seedBytes   int64
	flights     map[Key]*flight

	hits, misses, coalesced uint64
	promotions              uint64
	evictions, invalidated  uint64
	insertsDropped          uint64
	seedsUsed, seedsDropped uint64
}

type cacheEntry struct {
	key   Key
	res   Result
	bytes int64
}

// New creates a Cache with the given configuration.
func New(cfg Config) *Cache {
	return &Cache{
		budget:      cfg.Budget,
		lru:         list.New(),
		entries:     make(map[Key]*list.Element),
		retiredMax:  make(map[string]uint64),
		hardRetired: make(map[string]uint64),
		seeds:       make(map[seedKey]*seedEntry),
		flights:     make(map[Key]*flight),
	}
}

// Get returns the cached result for k, refreshing its recency. A hit is
// counted; a miss is not (the caller's follow-up Do accounts for it).
func (c *Cache) Get(k Key) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.getLocked(k)
	if ok {
		c.hits++
	}
	return r, ok
}

func (c *Cache) getLocked(k Key) (Result, bool) {
	el, ok := c.entries[k]
	if !ok {
		return Result{}, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// insert stores r under k (with r.Version overriding k.Version when set).
// The qcache/insert failpoint sits at the head of the path: any fault there
// — injected error or panic — degrades the operation to a plain miss and is
// counted in InsertsDropped; it can never corrupt or poison the cache.
func (c *Cache) insert(k Key, r Result) {
	defer func() {
		if recover() != nil {
			c.mu.Lock()
			c.insertsDropped++
			c.mu.Unlock()
		}
	}()
	if err := fault.Inject("qcache/insert"); err != nil {
		c.mu.Lock()
		c.insertsDropped++
		c.mu.Unlock()
		return
	}
	if r.Version != 0 {
		k.Version = r.Version
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget <= 0 {
		return
	}
	if k.Version <= c.retiredMax[k.Graph] {
		// The version retired while the run was in flight; caching it would
		// pin a stale result forever.
		c.insertsDropped++
		return
	}
	if el, ok := c.entries[k]; ok {
		// Deterministic keys mean equal payloads; keep the resident entry.
		c.lru.MoveToFront(el)
		return
	}
	e := &cacheEntry{key: k, res: r, bytes: r.MemoryBytes()}
	if e.bytes > c.budget {
		c.insertsDropped++
		return
	}
	c.entries[k] = c.lru.PushFront(e)
	c.bytes += e.bytes
	for c.bytes > c.budget {
		c.evictOldestLocked()
	}
}

func (c *Cache) evictOldestLocked() {
	el := c.lru.Back()
	if el == nil {
		return
	}
	c.removeLocked(el)
	c.evictions++
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.bytes
}

// InvalidateVersion is the hard-retirement path of RetireVersion: drop every
// entry for the named graph at or below the retired version, advance both
// tombstones, and discard seed candidates. Callers that can distinguish warm
// retirements (mutate, compact) should wire Store.OnRetireReason to
// RetireVersion instead so seeds survive.
func (c *Cache) InvalidateVersion(graph string, version uint64) {
	c.RetireVersion(graph, version, false)
}

// Stats returns a consistent snapshot of cache activity.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:           c.hits,
		Misses:         c.misses,
		Coalesced:      c.coalesced,
		Promotions:     c.promotions,
		Evictions:      c.evictions,
		Invalidated:    c.invalidated,
		InsertsDropped: c.insertsDropped,
		Entries:        c.lru.Len(),
		Bytes:          c.bytes,
		BudgetBytes:    c.budget,
		SeedEntries:    len(c.seeds),
		SeedBytes:      c.seedBytes,
		SeedsUsed:      c.seedsUsed,
		SeedsDropped:   c.seedsDropped,
	}
}
