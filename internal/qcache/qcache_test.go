package qcache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func payload(n int, tag string) Result {
	return Result{Payload: bytes.Repeat([]byte(tag[:1]), n), RunID: tag}
}

// Canonical-parameter derivation lives with the app registry now
// (apps.Entry.Canonical); internal/apps/registry_test.go holds the
// table-driven ignored-field tests. The cache treats Params as opaque.

func TestLRUBudgetEviction(t *testing.T) {
	res := payload(100, "a")
	per := res.MemoryBytes()
	c := New(Config{Budget: 3 * per})
	key := func(i int) Key { return Key{Graph: "g", Version: 1, App: "pr", Params: fmt.Sprint(i)} }

	for i := 0; i < 3; i++ {
		c.insert(key(i), payload(100, "a"))
	}
	st := c.Stats()
	if st.Entries != 3 || st.Bytes != 3*per || st.Evictions != 0 {
		t.Fatalf("after 3 inserts: %+v", st)
	}

	// Touch key 0 so key 1 is now the LRU victim.
	if _, ok := c.Get(key(0)); !ok {
		t.Fatal("key 0 missing")
	}
	c.insert(key(3), payload(100, "a"))
	st = c.Stats()
	if st.Entries != 3 || st.Evictions != 1 {
		t.Fatalf("after overflow insert: %+v", st)
	}
	if _, ok := c.Get(key(1)); ok {
		t.Error("LRU victim key 1 survived")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Get(key(i)); !ok {
			t.Errorf("key %d evicted out of LRU order", i)
		}
	}

	// An entry bigger than the whole budget is refused, not thrashed in.
	before := c.Stats()
	c.insert(Key{Graph: "g", Version: 1, App: "pr", Params: "big"}, payload(int(3*per), "b"))
	st = c.Stats()
	if st.Entries != before.Entries || st.InsertsDropped != before.InsertsDropped+1 {
		t.Errorf("oversize insert: %+v (before %+v)", st, before)
	}

	// Budget <= 0 stores nothing.
	z := New(Config{Budget: 0})
	z.insert(key(0), payload(10, "a"))
	if st := z.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("zero-budget cache stored an entry: %+v", st)
	}
}

func TestInvalidateVersionAndTombstone(t *testing.T) {
	c := New(Config{Budget: 1 << 20})
	k1 := Key{Graph: "g", Version: 1, App: "pr", Params: "x"}
	k2 := Key{Graph: "g", Version: 2, App: "pr", Params: "x"}
	other := Key{Graph: "h", Version: 1, App: "pr", Params: "x"}
	c.insert(k1, payload(10, "a"))
	c.insert(other, payload(10, "b"))

	c.InvalidateVersion("g", 1)
	if _, ok := c.Get(k1); ok {
		t.Error("retired version still served")
	}
	if _, ok := c.Get(other); !ok {
		t.Error("unrelated graph invalidated")
	}
	if st := c.Stats(); st.Invalidated != 1 {
		t.Errorf("Invalidated = %d, want 1", st.Invalidated)
	}

	// A run that finishes after its version retired must not cache: the
	// tombstone drops the late insert.
	c.insert(k1, payload(10, "a"))
	if _, ok := c.Get(k1); ok {
		t.Error("late insert for a retired version was cached")
	}
	if st := c.Stats(); st.InsertsDropped != 1 {
		t.Errorf("InsertsDropped = %d, want 1", st.InsertsDropped)
	}

	// The successor version is cacheable.
	c.insert(k2, payload(10, "a"))
	if _, ok := c.Get(k2); !ok {
		t.Error("successor version not cached")
	}
}

// TestDoCoalescing: N concurrent identical requests run compute exactly once
// and share its result; counters split 1 miss / N-1 coalesced.
func TestDoCoalescing(t *testing.T) {
	c := New(Config{Budget: 1 << 20})
	k := Key{Graph: "g", Version: 1, App: "pr", Params: "x"}
	const n = 8

	var computes int32
	var mu sync.Mutex
	attached := make(chan struct{})
	compute := func(ctx context.Context) (Result, error) {
		mu.Lock()
		computes++
		mu.Unlock()
		<-attached // hold the flight open until every follower has joined
		return payload(10, "r"), nil
	}

	var wg sync.WaitGroup
	results := make([]Result, n)
	outcomes := make([]Outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, o, err := c.Do(context.Background(), k, compute)
			if err != nil {
				t.Errorf("Do %d: %v", i, err)
			}
			results[i], outcomes[i] = r, o
		}(i)
	}
	// Wait until all n calls are attached (1 leading + n-1 waiting), then
	// release the leader.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		w := 0
		if f := c.flights[k]; f != nil {
			w = f.waiters
		}
		c.mu.Unlock()
		if w == n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("followers never attached (waiters=%d)", w)
		}
		time.Sleep(time.Millisecond)
	}
	close(attached)
	wg.Wait()

	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	misses, coalesced := 0, 0
	for i := range results {
		if !bytes.Equal(results[i].Payload, results[0].Payload) {
			t.Fatalf("result %d diverges", i)
		}
		switch outcomes[i] {
		case OutcomeMiss:
			misses++
		case OutcomeCoalesced:
			coalesced++
		}
	}
	if misses != 1 || coalesced != n-1 {
		t.Errorf("outcomes: %d miss / %d coalesced, want 1 / %d", misses, coalesced, n-1)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != n-1 {
		t.Errorf("stats: %+v", st)
	}

	// The flight settled into the cache: the next call is a pure hit.
	if _, o, err := c.Do(context.Background(), k, compute); err != nil || o != OutcomeHit {
		t.Errorf("post-flight Do: outcome %v err %v, want hit", o, err)
	}
}

// TestFollowerDeadline: a follower's own ctx deadline releases it while the
// flight keeps running for everyone else.
func TestFollowerDeadline(t *testing.T) {
	c := New(Config{Budget: 1 << 20})
	k := Key{Graph: "g", Version: 1, App: "pr", Params: "x"}
	release := make(chan struct{})
	compute := func(ctx context.Context) (Result, error) {
		<-release
		return payload(10, "r"), nil
	}

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), k, compute)
		leaderDone <- err
	}()
	waitForWaiters := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			c.mu.Lock()
			f := c.flights[k]
			w := -1
			if f != nil {
				w = f.waiters
			}
			c.mu.Unlock()
			if w == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("waiters = %d, want %d", w, want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitForWaiters(0) // leader attached

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, o, err := c.Do(ctx, k, compute)
	if !errors.Is(err, context.DeadlineExceeded) || o != OutcomeCoalesced {
		t.Fatalf("follower: outcome %v err %v, want coalesced deadline", o, err)
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader failed after follower left: %v", err)
	}
}

// TestLeaderCancelPromotion: cancelling the leader's ctx mid-run promotes a
// waiting follower, which re-runs compute under its own ctx and gets the
// result; the cancelled leader gets only its own ctx error.
func TestLeaderCancelPromotion(t *testing.T) {
	c := New(Config{Budget: 1 << 20})
	k := Key{Graph: "g", Version: 1, App: "pr", Params: "x"}

	var mu sync.Mutex
	var runs int
	started := make(chan struct{}, 2)
	compute := func(ctx context.Context) (Result, error) {
		mu.Lock()
		runs++
		n := runs
		mu.Unlock()
		started <- struct{}{}
		if n == 1 {
			<-ctx.Done() // first run blocks until its caller is cancelled
			return Result{}, ctx.Err()
		}
		return payload(10, "r"), nil
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(leaderCtx, k, compute)
		leaderDone <- err
	}()
	<-started // leader is computing

	followerDone := make(chan struct{})
	var fRes Result
	var fOut Outcome
	var fErr error
	go func() {
		defer close(followerDone)
		fRes, fOut, fErr = c.Do(context.Background(), k, compute)
	}()
	// Wait for the follower to attach before cancelling the leader.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		w := 0
		if f := c.flights[k]; f != nil {
			w = f.waiters
		}
		c.mu.Unlock()
		if w == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never attached")
		}
		time.Sleep(time.Millisecond)
	}

	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want canceled", err)
	}
	<-followerDone
	if fErr != nil {
		t.Fatalf("promoted follower err: %v", fErr)
	}
	if fOut != OutcomeMiss {
		t.Errorf("promoted follower outcome %v, want miss (it ran compute)", fOut)
	}
	if string(fRes.Payload) == "" {
		t.Error("promoted follower got no payload")
	}
	if runs != 2 {
		t.Errorf("compute ran %d times, want 2 (leader + promoted)", runs)
	}
	if st := c.Stats(); st.Promotions != 1 {
		t.Errorf("Promotions = %d, want 1", st.Promotions)
	}
	// The promoted run cached its result.
	if _, ok := c.Get(k); !ok {
		t.Error("promoted run's result not cached")
	}
}

// TestAbandonedOrphanFlight: white-box — the last follower leaving a flight
// whose leader already posted the token settles and drops the flight, so a
// later call starts fresh instead of attaching to a corpse.
func TestAbandonedOrphanFlight(t *testing.T) {
	c := New(Config{Budget: 1 << 20})
	k := Key{Graph: "g", Version: 1, App: "pr", Params: "x"}
	f := &flight{done: make(chan struct{}), lead: make(chan struct{}, 1), waiters: 1}
	f.lead <- struct{}{} // the leader abdicated; nobody claimed the token
	c.mu.Lock()
	c.flights[k] = f
	c.mu.Unlock()

	c.abandonFollower(k, f, context.Canceled)

	select {
	case <-f.done:
	default:
		t.Fatal("orphaned flight not settled")
	}
	if !errors.Is(f.err, context.Canceled) {
		t.Errorf("orphan err = %v", f.err)
	}
	c.mu.Lock()
	_, live := c.flights[k]
	c.mu.Unlock()
	if live {
		t.Fatal("orphaned flight still indexed")
	}

	// A fresh Do computes anew.
	r, o, err := c.Do(context.Background(), k, func(context.Context) (Result, error) {
		return payload(5, "n"), nil
	})
	if err != nil || o != OutcomeMiss || len(r.Payload) != 5 {
		t.Errorf("post-orphan Do: %v %v %v", r, o, err)
	}
}

// TestResultVersionOverride: a compute that reports the version it actually
// ran on caches under that version, not the (possibly stale) flight key's.
func TestResultVersionOverride(t *testing.T) {
	c := New(Config{Budget: 1 << 20})
	k := Key{Graph: "g", Version: 1, App: "pr", Params: "x"}
	r := payload(10, "r")
	r.Version = 2
	if _, _, err := c.Do(context.Background(), k, func(context.Context) (Result, error) {
		return r, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(Key{Graph: "g", Version: 2, App: "pr", Params: "x"}); !ok {
		t.Error("result not cached under its computed-on version")
	}
	if _, ok := c.Get(k); ok {
		t.Error("result cached under the stale key version")
	}
}

// TestDoErrorNotCached: a failed compute is shared with followers but never
// cached; the next call retries.
func TestDoErrorNotCached(t *testing.T) {
	c := New(Config{Budget: 1 << 20})
	k := Key{Graph: "g", Version: 1, App: "pr", Params: "x"}
	boom := errors.New("boom")
	calls := 0
	compute := func(context.Context) (Result, error) {
		calls++
		return Result{}, boom
	}
	if _, _, err := c.Do(context.Background(), k, compute); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := c.Do(context.Background(), k, compute); !errors.Is(err, boom) {
		t.Fatalf("second err = %v", err)
	}
	if calls != 2 {
		t.Errorf("compute calls = %d, want 2 (errors are not cached)", calls)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("error cached: %+v", st)
	}
}
