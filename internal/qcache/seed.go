package qcache

import "container/list"

// Incremental-seed retention (DESIGN.md §15). A warm retirement — mutate or
// compact — supersedes a version's cached *payloads* (the response body
// embeds the version number, so it really is stale) but not its *lanes*:
// the predecessor result is exactly the seed an incremental recompute on
// the successor starts from. The seed table keeps, per (graph, app,
// params), the newest such candidate. A hard retirement — replace or delete
// — ends the lineage, so it drops seeds too and raises a second tombstone
// that late OfferSeed calls for the dead lineage cannot cross.

type seedKey struct {
	Graph, App, Params string
}

type seedEntry struct {
	version uint64
	props   []uint64
}

const seedOverhead = 96 // map slot + key headers + entry

func (e *seedEntry) memoryBytes() int64 {
	return int64(len(e.props))*8 + seedOverhead
}

// OfferSeed records props as the (graph, app, params) result at version,
// making it available to SeedFor until a newer offer or a hard retirement
// replaces it. Offers at or below the graph's hard tombstone, or not newer
// than the resident candidate, are dropped. The slice is copied; callers
// keep ownership of theirs.
func (c *Cache) OfferSeed(graph, app, params string, version uint64, props []uint64) {
	if version == 0 || len(props) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if version <= c.hardRetired[graph] {
		c.seedsDropped++
		return
	}
	k := seedKey{Graph: graph, App: app, Params: params}
	if cur, ok := c.seeds[k]; ok {
		if version <= cur.version {
			return
		}
		c.seedBytes -= cur.memoryBytes()
	}
	e := &seedEntry{version: version, props: append([]uint64(nil), props...)}
	c.seeds[k] = e
	c.seedBytes += e.memoryBytes()
}

// SeedFor returns the newest retained seed candidate for (graph, app,
// params): the store version its lanes were computed on and the lanes
// themselves. The returned slice is shared and must be treated as
// read-only. A hit is counted only when the caller goes on to use it —
// see CountSeedUse.
func (c *Cache) SeedFor(graph, app, params string) (version uint64, props []uint64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.seeds[seedKey{Graph: graph, App: app, Params: params}]
	if !ok {
		return 0, nil, false
	}
	return e.version, e.props, true
}

// CountSeedUse bumps the seed-use counter surfaced in Stats; serving layers
// call it when a SeedFor candidate actually seeded a run.
func (c *Cache) CountSeedUse() {
	c.mu.Lock()
	c.seedsUsed++
	c.mu.Unlock()
}

// RetireVersion handles a store version retirement. Both flavors drop the
// graph's cached payloads at or below version and advance the late-insert
// tombstone. A warm retirement (reasons mutate and compact: same lineage,
// content still reachable from the successor via the delta log) keeps the
// seed table, so the retired result can warm-start recomputes on the
// successor. A hard retirement (replace, delete: lineage over) also drops
// the graph's seeds and advances the hard tombstone that blocks late
// offers. Wire it to Store.OnRetireReason.
func (c *Cache) RetireVersion(graph string, version uint64, warm bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if version > c.retiredMax[graph] {
		c.retiredMax[graph] = version
	}
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if e.key.Graph == graph && e.key.Version <= version {
			c.removeLocked(el)
			c.invalidated++
		}
	}
	if warm {
		return
	}
	if version > c.hardRetired[graph] {
		c.hardRetired[graph] = version
	}
	for k, e := range c.seeds {
		if k.Graph == graph && e.version <= version {
			c.seedBytes -= e.memoryBytes()
			delete(c.seeds, k)
			c.seedsDropped++
		}
	}
}
