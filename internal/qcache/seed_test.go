package qcache

import "testing"

// Seed-table retention tests (DESIGN.md §15): every retirement — warm or
// hard — tombstones the retired version's payload entries, but only hard
// retirements (replace, delete) drop seed candidates and raise the hard
// tombstone; warm retirements (mutate, compact) keep seeds so the retired
// result can warm-start incremental recomputes on the successor.

func seedLanes(n int, fill uint64) []uint64 {
	props := make([]uint64, n)
	for i := range props {
		props[i] = fill
	}
	return props
}

// TestRetireVersionPerReason is the per-reason regression: each store
// retirement reason maps to warm (mutate, compact) or hard (replace,
// delete) — the mapping serve wires into Store.OnRetireReason — and both
// flavors must invalidate payloads while only hard may touch seeds.
func TestRetireVersionPerReason(t *testing.T) {
	cases := []struct {
		reason string
		warm   bool
	}{
		{"mutate", true},
		{"compact", true},
		{"replace", false},
		{"delete", false},
	}
	for _, tc := range cases {
		t.Run(tc.reason, func(t *testing.T) {
			c := New(Config{Budget: 1 << 20})
			k := Key{Graph: "g", Version: 1, App: "pr", Params: "{}"}
			c.insert(k, payload(64, "a"))
			c.OfferSeed("g", "pr", "{}", 1, seedLanes(8, 7))

			c.RetireVersion("g", 1, tc.warm)

			// Payloads are gone under every reason.
			if _, ok := c.Get(k); ok {
				t.Fatalf("%s retirement left payload entry resident", tc.reason)
			}
			st := c.Stats()
			if st.Invalidated != 1 {
				t.Fatalf("Invalidated = %d, want 1", st.Invalidated)
			}
			// And a late insert for the retired version is refused.
			c.insert(k, payload(64, "a"))
			if _, ok := c.Get(k); ok {
				t.Fatalf("%s retirement did not tombstone late inserts", tc.reason)
			}

			v, props, ok := c.SeedFor("g", "pr", "{}")
			if tc.warm {
				if !ok || v != 1 || len(props) != 8 {
					t.Fatalf("warm %s retirement lost the seed: v=%d ok=%v", tc.reason, v, ok)
				}
				if st.SeedEntries != 1 || st.SeedsDropped != 0 {
					t.Fatalf("warm stats: %+v", st)
				}
			} else {
				if ok {
					t.Fatalf("hard %s retirement kept the seed at v%d", tc.reason, v)
				}
				if st.SeedEntries != 0 || st.SeedsDropped != 1 {
					t.Fatalf("hard stats: %+v", st)
				}
			}
		})
	}
}

// TestOfferSeedAfterHardRetirement: a late offer from a run that raced a
// replace/delete must not resurrect the dead lineage, while offers for the
// successor lineage (higher version) are accepted.
func TestOfferSeedAfterHardRetirement(t *testing.T) {
	c := New(Config{Budget: 1 << 20})
	c.RetireVersion("g", 3, false)

	c.OfferSeed("g", "cc", "{}", 2, seedLanes(4, 1))
	if _, _, ok := c.SeedFor("g", "cc", "{}"); ok {
		t.Fatal("offer at or below the hard tombstone was accepted")
	}
	if st := c.Stats(); st.SeedsDropped != 1 {
		t.Fatalf("SeedsDropped = %d, want 1", st.SeedsDropped)
	}

	c.OfferSeed("g", "cc", "{}", 4, seedLanes(4, 2))
	if v, _, ok := c.SeedFor("g", "cc", "{}"); !ok || v != 4 {
		t.Fatalf("successor offer rejected: v=%d ok=%v", v, ok)
	}
}

// TestOfferSeedNewestWins: the table keeps one candidate per (graph, app,
// params) — newer offers replace it, older offers are ignored.
func TestOfferSeedNewestWins(t *testing.T) {
	c := New(Config{Budget: 1 << 20})
	c.OfferSeed("g", "pr", "{}", 2, seedLanes(4, 2))
	c.OfferSeed("g", "pr", "{}", 1, seedLanes(4, 1)) // older: ignored
	if v, props, ok := c.SeedFor("g", "pr", "{}"); !ok || v != 2 || props[0] != 2 {
		t.Fatalf("after older offer: v=%d ok=%v", v, ok)
	}
	c.OfferSeed("g", "pr", "{}", 5, seedLanes(4, 5))
	v, props, ok := c.SeedFor("g", "pr", "{}")
	if !ok || v != 5 || props[0] != 5 {
		t.Fatalf("newer offer lost: v=%d ok=%v", v, ok)
	}
	if st := c.Stats(); st.SeedEntries != 1 {
		t.Fatalf("SeedEntries = %d, want 1", st.SeedEntries)
	}
	// The offered slice is copied, not aliased.
	lanes := seedLanes(4, 9)
	c.OfferSeed("g", "cc", "{}", 1, lanes)
	lanes[0] = 0
	if _, props, _ := c.SeedFor("g", "cc", "{}"); props[0] != 9 {
		t.Fatal("OfferSeed aliased the caller's slice")
	}
}

// TestSeedTableKeying: candidates are per (graph, app, params); warm
// retirement of one graph leaves another graph's seeds alone.
func TestSeedTableKeying(t *testing.T) {
	c := New(Config{Budget: 1 << 20})
	c.OfferSeed("g1", "pr", "a", 1, seedLanes(4, 1))
	c.OfferSeed("g1", "pr", "b", 1, seedLanes(4, 2))
	c.OfferSeed("g2", "pr", "a", 1, seedLanes(4, 3))
	if st := c.Stats(); st.SeedEntries != 3 {
		t.Fatalf("SeedEntries = %d, want 3", st.SeedEntries)
	}
	c.RetireVersion("g1", 1, false)
	if _, _, ok := c.SeedFor("g1", "pr", "a"); ok {
		t.Fatal("g1/a survived hard retirement")
	}
	if _, _, ok := c.SeedFor("g1", "pr", "b"); ok {
		t.Fatal("g1/b survived hard retirement")
	}
	if v, _, ok := c.SeedFor("g2", "pr", "a"); !ok || v != 1 {
		t.Fatal("g2 seed lost to g1's retirement")
	}
}

// TestInvalidateVersionIsHard: the legacy entry point must keep its full
// hard-invalidation semantics — payloads and seeds both gone.
func TestInvalidateVersionIsHard(t *testing.T) {
	c := New(Config{Budget: 1 << 20})
	k := Key{Graph: "g", Version: 1, App: "pr", Params: "{}"}
	c.insert(k, payload(64, "a"))
	c.OfferSeed("g", "pr", "{}", 1, seedLanes(4, 1))
	c.InvalidateVersion("g", 1)
	if _, ok := c.Get(k); ok {
		t.Fatal("payload survived InvalidateVersion")
	}
	if _, _, ok := c.SeedFor("g", "pr", "{}"); ok {
		t.Fatal("seed survived InvalidateVersion")
	}
	c.OfferSeed("g", "pr", "{}", 1, seedLanes(4, 1))
	if _, _, ok := c.SeedFor("g", "pr", "{}"); ok {
		t.Fatal("late offer crossed InvalidateVersion's tombstone")
	}
}

// TestCountSeedUse: the use counter is caller-driven and surfaced in Stats.
func TestCountSeedUse(t *testing.T) {
	c := New(Config{Budget: 1 << 20})
	c.CountSeedUse()
	c.CountSeedUse()
	if st := c.Stats(); st.SeedsUsed != 2 {
		t.Fatalf("SeedsUsed = %d, want 2", st.SeedsUsed)
	}
}
