//go:build race

// Package race reports whether the race detector is active, so tests can
// skip the configurations that are racy by design (the paper's
// "Traditional, Nonatomic" and Ligra's PushP+PullP-NoSync reference
// points).
package race

// Enabled reports that -race is active.
const Enabled = true
