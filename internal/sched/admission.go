package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrOverloaded is the sentinel matched by errors.Is against the typed
// *OverloadedError an Admission returns when both the in-flight and queue
// bounds are exhausted. Serving layers map it to a backpressure status
// (HTTP 429).
var ErrOverloaded = errors.New("sched: overloaded")

// OverloadedError reports an admission rejection with the observed load at
// rejection time. It matches ErrOverloaded under errors.Is.
type OverloadedError struct {
	// InFlight and Queued are the occupancy observed at rejection.
	InFlight, Queued int
	// MaxInFlight and MaxQueue are the configured bounds.
	MaxInFlight, MaxQueue int
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("sched: overloaded: %d/%d in flight, %d/%d queued",
		e.InFlight, e.MaxInFlight, e.Queued, e.MaxQueue)
}

// Is reports that an OverloadedError matches the ErrOverloaded sentinel.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// Admission is a two-stage admission controller for query-shaped work: at
// most MaxInFlight units run concurrently, at most MaxQueue more wait for a
// slot, and everything beyond that is rejected immediately with a typed
// *OverloadedError. It is the backpressure companion to Pool's job-count
// bound (SetMaxActiveJobs): the store admits queries through an Admission
// and sizes the pool's job cap from the same limit, so work admitted here is
// exactly the work the pool will accept.
type Admission struct {
	maxInFlight, maxQueue int
	// sem holds one token per in-flight unit.
	sem chan struct{}
	// queued counts waiters; admitted counts successful admissions and
	// rejected counts refusals (both monotonic).
	queued   atomic.Int64
	admitted atomic.Uint64
	rejected atomic.Uint64
}

// NewAdmission creates a controller admitting maxInFlight concurrent units
// with a wait queue of maxQueue. maxInFlight < 1 disables limiting (Acquire
// always succeeds); maxQueue < 0 is treated as 0 (no waiting: reject as soon
// as the in-flight bound is hit).
func NewAdmission(maxInFlight, maxQueue int) *Admission {
	a := &Admission{maxInFlight: maxInFlight, maxQueue: maxQueue}
	if maxQueue < 0 {
		a.maxQueue = 0
	}
	if maxInFlight > 0 {
		a.sem = make(chan struct{}, maxInFlight)
	}
	return a
}

// Acquire admits one unit of work, blocking in the wait queue when the
// in-flight bound is reached. It returns a release function to call when the
// unit finishes; release is idempotent, so layered cleanup paths (deferred
// release plus an explicit early release on handoff) cannot double-free a
// slot. Errors: a typed *OverloadedError (matching ErrOverloaded) when the
// queue is also full, or ctx.Err() when the caller's context ends while
// queued. A nil *Admission admits everything.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	if a == nil {
		return func() {}, nil
	}
	if a.sem == nil {
		a.admitted.Add(1)
		return func() {}, nil
	}
	// Fast path: an in-flight slot is free.
	select {
	case a.sem <- struct{}{}:
		a.admitted.Add(1)
		return a.releaseOnce(), nil
	default:
	}
	// Slow path: join the bounded wait queue, or reject.
	for {
		q := a.queued.Load()
		if q >= int64(a.maxQueue) {
			a.rejected.Add(1)
			return nil, &OverloadedError{
				InFlight:    len(a.sem),
				Queued:      int(q),
				MaxInFlight: a.maxInFlight,
				MaxQueue:    a.maxQueue,
			}
		}
		if a.queued.CompareAndSwap(q, q+1) {
			break
		}
	}
	defer a.queued.Add(-1)
	select {
	case a.sem <- struct{}{}:
		a.admitted.Add(1)
		return a.releaseOnce(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// releaseOnce wraps the slot return so calling the release more than once is
// a no-op rather than a stolen slot.
func (a *Admission) releaseOnce() func() {
	var once sync.Once
	return func() { once.Do(func() { <-a.sem }) }
}

// InFlight returns the number of admitted, unreleased units.
func (a *Admission) InFlight() int {
	if a == nil || a.sem == nil {
		return 0
	}
	return len(a.sem)
}

// Queued returns the number of callers waiting for admission.
func (a *Admission) Queued() int {
	if a == nil {
		return 0
	}
	return int(a.queued.Load())
}

// Admitted returns the cumulative count of successful admissions.
func (a *Admission) Admitted() uint64 {
	if a == nil {
		return 0
	}
	return a.admitted.Load()
}

// Rejected returns the cumulative count of overload rejections.
func (a *Admission) Rejected() uint64 {
	if a == nil {
		return 0
	}
	return a.rejected.Load()
}

// MaxInFlight returns the configured in-flight bound (0 = unlimited).
func (a *Admission) MaxInFlight() int {
	if a == nil {
		return 0
	}
	return a.maxInFlight
}

// MaxQueue returns the configured queue bound.
func (a *Admission) MaxQueue() int {
	if a == nil {
		return 0
	}
	return a.maxQueue
}
