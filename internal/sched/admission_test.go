package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmissionBounds(t *testing.T) {
	a := NewAdmission(2, 1)

	rel1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := a.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}

	// Third acquire queues; it must complete once a slot is released.
	acquired := make(chan func(), 1)
	go func() {
		rel, err := a.Acquire(context.Background())
		if err != nil {
			t.Error(err)
		}
		acquired <- rel
	}()
	for a.Queued() != 1 {
		time.Sleep(time.Millisecond)
	}

	// Fourth acquire finds the queue full: typed overload error.
	_, err = a.Acquire(context.Background())
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("error %v, want *OverloadedError", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("error %v does not match ErrOverloaded", err)
	}
	if oe.MaxInFlight != 2 || oe.MaxQueue != 1 {
		t.Errorf("overload error limits = %d/%d, want 2/1", oe.MaxInFlight, oe.MaxQueue)
	}
	if a.Rejected() != 1 {
		t.Errorf("Rejected = %d, want 1", a.Rejected())
	}

	rel1()
	rel3 := <-acquired
	rel2()
	rel3()
	if got := a.InFlight(); got != 0 {
		t.Errorf("InFlight after release = %d, want 0", got)
	}
}

func TestAdmissionContextCancelWhileQueued(t *testing.T) {
	a := NewAdmission(1, 4)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx)
		errc <- err
	}()
	for a.Queued() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire returned %v, want context.Canceled", err)
	}
	if a.Queued() != 0 {
		t.Errorf("Queued after cancel = %d, want 0", a.Queued())
	}
	rel()
}

func TestAdmissionUnlimited(t *testing.T) {
	for _, a := range []*Admission{nil, NewAdmission(0, 0)} {
		for i := 0; i < 100; i++ {
			rel, err := a.Acquire(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			rel()
		}
	}
}

func TestAdmissionConcurrentNeverExceedsBound(t *testing.T) {
	const maxInFlight = 3
	a := NewAdmission(maxInFlight, 64)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := a.Acquire(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			rel()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > maxInFlight {
		t.Errorf("peak concurrency %d exceeds bound %d", p, maxInFlight)
	}
}

// TestPoolMaxActiveJobs drives more concurrent fork-join jobs at the pool
// than its job cap and asserts the cap is never exceeded while every job
// still completes.
func TestPoolMaxActiveJobs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const cap = 2
	p.SetMaxActiveJobs(cap)

	var active, peak, runs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started := false
			p.Run(func(tid int) {
				if tid == 0 {
					// Count the job once, via slot 0.
					n := active.Add(1)
					for {
						pk := peak.Load()
						if n <= pk || peak.CompareAndSwap(pk, n) {
							break
						}
					}
					started = true
					time.Sleep(time.Millisecond)
					active.Add(-1)
				}
				runs.Add(1)
			})
			if !started {
				t.Error("job ran without executing slot 0")
			}
		}()
	}
	wg.Wait()
	if got := runs.Load(); got != 12*4 {
		t.Errorf("slot executions = %d, want %d", got, 12*4)
	}
	if pk := peak.Load(); pk > cap {
		t.Errorf("peak active jobs %d exceeds cap %d", pk, cap)
	}
}

func TestScatterBufferMergeOrder(t *testing.T) {
	b := NewScatterBuffer(2)
	b.Grow(3)

	s2 := b.Take(2)
	s2 = append(s2, Contribution{Dst: 7, Val: 30})
	b.Save(2, s2)
	s0 := b.Take(0)
	s0 = append(s0, Contribution{Dst: 7, Val: 10}, Contribution{Dst: 3, Val: 1})
	b.Save(0, s0)
	// Slot 1 left empty.

	var order []Contribution
	n := b.Merge(func(dst uint32, v uint64) {
		order = append(order, Contribution{Dst: dst, Val: v})
	})
	if n != 3 {
		t.Fatalf("Merge folded %d contributions, want 3", n)
	}
	want := []Contribution{{7, 10}, {3, 1}, {7, 30}}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("merge order[%d] = %v, want %v (chunk-id then append order)", i, order[i], w)
		}
	}
	// Slots are reusable and empty after Merge.
	if again := b.Merge(func(uint32, uint64) {}); again != 0 {
		t.Errorf("second Merge folded %d contributions, want 0", again)
	}
	if s := b.Take(0); len(s) != 0 || cap(s) < 2 {
		t.Errorf("slot storage not retained: len=%d cap=%d", len(s), cap(s))
	}
}

// TestAdmissionChurnExactAccounting hammers an Admission with 1000 mixed
// runs — successes, panics (recovered by the pool), and cancellations while
// queued — and verifies the slot accounting is exact afterwards: nothing in
// flight, nothing queued, and the full capacity immediately re-admittable.
func TestAdmissionChurnExactAccounting(t *testing.T) {
	const (
		maxInFlight = 4
		maxQueue    = 8
		total       = 1000
	)
	a := NewAdmission(maxInFlight, maxQueue)
	p := NewPool(4)
	defer p.Close()

	var wg sync.WaitGroup
	var succeeded, panicked, cancelled, rejected atomic.Int64
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if i%5 == 4 {
				// Cancel shortly after (possibly while) queueing.
				go func() {
					time.Sleep(time.Duration(i%3) * 50 * time.Microsecond)
					cancel()
				}()
			}
			release, err := a.Acquire(ctx)
			if err != nil {
				switch {
				case errors.Is(err, ErrOverloaded):
					rejected.Add(1)
				case errors.Is(err, context.Canceled):
					cancelled.Add(1)
				default:
					t.Errorf("Acquire: unexpected error %v", err)
				}
				return
			}
			defer release()
			err = p.DynamicForCtx(ctx, 64, 8, func(r Range, chunkID, tid int) {
				if i%7 == 3 && chunkID == 2 {
					panic("churn")
				}
			})
			var pe *PanicError
			switch {
			case errors.As(err, &pe):
				panicked.Add(1)
			case err == nil:
				succeeded.Add(1)
			case errors.Is(err, context.Canceled):
				cancelled.Add(1)
			default:
				t.Errorf("run: unexpected error %v", err)
			}
		}(i)
	}
	wg.Wait()

	if got := succeeded.Load() + panicked.Load() + cancelled.Load() + rejected.Load(); got != total {
		t.Errorf("outcomes sum to %d, want %d", got, total)
	}
	if succeeded.Load() == 0 || panicked.Load() == 0 {
		t.Errorf("degenerate mix: %d succeeded, %d panicked, %d cancelled, %d rejected",
			succeeded.Load(), panicked.Load(), cancelled.Load(), rejected.Load())
	}
	if n := a.InFlight(); n != 0 {
		t.Errorf("InFlight = %d after churn, want 0", n)
	}
	if n := a.Queued(); n != 0 {
		t.Errorf("Queued = %d after churn, want 0", n)
	}
	if uint64(rejected.Load()) > a.Rejected() {
		t.Errorf("observed %d rejections but counter says %d", rejected.Load(), a.Rejected())
	}
	// Full capacity must be re-admittable without blocking.
	releases := make([]func(), 0, maxInFlight)
	for i := 0; i < maxInFlight; i++ {
		release, err := a.Acquire(context.Background())
		if err != nil {
			t.Fatalf("slot %d not re-admittable after churn: %v", i, err)
		}
		releases = append(releases, release)
	}
	for _, r := range releases {
		r()
	}
	if n := a.InFlight(); n != 0 {
		t.Errorf("InFlight = %d after refill/release, want 0", n)
	}
}

// TestAdmissionQueueFullTypedError asserts the rejection error carries the
// observed occupancy and matches the sentinel.
func TestAdmissionQueueFullTypedError(t *testing.T) {
	a := NewAdmission(1, 0)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	_, err = a.Acquire(context.Background())
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("Acquire = %v, want *OverloadedError", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Error("OverloadedError does not match ErrOverloaded")
	}
	if oe.MaxInFlight != 1 || oe.MaxQueue != 0 || oe.InFlight != 1 {
		t.Errorf("occupancy in error = %+v", oe)
	}
}

// TestAdmissionReleaseIdempotent: calling a release more than once returns
// the slot exactly once. Layered cleanup (a deferred release plus an explicit
// one on a leadership handoff) must not free a slot another unit now holds.
func TestAdmissionReleaseIdempotent(t *testing.T) {
	a := NewAdmission(2, 0)

	rel1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := a.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}

	// Double-release of the first slot frees exactly one.
	rel1()
	rel1()
	rel1()
	if got := a.InFlight(); got != 1 {
		t.Fatalf("InFlight after triple release = %d, want 1", got)
	}

	// Concurrent duplicate calls are also single-release.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel2()
		}()
	}
	wg.Wait()
	if got := a.InFlight(); got != 0 {
		t.Fatalf("InFlight after concurrent releases = %d, want 0", got)
	}
	if adm := a.Admitted(); adm != 2 {
		t.Fatalf("Admitted = %d, want 2", adm)
	}
}
