package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentRunJobs submits many fork-join jobs from separate
// goroutines: every job must see each of its virtual tids exactly once, and
// every Run must return only after its own slots all completed.
func TestConcurrentRunJobs(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		const jobs = 16
		var wg sync.WaitGroup
		for j := 0; j < jobs; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var seen [4]atomic.Int64
				p.Run(func(tid int) { seen[tid].Add(1) })
				for tid := range seen {
					if seen[tid].Load() != 1 {
						t.Errorf("tid %d ran %d times, want 1", tid, seen[tid].Load())
					}
				}
			}()
		}
		wg.Wait()
	})
}

// TestConcurrentDynamicForJobs multiplexes several dynamic loops over one
// worker set; each must cover its iteration space exactly once with its own
// chunk numbering.
func TestConcurrentDynamicForJobs(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		const jobs = 8
		const total = 5003
		var wg sync.WaitGroup
		for j := 0; j < jobs; j++ {
			wg.Add(1)
			go func(chunk int) {
				defer wg.Done()
				hits := make([]atomic.Int32, total)
				maxChunk := NumChunks(total, chunk) - 1
				p.DynamicFor(total, chunk, func(r Range, chunkID, tid int) {
					if chunkID < 0 || chunkID > maxChunk {
						t.Errorf("chunk id %d out of range [0,%d]", chunkID, maxChunk)
					}
					if r.Lo != chunkID*chunk {
						t.Errorf("chunk %d starts at %d, want %d", chunkID, r.Lo, chunkID*chunk)
					}
					for i := r.Lo; i < r.Hi; i++ {
						hits[i].Add(1)
					}
				})
				for i := range hits {
					if hits[i].Load() != 1 {
						t.Errorf("iteration %d executed %d times", i, hits[i].Load())
						return
					}
				}
			}(11 + j*7)
		}
		wg.Wait()
	})
}

// TestConcurrentSchedulerAwareReductions runs several scheduler-aware sum
// reductions at once; per-job merge buffers must yield the exact serial
// result for every job (the multiplexing must not leak chunk state across
// jobs).
func TestConcurrentSchedulerAwareReductions(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		const jobs = 8
		const total = 50000
		var wg sync.WaitGroup
		for j := 0; j < jobs; j++ {
			wg.Add(1)
			go func(chunk int) {
				defer wg.Done()
				buf := NewMergeBuffer(NumChunks(total, chunk))
				SchedulerAwareFor(p, total, chunk, Hooks[uint64]{
					StartChunk:    func(first, tid int) uint64 { return 0 },
					LoopIteration: func(acc uint64, i, tid int) uint64 { return acc + uint64(i) },
					FinishChunk:   func(acc uint64, last, chunkID, tid int) { buf.Save(chunkID, 0, acc) },
				})
				var sum uint64
				buf.Merge(func(_ uint32, v uint64) { sum += v })
				if want := uint64(total) * (total - 1) / 2; sum != want {
					t.Errorf("sum = %d, want %d", sum, want)
				}
			}(13 + j*19)
		}
		wg.Wait()
	})
}

// TestDynamicForCtxCancel checks chunk-granularity cancellation: after the
// context is cancelled no further chunks start, the loop returns the
// context error, and in-flight chunks ran to completion (no partial chunk).
func TestDynamicForCtxCancel(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int64
		var completed atomic.Int64
		err := p.DynamicForCtx(ctx, 10000, 10, func(r Range, chunkID, tid int) {
			if started.Add(1) == 5 {
				cancel()
			}
			completed.Add(1)
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if started.Load() != completed.Load() {
			t.Errorf("started %d chunks but completed %d", started.Load(), completed.Load())
		}
		if completed.Load() >= 1000 {
			t.Errorf("cancellation did not stop chunk claiming (%d chunks ran)", completed.Load())
		}
	})
}

// TestDynamicForCtxPreCancelled: a context cancelled before submission runs
// no chunks at all.
func TestDynamicForCtxPreCancelled(t *testing.T) {
	withPool(t, 2, func(p *Pool) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		ran := atomic.Int64{}
		err := p.DynamicForCtx(ctx, 1000, 10, func(Range, int, int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if ran.Load() != 0 {
			t.Errorf("%d chunks ran on a pre-cancelled context", ran.Load())
		}
	})
}

// TestDynamicForCtxNilError: an uncancelled context yields nil and full
// coverage.
func TestDynamicForCtxNilError(t *testing.T) {
	withPool(t, 2, func(p *Pool) {
		var n atomic.Int64
		if err := p.DynamicForCtx(context.Background(), 100, 7, func(r Range, _, _ int) {
			n.Add(int64(r.Len()))
		}); err != nil {
			t.Fatalf("err = %v", err)
		}
		if n.Load() != 100 {
			t.Errorf("covered %d iterations, want 100", n.Load())
		}
	})
}

// TestPoolCloseIdempotent: Close twice must not panic or deadlock.
func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(3)
	p.Close()
	p.Close()
}

// TestConcurrentMixedLoops mixes Run, StaticFor, DynamicFor, and
// work-stealing jobs on one pool under contention.
func TestConcurrentMixedLoops(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		var wg sync.WaitGroup
		for rep := 0; rep < 4; rep++ {
			wg.Add(4)
			go func() {
				defer wg.Done()
				var sum atomic.Int64
				p.ParallelFor(1000, 13, func(i, tid int) { sum.Add(int64(i)) })
				if want := int64(1000 * 999 / 2); sum.Load() != want {
					t.Errorf("ParallelFor sum = %d, want %d", sum.Load(), want)
				}
			}()
			go func() {
				defer wg.Done()
				hits := make([]atomic.Int32, 777)
				p.StaticFor(777, func(r Range, tid int) {
					for i := r.Lo; i < r.Hi; i++ {
						hits[i].Add(1)
					}
				})
				for i := range hits {
					if hits[i].Load() != 1 {
						t.Errorf("StaticFor iteration %d ran %d times", i, hits[i].Load())
						return
					}
				}
			}()
			go func() {
				defer wg.Done()
				hits := make([]atomic.Int32, 1003)
				p.StealingFor(1003, 17, func(r Range, chunkID, tid int) {
					for i := r.Lo; i < r.Hi; i++ {
						hits[i].Add(1)
					}
				})
				for i := range hits {
					if hits[i].Load() != 1 {
						t.Errorf("StealingFor iteration %d ran %d times", i, hits[i].Load())
						return
					}
				}
			}()
			go func() {
				defer wg.Done()
				var seen [4]atomic.Int64
				p.Run(func(tid int) { seen[tid].Add(1) })
				for tid := range seen {
					if seen[tid].Load() != 1 {
						t.Errorf("Run tid %d ran %d times", tid, seen[tid].Load())
					}
				}
			}()
		}
		wg.Wait()
	})
}
