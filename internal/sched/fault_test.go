package sched

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunPanicContained: a panicking job body fails only its own Run call —
// the error is a typed *PanicError carrying the original value and stack,
// and the pool keeps serving jobs afterwards.
func TestRunPanicContained(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	err := p.Run(func(tid int) {
		if tid == 2 {
			panic("kaboom")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run = %v, want *PanicError", err)
	}
	if pe.Value != "kaboom" {
		t.Errorf("panic value = %v, want kaboom", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "fault_test") {
		t.Errorf("stack does not reach the panic site:\n%s", pe.Stack)
	}
	if p.Panics() == 0 {
		t.Error("pool panic counter not incremented")
	}
	// The pool must still be fully operational.
	var ran atomic.Int64
	if err := p.Run(func(tid int) { ran.Add(1) }); err != nil {
		t.Fatalf("follow-up Run = %v", err)
	}
	if ran.Load() != 4 {
		t.Errorf("follow-up Run reached %d workers, want 4", ran.Load())
	}
	if n := p.ActiveJobs(); n != 0 {
		t.Errorf("ActiveJobs = %d after panicked job, want 0", n)
	}
}

// TestRunPanicSingleWorkerInline covers the inline fast path.
func TestRunPanicSingleWorkerInline(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	err := p.Run(func(tid int) { panic(42) })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != 42 {
		t.Fatalf("Run = %v, want *PanicError{42}", err)
	}
	if err := p.Run(func(tid int) {}); err != nil {
		t.Fatalf("follow-up Run = %v", err)
	}
}

// TestRunPanicDoesNotDisturbSiblingJob: two concurrent jobs on one pool, one
// panics; the other's result must be complete and correct.
func TestRunPanicDoesNotDisturbSiblingJob(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const total = 1 << 16
	for round := 0; round < 20; round++ {
		var sum atomic.Int64
		var wg sync.WaitGroup
		wg.Add(2)
		var panicErr error
		go func() {
			defer wg.Done()
			panicErr = p.DynamicForCtx(context.Background(), 64, 1, func(r Range, chunkID, tid int) {
				if chunkID == 13 {
					panic("chunk 13")
				}
			})
		}()
		go func() {
			defer wg.Done()
			p.DynamicFor(total, 64, func(r Range, chunkID, tid int) {
				local := int64(0)
				for i := r.Lo; i < r.Hi; i++ {
					local += int64(i)
				}
				sum.Add(local)
			})
		}()
		wg.Wait()
		var pe *PanicError
		if !errors.As(panicErr, &pe) {
			t.Fatalf("round %d: panicking job returned %v, want *PanicError", round, panicErr)
		}
		if want := int64(total) * (total - 1) / 2; sum.Load() != want {
			t.Fatalf("round %d: sibling sum = %d, want %d", round, sum.Load(), want)
		}
	}
}

// TestDynamicForCtxPanicFailFast: after one chunk panics, no executor should
// claim (many) further chunks.
func TestDynamicForCtxPanicFailFast(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	const chunks = 10000
	var executed atomic.Int64
	err := p.DynamicForCtx(context.Background(), chunks, 1, func(r Range, chunkID, tid int) {
		if executed.Add(1) == 3 {
			panic("early")
		}
		// Slow the survivors slightly so the fail-fast flag is observable.
		time.Sleep(10 * time.Microsecond)
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("DynamicForCtx = %v, want *PanicError", err)
	}
	if n := executed.Load(); n > chunks/10 {
		t.Errorf("executed %d of %d chunks after panic, expected fail-fast", n, chunks)
	}
}

// TestDynamicForRethrowsOnCaller: the void variant must surface the panic at
// the call site, not swallow it.
func TestDynamicForRethrowsOnCaller(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %v, want *PanicError", r)
		}
		if pe.Value != "boom" {
			t.Errorf("panic value = %v", pe.Value)
		}
		// Pool still healthy after the rethrow.
		if err := p.Run(func(int) {}); err != nil {
			t.Errorf("follow-up Run = %v", err)
		}
	}()
	p.DynamicFor(100, 10, func(r Range, chunkID, tid int) {
		if chunkID == 4 {
			panic("boom")
		}
	})
	t.Fatal("DynamicFor returned normally despite panicking body")
}

// TestStaticForRethrows covers the static scheduler's containment path.
func TestStaticForRethrows(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	defer func() {
		if _, ok := recover().(*PanicError); !ok {
			t.Fatal("StaticFor did not rethrow a *PanicError")
		}
	}()
	p.StaticFor(100, func(r Range, tid int) { panic("static") })
}

// TestStealingForRethrows covers the work-stealing scheduler's containment.
func TestStealingForRethrows(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	defer func() {
		if _, ok := recover().(*PanicError); !ok {
			t.Fatal("StealingFor did not rethrow a *PanicError")
		}
		var n atomic.Int64
		p.StealingFor(64, 4, func(r Range, chunkID, tid int) { n.Add(int64(r.Len())) })
		if n.Load() != 64 {
			t.Errorf("follow-up StealingFor covered %d, want 64", n.Load())
		}
	}()
	p.StealingFor(100, 5, func(r Range, chunkID, tid int) {
		if chunkID == 3 {
			panic("steal")
		}
	})
}

// TestPanicErrorPreservedThroughRethrow: rethrowing and re-capturing must
// not wrap the PanicError in another PanicError.
func TestPanicErrorPreservedThroughRethrow(t *testing.T) {
	orig := NewPanicError("inner")
	if got := NewPanicError(orig); got != orig {
		t.Error("NewPanicError re-wrapped an existing *PanicError")
	}
}

// TestWatchdogSoftAndHard: a tracked run crossing the soft limit is counted;
// crossing the hard limit cancels its context with ErrWatchdogKilled.
func TestWatchdogSoftAndHard(t *testing.T) {
	w := NewWatchdog(20*time.Millisecond, 80*time.Millisecond)
	defer w.Close()
	ctx, done := w.Track(context.Background())
	defer done()

	deadline := time.After(5 * time.Second)
	select {
	case <-ctx.Done():
	case <-deadline:
		t.Fatal("watchdog never hard-cancelled the run")
	}
	if cause := context.Cause(ctx); !errors.Is(cause, ErrWatchdogKilled) {
		t.Errorf("cancellation cause = %v, want ErrWatchdogKilled", cause)
	}
	st := w.Stats()
	if st.SlowTotal < 1 {
		t.Errorf("SlowTotal = %d, want >= 1", st.SlowTotal)
	}
	if st.HardKills != 1 {
		t.Errorf("HardKills = %d, want 1", st.HardKills)
	}
	if st.Active != 1 {
		t.Errorf("Active = %d, want 1 (done not yet called)", st.Active)
	}
	done()
	if st := w.Stats(); st.Active != 0 {
		t.Errorf("Active after done = %d, want 0", st.Active)
	}
}

// TestWatchdogFastRunUntouched: runs finishing under the soft limit are
// never counted or cancelled.
func TestWatchdogFastRunUntouched(t *testing.T) {
	w := NewWatchdog(500*time.Millisecond, time.Second)
	defer w.Close()
	for i := 0; i < 10; i++ {
		ctx, done := w.Track(context.Background())
		if ctx.Err() != nil {
			t.Fatal("fresh tracked context already cancelled")
		}
		done()
	}
	st := w.Stats()
	if st.SlowTotal != 0 || st.HardKills != 0 || st.Active != 0 {
		t.Errorf("stats = %+v, want all zero", st)
	}
}

// TestWatchdogNil: a nil watchdog is a transparent pass-through.
func TestWatchdogNil(t *testing.T) {
	var w *Watchdog
	ctx, done := w.Track(context.Background())
	if ctx != context.Background() {
		t.Error("nil watchdog wrapped the context")
	}
	done()
	w.Close()
	if st := w.Stats(); st != (WatchdogStats{}) {
		t.Errorf("nil watchdog stats = %+v", st)
	}
}

// TestWatchdogCancelPropagatesToChunks: a hard kill must stop a pool loop at
// chunk granularity, releasing the workers.
func TestWatchdogCancelPropagatesToChunks(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	w := NewWatchdog(0, 30*time.Millisecond)
	defer w.Close()
	ctx, done := w.Track(context.Background())
	defer done()
	start := time.Now()
	err := p.DynamicForCtx(ctx, 1<<30, 1, func(r Range, chunkID, tid int) {
		time.Sleep(100 * time.Microsecond)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("DynamicForCtx = %v, want context.Canceled", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("loop survived %v past a 30ms hard limit", el)
	}
	if !errors.Is(context.Cause(ctx), ErrWatchdogKilled) {
		t.Errorf("cause = %v, want ErrWatchdogKilled", context.Cause(ctx))
	}
}
