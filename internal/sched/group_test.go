package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// A group's concurrent jobs must consume exactly one unit of the active-job
// cap: with maxJobs=1, P grouped jobs all publish and run in parallel while
// an ungrouped job from a second "query" stays blocked until the whole group
// drains.
func TestGroupAdmissionSingleCapUnit(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	p.SetMaxActiveJobs(1)

	const parts = 3
	var concurrent, peak atomic.Int64
	release := make(chan struct{})
	g := p.NewGroup()
	var wg sync.WaitGroup
	for i := 0; i < parts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.RunGrouped(g, func(tid int) {
				if tid != 0 {
					return
				}
				c := concurrent.Add(1)
				for {
					old := peak.Load()
					if c <= old || peak.CompareAndSwap(old, c) {
						break
					}
				}
				<-release
				concurrent.Add(-1)
			})
		}()
	}

	// All grouped jobs should reach their slot-0 bodies despite maxJobs=1.
	deadline := time.After(5 * time.Second)
	for concurrent.Load() != parts {
		select {
		case <-deadline:
			t.Fatalf("only %d/%d grouped jobs running under cap 1", concurrent.Load(), parts)
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// An ungrouped competitor submitted while the group is live: it must not
	// publish until the whole group drains.
	ran := make(chan struct{})
	go func() {
		p.Run(func(tid int) {})
		close(ran)
	}()
	select {
	case <-ran:
		t.Fatal("ungrouped job ran while the group held the only cap unit")
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	wg.Wait()
	select {
	case <-ran:
	case <-deadline:
		t.Fatal("ungrouped job never ran after the group drained")
	}
	if got := peak.Load(); got != parts {
		t.Errorf("peak grouped concurrency %d, want %d", got, parts)
	}
	if p.ActiveJobs() != 0 {
		t.Errorf("%d jobs still active", p.ActiveJobs())
	}
}

// The cap unit must be released exactly once per group drain, and a reused
// group must re-take it — exercised by alternating grouped and ungrouped
// jobs under cap 1 for many rounds (leaked units would wedge, double frees
// would let two queries in at once).
func TestGroupAdmissionChurn(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.SetMaxActiveJobs(1)
	g := p.NewGroup()
	for round := 0; round < 200; round++ {
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.RunGrouped(g, func(tid int) {})
			}()
		}
		wg.Wait()
		if err := p.Run(func(tid int) {}); err != nil {
			t.Fatal(err)
		}
		p.mu.Lock()
		units := p.capUnits
		p.mu.Unlock()
		if units != 0 {
			t.Fatalf("round %d: %d cap units leaked", round, units)
		}
	}
}

// A panic inside a grouped job must be contained like any other job's and
// must still release the group's cap unit.
func TestGroupPanicReleasesCapUnit(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.SetMaxActiveJobs(1)
	g := p.NewGroup()
	err := p.RunGrouped(g, func(tid int) { panic("boom") })
	if err == nil {
		t.Fatal("panic not reported")
	}
	done := make(chan struct{})
	go func() {
		p.Run(func(tid int) {})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cap unit leaked by panicked grouped job")
	}
}
