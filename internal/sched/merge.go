package sched

// MergeBuffer is the scheduler-aware interface's companion structure (§3):
// one slot per chunk of iterations, each holding the last destination vertex
// the chunk touched and the partially-aggregated value computed for it.
// Because every chunk owns a distinct slot, FinishChunk needs no
// synchronization; a single thread folds the buffer after the barrier
// (Listing 6). With static chunking the buffer is allocated once and reused
// across iterations.
type MergeBuffer struct {
	dest  []uint32
	value []uint64
	used  []bool
}

// NewMergeBuffer allocates a buffer with capacity for the given chunk count.
func NewMergeBuffer(chunks int) *MergeBuffer {
	return &MergeBuffer{
		dest:  make([]uint32, chunks),
		value: make([]uint64, chunks),
		used:  make([]bool, chunks),
	}
}

// Slots returns the buffer capacity in chunks.
func (b *MergeBuffer) Slots() int { return len(b.used) }

// Grow ensures capacity for at least chunks slots, reusing existing storage
// when possible (the §3 "Discussion" case of a runtime creating more
// chunks).
func (b *MergeBuffer) Grow(chunks int) {
	if chunks <= len(b.used) {
		return
	}
	b.dest = append(make([]uint32, 0, chunks), b.dest...)[:chunks]
	b.value = append(make([]uint64, 0, chunks), b.value...)[:chunks]
	b.used = append(make([]bool, 0, chunks), b.used...)[:chunks]
}

// Save records chunk chunkID's trailing partial aggregate (Listing 5). Each
// chunk writes only its own slot, so concurrent Saves with distinct ids are
// race-free.
func (b *MergeBuffer) Save(chunkID int, dest uint32, value uint64) {
	b.dest[chunkID] = dest
	b.value[chunkID] = value
	b.used[chunkID] = true
}

// Merge folds every used slot through combine (Listing 6) and clears the
// buffer. It returns the number of slots folded. combine receives the
// destination vertex and the partial value; it is the caller's aggregation
// operator applied against shared memory — safe because Merge runs after
// the parallel section.
func (b *MergeBuffer) Merge(combine func(dest uint32, value uint64)) int {
	n := 0
	for i, u := range b.used {
		if !u {
			continue
		}
		combine(b.dest[i], b.value[i])
		b.used[i] = false
		n++
	}
	return n
}

// Reset clears all slots without folding them.
func (b *MergeBuffer) Reset() {
	for i := range b.used {
		b.used[i] = false
	}
}

// Contribution is one scattered (destination, value) pair produced by a
// chunk whose writes do not land on a single run of destinations.
type Contribution struct {
	Dst uint32
	Val uint64
}

// ScatterBuffer is the merge buffer's scatter-shaped sibling: one slot per
// chunk holding an ordered list of (destination, value) contributions
// instead of a single trailing aggregate. A push-style loop whose combine
// operator is order-sensitive (floating-point addition) appends its
// contributions here in iteration order and a single thread folds the slots
// in chunk-id order after the barrier, making the result deterministic for
// any worker count — the same fixed-order contract the merge buffer gives
// the pull engine. Slot storage is reused across phases.
type ScatterBuffer struct {
	slots [][]Contribution
}

// NewScatterBuffer allocates a buffer with capacity for the given chunk
// count.
func NewScatterBuffer(chunks int) *ScatterBuffer {
	return &ScatterBuffer{slots: make([][]Contribution, chunks)}
}

// Grow ensures capacity for at least chunks slots.
func (b *ScatterBuffer) Grow(chunks int) {
	for len(b.slots) < chunks {
		b.slots = append(b.slots, nil)
	}
}

// Take returns chunk chunkID's reusable contribution slice, emptied. The
// chunk appends its contributions and hands the slice back through Save.
func (b *ScatterBuffer) Take(chunkID int) []Contribution {
	s := b.slots[chunkID]
	b.slots[chunkID] = nil
	return s[:0]
}

// Save stores chunk chunkID's contribution list. Each chunk writes only its
// own slot, so concurrent Saves with distinct ids are race-free.
func (b *ScatterBuffer) Save(chunkID int, entries []Contribution) {
	b.slots[chunkID] = entries
}

// Merge folds every contribution through combine, slots in chunk-id order
// and entries in append order, then empties the slots (retaining their
// storage). It returns the number of contributions folded.
func (b *ScatterBuffer) Merge(combine func(dst uint32, value uint64)) int {
	n := 0
	for i, entries := range b.slots {
		for _, e := range entries {
			combine(e.Dst, e.Val)
		}
		n += len(entries)
		b.slots[i] = entries[:0]
	}
	return n
}
