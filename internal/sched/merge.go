package sched

// MergeBuffer is the scheduler-aware interface's companion structure (§3):
// one slot per chunk of iterations, each holding the last destination vertex
// the chunk touched and the partially-aggregated value computed for it.
// Because every chunk owns a distinct slot, FinishChunk needs no
// synchronization; a single thread folds the buffer after the barrier
// (Listing 6). With static chunking the buffer is allocated once and reused
// across iterations.
type MergeBuffer struct {
	dest  []uint32
	value []uint64
	used  []bool
}

// NewMergeBuffer allocates a buffer with capacity for the given chunk count.
func NewMergeBuffer(chunks int) *MergeBuffer {
	return &MergeBuffer{
		dest:  make([]uint32, chunks),
		value: make([]uint64, chunks),
		used:  make([]bool, chunks),
	}
}

// Slots returns the buffer capacity in chunks.
func (b *MergeBuffer) Slots() int { return len(b.used) }

// Grow ensures capacity for at least chunks slots, reusing existing storage
// when possible (the §3 "Discussion" case of a runtime creating more
// chunks).
func (b *MergeBuffer) Grow(chunks int) {
	if chunks <= len(b.used) {
		return
	}
	b.dest = append(make([]uint32, 0, chunks), b.dest...)[:chunks]
	b.value = append(make([]uint64, 0, chunks), b.value...)[:chunks]
	b.used = append(make([]bool, 0, chunks), b.used...)[:chunks]
}

// Save records chunk chunkID's trailing partial aggregate (Listing 5). Each
// chunk writes only its own slot, so concurrent Saves with distinct ids are
// race-free.
func (b *MergeBuffer) Save(chunkID int, dest uint32, value uint64) {
	b.dest[chunkID] = dest
	b.value[chunkID] = value
	b.used[chunkID] = true
}

// Merge folds every used slot through combine (Listing 6) and clears the
// buffer. It returns the number of slots folded. combine receives the
// destination vertex and the partial value; it is the caller's aggregation
// operator applied against shared memory — safe because Merge runs after
// the parallel section.
func (b *MergeBuffer) Merge(combine func(dest uint32, value uint64)) int {
	n := 0
	for i, u := range b.used {
		if !u {
			continue
		}
		combine(b.dest[i], b.value[i])
		b.used[i] = false
		n++
	}
	return n
}

// Reset clears all slots without folding them.
func (b *MergeBuffer) Reset() {
	for i := range b.used {
		b.used[i] = false
	}
}
