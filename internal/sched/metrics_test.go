package sched

import (
	"testing"

	"repro/internal/obs"
)

func TestPoolMetricsObserved(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		m := &PoolMetrics{
			JobWait: obs.NewHistogram(obs.DefTimeBuckets),
			JobExec: obs.NewHistogram(obs.DefTimeBuckets),
		}
		p.SetMetrics(m)
		const jobs = 5
		for i := 0; i < jobs; i++ {
			if err := p.Run(func(tid int) {}); err != nil {
				t.Fatal(err)
			}
		}
		if got := m.JobWait.Count(); got != jobs {
			t.Errorf("workers=%d: JobWait count = %d, want %d", workers, got, jobs)
		}
		if got := m.JobExec.Count(); got != jobs {
			t.Errorf("workers=%d: JobExec count = %d, want %d", workers, got, jobs)
		}
		// Detach and confirm no further observations.
		p.SetMetrics(nil)
		if err := p.Run(func(tid int) {}); err != nil {
			t.Fatal(err)
		}
		if got := m.JobExec.Count(); got != jobs {
			t.Errorf("workers=%d: JobExec count after detach = %d, want %d", workers, got, jobs)
		}
		p.Close()
	}
}

func TestWatchdogCounterAccessors(t *testing.T) {
	var w *Watchdog
	if w.SlowTotalCounter() != nil || w.HardKillsCounter() != nil {
		t.Fatal("nil watchdog must return nil counters")
	}
	wd := NewWatchdog(0, 0)
	defer wd.Close()
	// The accessor and Stats() must read the same cell.
	wd.SlowTotalCounter().Add(3)
	wd.HardKillsCounter().Add(2)
	st := wd.Stats()
	if st.SlowTotal != 3 || st.HardKills != 2 {
		t.Fatalf("Stats = %+v, want SlowTotal 3 HardKills 2", st)
	}
}

func TestAdmissionAdmittedCounter(t *testing.T) {
	var nilA *Admission
	if nilA.Admitted() != 0 {
		t.Fatal("nil admission Admitted != 0")
	}
	rel, err := nilA.Acquire(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	rel()

	// Unlimited controller still counts admissions.
	unlimited := NewAdmission(0, 0)
	rel, err = unlimited.Acquire(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if got := unlimited.Admitted(); got != 1 {
		t.Fatalf("unlimited Admitted = %d, want 1", got)
	}

	a := NewAdmission(1, 0)
	rel1, err := a.Acquire(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Acquire(t.Context()); err == nil {
		t.Fatal("second acquire should reject")
	}
	rel1()
	rel2, err := a.Acquire(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	rel2()
	if got := a.Admitted(); got != 2 {
		t.Fatalf("Admitted = %d, want 2", got)
	}
	if got := a.Rejected(); got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
}
