package sched

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a panic captured inside a pool job, converted into an error
// so one misbehaving run fails alone: the worker goroutines, the pool's job
// accounting, and every sibling job continue unharmed. Value is the original
// panic value and Stack the stack of the panicking executor at capture time
// (which still includes the frames below the panic site, because capture
// happens in a deferred recover on the same goroutine).
type PanicError struct {
	Value any
	Stack []byte
}

// NewPanicError captures the current goroutine's stack around a recovered
// panic value. Call it only from inside a deferred recover. If the value is
// already a *PanicError (a lower layer captured it first), it is returned
// unchanged so the original stack survives rethrow chains.
func NewPanicError(v any) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// Error formats the panic value; the stack is available separately so log
// lines stay single-line unless the caller opts in.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: job panicked: %v", e.Value)
}
